GO ?= go

.PHONY: all vet lint build test check short race fuzz fuzz-ci ci bench-seed scaling bench bench-hub bench-shards bench-failover bench-index bench-async serve shards smoke shard-smoke failover-smoke index-smoke metrics-smoke async-smoke

all: ci

vet:
	$(GO) vet ./...

# Static analysis: go vet plus the project analyzer suite (faultseam,
# nopanic, metricname, lockguard, defensivecopy — see tools/gpnmlint).
# gpnmlint lives in a nested module so the root module stays
# dependency-free.
lint: vet
	cd tools/gpnmlint && $(GO) build -o /tmp/gpnmlint .
	/tmp/gpnmlint -version
	/tmp/gpnmlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The pre-push gate: static checks + build + the full unit suite.
check: lint build test

# Quick pass: skips the stress variants.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Brief fuzz pass over the graph text-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=20s ./internal/graph/
	$(GO) test -fuzz=FuzzApplyLabels -fuzztime=20s ./internal/graph/

# The CI-sized fuzz pass: same targets, shorter budget.
fuzz-ci:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=10s ./internal/graph/
	$(GO) test -fuzz=FuzzApplyLabels -fuzztime=10s ./internal/graph/

# The tier-1 gate: what CI runs.
ci: vet build race

# Record the benchmark baseline (mini protocol, machine-readable).
bench-seed:
	$(GO) run ./cmd/gpnm-bench -mini -quiet -json BENCH_seed.json -table XI

# UA-GPNM worker-pool sweep on a multi-partition workload.
scaling:
	$(GO) run ./cmd/gpnm-bench -scaling

# The evaluation pass: the mini paper protocol plus the standing-query
# amortisation scenario (one hub vs 8 independent sessions).
bench:
	$(GO) run ./cmd/gpnm-bench -mini -quiet -table XI
	$(GO) run ./cmd/gpnm-bench -patterns 8

# Record the hub amortisation baseline (machine-readable).
bench-hub:
	$(GO) run ./cmd/gpnm-bench -patterns 8 -json BENCH_hub.json

# Record the sharded-substrate baseline: same scenario as bench-hub but
# with the hub's partition engine split across 2 HTTP shard workers —
# the delta vs BENCH_hub.json is the RPC overhead.
bench-shards:
	$(GO) run ./cmd/gpnm-bench -patterns 8 -shards 2 -json BENCH_shards.json

# Record the failover baseline: a 2-worker sharded hub with one worker
# killed mid-run — recovery latency plus batches/sec before, during and
# after the kill (results differentially verified).
bench-failover:
	$(GO) run ./cmd/gpnm-bench -failover -json BENCH_failover.json

# Record the pattern-set index headline: 10k low-selectivity standing
# queries, indexed vs unindexed hub fan-out (results differentially
# verified inside the scenario).
bench-index:
	$(GO) run ./cmd/gpnm-bench -index -patterns 10000 -json BENCH_index.json

# Record the asynchronous-pipeline baseline: lock-step vs pipelined
# batch replay and amend workers 1 vs N (results differentially
# verified inside the scenario; single-core runs are stamped
# degraded_env and show parity by construction).
bench-async:
	$(GO) run ./cmd/gpnm-bench -async -json BENCH_async.json

# Standing-query HTTP server on a synthetic demo graph.
serve:
	$(GO) run ./cmd/gpnm-serve -synth-nodes 2000 -synth-edges 8000 -synth-labels 12

# Sharded quickstart: N gpnm-shard workers + one gpnm-serve coordinator
# on the demo graph (Ctrl-C tears the whole tree down gracefully).
SHARDS ?= 2
SHARD_BASE_PORT ?= 9101
shards:
	@$(GO) build -o /tmp/gpnm-shard ./cmd/gpnm-shard
	@$(GO) build -o /tmp/gpnm-serve ./cmd/gpnm-serve
	@set -e; pids=""; addrs=""; \
	trap 'kill $$pids 2>/dev/null || true' EXIT INT TERM; \
	for i in $$(seq 0 $$(( $(SHARDS) - 1 ))); do \
	  port=$$(( $(SHARD_BASE_PORT) + i )); \
	  /tmp/gpnm-shard -addr 127.0.0.1:$$port & pids="$$pids $$!"; \
	  addrs="$$addrs,127.0.0.1:$$port"; \
	done; \
	/tmp/gpnm-serve -synth-nodes 2000 -synth-edges 8000 -synth-labels 12 \
	  -shards "$${addrs#,}"

# HTTP smoke test: start gpnm-serve, register, apply, assert the delta.
smoke:
	bash scripts/serve_smoke.sh

# Sharded smoke test: 2 gpnm-shard workers + gpnm-serve -shards,
# register → apply → delta → kill -9 one worker → failover-recovered
# apply → graceful shutdown. The failover stage is part of the script;
# failover-smoke names the same run for the recovery-focused invocation.
shard-smoke:
	bash scripts/shard_smoke.sh

failover-smoke:
	bash scripts/shard_smoke.sh

# Index smoke test: the -index scenario at 1k patterns must verify
# equal results and show a real fan-out reduction.
index-smoke:
	bash scripts/index_smoke.sh

# Telemetry smoke test: sharded deployment with an ldflags-stamped
# build; /v1/metrics, /v1/trace, per-pattern stats, worker /metrics and
# the pprof listener must all answer with the counters advancing.
metrics-smoke:
	bash scripts/metrics_smoke.sh

# Async-pipeline smoke test: the -async scenario at mini scale must
# verify equal results and actually overlap queued batches' previews.
async-smoke:
	bash scripts/async_smoke.sh
