GO ?= go

.PHONY: all vet build test short race fuzz ci bench-seed scaling bench bench-hub serve smoke

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick pass: skips the stress variants.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Brief fuzz pass over the graph text-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=20s ./internal/graph/
	$(GO) test -fuzz=FuzzApplyLabels -fuzztime=20s ./internal/graph/

# The tier-1 gate: what CI runs.
ci: vet build race

# Record the benchmark baseline (mini protocol, machine-readable).
bench-seed:
	$(GO) run ./cmd/gpnm-bench -mini -quiet -json BENCH_seed.json -table XI

# UA-GPNM worker-pool sweep on a multi-partition workload.
scaling:
	$(GO) run ./cmd/gpnm-bench -scaling

# The evaluation pass: the mini paper protocol plus the standing-query
# amortisation scenario (one hub vs 8 independent sessions).
bench:
	$(GO) run ./cmd/gpnm-bench -mini -quiet -table XI
	$(GO) run ./cmd/gpnm-bench -patterns 8

# Record the hub amortisation baseline (machine-readable).
bench-hub:
	$(GO) run ./cmd/gpnm-bench -patterns 8 -json BENCH_hub.json

# Standing-query HTTP server on a synthetic demo graph.
serve:
	$(GO) run ./cmd/gpnm-serve -synth-nodes 2000 -synth-edges 8000 -synth-labels 12

# HTTP smoke test: start gpnm-serve, register, apply, assert the delta.
smoke:
	bash scripts/serve_smoke.sh
