GO ?= go

.PHONY: all vet build test short race fuzz ci bench-seed scaling

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Quick pass: skips the stress variants.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Brief fuzz pass over the graph text-format parsers.
fuzz:
	$(GO) test -fuzz=FuzzReadEdgeList -fuzztime=20s ./internal/graph/
	$(GO) test -fuzz=FuzzApplyLabels -fuzztime=20s ./internal/graph/

# The tier-1 gate: what CI runs.
ci: vet build race

# Record the benchmark baseline (mini protocol, machine-readable).
bench-seed:
	$(GO) run ./cmd/gpnm-bench -mini -quiet -json BENCH_seed.json -table XI

# UA-GPNM worker-pool sweep on a multi-partition workload.
scaling:
	$(GO) run ./cmd/gpnm-bench -scaling
