// Command gpnm-bench runs the paper's evaluation protocol (§VII) and
// prints the tables and figures of the evaluation section:
//
//	gpnm-bench -mini                  # quick pass over the mini replicas
//	gpnm-bench                        # the reproduction-scale protocol
//	gpnm-bench -table XI -table XII   # selected tables only
//	gpnm-bench -figure 6              # the DBLP series (paper Fig. 6)
//	gpnm-bench -reps 5 -csv cells.csv # more runs per cell + raw dump
//	gpnm-bench -mini -json seed.json  # machine-readable cell dump
//	gpnm-bench -scaling               # UA-GPNM worker-pool sweep (1..N)
//	gpnm-bench -workers 1             # pin the engine pool (serial run)
//	gpnm-bench -patterns 8            # standing-query hub vs 8 sessions
//	gpnm-bench -patterns 8 -shards 2  # ...with the hub substrate sharded
//	                                  # across 2 self-spawned HTTP workers
//	gpnm-bench -patterns 8 -shards host:9101,host:9102   # external workers
//	gpnm-bench -failover              # 2-worker sharded hub, one worker
//	                                  # killed mid-run: recovery latency +
//	                                  # batches/sec before/during/after
//	gpnm-bench -index                 # pattern-set index: indexed vs
//	                                  # unindexed hub fan-out on a
//	                                  # low-selectivity clustered workload
//	gpnm-bench -index -patterns 10000 # ...at the headline scale
//
// By default every table (XI–XIV) and every figure (5–9) is printed.
// Absolute times differ from the paper (Go vs C++, stand-in datasets at
// reduced scale — see DESIGN.md §4); the reproduced artifact is the
// ordering and the relative gaps.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"

	"uagpnm/internal/bench"
	"uagpnm/internal/datasets"
	"uagpnm/internal/shard"
	"uagpnm/internal/version"
)

type multiFlag []string

func (m *multiFlag) String() string     { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	mini := flag.Bool("mini", false, "use the mini datasets and scaled-down update counts")
	reps := flag.Int("reps", 0, "runs per cell (default: 3 full, 2 mini)")
	sizes := flag.Bool("all-sizes", true, "run all five pattern sizes (false = (8,8) only)")
	csvPath := flag.String("csv", "", "also dump raw cells as CSV to this file")
	jsonPath := flag.String("json", "", "also dump raw cells as JSON to this file")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	workers := flag.Int("workers", 0, "engine worker pool bound (0 = all cores, 1 = serial)")
	scaling := flag.Bool("scaling", false, "run the UA-GPNM worker-scaling sweep instead of the paper protocol")
	patterns := flag.Int("patterns", 0, "run the N-pattern standing-query amortisation scenario (hub vs N sessions) instead of the paper protocol")
	noVerify := flag.Bool("no-verify", false, "skip the hub-vs-sessions equality check in the -patterns scenario")
	shards := flag.String("shards", "", "shard the -patterns hub substrate: an integer N spawns N in-process HTTP shard workers, host:port,... connects to running gpnm-shard processes")
	failover := flag.Bool("failover", false, "run the shard-failover scenario (2 self-spawned workers, one killed mid-run) instead of the paper protocol")
	index := flag.Bool("index", false, "run the pattern-set index scenario (indexed vs unindexed hub fan-out; -patterns overrides the standing-query count) instead of the paper protocol")
	async := flag.Bool("async", false, "run the asynchronous-pipeline scenario (lock-step vs pipelined batch replay, amend workers 1 vs N) instead of the paper protocol")
	var tables, figures multiFlag
	flag.Var(&tables, "table", "print only this table (XI, XII, XIII, XIV); repeatable")
	flag.Var(&figures, "figure", "print only this figure (5-9); repeatable")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("gpnm-bench"))
		return
	}

	if *shards != "" && (*patterns <= 0 || *index) {
		fmt.Fprintln(os.Stderr, "gpnm-bench: -shards applies to the -patterns scenario (the paper protocol builds many short-lived engines, which one shard fleet cannot serve)")
		os.Exit(2)
	}

	if *index {
		warnDegradedEnv("-index")
		cfg := bench.IndexConfig{Workers: *workers, Verify: !*noVerify}
		if *patterns > 0 {
			cfg.Patterns = *patterns
		}
		if *mini {
			cfg.Clusters, cfg.ClusterNodes, cfg.ClusterEdges = 16, 60, 180
			cfg.Batches, cfg.Updates = 4, 15
			if cfg.Patterns == 0 {
				cfg.Patterns = 1000
			}
		}
		res := bench.RunIndex(cfg)
		fmt.Print(res.String())
		writeJSON(*jsonPath, "pattern-set index comparison", res.JSON)
		return
	}

	if *async {
		warnDegradedEnv("-async")
		cfg := bench.AsyncConfig{Workers: *workers, Verify: !*noVerify}
		if *patterns > 0 {
			cfg.Patterns = *patterns
		}
		if *mini {
			cfg.Nodes, cfg.Edges, cfg.Labels = 800, 3200, 8
			cfg.Batches, cfg.Updates = 4, 25
			if cfg.Patterns == 0 {
				cfg.Patterns = 8
			}
		}
		res := bench.RunAsync(cfg)
		fmt.Print(res.String())
		writeJSON(*jsonPath, "asynchronous pipeline comparison", res.JSON)
		return
	}

	if *failover {
		cfg := bench.FailoverConfig{Workers: *workers, Verify: !*noVerify}
		if *patterns > 0 {
			cfg.Patterns = *patterns
		}
		if *mini {
			cfg.Nodes, cfg.Edges, cfg.Labels, cfg.Updates = 1200, 4800, 12, 80
			cfg.BatchesBefore, cfg.BatchesAfter = 2, 2
		}
		res := bench.RunFailover(cfg)
		fmt.Print(res.String())
		writeJSON(*jsonPath, "shard failover profile", res.JSON)
		return
	}

	if *patterns > 0 {
		warnDegradedEnv("-patterns")
		cfg := bench.MultiPatternConfig{Patterns: *patterns, Workers: *workers, Verify: !*noVerify}
		if *mini {
			cfg.Nodes, cfg.Edges, cfg.Labels, cfg.Batches, cfg.Updates = 1200, 4800, 12, 2, 80
		}
		addrs, stop, err := resolveShards(*shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpnm-bench:", err)
			os.Exit(1)
		}
		defer stop()
		cfg.Shards = addrs
		res := bench.RunMultiPattern(cfg)
		fmt.Print(res.String())
		writeJSON(*jsonPath, "standing-query amortisation", res.JSON)
		return
	}

	if *scaling {
		warnDegradedEnv("-scaling")
		cfg := bench.ScalingConfig{}
		if *mini {
			cfg.Nodes, cfg.Edges, cfg.Labels, cfg.Batches, cfg.Updates = 1500, 6000, 16, 2, 100
		}
		if *workers > 0 {
			// Pinned pool: sweep serial vs exactly the requested bound.
			cfg.Workers = []int{1, *workers}
		}
		res := bench.RunScaling(cfg)
		fmt.Print(res.String())
		writeJSON(*jsonPath, "scaling sweep", res.JSON)
		return
	}

	p := bench.Default(*mini)
	p.Workers = *workers
	if *reps > 0 {
		p.Reps = *reps
	}
	if !*sizes {
		p.PatternSizes = [][2]int{{8, 8}}
	}
	if !*quiet {
		p.Progress = os.Stderr
	}

	res := p.Run()

	wantTable := func(name string) bool {
		if len(tables) == 0 && len(figures) == 0 {
			return true
		}
		for _, t := range tables {
			if t == name {
				return true
			}
		}
		return false
	}
	wantFigure := func(n int) bool {
		if len(tables) == 0 && len(figures) == 0 {
			return true
		}
		for _, f := range figures {
			if v, err := strconv.Atoi(f); err == nil && v == n {
				return true
			}
		}
		return false
	}

	if wantTable("XI") {
		fmt.Println(res.TableXI())
	}
	if wantTable("XII") {
		fmt.Println(res.TableXII())
	}
	if wantTable("XIII") {
		fmt.Println(res.TableXIII())
	}
	if wantTable("XIV") {
		fmt.Println(res.TableXIV())
	}
	for _, spec := range datasets.Sim() {
		if wantFigure(bench.FigureNumber(spec.Name)) {
			fmt.Println(res.Figure(spec.Name))
		}
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(res.CSV()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gpnm-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "raw cells written to %s\n", *csvPath)
	}
	writeJSON(*jsonPath, "raw cells", res.JSON)
}

// warnDegradedEnv prints a prominent caveat when a concurrency-
// sensitive scenario runs on a single-core budget: every worker-count
// comparison degenerates to parity there, and a recorded BENCH_*.json
// would read as "no speedup" when it means "no cores". The JSON side
// of the same caveat is env.degraded_env, stamped by bench.CaptureEnv.
func warnDegradedEnv(scenario string) {
	if runtime.GOMAXPROCS(0) > 1 {
		return
	}
	fmt.Fprintf(os.Stderr, `gpnm-bench: WARNING: %s is running with GOMAXPROCS=1 (num_cpu=%d).
gpnm-bench: WARNING: parallel speedups CANNOT manifest on a single core; worker-count
gpnm-bench: WARNING: comparisons below will show parity regardless of the implementation.
gpnm-bench: WARNING: the JSON output is stamped "degraded_env": true — do not use it as
gpnm-bench: WARNING: a scaling baseline.
`, scenario, runtime.NumCPU())
}

// resolveShards turns the -shards flag into worker addresses. An
// integer N spawns N in-process shard workers on loopback — the full
// HTTP/JSON protocol with zero orchestration, so the RPC overhead of a
// sharded deployment is measurable from one binary; anything else is
// parsed as a comma-separated address list of external gpnm-shard
// processes. stop tears the spawned listeners down.
func resolveShards(spec string) (addrs []string, stop func(), err error) {
	stop = func() {}
	if spec == "" {
		return nil, stop, nil
	}
	if n, perr := strconv.Atoi(spec); perr == nil {
		if n < 1 {
			return nil, stop, fmt.Errorf("-shards %d: need at least one worker", n)
		}
		var listeners []net.Listener
		for i := 0; i < n; i++ {
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				return nil, stop, lerr
			}
			listeners = append(listeners, ln)
			go func() { _ = http.Serve(ln, shard.NewServer().Handler()) }()
			addrs = append(addrs, ln.Addr().String())
		}
		fmt.Fprintf(os.Stderr, "gpnm-bench: spawned %d in-process shard worker(s): %s\n",
			n, strings.Join(addrs, ", "))
		return addrs, func() {
			for _, ln := range listeners {
				_ = ln.Close()
			}
		}, nil
	}
	if addrs = shard.ParseAddrs(spec); len(addrs) == 0 {
		return nil, stop, fmt.Errorf("-shards %q: no addresses", spec)
	}
	return addrs, stop, nil
}

// writeJSON renders via marshal and writes to path ("" = disabled),
// exiting on failure.
func writeJSON(path, what string, marshal func() ([]byte, error)) {
	if path == "" {
		return
	}
	out, err := marshal()
	if err == nil {
		err = os.WriteFile(path, out, 0o644)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "%s written to %s\n", what, path)
}
