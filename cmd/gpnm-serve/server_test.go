package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"uagpnm"
)

// testServer stands up the handler over the quickstart-sized graph:
// 0:PM, 1:SE, 2:PM with 0→1.
func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := uagpnm.NewGraph()
	g.AddNode("PM")
	g.AddNode("SE")
	g.AddNode("PM")
	g.AddEdge(0, 1)
	h := uagpnm.NewHub(g, uagpnm.HubOptions{Horizon: 3, Workers: 1})
	ts := httptest.NewServer(newServer(h, 2*time.Second).routes())
	t.Cleanup(ts.Close)
	return ts
}

func mustJSON(t *testing.T, resp *http.Response, wantStatus int, into interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d (want %d): %s", resp.StatusCode, wantStatus, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}

func post(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestServeEndToEnd(t *testing.T) {
	ts := testServer(t)

	// Health.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		OK    bool `json:"ok"`
		Nodes int  `json:"nodes"`
	}
	mustJSON(t, resp, http.StatusOK, &health)
	if !health.OK || health.Nodes != 3 {
		t.Fatalf("health = %+v", health)
	}

	// Register.
	var reg resultBody
	mustJSON(t, post(t, ts.URL+"/patterns", registerRequest{
		Pattern: "node pm PM\nnode se SE\nedge pm se 2\n",
	}), http.StatusOK, &reg)
	if reg.ID == 0 || !reg.Total || len(reg.Nodes) != 2 {
		t.Fatalf("register = %+v", reg)
	}
	if reg.Nodes[0].Name != "pm" || len(reg.Nodes[0].Matches) != 1 || reg.Nodes[0].Matches[0] != 0 {
		t.Fatalf("initial pm result = %+v", reg.Nodes[0])
	}

	// Apply: connect the second PM; expect a delta for pattern node 0.
	var applied applyResponse
	mustJSON(t, post(t, ts.URL+"/apply", applyRequest{Data: "+e 2 1\n"}), http.StatusOK, &applied)
	if applied.Seq != 1 || len(applied.Deltas) != 1 {
		t.Fatalf("apply = %+v", applied)
	}
	d := applied.Deltas[0]
	if d.Pattern != reg.ID || len(d.Nodes) != 1 || len(d.Nodes[0].Added) != 1 || d.Nodes[0].Added[0] != 2 {
		t.Fatalf("delta = %+v", d)
	}

	// Fetch the updated result.
	var res resultBody
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &res)
	if len(res.Nodes[0].Matches) != 2 {
		t.Fatalf("result after apply = %+v", res.Nodes[0])
	}

	// Long-poll from seq 0: the delta is already retained.
	var polled deltasResponse
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d/deltas?since=0&timeout=1s", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &polled)
	if polled.Seq != 1 || len(polled.Deltas) != 1 {
		t.Fatalf("poll = %+v", polled)
	}

	// Long-poll past the tip: a concurrent apply must wake it.
	type pollOut struct {
		body deltasResponse
		err  error
	}
	ch := make(chan pollOut, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/patterns/%d/deltas?since=1&timeout=5s", ts.URL, reg.ID))
		if err != nil {
			ch <- pollOut{err: err}
			return
		}
		defer resp.Body.Close()
		var out deltasResponse
		err = json.NewDecoder(resp.Body).Decode(&out)
		ch <- pollOut{body: out, err: err}
	}()
	time.Sleep(50 * time.Millisecond)
	mustJSON(t, post(t, ts.URL+"/apply", applyRequest{Data: "-e 2 1\n"}), http.StatusOK, &applied)
	got := <-ch
	if got.err != nil || len(got.body.Deltas) != 1 || len(got.body.Deltas[0].Nodes[0].Removed) != 1 {
		t.Fatalf("long-poll woke with %+v (err %v)", got.body, got.err)
	}

	// Pattern-side update through /apply: delete the pattern edge, the
	// second pattern node's constraint relaxes nothing but pm's does.
	mustJSON(t, post(t, ts.URL+"/apply", applyRequest{
		Patterns: map[string]string{fmt.Sprint(reg.ID): "-pe 0 1\n"},
	}), http.StatusOK, &applied)
	if len(applied.Deltas[0].Nodes) == 0 {
		t.Fatalf("pattern relaxation produced no delta: %+v", applied)
	}

	// Unregister; subsequent fetch 404s.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var okBody map[string]bool
	mustJSON(t, resp, http.StatusOK, &okBody)
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch after unregister: status %d", resp.StatusCode)
	}
}

func TestServeValidation(t *testing.T) {
	ts := testServer(t)

	for _, tc := range []struct {
		name   string
		do     func() *http.Response
		status int
	}{
		{"bad pattern DSL", func() *http.Response {
			return post(t, ts.URL+"/patterns", registerRequest{Pattern: "nope"})
		}, http.StatusBadRequest},
		{"empty pattern", func() *http.Response {
			return post(t, ts.URL+"/patterns", registerRequest{Pattern: "# nothing\n"})
		}, http.StatusBadRequest},
		{"pattern update on data side", func() *http.Response {
			return post(t, ts.URL+"/apply", applyRequest{Data: "+pe 0 1 2\n"})
		}, http.StatusBadRequest},
		{"unknown pattern in apply", func() *http.Response {
			return post(t, ts.URL+"/apply", applyRequest{Patterns: map[string]string{"99": "-pe 0 1\n"}})
		}, http.StatusNotFound},
		{"unknown pattern result", func() *http.Response {
			resp, err := http.Get(ts.URL + "/patterns/99")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound},
		{"bad id", func() *http.Response {
			resp, err := http.Get(ts.URL + "/patterns/xyz")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest},
	} {
		resp := tc.do()
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	// Long-poll timeout returns an empty poll, HTTP 200.
	var reg resultBody
	mustJSON(t, post(t, ts.URL+"/patterns", registerRequest{
		Pattern: "node pm PM\n",
	}), http.StatusOK, &reg)
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/patterns/%d/deltas?since=%d&timeout=100ms", ts.URL, reg.ID, reg.Seq))
	if err != nil {
		t.Fatal(err)
	}
	var polled deltasResponse
	mustJSON(t, resp, http.StatusOK, &polled)
	if len(polled.Deltas) != 0 || time.Since(start) < 90*time.Millisecond {
		t.Fatalf("timeout poll = %+v after %v", polled, time.Since(start))
	}
}
