// Command gpnm-serve exposes a standing-query hub over HTTP/JSON: one
// evolving data graph, one shared SLen substrate, many registered
// patterns — every update batch pays the substrate synchronisation once
// and streams per-pattern result deltas to subscribers.
//
// Start it on a SNAP-style edge list (optionally with a label file), on
// a generated synthetic social graph, or on an empty graph to be grown
// entirely through /apply:
//
//	gpnm-serve -graph g.txt -labels g.labels -horizon 3
//	gpnm-serve -synth-nodes 2000 -synth-edges 8000 -synth-labels 12
//	gpnm-serve                       # empty graph, build via /apply
//
// With -shards host:port,... the hub's partition substrate is served
// from that many gpnm-shard worker processes (the §V partitions split
// round-robin, the bridge overlay staying in this process as the
// coordination layer); the HTTP API is unchanged. The server drains
// in-flight requests on SIGINT/SIGTERM before exiting.
//
// Endpoints (see README.md for curl examples):
//
//	GET    /healthz                      liveness + hub stats
//	POST   /patterns                     {"pattern": "node a A\n..."} → id + initial result
//	GET    /patterns/{id}                current result
//	DELETE /patterns/{id}                unregister
//	POST   /apply                        {"data": "+e 1 2\n...", "patterns": {"1": "-pe 0 1"}}
//	GET    /patterns/{id}/deltas?since=N long-poll result changes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uagpnm"
	"uagpnm/internal/shard"
	"uagpnm/internal/srvutil"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	graphPath := flag.String("graph", "", "data graph edge list (SNAP format); empty = start empty or synthetic")
	labelsPath := flag.String("labels", "", "optional node label file for -graph")
	defaultLabel := flag.String("default-label", "node", "label for nodes without one")
	synthNodes := flag.Int("synth-nodes", 0, "generate a synthetic social graph with this many nodes (0 = off)")
	synthEdges := flag.Int("synth-edges", 0, "edges for the synthetic graph (default 4×nodes)")
	synthLabels := flag.Int("synth-labels", 12, "distinct labels for the synthetic graph")
	seed := flag.Int64("seed", 1, "synthetic graph seed")
	horizon := flag.Int("horizon", 3, "SLen hop cap (0 = exact distances)")
	workers := flag.Int("workers", 0, "substrate + fan-out worker bound (0 = all cores)")
	shards := flag.String("shards", "", "comma-separated gpnm-shard worker addresses (host:port,...); empty = in-process substrate")
	history := flag.Int("history", 0, "retained deltas per pattern for long-polling (0 = default)")
	pollTimeout := flag.Duration("poll-timeout", 30*time.Second, "maximum long-poll wait")
	grace := flag.Duration("grace", 30*time.Second, "graceful shutdown drain window")
	flag.Parse()

	g, err := buildGraph(*graphPath, *labelsPath, *defaultLabel, *synthNodes, *synthEdges, *synthLabels, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-serve:", err)
		os.Exit(1)
	}
	stats := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "gpnm-serve: graph ready — %d nodes, %d edges, %d labels\n",
		stats.Nodes, stats.Edges, stats.Labels)

	shardAddrs := shard.ParseAddrs(*shards)
	if len(shardAddrs) > 0 {
		fmt.Fprintf(os.Stderr, "gpnm-serve: sharded substrate across %d worker(s): %s\n",
			len(shardAddrs), strings.Join(shardAddrs, ", "))
	}

	h := uagpnm.NewHub(g, uagpnm.HubOptions{
		Horizon: *horizon,
		Workers: *workers,
		Shards:  shardAddrs,
		History: *history,
	})
	srv := newServer(h, *pollTimeout)
	fmt.Fprintf(os.Stderr, "gpnm-serve: listening on %s\n", *addr)
	// Graceful shutdown on SIGINT/SIGTERM: in-flight /apply and
	// long-polls drain within the grace window instead of being severed.
	if err := srvutil.ListenAndServe(*addr, srv.routes(), "gpnm-serve", *grace, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-serve:", err)
		os.Exit(1)
	}
	_ = h.Close() // release remote shard clients after the drain
}

func buildGraph(graphPath, labelsPath, defaultLabel string, synthNodes, synthEdges, synthLabels int, seed int64) (*uagpnm.Graph, error) {
	if graphPath != "" {
		gf, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		g, idMap, err := uagpnm.LoadGraphWithIDs(gf, defaultLabel)
		if err != nil {
			return nil, err
		}
		if labelsPath != "" {
			lf, err := os.Open(labelsPath)
			if err != nil {
				return nil, err
			}
			defer lf.Close()
			// Label files are keyed by the edge list's original ids; the
			// loader remapped those densely, so apply through the id map.
			skipped, err := g.ApplyLabelsMapped(lf, idMap)
			if err != nil {
				return nil, err
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "gpnm-serve: %d label line(s) named nodes absent from the edge list (isolated); skipped\n", skipped)
			}
		}
		return g, nil
	}
	if synthNodes > 0 {
		if synthEdges == 0 {
			synthEdges = 4 * synthNodes
		}
		return uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
			Name: "serve", Nodes: synthNodes, Edges: synthEdges,
			Labels: synthLabels, Homophily: 0.8, PrefAtt: 0.6, Seed: seed,
		}), nil
	}
	return uagpnm.NewGraph(), nil
}
