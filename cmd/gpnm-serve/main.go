// Command gpnm-serve exposes a standing-query hub over HTTP/JSON: one
// evolving data graph, one shared SLen substrate, many registered
// patterns — every update batch pays the substrate synchronisation once
// and streams per-pattern result deltas to subscribers. The protocol is
// the versioned /v1 API of internal/api, which uagpnm.Dial speaks; the
// pre-versioning routes stay mounted as aliases for one release.
//
// Start it on a SNAP-style edge list (optionally with a label file), on
// a generated synthetic social graph, or on an empty graph to be grown
// entirely through /v1/apply:
//
//	gpnm-serve -graph g.txt -labels g.labels -horizon 3
//	gpnm-serve -synth-nodes 2000 -synth-edges 8000 -synth-labels 12
//	gpnm-serve                       # empty graph, build via /v1/apply
//
// With -shards host:port,... the hub's partition substrate is served
// from that many gpnm-shard worker processes (the §V partitions split
// round-robin, the bridge overlay staying in this process as the
// coordination layer); the HTTP API is unchanged. A worker lost
// mid-run is handled by failover, not death: the coordinator rebuilds
// the lost partitions from its own subgraph mirrors on the surviving
// workers — or on a standby from -spare-shards — replays the in-flight
// op stream under an epoch fence, and retries the batch; /healthz
// answers 200 {"recovering":true} while the repair runs and mutating
// requests get a retryable substrate_recovering. Up to
// -failover-retries distinct losses are absorbed per batch. Only when
// nothing survives does the old terminal path fire: the hub poisons
// itself, every handler answers the machine-readable substrate_lost
// error, parked long-polls are woken, and the process drains
// gracefully and exits non-zero for its supervisor to restart into a
// clean build. SIGINT/SIGTERM drain the same way.
//
// Endpoints (see README.md for the table and curl examples):
//
//	GET    /v1/healthz                      liveness + hub stats
//	POST   /v1/patterns                     register (DSL or typed graph) → id + initial result
//	GET    /v1/patterns/{id}                current result
//	GET    /v1/patterns/{id}/snapshot       typed pattern + raw simulation images + seq
//	DELETE /v1/patterns/{id}                unregister
//	POST   /v1/apply                        typed update batch
//	GET    /v1/patterns/{id}/deltas?since=N long-poll result changes
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uagpnm"
	"uagpnm/internal/shard"
	"uagpnm/internal/srvutil"
	"uagpnm/internal/version"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	showVersion := flag.Bool("version", false, "print version and exit")
	graphPath := flag.String("graph", "", "data graph edge list (SNAP format); empty = start empty or synthetic")
	labelsPath := flag.String("labels", "", "optional node label file for -graph")
	defaultLabel := flag.String("default-label", "node", "label for nodes without one")
	synthNodes := flag.Int("synth-nodes", 0, "generate a synthetic social graph with this many nodes (0 = off)")
	synthEdges := flag.Int("synth-edges", 0, "edges for the synthetic graph (default 4×nodes)")
	synthLabels := flag.Int("synth-labels", 12, "distinct labels for the synthetic graph")
	seed := flag.Int64("seed", 1, "synthetic graph seed")
	horizon := flag.Int("horizon", 3, "SLen hop cap (0 = exact distances)")
	workers := flag.Int("workers", 0, "substrate + fan-out worker bound (0 = all cores)")
	shards := flag.String("shards", "", "comma-separated gpnm-shard worker addresses (host:port,...); empty = in-process substrate")
	spareShards := flag.String("spare-shards", "", "standby gpnm-shard workers promoted on shard loss (host:port,...)")
	failoverRetries := flag.Int("failover-retries", 1, "shard losses absorbed per engine operation (batch phase group, register query) via failover before the hub poisons itself (0 = poison on first loss)")
	opChunk := flag.Int("op-chunk", 0, "op-stream chunk size for sharded substrates: structural ops flush to the workers in fenced chunks of this size while the batch is still staging (0 = engine default, negative = one end-of-phase flush)")
	pipelined := flag.Bool("pipeline", false, "overlap consecutive batches: a queued batch's pre-state balls are computed while its predecessor is still amending patterns (results identical; lower latency under back-to-back load)")
	healthSweep := flag.Duration("health-sweep", 0, "probe the shard fleet at this interval while idle, repairing workers that died between batches off the critical path (0 = off; only with -shards)")
	history := flag.Int("history", 0, "retained deltas per pattern for long-polling (0 = default)")
	noIndex := flag.Bool("no-index", false, "disable the pattern-set discrimination index (every batch fans over every registration; results are identical, this is an escape hatch and measurement aid)")
	pollTimeout := flag.Duration("poll-timeout", 30*time.Second, "maximum long-poll wait")
	grace := flag.Duration("grace", 30*time.Second, "graceful shutdown drain window")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("gpnm-serve"))
		return
	}
	srvutil.StartPprof(*pprofAddr, "gpnm-serve", os.Stderr)

	g, err := buildGraph(*graphPath, *labelsPath, *defaultLabel, *synthNodes, *synthEdges, *synthLabels, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-serve:", err)
		os.Exit(1)
	}
	stats := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "gpnm-serve: graph ready — %d nodes, %d edges, %d labels\n",
		stats.Nodes, stats.Edges, stats.Labels)

	shardAddrs := shard.ParseAddrs(*shards)
	spareAddrs := shard.ParseAddrs(*spareShards)
	if len(shardAddrs) > 0 {
		fmt.Fprintf(os.Stderr, "gpnm-serve: sharded substrate across %d worker(s): %s\n",
			len(shardAddrs), strings.Join(shardAddrs, ", "))
		if len(spareAddrs) > 0 {
			fmt.Fprintf(os.Stderr, "gpnm-serve: %d spare worker(s) on standby: %s\n",
				len(spareAddrs), strings.Join(spareAddrs, ", "))
		}
	}
	retries := *failoverRetries
	if retries <= 0 {
		retries = -1 // flag 0 = disable failover (the config's 0 means "library default")
	}

	h, err := uagpnm.NewHub(g, uagpnm.HubOptions{
		Horizon:         *horizon,
		Workers:         *workers,
		Shards:          shardAddrs,
		SpareShards:     spareAddrs,
		FailoverRetries: retries,
		OpChunk:         *opChunk,
		Pipeline:        *pipelined,
		HealthSweep:     *healthSweep,
		History:         *history,
		DisableIndex:    *noIndex,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-serve: building hub:", err)
		os.Exit(1)
	}

	// Substrate loss (a shard worker died mid-batch) starts the same
	// graceful drain a SIGTERM would: the hub has already woken every
	// parked long-poll with ErrSubstrateLost, handlers answer the
	// machine-readable substrate_lost error, and closing stop lets
	// in-flight requests finish inside the grace window instead of the
	// old recover-and-os.Exit path severing them. The handler fires the
	// callback exactly once, and the hub keeps the loss sticky (Err).
	stop := make(chan struct{})
	handler := uagpnm.NewHandler(h, uagpnm.HandlerOptions{
		PollTimeout: *pollTimeout,
		OnSubstrateLoss: func(err error) {
			fmt.Fprintf(os.Stderr, "gpnm-serve: substrate lost (%v) — draining\n", err)
			close(stop)
		},
	})

	fmt.Fprintf(os.Stderr, "gpnm-serve: listening on %s\n", *addr)
	// Graceful shutdown on SIGINT/SIGTERM or substrate loss: in-flight
	// /apply and long-polls drain within the grace window instead of
	// being severed.
	err = srvutil.ListenAndServeUntil(*addr, handler, "gpnm-serve", *grace, os.Stderr, stop)
	_ = h.Close() // release remote shard clients after the drain
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-serve:", err)
		os.Exit(1)
	}
	if lossErr := h.Err(); lossErr != nil {
		// Drained cleanly, but the substrate is gone: exit non-zero so a
		// supervisor restarts this process into a fresh build.
		fmt.Fprintln(os.Stderr, "gpnm-serve: exiting after substrate loss:", lossErr)
		os.Exit(1)
	}
}

func buildGraph(graphPath, labelsPath, defaultLabel string, synthNodes, synthEdges, synthLabels int, seed int64) (*uagpnm.Graph, error) {
	if graphPath != "" {
		gf, err := os.Open(graphPath)
		if err != nil {
			return nil, err
		}
		defer gf.Close()
		g, idMap, err := uagpnm.LoadGraphWithIDs(gf, defaultLabel)
		if err != nil {
			return nil, err
		}
		if labelsPath != "" {
			lf, err := os.Open(labelsPath)
			if err != nil {
				return nil, err
			}
			defer lf.Close()
			// Label files are keyed by the edge list's original ids; the
			// loader remapped those densely, so apply through the id map.
			skipped, err := g.ApplyLabelsMapped(lf, idMap)
			if err != nil {
				return nil, err
			}
			if skipped > 0 {
				fmt.Fprintf(os.Stderr, "gpnm-serve: %d label line(s) named nodes absent from the edge list (isolated); skipped\n", skipped)
			}
		}
		return g, nil
	}
	if synthNodes > 0 {
		if synthEdges == 0 {
			synthEdges = 4 * synthNodes
		}
		return uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
			Name: "serve", Nodes: synthNodes, Edges: synthEdges,
			Labels: synthLabels, Homophily: 0.8, PrefAtt: 0.6, Seed: seed,
		}), nil
	}
	return uagpnm.NewGraph(), nil
}
