package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"uagpnm"
	"uagpnm/internal/shard"
	"uagpnm/internal/srvutil"
	"uagpnm/internal/updates"
)

// server exposes one standing-query hub over HTTP/JSON. Every handler
// is a thin adapter: parsing and rendering here, all matching semantics
// in the hub (which is safe for concurrent handlers by construction).
type server struct {
	hub         *uagpnm.Hub
	pollTimeout time.Duration // cap for ?timeout= on the delta long-poll
}

func newServer(h *uagpnm.Hub, pollTimeout time.Duration) *server {
	if pollTimeout <= 0 {
		pollTimeout = 30 * time.Second
	}
	return &server{hub: h, pollTimeout: pollTimeout}
}

// routes wires the endpoint table:
//
//	GET    /healthz              liveness + hub stats
//	POST   /patterns             register a pattern (textual DSL), returns id + initial result
//	GET    /patterns/{id}        current result of one standing query
//	DELETE /patterns/{id}        unregister
//	GET    /patterns/{id}/deltas long-poll changes since ?since=SEQ
//	POST   /apply                apply one update batch (data + per-pattern scripts)
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /patterns", s.handleRegister)
	mux.HandleFunc("GET /patterns/{id}", s.handleResult)
	mux.HandleFunc("DELETE /patterns/{id}", s.handleUnregister)
	mux.HandleFunc("GET /patterns/{id}/deltas", s.handleDeltas)
	mux.HandleFunc("POST /apply", s.handleApply)
	return fatalOnShardLoss(mux)
}

// fatalOnShardLoss catches what net/http's per-connection recover would
// otherwise swallow: a shard.TransportError unwinding through a handler
// means a shard worker was lost mid-mutation — the substrate may be
// half-advanced relative to the data graph, and every further answer
// from this process could be silently wrong. The shard error model
// (internal/shard) says a coordinator losing a shard loses the session,
// so exit loudly and let the supervisor restart into a clean /build.
// Any other panic is re-raised for net/http's default handling.
func fatalOnShardLoss(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			var te *shard.TransportError
			if err, ok := rec.(error); ok && errors.As(err, &te) {
				fmt.Fprintf(os.Stderr, "gpnm-serve: fatal: %v — substrate state lost, exiting\n", te)
				os.Exit(1)
			}
			panic(rec)
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *server) patternID(r *http.Request) (uagpnm.PatternID, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad pattern id %q", raw)
	}
	return uagpnm.PatternID(id), nil
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.hub.GraphStats() // synchronised: /apply may be mutating the graph
	srvutil.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"ok":       true,
		"seq":      s.hub.Seq(),
		"patterns": len(s.hub.Patterns()),
		"nodes":    st.Nodes,
		"edges":    st.Edges,
		"labels":   st.Labels,
	})
}

type registerRequest struct {
	// Pattern is the textual pattern DSL ("node <name> <label>" /
	// "edge <from> <to> <bound>" lines).
	Pattern string `json:"pattern"`
}

func (s *server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	// RegisterScript parses under the hub's lock: interning a new label
	// must not race a concurrent /apply or register.
	id, err := s.hub.RegisterScript(strings.NewReader(req.Pattern))
	if err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, s.renderResult(id))
}

// resultBody renders one standing query's current state.
type resultBody struct {
	ID    uagpnm.PatternID `json:"id"`
	Seq   uint64           `json:"seq"`
	Total bool             `json:"total"`
	Nodes []resultNode     `json:"nodes"`
}

type resultNode struct {
	Node    uagpnm.PatternNodeID `json:"node"`
	Name    string               `json:"name"`
	Label   string               `json:"label"`
	Matches []uint32             `json:"matches"`
}

func (s *server) renderResult(id uagpnm.PatternID) *resultBody {
	// One consistent snapshot: pattern, match and seq must describe the
	// same epoch even when a batch lands mid-render.
	p, m, seq, ok := s.hub.Snapshot(id)
	if !ok {
		return nil
	}
	body := &resultBody{ID: id, Seq: seq, Total: m.Total(), Nodes: []resultNode{}}
	p.Nodes(func(u uagpnm.PatternNodeID) {
		body.Nodes = append(body.Nodes, resultNode{
			Node:    u,
			Name:    p.Name(u),
			Label:   p.LabelName(u),
			Matches: setSlice(m.Nodes(u)),
		})
	})
	return body
}

func setSlice(s uagpnm.NodeSet) []uint32 {
	if len(s) == 0 {
		return []uint32{}
	}
	return s
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := s.patternID(r)
	if err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := s.renderResult(id)
	if body == nil {
		srvutil.WriteError(w, http.StatusNotFound, "unknown pattern %d", id)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, body)
}

func (s *server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	id, err := s.patternID(r)
	if err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.hub.Unregister(id) {
		srvutil.WriteError(w, http.StatusNotFound, "unknown pattern %d", id)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

type applyRequest struct {
	// Data is an update script for the shared data graph (one "+e u v" /
	// "-e u v" / "+n id label,..." / "-n id" directive per line).
	Data string `json:"data"`
	// Patterns maps pattern ids to ΔGP scripts ("+pe u v k", "-pe u v",
	// "+pn id label", "-pn id").
	Patterns map[string]string `json:"patterns"`
}

type applyResponse struct {
	Seq    uint64      `json:"seq"`
	Deltas []deltaBody `json:"deltas"`
	// SLenSyncMillis is the shared substrate synchronisation cost this
	// batch paid once, for all patterns together.
	SLenSyncMillis float64 `json:"slen_sync_millis"`
}

type deltaBody struct {
	Pattern uagpnm.PatternID `json:"pattern"`
	Seq     uint64           `json:"seq"`
	Nodes   []deltaNode      `json:"nodes"`
}

type deltaNode struct {
	Node    uagpnm.PatternNodeID `json:"node"`
	Added   []uint32             `json:"added"`
	Removed []uint32             `json:"removed"`
}

func renderDelta(d uagpnm.HubDelta) deltaBody {
	body := deltaBody{Pattern: d.Pattern, Seq: d.Seq, Nodes: []deltaNode{}}
	for _, nd := range d.Nodes {
		body.Nodes = append(body.Nodes, deltaNode{
			Node:    nd.Node,
			Added:   setSlice(nd.Added),
			Removed: setSlice(nd.Removed),
		})
	}
	return body
}

func (s *server) handleApply(w http.ResponseWriter, r *http.Request) {
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return
	}
	var batch uagpnm.HubBatch
	if req.Data != "" {
		b, err := updates.ParseScript(strings.NewReader(req.Data))
		if err != nil {
			srvutil.WriteError(w, http.StatusBadRequest, "data script: %v", err)
			return
		}
		if len(b.P) > 0 {
			srvutil.WriteError(w, http.StatusBadRequest, "data script contains pattern updates; put them under \"patterns\"")
			return
		}
		batch.D = b.D
	}
	for rawID, script := range req.Patterns {
		id, err := strconv.ParseUint(rawID, 10, 64)
		if err != nil {
			srvutil.WriteError(w, http.StatusBadRequest, "bad pattern id %q", rawID)
			return
		}
		b, err := updates.ParseScript(strings.NewReader(script))
		if err != nil {
			srvutil.WriteError(w, http.StatusBadRequest, "pattern %s script: %v", rawID, err)
			return
		}
		if len(b.D) > 0 {
			srvutil.WriteError(w, http.StatusBadRequest, "pattern %s script contains data updates; put them under \"data\"", rawID)
			return
		}
		if batch.P == nil {
			batch.P = make(map[uagpnm.PatternID][]uagpnm.Update)
		}
		batch.P[uagpnm.PatternID(id)] = b.P
	}

	deltas, stats, err := s.hub.ApplyBatch(batch)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, uagpnm.ErrUnknownPattern) {
			status = http.StatusNotFound
		}
		srvutil.WriteError(w, status, "%v", err)
		return
	}
	// Report THIS batch's seq and cost: a concurrent /apply may already
	// have advanced Seq()/LastBatch() past them.
	resp := applyResponse{
		Seq:            stats.Seq,
		Deltas:         []deltaBody{},
		SLenSyncMillis: float64(stats.SLenSync.Microseconds()) / 1000,
	}
	for _, d := range deltas {
		resp.Deltas = append(resp.Deltas, renderDelta(d))
	}
	srvutil.WriteJSON(w, http.StatusOK, resp)
}

type deltasResponse struct {
	Seq    uint64      `json:"seq"`    // highest seq in Deltas, or the polled-from seq
	Resync bool        `json:"resync"` // subscriber fell behind the history: refetch GET /patterns/{id}
	Deltas []deltaBody `json:"deltas"`
}

func (s *server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	id, err := s.patternID(r)
	if err != nil {
		srvutil.WriteError(w, http.StatusBadRequest, "%v", err)
		return
	}
	since := uint64(0)
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			srvutil.WriteError(w, http.StatusBadRequest, "bad since %q", raw)
			return
		}
	}
	timeout := s.pollTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			srvutil.WriteError(w, http.StatusBadRequest, "bad timeout %q", raw)
			return
		}
		if d < timeout {
			timeout = d
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ds, resync, err := s.hub.WaitDeltas(ctx, id, since)
	switch {
	case errors.Is(err, uagpnm.ErrUnknownPattern):
		srvutil.WriteError(w, http.StatusNotFound, "unknown pattern %d", id)
		return
	case err != nil:
		// Timeout or client cancellation: an empty poll, not a failure.
		srvutil.WriteJSON(w, http.StatusOK, deltasResponse{Seq: since, Deltas: []deltaBody{}})
		return
	}
	resp := deltasResponse{Seq: since, Resync: resync, Deltas: []deltaBody{}}
	for _, d := range ds {
		resp.Deltas = append(resp.Deltas, renderDelta(d))
		if d.Seq > resp.Seq {
			resp.Seq = d.Seq
		}
	}
	srvutil.WriteJSON(w, http.StatusOK, resp)
}
