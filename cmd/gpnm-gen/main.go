// Command gpnm-gen generates synthetic evaluation inputs: a social data
// graph (edge list + label file), a random pattern, and optionally an
// update script — everything cmd/gpnm consumes.
//
// Usage:
//
//	gpnm-gen -preset DBLP -out dblp              # one of the five stand-ins
//	gpnm-gen -nodes 5000 -edges 20000 -labels 12 -homophily 0.95 -out my
//	gpnm-gen -preset DBLP -mini -pattern-nodes 8 -updates 6,200 -out x
//
// Writes <out>.edges, <out>.labels, <out>.pattern and (with -updates)
// <out>.updates.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uagpnm"
	"uagpnm/internal/datasets"
	"uagpnm/internal/updates"
	"uagpnm/internal/version"
)

func main() {
	preset := flag.String("preset", "", "dataset preset: email-EU-core | DBLP | Amazon | Youtube | LiveJournal")
	mini := flag.Bool("mini", false, "use the mini (quick) preset scale")
	nodes := flag.Int("nodes", 2000, "nodes (custom config)")
	edges := flag.Int("edges", 8000, "edges (custom config)")
	labels := flag.Int("labels", 10, "distinct labels (custom config)")
	homophily := flag.Float64("homophily", 0.95, "intra-label edge fraction")
	prefAtt := flag.Float64("prefatt", 0.6, "preferential attachment probability")
	seed := flag.Int64("seed", 1, "generator seed")
	patternNodes := flag.Int("pattern-nodes", 8, "pattern nodes")
	patternEdges := flag.Int("pattern-edges", 8, "pattern edges")
	updateScale := flag.String("updates", "", "optional update batch scale \"p,d\" (e.g. 6,200)")
	out := flag.String("out", "dataset", "output file prefix")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("gpnm-gen"))
		return
	}

	cfg := uagpnm.SocialGraphConfig{
		Name: "custom", Nodes: *nodes, Edges: *edges, Labels: *labels,
		Homophily: *homophily, PrefAtt: *prefAtt, Seed: *seed,
	}
	if *preset != "" {
		specs := datasets.Sim()
		if *mini {
			specs = datasets.Mini()
		}
		spec, ok := datasets.ByName(specs, *preset)
		if !ok {
			fatalf("unknown preset %q", *preset)
		}
		cfg = spec.SocialConfig
	}

	g := uagpnm.GenerateSocialGraph(cfg)
	writeTo(*out+".edges", func(f *os.File) error { return g.WriteEdgeList(f) })
	writeTo(*out+".labels", func(f *os.File) error { return g.WriteLabels(f) })

	// The consumer (cmd/gpnm) reloads the edge list, which remaps node
	// ids densely by first appearance and cannot carry isolated nodes —
	// so the pattern and update script must be generated against the
	// round-tripped graph, or their node ids would silently point
	// elsewhere. The label file stays keyed by the original ids: the
	// loader translates it through the same id map (ApplyLabelsMapped).
	g2 := reload(*out)
	if dropped := g.NumNodes() - g2.NumNodes(); dropped > 0 {
		fmt.Fprintf(os.Stderr, "gpnm-gen: %d isolated node(s) not representable in the edge list; dropped\n", dropped)
	}

	p := uagpnm.GeneratePattern(uagpnm.PatternConfig{
		Nodes: *patternNodes, Edges: *patternEdges,
		BoundMin: 1, BoundMax: 3, Seed: *seed + 1,
	}, g2)
	writeTo(*out+".pattern", func(f *os.File) error { return p.Format(f) })

	fmt.Printf("%s: %d nodes, %d edges, %d labels → %s.edges/.labels/.pattern\n",
		cfg.Name, g2.NumNodes(), g2.NumEdges(), g2.Labels().Count(), *out)

	if *updateScale != "" {
		var pc, dc int
		if _, err := fmt.Sscanf(strings.ReplaceAll(*updateScale, " ", ""), "%d,%d", &pc, &dc); err != nil {
			fatalf("bad -updates %q (want p,d)", *updateScale)
		}
		batch := uagpnm.GenerateBatch(*seed+2, pc, dc, g2, p)
		writeTo(*out+".updates", func(f *os.File) error { return writeScript(f, batch) })
		fmt.Printf("update batch: %d pattern + %d data updates → %s.updates\n",
			len(batch.P), len(batch.D), *out)
	}
}

// reload reads the just-written artifacts back the way cmd/gpnm will,
// yielding the graph in the consumer's id space.
func reload(prefix string) *uagpnm.Graph {
	ef, err := os.Open(prefix + ".edges")
	if err != nil {
		fatalf("%v", err)
	}
	g2, idMap, err := uagpnm.LoadGraphWithIDs(ef, "node")
	ef.Close()
	if err != nil {
		fatalf("re-reading %s.edges: %v", prefix, err)
	}
	lf, err := os.Open(prefix + ".labels")
	if err != nil {
		fatalf("%v", err)
	}
	if _, err := g2.ApplyLabelsMapped(lf, idMap); err != nil {
		fatalf("re-reading %s.labels: %v", prefix, err)
	}
	lf.Close()
	return g2
}

// writeScript emits a batch in the ParseScript format.
func writeScript(f *os.File, b uagpnm.Batch) error {
	var sb strings.Builder
	sb.WriteString("# generated update batch\n")
	for _, u := range b.D {
		switch u.Kind {
		case updates.DataEdgeInsert:
			fmt.Fprintf(&sb, "+e %d %d\n", u.From, u.To)
		case updates.DataEdgeDelete:
			fmt.Fprintf(&sb, "-e %d %d\n", u.From, u.To)
		case updates.DataNodeInsert:
			fmt.Fprintf(&sb, "+n %d %s\n", u.Node, strings.Join(u.Labels, ","))
		case updates.DataNodeDelete:
			fmt.Fprintf(&sb, "-n %d\n", u.Node)
		}
	}
	for _, u := range b.P {
		switch u.Kind {
		case updates.PatternEdgeInsert:
			fmt.Fprintf(&sb, "+pe %d %d %s\n", u.From, u.To, u.Bound)
		case updates.PatternEdgeDelete:
			fmt.Fprintf(&sb, "-pe %d %d\n", u.From, u.To)
		case updates.PatternNodeInsert:
			fmt.Fprintf(&sb, "+pn %d %s\n", u.Node, u.Labels[0])
		case updates.PatternNodeDelete:
			fmt.Fprintf(&sb, "-pn %d\n", u.Node)
		}
	}
	_, err := f.WriteString(sb.String())
	return err
}

func writeTo(path string, fn func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := fn(f); err != nil {
		fatalf("%v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gpnm-gen: "+format+"\n", args...)
	os.Exit(1)
}
