// Command gpnm answers GPNM queries from the command line: it loads a
// data graph (SNAP edge list plus optional label file) and a pattern
// (textual format), prints the initial node matching result, and — when
// an update script is supplied — processes it with the selected method
// and prints the subsequent result together with the elimination
// statistics.
//
// Usage:
//
//	gpnm -graph g.txt [-labels g.labels] -pattern p.txt \
//	     [-updates batch.txt] [-method UA-GPNM] [-horizon 3]
//
// The update script format is documented in internal/updates.ParseScript
// (one "+e/-e/+n/-n/+pe/-pe/+pn/-pn" directive per line).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uagpnm"
	"uagpnm/internal/core"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

func main() {
	graphPath := flag.String("graph", "", "data graph edge list (SNAP format)")
	labelsPath := flag.String("labels", "", "optional node label file")
	patternPath := flag.String("pattern", "", "pattern graph (textual format)")
	updatesPath := flag.String("updates", "", "optional update script to process as SQuery")
	methodName := flag.String("method", "UA-GPNM", "Scratch | INC-GPNM | EH-GPNM | UA-GPNM-NoPar | UA-GPNM")
	horizon := flag.Int("horizon", 0, "SLen hop cap (0 = exact distances)")
	workers := flag.Int("workers", 0, "engine worker pool bound (0 = all cores, 1 = serial)")
	flag.Parse()

	if *graphPath == "" || *patternPath == "" {
		fmt.Fprintln(os.Stderr, "gpnm: -graph and -pattern are required")
		flag.Usage()
		os.Exit(2)
	}
	method, err := parseMethod(*methodName)
	fatalIf(err)

	gf, err := os.Open(*graphPath)
	fatalIf(err)
	g, idMap, err := uagpnm.LoadGraphWithIDs(gf, "node")
	gf.Close()
	fatalIf(err)
	if *labelsPath != "" {
		lf, err := os.Open(*labelsPath)
		fatalIf(err)
		// Label files are keyed by the edge list's original ids; the
		// loader remapped those densely, so apply through the id map.
		skipped, err := g.ApplyLabelsMapped(lf, idMap)
		fatalIf(err)
		lf.Close()
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "gpnm: %d label line(s) named nodes absent from the edge list (isolated); skipped\n", skipped)
		}
	}
	pf, err := os.Open(*patternPath)
	fatalIf(err)
	p, err := uagpnm.ParsePattern(pf, g)
	pf.Close()
	fatalIf(err)

	stats := g.ComputeStats()
	fmt.Printf("graph: %d nodes, %d edges, %d labels\n", stats.Nodes, stats.Edges, stats.Labels)
	fmt.Printf("pattern: %d nodes, %d edges (method %v)\n\n", p.NumNodes(), p.NumEdges(), method)

	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: method, Horizon: *horizon, Workers: *workers})
	fmt.Println("IQuery result:")
	printResult(s)

	if *updatesPath == "" {
		return
	}
	uf, err := os.Open(*updatesPath)
	fatalIf(err)
	batch, err := updates.ParseScript(uf)
	uf.Close()
	fatalIf(err)

	s.SQuery(batch)
	st := s.Stats()
	fmt.Printf("\nSQuery (%d pattern + %d data updates) in %v\n",
		st.PatternUpdates, st.DataUpdates, st.Duration)
	if st.TreeSize > 0 {
		fmt.Printf("EH-Tree: %d updates, %d roots, %d eliminated; %d amendment pass(es)\n",
			st.TreeSize, st.TreeRoots, st.Eliminated, st.Passes)
	}
	fmt.Println("\nSQuery result:")
	printResult(s)
}

func printResult(s *uagpnm.Session) {
	p := s.Pattern()
	p.Nodes(func(u pattern.NodeID) {
		set := s.Result(u)
		names := make([]string, 0, set.Len())
		for _, id := range set {
			names = append(names, fmt.Sprintf("%d", id))
		}
		fmt.Printf("  %-12s (%s): {%s}\n", p.Name(u), p.LabelName(u), strings.Join(names, ", "))
	})
}

func parseMethod(name string) (core.Method, error) {
	for _, m := range core.Methods {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("gpnm: unknown method %q", name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm:", err)
		os.Exit(1)
	}
}
