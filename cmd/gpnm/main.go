// Command gpnm answers GPNM queries from the command line, in two
// modes.
//
// Local mode loads a data graph (SNAP edge list plus optional label
// file) and a pattern (textual format), prints the initial node
// matching result, and — when an update script is supplied — processes
// it with the selected method and prints the subsequent result together
// with the elimination statistics:
//
//	gpnm -graph g.txt [-labels g.labels] -pattern p.txt \
//	     [-updates batch.txt] [-method UA-GPNM] [-horizon 3]
//
// Server mode runs the same query through a remote standing-query hub
// (gpnm-serve) over the versioned client SDK instead of building a
// local substrate: the pattern is registered, the update script is
// applied as one batch, and the query is unregistered on exit. The
// graph lives on the server, so -graph is not needed:
//
//	gpnm -server 127.0.0.1:8080 -pattern p.txt [-updates batch.txt]
//
// The update script format is documented in internal/updates.ParseScript
// (one "+e/-e/+n/-n/+pe/-pe/+pn/-pn" directive per line).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"uagpnm"
	"uagpnm/internal/core"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
	"uagpnm/internal/version"
)

func main() {
	graphPath := flag.String("graph", "", "data graph edge list (SNAP format); local mode only")
	labelsPath := flag.String("labels", "", "optional node label file; local mode only")
	patternPath := flag.String("pattern", "", "pattern graph (textual format)")
	updatesPath := flag.String("updates", "", "optional update script to process as SQuery")
	methodName := flag.String("method", "UA-GPNM", "Scratch | INC-GPNM | EH-GPNM | UA-GPNM-NoPar | UA-GPNM; local mode only")
	horizon := flag.Int("horizon", 0, "SLen hop cap (0 = exact distances); local mode only")
	workers := flag.Int("workers", 0, "engine worker pool bound (0 = all cores, 1 = serial); local mode only")
	server := flag.String("server", "", "gpnm-serve address (host:port or http:// URL); runs the query remotely through the client SDK")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("gpnm"))
		return
	}

	if *patternPath == "" || (*server == "" && *graphPath == "") {
		fmt.Fprintln(os.Stderr, "gpnm: -pattern is required, plus -graph (local mode) or -server (remote mode)")
		flag.Usage()
		os.Exit(2)
	}
	if *server != "" {
		// runRemote returns (instead of exiting) so its deferred
		// unregister/close always run — a failed CLI run must not leave
		// an orphaned standing query on the server.
		fatalIf(runRemote(*server, *patternPath, *updatesPath))
		return
	}
	method, err := parseMethod(*methodName)
	fatalIf(err)

	gf, err := os.Open(*graphPath)
	fatalIf(err)
	g, idMap, err := uagpnm.LoadGraphWithIDs(gf, "node")
	gf.Close()
	fatalIf(err)
	if *labelsPath != "" {
		lf, err := os.Open(*labelsPath)
		fatalIf(err)
		// Label files are keyed by the edge list's original ids; the
		// loader remapped those densely, so apply through the id map.
		skipped, err := g.ApplyLabelsMapped(lf, idMap)
		fatalIf(err)
		lf.Close()
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "gpnm: %d label line(s) named nodes absent from the edge list (isolated); skipped\n", skipped)
		}
	}
	pf, err := os.Open(*patternPath)
	fatalIf(err)
	p, err := uagpnm.ParsePattern(pf, g)
	pf.Close()
	fatalIf(err)

	stats := g.ComputeStats()
	fmt.Printf("graph: %d nodes, %d edges, %d labels\n", stats.Nodes, stats.Edges, stats.Labels)
	fmt.Printf("pattern: %d nodes, %d edges (method %v)\n\n", p.NumNodes(), p.NumEdges(), method)

	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: method, Horizon: *horizon, Workers: *workers})
	fmt.Println("IQuery result:")
	printResult(s.Pattern(), func(u pattern.NodeID) uagpnm.NodeSet { return s.Result(u) })

	if *updatesPath == "" {
		return
	}
	batch, err := loadScript(*updatesPath)
	fatalIf(err)

	s.SQuery(batch)
	st := s.Stats()
	fmt.Printf("\nSQuery (%d pattern + %d data updates) in %v\n",
		st.PatternUpdates, st.DataUpdates, st.Duration)
	if st.TreeSize > 0 {
		fmt.Printf("EH-Tree: %d updates, %d roots, %d eliminated; %d amendment pass(es)\n",
			st.TreeSize, st.TreeRoots, st.Eliminated, st.Passes)
	}
	fmt.Println("\nSQuery result:")
	printResult(s.Pattern(), func(u pattern.NodeID) uagpnm.NodeSet { return s.Result(u) })
}

// runRemote drives the query through a gpnm-serve hub with the client
// SDK: register → (apply) → result → unregister, every step over the
// versioned /v1 protocol. Errors return (never exit) so the deferred
// unregister always removes the standing query from the server.
func runRemote(addr, patternPath, updatesPath string) error {
	ctx := context.Background()
	c, err := uagpnm.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Printf("server: %s\n", c.Addr())

	// The pattern parses against a throwaway label table: label names
	// travel by name over the wire and re-intern server-side.
	pf, err := os.Open(patternPath)
	if err != nil {
		return err
	}
	p, err := uagpnm.ParsePattern(pf, uagpnm.NewGraph())
	pf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("pattern: %d nodes, %d edges (remote standing query)\n\n", p.NumNodes(), p.NumEdges())

	id, err := c.Register(ctx, p)
	if err != nil {
		return err
	}
	defer func() { _ = c.Unregister(context.Background(), id) }()

	rp, rm, seq, err := c.Snapshot(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("IQuery result (pattern id %d, seq %d):\n", id, seq)
	printResult(rp, rm.Nodes)

	if updatesPath == "" {
		return nil
	}
	batch, err := loadScript(updatesPath)
	if err != nil {
		return err
	}
	hb := uagpnm.HubBatch{D: batch.D}
	if len(batch.P) > 0 {
		hb.P = map[uagpnm.PatternID][]uagpnm.Update{id: batch.P}
	}
	start := time.Now()
	deltas, stats, err := c.ApplyBatch(ctx, hb)
	if err != nil {
		return err
	}
	fmt.Printf("\nApplyBatch (%d pattern + %d data updates) in %v (round trip %v; shared SLen sync %v)\n",
		len(batch.P), len(batch.D), stats.Duration, time.Since(start).Round(time.Microsecond), stats.SLenSync)
	for _, d := range deltas {
		if d.Pattern != id || len(d.Nodes) == 0 {
			continue
		}
		for _, nd := range d.Nodes {
			fmt.Printf("delta seq %d node %d: +%v -%v\n", d.Seq, nd.Node, nd.Added, nd.Removed)
		}
	}

	rp, rm, seq, err = c.Snapshot(ctx, id)
	if err != nil {
		return err
	}
	fmt.Printf("\nSQuery result (seq %d):\n", seq)
	printResult(rp, rm.Nodes)
	return nil
}

func loadScript(path string) (uagpnm.Batch, error) {
	f, err := os.Open(path)
	if err != nil {
		return uagpnm.Batch{}, err
	}
	defer f.Close()
	return updates.ParseScript(f)
}

func printResult(p *uagpnm.Pattern, result func(u pattern.NodeID) uagpnm.NodeSet) {
	p.Nodes(func(u pattern.NodeID) {
		set := result(u)
		names := make([]string, 0, set.Len())
		for _, id := range set {
			names = append(names, fmt.Sprintf("%d", id))
		}
		fmt.Printf("  %-12s (%s): {%s}\n", p.Name(u), p.LabelName(u), strings.Join(names, ", "))
	})
}

func parseMethod(name string) (core.Method, error) {
	for _, m := range core.Methods {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("gpnm: unknown method %q", name)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpnm:", err)
		os.Exit(1)
	}
}
