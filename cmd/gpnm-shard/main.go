// Command gpnm-shard is a partition-shard worker for the sharded §V
// substrate: it holds the intra-partition SLen engines (and a
// data-graph adjacency replica) for the partitions a coordinator
// assigns to it, speaking the HTTP/JSON protocol of internal/shard.
//
// Workers start empty and idle until a coordinator — gpnm-serve or
// gpnm-bench launched with -shards host:port,... — claims them with a
// /build; all sizing (horizon, backend thresholds, worker pool) comes
// from the coordinator with that call. One worker serves one
// coordinator at a time; a new /build simply re-claims it.
//
//	gpnm-shard -addr :9101
//
// The process shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests so a coordinator mid-batch sees a completed op
// stream rather than a severed connection.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uagpnm/internal/shard"
	"uagpnm/internal/srvutil"
	"uagpnm/internal/version"
)

func main() {
	// Loopback by default: the protocol is unauthenticated (any peer
	// reaching it could /build over the worker's state), so exposing it
	// beyond the host is an explicit operator decision — bind a
	// non-loopback address only on a network you trust end to end.
	addr := flag.String("addr", "127.0.0.1:9101", "listen address (protocol is unauthenticated; expose beyond loopback only on a trusted network)")
	grace := flag.Duration("grace", 30*time.Second, "graceful shutdown drain window")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (empty = off)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String("gpnm-shard"))
		return
	}
	srvutil.StartPprof(*pprofAddr, "gpnm-shard", os.Stderr)

	s := shard.NewServer()
	fmt.Fprintf(os.Stderr, "gpnm-shard: listening on %s (awaiting coordinator /build)\n", *addr)
	if err := srvutil.ListenAndServe(*addr, s.Handler(), "gpnm-shard", *grace, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "gpnm-shard:", err)
		os.Exit(1)
	}
}
