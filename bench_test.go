package uagpnm

// This file regenerates every table and figure of the paper's evaluation
// (§VII) as testing.B benchmarks over the mini dataset replicas, one
// benchmark family per artifact:
//
//	BenchmarkTableXI   — avg query time per dataset per method
//	BenchmarkTableXIII — avg query time per ΔG scale per method
//	BenchmarkFig5..9   — the per-dataset series (pattern size (8,8);
//	                     the full five-size grid runs via cmd/gpnm-bench)
//
// Tables XII and XIV are ratios of XI and XIII respectively: divide the
// UA-GPNM ns/op by each baseline's ns/op. cmd/gpnm-bench prints all four
// tables and all five figures directly, at mini or at reproduction (sim)
// scale; see EXPERIMENTS.md for recorded results and the comparison
// against the paper's numbers.

import (
	"sync"
	"testing"

	"uagpnm/internal/bench"
	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
	"uagpnm/internal/patgen"
	"uagpnm/internal/updates"
)

const benchHorizon = 3

var benchPatternSize = [2]int{8, 8}

// benchState caches one base session per (dataset, method): the graph,
// the built SLen substrate, and the IQuery match. Benchmark iterations
// fork it and process one batch.
type benchState struct {
	mu       sync.Mutex
	sessions map[string]*core.Session
	graphs   map[string]*graphAndPattern
}

type graphAndPattern struct {
	g *Graph
	p *Pattern
}

var state = benchState{
	sessions: map[string]*core.Session{},
	graphs:   map[string]*graphAndPattern{},
}

func baseSession(b *testing.B, spec datasets.Spec, m core.Method) (*core.Session, *graphAndPattern) {
	b.Helper()
	state.mu.Lock()
	defer state.mu.Unlock()
	gp, ok := state.graphs[spec.Name]
	if !ok {
		g := datasets.GenerateSocial(spec.SocialConfig)
		p := patgen.Generate(patgen.Config{
			Nodes: benchPatternSize[0], Edges: benchPatternSize[1],
			BoundMin: 1, BoundMax: benchHorizon,
			Seed: 42, Labels: patgen.LabelsOf(g),
		}, g.Labels())
		gp = &graphAndPattern{g: g, p: p}
		state.graphs[spec.Name] = gp
	}
	key := spec.Name + "/" + m.String()
	s, ok := state.sessions[key]
	if !ok {
		s = core.NewSession(gp.g.Clone(), gp.p.Clone(), core.Config{Method: m, Horizon: benchHorizon})
		state.sessions[key] = s
	}
	return s, gp
}

// benchCell measures one (dataset, scale, method) cell: each iteration
// forks the base session and processes the same pre-generated batch.
func benchCell(b *testing.B, spec datasets.Spec, scale [2]int, m core.Method) {
	b.Helper()
	base, gp := baseSession(b, spec, m)
	batch := updates.Generate(updates.Balanced(7, scale[0], scale[1]), gp.g, gp.p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := base.Fork()
		b.StartTimer()
		s.SQuery(batch)
	}
}

func benchDataset(b *testing.B, name string, scale [2]int) {
	spec, ok := datasets.ByName(datasets.Mini(), name)
	if !ok {
		b.Fatalf("unknown dataset %s", name)
	}
	for _, m := range bench.ComparedMethods {
		m := m
		b.Run(m.String(), func(b *testing.B) { benchCell(b, spec, scale, m) })
	}
}

// BenchmarkTableXI regenerates Table XI (average query time per dataset):
// one sub-benchmark per dataset per method at the mid ΔG scale.
func BenchmarkTableXI(b *testing.B) {
	for _, spec := range datasets.Mini() {
		spec := spec
		b.Run(spec.Name, func(b *testing.B) {
			benchDataset(b, spec.Name, bench.MiniScales[2])
		})
	}
}

// BenchmarkTableXIII regenerates Table XIII (average query time per ΔG
// scale): one sub-benchmark per scale per method on the DBLP replica.
func BenchmarkTableXIII(b *testing.B) {
	spec, _ := datasets.ByName(datasets.Mini(), "DBLP")
	for _, scale := range bench.MiniScales {
		scale := scale
		b.Run(scaleName(scale), func(b *testing.B) {
			for _, m := range bench.ComparedMethods {
				m := m
				b.Run(m.String(), func(b *testing.B) { benchCell(b, spec, scale, m) })
			}
		})
	}
}

func scaleName(scale [2]int) string {
	return "dG(" + itoa(scale[0]) + "," + itoa(scale[1]) + ")"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// benchFigure regenerates one of Figs. 5–9: the four methods across all
// five ΔG scales for one dataset.
func benchFigure(b *testing.B, dataset string) {
	spec, ok := datasets.ByName(datasets.Mini(), dataset)
	if !ok {
		b.Fatalf("unknown dataset %s", dataset)
	}
	for _, scale := range bench.MiniScales {
		scale := scale
		b.Run(scaleName(scale), func(b *testing.B) {
			for _, m := range bench.ComparedMethods {
				m := m
				b.Run(m.String(), func(b *testing.B) { benchCell(b, spec, scale, m) })
			}
		})
	}
}

// BenchmarkFig5 regenerates the email-EU-core series (paper Fig. 5).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "email-EU-core") }

// BenchmarkFig6 regenerates the DBLP series (paper Fig. 6).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "DBLP") }

// BenchmarkFig7 regenerates the Amazon series (paper Fig. 7).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "Amazon") }

// BenchmarkFig8 regenerates the Youtube series (paper Fig. 8).
func BenchmarkFig8(b *testing.B) { benchFigure(b, "Youtube") }

// BenchmarkFig9 regenerates the LiveJournal series (paper Fig. 9).
func BenchmarkFig9(b *testing.B) { benchFigure(b, "LiveJournal") }

// BenchmarkIQuery measures the initial query (engine build + matching
// fixpoint) per method on the DBLP replica — the cost the incremental
// methods amortise away.
func BenchmarkIQuery(b *testing.B) {
	spec, _ := datasets.ByName(datasets.Mini(), "DBLP")
	g := datasets.GenerateSocial(spec.SocialConfig)
	p := patgen.Generate(patgen.Config{
		Nodes: 8, Edges: 8, BoundMin: 1, BoundMax: 3, Seed: 42,
		Labels: patgen.LabelsOf(g),
	}, g.Labels())
	for _, m := range []core.Method{core.UAGPNMNoPar, core.UAGPNM} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.NewSession(g.Clone(), p.Clone(), core.Config{Method: m, Horizon: 3})
			}
		})
	}
}
