#!/usr/bin/env bash
# Smoke test for the telemetry plane: a sharded deployment (one
# gpnm-shard worker + gpnm-serve -shards) built with an ldflags-stamped
# version, driven through one update batch, then scraped — /v1/metrics
# must expose the RPC and batch-phase families with counters advancing,
# /v1/trace the per-batch phase spans, the worker its own /metrics view,
# /v1/patterns/{id}/stats the per-query counters, /v1/healthz the build
# identity and last-batch timings, and the pprof listener must answer.
# Needs only curl + grep; CI runs it after the unit suite
# (`make metrics-smoke` locally).
set -euo pipefail

PORT="${SMOKE_PORT:-18090}"
WORKER_PORT="${SMOKE_WORKER_PORT:-18091}"
PPROF_PORT="${SMOKE_PPROF_PORT:-18092}"
BASE="http://127.0.0.1:${PORT}"
WORKER="http://127.0.0.1:${WORKER_PORT}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" "${WORKER_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Same tiny graph as serve_smoke.sh: 0:PM -> 1:SE, 0:PM -> 2:PM; the
# update batch connects PM 2 to the SE.
cat > "$DIR/g.txt" <<'EOF'
0	1
0	2
EOF
cat > "$DIR/g.labels" <<'EOF'
0 PM
1 SE
2 PM
EOF

VERSION="smoke-1.2.3"
COMMIT="cafe123"
LDFLAGS="-X uagpnm/internal/version.Version=${VERSION} -X uagpnm/internal/version.Commit=${COMMIT}"
go build -ldflags "$LDFLAGS" -o "$DIR/gpnm-serve" ./cmd/gpnm-serve
go build -ldflags "$LDFLAGS" -o "$DIR/gpnm-shard" ./cmd/gpnm-shard

# The ldflags stamp must surface in -version on both binaries.
"$DIR/gpnm-serve" -version | grep -q "$VERSION" || { echo "metrics-smoke: gpnm-serve -version missing stamp" >&2; exit 1; }
"$DIR/gpnm-shard" -version | grep -q "$COMMIT" || { echo "metrics-smoke: gpnm-shard -version missing commit" >&2; exit 1; }

"$DIR/gpnm-shard" -addr "127.0.0.1:${WORKER_PORT}" &
WORKER_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$WORKER/healthz" > /dev/null 2>&1; then break; fi
  sleep 0.2
done

"$DIR/gpnm-serve" -addr "127.0.0.1:${PORT}" -graph "$DIR/g.txt" -labels "$DIR/g.labels" \
  -horizon 3 -shards "127.0.0.1:${WORKER_PORT}" -pprof "127.0.0.1:${PPROF_PORT}" &
SERVER_PID=$!
for i in $(seq 1 50); do
  if curl -sf "$BASE/v1/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "metrics-smoke: server died before becoming healthy" >&2; exit 1
  fi
  sleep 0.2
done

# Build identity + uptime in /v1/healthz before any batch.
HEALTH=$(curl -sf "$BASE/v1/healthz")
echo "healthz: $HEALTH"
echo "$HEALTH" | grep -q "\"version\":\"${VERSION}\"" || { echo "metrics-smoke: healthz missing version" >&2; exit 1; }
echo "$HEALTH" | grep -q "\"commit\":\"${COMMIT}\"" || { echo "metrics-smoke: healthz missing commit" >&2; exit 1; }
echo "$HEALTH" | grep -q '"uptime_seconds":' || { echo "metrics-smoke: healthz missing uptime" >&2; exit 1; }

# Baseline scrape: the registry parses as Prometheus text and already
# carries the RPC client histograms (the /build fan to the worker).
M0=$(curl -sf "$BASE/v1/metrics")
echo "$M0" | grep -q '# TYPE gpnm_rpc_seconds histogram' || { echo "metrics-smoke: no RPC histogram family" >&2; exit 1; }
BATCHES0=$(echo "$M0" | grep -c '^gpnm_hub_batches_total 1$' || true)

# Register a standing query and push one update batch through.
REG=$(curl -sf -X POST "$BASE/v1/patterns" \
  -d '{"pattern":"node pm PM\nnode se SE\nedge pm se 2\n"}')
ID=$(echo "$REG" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
[ -n "$ID" ] || { echo "metrics-smoke: no pattern id in $REG" >&2; exit 1; }
DELTA=$(curl -sf -X POST "$BASE/v1/apply" -d '{"updates":[{"op":"+e","from":2,"to":1}]}')
echo "$DELTA" | grep -q '"added":\[2\]' || { echo "metrics-smoke: apply missed the new match" >&2; exit 1; }

# After the batch: hub counters advanced, phase histograms populated.
M1=$(curl -sf "$BASE/v1/metrics")
echo "$M1" | grep -q '^gpnm_hub_batches_total 1$' || { echo "metrics-smoke: gpnm_hub_batches_total did not advance" >&2; exit 1; }
[ "$BATCHES0" -eq 0 ] || { echo "metrics-smoke: batch counter advanced before any batch" >&2; exit 1; }
echo "$M1" | grep -q '# TYPE gpnm_batch_phase_seconds histogram' || { echo "metrics-smoke: no batch-phase family" >&2; exit 1; }
echo "$M1" | grep -q 'gpnm_batch_phase_seconds_count{phase="slen_sync"} 1' || { echo "metrics-smoke: slen_sync phase not observed" >&2; exit 1; }
echo "$M1" | grep -q 'gpnm_rpc_seconds_count{endpoint="/ops"}' || { echo "metrics-smoke: no /ops RPC latency" >&2; exit 1; }
echo "$M1" | grep -q '^gpnm_hub_seq 1$' || { echo "metrics-smoke: hub seq gauge wrong" >&2; exit 1; }

# The per-batch trace carries the phase spans.
TRACE=$(curl -sf "$BASE/v1/trace?n=1")
echo "trace: $TRACE"
echo "$TRACE" | grep -q '"seq":1' || { echo "metrics-smoke: trace missing seq" >&2; exit 1; }
echo "$TRACE" | grep -q '"name":"slen_sync"' || { echo "metrics-smoke: trace missing slen_sync span" >&2; exit 1; }
echo "$TRACE" | grep -q '"name":"amend_fan"' || { echo "metrics-smoke: trace missing amend_fan span" >&2; exit 1; }

# Per-pattern stats endpoint.
STATS=$(curl -sf "$BASE/v1/patterns/$ID/stats")
echo "stats: $STATS"
echo "$STATS" | grep -q '"data_updates":1' || { echo "metrics-smoke: pattern stats wrong: $STATS" >&2; exit 1; }

# Last-batch timings now ride along in healthz.
curl -sf "$BASE/v1/healthz" | grep -q '"last_batch":{"seq":1' || { echo "metrics-smoke: healthz missing last_batch" >&2; exit 1; }

# The worker exposes its own server-side view of the same traffic.
WM=$(curl -sf "$WORKER/metrics")
echo "$WM" | grep -q 'gpnm_worker_requests_total{endpoint="/ops"} 1' || { echo "metrics-smoke: worker /ops counter wrong" >&2; exit 1; }
echo "$WM" | grep -q '# TYPE gpnm_worker_request_seconds histogram' || { echo "metrics-smoke: no worker latency family" >&2; exit 1; }
echo "$WM" | grep -q '^gpnm_worker_ops_total ' || { echo "metrics-smoke: worker op counter missing" >&2; exit 1; }

# The opt-in pprof listener answers on its own port.
curl -sf "http://127.0.0.1:${PPROF_PORT}/debug/pprof/cmdline" > /dev/null || { echo "metrics-smoke: pprof listener dead" >&2; exit 1; }

echo "metrics-smoke: OK"
