#!/usr/bin/env bash
# End-to-end smoke test for the sharded deployment: spawn two
# gpnm-shard worker processes plus one gpnm-serve coordinator wired to
# them (-shards), register a pattern, apply an update batch, and assert
# the delta comes back over HTTP — i.e. the full §V substrate ran with
# its intra-partition state split across two worker processes. A
# metrics stage then scrapes worker /metrics and coordinator
# /v1/metrics to pin that the bulk /rows read plane carried the
# traffic with zero RPC failures. Then the
# failover stage: kill -9 one worker mid-run and assert the coordinator
# stays healthy, the next batch's results are still correct (the lost
# partitions were rebuilt on the survivor), /healthz reports the
# recovery, and shutdown still exits zero. Needs only curl + grep; CI
# runs it after the unit suite (`make shard-smoke` or the failover
# stage's alias `make failover-smoke` locally).
set -euo pipefail

PORT="${SMOKE_PORT:-18090}"
SHARD1_PORT=$((PORT + 1))
SHARD2_PORT=$((PORT + 2))
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" "${SHARD1_PID:-}" "${SHARD2_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Same tiny known graph as serve_smoke.sh: 0:PM -> 1:SE, 0:PM -> 2:PM.
# Three labels → three partitions, split across the two shard workers.
cat > "$DIR/g.txt" <<'EOF'
0	1
0	2
EOF
cat > "$DIR/g.labels" <<'EOF'
0 PM
1 SE
2 PM
EOF

go build -o "$DIR/gpnm-serve" ./cmd/gpnm-serve
go build -o "$DIR/gpnm-shard" ./cmd/gpnm-shard

"$DIR/gpnm-shard" -addr "127.0.0.1:${SHARD1_PORT}" &
SHARD1_PID=$!
"$DIR/gpnm-shard" -addr "127.0.0.1:${SHARD2_PORT}" &
SHARD2_PID=$!

wait_healthy() {
  local url=$1 pid=$2 what=$3
  for i in $(seq 1 50); do
    if curl -sf "$url/healthz" > /dev/null 2>&1; then return 0; fi
    if ! kill -0 "$pid" 2>/dev/null; then
      echo "shard-smoke: $what died before becoming healthy" >&2; exit 1
    fi
    sleep 0.2
  done
  echo "shard-smoke: $what never became healthy" >&2; exit 1
}
wait_healthy "http://127.0.0.1:${SHARD1_PORT}" "$SHARD1_PID" "shard worker 1"
wait_healthy "http://127.0.0.1:${SHARD2_PORT}" "$SHARD2_PID" "shard worker 2"

"$DIR/gpnm-serve" -addr "127.0.0.1:${PORT}" -graph "$DIR/g.txt" -labels "$DIR/g.labels" \
  -horizon 3 -shards "127.0.0.1:${SHARD1_PORT},127.0.0.1:${SHARD2_PORT}" &
SERVER_PID=$!
wait_healthy "$BASE" "$SERVER_PID" "coordinator"

# Both workers must actually have been claimed with partitions.
S1=$(curl -sf "http://127.0.0.1:${SHARD1_PORT}/healthz")
S2=$(curl -sf "http://127.0.0.1:${SHARD2_PORT}/healthz")
echo "worker1: $S1"
echo "worker2: $S2"
echo "$S1" | grep -q '"built":true' || { echo "shard-smoke: worker 1 was never built" >&2; exit 1; }
echo "$S2" | grep -q '"built":true' || { echo "shard-smoke: worker 2 was never built" >&2; exit 1; }
echo "$S1$S2" | grep -q '"parts":[12]' || { echo "shard-smoke: no worker owns a partition" >&2; exit 1; }

# Register a PM-within-2-of-SE pattern; initially only node 0 matches.
REG=$(curl -sf -X POST "$BASE/patterns" \
  -d '{"pattern":"node pm PM\nnode se SE\nedge pm se 2\n"}')
echo "register: $REG"
ID=$(echo "$REG" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
[ -n "$ID" ] || { echo "shard-smoke: no pattern id in $REG" >&2; exit 1; }
echo "$REG" | grep -q '"matches":\[0\]' || { echo "shard-smoke: unexpected initial result" >&2; exit 1; }

# Apply: connect the second PM (node 2) to the SE — an intra-PM-partition
# no-op plus a cross-partition edge the workers must replicate; its id
# must show up as an addition for pattern node 0.
DELTA=$(curl -sf -X POST "$BASE/apply" -d '{"data":"+e 2 1\n"}')
echo "apply: $DELTA"
echo "$DELTA" | grep -q '"added":\[2\]' || { echo "shard-smoke: delta missed the new match" >&2; exit 1; }

# ---- Metrics stage: the batched read plane actually ran. ----------
# Scrape both workers' /metrics: the coordinator must have reached them
# through the bulk /rows plane (build-time bridge plan + batch row
# plans), not per-row fallbacks only — and the workers must have served
# bulk rows. Checked BEFORE the kill so the zero-failure assertion on
# the coordinator is meaningful.
M1=$(curl -sf "http://127.0.0.1:${SHARD1_PORT}/metrics")
M2=$(curl -sf "http://127.0.0.1:${SHARD2_PORT}/metrics")
echo "$M1$M2" | grep 'gpnm_worker_requests_total{endpoint="/rows"}' \
  || { echo "shard-smoke: no worker ever served the bulk /rows endpoint" >&2; exit 1; }
ROWS_TOTAL=$(echo "$M1$M2" | grep '^gpnm_worker_rows_total' | awk '{s+=$2} END {print s+0}')
echo "shard-smoke: workers served $ROWS_TOTAL bulk rows"
[ "$ROWS_TOTAL" -gt 0 ] || { echo "shard-smoke: gpnm_worker_rows_total is zero — bulk plane never carried rows" >&2; exit 1; }
# Coordinator side: a healthy run has no RPC failures at all (the
# counter usually doesn't even exist yet — that counts as zero).
CM=$(curl -sf "$BASE/v1/metrics")
FAILS=$(echo "$CM" | { grep '^gpnm_rpc_failures_total' || true; } | awk '{s+=$2} END {print s+0}')
[ "$FAILS" -eq 0 ] || {
  echo "shard-smoke: coordinator counted $FAILS RPC failures on a healthy fleet" >&2
  echo "$CM" | grep '^gpnm_rpc_failures_total' >&2
  exit 1
}

# ---- Failover stage: kill one worker mid-run. ---------------------
# kill -9 worker 2 — no drain, no goodbye, exactly a crashed pod. The
# coordinator must detect the loss on the next batch, rebuild the dead
# worker's partitions from its own subgraph mirrors on worker 1, retry
# the batch, and answer correctly as if nothing happened.
kill -9 "$SHARD2_PID" 2>/dev/null || true
wait "$SHARD2_PID" 2>/dev/null || true
SHARD2_PID=""
echo "shard-smoke: killed worker 2 (failover stage)"

# A second batch exercises the shard-side node-delete path end to end —
# now ACROSS THE KILL: removing the only SE leaves the pattern without
# a total match, so every PM match is withdrawn. The apply must succeed
# (failover absorbed the loss) and the delta must be exact.
DELTA2=$(curl -sf -X POST "$BASE/apply" -d '{"data":"-n 1\n"}')
echo "apply2 (post-kill): $DELTA2"
echo "$DELTA2" | grep -q '"removed":\[0,2\]' || { echo "shard-smoke: post-kill delta missed the withdrawn matches" >&2; exit 1; }

# The coordinator is healthy — degraded-not-dead never became dead —
# and reports the absorbed recovery.
HEALTH=$(curl -sf "$BASE/v1/healthz") || { echo "shard-smoke: /healthz not 200 after the kill" >&2; exit 1; }
echo "healthz (post-kill): $HEALTH"
echo "$HEALTH" | grep -q '"ok":true' || { echo "shard-smoke: healthz not ok after the kill" >&2; exit 1; }
echo "$HEALTH" | grep -q '"recovered":1' || { echo "shard-smoke: healthz did not report the recovery" >&2; exit 1; }

# Full result is now empty for the PM node (served post-recovery).
RES=$(curl -sf "$BASE/patterns/$ID")
echo "$RES" | grep -q '"matches":\[\]' || { echo "shard-smoke: final result wrong: $RES" >&2; exit 1; }

# One more batch end to end on the survivor alone: re-adding an SE in
# the dead worker's old partition restores both PM matches.
DELTA3=$(curl -sf -X POST "$BASE/apply" -d '{"data":"+n 3 SE\n+e 0 3\n+e 2 3\n"}')
echo "apply3 (survivor only): $DELTA3"
echo "$DELTA3" | grep -q '"added":\[0,2\]' || { echo "shard-smoke: survivor-only batch wrong: $DELTA3" >&2; exit 1; }

# Graceful shutdown: SIGTERM must drain and exit cleanly (0).
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || { echo "shard-smoke: coordinator did not exit cleanly on SIGTERM" >&2; exit 1; }
SERVER_PID=""

echo "shard-smoke: OK"
