#!/usr/bin/env bash
# Smoke test for cmd/gpnm-serve: start the server on a tiny known graph,
# register a pattern, apply an update batch, and assert the delta comes
# back over HTTP. Needs only curl + grep; CI runs it after the unit
# suite (`make smoke` locally).
set -euo pipefail

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Graph: 0:PM -> 1:SE and 0:PM -> 2:PM; node 2 has no outgoing edges, so
# it fails the pattern below until an update connects it. File ids are
# densely remapped in order of first appearance, so they survive the
# round trip unchanged.
cat > "$DIR/g.txt" <<'EOF'
0	1
0	2
EOF
cat > "$DIR/g.labels" <<'EOF'
0 PM
1 SE
2 PM
EOF

go build -o "$DIR/gpnm-serve" ./cmd/gpnm-serve
"$DIR/gpnm-serve" -addr "127.0.0.1:${PORT}" -graph "$DIR/g.txt" -labels "$DIR/g.labels" -horizon 3 &
SERVER_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "smoke: server died before becoming healthy" >&2; exit 1
  fi
  sleep 0.2
done
curl -sf "$BASE/healthz" | grep -q '"ok":true' || { echo "smoke: healthz failed" >&2; exit 1; }

# Register a PM-within-2-of-SE pattern; initially only node 0 matches.
REG=$(curl -sf -X POST "$BASE/patterns" \
  -d '{"pattern":"node pm PM\nnode se SE\nedge pm se 2\n"}')
echo "register: $REG"
ID=$(echo "$REG" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
[ -n "$ID" ] || { echo "smoke: no pattern id in $REG" >&2; exit 1; }
echo "$REG" | grep -q '"matches":\[0\]' || { echo "smoke: unexpected initial result" >&2; exit 1; }

# Apply: connect the second PM (node 2) to the SE; its id must show up
# as an addition for pattern node 0.
DELTA=$(curl -sf -X POST "$BASE/apply" -d '{"data":"+e 2 1\n"}')
echo "apply: $DELTA"
echo "$DELTA" | grep -q '"added":\[2\]' || { echo "smoke: delta missed the new match" >&2; exit 1; }

# The long-poll path returns the same retained delta for a subscriber at
# sequence 0.
POLL=$(curl -sf "$BASE/patterns/$ID/deltas?since=0&timeout=2s")
echo "poll: $POLL"
echo "$POLL" | grep -q '"added":\[2\]' || { echo "smoke: long-poll missed the delta" >&2; exit 1; }

# Full result now lists both PMs.
RES=$(curl -sf "$BASE/patterns/$ID")
echo "$RES" | grep -q '"matches":\[0,2\]' || { echo "smoke: final result wrong: $RES" >&2; exit 1; }

echo "smoke: OK"
