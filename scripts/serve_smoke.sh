#!/usr/bin/env bash
# Smoke test for cmd/gpnm-serve: start the server on a tiny known graph
# and drive it three ways — the versioned /v1 routes, the legacy
# unversioned aliases, and the gpnm CLI's -server mode (which exercises
# uagpnm.Dial end to end from a real binary). Needs only curl + grep;
# CI runs it after the unit suite (`make smoke` locally).
set -euo pipefail

PORT="${SMOKE_PORT:-18080}"
BASE="http://127.0.0.1:${PORT}"
DIR="$(mktemp -d)"
trap 'kill "${SERVER_PID:-}" 2>/dev/null || true; rm -rf "$DIR"' EXIT

# Graph: 0:PM -> 1:SE and 0:PM -> 2:PM; node 2 has no outgoing edges, so
# it fails the pattern below until an update connects it. File ids are
# densely remapped in order of first appearance, so they survive the
# round trip unchanged.
cat > "$DIR/g.txt" <<'EOF'
0	1
0	2
EOF
cat > "$DIR/g.labels" <<'EOF'
0 PM
1 SE
2 PM
EOF
cat > "$DIR/p.txt" <<'EOF'
node pm PM
node se SE
edge pm se 2
EOF
cat > "$DIR/u.txt" <<'EOF'
+e 2 1
EOF

go build -o "$DIR/gpnm-serve" ./cmd/gpnm-serve
go build -o "$DIR/gpnm" ./cmd/gpnm
"$DIR/gpnm-serve" -addr "127.0.0.1:${PORT}" -graph "$DIR/g.txt" -labels "$DIR/g.labels" -horizon 3 &
SERVER_PID=$!

for i in $(seq 1 50); do
  if curl -sf "$BASE/v1/healthz" > /dev/null 2>&1; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "smoke: server died before becoming healthy" >&2; exit 1
  fi
  sleep 0.2
done

# Both route families answer health.
curl -sf "$BASE/v1/healthz" | grep -q '"ok":true' || { echo "smoke: /v1/healthz failed" >&2; exit 1; }
curl -sf "$BASE/healthz" | grep -q '"ok":true' || { echo "smoke: legacy /healthz failed" >&2; exit 1; }

# --- /v1 route family: register (DSL), typed apply, snapshot, poll ---
REG=$(curl -sf -X POST "$BASE/v1/patterns" \
  -d '{"pattern":"node pm PM\nnode se SE\nedge pm se 2\n"}')
echo "v1 register: $REG"
ID=$(echo "$REG" | grep -o '"id":[0-9]*' | head -1 | cut -d: -f2)
[ -n "$ID" ] || { echo "smoke: no pattern id in $REG" >&2; exit 1; }
echo "$REG" | grep -q '"matches":\[0\]' || { echo "smoke: unexpected initial result" >&2; exit 1; }

# Typed update batch: connect the second PM (node 2) to the SE.
DELTA=$(curl -sf -X POST "$BASE/v1/apply" \
  -d '{"updates":[{"op":"+e","from":2,"to":1}]}')
echo "v1 apply: $DELTA"
echo "$DELTA" | grep -q '"added":\[2\]' || { echo "smoke: typed delta missed the new match" >&2; exit 1; }

POLL=$(curl -sf "$BASE/v1/patterns/$ID/deltas?since=0&timeout=2s")
echo "$POLL" | grep -q '"added":\[2\]' || { echo "smoke: /v1 long-poll missed the delta" >&2; exit 1; }

SNAP=$(curl -sf "$BASE/v1/patterns/$ID/snapshot")
echo "$SNAP" | grep -q '"sim":\[0,2\]' || { echo "smoke: snapshot missing raw sim sets: $SNAP" >&2; exit 1; }

# Machine-readable error codes.
CODE=$(curl -s "$BASE/v1/patterns/999")
echo "$CODE" | grep -q '"code":"unknown_pattern"' || { echo "smoke: missing error code: $CODE" >&2; exit 1; }

# --- legacy aliases: script apply + result ---
L_DELTA=$(curl -sf -X POST "$BASE/apply" -d '{"data":"-e 2 1\n"}')
echo "legacy apply: $L_DELTA"
echo "$L_DELTA" | grep -q '"removed":\[2\]' || { echo "smoke: legacy delta missed the removal" >&2; exit 1; }
RES=$(curl -sf "$BASE/patterns/$ID")
echo "$RES" | grep -q '"matches":\[0\]' || { echo "smoke: legacy result wrong: $RES" >&2; exit 1; }

# --- client binary: gpnm -server runs the query through uagpnm.Dial ---
CLI=$("$DIR/gpnm" -server "127.0.0.1:${PORT}" -pattern "$DIR/p.txt" -updates "$DIR/u.txt")
echo "$CLI"
echo "$CLI" | grep -q 'IQuery result' || { echo "smoke: CLI produced no initial result" >&2; exit 1; }
# The +e 2 1 batch re-admits PM 2: the final result lists both PMs.
echo "$CLI" | grep -q 'SQuery result' || { echo "smoke: CLI produced no SQuery result" >&2; exit 1; }
echo "$CLI" | grep -q '{0, 2}' || { echo "smoke: CLI final result wrong" >&2; exit 1; }

echo "smoke: OK"
