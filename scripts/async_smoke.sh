#!/usr/bin/env bash
# Smoke test for the asynchronous pipelined substrate: run the -async
# bench scenario at mini scale and assert the two things the pipeline
# promises — correctness (the pipelined replay ends bit-for-bit equal
# to the lock-step one, checked by the scenario's own differential
# verify) and effect (queued batches actually adopt their overlapped
# previews: overlapped_batches > 0 on a pipelined cell). Wall-clock
# speedups are NOT asserted — on a single-core CI runner the JSON is
# stamped "degraded_env": true and parity is the expected outcome.
# Needs only go + grep + awk; CI runs it after the unit suite
# (`make async-smoke` locally).
set -euo pipefail

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

echo "async-smoke: running gpnm-bench -async -mini..."
go run ./cmd/gpnm-bench -async -mini -json "$DIR/async.json" \
  | tee "$DIR/out.txt"

grep -q '\[results verified equal\]' "$DIR/out.txt" || {
  echo "async-smoke: FAIL — differential verification line missing" >&2
  exit 1
}

# Sum overlapped_batches across cells (lock-step cells report 0; any
# pipelined cell adopting previews makes the sum positive).
overlapped="$(grep -o '"overlapped_batches": *[0-9]*' "$DIR/async.json" \
  | awk '{ s += $2 } END { print s+0 }')"
[ "$overlapped" -gt 0 ] || {
  echo "async-smoke: FAIL — no batch adopted its overlapped preview" >&2
  exit 1
}

echo "async-smoke: OK — ${overlapped} batches overlapped, results verified equal"
