#!/usr/bin/env bash
# Smoke test for the pattern-set discrimination index: run the -index
# bench scenario at a reduced-but-honest scale (1k standing queries,
# mini clustered graph) and assert the two things the index promises —
# correctness (the indexed and unindexed hubs end on identical results,
# checked by the scenario's own differential verify) and effect (the
# per-batch fan actually shrinks, by at least MIN_REDUCTION×). Needs
# only go + grep + awk; CI runs it after the unit suite
# (`make index-smoke` locally).
set -euo pipefail

MIN_REDUCTION="${MIN_REDUCTION:-5}"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

echo "index-smoke: running gpnm-bench -index -mini -patterns 1000..."
go run ./cmd/gpnm-bench -index -mini -patterns 1000 -json "$DIR/index.json" \
  | tee "$DIR/out.txt"

grep -q '\[results verified equal\]' "$DIR/out.txt" || {
  echo "index-smoke: FAIL — differential verification line missing" >&2
  exit 1
}

# Pull fan_reduction out of the JSON without jq/python: the key is
# unique and the value a bare number.
reduction="$(grep -o '"fan_reduction": *[0-9.]*' "$DIR/index.json" | awk '{print $2}')"
[ -n "$reduction" ] || {
  echo "index-smoke: FAIL — fan_reduction missing from JSON" >&2
  exit 1
}
awk -v r="$reduction" -v min="$MIN_REDUCTION" 'BEGIN { exit !(r >= min) }' || {
  echo "index-smoke: FAIL — fan reduction ${reduction}x < required ${MIN_REDUCTION}x" >&2
  exit 1
}

echo "index-smoke: OK — fan reduction ${reduction}x (>= ${MIN_REDUCTION}x), results verified equal"
