package uagpnm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestQuickstart mirrors the doc-comment example end to end.
func TestQuickstart(t *testing.T) {
	g := NewGraph()
	alice := g.AddNode("PM")
	bob := g.AddNode("SE")
	g.AddEdge(alice, bob)

	p := NewPattern(g)
	pm := p.AddNode("PM")
	se := p.AddNode("SE")
	p.AddEdge(pm, se, 3)

	s := NewSession(g, p, Options{Method: UAGPNM})
	if got := s.Result(pm); got.Len() != 1 || !got.Contains(alice) {
		t.Fatalf("Result(pm) = %v, want {alice}", got)
	}
	batch := Batch{D: []Update{InsertEdge(bob, alice)}}
	s.SQuery(batch)
	if got := s.Result(se); !got.Contains(bob) {
		t.Fatalf("Result(se) = %v, want bob present", got)
	}
	if s.Stats().Duration <= 0 {
		t.Fatal("stats not recorded")
	}
}

// TestPaperScenario drives the paper's Fig. 1/2 scenario through the
// public API with every method.
func TestPaperScenario(t *testing.T) {
	build := func() (*Graph, map[string]NodeID) {
		g := NewGraph()
		ids := map[string]NodeID{}
		for _, n := range []struct{ name, label string }{
			{"PM1", "PM"}, {"PM2", "PM"}, {"SE1", "SE"}, {"SE2", "SE"},
			{"S1", "S"}, {"TE1", "TE"}, {"TE2", "TE"}, {"DB1", "DB"},
		} {
			ids[n.name] = g.AddNode(n.label)
		}
		for _, e := range [][2]string{
			{"PM1", "SE2"}, {"PM1", "DB1"}, {"PM2", "SE1"}, {"SE1", "PM2"},
			{"SE1", "SE2"}, {"SE1", "S1"}, {"SE2", "TE1"}, {"SE2", "DB1"},
			{"S1", "DB1"}, {"TE1", "SE2"}, {"TE2", "S1"}, {"DB1", "SE1"},
		} {
			g.AddEdge(ids[e[0]], ids[e[1]])
		}
		return g, ids
	}
	for _, m := range []Method{Scratch, INCGPNM, EHGPNM, UAGPNMNoPar, UAGPNM} {
		g, ids := build()
		p := NewPattern(g)
		pm := p.AddNode("PM")
		se := p.AddNode("SE")
		te := p.AddNode("TE")
		sn := p.AddNode("S")
		p.AddEdge(pm, se, 3)
		p.AddEdge(pm, sn, 4)
		p.AddEdge(se, te, 3)

		s := NewSession(g, p, Options{Method: m})
		if got := s.Result(pm); got.Len() != 2 {
			t.Fatalf("%v: N(PM) = %v, want both PMs", m, got)
		}
		// The four updates of Example 2.
		batch := Batch{
			P: []Update{
				InsertPatternEdge(pm, te, 2),
				InsertPatternEdge(sn, te, 4),
			},
			D: []Update{
				InsertEdge(ids["SE1"], ids["TE2"]),
				InsertEdge(ids["DB1"], ids["S1"]),
			},
		}
		s.SQuery(batch)
		if got := s.Result(pm); got.Len() != 2 {
			t.Fatalf("%v: after updates N(PM) = %v, want both PMs (cross elimination)", m, got)
		}
		if m == UAGPNM {
			st := s.Stats()
			if st.TreeSize != 4 || st.Eliminated != 3 {
				t.Fatalf("UA stats = %+v, want Fig. 3 tree", st)
			}
		}
	}
}

func TestParsePatternAPI(t *testing.T) {
	g := NewGraph()
	g.AddNode("A")
	p, err := ParsePattern(strings.NewReader("node a A\nnode b A\nedge a b *\n"), g)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 2 || !p.HasStar() {
		t.Fatal("pattern parse wrong")
	}
}

func TestLoadGraphAPI(t *testing.T) {
	g, err := LoadGraph(strings.NewReader("# c\n0\t1\n1\t2\n"), "person")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestGenerateHelpers(t *testing.T) {
	g := GenerateSocialGraph(SocialGraphConfig{Nodes: 200, Edges: 800, Labels: 5, Homophily: 0.9, Seed: 3})
	if g.NumNodes() != 200 {
		t.Fatal("social graph generation failed")
	}
	p := GeneratePattern(PatternConfig{Nodes: 6, Edges: 6, Seed: 4}, g)
	if p.NumNodes() != 6 {
		t.Fatal("pattern generation failed")
	}
	b := GenerateBatch(5, 3, 10, g, p)
	if b.Size() == 0 {
		t.Fatal("batch generation failed")
	}
	s := NewSession(g, p, Options{Method: UAGPNM, Horizon: 3})
	before := s.Matches()
	after := s.SQuery(b)
	_ = before
	// Differential against scratch on a fork of the ORIGINAL state.
	g2 := GenerateSocialGraph(SocialGraphConfig{Nodes: 200, Edges: 800, Labels: 5, Homophily: 0.9, Seed: 3})
	p2 := GeneratePattern(PatternConfig{Nodes: 6, Edges: 6, Seed: 4}, g2)
	ref := NewSession(g2, p2, Options{Method: Scratch, Horizon: 3})
	want := ref.SQuery(b)
	if !after.Equal(want) {
		t.Fatal("public API path diverged from scratch")
	}
}

// TestResultImmutability is the aliasing regression: results handed out
// by a session are defensive copies, so scribbling over them (or holding
// them across batches) can never corrupt the session's own match state.
func TestResultImmutability(t *testing.T) {
	g := NewGraph()
	alice := g.AddNode("PM")
	bob := g.AddNode("SE")
	carol := g.AddNode("PM")
	g.AddEdge(alice, bob)

	p := NewPattern(g)
	pm := p.AddNode("PM")
	se := p.AddNode("SE")
	p.AddEdge(pm, se, 2)

	s := NewSession(g, p, Options{Method: UAGPNM})

	// Mutate the returned result set in place …
	res := s.Result(pm)
	for i := range res {
		res[i] = 4242
	}
	// … and the returned match snapshot.
	m1 := s.Matches()
	sim := m1.SimulationSet(pm)
	for i := range sim {
		sim[i] = 4242
	}
	// Re-query: the session must be unharmed.
	if got := s.Result(pm); got.Len() != 1 || !got.Contains(alice) {
		t.Fatalf("Result after external mutation = %v, want {alice}", got)
	}

	// A match returned by SQuery stays frozen across later batches.
	first := s.SQuery(Batch{D: []Update{InsertEdge(carol, bob)}})
	if got := first.SimulationSet(pm).Clone(); !got.Equal(s.Result(pm)) {
		t.Fatalf("SQuery snapshot %v differs from live result %v", got, s.Result(pm))
	}
	s.SQuery(Batch{D: []Update{DeleteEdge(carol, bob)}})
	if got := first.SimulationSet(pm); !got.Contains(carol) {
		t.Fatalf("held SQuery result mutated by a later batch: %v", got)
	}
	if got := s.Result(pm); got.Contains(carol) {
		t.Fatalf("live result kept deleted match: %v", got)
	}
}

// TestHubPublicAPI drives the standing-query hub through the public
// surface: register two patterns, apply one shared batch, read deltas.
func TestHubPublicAPI(t *testing.T) {
	g := NewGraph()
	alice := g.AddNode("PM")
	bob := g.AddNode("SE")
	dana := g.AddNode("TE")
	g.AddEdge(alice, bob)

	mk := func() *Pattern {
		p := NewPattern(g)
		pm := p.AddNode("PM")
		se := p.AddNode("SE")
		p.AddEdge(pm, se, 2)
		return p
	}
	pTE := NewPattern(g)
	se2 := pTE.AddNode("SE")
	te := pTE.AddNode("TE")
	pTE.AddEdge(se2, te, 1)

	ctx := context.Background()
	h, err := NewHub(g, HubOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var svc Service = h // the hub IS the in-process Service implementation
	id1, err := svc.Register(ctx, mk())
	if err != nil {
		t.Fatal(err)
	}
	id2, err := svc.Register(ctx, pTE)
	if err != nil {
		t.Fatal(err)
	}

	if got, err := svc.Result(ctx, id1, 0); err != nil || got.Len() != 1 || !got.Contains(alice) {
		t.Fatalf("hub IQuery pattern 1 = %v (err %v)", got, err)
	}
	if got, err := svc.Result(ctx, id2, 0); err != nil || got.Len() != 0 {
		t.Fatalf("hub IQuery pattern 2 = %v (err %v), want ∅ (not total)", got, err)
	}

	deltas, _, err := svc.ApplyBatch(ctx, HubBatch{D: []Update{InsertEdge(bob, dana)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 2 {
		t.Fatalf("deltas = %v, want one per pattern", deltas)
	}
	// Pattern 2 became total: SE1 and TE1 appear.
	if got, err := svc.Result(ctx, id2, 1); err != nil || got.Len() != 1 || !got.Contains(dana) {
		t.Fatalf("hub pattern 2 after batch = %v (err %v), want {dana}", got, err)
	}
	if h.Seq() != 1 || h.LastBatch().SLenSyncs != 1 {
		t.Fatalf("seq=%d stats=%+v", h.Seq(), h.LastBatch())
	}
	if err := svc.Unregister(ctx, id1); err != nil {
		t.Fatal("unregister failed:", err)
	}
	if err := svc.Unregister(ctx, id1); !errors.Is(err, ErrUnknownPattern) {
		t.Fatalf("second unregister = %v, want ErrUnknownPattern", err)
	}
}

func TestForkIndependencePublic(t *testing.T) {
	g := NewGraph()
	a := g.AddNode("A")
	b := g.AddNode("A")
	g.AddEdge(a, b)
	p := NewPattern(g)
	pa := p.AddNode("A")
	s := NewSession(g, p, Options{})
	f := s.Fork()
	f.SQuery(Batch{D: []Update{DeleteNode(b)}})
	if got := s.Result(pa); got.Len() != 2 {
		t.Fatal("fork mutation leaked")
	}
	if got := f.Result(pa); got.Len() != 1 {
		t.Fatal("fork did not apply")
	}
}
