module uagpnm

go 1.24
