// Expertsearch: the expert-recommendation scenario (paper §I, citing
// Morris et al.). On a citation/collaboration network we look for a
// "reachable expert": a senior researcher who is connected — at any
// finite distance — to a practitioner, while being within 2 hops of an
// active reviewer. The "*" bound exercises the reachability semantics of
// Bounded Graph Simulation, so this example runs the exact (uncapped)
// SLen mode.
package main

import (
	"fmt"

	"uagpnm"
)

func main() {
	g := uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
		Name: "scholars", Nodes: 400, Edges: 2000, Labels: 6,
		Homophily: 0.8, PrefAtt: 0.7, Seed: 7,
	})
	// Relabel a few of the heaviest collaborators as "senior" to make the
	// expert role meaningful.
	seniors := 0
	lt := g.Labels()
	senior := lt.Intern("senior")
	g.Nodes(func(id uagpnm.NodeID) {
		if seniors < 25 && g.OutDegree(id)+g.InDegree(id) > 16 {
			g.SetNodeLabels(id, senior)
			seniors++
		}
	})
	fmt.Printf("scholar network: %d nodes, %d edges, %d seniors\n",
		g.NumNodes(), g.NumEdges(), seniors)

	p := uagpnm.NewPattern(g)
	expert := p.AddNamedNode("expert", "senior")
	practitioner := p.AddNamedNode("practitioner", "role01")
	reviewer := p.AddNamedNode("reviewer", "role02")
	p.AddEdge(expert, practitioner, uagpnm.Star) // any finite distance
	p.AddEdge(expert, reviewer, 2)

	// "*" bounds want exact distances: Horizon 0.
	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNMNoPar, Horizon: 0})
	fmt.Printf("experts reachable for recommendation: %v\n", s.Result(expert))

	// The community shifts: a prolific senior stops reviewing ties (drop
	// their outgoing edges to reviewers) and two new collaborations form.
	experts := s.Result(expert)
	if experts.Empty() {
		fmt.Println("no expert matches; try another seed")
		return
	}
	target := experts[0]
	var batch uagpnm.Batch
	out := append([]uagpnm.NodeID(nil), g.Out(target)...)
	role02, _ := lt.Lookup("role02")
	dropped := 0
	for _, v := range out {
		if g.HasLabel(v, role02) && dropped < 2 {
			batch.D = append(batch.D, uagpnm.DeleteEdge(target, v))
			dropped++
		}
	}
	batch.D = append(batch.D,
		uagpnm.InsertEdge(experts[len(experts)-1], 3),
		uagpnm.InsertEdge(3, experts[0]),
	)
	s.SQuery(batch)
	fmt.Printf("after %d network changes (%v): experts = %v\n",
		len(batch.D), s.Stats().Duration, s.Result(expert))
}
