// Streaming: the motivating regime of the paper — a frequently updated
// social graph (§I quotes Facebook's per-minute churn) where the query
// result must stay fresh across a stream of update batches. The example
// maintains one UA-GPNM session and one INC-GPNM session over the same
// stream and prints the per-batch costs side by side, including the
// elimination statistics that explain UA-GPNM's advantage.
package main

import (
	"fmt"
	"time"

	"uagpnm"
)

func main() {
	g := uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
		Name: "stream", Nodes: 2500, Edges: 12000, Labels: 10,
		Homophily: 0.95, PrefAtt: 0.6, Seed: 99,
	})
	p := uagpnm.GeneratePattern(uagpnm.PatternConfig{
		Nodes: 8, Edges: 8, BoundMin: 1, BoundMax: 3, Seed: 100,
	}, g)

	ua := uagpnm.NewSession(g.Clone(), p.Clone(), uagpnm.Options{Method: uagpnm.UAGPNM, Horizon: 3})
	inc := uagpnm.NewSession(g.Clone(), p.Clone(), uagpnm.Options{Method: uagpnm.INCGPNM, Horizon: 3})
	fmt.Printf("streaming over %d nodes / %d edges; pattern (%d,%d)\n\n",
		g.NumNodes(), g.NumEdges(), p.NumNodes(), p.NumEdges())
	fmt.Printf("%-6s %-10s %-12s %-12s %-22s\n", "batch", "updates", "UA-GPNM", "INC-GPNM", "UA eliminated/roots")

	var uaTotal, incTotal time.Duration
	for round := 0; round < 8; round++ {
		// Batches are generated against UA's current state; both sessions
		// process identical updates.
		batch := uagpnm.GenerateBatch(int64(round*13+1), 2, 60, ua.Graph(), ua.Pattern())
		uaMatch := ua.SQuery(batch)
		incMatch := inc.SQuery(batch)
		if !uaMatch.Equal(incMatch) {
			panic("methods diverged — this is a bug")
		}
		us, is := ua.Stats(), inc.Stats()
		uaTotal += us.Duration
		incTotal += is.Duration
		fmt.Printf("%-6d %-10d %-12v %-12v %d/%d of %d\n",
			round, batch.Size(), us.Duration.Round(time.Microsecond),
			is.Duration.Round(time.Microsecond),
			us.Eliminated, us.TreeRoots, us.TreeSize)
	}
	fmt.Printf("\ntotals: UA-GPNM %v, INC-GPNM %v (%.1f× speedup); results identical each batch\n",
		uaTotal.Round(time.Millisecond), incTotal.Round(time.Millisecond),
		float64(incTotal)/float64(uaTotal))
}
