// Streaming: the motivating regime of the paper — a frequently updated
// social graph (§I quotes Facebook's per-minute churn) where the query
// result must stay fresh across a stream of update batches — served
// through the client SDK. The example embeds a hub server in-process
// (uagpnm.NewHandler on a loopback listener), connects to it with
// uagpnm.Dial, and then works exclusively through the uagpnm.Service
// interface: a subscriber goroutine long-polls WaitDeltas while the
// main goroutine streams update batches through ApplyBatch, printing
// the shared SLen cost each batch pays once no matter how many
// standing queries are registered. Point -server at a real gpnm-serve
// process and the identical code drives a remote hub.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"time"

	"uagpnm"
)

func main() {
	server := flag.String("server", "", "gpnm-serve address; empty = embed a hub server in-process")
	flag.Parse()

	g := uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
		Name: "stream", Nodes: 2500, Edges: 12000, Labels: 10,
		Homophily: 0.95, PrefAtt: 0.6, Seed: 99,
	})
	p := uagpnm.GeneratePattern(uagpnm.PatternConfig{
		Nodes: 3, Edges: 3, BoundMin: 2, BoundMax: 3, Seed: 100,
	}, g)

	// The driver keeps its own copies: batches must be generated against
	// the evolving state, and the hub owns its graph after NewHub.
	gw, pw := g.Clone(), p.Clone()

	addr := *server
	if addr == "" {
		var err error
		addr, err = embedServer(g)
		fatalIf(err)
		fmt.Printf("embedded hub server on %s\n", addr)
	}

	ctx := context.Background()
	svc, err := uagpnm.Dial(addr)
	fatalIf(err)
	defer svc.Close()

	id, err := svc.Register(ctx, p)
	fatalIf(err)
	fmt.Printf("streaming over %d nodes / %d edges; standing query %d (%d,%d)\n\n",
		gw.NumNodes(), gw.NumEdges(), id, pw.NumNodes(), pw.NumEdges())

	// Subscriber: long-poll deltas concurrently with the update stream —
	// the push half of the incremental-view contract.
	subCtx, stopSub := context.WithCancel(ctx)
	defer stopSub()
	subDone := make(chan struct{})
	go func() {
		defer close(subDone)
		since := uint64(0)
		for {
			ds, resync, err := svc.WaitDeltas(subCtx, id, since)
			if err != nil {
				return // ctx cancelled or query unregistered
			}
			if resync {
				fmt.Printf("  [subscriber] fell behind the delta history — refetching via Snapshot\n")
				_, _, seq, err := svc.Snapshot(subCtx, id)
				if err != nil {
					return
				}
				since = seq
				continue
			}
			for _, d := range ds {
				added, removed := 0, 0
				for _, nd := range d.Nodes {
					added += nd.Added.Len()
					removed += nd.Removed.Len()
				}
				fmt.Printf("  [subscriber] seq %d: +%d/-%d matches across %d pattern node(s)\n",
					d.Seq, added, removed, len(d.Nodes))
				since = d.Seq
			}
		}
	}()

	fmt.Printf("%-6s %-10s %-14s %-14s %s\n", "batch", "updates", "round trip", "shared SLen", "data updates synced")
	var slenTotal, rtTotal time.Duration
	for round := 0; round < 8; round++ {
		batch := uagpnm.GenerateBatch(int64(round*13+1), 0, 60, gw, pw)
		start := time.Now()
		_, stats, err := svc.ApplyBatch(ctx, uagpnm.HubBatch{D: batch.D})
		fatalIf(err)
		rt := time.Since(start)
		// Mirror the driver state the same way the hub applied it.
		uagpnm.ApplyDataUpdates(gw, batch.D)
		slenTotal += stats.SLenSync
		rtTotal += rt
		fmt.Printf("%-6d %-10d %-14v %-14v %d\n",
			round, len(batch.D), rt.Round(time.Microsecond),
			stats.SLenSync.Round(time.Microsecond), stats.SLenSyncs)
		time.Sleep(20 * time.Millisecond) // let the subscriber print in order
	}

	// One consistent read-back through the same interface.
	rp, rm, seq, err := svc.Snapshot(ctx, id)
	fatalIf(err)
	matched := 0
	rp.Nodes(func(u uagpnm.PatternNodeID) { matched += rm.Nodes(u).Len() })
	fmt.Printf("\nafter seq %d: total=%v, %d matched data nodes across %d pattern nodes\n",
		seq, rm.Total(), matched, rp.NumNodes())
	fmt.Printf("totals: %v round trips, %v shared SLen — the substrate cost every further standing query would reuse\n",
		rtTotal.Round(time.Millisecond), slenTotal.Round(time.Millisecond))

	stopSub()
	<-subDone
	fatalIf(svc.Unregister(ctx, id))
}

// embedServer starts the hub HTTP server on a loopback listener and
// returns its address — the in-process stand-in for gpnm-serve.
func embedServer(g *uagpnm.Graph) (string, error) {
	h, err := uagpnm.NewHub(g, uagpnm.HubOptions{Horizon: 3})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: uagpnm.NewHandler(h, uagpnm.HandlerOptions{})}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

func fatalIf(err error) {
	if err != nil {
		panic(err)
	}
}
