// Quickstart: the paper's running example (Figs. 1–3) through the public
// API. Builds the collaboration graph of Fig. 1(a), matches the IT
// project pattern of Fig. 1(b) (reproducing Table I), then processes the
// four updates of Fig. 2 in one batch and shows the elimination
// statistics (the EH-Tree of Fig. 3: four updates, three eliminated).
package main

import (
	"fmt"

	"uagpnm"
)

func main() {
	// Fig. 1(a): each node is a person labelled with a job title; edges
	// are collaboration relationships.
	g := uagpnm.NewGraph()
	ids := map[string]uagpnm.NodeID{}
	for _, n := range []struct{ name, title string }{
		{"PM1", "PM"}, {"PM2", "PM"}, {"SE1", "SE"}, {"SE2", "SE"},
		{"S1", "S"}, {"TE1", "TE"}, {"TE2", "TE"}, {"DB1", "DB"},
	} {
		ids[n.name] = g.AddNode(n.title)
	}
	for _, e := range [][2]string{
		{"PM1", "SE2"}, {"PM1", "DB1"}, {"PM2", "SE1"}, {"SE1", "PM2"},
		{"SE1", "SE2"}, {"SE1", "S1"}, {"SE2", "TE1"}, {"SE2", "DB1"},
		{"S1", "DB1"}, {"TE1", "SE2"}, {"TE2", "S1"}, {"DB1", "SE1"},
	} {
		g.AddEdge(ids[e[0]], ids[e[1]])
	}
	names := []string{"PM1", "PM2", "SE1", "SE2", "S1", "TE1", "TE2", "DB1"}

	// Fig. 2(c): an IT project needs a PM, an SE, a TE and an S; the
	// integer on each edge bounds the collaboration distance.
	p := uagpnm.NewPattern(g)
	pm := p.AddNode("PM")
	se := p.AddNode("SE")
	te := p.AddNode("TE")
	s := p.AddNode("S")
	p.AddEdge(pm, se, 3)
	p.AddEdge(pm, s, 4)
	p.AddEdge(se, te, 3)

	session := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNM})

	fmt.Println("IQuery — the node matching results (paper Table I):")
	printMatches(session, names)

	// Fig. 2: two pattern updates (UP1: PM needs a TE within 2 hops;
	// UP2: an S needs a TE within 4) and two data updates (UD1: SE1
	// starts collaborating with TE2; UD2: DB1 with S1).
	batch := uagpnm.Batch{
		P: []uagpnm.Update{
			uagpnm.InsertPatternEdge(pm, te, 2), // UP1
			uagpnm.InsertPatternEdge(s, te, 4),  // UP2
		},
		D: []uagpnm.Update{
			uagpnm.InsertEdge(ids["SE1"], ids["TE2"]), // UD1
			uagpnm.InsertEdge(ids["DB1"], ids["S1"]),  // UD2
		},
	}
	session.SQuery(batch)
	st := session.Stats()
	fmt.Printf("\nSQuery processed %d updates in %v\n", batch.Size(), st.Duration)
	fmt.Printf("EH-Tree (paper Fig. 3): %d updates indexed, %d root(s), %d eliminated\n",
		st.TreeSize, st.TreeRoots, st.Eliminated)
	fmt.Println("UP1 is cancelled by UD1 (cross-graph elimination): every PM")
	fmt.Println("gains a TE within 2 hops, so the result is unchanged for PM:")
	fmt.Println()
	printMatches(session, names)
}

func printMatches(s *uagpnm.Session, names []string) {
	p := s.Pattern()
	p.Nodes(func(u uagpnm.PatternNodeID) {
		var members []string
		for _, id := range s.Result(u) {
			members = append(members, names[id])
		}
		fmt.Printf("  %-3s → %v\n", p.Name(u), members)
	})
}
