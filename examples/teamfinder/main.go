// Teamfinder: the group-finding scenario that motivates GPNM (paper §I,
// citing Lappas et al.). A company's collaboration network is searched
// for project teams matching a role structure — not whole subgraphs, but
// the set of people fit for each role (exactly GPNM's output). Staffing
// then changes over the week (hires, departures, new collaborations) and
// the requirements tighten; the session keeps the answer current without
// recomputation.
package main

import (
	"fmt"

	"uagpnm"
)

func main() {
	// A synthetic company: 600 employees in 8 role groups, collaboration
	// edges concentrated within roles (label homophily).
	g := uagpnm.GenerateSocialGraph(uagpnm.SocialGraphConfig{
		Name: "acme", Nodes: 600, Edges: 3600, Labels: 8,
		Homophily: 0.85, PrefAtt: 0.6, Seed: 2026,
	})

	// The project needs a manager-role (role00) connected within 2 hops
	// to an engineer-role (role01), who must reach a tester-role (role02)
	// within 2 hops; the manager also needs a role03 specialist within 3.
	p := uagpnm.NewPattern(g)
	mgr := p.AddNode("role00")
	eng := p.AddNode("role01")
	tst := p.AddNode("role02")
	spc := p.AddNode("role03")
	p.AddEdge(mgr, eng, 2)
	p.AddEdge(eng, tst, 2)
	p.AddEdge(mgr, spc, 3)

	roles := []struct {
		node uagpnm.PatternNodeID
		name string
	}{{mgr, "manager"}, {eng, "engineer"}, {tst, "tester"}, {spc, "specialist"}}

	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNM, Horizon: 3})
	fmt.Println("Initial candidate pools per role:")
	report(s, roles)

	// A week of staffing events, applied as one updates-aware batch:
	// two new hires (with their first collaborations), one departure,
	// two new collaboration edges — and the requirements tighten: the
	// manager now needs the tester directly within 3 hops too.
	newEng := uagpnm.NodeID(g.NumIDs())
	newTst := newEng + 1
	someMgr := s.Result(mgr)
	if someMgr.Empty() {
		fmt.Println("no full team exists in this graph; try another seed")
		return
	}
	departed := someMgr[len(someMgr)-1]
	batch := uagpnm.Batch{
		P: []uagpnm.Update{
			uagpnm.InsertPatternEdge(mgr, tst, 3),
		},
		D: []uagpnm.Update{
			uagpnm.InsertNode(newEng, "role01"),
			uagpnm.InsertNode(newTst, "role02"),
			uagpnm.InsertEdge(newEng, newTst),
			uagpnm.InsertEdge(0, newEng),
			uagpnm.DeleteNode(departed),
			uagpnm.InsertEdge(5, 9),
			uagpnm.InsertEdge(9, 17),
		},
	}
	s.SQuery(batch)
	st := s.Stats()
	fmt.Printf("\nAfter the staffing batch (%d updates, %v, %d eliminated):\n",
		batch.Size(), st.Duration, st.Eliminated)
	report(s, roles)
}

func report(s *uagpnm.Session, roles []struct {
	node uagpnm.PatternNodeID
	name string
}) {
	for _, r := range roles {
		set := s.Result(r.node)
		preview := set
		if preview.Len() > 8 {
			preview = preview[:8]
		}
		fmt.Printf("  %-10s %3d candidates, e.g. %v\n", r.name, set.Len(), preview)
	}
}
