package uagpnm_test

import (
	"fmt"

	"uagpnm"
)

// Example reproduces the paper's running example: the IT-project pattern
// over the collaboration graph of Fig. 1, then the four updates of
// Fig. 2 processed updates-aware.
func Example() {
	g := uagpnm.NewGraph()
	ids := map[string]uagpnm.NodeID{}
	for _, n := range []struct{ name, title string }{
		{"PM1", "PM"}, {"PM2", "PM"}, {"SE1", "SE"}, {"SE2", "SE"},
		{"S1", "S"}, {"TE1", "TE"}, {"TE2", "TE"}, {"DB1", "DB"},
	} {
		ids[n.name] = g.AddNode(n.title)
	}
	for _, e := range [][2]string{
		{"PM1", "SE2"}, {"PM1", "DB1"}, {"PM2", "SE1"}, {"SE1", "PM2"},
		{"SE1", "SE2"}, {"SE1", "S1"}, {"SE2", "TE1"}, {"SE2", "DB1"},
		{"S1", "DB1"}, {"TE1", "SE2"}, {"TE2", "S1"}, {"DB1", "SE1"},
	} {
		g.AddEdge(ids[e[0]], ids[e[1]])
	}

	p := uagpnm.NewPattern(g)
	pm := p.AddNode("PM")
	se := p.AddNode("SE")
	te := p.AddNode("TE")
	s := p.AddNode("S")
	p.AddEdge(pm, se, 3)
	p.AddEdge(pm, s, 4)
	p.AddEdge(se, te, 3)

	session := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNM})
	fmt.Println("PMs:", session.Result(pm))

	session.SQuery(uagpnm.Batch{
		P: []uagpnm.Update{
			uagpnm.InsertPatternEdge(pm, te, 2),
			uagpnm.InsertPatternEdge(s, te, 4),
		},
		D: []uagpnm.Update{
			uagpnm.InsertEdge(ids["SE1"], ids["TE2"]),
			uagpnm.InsertEdge(ids["DB1"], ids["S1"]),
		},
	})
	st := session.Stats()
	fmt.Println("PMs after updates:", session.Result(pm))
	fmt.Printf("eliminated %d of %d\n", st.Eliminated, st.TreeSize)
	// Output:
	// PMs: {0, 1}
	// PMs after updates: {0, 1}
	// eliminated 3 of 4
}

// ExampleSession_SQuery shows incremental maintenance over a stream of
// batches: the session stays consistent without recomputation.
func ExampleSession_SQuery() {
	g := uagpnm.NewGraph()
	a := g.AddNode("dev")
	b := g.AddNode("ops")
	g.AddEdge(a, b)

	p := uagpnm.NewPattern(g)
	dev := p.AddNode("dev")
	ops := p.AddNode("ops")
	p.AddEdge(dev, ops, 1)

	s := uagpnm.NewSession(g, p, uagpnm.Options{Method: uagpnm.UAGPNM})
	fmt.Println(s.Result(dev))

	// The only dev→ops collaboration breaks: the dev no longer matches.
	s.SQuery(uagpnm.Batch{D: []uagpnm.Update{uagpnm.DeleteEdge(a, b)}})
	fmt.Println(s.Result(dev))

	// A new ops hire joins and pairs with the dev.
	hire := uagpnm.NodeID(s.Graph().NumIDs())
	s.SQuery(uagpnm.Batch{D: []uagpnm.Update{
		uagpnm.InsertNode(hire, "ops"),
		uagpnm.InsertEdge(a, hire),
	}})
	fmt.Println(s.Result(dev))
	// Output:
	// {0}
	// {}
	// {0}
}
