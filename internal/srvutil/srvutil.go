// Package srvutil holds the HTTP serving plumbing the repository's
// server binaries (gpnm-serve, gpnm-shard) share: an http.Server with
// signal-driven graceful shutdown, so in-flight requests — long-polls
// and ApplyBatch in particular — drain instead of being severed.
package srvutil

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the DefaultServeMux StartPprof serves
	"os"
	"os/signal"
	"syscall"
	"time"
)

// StartPprof serves net/http/pprof on its own listener when addr is
// non-empty — the opt-in -pprof flag of gpnm-serve and gpnm-shard. It
// is deliberately a separate listener: the profiling surface never
// mounts on the public API port, so exposing one is an explicit
// operator decision per address. Returns immediately; serving errors
// (bad addr, port taken) are logged, not fatal — a broken profiler
// must not take the serving process down with it.
func StartPprof(addr, name string, logw io.Writer) {
	if addr == "" {
		return
	}
	if logw != nil {
		fmt.Fprintf(logw, "%s: pprof listening on %s (http://%s/debug/pprof/)\n", name, addr, addr)
	}
	go func() {
		// nil handler = http.DefaultServeMux, where the pprof import
		// registered its handlers.
		if err := http.ListenAndServe(addr, nil); err != nil && logw != nil {
			fmt.Fprintf(logw, "%s: pprof server: %v\n", name, err)
		}
	}()
}

// WriteJSON renders v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// WriteError renders the repository's uniform JSON error shape.
func WriteError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	WriteJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Decode parses the request body as JSON into v, answering a 400 and
// reporting false on malformed input.
func Decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		WriteError(w, http.StatusBadRequest, "bad JSON body: %v", err)
		return false
	}
	return true
}

// ListenAndServe serves h on addr until the process receives SIGINT or
// SIGTERM, then shuts down gracefully: the listener closes immediately
// (health checks start failing, so load balancers drain), and in-flight
// requests get up to grace to finish before the server is torn down.
// name prefixes the log lines written to logw (nil silences them).
//
// It returns nil on a clean signal-driven shutdown and the serve/
// shutdown error otherwise.
func ListenAndServe(addr string, h http.Handler, name string, grace time.Duration, logw io.Writer) error {
	return ListenAndServeUntil(addr, h, name, grace, logw, nil)
}

// ListenAndServeUntil is ListenAndServe with an additional programmatic
// shutdown trigger: closing stop starts the same graceful drain a
// SIGTERM would — the listener closes, request contexts are cancelled
// so parked long-polls answer immediately, and in-flight requests get
// the grace window. gpnm-serve uses it to drain cleanly when the hub
// loses a substrate shard mid-batch, instead of the old recover-and-
// os.Exit path that severed every open connection. A nil stop behaves
// exactly like ListenAndServe.
func ListenAndServeUntil(addr string, h http.Handler, name string, grace time.Duration, logw io.Writer, stop <-chan struct{}) error {
	if grace <= 0 {
		grace = 30 * time.Second
	}
	logf := func(format string, args ...interface{}) {
		if logw != nil {
			fmt.Fprintf(logw, name+": "+format+"\n", args...)
		}
	}
	// Request contexts derive from baseCtx; cancelling it at shutdown
	// unblocks in-flight long-polls immediately (http.Server.Shutdown
	// alone never cancels request contexts, so a poller sitting in a
	// 30s wait would otherwise out-wait any shorter grace window and
	// turn a clean SIGTERM into a forced-shutdown error).
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	srv := &http.Server{
		Addr:        addr,
		Handler:     h,
		BaseContext: func(net.Listener) context.Context { return baseCtx },
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() {
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	why := "signal"
	select {
	case err := <-errc:
		return err // bind failure or serve error before any signal
	case <-ctx.Done():
	case <-stop:
		why = "stop requested"
	}
	stopSignals() // restore default signal behaviour: a second ^C kills hard
	logf("shutting down (%s), draining for up to %s", why, grace)
	cancelBase() // wake long-polls so the drain takes ms, not a poll window

	sdCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		logf("forced shutdown: %v", err)
		_ = srv.Close()
		return err
	}
	logf("drained cleanly")
	return <-errc
}
