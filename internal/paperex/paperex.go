// Package paperex builds the running examples of the paper — the data
// graph of Fig. 1(a)/2(a), the pattern graphs of Fig. 1(b) and Fig. 2(c),
// and the four updates UP1, UP2, UD1, UD2 of Fig. 2 — so that every
// layer's tests can validate against the paper's worked tables
// (I, III–IX) from one shared fixture.
package paperex

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
)

// Names indexes the data graph's nodes in the paper's table order.
var Names = []string{"PM1", "PM2", "SE1", "SE2", "S1", "TE1", "TE2", "DB1"}

// DataGraph builds GD of Fig. 1(a)/Fig. 2(a). The edge set is the one
// implied by the paper's SLen matrix (Table III): exactly the node pairs
// at distance 1. The returned map resolves the paper's node names.
func DataGraph() (*graph.Graph, map[string]uint32) {
	g := graph.New(nil)
	labels := []string{"PM", "PM", "SE", "SE", "S", "TE", "TE", "DB"}
	ids := make(map[string]uint32, len(Names))
	for i, n := range Names {
		ids[n] = g.AddNode(labels[i])
	}
	for _, e := range [][2]string{
		{"PM1", "SE2"}, {"PM1", "DB1"},
		{"PM2", "SE1"},
		{"SE1", "PM2"}, {"SE1", "SE2"}, {"SE1", "S1"},
		{"SE2", "TE1"}, {"SE2", "DB1"},
		{"S1", "DB1"},
		{"TE1", "SE2"},
		{"TE2", "S1"},
		{"DB1", "SE1"},
	} {
		if !g.AddEdge(ids[e[0]], ids[e[1]]) {
			panic("paperex: bad edge " + e[0] + "->" + e[1])
		}
	}
	return g, ids
}

// PatternNames indexes the pattern nodes of both pattern fixtures.
var PatternNames = []string{"PM", "SE", "TE", "S"}

// PatternFig1 builds GP of Fig. 1(b): an IT project needing a PM, an SE,
// a TE and an S, with PM→SE(3), PM→S(4), SE→TE(3) and S→TE(*).
// The returned map resolves pattern node names.
func PatternFig1(labels *graph.Labels) (*pattern.Graph, map[string]pattern.NodeID) {
	p, ids := patternBase(labels)
	p.AddEdge(ids["S"], ids["TE"], pattern.Star)
	return p, ids
}

// PatternFig2 builds the original GP of Fig. 2(c) — the Fig. 1 pattern
// before the updates UP1/UP2 insert the TE constraints: PM→SE(3),
// PM→S(4), SE→TE(3).
func PatternFig2(labels *graph.Labels) (*pattern.Graph, map[string]pattern.NodeID) {
	return patternBase(labels)
}

func patternBase(labels *graph.Labels) (*pattern.Graph, map[string]pattern.NodeID) {
	p := pattern.New(labels)
	ids := make(map[string]pattern.NodeID, len(PatternNames))
	for _, n := range PatternNames {
		ids[n] = p.AddNode(n)
	}
	p.AddEdge(ids["PM"], ids["SE"], 3)
	p.AddEdge(ids["PM"], ids["S"], 4)
	p.AddEdge(ids["SE"], ids["TE"], 3)
	return p, ids
}

// The four updates of Example 2 / Fig. 2, as (from, to, bound) triples to
// be applied by the caller's update machinery:
//
//	UP1: insert pattern edge PM→TE with bound 2
//	UP2: insert pattern edge S→TE with bound 4
//	UD1: insert data edge SE1→TE2
//	UD2: insert data edge DB1→S1
const (
	UP1Bound = pattern.Bound(2)
	UP2Bound = pattern.Bound(4)
)
