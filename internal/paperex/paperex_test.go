package paperex

import (
	"testing"

	"uagpnm/internal/pattern"
)

func TestDataGraphShape(t *testing.T) {
	g, ids := DataGraph()
	if g.NumNodes() != 8 || g.NumEdges() != 12 {
		t.Fatalf("nodes=%d edges=%d, want 8, 12", g.NumNodes(), g.NumEdges())
	}
	if len(ids) != len(Names) {
		t.Fatalf("ids map has %d entries", len(ids))
	}
	// Node order must match the paper's tables.
	for i, name := range Names {
		if ids[name] != uint32(i) {
			t.Fatalf("id(%s) = %d, want %d", name, ids[name], i)
		}
	}
	pm, ok := g.Labels().Lookup("PM")
	if !ok || len(g.NodesWithLabel(pm)) != 2 {
		t.Fatal("PM label wrong")
	}
}

func TestPatternFixtures(t *testing.T) {
	g, _ := DataGraph()
	p1, ids1 := PatternFig1(g.Labels())
	if p1.NumNodes() != 4 || p1.NumEdges() != 4 || !p1.HasStar() {
		t.Fatalf("Fig1 pattern: %d nodes %d edges star=%v", p1.NumNodes(), p1.NumEdges(), p1.HasStar())
	}
	if b, ok := p1.EdgeBound(ids1["S"], ids1["TE"]); !ok || b != pattern.Star {
		t.Fatal("Fig1 must carry S→TE(*)")
	}
	p2, ids2 := PatternFig2(g.Labels())
	if p2.NumNodes() != 4 || p2.NumEdges() != 3 || p2.HasStar() {
		t.Fatalf("Fig2 pattern: %d nodes %d edges", p2.NumNodes(), p2.NumEdges())
	}
	if b, ok := p2.EdgeBound(ids2["PM"], ids2["S"]); !ok || b != 4 {
		t.Fatal("Fig2 must carry PM→S(4)")
	}
	// Both patterns share the data graph's label table.
	if p1.LabelName(ids1["PM"]) != "PM" {
		t.Fatal("label table not shared")
	}
}
