package partition

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/updates"
)

// ApplyDataBatch applies a whole ΔGD sequence — mutating the data graph,
// the partition subgraphs and the intra-partition engines per update —
// with a single overlay reconciliation at the end, and returns the
// per-update affected sets (Aff_N, for DER-II/EH-Tree) plus their union
// (the batch change log the amendment seeds on).
//
// Affected sets are the conservative ball supersets: deletions take
// their balls in the pre-batch state (covering every pair whose original
// shortest path used the deleted element), insertions in the post-batch
// state (covering every pair whose new shortest path uses the inserted
// edge). Any pair whose distance differs between the original and final
// state is witnessed by one of the two, so the union seeds the amendment
// exactly as the per-update API would — at a fraction of the overlay
// maintenance cost, which is what UA-GPNM's batching buys (§VI).
//
// The ball phases (1 and 4) are read-only snapshots of a fixed graph
// state and run one update per worker; the structural phase (2) is
// order-dependent and stays serial; the overlay reconciliation (3)
// parallelises internally. Finally the stitched rows of the change log —
// exactly the rows the subsequent amendment pass queries — are
// pre-warmed across the pool.
func (e *Engine) ApplyDataBatch(ds []updates.Update, g *graph.Graph) (perUpdate []nodeset.Set, changeLog nodeset.Set) {
	perUpdate = make([]nodeset.Set, len(ds))

	// Phase 1: pre-state balls for deletions (nothing applied yet).
	parallelFor(e.workers, len(ds), func(i int) {
		switch u := ds[i]; u.Kind {
		case updates.DataEdgeDelete:
			if g.HasEdge(u.From, u.To) {
				perUpdate[i] = e.conservativeEdgeAffected(u.From, u.To)
			}
		case updates.DataNodeDelete:
			if g.Alive(u.Node) {
				perUpdate[i] = e.nodeAffected(u.Node, g.Out(u.Node), g.In(u.Node))
			}
		}
	})

	// Phase 2: structural application in update order; the overlay is
	// left stale, accumulating dirty anchors.
	var dirty nodeset.Builder
	applied := make([]bool, len(ds))
	for i, u := range ds {
		switch u.Kind {
		case updates.DataEdgeInsert:
			if g.AddEdge(u.From, u.To) {
				e.insertEdgeStructural(u.From, u.To, &dirty)
				applied[i] = true
			}
		case updates.DataEdgeDelete:
			if g.RemoveEdge(u.From, u.To) {
				e.deleteEdgeStructural(u.From, u.To, &dirty)
				applied[i] = true
			}
		case updates.DataNodeInsert:
			if id := g.AddNode(u.Labels...); id != u.Node {
				panic("partition: batch node insert id mismatch")
			}
			e.insertNodeStructural(u.Node)
			applied[i] = true
		case updates.DataNodeDelete:
			if removed, ok := g.RemoveNode(u.Node); ok {
				e.deleteNodeStructural(u.Node, removed, &dirty)
				applied[i] = true
			}
		default:
			panic("partition: ApplyDataBatch on pattern update " + u.String())
		}
	}

	// Phase 3: one overlay reconciliation for the whole batch; the
	// materialised row caches are stale either way.
	if dirty.Len() > 0 {
		e.ov.recompute(dirty.Set(), e.workers)
	}
	e.invalidate()

	// Phase 4: post-state balls for insertions; assemble the change log.
	parallelFor(e.workers, len(ds), func(i int) {
		if !applied[i] {
			return
		}
		switch u := ds[i]; u.Kind {
		case updates.DataEdgeInsert:
			perUpdate[i] = e.conservativeEdgeAffected(u.From, u.To)
		case updates.DataNodeInsert:
			perUpdate[i] = nodeset.New(u.Node)
		}
	})
	var log nodeset.Builder
	for i := range ds {
		if applied[i] {
			log.AddAll(perUpdate[i])
		}
	}
	changeLog = log.Set()

	// Warm the rows the amendment will query.
	e.prefetchRows(changeLog)
	return perUpdate, changeLog
}
