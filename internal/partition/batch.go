package partition

import (
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// ApplyDataBatch applies a whole ΔGD sequence — mutating the data graph,
// the partition subgraph mirrors and the (shard-hosted) intra-partition
// engines per update — with a single overlay reconciliation at the end,
// and returns the per-update affected sets (Aff_N, for DER-II/EH-Tree)
// plus their union (the batch change log the amendment seeds on).
//
// Affected sets are the conservative ball supersets: deletions take
// their balls in the pre-batch state (covering every pair whose original
// shortest path used the deleted element), insertions in the post-batch
// state (covering every pair whose new shortest path uses the inserted
// edge). Any pair whose distance differs between the original and final
// state is witnessed by one of the two, so the union seeds the amendment
// exactly as the per-update API would — at a fraction of the overlay
// maintenance cost, which is what UA-GPNM's batching buys (§VI).
//
// The ball phases (1 and 4) are read-only snapshots of a fixed graph
// state; with in-process shards they run one update per pool worker,
// with remote shards they fan across the shard processes (each worker
// computing its slice against its own data-graph replica). The
// structural phase (2) is order-dependent: the coordinator applies
// every update to its own structures serially, handing in-process
// shards their ops one by one (preserving the monolith's exact
// interleaving) and streaming remote shards the ordered op log in
// epoch-fenced chunks that flush in the background while staging
// continues, joining at the end of the phase (see stream.go). The
// overlay reconciliation (3) parallelises
// internally. Finally the stitched rows of the change log — exactly
// the rows the subsequent amendment pass queries — are pre-warmed
// across the pool.
//
// This is the substrate's error and failover boundary. Losing a shard
// mid-batch (transport death, replica divergence) no longer poisons by
// default: the dead worker is quarantined, its partitions are rebuilt
// from the coordinator's subgraph mirrors on surviving (or spare)
// workers, and the faulted phase is retried against the repaired
// assignment — the op stream is epoch-fenced so a survivor that had
// already applied the in-flight flush never double-applies, and the
// lost workers' affected sets are compensated by conservatively
// dirtying their partitions' bridge anchors before the overlay
// reconciliation (see recovery.go). Only when no capacity survives or
// the failover budget (WithFailoverRetries) is spent does the old
// terminal path fire: an error wrapping shard.ErrSubstrateLost, with
// the engine poisoned (Err reports the sticky loss) because the data
// graph and the intra state may then disagree about which prefix of
// the batch applied. Callers of a poisoned engine drain and rebuild.
func (e *Engine) ApplyDataBatch(ds []updates.Update, g *graph.Graph) (perUpdate []nodeset.Set, changeLog nodeset.Set, err error) {
	return e.ApplyDataBatchPre(ds, g, nil)
}

// ApplyDataBatchPre is ApplyDataBatch with phase 1 optionally hoisted
// out: pre, when aligned with ds, carries the deletions' pre-state
// conservative balls already computed against exactly this graph state
// (the pipelined hub overlaps that computation with the previous
// batch's amendment fan — see hub.Pipeline). The balls are adopted
// verbatim in place of the phase-1 fan; the caller vouches that the
// graph has not changed since they were taken and that the same
// existence guards were applied. A nil or misaligned pre runs phase 1
// normally.
func (e *Engine) ApplyDataBatchPre(ds []updates.Update, g *graph.Graph, pre []nodeset.Set) (perUpdate []nodeset.Set, changeLog nodeset.Set, err error) {
	if lossErr := e.Err(); lossErr != nil {
		return nil, nil, lossErr
	}
	defer RecoverSubstrateLoss(&err)
	e.resetFailoverBudget()
	e.metrics.Counter("gpnm_batches_total").Inc()
	perUpdate = make([]nodeset.Set, len(ds))

	// Phase 1: pre-state balls for deletions (nothing applied yet).
	phaseStart := time.Now()
	switch {
	case pre != nil && len(pre) == len(ds):
		for i, u := range ds {
			if u.Kind == updates.DataEdgeDelete || u.Kind == updates.DataNodeDelete {
				perUpdate[i] = pre[i]
			}
		}
	case e.remote:
		e.withFailover(nil, func() { e.remoteAffected(ds, g, false, nil, perUpdate) })
	default:
		parallelFor(e.workers, len(ds), func(i int) {
			switch u := ds[i]; u.Kind {
			case updates.DataEdgeDelete:
				if g.HasEdge(u.From, u.To) {
					perUpdate[i] = e.conservativeEdgeAffected(u.From, u.To)
				}
			case updates.DataNodeDelete:
				if g.Alive(u.Node) {
					perUpdate[i] = e.nodeAffected(u.Node, g.Out(u.Node), g.In(u.Node))
				}
			}
		})
	}

	e.span("pre_balls", phaseStart)

	// Phase 2: structural application in update order; the overlay is
	// left stale, accumulating dirty anchors. In-process shards apply
	// each op as it is staged; remote shards receive the ordered op log
	// as an epoch-fenced chunk stream that flushes in the background
	// while staging continues, joining (and settling the shard-side
	// affected sets into dirty — a superset of the per-op translation,
	// since every bridge-status change already dirties its endpoints
	// directly) at the end of the phase. See stream.go.
	phaseStart = time.Now()
	var dirty nodeset.Builder
	applied := make([]bool, len(ds))
	var stream *opStreamer
	if e.remote {
		stream = e.newOpStreamer()
	}
	stage := func(op shard.Op) {
		if stream != nil {
			stream.stage(op)
			return
		}
		e.applyOps([]shard.Op{op}, &dirty)
	}
	for i, u := range ds {
		switch u.Kind {
		case updates.DataEdgeInsert:
			if g.AddEdge(u.From, u.To) {
				stage(e.stageInsertEdge(u.From, u.To, &dirty))
				applied[i] = true
			}
		case updates.DataEdgeDelete:
			if g.RemoveEdge(u.From, u.To) {
				stage(e.stageDeleteEdge(u.From, u.To, &dirty))
				applied[i] = true
			}
		case updates.DataNodeInsert:
			if id := g.AddNode(u.Labels...); id != u.Node {
				//lint:allow panic node ids are allocated deterministically by the validated batch; a mismatch means corrupted coordinator state, not bad input
				panic("partition: batch node insert id mismatch")
			}
			stage(e.stageInsertNode(u.Node))
			applied[i] = true
		case updates.DataNodeDelete:
			if removed, ok := g.RemoveNode(u.Node); ok {
				stage(e.stageDeleteNode(u.Node, removed, &dirty))
				applied[i] = true
			}
		default:
			//lint:allow panic API contract: callers split batches by kind before calling; a pattern update here is a programming error
			panic("partition: ApplyDataBatch on pattern update " + u.String())
		}
	}
	if stream != nil {
		stream.finish(&dirty)
	}
	e.span("oplog_flush", phaseStart)

	// Phase 3: one overlay reconciliation for the whole batch; the
	// materialised row caches are stale either way.
	phaseStart = time.Now()
	if dirty.Len() > 0 {
		e.withFailover(nil, func() { e.ov.recompute(dirty.Set(), e.workers) })
	}
	e.invalidate()
	e.span("overlay_sync", phaseStart)

	// Phase 4: post-state balls for insertions; assemble the change log.
	phaseStart = time.Now()
	if e.remote {
		e.withFailover(nil, func() { e.remoteAffected(ds, g, true, applied, perUpdate) })
	} else {
		parallelFor(e.workers, len(ds), func(i int) {
			if !applied[i] {
				return
			}
			switch u := ds[i]; u.Kind {
			case updates.DataEdgeInsert:
				perUpdate[i] = e.conservativeEdgeAffected(u.From, u.To)
			case updates.DataNodeInsert:
				perUpdate[i] = nodeset.New(u.Node)
			}
		})
	}
	var log nodeset.Builder
	for i := range ds {
		if applied[i] {
			log.AddAll(perUpdate[i])
		}
	}
	changeLog = log.Set()
	e.span("post_balls", phaseStart)

	// Warm the stitched rows the amendment will query. Remote fleets
	// skip this: their shard-row demand is planned by the caller right
	// before the read fan (hub.ApplyBatch's PrefetchBallRows covers the
	// change log and more), so assembling stitched rows here would
	// duplicate that plan's coverage — the batch's only standalone bulk
	// read stays the fan plan, one /rows RPC per shard. The /ops flush
	// above already piggybacked the bridge and op-endpoint rows the
	// phases inside this batch read.
	if !e.remote {
		phaseStart = time.Now()
		e.withFailover(nil, func() { e.prefetchRows(changeLog) })
		e.span("row_prefetch", phaseStart)
	}
	return perUpdate, changeLog, nil
}
