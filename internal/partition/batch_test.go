package partition

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/updates"
)

// makeBatch builds a consistent data-update batch against g: a few edge
// inserts and deletes, a node insert and a node delete.
func makeBatch(rng *rand.Rand, g *graph.Graph, live []uint32, newID, victim uint32) []updates.Update {
	var b []updates.Update
	for i := 0; i < 4; i++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if u != v && !g.HasEdge(u, v) && u != victim && v != victim {
			b = append(b, updates.Update{Kind: updates.DataEdgeInsert, From: u, To: v})
		}
	}
	for i := 0; i < 3; i++ {
		u := live[rng.Intn(len(live))]
		if out := g.Out(u); len(out) > 0 && u != victim {
			v := out[rng.Intn(len(out))]
			if v != victim && !inBatch(b, u, v) {
				b = append(b, updates.Update{Kind: updates.DataEdgeDelete, From: u, To: v})
			}
		}
	}
	b = append(b,
		updates.Update{Kind: updates.DataNodeInsert, Node: newID, Labels: []string{"A"}},
		updates.Update{Kind: updates.DataEdgeInsert, From: newID, To: live[0]},
		updates.Update{Kind: updates.DataNodeDelete, Node: victim},
	)
	return b
}

func inBatch(b []updates.Update, u, v uint32) bool {
	for _, x := range b {
		if x.From == u && x.To == v {
			return true
		}
	}
	return false
}

// applySingles replays a batch through the per-update engine API.
func applySingles(t *testing.T, b []updates.Update, g *graph.Graph, e *Engine) {
	t.Helper()
	for _, u := range b {
		updates.ApplyData(u, g, e)
	}
}

// TestApplyDataBatchAffectedCoverage: the union of the batch's per-update
// affected sets must cover every pair whose distance actually changed —
// the seeding invariant of the single-pass amendment.
func TestApplyDataBatchAffectedCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		g := homophilousGraph(rng, 25, 75, 3, 0.8)
		e := NewEngine(g, 3)
		e.Build()
		// Snapshot original distances.
		n0 := g.NumIDs()
		before := make(map[[2]uint32]uint16)
		for u := uint32(0); int(u) < n0; u++ {
			for v := uint32(0); int(v) < n0; v++ {
				before[[2]uint32{u, v}] = e.Dist(u, v)
			}
		}
		var live []uint32
		g.Nodes(func(id uint32) { live = append(live, id) })
		batch := makeBatch(rng, g, live, uint32(g.NumIDs()), live[rng.Intn(len(live))])
		_, changeLog, _ := e.ApplyDataBatch(batch, g)
		logBits := nodeset.NewBits(g.NumIDs())
		logBits.AddSet(changeLog)
		for u := uint32(0); int(u) < n0; u++ {
			for v := uint32(0); int(v) < n0; v++ {
				if before[[2]uint32{u, v}] != e.Dist(u, v) {
					if !logBits.Contains(u) && !logBits.Contains(v) {
						t.Fatalf("trial %d: changed pair (%d,%d) has neither endpoint in the change log",
							trial, u, v)
					}
				}
			}
		}
	}
}

// TestApplyDataBatchNoOps: updates that cannot apply (duplicate edges,
// dead targets) yield nil sets and leave the oracle consistent.
func TestApplyDataBatchNoOps(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	batch := []updates.Update{
		{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["SE2"]}, // exists
		{Kind: updates.DataEdgeDelete, From: ids["SE4"], To: ids["SE1"]}, // absent
		{Kind: updates.DataNodeDelete, Node: 9999},                       // unknown
	}
	perUpdate, changeLog, _ := e.ApplyDataBatch(batch, g)
	for i, s := range perUpdate {
		if s != nil {
			t.Errorf("no-op update %d produced set %v", i, s)
		}
	}
	if !changeLog.Empty() {
		t.Errorf("change log = %v, want empty", changeLog)
	}
	assertOracleAgrees(t, e, g, 0, -3)
}
