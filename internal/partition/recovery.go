package partition

import (
	"errors"
	"fmt"
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/shard"
)

// This file is the failover controller of the sharded §V substrate:
// the piece that turns "a gpnm-shard worker died" from a session-ending
// poison into a repaired assignment and a retried phase.
//
// Why the coordinator can always recover: it never delegates state it
// cannot reproduce. The data graph, the per-partition subgraph mirrors,
// the bridge bookkeeping and the overlay all live coordinator-side; a
// shard only holds the intra SLen engines *derived* from those mirrors.
// Coordinator staging also strictly precedes every shard flush, so at
// any fault the mirrors reflect the full in-flight batch and a rebuild
// from them is exactly the state the dead worker would have reached.
//
// The recovery sequence, run from the single-writer mutation context
// (no concurrent readers exist during a mutation, so the shard table
// may be edited freely):
//
//  1. Quarantine. The observed-faulty slot is dead by decree (even a
//     worker that answers pings is untrustworthy after a failed call —
//     it may have diverged); every other alive slot is probed with a
//     short Ping and joins the dead set on failure.
//  2. Promote. Each dead slot takes the next live spare, keeping its
//     slot index — in-flight ops carry Op.Shard routing, and a stable
//     index keeps it meaningful. Promoted spares get a full Build
//     (replica + owned partitions) from the coordinator's current
//     mirrors, fenced at the current op epoch so a subsequent retry of
//     the in-flight flush cannot double-apply.
//  3. Reassign. Partitions on slots that stayed dead move round-robin
//     onto the survivors, which absorb them via Rebuild (partition
//     snapshots only; their replica and fence survive, and the epoch
//     fence reconciles whether or not they had applied the in-flight
//     flush before the loss).
//  4. Compensate. The dead workers' in-flight affected sets are gone,
//     so every partition they owned has its bridge anchors added to
//     the batch's dirty set — a conservative superset that makes the
//     overlay reconciliation recompute those rows from scratch.
//
// The caller then retries the faulted phase against the repaired
// assignment. Terminal poison (shard.ErrSubstrateLost) remains the
// fallback when nothing survives or the per-mutation budget is spent.

// WithReadFailover runs a read-only phase with shard losses repairable:
// a worker lost mid-read is quarantined, its partitions rebuilt from
// the coordinator's mirrors (identical distances — reads mutate
// nothing, so no op replay or overlay compensation is needed), and fn
// is retried against the repaired assignment. This extends failover
// beyond the mutation phases to the read fan-outs that bracket them —
// a hub's initial query on Register, the per-pattern detection and
// amendment fan of a batch — which is where a loss surfaces when it
// happens between batches.
//
// Caller contract: the caller must hold exclusive access to the engine
// (no other goroutine reading it — the engine edits the shard table
// during recovery), fn must not mutate the engine, and fn must be
// idempotent — it re-runs wholesale after a repair, so it must
// overwrite its outputs rather than accumulate. Each call is its own
// failover boundary (fresh WithFailoverRetries budget). On exhaustion
// it panics with the sticky loss exactly like the query surface;
// convert with RecoverSubstrateLoss at an error boundary.
func (e *Engine) WithReadFailover(fn func()) {
	e.ensureUsable()
	e.resetFailoverBudget()
	e.withFailover(nil, fn)
}

// ShardProbe is a snapshot of one alive shard slot, taken for an
// off-path health probe: the slot index plus the exact client serving
// it at snapshot time, so a later repair can tell whether the probe
// still describes the fleet.
type ShardProbe struct {
	Idx   int
	Shard shard.Shard
}

// ShardProbes snapshots the alive shard slots of a remote fleet. The
// caller must hold exclusive access to the engine for the call itself
// (the shard table is edited during recovery), but the returned probes
// are safe to Ping WITHOUT it — shard clients are concurrency-safe, and
// the worst a racing recovery can do is Close one, which just makes the
// ping fail against a slot SweepRepair will then recognise as already
// handled. Returns nil for in-process fleets and poisoned engines:
// neither has anything to sweep.
func (e *Engine) ShardProbes() []ShardProbe {
	if !e.remote || e.Err() != nil {
		return nil
	}
	alive := e.aliveIndices()
	ps := make([]ShardProbe, 0, len(alive))
	for _, i := range alive {
		ps = append(ps, ShardProbe{Idx: i, Shard: e.shards[i]})
	}
	return ps
}

// SweepRepair repairs the fleet after an off-path probe of p failed
// with pingErr, using the same quarantine/promote/reassign/rebuild
// sequence a mid-batch fault triggers — just discovered between batches
// instead of by the next batch's first RPC. The caller must hold
// exclusive access to the engine. A probe overtaken by an interleaved
// recovery — the slot already quarantined, or serving a different
// client than the one probed — is skipped (reported false): the fleet
// the probe described no longer exists. No overlay compensation is
// needed (nothing was in flight), matching read-phase recoveries. On
// unrecoverable loss the engine poisons exactly as a mid-batch fault
// would; convert with RecoverSubstrateLoss at the caller's boundary.
func (e *Engine) SweepRepair(p ShardProbe, pingErr error) bool {
	e.ensureUsable()
	if p.Idx < 0 || p.Idx >= len(e.shards) || !e.shardAlive[p.Idx] || e.shards[p.Idx] != p.Shard {
		return false
	}
	e.resetFailoverBudget()
	e.recoverFault(&shardFault{idx: p.Idx, err: pingErr}, nil)
	return true
}

// runRecoverable executes one failover-protected phase, converting a
// repairable *shardFault panic into a return value. Any other panic —
// including the sticky poison — is re-raised.
func (e *Engine) runRecoverable(phase func()) (f *shardFault) {
	e.recoverable.Store(true)
	defer e.recoverable.Store(false)
	defer func() {
		if r := recover(); r != nil {
			if sf, ok := r.(*shardFault); ok {
				f = sf
				return
			}
			//lint:allow panic re-raise of a foreign panic; only *shardFault unwinds belong to this seam
			panic(r)
		}
	}()
	phase()
	return nil
}

// withFailover runs phase, repairing the shard assignment and retrying
// on loss until the phase completes or the recovery budget is spent.
// Phases must be idempotent against the coordinator's own state (every
// protected phase is: reads overwrite their outputs, the op flush is
// epoch-fenced, dirty accumulation has set semantics). dirty, when
// non-nil, receives the conservative bridge anchors of partitions whose
// in-flight affected sets died with their worker.
func (e *Engine) withFailover(dirty *nodeset.Builder, phase func()) {
	if !e.remote {
		// In-process shards never fail operationally; keep the serial
		// path bit-for-bit.
		phase()
		return
	}
	for {
		f := e.runRecoverable(phase)
		if f == nil {
			return
		}
		e.recoverFault(f, dirty)
	}
}

// recoverFault spends one unit of the mutation's failover budget
// repairing the fleet after fault f, poisoning the engine when the
// budget is exhausted or the repair itself fails. It is the budgeted
// core of withFailover, also entered directly by the op-log streamer
// (whose faults are recorded off the critical path and repaired at the
// phase join) and the proactive health sweep (which discovers losses
// between batches instead of by the next batch's first RPC).
func (e *Engine) recoverFault(f *shardFault, dirty *nodeset.Builder) {
	if e.recoveryBudget <= 0 {
		e.poison(f.err)
	}
	e.recoveryBudget--
	e.recoveringFlag.Store(true)
	e.metrics.Counter("gpnm_recovery_retries_total").Inc()
	recoveryStart := time.Now()
	err := e.recoverShards(f, dirty)
	e.span("recovery", recoveryStart)
	e.recoveringFlag.Store(false)
	if err != nil {
		// Keep the original transport error in the chain: callers
		// assert errors.As(*shard.TransportError) on terminal losses.
		e.poison(fmt.Errorf("failover failed (%v): %w", err, f.err))
	}
	e.recoveredN.Add(1)
}

// recoverShards repairs the shard assignment after slot f.idx faulted.
// It loops until a pass completes with every build/rebuild succeeding —
// workers that die during recovery simply join the dead set of the next
// pass — or until no serving capacity remains.
func (e *Engine) recoverShards(f *shardFault, dirty *nodeset.Builder) error {
	suspect := map[int]bool{f.idx: true}
	lostParts := map[int]bool{} // partitions owned by a slot at the moment it died
	for pass := 0; ; pass++ {
		if pass > len(e.shards)+len(e.spares)+1 {
			return errors.New("recovery did not converge")
		}
		// 1. Quarantine suspects and probe the remaining alive slots —
		// probes fan in parallel so detection costs one Ping timeout,
		// not one per worker.
		probeStart := time.Now()
		probe := e.aliveIndices()
		probeDead := make([]bool, len(probe))
		parallelFor(len(probe), len(probe), func(k int) {
			i := probe[k]
			probeDead[k] = suspect[i] || e.shards[i].Ping() != nil
		})
		for k, i := range probe {
			if !probeDead[k] {
				continue
			}
			e.shardAlive[i] = false
			//lint:allow faultseam best-effort close of a quarantined slot; the controller already treats it as dead
			_ = e.shards[i].Close()
			e.metrics.Counter("gpnm_recovery_quarantined_total").Inc()
			for p, s := range e.shardOf {
				if int(s) == i {
					lostParts[p] = true
				}
			}
		}
		suspect = map[int]bool{}
		e.span("recovery_probe", probeStart)

		// 2. Promote spares into dead slots (slot index preserved).
		fresh := map[int]bool{}
		for i := range e.shards {
			if e.shardAlive[i] {
				continue
			}
			for len(e.spares) > 0 {
				sp := e.spares[0]
				e.spares = e.spares[1:]
				if sp.Ping() != nil {
					//lint:allow faultseam best-effort close of a dead spare before trying the next one
					_ = sp.Close()
					continue
				}
				e.shards[i] = sp
				e.shardAlive[i] = true
				fresh[i] = true
				e.metrics.Counter("gpnm_recovery_promoted_total").Inc()
				break
			}
		}
		alive := e.aliveIndices()
		if len(alive) == 0 {
			return errors.New("no surviving or spare shard")
		}

		// 3. Reassign partitions stranded on dead slots to survivors.
		moved := make(map[int][]int)
		for p, s := range e.shardOf {
			if e.shardAlive[s] {
				continue
			}
			t := alive[p%len(alive)]
			e.shardOf[p] = int32(t)
			moved[t] = append(moved[t], p)
		}

		// 4. Build promoted spares (full: replica + owned partitions)
		// and rebuild absorbed partitions on survivors, all from the
		// coordinator's current mirrors. The fence in cfg.Epoch marks
		// those snapshots as already containing the in-flight flush.
		rebuildStart := time.Now()
		cfg := e.shardConfig()
		src := &engineSource{e: e}
		owned := e.groupByShard()
		ok := true
		for _, i := range alive {
			var err error
			switch {
			case fresh[i]:
				//lint:allow faultseam the recovery controller IS the seam here: a failed rebuild re-marks the slot suspect for the next round
				err = e.shards[i].Build(cfg, i, owned[i], src)
			case len(moved[i]) > 0:
				//lint:allow faultseam the recovery controller IS the seam here: a failed rebuild re-marks the slot suspect for the next round
				err = e.shards[i].Rebuild(cfg, i, moved[i], src)
			default:
				continue
			}
			e.metrics.Counter("gpnm_recovery_rebuilds_total").Inc()
			if err != nil {
				suspect[i] = true
				ok = false
			}
		}
		e.span("recovery_rebuild", rebuildStart)
		if !ok {
			continue
		}

		// 5. Conservative compensation for the dead workers' lost
		// affected sets: dirty every bridge anchor of every partition
		// they owned, so the overlay reconciliation recomputes those
		// rows from scratch. Needed only when an op flush was in
		// flight (dirty != nil there); read-phase recoveries rebuild
		// identical intra state and leave the overlay valid.
		if dirty != nil {
			for p := range lostParts {
				pt := e.part.parts[p]
				for _, x := range pt.exits {
					dirty.Add(x)
				}
				for _, x := range pt.entries {
					dirty.Add(x)
				}
			}
		}
		// Rebuilt engines mean previously cached stitched rows may have
		// been built against a now-dead worker mid-phase; drop them so
		// the retry assembles everything against the repaired fleet.
		e.invalidate()
		return nil
	}
}
