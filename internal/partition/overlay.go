package partition

import (
	"sync"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
)

// overlay is the weighted bridge graph gluing the partitions together.
// Its nodes are the bridge nodes (exits and entries, by global id); its
// edges are
//
//   - every cross-partition data edge (weight 1), and
//   - entry → exit hops within one partition (weight = intra-partition
//     shortest path length),
//
// and it materialises capped all-pairs distances between bridge nodes in
// fwd (with a transposed mirror in rev), maintained by scoped
// recomputation after each update batch.
//
// Adjacency is never materialised: Dijkstra asks the partitioning for
// neighbours live, so intra-distance changes are picked up for free.
//
// Concurrency: Dijkstra runs are read-only over the partition structures
// and carry their own scratch (pooled), so build and recompute fan the
// per-source runs across a bounded worker pool and install the finished
// rows from a single goroutine — fwd and rev are only ever mutated
// serially.
//
// Intra-partition distances reach the overlay through the engine's
// shard table (e.intraBall), so the Dijkstra works identically whether
// the per-partition engines are in-process or remote.
type overlay struct {
	e        *Engine
	p        *Partitioning
	fwd, rev shortest.Matrix

	// scratch pools per-worker Dijkstra state.
	scratch sync.Pool

	// row snapshot buffers for installRow (serial use only).
	oldCols []uint32
	oldVals []shortest.Dist
}

func newOverlay(e *Engine) *overlay {
	o := &overlay{e: e, p: e.part}
	o.scratch.New = func() interface{} { return new(dijkstraScratch) }
	// Zero-row placeholders: build() allocates the real matrices (and
	// CloneFor swaps in cloned ones), so sizing them here would only
	// produce garbage; recompute grows them on demand either way.
	o.fwd = shortest.NewHybrid(0, 8)
	o.rev = shortest.NewHybrid(0, 8)
	return o
}

// dijkstraScratch is the epoch-stamped working state of one capped
// Dijkstra run. Each worker borrows one from the overlay's pool, so runs
// on different goroutines never share mutable state.
type dijkstraScratch struct {
	heap    dijkstraHeap
	dist    []shortest.Dist
	stamp   []uint32
	epoch   uint32
	touched []uint32
	distRow []shortest.Dist
}

func (sc *dijkstraScratch) setDist(id uint32, d shortest.Dist) {
	if int(id) >= len(sc.stamp) {
		grow := int(id) + 1 - len(sc.stamp)
		sc.dist = append(sc.dist, make([]shortest.Dist, grow)...)
		sc.stamp = append(sc.stamp, make([]uint32, grow)...)
	}
	if sc.stamp[id] != sc.epoch {
		sc.stamp[id] = sc.epoch
		sc.touched = append(sc.touched, id)
	}
	sc.dist[id] = d
}

func (sc *dijkstraScratch) getDist(id uint32) (shortest.Dist, bool) {
	if int(id) >= len(sc.stamp) || sc.stamp[id] != sc.epoch {
		return 0, false
	}
	return sc.dist[id], true
}

func (o *overlay) cap() int {
	if o.p.horizon == 0 {
		return int(shortest.Inf) - 1
	}
	return o.p.horizon
}

// neighbors visits the overlay successors of u with their weights:
// cross edges out of an exit (weight 1) and, for an entry, the exits of
// its partition reachable intra-partition — enumerated by scanning u's
// intra distance row (O(ball)) rather than the partition's exit list
// (O(|IB|) Gets), which dominates reconciliation cost otherwise.
func (o *overlay) neighbors(u uint32, fn func(v uint32, w shortest.Dist)) {
	p := o.p
	if p.isExit(u) {
		pu := p.partOf[u]
		for _, v := range p.g.Out(u) {
			if p.partIndex(v) != pu {
				fn(v, 1)
			}
		}
	}
	if p.isEntry(u) {
		pi := p.partOf[u]
		pt := p.parts[pi]
		o.e.intraBall(pi, p.localOf[u], o.cap(), false, func(local uint32, w shortest.Dist) bool {
			gid := pt.globals[local]
			if gid != u && p.isExit(gid) {
				fn(gid, w)
			}
			return true
		})
	}
}

// revNeighbors visits the overlay predecessors of u with their weights.
func (o *overlay) revNeighbors(u uint32, fn func(v uint32, w shortest.Dist)) {
	p := o.p
	if p.isEntry(u) {
		pu := p.partOf[u]
		for _, v := range p.g.In(u) {
			if p.partIndex(v) != pu {
				fn(v, 1)
			}
		}
	}
	if p.isExit(u) {
		pi := p.partOf[u]
		pt := p.parts[pi]
		o.e.intraBall(pi, p.localOf[u], o.cap(), true, func(local uint32, w shortest.Dist) bool {
			gid := pt.globals[local]
			if gid != u && p.isEntry(gid) {
				fn(gid, w)
			}
			return true
		})
	}
}

// dijkstra runs a capped Dijkstra from src over the overlay (reverse
// follows predecessor edges) and returns ascending (cols, dists),
// src included at 0. Results alias sc and are valid until its next run;
// it only reads the overlay/partition structures, so concurrent runs on
// distinct scratches are safe.
func (o *overlay) dijkstra(sc *dijkstraScratch, src uint32, reverse bool) ([]uint32, []shortest.Dist) {
	H := shortest.Dist(o.cap())
	sc.epoch++
	sc.touched = sc.touched[:0]
	sc.heap = sc.heap[:0]
	if !o.p.g.Alive(src) || !o.p.isOverlay(src) {
		return nil, nil
	}
	sc.setDist(src, 0)
	sc.heap.push(heapItem{0, src})
	for len(sc.heap) > 0 {
		it := sc.heap.pop()
		if d, ok := sc.getDist(it.id); ok && it.d > d {
			continue // stale entry
		}
		visit := func(v uint32, w shortest.Dist) {
			nd := it.d + w
			if nd > H {
				return
			}
			if cur, ok := sc.getDist(v); !ok || nd < cur {
				sc.setDist(v, nd)
				sc.heap.push(heapItem{nd, v})
			}
		}
		if reverse {
			o.revNeighbors(it.id, visit)
		} else {
			o.neighbors(it.id, visit)
		}
	}
	nodeset.SortIDs(sc.touched)
	cols := sc.touched
	if cap(sc.distRow) < len(cols) {
		sc.distRow = make([]shortest.Dist, len(cols))
	}
	dists := sc.distRow[:len(cols)]
	for i, c := range cols {
		dists[i] = sc.dist[c]
	}
	return cols, dists
}

// overlayRow is one finished Dijkstra row, copied out of scratch so the
// scratch can return to the pool while the row waits for serial install.
type overlayRow struct {
	src   uint32
	cols  []uint32
	dists []shortest.Dist
}

// computeRows fans capped Dijkstras from each source across the worker
// pool and returns the finished rows indexed like srcs. Dead or
// non-bridge sources yield empty rows.
func (o *overlay) computeRows(srcs []uint32, workers int, reverse bool) []overlayRow {
	rows := make([]overlayRow, len(srcs))
	parallelFor(workers, len(srcs), func(i int) {
		sc := o.scratch.Get().(*dijkstraScratch)
		cols, dists := o.dijkstra(sc, srcs[i], reverse)
		rows[i] = overlayRow{
			src:   srcs[i],
			cols:  append([]uint32(nil), cols...),
			dists: append([]shortest.Dist(nil), dists...),
		}
		o.scratch.Put(sc)
	})
	return rows
}

// overlayNodes returns every current bridge node, sorted.
func (o *overlay) overlayNodes() []uint32 {
	var b nodeset.Builder
	for _, pt := range o.p.parts {
		for _, x := range pt.exits {
			b.Add(x)
		}
		for _, e := range pt.entries {
			b.Add(e)
		}
	}
	return b.Set()
}

// build computes all-pairs overlay distances from scratch, one parallel
// Dijkstra per bridge node.
func (o *overlay) build(workers int) {
	n := o.p.g.NumIDs()
	o.fwd = shortest.NewHybrid(n, 8)
	o.rev = shortest.NewHybrid(n, 8)
	for _, row := range o.computeRows(o.overlayNodes(), workers, false) {
		o.fwd.SetRow(row.src, row.cols, row.dists)
		for i, c := range row.cols {
			o.rev.Set(c, row.src, row.dists[i])
		}
	}
}

// dist returns the overlay distance between bridge nodes (Inf otherwise).
func (o *overlay) distBetween(u, b uint32) shortest.Dist {
	if u == b && o.p.isOverlay(u) && o.p.g.Alive(u) {
		return 0
	}
	return o.fwd.Get(u, b)
}

// recompute refreshes overlay rows after a batch whose overlay-relevant
// changes touch the anchor nodes in dirty (new/removed bridge nodes,
// bridge nodes of partitions whose intra distances changed, endpoints of
// added/removed cross edges). Partition subgraphs and counters must
// already reflect the new state. Both the per-anchor source discovery
// (reverse Dijkstras) and the per-source row recomputation (forward
// Dijkstras) run on the worker pool; rows are installed serially.
func (o *overlay) recompute(dirty nodeset.Set, workers int) {
	o.fwd.GrowTo(o.p.g.NumIDs())
	o.rev.GrowTo(o.p.g.NumIDs())
	// Sources whose rows may change: anything that reached a dirty anchor
	// under the old metric (old rev rows), anything that reaches it under
	// the new metric (reverse Dijkstra on the new state), and the anchors
	// themselves.
	reached := o.computeRows(dirty, workers, true)
	srcs := nodeset.NewBits(o.p.g.NumIDs())
	for i, d := range dirty {
		srcs.Add(d)
		o.rev.Row(d, func(c uint32, _ shortest.Dist) bool { srcs.Add(c); return true })
		for _, c := range reached[i].cols {
			srcs.Add(c)
		}
	}
	var srcList []uint32
	srcs.Range(func(s uint32) bool { srcList = append(srcList, s); return true })
	for _, row := range o.computeRows(srcList, workers, false) {
		o.installRow(row.src, row.cols, row.dists)
	}
}

// installRow replaces fwd row s, mirroring deltas into rev.
func (o *overlay) installRow(s uint32, cols []uint32, dists []shortest.Dist) {
	o.oldCols = o.oldCols[:0]
	o.oldVals = o.oldVals[:0]
	o.fwd.Row(s, func(c uint32, d shortest.Dist) bool {
		o.oldCols = append(o.oldCols, c)
		o.oldVals = append(o.oldVals, d)
		return true
	})
	i, j := 0, 0
	for i < len(o.oldCols) || j < len(cols) {
		switch {
		case j == len(cols) || (i < len(o.oldCols) && o.oldCols[i] < cols[j]):
			o.rev.Set(o.oldCols[i], s, shortest.Inf)
			i++
		case i == len(o.oldCols) || cols[j] < o.oldCols[i]:
			o.rev.Set(cols[j], s, dists[j])
			j++
		default:
			if o.oldVals[i] != dists[j] {
				o.rev.Set(cols[j], s, dists[j])
			}
			i++
			j++
		}
	}
	o.fwd.SetRow(s, cols, dists)
}

// heapItem and dijkstraHeap implement a minimal binary min-heap; the
// overlay is small, so a hand-rolled slice heap beats container/heap's
// interface indirection.
type heapItem struct {
	d  shortest.Dist
	id uint32
}

type dijkstraHeap []heapItem

func (h *dijkstraHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].d <= (*h)[i].d {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *dijkstraHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].d < (*h)[small].d {
			small = l
		}
		if r < last && (*h)[r].d < (*h)[small].d {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
