package partition

import (
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
)

// overlay is the weighted bridge graph gluing the partitions together.
// Its nodes are the bridge nodes (exits and entries, by global id); its
// edges are
//
//   - every cross-partition data edge (weight 1), and
//   - entry → exit hops within one partition (weight = intra-partition
//     shortest path length),
//
// and it materialises capped all-pairs distances between bridge nodes in
// fwd (with a transposed mirror in rev), maintained by scoped
// recomputation after each update batch.
//
// Adjacency is never materialised: Dijkstra asks the partitioning for
// neighbours live, so intra-distance changes are picked up for free.
type overlay struct {
	p        *Partitioning
	fwd, rev shortest.Matrix

	// epoch-stamped Dijkstra scratch
	heap    dijkstraHeap
	dist    []shortest.Dist
	stamp   []uint32
	epoch   uint32
	touched []uint32
	distRow []shortest.Dist
	oldCols []uint32
	oldVals []shortest.Dist
}

func newOverlay(p *Partitioning) *overlay {
	n := p.g.NumIDs()
	o := &overlay{p: p}
	o.fwd = shortest.NewHybrid(n, 8)
	o.rev = shortest.NewHybrid(n, 8)
	return o
}

func (o *overlay) setDist(id uint32, d shortest.Dist) {
	if int(id) >= len(o.stamp) {
		grow := int(id) + 1 - len(o.stamp)
		o.dist = append(o.dist, make([]shortest.Dist, grow)...)
		o.stamp = append(o.stamp, make([]uint32, grow)...)
	}
	if o.stamp[id] != o.epoch {
		o.stamp[id] = o.epoch
		o.touched = append(o.touched, id)
	}
	o.dist[id] = d
}

func (o *overlay) getDist(id uint32) (shortest.Dist, bool) {
	if int(id) >= len(o.stamp) || o.stamp[id] != o.epoch {
		return 0, false
	}
	return o.dist[id], true
}

func (o *overlay) cap() int {
	if o.p.horizon == 0 {
		return int(shortest.Inf) - 1
	}
	return o.p.horizon
}

// neighbors visits the overlay successors of u with their weights:
// cross edges out of an exit (weight 1) and, for an entry, the exits of
// its partition reachable intra-partition — enumerated by scanning u's
// intra distance row (O(ball)) rather than the partition's exit list
// (O(|IB|) Gets), which dominates reconciliation cost otherwise.
func (o *overlay) neighbors(u uint32, fn func(v uint32, w shortest.Dist)) {
	p := o.p
	if p.isExit(u) {
		pu := p.partOf[u]
		for _, v := range p.g.Out(u) {
			if p.partIndex(v) != pu {
				fn(v, 1)
			}
		}
	}
	if p.isEntry(u) {
		pt := p.parts[p.partOf[u]]
		pt.eng.ForwardBall(p.localOf[u], o.cap(), func(local uint32, w shortest.Dist) bool {
			gid := pt.globals[local]
			if gid != u && p.isExit(gid) {
				fn(gid, w)
			}
			return true
		})
	}
}

// revNeighbors visits the overlay predecessors of u with their weights.
func (o *overlay) revNeighbors(u uint32, fn func(v uint32, w shortest.Dist)) {
	p := o.p
	if p.isEntry(u) {
		pu := p.partOf[u]
		for _, v := range p.g.In(u) {
			if p.partIndex(v) != pu {
				fn(v, 1)
			}
		}
	}
	if p.isExit(u) {
		pt := p.parts[p.partOf[u]]
		pt.eng.ReverseBall(p.localOf[u], o.cap(), func(local uint32, w shortest.Dist) bool {
			gid := pt.globals[local]
			if gid != u && p.isEntry(gid) {
				fn(gid, w)
			}
			return true
		})
	}
}

// dijkstra runs a capped Dijkstra from src over the overlay (reverse
// follows predecessor edges) and returns ascending (cols, dists),
// src included at 0. Results alias scratch and are valid until next call.
func (o *overlay) dijkstra(src uint32, reverse bool) ([]uint32, []shortest.Dist) {
	H := shortest.Dist(o.cap())
	o.epoch++
	o.touched = o.touched[:0]
	o.heap = o.heap[:0]
	if !o.p.g.Alive(src) || !o.p.isOverlay(src) {
		return nil, nil
	}
	o.setDist(src, 0)
	o.heap.push(heapItem{0, src})
	for len(o.heap) > 0 {
		it := o.heap.pop()
		if d, ok := o.getDist(it.id); ok && it.d > d {
			continue // stale entry
		}
		visit := func(v uint32, w shortest.Dist) {
			nd := it.d + w
			if nd > H {
				return
			}
			if cur, ok := o.getDist(v); !ok || nd < cur {
				o.setDist(v, nd)
				o.heap.push(heapItem{nd, v})
			}
		}
		if reverse {
			o.revNeighbors(it.id, visit)
		} else {
			o.neighbors(it.id, visit)
		}
	}
	nodeset.SortIDs(o.touched)
	cols := o.touched
	if cap(o.distRow) < len(cols) {
		o.distRow = make([]shortest.Dist, len(cols))
	}
	dists := o.distRow[:len(cols)]
	for i, c := range cols {
		dists[i] = o.dist[c]
	}
	return cols, dists
}

// overlayNodes returns every current bridge node, sorted.
func (o *overlay) overlayNodes() []uint32 {
	var b nodeset.Builder
	for _, pt := range o.p.parts {
		for _, x := range pt.exits {
			b.Add(x)
		}
		for _, e := range pt.entries {
			b.Add(e)
		}
	}
	return b.Set()
}

// build computes all-pairs overlay distances from scratch.
func (o *overlay) build() {
	n := o.p.g.NumIDs()
	o.fwd = shortest.NewHybrid(n, 8)
	o.rev = shortest.NewHybrid(n, 8)
	for _, u := range o.overlayNodes() {
		cols, dists := o.dijkstra(u, false)
		o.fwd.SetRow(u, cols, dists)
		for i, c := range cols {
			o.rev.Set(c, u, dists[i])
		}
	}
}

// dist returns the overlay distance between bridge nodes (Inf otherwise).
func (o *overlay) distBetween(u, b uint32) shortest.Dist {
	if u == b && o.p.isOverlay(u) && o.p.g.Alive(u) {
		return 0
	}
	return o.fwd.Get(u, b)
}

// recompute refreshes overlay rows after a batch whose overlay-relevant
// changes touch the anchor nodes in dirty (new/removed bridge nodes,
// bridge nodes of partitions whose intra distances changed, endpoints of
// added/removed cross edges). Partition subgraphs and counters must
// already reflect the new state.
func (o *overlay) recompute(dirty nodeset.Set) {
	o.fwd.GrowTo(o.p.g.NumIDs())
	o.rev.GrowTo(o.p.g.NumIDs())
	// Sources whose rows may change: anything that reached a dirty anchor
	// under the old metric (old rev rows), anything that reaches it under
	// the new metric (reverse Dijkstra on the new state), and the anchors
	// themselves.
	srcs := nodeset.NewBits(o.p.g.NumIDs())
	for _, d := range dirty {
		srcs.Add(d)
		o.rev.Row(d, func(c uint32, _ shortest.Dist) bool { srcs.Add(c); return true })
		cols, _ := o.dijkstra(d, true)
		for _, c := range cols {
			srcs.Add(c)
		}
	}
	srcs.Range(func(s uint32) bool {
		var cols []uint32
		var dists []shortest.Dist
		if o.p.g.Alive(s) && o.p.isOverlay(s) {
			cols, dists = o.dijkstra(s, false)
		}
		o.installRow(s, cols, dists)
		return true
	})
}

// installRow replaces fwd row s, mirroring deltas into rev.
func (o *overlay) installRow(s uint32, cols []uint32, dists []shortest.Dist) {
	o.oldCols = o.oldCols[:0]
	o.oldVals = o.oldVals[:0]
	o.fwd.Row(s, func(c uint32, d shortest.Dist) bool {
		o.oldCols = append(o.oldCols, c)
		o.oldVals = append(o.oldVals, d)
		return true
	})
	i, j := 0, 0
	for i < len(o.oldCols) || j < len(cols) {
		switch {
		case j == len(cols) || (i < len(o.oldCols) && o.oldCols[i] < cols[j]):
			o.rev.Set(o.oldCols[i], s, shortest.Inf)
			i++
		case i == len(o.oldCols) || cols[j] < o.oldCols[i]:
			o.rev.Set(cols[j], s, dists[j])
			j++
		default:
			if o.oldVals[i] != dists[j] {
				o.rev.Set(cols[j], s, dists[j])
			}
			i++
			j++
		}
	}
	o.fwd.SetRow(s, cols, dists)
}

// heapItem and dijkstraHeap implement a minimal binary min-heap; the
// overlay is small, so a hand-rolled slice heap beats container/heap's
// interface indirection.
type heapItem struct {
	d  shortest.Dist
	id uint32
}

type dijkstraHeap []heapItem

func (h *dijkstraHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].d <= (*h)[i].d {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *dijkstraHeap) pop() heapItem {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && (*h)[l].d < (*h)[small].d {
			small = l
		}
		if r < last && (*h)[r].d < (*h)[small].d {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
