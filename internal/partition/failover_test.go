package partition_test

// Failover differential suite: kill one of two shard workers during
// each phase of ApplyDataBatch separately and pin that the batch still
// completes with results bit-for-bit equal to a Scratch session — the
// recovery rebuilt the lost partitions from the coordinator's mirrors,
// the epoch fence kept the survivor from double-applying, and the
// conservative anchor compensation kept the overlay exact. Run under
// -race (the tier-1 gate does): the kill switch flips on a handler
// goroutine while pool workers fan requests.

import (
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/partition"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// killableWorker wraps a shard worker's handler with a kill switch: once
// dead it answers 503 to everything (/healthz included, so the failover
// probe sees a corpse, exactly like a kill -9'd process behind a closed
// port). Arm(path, skip) makes the skip+1-th request whose path matches
// the trigger — path counts select the batch phase deterministically:
// a worker serves at most one /affected RPC per ball phase and one /ops
// per flush.
type killableWorker struct {
	ts    *httptest.Server
	dead  atomic.Bool
	armed atomic.Value // string ("" = disarmed)
	skip  atomic.Int64
}

func newKillableWorker(t testing.TB) *killableWorker {
	t.Helper()
	k := &killableWorker{}
	k.armed.Store("")
	inner := shard.NewServer().Handler()
	k.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k.dead.Load() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		if p, _ := k.armed.Load().(string); p != "" && strings.HasPrefix(r.URL.Path, p) {
			if k.skip.Add(-1) < 0 {
				k.dead.Store(true)
				http.Error(w, "killed", http.StatusServiceUnavailable)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(k.ts.Close)
	return k
}

func (k *killableWorker) arm(path string, skip int) {
	k.skip.Store(int64(skip))
	k.armed.Store(path)
}

// failoverInstance builds a random labelled graph and pattern (the
// shard differential suite's recipe, reproduced here because that
// helper lives in another external test package).
func failoverInstance(seed int64, n, m int) (*graph.Graph, *pattern.Graph) {
	labels := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	p := pattern.New(g.Labels())
	ids := make([]pattern.NodeID, 3+rng.Intn(3))
	for i := range ids {
		ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < len(ids)+1; i++ {
		p.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], pattern.Bound(1+rng.Intn(3)))
	}
	return g, p
}

// mixedBatch builds a deterministic data batch with at least nDel edge
// deletions and nIns insertions against g's current state — deletions
// drive phase 1 (pre-state balls), the op flush is phase 2, insertions
// drive phase 4 (post-state balls). Deletions come first and the two
// sets are disjoint, so application order cannot interfere.
func mixedBatch(g *graph.Graph, rng *rand.Rand, nDel, nIns int) []updates.Update {
	var ds []updates.Update
	deleted := map[[2]uint32]bool{}
	var edges [][2]uint32
	g.Edges(func(e graph.Edge) { edges = append(edges, [2]uint32{e.From, e.To}) })
	for _, i := range rng.Perm(len(edges)) {
		if len(ds) >= nDel {
			break
		}
		e := edges[i]
		ds = append(ds, updates.Update{Kind: updates.DataEdgeDelete, From: e[0], To: e[1]})
		deleted[e] = true
	}
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })
	ins := 0
	for tries := 0; ins < nIns && tries < 10000; tries++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if u == v || g.HasEdge(u, v) || deleted[[2]uint32{u, v}] {
			continue
		}
		ds = append(ds, updates.Update{Kind: updates.DataEdgeInsert, From: u, To: v})
		deleted[[2]uint32{u, v}] = true // reuse as "already chosen"
		ins++
	}
	return ds
}

// failoverFixture is one Scratch-vs-failover pairing: a reference
// Scratch session and a UA-GPNM session whose engine runs on two RPC
// workers, the second killable.
type failoverFixture struct {
	ref    *core.Session
	sess   *core.Session
	eng    *partition.Engine
	victim *killableWorker
	rng    *rand.Rand
}

func newFailoverFixture(t *testing.T, seed int64, workers int, opts ...partition.Option) *failoverFixture {
	t.Helper()
	g, p := failoverInstance(seed, 40, 110)
	ref := core.NewSession(g.Clone(), p.Clone(), core.Config{Method: core.Scratch, Horizon: 3})

	healthy := newKillableWorker(t) // never armed
	victim := newKillableWorker(t)
	g2 := g.Clone()
	opts = append(opts,
		partition.WithWorkers(workers),
		partition.WithShards(shard.Dial(healthy.ts.URL), shard.Dial(victim.ts.URL)))
	eng := partition.NewEngine(g2, 3, opts...)
	eng.Build()
	t.Cleanup(func() { _ = eng.Close() })
	sess := core.NewSessionWith(g2, p.Clone(), eng,
		core.Config{Method: core.UAGPNM, Horizon: 3, Workers: workers})
	if !sess.Match.Equal(ref.Match) {
		t.Fatal("IQuery diverges from Scratch before any kill")
	}
	return &failoverFixture{ref: ref, sess: sess, eng: eng, victim: victim,
		rng: rand.New(rand.NewSource(seed * 31))}
}

// round applies one identical mixed batch to both sides and pins result
// equality.
func (fx *failoverFixture) round(t *testing.T, label string) {
	t.Helper()
	fx.roundN(t, label, 3, 3)
}

// roundN is round with a caller-chosen batch shape (the op-stream tests
// need enough ops to seal several chunks).
func (fx *failoverFixture) roundN(t *testing.T, label string, nDel, nIns int) {
	t.Helper()
	b := updates.Batch{D: mixedBatch(fx.ref.G, fx.rng, nDel, nIns)}
	want := fx.ref.SQuery(b)
	got := fx.sess.SQuery(b)
	if !got.Equal(want) {
		t.Fatalf("%s: failover session diverges from Scratch (batch %v)", label, b.D)
	}
}

// TestFailoverKillDuringPhases is the tentpole pin: killing one of two
// workers during ApplyDataBatch phase 1 (pre-state affected balls),
// phase 2 (the op flush) and phase 4 (post-state affected balls) —
// separately, at serial and wide worker bounds — leaves the batch
// completed, the results equal to Scratch, the engine unpoisoned, and
// exactly one recovery recorded; subsequent batches run on the
// survivor alone and stay exact.
func TestFailoverKillDuringPhases(t *testing.T) {
	cases := []struct {
		name string
		path string
		skip int
	}{
		// A worker serves one /affected per ball phase: the first
		// matching request dies in phase 1, skipping it dies in phase 4.
		{"phase1-prestate-balls", "/affected", 0},
		{"phase2-op-flush", "/ops", 0},
		{"phase4-poststate-balls", "/affected", 1},
	}
	for _, workers := range []int{1, 4} {
		for ci, tc := range cases {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				fx := newFailoverFixture(t, int64(7100+ci), workers)
				fx.round(t, "healthy warm-up")

				fx.victim.arm(tc.path, tc.skip)
				fx.round(t, "kill mid-batch")
				if !fx.victim.dead.Load() {
					t.Fatal("trigger never fired: the batch did not exercise the armed phase")
				}
				if got := fx.eng.Recovered(); got != 1 {
					t.Fatalf("Recovered() = %d, want 1", got)
				}
				if fx.eng.Err() != nil {
					t.Fatalf("engine poisoned despite recovery: %v", fx.eng.Err())
				}
				if got := fx.eng.AliveShards(); got != 1 {
					t.Fatalf("AliveShards() = %d, want 1 (survivor only)", got)
				}

				// Life goes on: two more exact rounds on the survivor.
				fx.round(t, "post-recovery round 1")
				fx.round(t, "post-recovery round 2")
				if got := fx.eng.Recovered(); got != 1 {
					t.Fatalf("Recovered() after healthy rounds = %d, want still 1", got)
				}
			})
		}
	}
}

// TestFailoverKillMidOpStream arms the kill under a chunked op stream:
// with WithOpChunk(2) a ten-op batch seals five fenced chunks that
// flush in the background while staging continues, and the victim dies
// on its k+1-th /ops — the first chunk, a middle one, the last one.
// The streamer must record the fault off the flusher goroutine, stall
// the remaining chunks, repair at the phase join and re-flush — with
// the epoch fence keeping the survivor (which already applied some
// chunks) and the rebuilt assignment (whose snapshots contain them
// all) from double-applying. Results stay bit-for-bit Scratch-equal.
func TestFailoverKillMidOpStream(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for ci, chunkIdx := range []int{0, 2, 4} {
			chunkIdx := chunkIdx
			t.Run(fmt.Sprintf("workers%d-chunk%d", workers, chunkIdx), func(t *testing.T) {
				fx := newFailoverFixture(t, int64(7900+ci), workers, partition.WithOpChunk(2))
				fx.roundN(t, "healthy warm-up", 5, 5)

				// The victim serves one /ops per sealed chunk; skip
				// counts straight through them.
				fx.victim.arm("/ops", chunkIdx)
				fx.roundN(t, "kill mid-stream", 5, 5)
				if !fx.victim.dead.Load() {
					t.Fatal("trigger never fired: the stream sealed fewer chunks than expected")
				}
				if got := fx.eng.Recovered(); got != 1 {
					t.Fatalf("Recovered() = %d, want 1", got)
				}
				if fx.eng.Err() != nil {
					t.Fatalf("engine poisoned despite recovery: %v", fx.eng.Err())
				}
				fx.roundN(t, "post-recovery round", 5, 5)
			})
		}
	}
}

// TestFailoverPromotesSpare: with a standby worker configured, a loss
// promotes it into the dead slot (full build from the coordinator's
// mirrors) instead of packing partitions onto the survivor — the fleet
// stays at full width and results stay exact.
func TestFailoverPromotesSpare(t *testing.T) {
	spare := newKillableWorker(t)
	fx := newFailoverFixture(t, 7300, 2, partition.WithSpares(shard.Dial(spare.ts.URL)))
	fx.round(t, "healthy warm-up")

	fx.victim.arm("/ops", 0)
	fx.round(t, "kill mid-flush")
	if got := fx.eng.Recovered(); got != 1 {
		t.Fatalf("Recovered() = %d, want 1", got)
	}
	if got := fx.eng.AliveShards(); got != 2 {
		t.Fatalf("AliveShards() = %d, want 2 (spare promoted into the dead slot)", got)
	}
	fx.round(t, "post-promotion round")
}

// TestFailoverExhaustedPoisons: when every worker dies and no spare
// remains, the terminal poison path fires exactly as before the
// failover work — ApplyDataBatch returns ErrSubstrateLost with the
// transport error still extractable, and the engine stays poisoned.
func TestFailoverExhaustedPoisons(t *testing.T) {
	w1 := newKillableWorker(t)
	w2 := newKillableWorker(t)
	g, _ := failoverInstance(7500, 30, 80)
	eng := partition.NewEngine(g, 3, partition.WithWorkers(2),
		partition.WithShards(shard.Dial(w1.ts.URL), shard.Dial(w2.ts.URL)))
	eng.Build()
	t.Cleanup(func() { _ = eng.Close() })

	w1.arm("/ops", 0)
	w2.arm("/ops", 0)
	rng := rand.New(rand.NewSource(1))
	_, _, err := eng.ApplyDataBatch(mixedBatch(g, rng, 2, 2), g)
	if err == nil {
		t.Fatal("batch with every worker dead must error")
	}
	if !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("err = %v, want ErrSubstrateLost wrap", err)
	}
	var te *shard.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want wrapped *shard.TransportError", err)
	}
	if eng.Err() == nil {
		t.Fatal("engine must stay poisoned once recovery is exhausted")
	}
}

// TestFailoverDisabledPoisonsImmediately: WithFailoverRetries(-1) (and
// 0) restores the pre-failover contract — the first loss poisons even
// though a healthy survivor exists.
func TestFailoverDisabledPoisonsImmediately(t *testing.T) {
	fx := newFailoverFixture(t, 7700, 2, partition.WithFailoverRetries(-1))
	fx.round(t, "healthy warm-up")

	fx.victim.arm("/ops", 0)
	b := updates.Batch{D: mixedBatch(fx.ref.G, fx.rng, 2, 2)}
	_, _, err := fx.eng.ApplyDataBatch(b.D, fx.sess.G)
	if !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("err = %v, want ErrSubstrateLost with failover disabled", err)
	}
	if got := fx.eng.Recovered(); got != 0 {
		t.Fatalf("Recovered() = %d, want 0 with failover disabled", got)
	}
}
