// Package partition implements §V of the paper: the label-based graph
// partition and the partition-based shortest-path-length computation
// that UA-GPNM uses in place of a single global SLen matrix.
//
// Nodes sharing a (primary) label form one partition — the paper's
// observation, after Brandes et al., is that same-role nodes connect
// densely, so most edges are intra-partition. Each partition keeps its
// own induced subgraph with a private SLen engine (intra-partition
// distances), and the partitions are glued by a weighted overlay graph
// over the bridge nodes:
//
//   - inner bridge node of Pi (Def. 1): a node of Pi with an out-edge
//     leaving Pi ("exit");
//   - outer bridge node of Pi (Def. 2): a node outside Pi targeted by an
//     edge from Pi — equivalently, a node with an in-edge from another
//     partition ("entry" of its own partition).
//
// Cross-partition distances are answered by stitching: intra distance to
// an exit, overlay distance between bridge nodes, intra distance from an
// entry (see engine.go). Unlike the paper's literal Algorithms 4–5,
// which stitch a single bridge hop, the overlay formulation is exact —
// see DESIGN.md §4 for the substitution rationale.
package partition

import (
	"fmt"
	"sort"

	"uagpnm/internal/graph"
)

// none marks "no partition" for dead or unseen node ids.
const none = int32(-1)

// part is one label-based partition: the induced subgraph over its
// members (intra edges only). The subgraph is the coordinator's mirror
// of the partition state; the partition's private SLen engine lives
// behind the shard seam (internal/shard) and is reached through the
// Engine's shard table.
type part struct {
	label   graph.LabelID
	sub     *graph.Graph // local-id induced subgraph (coordinator mirror)
	globals []uint32     // local id → global id (tombstones preserved)

	// exits and entries hold the partition's bridge nodes by global id,
	// sorted (exits = inner bridge nodes, entries = targets of inbound
	// cross edges).
	exits   []uint32
	entries []uint32
}

// Partitioning maintains the label partition of a data graph, the
// per-partition subgraphs/engines, and the bridge-node bookkeeping.
type Partitioning struct {
	g       *graph.Graph
	horizon int

	partOf  []int32  // global id → part index (none when dead)
	localOf []uint32 // global id → local id within its part
	parts   []*part
	byLabel map[graph.LabelID]int32

	// crossOut/crossIn count cross-partition out-/in-edges per global id;
	// a node is an exit iff crossOut > 0 and an entry iff crossIn > 0.
	crossOut []int32
	crossIn  []int32
}

// newPartitioning builds the partition structure for g (the intra
// engines are the shards' to build; the Engine drives that).
func newPartitioning(g *graph.Graph, horizon int) *Partitioning {
	p := &Partitioning{
		g:       g,
		horizon: horizon,
		byLabel: make(map[graph.LabelID]int32),
	}
	n := g.NumIDs()
	p.partOf = make([]int32, n)
	p.localOf = make([]uint32, n)
	p.crossOut = make([]int32, n)
	p.crossIn = make([]int32, n)
	for i := range p.partOf {
		p.partOf[i] = none
	}
	g.Nodes(func(id uint32) { p.addToPart(id) })
	g.Edges(func(e graph.Edge) {
		if p.partOf[e.From] == p.partOf[e.To] {
			pt := p.parts[p.partOf[e.From]]
			pt.sub.AddEdge(p.localOf[e.From], p.localOf[e.To])
		} else {
			p.noteCross(e.From, e.To, +1)
		}
	})
	return p
}

// primaryLabel picks the partition label of a node: its smallest label id
// (data-graph nodes in the paper carry a single job-title label, so this
// is simply that label).
func (p *Partitioning) primaryLabel(id uint32) graph.LabelID {
	labs := p.g.NodeLabels(id)
	if len(labs) == 0 {
		return 0
	}
	return labs[0]
}

// addToPart registers global node id in its label's partition, creating
// the partition if needed, and returns the part index.
func (p *Partitioning) addToPart(id uint32) int32 {
	lab := p.primaryLabel(id)
	pi, ok := p.byLabel[lab]
	if !ok {
		pi = int32(len(p.parts))
		p.byLabel[lab] = pi
		p.parts = append(p.parts, &part{label: lab, sub: graph.New(p.g.Labels())})
	}
	pt := p.parts[pi]
	local := pt.sub.AddNodeLabelIDs(lab)
	pt.globals = append(pt.globals, id)
	p.growTo(int(id) + 1)
	p.partOf[id] = pi
	p.localOf[id] = local
	return pi
}

func (p *Partitioning) growTo(n int) {
	for len(p.partOf) < n {
		p.partOf = append(p.partOf, none)
		p.localOf = append(p.localOf, 0)
		p.crossOut = append(p.crossOut, 0)
		p.crossIn = append(p.crossIn, 0)
	}
}

// noteCross adjusts the cross-edge counters for edge (u,v) by delta
// (+1 insert, -1 delete) and keeps the exit/entry lists in sync.
func (p *Partitioning) noteCross(u, v uint32, delta int32) {
	wasExit, wasEntry := p.crossOut[u] > 0, p.crossIn[v] > 0
	p.crossOut[u] += delta
	p.crossIn[v] += delta
	if isExit := p.crossOut[u] > 0; isExit != wasExit {
		pt := p.parts[p.partOf[u]]
		if isExit {
			pt.exits = insertSortedU32(pt.exits, u)
		} else {
			pt.exits = removeSortedU32(pt.exits, u)
		}
	}
	if isEntry := p.crossIn[v] > 0; isEntry != wasEntry {
		pt := p.parts[p.partOf[v]]
		if isEntry {
			pt.entries = insertSortedU32(pt.entries, v)
		} else {
			pt.entries = removeSortedU32(pt.entries, v)
		}
	}
}

// isExit reports whether id is an inner bridge node of its partition.
func (p *Partitioning) isExit(id uint32) bool {
	return int(id) < len(p.crossOut) && p.crossOut[id] > 0
}

// isEntry reports whether id receives a cross-partition edge.
func (p *Partitioning) isEntry(id uint32) bool {
	return int(id) < len(p.crossIn) && p.crossIn[id] > 0
}

// isOverlay reports whether id participates in the overlay graph.
func (p *Partitioning) isOverlay(id uint32) bool {
	return p.isExit(id) || p.isEntry(id)
}

// partIndex returns the part index of a global id (none when dead).
func (p *Partitioning) partIndex(id uint32) int32 {
	if int(id) >= len(p.partOf) {
		return none
	}
	return p.partOf[id]
}

// InnerBridgeNodes returns IB(P) for the partition labelled lab, by
// global id (paper Def. 1). It returns nil for unknown labels.
func (p *Partitioning) InnerBridgeNodes(lab graph.LabelID) []uint32 {
	pi, ok := p.byLabel[lab]
	if !ok {
		return nil
	}
	return append([]uint32(nil), p.parts[pi].exits...)
}

// OuterBridgeNodes returns OB(P) for the partition labelled lab (paper
// Def. 2): the targets of cross edges leaving the partition, by global id.
func (p *Partitioning) OuterBridgeNodes(lab graph.LabelID) []uint32 {
	pi, ok := p.byLabel[lab]
	if !ok {
		return nil
	}
	var out []uint32
	seen := map[uint32]bool{}
	for _, local := range liveLocals(p.parts[pi]) {
		gid := p.parts[pi].globals[local]
		for _, v := range p.g.Out(gid) {
			if p.partOf[v] != pi && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func liveLocals(pt *part) []uint32 {
	var locals []uint32
	pt.sub.Nodes(func(l uint32) { locals = append(locals, l) })
	return locals
}

// Stats summarises the partitioning for reports.
type Stats struct {
	Parts        int
	CrossEdges   int
	IntraEdges   int
	ExitNodes    int
	EntryNodes   int
	LargestPart  int
	SmallestPart int
}

// ComputeStats walks the structure once.
func (p *Partitioning) ComputeStats() Stats {
	s := Stats{Parts: len(p.parts), SmallestPart: int(^uint(0) >> 1)}
	for _, pt := range p.parts {
		n := pt.sub.NumNodes()
		if n > s.LargestPart {
			s.LargestPart = n
		}
		if n < s.SmallestPart {
			s.SmallestPart = n
		}
		s.IntraEdges += pt.sub.NumEdges()
		s.ExitNodes += len(pt.exits)
		s.EntryNodes += len(pt.entries)
	}
	s.CrossEdges = p.g.NumEdges() - s.IntraEdges
	if s.Parts == 0 {
		s.SmallestPart = 0
	}
	return s
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("parts=%d intra=%d cross=%d exits=%d entries=%d largest=%d smallest=%d",
		s.Parts, s.IntraEdges, s.CrossEdges, s.ExitNodes, s.EntryNodes, s.LargestPart, s.SmallestPart)
}

func insertSortedU32(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSortedU32(s []uint32, v uint32) []uint32 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
