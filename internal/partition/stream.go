package partition

import (
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/shard"
)

// The op-log streamer: phase 2 of ApplyDataBatch used to buffer every
// staged op and flush the whole ordered list in one end-of-phase /ops
// RPC per shard, serialising coordinator staging and shard application.
// The streamer overlaps them: ops seal into fenced chunks as staging
// proceeds, a background flusher fans each chunk to the fleet while the
// coordinator stages the next one, and the phase joins at finish().
//
// The discipline that keeps this exactly as safe as the single flush:
//
//   - Epochs are allocated at seal time on the mutation goroutine
//     (nextOpEpoch is single-writer), strictly increasing per chunk, so
//     the per-worker fence reconciles retries chunk by chunk.
//   - The flusher only performs RPCs. It never reads the partition
//     structures the staging goroutine is mutating — affected sets are
//     carried back raw and settled at finish(), on the mutation
//     goroutine, against post-staging state (the same state the old
//     end-of-phase settle saw).
//   - A fault does not trigger recovery on the flusher (recovery reads
//     and edits coordinator state mid-mutation). The flusher stalls:
//     the faulted chunk and everything after it accumulate unapplied,
//     and finish() repairs the fleet once staging is complete — the
//     rebuild fence (Config.Epoch = the last sealed epoch) then marks
//     the mirrors as containing every chunk, and the stalled chunks
//     re-flush under the ordinary failover boundary. Survivors answer
//     below-fence epochs with recorded or empty sets (see
//     shard/server.go), so nothing double-applies.
//   - The warm-row piggyback rides only the final chunk, covering the
//     whole batch's demand: intermediate chunks would have their warm
//     rows invalidated again by the very next chunk.

// DefaultOpChunk is the op-stream chunk size when WithOpChunk is unset:
// small enough that a typical batch streams several chunks, large
// enough that the per-chunk RPC overhead stays amortised.
const DefaultOpChunk = 128

// opChunkBacklog bounds how far staging may run ahead of the flusher
// (in sealed chunks) before it blocks on the send.
const opChunkBacklog = 4

// opChunk is one sealed, epoch-fenced slice of the batch's op stream.
type opChunk struct {
	epoch uint64
	ops   []shard.Op
}

// appliedChunk is a flushed chunk with the raw per-shard affected sets,
// awaiting settlement at the phase join.
type appliedChunk struct {
	c    opChunk
	affs [][][]uint32 // by shard slot, then op index
}

// opStreamer owns phase 2's remote op flow for one batch.
type opStreamer struct {
	e     *Engine
	chunk int // seal threshold; ≤ 0 streams nothing (single final flush)
	all   []shard.Op
	pend  []shard.Op
	ch    chan opChunk
	join  chan struct{}

	// Flusher-owned until join (the channel close + join receive order
	// the accesses; no lock needed).
	done    []appliedChunk
	stalled []opChunk
	fault   *shardFault
}

// newOpStreamer starts the background flusher for one batch's phase 2.
// Remote fleets only.
func (e *Engine) newOpStreamer() *opStreamer {
	s := &opStreamer{
		e:     e,
		chunk: e.opChunk,
		ch:    make(chan opChunk, opChunkBacklog),
		join:  make(chan struct{}),
	}
	go s.flusher()
	return s
}

// stage appends one op to the stream, sealing a chunk when the
// threshold fills. Mutation goroutine only.
func (s *opStreamer) stage(op shard.Op) {
	s.all = append(s.all, op)
	s.pend = append(s.pend, op)
	if s.chunk > 0 && len(s.pend) >= s.chunk {
		s.ch <- opChunk{epoch: s.e.nextOpEpoch(), ops: s.pend}
		s.pend = nil
	}
}

// flusher drains sealed chunks, fanning each to every alive shard.
// After the first fault it stops issuing RPCs and accumulates the rest
// for the recovery at finish().
func (s *opStreamer) flusher() {
	defer close(s.join)
	for c := range s.ch {
		if s.fault != nil {
			s.stalled = append(s.stalled, c)
			continue
		}
		affs, f := s.flushChunk(c)
		if f != nil {
			s.fault = f
			s.stalled = append(s.stalled, c)
			continue
		}
		s.done = append(s.done, appliedChunk{c: c, affs: affs})
	}
}

// flushChunk fans one chunk to the alive fleet, returning the raw
// affected sets or the first fault. Errors are recorded, not raised:
// the failover controller must not run on this goroutine.
func (s *opStreamer) flushChunk(c opChunk) ([][][]uint32, *shardFault) {
	alive := s.e.aliveIndices()
	affs := make([][][]uint32, len(s.e.shards))
	faults := make([]*shardFault, len(alive))
	parallelFor(len(alive), len(alive), func(k int) {
		i := alive[k]
		//lint:allow faultseam streamer faults are recorded and repaired at the phase join, off the flusher goroutine
		aff, err := s.e.shards[i].ApplyOps(c.epoch, c.ops, nil)
		if err != nil {
			faults[k] = &shardFault{idx: i, err: err}
			return
		}
		affs[i] = aff
	})
	s.e.metrics.Counter("gpnm_oplog_chunks_total").Inc()
	for _, f := range faults {
		if f != nil {
			return nil, f
		}
	}
	return affs, nil
}

// settle folds one applied chunk's affected sets into dirty — the same
// translation flushOps performs inline, deferred here to the mutation
// goroutine so it reads settled post-staging partition state.
func (s *opStreamer) settle(a appliedChunk, dirty *nodeset.Builder) {
	for i, op := range a.c.ops {
		if op.Shard >= 0 && a.affs[op.Shard] != nil && a.affs[op.Shard][i] != nil {
			s.e.settleOp(op, a.affs[op.Shard][i], dirty)
		}
	}
}

// finish completes the stream: joins the flusher, settles every applied
// chunk, repairs and re-flushes after a mid-stream fault, and issues
// the final flush carrying the whole batch's warm-row demand. Mutation
// goroutine only; runs inside the batch's failover boundary.
func (s *opStreamer) finish(dirty *nodeset.Builder) {
	joinStart := time.Now()
	close(s.ch)
	<-s.join
	s.e.span("oplog_join", joinStart)

	for _, a := range s.done {
		s.settle(a, dirty)
	}
	// Seal the tail BEFORE any recovery: a rebuild fences its snapshots
	// at the highest allocated epoch, and the mirrors already contain
	// the tail's ops — the tail epoch must sit at or below that fence or
	// a rebuilt worker would re-apply ops its snapshots include.
	var final []shard.Op
	var finalEpoch uint64
	if len(s.pend) > 0 {
		final, s.pend = s.pend, nil
		finalEpoch = s.e.nextOpEpoch()
	}
	if s.fault != nil {
		// Repair with staging complete: the mirrors hold the full batch
		// and the rebuild fence covers every sealed epoch, so stalled
		// chunks re-flush idempotently against the repaired fleet —
		// rebuilt workers answer at-or-below-fence epochs with empty
		// sets, survivors reconcile through their own fences.
		s.e.recoverFault(s.fault, dirty)
		for _, c := range s.stalled {
			c := c
			s.e.withFailover(dirty, func() { s.e.flushOps(c.epoch, c.ops, nil, dirty) })
		}
	}
	// Final flush: the unsealed tail plus the batch-wide warm demand
	// (chunk flushes invalidated rows chunk by chunk; the amendment and
	// overlay phases after us read against the full batch). An empty
	// tail still refetches the demand through the bulk row plane.
	if final != nil {
		s.e.withFailover(dirty, func() { s.e.flushOps(finalEpoch, final, s.e.opsRowDemand(s.all), dirty) })
		s.e.metrics.Counter("gpnm_oplog_chunks_total").Inc()
	} else if len(s.all) > 0 {
		s.e.withFailover(nil, func() { s.e.prefetchPlannedRows(s.e.opsRowDemand(s.all)) })
	}
}
