package partition

import (
	"math/rand"
	"testing"

	"uagpnm/internal/shortest"
)

// TestStitchedRowsEqualBFSRows pins the equivalence the row cache relies
// on: a ball row assembled through the §V structures (intra + overlay)
// must match the row a bounded BFS reads off the graph, entry for entry.
func TestStitchedRowsEqualBFSRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 5; trial++ {
		g := homophilousGraph(rng, 35, 110, 4, 0.75)
		bfsEng := NewEngine(g, 3)
		bfsEng.Build()
		stitchEng := NewEngine(g, 3, WithStitchedQueries())
		stitchEng.Build()
		g.Nodes(func(x uint32) {
			for _, reverse := range []bool{false, true} {
				a := bfsEng.buildRow(x, reverse)
				b := stitchEng.buildRow(x, reverse)
				if len(a) != len(b) {
					t.Fatalf("trial %d node %d rev=%v: row lengths %d vs %d",
						trial, x, reverse, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("trial %d node %d rev=%v: entry %d: %v vs %v",
							trial, x, reverse, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// TestStitchedEngineEndToEnd runs the incremental differential test with
// stitched queries forced on, so the §V path is exercised under updates.
func TestStitchedEngineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := homophilousGraph(rng, 25, 70, 3, 0.85)
	pe := NewEngine(g, 3, WithStitchedQueries())
	pe.Build()
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })
	for step := 0; step < 30; step++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if g.AddEdge(u, v) {
			pe.InsertEdge(u, v)
		}
		if out := g.Out(u); len(out) > 0 && step%3 == 0 {
			w := out[rng.Intn(len(out))]
			g.RemoveEdge(u, w)
			pe.DeleteEdge(u, w)
		}
	}
	assertOracleAgrees(t, pe, g, 3, -5)
}

// TestRowCacheInvalidation ensures a stale cached row never survives a
// mutation.
func TestRowCacheInvalidation(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	// Warm the cache.
	seen := 0
	e.ForwardBall(ids["SE1"], 4, func(uint32, shortest.Dist) bool { seen++; return true })
	if seen == 0 {
		t.Fatal("warmup ball empty")
	}
	// Mutate: drop the shortcut through PM1.
	g.RemoveEdge(ids["PM1"], ids["SE4"])
	e.DeleteEdge(ids["PM1"], ids["SE4"])
	// d(SE1,SE4) must now be 3 both via Dist and via the (fresh) ball.
	if got := e.Dist(ids["SE1"], ids["SE4"]); got != 3 {
		t.Fatalf("Dist after delete = %v, want 3", got)
	}
	found := shortest.Inf
	e.ForwardBall(ids["SE1"], 4, func(v uint32, d shortest.Dist) bool {
		if v == ids["SE4"] {
			found = d
		}
		return true
	})
	if found != 3 {
		t.Fatalf("cached ball served stale distance %v, want 3", found)
	}
}

// TestBatchApplyMatchesSingleOps: ApplyDataBatch and the per-update API
// must leave identical oracle state.
func TestBatchApplyMatchesSingleOps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		g := homophilousGraph(rng, 30, 90, 3, 0.8)
		e := NewEngine(g, 3)
		e.Build()
		g2 := g.Clone()
		e2 := e.CloneFor(g2).(*Engine)

		// One batch: some inserts, some deletes, a node insert + delete.
		var live []uint32
		g.Nodes(func(id uint32) { live = append(live, id) })
		newID := uint32(g.NumIDs())
		victim := live[rng.Intn(len(live))]
		batch := makeBatch(rng, g, live, newID, victim)

		// Path A: fused batch API.
		_, _, _ = e.ApplyDataBatch(batch, g)
		// Path B: per-update API on the clone.
		applySingles(t, batch, g2, e2)

		n := g.NumIDs()
		for u := uint32(0); int(u) < n; u++ {
			for v := uint32(0); int(v) < n; v++ {
				if a, b := e.Dist(u, v), e2.Dist(u, v); a != b {
					t.Fatalf("trial %d: batch vs singles d(%d,%d): %v vs %v", trial, u, v, a, b)
				}
			}
		}
	}
}
