package partition

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
)

// fig4Graph reconstructs the paper's Fig. 4 example: three label
// partitions PTE = {TE1,TE2,TE3}, PSE = {SE1..SE4}, PPM = {PM1}, with
// chains inside the partitions and cross edges SE2→TE1, SE1→PM1, PM1→SE4
// (the edge set implied by Examples 12–15 and Tables VIII–IX).
func fig4Graph() (*graph.Graph, map[string]uint32) {
	g := graph.New(nil)
	ids := map[string]uint32{}
	add := func(name, label string) {
		ids[name] = g.AddNode(label)
	}
	add("TE1", "TE")
	add("TE2", "TE")
	add("TE3", "TE")
	add("SE1", "SE")
	add("SE2", "SE")
	add("SE3", "SE")
	add("SE4", "SE")
	add("PM1", "PM")
	for _, e := range [][2]string{
		{"TE1", "TE2"}, {"TE2", "TE3"},
		{"SE1", "SE2"}, {"SE2", "SE3"}, {"SE3", "SE4"},
		{"SE2", "TE1"}, {"SE1", "PM1"}, {"PM1", "SE4"},
	} {
		if !g.AddEdge(ids[e[0]], ids[e[1]]) {
			panic("fig4: bad edge")
		}
	}
	return g, ids
}

func TestPaperExample12And13BridgeNodes(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	se, _ := g.Labels().Lookup("SE")
	ib := e.Partitioning().InnerBridgeNodes(se)
	wantIB := nodeset.New(ids["SE1"], ids["SE2"])
	if !nodeset.New(ib...).Equal(wantIB) {
		t.Errorf("IB(PSE) = %v, want %v", ib, wantIB)
	}
	ob := e.Partitioning().OuterBridgeNodes(se)
	wantOB := nodeset.New(ids["PM1"], ids["TE1"])
	if !nodeset.New(ob...).Equal(wantOB) {
		t.Errorf("OB(PSE) = %v, want %v", ob, wantOB)
	}
	te, _ := g.Labels().Lookup("TE")
	if got := e.Partitioning().OuterBridgeNodes(te); len(got) != 0 {
		t.Errorf("OB(PTE) = %v, want empty", got)
	}
}

// TestPaperTableVIII checks the shortest path matrix among the SE nodes
// (paper Table VIII). d(SE1,SE4) = 2 is the interesting entry: the path
// leaves PSE through PM1 and returns — the case the bridge overlay must
// stitch.
func TestPaperTableVIII(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	want := map[[2]string]int{
		{"SE1", "SE2"}: 1, {"SE1", "SE3"}: 2, {"SE1", "SE4"}: 2,
		{"SE2", "SE3"}: 1, {"SE2", "SE4"}: 2,
		{"SE3", "SE4"}: 1,
	}
	names := []string{"SE1", "SE2", "SE3", "SE4"}
	for _, a := range names {
		for _, b := range names {
			wantD := shortest.Inf
			if a == b {
				wantD = 0
			} else if d, ok := want[[2]string{a, b}]; ok {
				wantD = shortest.Dist(d)
			}
			if got := e.Dist(ids[a], ids[b]); got != wantD {
				t.Errorf("Table VIII d(%s,%s) = %v, want %v", a, b, got, wantD)
			}
		}
	}
}

// TestPaperTableIX checks the cross-partition matrix PSE → PTE
// (paper Table IX, Example 15).
func TestPaperTableIX(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	want := map[[2]string]int{
		{"SE1", "TE1"}: 2, {"SE1", "TE2"}: 3, {"SE1", "TE3"}: 4,
		{"SE2", "TE1"}: 1, {"SE2", "TE2"}: 2, {"SE2", "TE3"}: 3,
	}
	for _, a := range []string{"SE1", "SE2", "SE3", "SE4"} {
		for _, b := range []string{"TE1", "TE2", "TE3"} {
			wantD := shortest.Inf
			if d, ok := want[[2]string{a, b}]; ok {
				wantD = shortest.Dist(d)
			}
			if got := e.Dist(ids[a], ids[b]); got != wantD {
				t.Errorf("Table IX d(%s,%s) = %v, want %v", a, b, got, wantD)
			}
		}
	}
}

func TestStats(t *testing.T) {
	g, _ := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	s := e.Partitioning().ComputeStats()
	if s.Parts != 3 || s.CrossEdges != 3 || s.IntraEdges != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LargestPart != 4 || s.SmallestPart != 1 {
		t.Fatalf("part sizes = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

// homophilousGraph builds a random labelled graph where a fraction h of
// edges stay inside a label class — the regime the partition method
// targets.
func homophilousGraph(rng *rand.Rand, n, m, labels int, h float64) *graph.Graph {
	g := graph.New(nil)
	labelNames := make([]string, labels)
	for i := range labelNames {
		labelNames[i] = string(rune('A' + i))
	}
	byLabel := make([][]uint32, labels)
	for i := 0; i < n; i++ {
		l := rng.Intn(labels)
		id := g.AddNode(labelNames[l])
		byLabel[l] = append(byLabel[l], id)
	}
	for i := 0; i < m; i++ {
		l := rng.Intn(labels)
		if len(byLabel[l]) < 2 {
			continue
		}
		u := byLabel[l][rng.Intn(len(byLabel[l]))]
		var v uint32
		if rng.Float64() < h {
			v = byLabel[l][rng.Intn(len(byLabel[l]))]
		} else {
			v = uint32(rng.Intn(n))
		}
		g.AddEdge(u, v)
	}
	return g
}

// assertOracleAgrees compares the partition engine against the global
// engine on every pair and on ball queries.
func assertOracleAgrees(t *testing.T, pe *Engine, g *graph.Graph, horizon int, step int) {
	t.Helper()
	ge := shortest.NewEngine(g, horizon)
	ge.Build()
	n := g.NumIDs()
	for u := uint32(0); int(u) < n; u++ {
		for v := uint32(0); int(v) < n; v++ {
			if got, want := pe.Dist(u, v), ge.Dist(u, v); got != want {
				t.Fatalf("step %d: d(%d,%d) = %v, want %v", step, u, v, got, want)
			}
		}
	}
	k := horizon
	if k == 0 {
		k = 4
	}
	for u := uint32(0); int(u) < n; u++ {
		var pb, gb []uint32
		pe.ForwardBall(u, k, func(v uint32, d shortest.Dist) bool {
			pb = append(pb, v)
			if want := ge.Dist(u, v); want != d {
				t.Fatalf("step %d: fwd ball d(%d,%d) = %v, want %v", step, u, v, d, want)
			}
			return true
		})
		ge.ForwardBall(u, k, func(v uint32, d shortest.Dist) bool { gb = append(gb, v); return true })
		if !nodeset.New(pb...).Equal(nodeset.New(gb...)) {
			t.Fatalf("step %d: fwd ball(%d) %v != %v", step, u, pb, gb)
		}
		pb, gb = nil, nil
		pe.ReverseBall(u, k, func(v uint32, d shortest.Dist) bool { pb = append(pb, v); return true })
		ge.ReverseBall(u, k, func(v uint32, d shortest.Dist) bool { gb = append(gb, v); return true })
		if !nodeset.New(pb...).Equal(nodeset.New(gb...)) {
			t.Fatalf("step %d: rev ball(%d) %v != %v", step, u, pb, gb)
		}
	}
}

func TestStitchedDistanceMatchesGlobal(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		horizon int
		h       float64
	}{
		{"exact-homophilous", 0, 0.9},
		{"capped3-homophilous", 3, 0.9},
		{"capped3-mixed", 3, 0.5},
		{"capped2-hostile", 2, 0.1},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 3; trial++ {
				g := homophilousGraph(rng, 40, 120, 4, cfg.h)
				pe := NewEngine(g, cfg.horizon)
				pe.Build()
				assertOracleAgrees(t, pe, g, cfg.horizon, -trial)
			}
		})
	}
}

// TestIncrementalMatchesGlobal drives a random update stream through the
// partition engine and checks it against a freshly built global engine at
// every checkpoint — the package's central differential test.
func TestIncrementalMatchesGlobal(t *testing.T) {
	for _, cfg := range []struct {
		name    string
		horizon int
	}{
		{"exact", 0},
		{"capped3", 3},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			g := homophilousGraph(rng, 30, 80, 3, 0.8)
			pe := NewEngine(g, cfg.horizon)
			pe.Build()
			var live []uint32
			reap := func() {
				live = live[:0]
				g.Nodes(func(id uint32) { live = append(live, id) })
			}
			reap()
			labels := []string{"A", "B", "C", "Z"} // Z exercises new-partition creation
			for step := 0; step < 80; step++ {
				switch op := rng.Intn(10); {
				case op < 4:
					u := live[rng.Intn(len(live))]
					v := live[rng.Intn(len(live))]
					if g.AddEdge(u, v) {
						pe.InsertEdge(u, v)
					}
				case op < 7:
					u := live[rng.Intn(len(live))]
					out := g.Out(u)
					if len(out) > 0 {
						v := out[rng.Intn(len(out))]
						g.RemoveEdge(u, v)
						pe.DeleteEdge(u, v)
					}
				case op < 8:
					id := g.AddNode(labels[rng.Intn(len(labels))])
					pe.InsertNode(id)
					reap()
					for k := 0; k < 2; k++ {
						v := live[rng.Intn(len(live))]
						if g.AddEdge(id, v) {
							pe.InsertEdge(id, v)
						}
						w := live[rng.Intn(len(live))]
						if g.AddEdge(w, id) {
							pe.InsertEdge(w, id)
						}
					}
				case op < 9 && len(live) > 5:
					id := live[rng.Intn(len(live))]
					removed, _ := g.RemoveNode(id)
					pe.DeleteNode(id, removed)
					reap()
				}
				if step%10 == 9 {
					assertOracleAgrees(t, pe, g, cfg.horizon, step)
				}
			}
			assertOracleAgrees(t, pe, g, cfg.horizon, -1)
		})
	}
}

// TestAffectedSupersets checks that the partition engine's conservative
// affected sets cover the global engine's exact ones — the property the
// amendment seeding relies on.
func TestAffectedSupersets(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		g := homophilousGraph(rng, 25, 60, 3, 0.7)
		pe := NewEngine(g, 3)
		pe.Build()
		ge := shortest.NewEngine(g, 3)
		ge.Build()
		var live []uint32
		g.Nodes(func(id uint32) { live = append(live, id) })
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if u != v && !g.HasEdge(u, v) {
			exact := ge.PreviewInsertEdge(u, v)
			super := pe.PreviewInsertEdge(u, v)
			if !super.Covers(exact) {
				t.Fatalf("insert (%d,%d): %v does not cover %v", u, v, super, exact)
			}
		}
		if out := g.Out(u); len(out) > 0 {
			w := out[rng.Intn(len(out))]
			exact := ge.PreviewDeleteEdge(u, w)
			super := pe.PreviewDeleteEdge(u, w)
			if !super.Covers(exact) {
				t.Fatalf("delete (%d,%d): %v does not cover %v", u, w, super, exact)
			}
		}
		exact := ge.PreviewDeleteNode(u)
		super := pe.PreviewDeleteNode(u)
		if !super.Covers(exact) {
			t.Fatalf("delete node %d: %v does not cover %v", u, super, exact)
		}
	}
}

func TestPreviewsDoNotMutate(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	before := e.Dist(ids["SE1"], ids["SE4"])
	e.PreviewInsertEdge(ids["SE4"], ids["SE1"])
	e.PreviewDeleteEdge(ids["SE1"], ids["SE2"])
	e.PreviewDeleteNode(ids["PM1"])
	if e.Dist(ids["SE1"], ids["SE4"]) != before {
		t.Fatal("previews mutated distances")
	}
}

func TestDeleteBridgeNode(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	// Deleting PM1 removes the leave-and-return shortcut: d(SE1,SE4)
	// falls back to the intra chain of length 3.
	removed, _ := g.RemoveNode(ids["PM1"])
	e.DeleteNode(ids["PM1"], removed)
	if got := e.Dist(ids["SE1"], ids["SE4"]); got != 3 {
		t.Fatalf("d(SE1,SE4) after deleting PM1 = %v, want 3", got)
	}
	if e.Dist(ids["SE1"], ids["PM1"]) != shortest.Inf {
		t.Fatal("distances to the deleted node must be Inf")
	}
	assertOracleAgrees(t, e, g, 0, -9)
}

func TestCloneForIndependence(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 0)
	e.Build()
	g2 := g.Clone()
	e2 := e.CloneFor(g2)
	g2.RemoveEdge(ids["PM1"], ids["SE4"])
	e2.DeleteEdge(ids["PM1"], ids["SE4"])
	if got := e2.Dist(ids["SE1"], ids["SE4"]); got != 3 {
		t.Fatalf("clone d(SE1,SE4) = %v, want 3", got)
	}
	if got := e.Dist(ids["SE1"], ids["SE4"]); got != 2 {
		t.Fatalf("original d(SE1,SE4) = %v, want 2 (clone mutation leaked)", got)
	}
}

func TestEnsureHorizonPartition(t *testing.T) {
	g, ids := fig4Graph()
	e := NewEngine(g, 2)
	e.Build()
	if e.Dist(ids["SE1"], ids["TE3"]) != shortest.Inf {
		t.Fatal("d(SE1,TE3)=4 must be beyond horizon 2")
	}
	e.EnsureHorizon(4)
	if got := e.Dist(ids["SE1"], ids["TE3"]); got != 4 {
		t.Fatalf("after widen, d(SE1,TE3) = %v, want 4", got)
	}
}

func BenchmarkStitchedDist(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := homophilousGraph(rng, 1000, 5000, 10, 0.9)
	e := NewEngine(g, 3)
	e.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Dist(uint32(i%1000), uint32((i*7)%1000))
	}
}

func BenchmarkPartitionInsertDelete(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := homophilousGraph(rng, 1000, 5000, 10, 0.9)
	e := NewEngine(g, 3)
	e.Build()
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if g.AddEdge(u, v) {
			e.InsertEdge(u, v)
			g.RemoveEdge(u, v)
			e.DeleteEdge(u, v)
		}
	}
}
