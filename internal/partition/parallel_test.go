package partition

import (
	"math/rand"
	"runtime"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// engineConfig names one engine construction under test.
type engineConfig struct {
	name string
	opts []Option
}

func parallelConfigs() []engineConfig {
	return []engineConfig{
		{"serial", []Option{WithWorkers(1)}},
		{"workers4", []Option{WithWorkers(4)}},
		{"workers8-stitched", []Option{WithWorkers(8), WithStitchedQueries()}},
	}
}

// drive applies nBatches random data batches through ApplyDataBatch and
// returns the per-batch change logs; the engine's graph evolves in place.
func drive(t *testing.T, e *Engine, g *graph.Graph, seed int64, nBatches, perBatch int) []string {
	t.Helper()
	p := pattern.New(g.Labels())
	logs := make([]string, 0, nBatches)
	for i := 0; i < nBatches; i++ {
		b := updates.Generate(updates.Balanced(seed+int64(i), 0, perBatch), g, p)
		_, changeLog, _ := e.ApplyDataBatch(b.D, g)
		logs = append(logs, changeLog.String())
	}
	return logs
}

// TestParallelEngineMatchesSerial drives identical random batch streams
// through a serial engine and parallel engines (BFS-cached and stitched)
// and requires identical distances, ball rows and change logs after
// every batch — the differential guard for the worker pool.
func TestParallelEngineMatchesSerial(t *testing.T) {
	horizons := []int{0, 3}
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for _, horizon := range horizons {
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(int64(9000 + trial)))
			base := homophilousGraph(rng, 60, 160, 5, 0.8)

			type run struct {
				cfg engineConfig
				g   *graph.Graph
				e   *Engine
				log []string
			}
			var runs []run
			for _, cfg := range parallelConfigs() {
				g := base.Clone()
				e := NewEngine(g, horizon, cfg.opts...)
				e.Build()
				runs = append(runs, run{cfg: cfg, g: g, e: e})
			}
			for i := range runs {
				runs[i].log = drive(t, runs[i].e, runs[i].g, int64(trial*31), 3, 12)
			}

			ref := runs[0]
			for _, r := range runs[1:] {
				for bi := range ref.log {
					if r.log[bi] != ref.log[bi] {
						t.Fatalf("h=%d trial %d %s: batch %d change log %s, serial %s",
							horizon, trial, r.cfg.name, bi, r.log[bi], ref.log[bi])
					}
				}
				assertEnginesAgree(t, ref.e, r.e, r.g, r.cfg.name)
			}
		}
	}
}

// assertEnginesAgree compares two engines entry for entry: all-pairs
// Dist plus full forward/reverse rows for every node.
func assertEnginesAgree(t *testing.T, want, got *Engine, g *graph.Graph, name string) {
	t.Helper()
	n := g.NumIDs()
	k := want.capHops()
	for x := uint32(0); int(x) < n; x++ {
		for y := uint32(0); int(y) < n; y++ {
			if dw, dg := want.Dist(x, y), got.Dist(x, y); dw != dg {
				t.Fatalf("%s: Dist(%d,%d) = %d, serial %d", name, x, y, dg, dw)
			}
		}
		for _, reverse := range []bool{false, true} {
			type entry struct {
				id uint32
				d  shortest.Dist
			}
			collect := func(e *Engine) []entry {
				var out []entry
				ball := e.ForwardBall
				if reverse {
					ball = e.ReverseBall
				}
				ball(x, k, func(v uint32, d shortest.Dist) bool {
					out = append(out, entry{v, d})
					return true
				})
				return out
			}
			w, gt := collect(want), collect(got)
			if len(w) != len(gt) {
				t.Fatalf("%s: ball(%d, rev=%v) size %d, serial %d", name, x, reverse, len(gt), len(w))
			}
			for i := range w {
				if w[i] != gt[i] {
					t.Fatalf("%s: ball(%d, rev=%v)[%d] = %v, serial %v", name, x, reverse, i, gt[i], w[i])
				}
			}
		}
	}
}

// TestParallelEngineStress is the race-hunting variant: a larger
// workload, forced GOMAXPROCS > 1 so the pool truly interleaves, and a
// wide pool. Skipped with -short; run it under -race.
func TestParallelEngineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress variant skipped in -short mode")
	}
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	rng := rand.New(rand.NewSource(4242))
	base := homophilousGraph(rng, 150, 500, 7, 0.85)
	horizon := 3

	gs := base.Clone()
	serial := NewEngine(gs, horizon, WithWorkers(1))
	serial.Build()
	gp := base.Clone()
	par := NewEngine(gp, horizon, WithWorkers(8))
	par.Build()

	p := pattern.New(base.Labels())
	for i := 0; i < 5; i++ {
		b := updates.Generate(updates.Balanced(int64(7000+i), 0, 40), gs, p)
		_, logS, _ := serial.ApplyDataBatch(b.D, gs)
		_, logP, _ := par.ApplyDataBatch(b.D, gp)
		if !logS.Equal(logP) {
			t.Fatalf("batch %d: change log diverged: parallel %v, serial %v", i, logP, logS)
		}
	}
	assertEnginesAgree(t, serial, par, gp, "workers8-stress")
}
