package partition

import (
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/shard"
)

// Row-demand planning for remote shards.
//
// Every stitched read the engine performs — overlay Dijkstras, point
// distances, stitched ball rows — decomposes into full-horizon intra
// rows of a closed class: the forward rows of each partition's entry
// bridges, the reverse rows of its exit bridges, and the two rows of
// whatever source the query starts from. The planner derives that
// demand ahead of each read phase and fetches it in ONE bulk /rows RPC
// per shard (all shards in parallel), so the phase itself runs against
// a warm client cache instead of paying one HTTP round trip per row.
// Rows the plan misses still resolve through the singleton /row path
// and show up as gpnm_rpc_rows_missed_total — the planner's scorecard.

// bridgeRowReqs returns, grouped by owning shard slot, the bridge-row
// demand of the given partitions: entries forward, exits reverse.
// These are exactly the rows the overlay's neighbor scans and the far
// ends of stitched ball queries read; partition-scoped cache
// invalidation keeps them warm across batches, so only partitions whose
// subgraphs changed (or that the caller is building fresh) need
// planning.
func (e *Engine) bridgeRowReqs(parts []int) [][]shard.RowReq {
	reqs := make([][]shard.RowReq, len(e.shards))
	planned := 0
	for _, pi := range parts {
		pt := e.part.parts[pi]
		s := e.shardOf[pi]
		for _, gid := range pt.entries {
			reqs[s] = append(reqs[s], shard.RowReq{Part: pi, Src: e.part.localOf[gid]})
		}
		for _, gid := range pt.exits {
			reqs[s] = append(reqs[s], shard.RowReq{Part: pi, Src: e.part.localOf[gid], Reverse: true})
		}
		planned += len(pt.entries) + len(pt.exits)
	}
	if planned > 0 {
		e.metrics.Counter("gpnm_rows_planned_total").Add(uint64(planned))
	}
	return reqs
}

// sourceRowReqs returns, grouped by owning shard slot, the source-row
// demand of the given change log: both directions of every live
// member's own intra row. The amendment cascade that follows a batch
// asks ReverseBall for every member and ForwardBall for the label
// candidates among them; wave 1 of each stitched row is the source's
// own intra row, and wave 2 reads only bridge rows (already planned).
func (e *Engine) sourceRowReqs(ids nodeset.Set) [][]shard.RowReq {
	reqs := make([][]shard.RowReq, len(e.shards))
	planned := 0
	for _, x := range ids {
		pi := e.part.partIndex(x)
		if pi == none {
			continue
		}
		s := e.shardOf[pi]
		local := e.part.localOf[x]
		reqs[s] = append(reqs[s],
			shard.RowReq{Part: int(pi), Src: local},
			shard.RowReq{Part: int(pi), Src: local, Reverse: true})
		planned += 2
	}
	if planned > 0 {
		e.metrics.Counter("gpnm_rows_planned_total").Add(uint64(planned))
	}
	return reqs
}

// PrefetchBallRows bulk-fetches, one /rows RPC per alive shard, the
// shard rows a read fan over the given nodes' balls will touch: both
// directions of every live member's own intra row (wave 1 of each
// stitched ball; wave 2 reads bridge rows, which the build-time plan
// and the op-flush warm piggyback keep cached). Callers front-load
// this before fanning ball reads — the hub runs it on a pattern's
// label candidates before the initial simulation and on the union of a
// batch's affected sets before the amendment pass — so the fan
// resolves from the warm client cache instead of paying one /row round
// trip per cache miss. Rows the cascade reaches beyond this first wave
// still fall back to singleton /row fetches and are counted by
// gpnm_rpc_rows_missed_total. No-op on in-process substrates. Timed as
// the row_plan phase.
func (e *Engine) PrefetchBallRows(ids nodeset.Set) {
	if !e.remote || len(ids) == 0 {
		return
	}
	e.ensureUsable()
	start := time.Now()
	e.withFailover(nil, func() {
		e.prefetchPlannedRows(e.sourceRowReqs(ids))
	})
	e.span("row_plan", start)
}

// allPartIndices returns every current partition index.
func (e *Engine) allPartIndices() []int {
	parts := make([]int, len(e.part.parts))
	for i := range parts {
		parts[i] = i
	}
	return parts
}

// opsRowDemand returns the warm demand an op flush should piggyback:
// the bridge rows of every partition the ops touch — their subgraphs
// changed, so their cached rows are about to drop — plus the partitions
// of cross-edge endpoints, whose subgraphs are untouched but whose
// bridge sets may have gained members with no cached row yet, plus the
// source rows (both directions) of every live op endpoint — the
// post-flush affected-ball phase starts its reads exactly there. The
// demand is evaluated against post-staging coordinator state (the
// entries/exits lists already reflect the batch), which is what the
// overlay reconciliation and ball reads that follow the flush will see.
func (e *Engine) opsRowDemand(ops []shard.Op) [][]shard.RowReq {
	need := make(map[int]bool)
	var ends nodeset.Builder
	for _, op := range ops {
		switch op.Kind {
		case shard.OpEdgeInsert, shard.OpEdgeDelete:
			ends.Add(op.From)
			ends.Add(op.To)
		case shard.OpNodeInsert, shard.OpNodeDelete:
			ends.Add(op.Node) // delete: partIndex is gone, sourceRowReqs skips it
		}
		if op.Part >= 0 {
			need[op.Part] = true
			continue
		}
		if op.Kind != shard.OpEdgeInsert && op.Kind != shard.OpEdgeDelete {
			continue
		}
		for _, end := range [2]uint32{op.From, op.To} {
			if pi := e.part.partIndex(end); pi != none {
				need[int(pi)] = true
			}
		}
	}
	parts := make([]int, 0, len(need))
	for pi := range need {
		if pi < len(e.part.parts) {
			parts = append(parts, pi)
		}
	}
	reqs := e.bridgeRowReqs(parts)
	for s, rs := range e.sourceRowReqs(ends.Set()) {
		reqs[s] = append(reqs[s], rs...)
	}
	return e.dedupeRowReqs(reqs)
}

// dedupeRowReqs drops repeated row requests from a merged plan, in
// place. The bridge and source planners overlap exactly when an op
// endpoint IS a bridge node of a planned partition — its forward (or
// reverse) row is then demanded twice, and before this pass each copy
// was serialised, shipped and answered in the bulk RPC. Dropped copies
// are counted by gpnm_rpc_rows_deduped_total (they remain in
// gpnm_rows_planned_total: the planners did plan them).
func (e *Engine) dedupeRowReqs(reqs [][]shard.RowReq) [][]shard.RowReq {
	duplicates := 0
	seen := make(map[shard.RowReq]bool)
	for s, rs := range reqs {
		if len(rs) < 2 {
			continue
		}
		clear(seen)
		kept := rs[:0]
		for _, r := range rs {
			if seen[r] {
				duplicates++
				continue
			}
			seen[r] = true
			kept = append(kept, r)
		}
		reqs[s] = kept
	}
	if duplicates > 0 {
		e.metrics.Counter("gpnm_rpc_rows_deduped_total").Add(uint64(duplicates))
	}
	return reqs
}

// prefetchPlannedRows issues one bulk Rows call per shard slot with
// demand, all alive slots in parallel. A slot that fails unwinds as a
// repairable *shardFault like any other remote read — callers run it
// inside withFailover and re-plan on retry (recovery reassigns
// partitions, so the old grouping is stale). No-op for in-process
// shards: the coordinator reads those engines directly.
func (e *Engine) prefetchPlannedRows(reqs [][]shard.RowReq) {
	if !e.remote {
		return
	}
	alive := e.aliveIndices()
	parallelFor(len(alive), len(alive), func(k int) {
		i := alive[k]
		if i >= len(reqs) || len(reqs[i]) == 0 {
			return
		}
		if _, err := e.shards[i].Rows(reqs[i]); err != nil {
			e.shardFail(i, err)
		}
	})
}
