package partition

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0,n) across at most workers
// goroutines, returning when all calls have finished. workers ≤ 1 (or
// n ≤ 1) degenerates to a plain serial loop with no goroutine or channel
// overhead, so serial mode stays bit-for-bit the single-threaded engine.
//
// Work is handed out through an atomic counter rather than pre-sliced
// ranges: per-item cost varies wildly here (partition sizes are
// heavy-tailed, Dijkstra frontiers differ per source), and dynamic
// claiming keeps the stragglers from serialising the tail.
func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
