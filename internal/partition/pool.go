package partition

import "uagpnm/internal/workpool"

// ForEach is the exported face of the worker pool: it runs fn(i) for
// every i in [0,n) across at most workers goroutines (workers ≤ 1 =
// serial). Higher layers — the standing-query hub's per-pattern fan-out
// in particular — reuse it so the whole system runs on one pool
// discipline: dynamic claiming over an atomic counter, no goroutines
// when serial (see internal/workpool). fn must be safe to call
// concurrently for distinct i.
func ForEach(workers, n int, fn func(i int)) { workpool.ForEach(workers, n, fn) }

func parallelFor(workers, n int, fn func(i int)) { workpool.ForEach(workers, n, fn) }
