package partition

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0,n) across at most workers
// goroutines, returning when all calls have finished. workers ≤ 1 (or
// n ≤ 1) degenerates to a plain serial loop with no goroutine or channel
// overhead, so serial mode stays bit-for-bit the single-threaded engine.
//
// Work is handed out through an atomic counter rather than pre-sliced
// ranges: per-item cost varies wildly here (partition sizes are
// heavy-tailed, Dijkstra frontiers differ per source), and dynamic
// claiming keeps the stragglers from serialising the tail.
// ForEach is the exported face of the worker pool: it runs fn(i) for
// every i in [0,n) across at most workers goroutines (workers ≤ 1 =
// serial). Higher layers — the standing-query hub's per-pattern fan-out
// in particular — reuse it so the whole system runs on one pool
// discipline: dynamic claiming over an atomic counter, no goroutines
// when serial. fn must be safe to call concurrently for distinct i.
func ForEach(workers, n int, fn func(i int)) { parallelFor(workers, n, fn) }

func parallelFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
