package partition

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// Engine is the partition-based SLen substrate (§V): per-partition intra
// distances plus the bridge overlay, answering global distance queries by
// stitching
//
//	d(x,y) = min( d_intra(x,y) [same partition],
//	              min_{u ∈ exits(x), b ∈ entries(y)}
//	                  d_intra(x,u) + d_overlay(u,b) + d_intra(b,y) ),
//
// which is exact (DESIGN.md §4): any path decomposes into intra segments
// joined by cross edges, and the overlay's Dijkstra minimises over all
// such compositions. Updates stay local: an intra-partition change
// touches one partition engine (and the overlay only when bridge-node
// distances move); a cross edge touches only the overlay.
//
// Layering: the engine is the *coordinator* of the substrate. It owns
// the data graph, the partition bookkeeping (membership, bridge-node
// counters, subgraph mirrors), the bridge overlay and the stitched-row
// caches; the per-partition SLen engines — the superlinear part of the
// state — live behind the shard.Shard seam. The default configuration
// wraps everything in one in-process shard (shard.Local), which is the
// monolithic engine re-expressed; WithShards substitutes remote shard
// workers (cmd/gpnm-shard over HTTP/JSON), fanning intra builds, row
// queries and batch affected-ball phases across processes while the
// coordinator keeps the phase discipline unchanged.
//
// Concurrency contract: mutations are single-goroutine like every other
// DistanceEngine — callers never invoke two mutating methods (Build,
// Insert*/Delete*, ApplyDataBatch, EnsureHorizon) concurrently, nor a
// mutation concurrently with anything else. The engine itself fans
// embarrassingly parallel phases (per-partition intra builds, per-source
// overlay Dijkstras, per-update affected balls, stitched-row prefetch)
// across a bounded worker pool sized by WithWorkers (and across shard
// processes when remote); every parallel phase only reads shared
// structures and keeps its mutable state in pooled per-worker scratch,
// with results installed from a single goroutine.
//
// Read epochs: between mutations the query side (Dist, WithinHops,
// Reachable, Forward/ReverseBall, Preview*) is safe for any number of
// concurrent goroutines — queries read structures that are immutable
// until the next mutation, per-query scratch is pooled, and the lazy
// row-cache fill is serialised internally (cacheMu). The standing-query
// hub (internal/hub) leans on exactly this: one writer advances the
// engine per batch, then many per-pattern readers amend against the
// frozen post-batch state. Shard implementations honour the same
// contract (concurrent reads between mutations).
//
// Engine implements shortest.DistanceEngine; affected sets are the
// conservative ball supersets documented on each method.
type Engine struct {
	part    *Partitioning
	ov      *overlay
	horizon int

	denseThreshold int
	ellWidth       int
	stitched       bool // assemble cached rows via §V stitching
	workers        int  // worker pool bound (1 = serial)
	nLocal         int  // WithLocalShards count (0 = one)
	opChunk        int  // ops per streamed /ops chunk (≤ 0 = single end-of-phase flush)

	// shards host the per-partition intra engines; shardOf maps a
	// partition index to its owning shard (round-robin over the alive
	// slots for partitions created after construction). remote is set
	// when the shards are out-of-process (every op is then also
	// streamed to non-owning shards for data-graph replica maintenance,
	// and conservative affected balls are computed shard-side).
	//
	// shardAlive quarantines lost slots: a dead slot's partitions are
	// reassigned by the failover controller (recovery.go) and the slot
	// either receives a promoted spare (same index, so in-flight ops'
	// Op.Shard routing stays meaningful) or stays dead. spares are the
	// standby workers -spare-shards configured, promoted in order.
	shards     []shard.Shard
	shardOf    []int32
	shardAlive []bool
	spares     []shard.Shard
	remote     bool

	// Failover state. failoverRetries is the per-mutation recovery
	// budget (how many distinct losses one batch may absorb before the
	// terminal poison); recoveryBudget is what remains of it inside the
	// current mutation boundary. opEpoch fences the op stream: every
	// remote flush carries a strictly increasing epoch, so a failover
	// retry of the same flush is idempotent on survivors. recoverable
	// is set while a failover-protected phase runs — shard faults then
	// unwind as repairable *shardFault panics instead of poisoning.
	failoverRetries int
	recoveryBudget  int
	opEpoch         uint64
	recoverable     atomic.Bool
	recoveringFlag  atomic.Bool
	recoveredN      atomic.Uint64

	gballPool sync.Pool // *shortest.GraphBall, per-worker adjacency BFS
	ballPool  sync.Pool // *ballScratch, per-worker stitched-ball state

	// Materialised stitched rows, keyed by source node, built lazily at
	// the full horizon on first query and dropped on any mutation. The
	// matching fixpoint queries the same sources many times per
	// amendment; caching makes repeat queries a plain row scan, as they
	// would be on a materialised global SLen, while maintenance keeps
	// the partition-local cost profile. ApplyDataBatch pre-warms the
	// rows the next amendment is known to query (in parallel).
	//
	// cacheMu makes the lazy cache fill safe under the read-epoch
	// discipline (see the concurrency contract above): row *building* is
	// a pure read of shared structures, so concurrent misses may build
	// the same row twice, but the map itself is only touched under the
	// lock. Every other query path reads immutable-between-mutations
	// state and needs no guard.
	cacheMu  sync.Mutex
	fwdCache map[uint32][]ballEntry
	revCache map[uint32][]ballEntry

	// lost poisons the engine after an unrecoverable shard failure —
	// failover found no surviving or spare worker, or the per-mutation
	// budget was spent: the substrate may be half-synchronised relative
	// to the data graph, so every further answer could be silently
	// wrong. Guarded by lostMu (shard calls happen on pool workers);
	// once set it never clears.
	lostMu sync.Mutex
	lost   error

	// metrics receives the engine's telemetry (batch phase latencies,
	// recovery counters); never nil — obs.Default unless WithMetrics.
	// trace, when non-nil, additionally collects each completed phase
	// span into the current batch's trace. It is set by the single
	// mutation writer (SetTraceSink) and only ever read from the
	// mutation goroutine, so it needs no lock.
	metrics *obs.Registry
	trace   *obs.Trace
}

// SetTraceSink directs the engine's per-phase spans (batch phases,
// recovery spans) into t in addition to the metrics registry — the hub
// sets one per batch so GET /v1/trace can show a batch's full phase
// breakdown. Pass nil to detach. Caller contract: only the single
// mutation writer may set or clear the sink, and the sink must stay
// attached for the whole mutation (spans are appended from the
// mutation goroutine only).
func (e *Engine) SetTraceSink(t *obs.Trace) { e.trace = t }

// span records one completed phase: a latency observation in the
// shared gpnm_batch_phase_seconds histogram family and, when a trace
// sink is attached, a span in the current batch's trace.
func (e *Engine) span(name string, start time.Time) {
	d := time.Since(start)
	e.metrics.Histogram("gpnm_batch_phase_seconds", "phase", name).Observe(d)
	if e.trace != nil {
		e.trace.AddSpan(name, d)
	}
}

// Err reports the sticky substrate-loss error (nil while healthy). Once
// non-nil the engine refuses further work: reads and mutations raise
// the same error, which boundary methods convert via
// RecoverSubstrateLoss.
func (e *Engine) Err() error {
	e.lostMu.Lock()
	defer e.lostMu.Unlock()
	return e.lost
}

// shardFault is the repairable form of a shard loss: it identifies the
// failing slot so the failover controller can quarantine it, and wraps
// the transport error so a terminal poison still surfaces it.
type shardFault struct {
	idx int
	err error
}

func (f *shardFault) Error() string { return fmt.Sprintf("shard %d: %v", f.idx, f.err) }
func (f *shardFault) Unwrap() error { return f.err }

// shardFail raises a failure of shard slot idx. Inside a
// failover-protected phase (withFailover) it panics with a repairable
// *shardFault — workpool.ForEach re-raises worker panics on the phase's
// caller, where the failover controller quarantines the slot, rebuilds
// its partitions from the coordinator's subgraph mirrors on survivors
// or spares, and retries the phase. Outside such a phase (the
// error-less DistanceEngine query surface, read between mutations) the
// old discipline holds: record the sticky loss and panic with it until
// a boundary method (ApplyDataBatch here, ApplyBatch/Register in
// internal/hub) converts it back into a return value with
// RecoverSubstrateLoss. The raw shard error stays wrapped either way,
// so errors.As still surfaces the *shard.TransportError.
func (e *Engine) shardFail(idx int, err error) {
	if e.recoverable.Load() {
		//lint:allow panic this panic IS the failover seam: withFailover recovers the *shardFault and repairs the fleet
		panic(&shardFault{idx: idx, err: err})
	}
	e.poison(err)
}

// poison records err as the engine's terminal substrate loss (first
// failure wins) and panics with the sticky error.
func (e *Engine) poison(err error) {
	e.lostMu.Lock()
	if e.lost == nil {
		e.lost = fmt.Errorf("partition: %w: %w", shard.ErrSubstrateLost, err)
	}
	err = e.lost
	e.lostMu.Unlock()
	//lint:allow panic sticky-loss unwind; boundary methods convert it back to an error via RecoverSubstrateLoss
	panic(err)
}

// ensureUsable panics with the sticky loss so a poisoned engine can
// never advance (or answer from) a diverged substrate.
func (e *Engine) ensureUsable() {
	if err := e.Err(); err != nil {
		//lint:allow panic sticky-loss unwind; boundary methods convert it back to an error via RecoverSubstrateLoss
		panic(err)
	}
}

// RecoverSubstrateLoss converts a substrate-loss panic into *err; any
// other panic is re-raised. Boundary methods defer it to turn the
// engine's internal unwinding into an ordinary error return:
//
//	func (e *Engine) ApplyDataBatch(...) (..., err error) {
//		defer RecoverSubstrateLoss(&err)
//		...
//	}
//
// Callers detect the condition with errors.Is(err, shard.ErrSubstrateLost).
func RecoverSubstrateLoss(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if e, ok := r.(error); ok && errors.Is(e, shard.ErrSubstrateLost) {
		*err = e
		return
	}
	//lint:allow panic re-raise of a foreign panic; only substrate-loss panics belong to this recovery seam
	panic(r)
}

// invalidate drops the materialised row caches after any mutation.
func (e *Engine) invalidate() {
	e.cacheMu.Lock()
	e.fwdCache = nil
	e.revCache = nil
	e.cacheMu.Unlock()
}

// Option configures the partition engine.
type Option func(*Engine)

// WithDenseThreshold forwards the dense-matrix threshold to the
// per-partition engines.
func WithDenseThreshold(n int) Option { return func(e *Engine) { e.denseThreshold = n } }

// WithELLWidth forwards the hybrid ELL width to the per-partition engines.
func WithELLWidth(k int) Option { return func(e *Engine) { e.ellWidth = k } }

// WithStitchedQueries makes cache-miss ball rows assemble through the
// partition structures (intra + overlay) instead of a direct bounded
// BFS. Results are identical; this exists to exercise and measure the
// literal §V computation (and is forced on for remote shards, whose
// intra state the coordinator does not hold).
func WithStitchedQueries() Option { return func(e *Engine) { e.stitched = true } }

// WithWorkers bounds the engine's internal worker pool: per-partition
// builds, overlay Dijkstras, batch affected-set balls and row prefetch
// all fan across up to n goroutines. n ≤ 0 selects GOMAXPROCS; 1 runs
// every phase serially (the UA-GPNM-NoPar-comparable baseline).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithShards serves the per-partition intra engines from the given
// shards instead of the default single in-process shard. Partitions
// are assigned round-robin. Shards must be homogeneous: either all
// in-process or all remote (remote shards need every op for replica
// maintenance, which a mixed fleet would miss).
func WithShards(shs ...shard.Shard) Option {
	return func(e *Engine) { e.shards = append([]shard.Shard(nil), shs...) }
}

// WithLocalShards splits the partitions round-robin across n in-process
// shards instead of the default single one. Results are identical by
// construction; this exists to exercise the multi-shard routing without
// processes (the differential suite runs it alongside the RPC path).
func WithLocalShards(n int) Option { return func(e *Engine) { e.nLocal = n } }

// WithSpares holds the given remote shards in standby: when a serving
// shard is lost, the failover controller promotes the next live spare
// into the dead slot (full build from the coordinator's mirrors) before
// falling back to packing the lost partitions onto survivors. Only
// meaningful with remote shards.
func WithSpares(shs ...shard.Shard) Option {
	return func(e *Engine) { e.spares = append(e.spares, shs...) }
}

// WithMetrics directs the engine's telemetry (phase latency
// histograms, recovery counters, trace spans) into reg instead of the
// process-global obs.Default — the bench harness isolates the hub
// side's phases this way.
func WithMetrics(reg *obs.Registry) Option {
	return func(e *Engine) {
		if reg != nil {
			e.metrics = reg
		}
	}
}

// WithOpChunk sets how many staged ops the batch's phase 2 accumulates
// before streaming them to the remote shards as one fenced /ops chunk,
// overlapping shard-side application with the coordinator's continued
// staging (see stream.go). n ≤ 0 disables streaming: the whole ordered
// op list flushes in a single end-of-phase RPC per shard, the pre-stream
// shape. The default is DefaultOpChunk. In-process fleets ignore it
// (their ops apply synchronously as they are staged).
func WithOpChunk(n int) Option { return func(e *Engine) { e.opChunk = n } }

// WithFailoverRetries bounds how many distinct shard losses one
// failover boundary — a data batch's phases, a build, a horizon
// widening, one WithReadFailover fan — may absorb before the engine
// gives up and poisons itself with shard.ErrSubstrateLost. The budget
// re-arms per boundary (a hub batch crosses a few: the detection fans
// around the batch and the batch itself), so it bounds losses per
// operation, not per process. The default is 1 — each faulted phase is
// retried exactly once against the repaired assignment; n ≤ 0 disables
// failover entirely (every loss poisons, the pre-failover behaviour).
func WithFailoverRetries(n int) Option {
	return func(e *Engine) {
		if n < 0 {
			n = 0
		}
		e.failoverRetries = n
	}
}

// NewEngine creates a partition-based SLen engine over g with the given
// hop horizon (0 = exact). Call Build before querying.
//
// The per-partition engines default to the hybrid sparse backend even
// for small partitions (denseThreshold 0): stitched queries iterate
// intra rows constantly, and hybrid rows cost O(ball) per scan where
// dense rows cost O(|Pi|).
func NewEngine(g *graph.Graph, horizon int, opts ...Option) *Engine {
	e := &Engine{horizon: horizon, denseThreshold: 0, ellWidth: 8, failoverRetries: 1, opChunk: DefaultOpChunk, metrics: obs.Default}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.initPools()
	e.part = newPartitioning(g, horizon)
	if len(e.shards) == 0 {
		n := e.nLocal
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			e.shards = append(e.shards, shard.NewLocal(e.subOf))
		}
	}
	remotes := 0
	for _, sh := range e.shards {
		if sh.Remote() {
			remotes++
		}
	}
	if remotes > 0 {
		if remotes != len(e.shards) {
			//lint:allow panic constructor misuse invariant; a mixed fleet cannot exist after configuration validation
			panic("partition: mixed in-process and remote shards")
		}
		e.remote = true
		// The coordinator holds no intra matrices for remote shards;
		// cache-miss rows must assemble through the §V structures.
		e.stitched = true
	}
	if len(e.spares) > 0 && !e.remote {
		//lint:allow panic constructor misuse invariant; spare promotion only makes sense for remote fleets
		panic("partition: spare shards require a remote shard fleet")
	}
	e.shardAlive = make([]bool, len(e.shards))
	for i := range e.shardAlive {
		e.shardAlive[i] = true
	}
	e.ov = newOverlay(e)
	return e
}

func (e *Engine) initPools() {
	e.ballPool.New = func() interface{} { return new(ballScratch) }
	e.gballPool.New = func() interface{} { return shortest.NewGraphBall() }
}

// subOf is the subgraph accessor handed to in-process shards.
func (e *Engine) subOf(part int) *graph.Graph { return e.part.parts[part].sub }

// Workers reports the engine's worker pool bound.
func (e *Engine) Workers() int { return e.workers }

// Shards reports how many shard slots serve the partitions
// (1 = in-process); quarantined slots are included.
func (e *Engine) Shards() int { return len(e.shards) }

// AliveShards reports how many shard slots are currently serving.
func (e *Engine) AliveShards() int { return len(e.aliveIndices()) }

// Remote reports whether the shards are out-of-process workers.
func (e *Engine) Remote() bool { return e.remote }

// Recovered reports how many shard losses the engine has absorbed
// through failover over its lifetime. The hub folds the per-batch delta
// into BatchStats.Recovered.
func (e *Engine) Recovered() uint64 { return e.recoveredN.Load() }

// Recovering reports whether a failover is in flight right now — the
// degraded-not-dead state health endpoints surface without blocking on
// the mutation in progress.
func (e *Engine) Recovering() bool { return e.recoveringFlag.Load() }

// shardConfig snapshots the parameters every shard builds with,
// including the current op-stream fence (coordinator staging always
// precedes the flush, so a snapshot taken now reflects every op of the
// current epoch).
func (e *Engine) shardConfig() shard.Config {
	return shard.Config{
		Horizon:        e.horizon,
		DenseThreshold: e.denseThreshold,
		ELLWidth:       e.ellWidth,
		Workers:        e.workers,
		Epoch:          e.opEpoch,
	}
}

// aliveIndices lists the shard slots currently serving.
func (e *Engine) aliveIndices() []int {
	out := make([]int, 0, len(e.shards))
	for i, ok := range e.shardAlive {
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// nextAliveShard picks the alive slot at or round-robin after hint.
func (e *Engine) nextAliveShard(hint int) int32 {
	n := len(e.shards)
	for k := 0; k < n; k++ {
		if s := (hint + k) % n; e.shardAlive[s] {
			return int32(s)
		}
	}
	//lint:allow panic recovery never leaves zero alive slots behind; reaching this is a broken controller invariant
	panic("partition: no alive shard to assign")
}

// assignShards extends the partition → shard map round-robin over any
// partitions created since the last call (skipping quarantined slots).
func (e *Engine) assignShards() {
	for len(e.shardOf) < len(e.part.parts) {
		e.shardOf = append(e.shardOf, e.nextAliveShard(len(e.shardOf)))
	}
}

// groupByShard buckets every partition under its owning slot in one
// pass over shardOf.
func (e *Engine) groupByShard() [][]int {
	owned := make([][]int, len(e.shards))
	for p, s := range e.shardOf {
		owned[s] = append(owned[s], p)
	}
	return owned
}

// nextOpEpoch issues the fence for one remote op flush (single-writer).
func (e *Engine) nextOpEpoch() uint64 {
	e.opEpoch++
	return e.opEpoch
}

// resetFailoverBudget re-arms the recovery budget at each mutation
// boundary: one batch (or build, or widening) may absorb up to
// failoverRetries distinct shard losses before poisoning.
func (e *Engine) resetFailoverBudget() { e.recoveryBudget = e.failoverRetries }

// engineSource exposes coordinator state for shard builds (shard.Source).
// The full-graph snapshot is computed at most once per Build — every
// remote shard asks for it, and re-walking a sharding-scale edge list
// N times (holding N copies) would dominate build cost.
type engineSource struct {
	e    *Engine
	once sync.Once
	g    shard.Snapshot
}

func (s *engineSource) NumParts() int { return len(s.e.part.parts) }
func (s *engineSource) PartSnapshot(i int) shard.Snapshot {
	return shard.Snap(i, s.e.part.parts[i].sub)
}
func (s *engineSource) GraphSnapshot() shard.Snapshot {
	s.once.Do(func() { s.g = shard.Snap(-1, s.e.part.g) })
	return s.g
}

// Build computes every partition's intra distances (fanned across the
// shards, each fanning across its own pool) and the overlay APSP. A
// worker lost during a remote build is failed over like any other loss:
// its partitions move to survivors or spares and the build retries.
func (e *Engine) Build() {
	e.ensureUsable()
	e.resetFailoverBudget()
	e.assignShards()
	e.withFailover(nil, func() {
		cfg := e.shardConfig()
		src := &engineSource{e: e}
		owned := e.groupByShard()
		if e.remote {
			alive := e.aliveIndices()
			// Remote builds block on the worker; overlap them.
			parallelFor(len(alive), len(alive), func(k int) {
				i := alive[k]
				if err := e.shards[i].Build(cfg, i, owned[i], src); err != nil {
					e.shardFail(i, err)
				}
			})
			return
		}
		// In-process shards fan partitions across the full pool
		// themselves; building them one after another avoids
		// oversubscribing it.
		for i, sh := range e.shards {
			if err := sh.Build(cfg, i, owned[i], src); err != nil {
				e.shardFail(i, err)
			}
		}
	})
	e.planOverlayRows()
	e.withFailover(nil, func() { e.ov.build(e.workers) })
	e.invalidate()
}

// planOverlayRows bulk-prefetches every partition's bridge rows ahead
// of a full overlay (re)build — the Dijkstra fan reads exactly those
// rows, so without the plan each one would cost a singleton /row RPC.
// The plan runs inside its own failover boundary (and re-derives the
// demand per attempt: recovery reassigns partitions) and records a
// row_plan span so the prefetch cost is visible next to the phases it
// feeds. In-process fleets skip it without a span — there is no RPC to
// batch.
func (e *Engine) planOverlayRows() {
	if !e.remote {
		return
	}
	start := time.Now()
	e.withFailover(nil, func() {
		e.prefetchPlannedRows(e.bridgeRowReqs(e.allPartIndices()))
	})
	e.span("row_plan", start)
}

// Close releases the shards and any unpromoted spares (remote: closes
// idle connections). The engine is unusable afterwards.
func (e *Engine) Close() error {
	var first error
	for _, sh := range e.shards {
		//lint:allow faultseam teardown path: failover is already dismantled, the first close error goes to the caller
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, sh := range e.spares {
		//lint:allow faultseam teardown path: failover is already dismantled, the first close error goes to the caller
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Graph returns the engine's data graph.
func (e *Engine) Graph() *graph.Graph { return e.part.g }

// Partitioning exposes the partition structure (stats, bridge nodes).
func (e *Engine) Partitioning() *Partitioning { return e.part }

// Horizon reports the hop cap (0 = exact).
func (e *Engine) Horizon() int { return e.horizon }

// Exact reports whether the engine represents unbounded distances.
func (e *Engine) Exact() bool { return e.horizon == 0 }

func (e *Engine) capHops() int {
	if e.horizon == 0 {
		return int(shortest.Inf) - 1
	}
	return e.horizon
}

// oracleAlive reports whether id is represented in the partition
// structure (it may briefly diverge from graph liveness mid-update;
// the oracle's own state is authoritative for distance queries).
func (e *Engine) oracleAlive(id uint32) bool { return e.part.partIndex(id) != none }

// intraBall visits the intra ball of a partition-local node through the
// owning shard (ascending local-id order).
func (e *Engine) intraBall(pi int32, local uint32, maxD int, reverse bool, fn func(local uint32, d shortest.Dist) bool) {
	idx := int(e.shardOf[pi])
	if err := e.shards[idx].Ball(int(pi), local, maxD, reverse, fn); err != nil {
		e.shardFail(idx, err)
	}
}

// intraDist returns the shortest path length from x to y using only
// edges inside their (shared) partition; Inf when they differ.
func (e *Engine) intraDist(x, y uint32) shortest.Dist {
	pi := e.part.partIndex(x)
	if pi == none || pi != e.part.partIndex(y) {
		return shortest.Inf
	}
	idx := int(e.shardOf[pi])
	d, err := e.shards[idx].Dist(int(pi), e.part.localOf[x], e.part.localOf[y])
	if err != nil {
		e.shardFail(idx, err)
	}
	return d
}

// Dist returns the stitched shortest path length from x to y.
func (e *Engine) Dist(x, y uint32) shortest.Dist {
	if !e.oracleAlive(x) || !e.oracleAlive(y) {
		return shortest.Inf
	}
	if x == y {
		return 0
	}
	H := e.capHops()
	best := int(shortest.Inf)
	if e.part.partIndex(x) == e.part.partIndex(y) {
		if d := e.intraDist(x, y); d != shortest.Inf {
			best = int(d)
		}
	}
	e.exitsOf(x, H-1, func(u uint32, du shortest.Dist) {
		e.ov.fwd.Row(u, func(b uint32, dov shortest.Dist) bool {
			if int(du)+int(dov) >= best {
				return true
			}
			if !e.part.isEntry(b) {
				return true
			}
			// d_intra(b, y): only same-partition b help.
			if e.part.partIndex(b) != e.part.partIndex(y) {
				return true
			}
			if db := e.intraDist(b, y); db != shortest.Inf {
				if t := int(du) + int(dov) + int(db); t < best {
					best = t
				}
			}
			return true
		})
		// b == u is not in u's overlay row; the case "exit u, then 0
		// overlay hops" is the intra case already covered.
	})
	if best > H {
		return shortest.Inf
	}
	return shortest.Dist(best)
}

// exitsOf visits the exit bridge nodes within maxD intra hops of x
// (x itself included at 0 when it is an exit).
func (e *Engine) exitsOf(x uint32, maxD int, fn func(u uint32, d shortest.Dist)) {
	if maxD < 0 {
		return
	}
	pi := e.part.partIndex(x)
	if pi == none {
		return
	}
	pt := e.part.parts[pi]
	e.intraBall(pi, e.part.localOf[x], maxD, false, func(local uint32, d shortest.Dist) bool {
		gid := pt.globals[local]
		if e.part.isExit(gid) {
			fn(gid, d)
		}
		return true
	})
}

// entriesTo visits the entry bridge nodes from which y is within maxD
// intra hops (y itself included at 0 when it is an entry).
func (e *Engine) entriesTo(y uint32, maxD int, fn func(b uint32, d shortest.Dist)) {
	if maxD < 0 {
		return
	}
	pi := e.part.partIndex(y)
	if pi == none {
		return
	}
	pt := e.part.parts[pi]
	e.intraBall(pi, e.part.localOf[y], maxD, true, func(local uint32, d shortest.Dist) bool {
		gid := pt.globals[local]
		if e.part.isEntry(gid) {
			fn(gid, d)
		}
		return true
	})
}

// WithinHops reports d(x,y) ≤ k (k must be ≤ Horizon when capped).
func (e *Engine) WithinHops(x, y uint32, k int) bool {
	if e.horizon != 0 && k > e.horizon {
		//lint:allow panic API contract: k ≤ Horizon is documented; callers derive k from the same config that set the horizon
		panic(fmt.Sprintf("partition: WithinHops(%d) beyond horizon %d", k, e.horizon))
	}
	d := e.Dist(x, y)
	return d != shortest.Inf && int(d) <= k
}

// Reachable reports whether y is reachable from x within the horizon.
func (e *Engine) Reachable(x, y uint32) bool { return e.Dist(x, y) != shortest.Inf }

// ForwardBall visits {v : d(x,v) ≤ k} in ascending id order.
func (e *Engine) ForwardBall(x uint32, k int, fn func(v uint32, d shortest.Dist) bool) {
	e.cachedBall(x, k, false, fn)
}

// ReverseBall visits {s : d(s,y) ≤ k} in ascending id order.
func (e *Engine) ReverseBall(y uint32, k int, fn func(s uint32, d shortest.Dist) bool) {
	e.cachedBall(y, k, true, fn)
}

// cachedBall serves a ball query from the materialised row cache,
// building the full-horizon stitched row on a miss. Map lookups and
// installs happen under cacheMu so concurrent readers of one frozen
// engine state stay safe; the row build itself is a pure read and runs
// unlocked (two goroutines missing on the same source build identical
// rows, and the second install is a no-op overwrite).
func (e *Engine) cachedBall(x uint32, k int, reverse bool, fn func(v uint32, d shortest.Dist) bool) {
	if k < 0 || !e.oracleAlive(x) {
		return
	}
	cache := &e.fwdCache
	if reverse {
		cache = &e.revCache
	}
	e.cacheMu.Lock()
	row, ok := (*cache)[x]
	e.cacheMu.Unlock()
	if !ok {
		row = e.buildRow(x, reverse)
		e.cacheMu.Lock()
		if *cache == nil {
			*cache = make(map[uint32][]ballEntry)
		}
		(*cache)[x] = row
		e.cacheMu.Unlock()
	}
	for _, en := range row {
		if int(en.d) <= k {
			if !fn(en.id, en.d) {
				return
			}
		}
	}
}

// buildRow materialises the full-horizon row of x for the cache. By
// default the row comes from a bounded BFS over the data graph — exact,
// and the cheapest way to materialise one row of the capped SLen.
// WithStitchedQueries (forced on for remote shards) switches to
// assembling the row from the §V structures (intra distances + bridge
// overlay); the two agree entry for entry (enforced by tests), the
// stitched path being what Dist uses for point queries either way.
// buildRow only reads shared state (scratch is pooled), so rows for
// distinct sources assemble concurrently.
func (e *Engine) buildRow(x uint32, reverse bool) []ballEntry {
	if e.stitched {
		var row []ballEntry
		e.ballInto(x, e.capHops(), reverse, func(v uint32, d shortest.Dist) bool {
			row = append(row, ballEntry{v, d})
			return true
		})
		return row
	}
	gb := e.gballPool.Get().(*shortest.GraphBall)
	cols, dists := gb.Row(e.part.g, x, e.horizon, reverse) // horizon 0 = unbounded
	row := make([]ballEntry, len(cols))
	for i, c := range cols {
		row[i] = ballEntry{c, dists[i]}
	}
	e.gballPool.Put(gb)
	return row
}

// prefetchRows materialises the reverse rows of every live id into the
// cache, assembling cache-miss rows across the worker pool. The
// amendment pass that follows a batch queries exactly these rows — its
// cascade closure starts from the change log and asks ReverseBall for
// every member — so pre-warming converts its serial on-demand row
// builds into one parallel sweep. Forward rows stay lazy: only the
// change-log nodes that are also label candidates get forward queries,
// so warming them would be speculative work. In-process only — remote
// fleets keep even the reverse rows lazy and instead bulk-plan their
// shard-row inputs (PrefetchBallRows), so the lazy builds are RPC-free.
func (e *Engine) prefetchRows(ids nodeset.Set) {
	if len(ids) == 0 {
		return
	}
	if e.workers <= 1 || len(ids) < 2 {
		return // lazy path: serial engines build rows on demand
	}
	live := make([]uint32, 0, len(ids))
	for _, x := range ids {
		if e.oracleAlive(x) {
			live = append(live, x)
		}
	}
	n := len(live)
	if n == 0 {
		return
	}
	rows := make([][]ballEntry, n)
	parallelFor(e.workers, n, func(i int) {
		rows[i] = e.buildRow(live[i], true)
	})
	e.cacheMu.Lock()
	if e.revCache == nil {
		e.revCache = make(map[uint32][]ballEntry, n)
	}
	for i, x := range live {
		e.revCache[x] = rows[i]
	}
	e.cacheMu.Unlock()
}

// ballScratch is epoch-stamped scratch for stitched ball queries:
// visiting is O(touched), not O(|N|), with no per-call maps. Instances
// are pooled so concurrent stitched-row builds never share one.
type ballScratch struct {
	dist  []shortest.Dist
	stamp []uint32
	epoch uint32
	ids   []uint32
}

func (s *ballScratch) begin(n int) {
	for len(s.dist) < n {
		s.dist = append(s.dist, 0)
		s.stamp = append(s.stamp, 0)
	}
	s.epoch++
	s.ids = s.ids[:0]
}

func (s *ballScratch) merge(id uint32, d shortest.Dist) {
	if int(id) >= len(s.stamp) {
		grow := int(id) + 1 - len(s.stamp)
		s.dist = append(s.dist, make([]shortest.Dist, grow)...)
		s.stamp = append(s.stamp, make([]uint32, grow)...)
	}
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		s.dist[id] = d
		s.ids = append(s.ids, id)
	} else if d < s.dist[id] {
		s.dist[id] = d
	}
}

func (e *Engine) ballInto(x uint32, k int, reverse bool, fn func(v uint32, d shortest.Dist) bool) {
	if !e.oracleAlive(x) || k < 0 {
		return
	}
	if e.horizon != 0 && k > e.horizon {
		k = e.horizon
	}
	sc := e.ballPool.Get().(*ballScratch)
	sc.begin(e.part.g.NumIDs())
	merge := sc.merge
	// Intra segment.
	pi := e.part.partIndex(x)
	pt := e.part.parts[pi]
	e.intraBall(pi, e.part.localOf[x], k, reverse, func(local uint32, d shortest.Dist) bool {
		merge(pt.globals[local], d)
		return true
	})
	// Overlay-mediated segments.
	bridgesNear := e.exitsOf
	ovRow := e.ov.fwd
	farEnd := e.part.isEntry
	if reverse {
		bridgesNear = e.entriesTo
		ovRow = e.ov.rev
		farEnd = e.part.isExit
	}
	bridgesNear(x, k-1, func(u uint32, du shortest.Dist) {
		ovRow.Row(u, func(b uint32, dov shortest.Dist) bool {
			rem := k - int(du) - int(dov)
			if rem < 0 || !farEnd(b) {
				return true
			}
			bpi := e.part.partIndex(b)
			bp := e.part.parts[bpi]
			e.intraBall(bpi, e.part.localOf[b], rem, reverse, func(local uint32, d shortest.Dist) bool {
				merge(bp.globals[local], du+dov+d)
				return true
			})
			return true
		})
	})
	// Snapshot before emitting, releasing the scratch first: callbacks may
	// issue nested ball queries (the elimination cascade does), and the
	// snapshot keeps them from observing a half-consumed scratch.
	out := make([]ballEntry, len(sc.ids))
	for i, id := range sc.ids {
		out[i] = ballEntry{id, sc.dist[id]}
	}
	e.ballPool.Put(sc)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	for _, en := range out {
		if !fn(en.id, en.d) {
			return
		}
	}
}

type ballEntry struct {
	id uint32
	d  shortest.Dist
}

// conservativeEdgeAffected is the ball superset used as the affected set
// of an edge update (shard.EdgeAffected with pooled scratch). The balls
// come from a direct BFS over the data graph — the graph always reflects
// the same state as the oracle, and adjacency BFS is far cheaper than
// stitching. Read-only: safe to evaluate for many updates concurrently.
func (e *Engine) conservativeEdgeAffected(u, v uint32) nodeset.Set {
	gb := e.gballPool.Get().(*shortest.GraphBall)
	s := shard.EdgeAffected(gb, e.part.g, u, v, e.horizon)
	e.gballPool.Put(gb)
	return s
}

// PreviewInsertEdge returns the affected superset for inserting (u,v)
// without mutating anything.
func (e *Engine) PreviewInsertEdge(u, v uint32) nodeset.Set {
	return e.conservativeEdgeAffected(u, v)
}

// InsertEdge synchronises the substrate after edge (u,v) was added to
// the graph and returns the affected superset.
func (e *Engine) InsertEdge(u, v uint32) nodeset.Set {
	e.ensureUsable()
	e.resetFailoverBudget()
	var dirty nodeset.Builder
	e.applyOps([]shard.Op{e.stageInsertEdge(u, v, &dirty)}, &dirty)
	if dirty.Len() > 0 {
		e.withFailover(nil, func() { e.ov.recompute(dirty.Set(), e.workers) })
	}
	e.invalidate()
	return e.conservativeEdgeAffected(u, v)
}

// stageInsertEdge records edge (u,v) in the coordinator's partition
// structures (the graph must already contain it), accumulating dirty
// overlay anchors for the cross case, and returns the op the owning
// shard must apply.
func (e *Engine) stageInsertEdge(u, v uint32, dirty *nodeset.Builder) shard.Op {
	op := shard.Op{Kind: shard.OpEdgeInsert, From: u, To: v, Part: -1, Shard: -1}
	pu, pv := e.part.partIndex(u), e.part.partIndex(v)
	if pu == pv {
		pt := e.part.parts[pu]
		lu, lv := e.part.localOf[u], e.part.localOf[v]
		pt.sub.AddEdge(lu, lv)
		op.Part, op.Shard, op.LFrom, op.LTo = int(pu), int(e.shardOf[pu]), lu, lv
	} else {
		e.part.noteCross(u, v, +1)
		dirty.Add(u)
		dirty.Add(v)
	}
	return op
}

// dirtyBridges translates a partition-local affected set into the global
// bridge nodes whose overlay rows must be refreshed.
func (e *Engine) dirtyBridges(pt *part, localAff nodeset.Set, dirty *nodeset.Builder) {
	for _, local := range localAff {
		gid := pt.globals[local]
		if e.part.isOverlay(gid) {
			dirty.Add(gid)
		}
	}
}

// settleOp folds one op's shard-side affected set into the dirty
// overlay anchors.
func (e *Engine) settleOp(op shard.Op, aff []uint32, dirty *nodeset.Builder) {
	if op.Part < 0 || op.Kind == shard.OpNodeInsert {
		return
	}
	e.dirtyBridges(e.part.parts[op.Part], aff, dirty)
}

// applyOps hands staged ops to the shards and settles their affected
// sets. In-process shards receive only the ops they own, one batch in
// op order; remote shards each receive the full stream (replica-only
// ops included) in one epoch-fenced RPC, overlapped across shards. The
// remote flush is failover-protected: a worker lost mid-flush is
// quarantined, its partitions rebuilt from the coordinator's mirrors,
// and the same epoch re-flushed — survivors that already applied it
// answer their recorded sets, so nothing double-applies.
func (e *Engine) applyOps(ops []shard.Op, dirty *nodeset.Builder) {
	if len(ops) == 0 {
		return
	}
	if !e.remote {
		for _, op := range ops {
			if op.Shard < 0 {
				continue
			}
			// In-process shards are always *shard.Local; the single-op
			// fast path keeps phase 2 allocation-free like the monolith.
			if l, ok := e.shards[op.Shard].(*shard.Local); ok {
				e.settleOp(op, l.ApplyOp(op), dirty)
				continue
			}
			aff, err := e.shards[op.Shard].ApplyOps(0, []shard.Op{op}, nil)
			if err != nil {
				e.shardFail(op.Shard, err)
			}
			e.settleOp(op, aff[0], dirty)
		}
		return
	}
	epoch := e.nextOpEpoch()
	// The warm demand is planned inside the failover boundary: a retry
	// after recovery re-plans against the repaired shard assignment.
	e.withFailover(dirty, func() { e.flushOps(epoch, ops, e.opsRowDemand(ops), dirty) })
}

// flushOps sends one epoch's ops to every alive remote shard and
// settles the returned affected sets into dirty. Settling is idempotent
// (dirty has set semantics), so a failover retry of the same epoch is
// safe; ops whose owning slot is dead settle nothing — the recovery
// compensates by dirtying the reassigned partitions' bridge anchors
// conservatively.
//
// warm is the row demand piggybacked on the RPC — the bridge and
// source rows the phases right after the flush will read, so the flush
// response refills exactly the rows it invalidated. The op-log streamer
// passes nil for intermediate chunks (their rows would be invalidated
// again by the next chunk) and the full batch demand on the final one.
func (e *Engine) flushOps(epoch uint64, ops []shard.Op, warm [][]shard.RowReq, dirty *nodeset.Builder) {
	affs := make([][][]uint32, len(e.shards))
	alive := e.aliveIndices()
	parallelFor(len(alive), len(alive), func(k int) {
		s := alive[k]
		var w []shard.RowReq
		if s < len(warm) {
			w = warm[s]
		}
		aff, err := e.shards[s].ApplyOps(epoch, ops, w)
		if err != nil {
			e.shardFail(s, err)
		}
		affs[s] = aff
	})
	for i, op := range ops {
		if op.Shard >= 0 && affs[op.Shard] != nil && affs[op.Shard][i] != nil {
			e.settleOp(op, affs[op.Shard][i], dirty)
		}
	}
}

// PreviewDeleteEdge returns the affected superset for deleting (u,v)
// without mutating anything (the graph must still contain the edge).
func (e *Engine) PreviewDeleteEdge(u, v uint32) nodeset.Set {
	return e.conservativeEdgeAffected(u, v)
}

// DeleteEdge synchronises the substrate after edge (u,v) was removed
// from the graph and returns the affected superset (evaluated in the
// pre-delete state).
func (e *Engine) DeleteEdge(u, v uint32) nodeset.Set {
	e.ensureUsable()
	e.resetFailoverBudget()
	aff := e.conservativeEdgeAffected(u, v)
	var dirty nodeset.Builder
	e.applyOps([]shard.Op{e.stageDeleteEdge(u, v, &dirty)}, &dirty)
	e.withFailover(nil, func() { e.ov.recompute(dirty.Set(), e.workers) })
	e.invalidate()
	return aff
}

// stageDeleteEdge removes edge (u,v) from the coordinator's partition
// structures (the graph must already have dropped it), accumulating
// dirty anchors, and returns the op for the owning shard.
func (e *Engine) stageDeleteEdge(u, v uint32, dirty *nodeset.Builder) shard.Op {
	op := shard.Op{Kind: shard.OpEdgeDelete, From: u, To: v, Part: -1, Shard: -1}
	pu, pv := e.part.partIndex(u), e.part.partIndex(v)
	if pu == pv {
		pt := e.part.parts[pu]
		lu, lv := e.part.localOf[u], e.part.localOf[v]
		pt.sub.RemoveEdge(lu, lv)
		op.Part, op.Shard, op.LFrom, op.LTo = int(pu), int(e.shardOf[pu]), lu, lv
		dirty.Add(u)
		dirty.Add(v)
	} else {
		e.part.noteCross(u, v, -1)
		dirty.Add(u)
		dirty.Add(v)
	}
	return op
}

// InsertNode registers a freshly added (isolated) node.
func (e *Engine) InsertNode(id uint32) nodeset.Set {
	e.ensureUsable()
	e.resetFailoverBudget()
	var dirty nodeset.Builder
	e.applyOps([]shard.Op{e.stageInsertNode(id)}, &dirty)
	e.invalidate()
	return nodeset.New(id)
}

// stageInsertNode registers id in its label's partition (creating the
// partition — and its shard assignment — if needed) and returns the op
// for the owning shard.
func (e *Engine) stageInsertNode(id uint32) shard.Op {
	pi := e.part.addToPart(id)
	e.assignShards()
	return shard.Op{
		Kind: shard.OpNodeInsert, Node: id,
		Part: int(pi), Shard: int(e.shardOf[pi]), Local: e.part.localOf[id],
	}
}

// PreviewDeleteNode returns the affected superset for deleting node id
// (the graph must still contain it).
func (e *Engine) PreviewDeleteNode(id uint32) nodeset.Set {
	return e.nodeAffected(id, e.part.g.Out(id), e.part.g.In(id))
}

// nodeAffected is read-only with pooled scratch, like
// conservativeEdgeAffected (shard.NodeAffected).
func (e *Engine) nodeAffected(id uint32, outs, ins []uint32) nodeset.Set {
	gb := e.gballPool.Get().(*shortest.GraphBall)
	s := shard.NodeAffected(gb, e.part.g, id, outs, ins, e.horizon)
	e.gballPool.Put(gb)
	return s
}

// DeleteNode synchronises the substrate after node id (with incident
// edges removed, as returned by graph.RemoveNode) was deleted.
func (e *Engine) DeleteNode(id uint32, removed []graph.Edge) nodeset.Set {
	e.ensureUsable()
	e.resetFailoverBudget()
	var outs, ins []uint32
	for _, ed := range removed {
		if ed.From == id {
			outs = append(outs, ed.To)
		} else {
			ins = append(ins, ed.From)
		}
	}
	aff := e.nodeAffected(id, outs, ins)
	var dirty nodeset.Builder
	e.applyOps([]shard.Op{e.stageDeleteNode(id, removed, &dirty)}, &dirty)
	e.withFailover(nil, func() { e.ov.recompute(dirty.Set(), e.workers) })
	e.invalidate()
	return aff
}

// stageDeleteNode removes node id from the coordinator's partition
// structures (the graph must already have dropped it and its incident
// edges, passed as removed), accumulating dirty anchors, and returns
// the op for the owning shard.
func (e *Engine) stageDeleteNode(id uint32, removed []graph.Edge, dirty *nodeset.Builder) shard.Op {
	pi := e.part.partIndex(id)
	pt := e.part.parts[pi]
	dirty.Add(id)
	for _, ed := range removed {
		if e.part.partIndex(ed.From) == e.part.partIndex(ed.To) {
			continue // intra edges fall with RemoveNode below
		}
		e.part.noteCross(ed.From, ed.To, -1)
		dirty.Add(ed.From)
		dirty.Add(ed.To)
	}
	local := e.part.localOf[id]
	removedLocal, _ := pt.sub.RemoveNode(local)
	e.part.partOf[id] = none
	rl := make([]shard.Edge, len(removedLocal))
	for i, ed := range removedLocal {
		rl[i] = shard.Edge{From: ed.From, To: ed.To}
	}
	return shard.Op{
		Kind: shard.OpNodeDelete, Node: id,
		Part: int(pi), Shard: int(e.shardOf[pi]), Local: local, RemovedLocal: rl,
	}
}

// EnsureHorizon widens a capped engine to cover bound k, rebuilding the
// per-partition engines (shard-side) and the overlay.
func (e *Engine) EnsureHorizon(k int) {
	if e.horizon == 0 || k <= e.horizon {
		return
	}
	e.ensureUsable()
	e.resetFailoverBudget()
	e.horizon = k
	e.part.horizon = k
	e.withFailover(nil, func() {
		if e.remote {
			alive := e.aliveIndices()
			parallelFor(len(alive), len(alive), func(j int) {
				i := alive[j]
				if err := e.shards[i].EnsureHorizon(k); err != nil {
					e.shardFail(i, err)
				}
			})
			return
		}
		for i, sh := range e.shards {
			if err := sh.EnsureHorizon(k); err != nil {
				e.shardFail(i, err)
			}
		}
	})
	e.planOverlayRows()
	e.withFailover(nil, func() { e.ov.build(e.workers) })
	e.invalidate()
}

// CloneFor returns an independent copy of the engine operating on g2,
// a clone of the engine's graph. In-process shards are deep-copied;
// remote shards cannot be cloned (the worker holds the state), so the
// clone collapses onto one freshly built in-process shard over the
// coordinator's subgraph mirrors — same distances, local serving.
func (e *Engine) CloneFor(g2 *graph.Graph) shortest.DistanceEngine {
	c := &Engine{
		horizon:         e.horizon,
		denseThreshold:  e.denseThreshold,
		ellWidth:        e.ellWidth,
		stitched:        e.stitched,
		workers:         e.workers,
		failoverRetries: e.failoverRetries,
		// The clone shares the parent's registry but not its trace sink:
		// a forked engine's batches are their own, not the parent batch's.
		metrics: e.metrics,
	}
	c.initPools()
	p := e.part
	cp := &Partitioning{
		g:        g2,
		horizon:  p.horizon,
		partOf:   append([]int32(nil), p.partOf...),
		localOf:  append([]uint32(nil), p.localOf...),
		byLabel:  make(map[graph.LabelID]int32, len(p.byLabel)),
		crossOut: append([]int32(nil), p.crossOut...),
		crossIn:  append([]int32(nil), p.crossIn...),
	}
	for k, v := range p.byLabel {
		cp.byLabel[k] = v
	}
	for _, pt := range p.parts {
		cp.parts = append(cp.parts, &part{
			label:   pt.label,
			sub:     pt.sub.Clone(),
			globals: append([]uint32(nil), pt.globals...),
			exits:   append([]uint32(nil), pt.exits...),
			entries: append([]uint32(nil), pt.entries...),
		})
	}
	c.part = cp
	if e.remote {
		l := shard.NewLocal(c.subOf)
		c.shards = []shard.Shard{l}
		c.shardOf = make([]int32, len(cp.parts))
		all := make([]int, len(cp.parts))
		for i := range all {
			all[i] = i
		}
		_ = l.Build(c.shardConfig(), 0, all, &engineSource{e: c}) // in-process: never errors
	} else {
		c.shardOf = append([]int32(nil), e.shardOf...)
		for _, sh := range e.shards {
			c.shards = append(c.shards, sh.(*shard.Local).Clone(c.subOf))
		}
	}
	c.shardAlive = make([]bool, len(c.shards))
	for i := range c.shardAlive {
		c.shardAlive[i] = true
	}
	c.ov = newOverlay(c)
	c.ov.fwd = e.ov.fwd.Clone()
	c.ov.rev = e.ov.rev.Clone()
	return c
}

// remoteAffected computes the batch's conservative affected balls on
// the remote shards' data-graph replicas. It follows the same bulk
// contract as the row plane: the whole phase issues exactly ONE
// /affected RPC per alive shard (requests sliced round-robin across the
// fleet), the per-shard calls run concurrently on the coordinator, and
// each worker fans its slice across its own pool — so phase latency is
// one round trip plus the slowest slice, never a per-update loop.
// phase4 selects the insertion (post-state) pass; otherwise the
// deletion (pre-state) pass runs.
func (e *Engine) remoteAffected(ds []updates.Update, g *graph.Graph, phase4 bool, applied []bool, perUpdate []nodeset.Set) {
	var reqs []shard.AffectedReq
	var idx []int
	for i, u := range ds {
		if !phase4 {
			switch u.Kind {
			case updates.DataEdgeDelete:
				if g.HasEdge(u.From, u.To) {
					reqs = append(reqs, shard.AffectedReq{Kind: shard.OpEdgeDelete, From: u.From, To: u.To})
					idx = append(idx, i)
				}
			case updates.DataNodeDelete:
				if g.Alive(u.Node) {
					reqs = append(reqs, shard.AffectedReq{Kind: shard.OpNodeDelete, Node: u.Node})
					idx = append(idx, i)
				}
			}
			continue
		}
		if !applied[i] {
			continue
		}
		switch u.Kind {
		case updates.DataEdgeInsert:
			reqs = append(reqs, shard.AffectedReq{Kind: shard.OpEdgeInsert, From: u.From, To: u.To})
			idx = append(idx, i)
		case updates.DataNodeInsert:
			perUpdate[i] = nodeset.New(u.Node)
		}
	}
	if len(reqs) == 0 {
		return
	}
	// Slice round-robin over the alive slots only: after a failover the
	// retried phase re-slices against the repaired fleet.
	alive := e.aliveIndices()
	ns := len(alive)
	slices := make([][]shard.AffectedReq, ns)
	sliceIdx := make([][]int, ns)
	for j := range reqs {
		s := j % ns
		slices[s] = append(slices[s], reqs[j])
		sliceIdx[s] = append(sliceIdx[s], idx[j])
	}
	parallelFor(ns, ns, func(s int) {
		if len(slices[s]) == 0 {
			return
		}
		sets, err := e.shards[alive[s]].Affected(slices[s])
		if err != nil {
			e.shardFail(alive[s], err)
		}
		for k, set := range sets {
			perUpdate[sliceIdx[s][k]] = set
		}
	})
}
