package partition

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
)

// Engine is the partition-based SLen substrate (§V): per-partition intra
// distances plus the bridge overlay, answering global distance queries by
// stitching
//
//	d(x,y) = min( d_intra(x,y) [same partition],
//	              min_{u ∈ exits(x), b ∈ entries(y)}
//	                  d_intra(x,u) + d_overlay(u,b) + d_intra(b,y) ),
//
// which is exact (DESIGN.md §4): any path decomposes into intra segments
// joined by cross edges, and the overlay's Dijkstra minimises over all
// such compositions. Updates stay local: an intra-partition change
// touches one partition engine (and the overlay only when bridge-node
// distances move); a cross edge touches only the overlay.
//
// Concurrency contract: mutations are single-goroutine like every other
// DistanceEngine — callers never invoke two mutating methods (Build,
// Insert*/Delete*, ApplyDataBatch, EnsureHorizon) concurrently, nor a
// mutation concurrently with anything else. The engine itself fans
// embarrassingly parallel phases (per-partition intra builds, per-source
// overlay Dijkstras, per-update affected balls, stitched-row prefetch)
// across a bounded worker pool sized by WithWorkers; every parallel
// phase only reads shared structures and keeps its mutable state in
// pooled per-worker scratch, with results installed from a single
// goroutine.
//
// Read epochs: between mutations the query side (Dist, WithinHops,
// Reachable, Forward/ReverseBall, Preview*) is safe for any number of
// concurrent goroutines — queries read structures that are immutable
// until the next mutation, per-query scratch is pooled, and the lazy
// row-cache fill is serialised internally (cacheMu). The standing-query
// hub (internal/hub) leans on exactly this: one writer advances the
// engine per batch, then many per-pattern readers amend against the
// frozen post-batch state.
//
// Engine implements shortest.DistanceEngine; affected sets are the
// conservative ball supersets documented on each method.
type Engine struct {
	part    *Partitioning
	ov      *overlay
	horizon int

	denseThreshold int
	ellWidth       int
	stitched       bool // assemble cached rows via §V stitching
	workers        int  // worker pool bound (1 = serial)

	ballPool  sync.Pool // *ballScratch, per-worker stitched-ball state
	gballPool sync.Pool // *shortest.GraphBall, per-worker adjacency BFS

	// Materialised stitched rows, keyed by source node, built lazily at
	// the full horizon on first query and dropped on any mutation. The
	// matching fixpoint queries the same sources many times per
	// amendment; caching makes repeat queries a plain row scan, as they
	// would be on a materialised global SLen, while maintenance keeps
	// the partition-local cost profile. ApplyDataBatch pre-warms the
	// rows the next amendment is known to query (in parallel).
	//
	// cacheMu makes the lazy cache fill safe under the read-epoch
	// discipline (see the concurrency contract above): row *building* is
	// a pure read of shared structures, so concurrent misses may build
	// the same row twice, but the map itself is only touched under the
	// lock. Every other query path reads immutable-between-mutations
	// state and needs no guard.
	cacheMu  sync.Mutex
	fwdCache map[uint32][]ballEntry
	revCache map[uint32][]ballEntry
}

// invalidate drops the materialised row caches after any mutation.
func (e *Engine) invalidate() {
	e.cacheMu.Lock()
	e.fwdCache = nil
	e.revCache = nil
	e.cacheMu.Unlock()
}

// Option configures the partition engine.
type Option func(*Engine)

// WithDenseThreshold forwards the dense-matrix threshold to the
// per-partition engines.
func WithDenseThreshold(n int) Option { return func(e *Engine) { e.denseThreshold = n } }

// WithELLWidth forwards the hybrid ELL width to the per-partition engines.
func WithELLWidth(k int) Option { return func(e *Engine) { e.ellWidth = k } }

// WithStitchedQueries makes cache-miss ball rows assemble through the
// partition structures (intra + overlay) instead of a direct bounded
// BFS. Results are identical; this exists to exercise and measure the
// literal §V computation.
func WithStitchedQueries() Option { return func(e *Engine) { e.stitched = true } }

// WithWorkers bounds the engine's internal worker pool: per-partition
// builds, overlay Dijkstras, batch affected-set balls and row prefetch
// all fan across up to n goroutines. n ≤ 0 selects GOMAXPROCS; 1 runs
// every phase serially (the UA-GPNM-NoPar-comparable baseline).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// NewEngine creates a partition-based SLen engine over g with the given
// hop horizon (0 = exact). Call Build before querying.
//
// The per-partition engines default to the hybrid sparse backend even
// for small partitions (denseThreshold 0): stitched queries iterate
// intra rows constantly, and hybrid rows cost O(ball) per scan where
// dense rows cost O(|Pi|).
func NewEngine(g *graph.Graph, horizon int, opts ...Option) *Engine {
	e := &Engine{horizon: horizon, denseThreshold: 0, ellWidth: 8}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	e.initPools()
	e.part = newPartitioning(g, horizon, e.denseThreshold, e.ellWidth)
	e.ov = newOverlay(e.part)
	return e
}

func (e *Engine) initPools() {
	e.ballPool.New = func() interface{} { return new(ballScratch) }
	e.gballPool.New = func() interface{} { return shortest.NewGraphBall() }
}

// Workers reports the engine's worker pool bound.
func (e *Engine) Workers() int { return e.workers }

// Build computes every partition's intra distances and the overlay APSP,
// fanning both across the worker pool.
func (e *Engine) Build() {
	e.part.buildEngines(e.workers)
	e.ov.build(e.workers)
	e.invalidate()
}

// Graph returns the engine's data graph.
func (e *Engine) Graph() *graph.Graph { return e.part.g }

// Partitioning exposes the partition structure (stats, bridge nodes).
func (e *Engine) Partitioning() *Partitioning { return e.part }

// Horizon reports the hop cap (0 = exact).
func (e *Engine) Horizon() int { return e.horizon }

// Exact reports whether the engine represents unbounded distances.
func (e *Engine) Exact() bool { return e.horizon == 0 }

func (e *Engine) capHops() int {
	if e.horizon == 0 {
		return int(shortest.Inf) - 1
	}
	return e.horizon
}

// oracleAlive reports whether id is represented in the partition
// structure (it may briefly diverge from graph liveness mid-update;
// the oracle's own state is authoritative for distance queries).
func (e *Engine) oracleAlive(id uint32) bool { return e.part.partIndex(id) != none }

// Dist returns the stitched shortest path length from x to y.
func (e *Engine) Dist(x, y uint32) shortest.Dist {
	if !e.oracleAlive(x) || !e.oracleAlive(y) {
		return shortest.Inf
	}
	if x == y {
		return 0
	}
	H := e.capHops()
	best := int(shortest.Inf)
	if e.part.partIndex(x) == e.part.partIndex(y) {
		if d := e.part.intraDist(x, y); d != shortest.Inf {
			best = int(d)
		}
	}
	e.exitsOf(x, H-1, func(u uint32, du shortest.Dist) {
		e.ov.fwd.Row(u, func(b uint32, dov shortest.Dist) bool {
			if int(du)+int(dov) >= best {
				return true
			}
			if !e.part.isEntry(b) {
				return true
			}
			// d_intra(b, y): only same-partition b help.
			if e.part.partIndex(b) != e.part.partIndex(y) {
				return true
			}
			if db := e.part.intraDist(b, y); db != shortest.Inf {
				if t := int(du) + int(dov) + int(db); t < best {
					best = t
				}
			}
			return true
		})
		// b == u is not in u's overlay row; the case "exit u, then 0
		// overlay hops" is the intra case already covered.
	})
	if best > H {
		return shortest.Inf
	}
	return shortest.Dist(best)
}

// exitsOf visits the exit bridge nodes within maxD intra hops of x
// (x itself included at 0 when it is an exit).
func (e *Engine) exitsOf(x uint32, maxD int, fn func(u uint32, d shortest.Dist)) {
	if maxD < 0 {
		return
	}
	pi := e.part.partIndex(x)
	if pi == none {
		return
	}
	pt := e.part.parts[pi]
	pt.eng.ForwardBall(e.part.localOf[x], maxD, func(local uint32, d shortest.Dist) bool {
		gid := pt.globals[local]
		if e.part.isExit(gid) {
			fn(gid, d)
		}
		return true
	})
}

// entriesTo visits the entry bridge nodes from which y is within maxD
// intra hops (y itself included at 0 when it is an entry).
func (e *Engine) entriesTo(y uint32, maxD int, fn func(b uint32, d shortest.Dist)) {
	if maxD < 0 {
		return
	}
	pi := e.part.partIndex(y)
	if pi == none {
		return
	}
	pt := e.part.parts[pi]
	pt.eng.ReverseBall(e.part.localOf[y], maxD, func(local uint32, d shortest.Dist) bool {
		gid := pt.globals[local]
		if e.part.isEntry(gid) {
			fn(gid, d)
		}
		return true
	})
}

// WithinHops reports d(x,y) ≤ k (k must be ≤ Horizon when capped).
func (e *Engine) WithinHops(x, y uint32, k int) bool {
	if e.horizon != 0 && k > e.horizon {
		panic(fmt.Sprintf("partition: WithinHops(%d) beyond horizon %d", k, e.horizon))
	}
	d := e.Dist(x, y)
	return d != shortest.Inf && int(d) <= k
}

// Reachable reports whether y is reachable from x within the horizon.
func (e *Engine) Reachable(x, y uint32) bool { return e.Dist(x, y) != shortest.Inf }

// ForwardBall visits {v : d(x,v) ≤ k} in ascending id order.
func (e *Engine) ForwardBall(x uint32, k int, fn func(v uint32, d shortest.Dist) bool) {
	e.cachedBall(x, k, false, fn)
}

// ReverseBall visits {s : d(s,y) ≤ k} in ascending id order.
func (e *Engine) ReverseBall(y uint32, k int, fn func(s uint32, d shortest.Dist) bool) {
	e.cachedBall(y, k, true, fn)
}

// cachedBall serves a ball query from the materialised row cache,
// building the full-horizon stitched row on a miss. Map lookups and
// installs happen under cacheMu so concurrent readers of one frozen
// engine state stay safe; the row build itself is a pure read and runs
// unlocked (two goroutines missing on the same source build identical
// rows, and the second install is a no-op overwrite).
func (e *Engine) cachedBall(x uint32, k int, reverse bool, fn func(v uint32, d shortest.Dist) bool) {
	if k < 0 || !e.oracleAlive(x) {
		return
	}
	cache := &e.fwdCache
	if reverse {
		cache = &e.revCache
	}
	e.cacheMu.Lock()
	row, ok := (*cache)[x]
	e.cacheMu.Unlock()
	if !ok {
		row = e.buildRow(x, reverse)
		e.cacheMu.Lock()
		if *cache == nil {
			*cache = make(map[uint32][]ballEntry)
		}
		(*cache)[x] = row
		e.cacheMu.Unlock()
	}
	for _, en := range row {
		if int(en.d) <= k {
			if !fn(en.id, en.d) {
				return
			}
		}
	}
}

// buildRow materialises the full-horizon row of x for the cache. By
// default the row comes from a bounded BFS over the data graph — exact,
// and the cheapest way to materialise one row of the capped SLen.
// WithStitchedQueries switches to assembling the row from the §V
// structures (intra distances + bridge overlay); the two agree entry for
// entry (enforced by tests), the stitched path being what Dist uses for
// point queries either way. buildRow only reads shared state (scratch is
// pooled), so rows for distinct sources assemble concurrently.
func (e *Engine) buildRow(x uint32, reverse bool) []ballEntry {
	if e.stitched {
		var row []ballEntry
		e.ballInto(x, e.capHops(), reverse, func(v uint32, d shortest.Dist) bool {
			row = append(row, ballEntry{v, d})
			return true
		})
		return row
	}
	gb := e.gballPool.Get().(*shortest.GraphBall)
	cols, dists := gb.Row(e.part.g, x, e.horizon, reverse) // horizon 0 = unbounded
	row := make([]ballEntry, len(cols))
	for i, c := range cols {
		row[i] = ballEntry{c, dists[i]}
	}
	e.gballPool.Put(gb)
	return row
}

// prefetchRows materialises the reverse rows of every live id into the
// cache, assembling cache-miss rows across the worker pool. The
// amendment pass that follows a batch queries exactly these rows — its
// cascade closure starts from the change log and asks ReverseBall for
// every member — so pre-warming converts its serial on-demand row
// builds into one parallel sweep. Forward rows stay lazy: only the
// change-log nodes that are also label candidates get forward queries,
// so warming them would be speculative work.
func (e *Engine) prefetchRows(ids nodeset.Set) {
	if e.workers <= 1 || len(ids) < 2 {
		return // lazy path: serial engines build rows on demand, as before
	}
	live := make([]uint32, 0, len(ids))
	for _, x := range ids {
		if e.oracleAlive(x) {
			live = append(live, x)
		}
	}
	n := len(live)
	if n == 0 {
		return
	}
	rows := make([][]ballEntry, n)
	parallelFor(e.workers, n, func(i int) {
		rows[i] = e.buildRow(live[i], true)
	})
	e.cacheMu.Lock()
	if e.revCache == nil {
		e.revCache = make(map[uint32][]ballEntry, n)
	}
	for i, x := range live {
		e.revCache[x] = rows[i]
	}
	e.cacheMu.Unlock()
}

// ballScratch is epoch-stamped scratch for stitched ball queries:
// visiting is O(touched), not O(|N|), with no per-call maps. Instances
// are pooled so concurrent stitched-row builds never share one.
type ballScratch struct {
	dist  []shortest.Dist
	stamp []uint32
	epoch uint32
	ids   []uint32
}

func (s *ballScratch) begin(n int) {
	for len(s.dist) < n {
		s.dist = append(s.dist, 0)
		s.stamp = append(s.stamp, 0)
	}
	s.epoch++
	s.ids = s.ids[:0]
}

func (s *ballScratch) merge(id uint32, d shortest.Dist) {
	if int(id) >= len(s.stamp) {
		grow := int(id) + 1 - len(s.stamp)
		s.dist = append(s.dist, make([]shortest.Dist, grow)...)
		s.stamp = append(s.stamp, make([]uint32, grow)...)
	}
	if s.stamp[id] != s.epoch {
		s.stamp[id] = s.epoch
		s.dist[id] = d
		s.ids = append(s.ids, id)
	} else if d < s.dist[id] {
		s.dist[id] = d
	}
}

func (e *Engine) ballInto(x uint32, k int, reverse bool, fn func(v uint32, d shortest.Dist) bool) {
	if !e.oracleAlive(x) || k < 0 {
		return
	}
	if e.horizon != 0 && k > e.horizon {
		k = e.horizon
	}
	sc := e.ballPool.Get().(*ballScratch)
	sc.begin(e.part.g.NumIDs())
	merge := sc.merge
	// Intra segment.
	pi := e.part.partIndex(x)
	pt := e.part.parts[pi]
	intraBall := pt.eng.ForwardBall
	if reverse {
		intraBall = pt.eng.ReverseBall
	}
	intraBall(e.part.localOf[x], k, func(local uint32, d shortest.Dist) bool {
		merge(pt.globals[local], d)
		return true
	})
	// Overlay-mediated segments.
	bridgesNear := e.exitsOf
	ovRow := e.ov.fwd
	farEnd := e.part.isEntry
	if reverse {
		bridgesNear = e.entriesTo
		ovRow = e.ov.rev
		farEnd = e.part.isExit
	}
	bridgesNear(x, k-1, func(u uint32, du shortest.Dist) {
		ovRow.Row(u, func(b uint32, dov shortest.Dist) bool {
			rem := k - int(du) - int(dov)
			if rem < 0 || !farEnd(b) {
				return true
			}
			bp := e.part.parts[e.part.partIndex(b)]
			farBall := bp.eng.ForwardBall
			if reverse {
				farBall = bp.eng.ReverseBall
			}
			farBall(e.part.localOf[b], rem, func(local uint32, d shortest.Dist) bool {
				merge(bp.globals[local], du+dov+d)
				return true
			})
			return true
		})
	})
	// Snapshot before emitting, releasing the scratch first: callbacks may
	// issue nested ball queries (the elimination cascade does), and the
	// snapshot keeps them from observing a half-consumed scratch.
	out := make([]ballEntry, len(sc.ids))
	for i, id := range sc.ids {
		out[i] = ballEntry{id, sc.dist[id]}
	}
	e.ballPool.Put(sc)
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	for _, en := range out {
		if !fn(en.id, en.d) {
			return
		}
	}
}

type ballEntry struct {
	id uint32
	d  shortest.Dist
}

// conservativeEdgeAffected is the ball superset used as the affected set
// of an edge update: everything that reaches u within H-1 plus everything
// within H-1 of v (plus the endpoints). For insertions these balls are
// identical before and after the update (a new path to u via (u,v) would
// cycle through u), so one formula serves preview and apply; for
// deletions they are evaluated in the pre-delete state, which covers
// every pair whose old shortest path used the edge. The balls come from
// a direct BFS over the data graph — the graph always reflects the same
// state as the oracle, and adjacency BFS is far cheaper than stitching.
// Read-only, with pooled scratch: safe to evaluate for many updates
// concurrently.
func (e *Engine) conservativeEdgeAffected(u, v uint32) nodeset.Set {
	H := e.capHops()
	gb := e.gballPool.Get().(*shortest.GraphBall)
	var b nodeset.Builder
	b.Add(u)
	b.Add(v)
	for _, x := range gb.Ball(e.part.g, u, H-1, true) {
		b.Add(x)
	}
	for _, y := range gb.Ball(e.part.g, v, H-1, false) {
		b.Add(y)
	}
	e.gballPool.Put(gb)
	return b.Set()
}

// PreviewInsertEdge returns the affected superset for inserting (u,v)
// without mutating anything.
func (e *Engine) PreviewInsertEdge(u, v uint32) nodeset.Set {
	return e.conservativeEdgeAffected(u, v)
}

// InsertEdge synchronises the substrate after edge (u,v) was added to
// the graph and returns the affected superset.
func (e *Engine) InsertEdge(u, v uint32) nodeset.Set {
	var dirty nodeset.Builder
	e.insertEdgeStructural(u, v, &dirty)
	if dirty.Len() > 0 {
		e.ov.recompute(dirty.Set(), e.workers)
	}
	e.invalidate()
	return e.conservativeEdgeAffected(u, v)
}

// insertEdgeStructural records edge (u,v) in the partition structures
// (the graph must already contain it), accumulating dirty overlay
// anchors without reconciling the overlay.
func (e *Engine) insertEdgeStructural(u, v uint32, dirty *nodeset.Builder) {
	pu, pv := e.part.partIndex(u), e.part.partIndex(v)
	if pu == pv {
		pt := e.part.parts[pu]
		lu, lv := e.part.localOf[u], e.part.localOf[v]
		pt.sub.AddEdge(lu, lv)
		intraAff := pt.eng.InsertEdge(lu, lv)
		e.dirtyBridges(pt, intraAff, dirty)
	} else {
		e.part.noteCross(u, v, +1)
		dirty.Add(u)
		dirty.Add(v)
	}
}

// dirtyBridges translates a partition-local affected set into the global
// bridge nodes whose overlay rows must be refreshed.
func (e *Engine) dirtyBridges(pt *part, localAff nodeset.Set, dirty *nodeset.Builder) {
	for _, local := range localAff {
		gid := pt.globals[local]
		if e.part.isOverlay(gid) {
			dirty.Add(gid)
		}
	}
}

// PreviewDeleteEdge returns the affected superset for deleting (u,v)
// without mutating anything (the graph must still contain the edge).
func (e *Engine) PreviewDeleteEdge(u, v uint32) nodeset.Set {
	return e.conservativeEdgeAffected(u, v)
}

// DeleteEdge synchronises the substrate after edge (u,v) was removed
// from the graph and returns the affected superset (evaluated in the
// pre-delete state).
func (e *Engine) DeleteEdge(u, v uint32) nodeset.Set {
	aff := e.conservativeEdgeAffected(u, v)
	var dirty nodeset.Builder
	e.deleteEdgeStructural(u, v, &dirty)
	e.ov.recompute(dirty.Set(), e.workers)
	e.invalidate()
	return aff
}

// deleteEdgeStructural removes edge (u,v) from the partition structures
// (the graph must already have dropped it), accumulating dirty anchors.
func (e *Engine) deleteEdgeStructural(u, v uint32, dirty *nodeset.Builder) {
	pu, pv := e.part.partIndex(u), e.part.partIndex(v)
	if pu == pv {
		pt := e.part.parts[pu]
		lu, lv := e.part.localOf[u], e.part.localOf[v]
		pt.sub.RemoveEdge(lu, lv)
		intraAff := pt.eng.DeleteEdge(lu, lv)
		e.dirtyBridges(pt, intraAff, dirty)
		dirty.Add(u)
		dirty.Add(v)
	} else {
		e.part.noteCross(u, v, -1)
		dirty.Add(u)
		dirty.Add(v)
	}
}

// InsertNode registers a freshly added (isolated) node.
func (e *Engine) InsertNode(id uint32) nodeset.Set {
	e.insertNodeStructural(id)
	e.invalidate()
	return nodeset.New(id)
}

func (e *Engine) insertNodeStructural(id uint32) {
	pi := e.part.addToPart(id)
	pt := e.part.parts[pi]
	if pt.eng == nil {
		pt.eng = e.part.newSubEngine(pt.sub, 1) // fresh partition: one node
		pt.eng.Build()
	} else {
		pt.eng.InsertNode(e.part.localOf[id])
	}
}

// PreviewDeleteNode returns the affected superset for deleting node id
// (the graph must still contain it).
func (e *Engine) PreviewDeleteNode(id uint32) nodeset.Set {
	return e.nodeAffected(id, e.part.g.Out(id), e.part.g.In(id))
}

// nodeAffected is read-only with pooled scratch, like
// conservativeEdgeAffected.
func (e *Engine) nodeAffected(id uint32, outs, ins []uint32) nodeset.Set {
	H := e.capHops()
	g := e.part.g
	gb := e.gballPool.Get().(*shortest.GraphBall)
	var b nodeset.Builder
	b.Add(id)
	for _, y := range gb.Ball(g, id, H, false) {
		b.Add(y)
	}
	for _, x := range gb.Ball(g, id, H, true) {
		b.Add(x)
	}
	for _, v := range outs {
		for _, y := range gb.Ball(g, v, H-1, false) {
			b.Add(y)
		}
	}
	for _, u := range ins {
		for _, x := range gb.Ball(g, u, H-1, true) {
			b.Add(x)
		}
	}
	e.gballPool.Put(gb)
	return b.Set()
}

// DeleteNode synchronises the substrate after node id (with incident
// edges removed, as returned by graph.RemoveNode) was deleted.
func (e *Engine) DeleteNode(id uint32, removed []graph.Edge) nodeset.Set {
	var outs, ins []uint32
	for _, ed := range removed {
		if ed.From == id {
			outs = append(outs, ed.To)
		} else {
			ins = append(ins, ed.From)
		}
	}
	aff := e.nodeAffected(id, outs, ins)
	var dirty nodeset.Builder
	e.deleteNodeStructural(id, removed, &dirty)
	e.ov.recompute(dirty.Set(), e.workers)
	e.invalidate()
	return aff
}

// deleteNodeStructural removes node id from the partition structures
// (the graph must already have dropped it and its incident edges,
// passed as removed), accumulating dirty anchors.
func (e *Engine) deleteNodeStructural(id uint32, removed []graph.Edge, dirty *nodeset.Builder) {
	pi := e.part.partIndex(id)
	pt := e.part.parts[pi]
	dirty.Add(id)
	for _, ed := range removed {
		if e.part.partIndex(ed.From) == e.part.partIndex(ed.To) {
			continue // intra edges fall with RemoveNode below
		}
		e.part.noteCross(ed.From, ed.To, -1)
		dirty.Add(ed.From)
		dirty.Add(ed.To)
	}
	local := e.part.localOf[id]
	removedLocal, _ := pt.sub.RemoveNode(local)
	intraAff := pt.eng.DeleteNode(local, removedLocal)
	e.dirtyBridges(pt, intraAff, dirty)
	e.part.partOf[id] = none
}

// EnsureHorizon widens a capped engine to cover bound k, rebuilding the
// per-partition engines in parallel.
func (e *Engine) EnsureHorizon(k int) {
	if e.horizon == 0 || k <= e.horizon {
		return
	}
	e.horizon = k
	e.part.horizon = k
	parallelFor(e.workers, len(e.part.parts), func(i int) {
		e.part.parts[i].eng.EnsureHorizon(k)
	})
	e.ov.build(e.workers)
	e.invalidate()
}

// CloneFor returns an independent copy of the engine operating on g2,
// a clone of the engine's graph.
func (e *Engine) CloneFor(g2 *graph.Graph) shortest.DistanceEngine {
	c := &Engine{
		horizon:        e.horizon,
		denseThreshold: e.denseThreshold,
		ellWidth:       e.ellWidth,
		stitched:       e.stitched,
		workers:        e.workers,
	}
	c.initPools()
	p := e.part
	cp := &Partitioning{
		g:              g2,
		horizon:        p.horizon,
		partOf:         append([]int32(nil), p.partOf...),
		localOf:        append([]uint32(nil), p.localOf...),
		byLabel:        make(map[graph.LabelID]int32, len(p.byLabel)),
		crossOut:       append([]int32(nil), p.crossOut...),
		crossIn:        append([]int32(nil), p.crossIn...),
		denseThreshold: p.denseThreshold,
		ellWidth:       p.ellWidth,
	}
	for k, v := range p.byLabel {
		cp.byLabel[k] = v
	}
	for _, pt := range p.parts {
		sub := pt.sub.Clone()
		cp.parts = append(cp.parts, &part{
			label:   pt.label,
			sub:     sub,
			eng:     pt.eng.Clone(sub),
			globals: append([]uint32(nil), pt.globals...),
			exits:   append([]uint32(nil), pt.exits...),
			entries: append([]uint32(nil), pt.entries...),
		})
	}
	c.part = cp
	c.ov = newOverlay(cp)
	c.ov.fwd = e.ov.fwd.Clone()
	c.ov.rev = e.ov.rev.Clone()
	return c
}

// compile-time interface check
var _ shortest.DistanceEngine = (*Engine)(nil)
