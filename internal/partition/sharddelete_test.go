package partition

import (
	"net/http/httptest"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// shardLayouts builds one engine per shard layout over clones of g:
// the single in-process shard (monolith), a 3-way in-process split and
// a 2-worker RPC fleet over httptest HTTP. Every layout must behave
// identically; these tests drive the delete paths the differential
// suite only hits incidentally.
func shardLayouts(t testing.TB, g *graph.Graph, horizon int) map[string]struct {
	g *graph.Graph
	e *Engine
} {
	t.Helper()
	rpc := func() []Option {
		shs := make([]shard.Shard, 2)
		for i := range shs {
			ts := httptest.NewServer(shard.NewServer().Handler())
			t.Cleanup(ts.Close)
			shs[i] = shard.Dial(ts.URL)
		}
		return []Option{WithShards(shs...)}
	}
	out := make(map[string]struct {
		g *graph.Graph
		e *Engine
	})
	for name, opts := range map[string]func() []Option{
		"mono":   func() []Option { return nil },
		"local3": func() []Option { return []Option{WithLocalShards(3)} },
		"rpc2":   rpc,
	} {
		g2 := g.Clone()
		e := NewEngine(g2, horizon, opts()...)
		e.Build()
		out[name] = struct {
			g *graph.Graph
			e *Engine
		}{g2, e}
	}
	return out
}

// TestBridgeNodeDeletedMidBatch deletes bridge nodes in the middle of a
// batch — an exit (SE2) whose removal rewires the overlay, sandwiched
// between updates that depend on the partition bookkeeping staying
// coherent — and checks the full oracle against a fresh global engine,
// for every shard layout.
func TestBridgeNodeDeletedMidBatch(t *testing.T) {
	base, ids := fig4Graph()
	for name, lay := range shardLayouts(t, base, 0) {
		g, e := lay.g, lay.e
		batch := []updates.Update{
			{Kind: updates.DataEdgeInsert, From: ids["TE3"], To: ids["TE1"]},
			// SE2 is an inner bridge node of PSE (cross edge SE2→TE1):
			// deleting it mid-batch drops intra rows, bridge status and
			// overlay anchors at once.
			{Kind: updates.DataNodeDelete, Node: ids["SE2"]},
			{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["SE3"]},
			{Kind: updates.DataNodeInsert, Node: uint32(g.NumIDs()), Labels: []string{"SE"}},
			{Kind: updates.DataEdgeInsert, From: uint32(g.NumIDs()), To: ids["SE1"]},
		}
		_, changeLog, _ := e.ApplyDataBatch(batch, g)
		if len(changeLog) == 0 {
			t.Fatalf("%s: empty change log for a destructive batch", name)
		}
		assertOracleAgrees(t, e, g, 0, -100)
		if e.oracleAlive(ids["SE2"]) {
			t.Fatalf("%s: deleted bridge node still alive in the oracle", name)
		}
	}
}

// TestDeleteNodeEmptiesShardPartition removes the only member of a
// partition (PM1) through the per-update API, leaving its shard-hosted
// engine empty, then repopulates the same partition with a fresh node —
// the addToPart fast path that reuses the existing (empty) partition
// and its shard assignment.
func TestDeleteNodeEmptiesShardPartition(t *testing.T) {
	base, ids := fig4Graph()
	for name, lay := range shardLayouts(t, base, 0) {
		g, e := lay.g, lay.e
		removed, ok := g.RemoveNode(ids["PM1"])
		if !ok {
			t.Fatalf("%s: PM1 missing", name)
		}
		aff := e.DeleteNode(ids["PM1"], removed)
		if !aff.Contains(ids["SE4"]) || !aff.Contains(ids["SE1"]) {
			t.Fatalf("%s: DeleteNode affected set %v misses the bridge neighbourhood", name, aff)
		}
		assertOracleAgrees(t, e, g, 0, -101)

		// Repopulate the now-empty PM partition and wire it back in.
		pm2 := g.AddNode("PM")
		e.InsertNode(pm2)
		g.AddEdge(ids["SE1"], pm2)
		e.InsertEdge(ids["SE1"], pm2)
		g.AddEdge(pm2, ids["SE4"])
		e.InsertEdge(pm2, ids["SE4"])
		assertOracleAgrees(t, e, g, 0, -102)
		if d := e.Dist(ids["SE1"], ids["SE4"]); d != 2 {
			t.Fatalf("%s: d(SE1,SE4) through the repopulated partition = %v, want 2", name, d)
		}
	}
}

// TestDirtyBridgesIntraDeletion pins the dirtyBridges path: deleting an
// intra-partition edge that lengthens a bridge node's intra distances
// must propagate through the shard's local affected set into the
// overlay, changing cross-partition distances accordingly.
func TestDirtyBridgesIntraDeletion(t *testing.T) {
	base, ids := fig4Graph()
	for name, lay := range shardLayouts(t, base, 0) {
		g, e := lay.g, lay.e
		// Before: SE1 →(intra) SE2 →(cross) TE1, so d(SE1,TE1) = 2.
		if d := e.Dist(ids["SE1"], ids["TE1"]); d != 2 {
			t.Fatalf("%s: pre-state d(SE1,TE1) = %v, want 2", name, d)
		}
		// Deleting intra edge SE1→SE2 only touches PSE's shard engine;
		// the overlay hears about it exclusively via dirtyBridges
		// translating the shard's local affected set (SE1 and SE2 are
		// both bridge nodes whose entry→exit hop just vanished).
		g.RemoveEdge(ids["SE1"], ids["SE2"])
		e.DeleteEdge(ids["SE1"], ids["SE2"])
		if d := e.Dist(ids["SE1"], ids["TE1"]); d != shortest.Inf {
			t.Fatalf("%s: post-state d(SE1,TE1) = %v, want Inf", name, d)
		}
		assertOracleAgrees(t, e, g, 0, -103)
	}
}

// TestBatchEmptiesWholePartition drives ApplyDataBatch until one
// partition has no live members left and the batch also rewired other
// partitions — the "shard left empty" regression: stitched queries and
// the overlay must cope with a partition whose engine holds only
// tombstones.
func TestBatchEmptiesWholePartition(t *testing.T) {
	base, ids := fig4Graph()
	for name, lay := range shardLayouts(t, base, 0) {
		g, e := lay.g, lay.e
		batch := []updates.Update{
			{Kind: updates.DataNodeDelete, Node: ids["TE1"]},
			{Kind: updates.DataEdgeInsert, From: ids["SE4"], To: ids["SE1"]},
			{Kind: updates.DataNodeDelete, Node: ids["TE2"]},
			{Kind: updates.DataNodeDelete, Node: ids["TE3"]},
		}
		_, _, _ = e.ApplyDataBatch(batch, g)
		assertOracleAgrees(t, e, g, 0, -104)
		for _, n := range []string{"TE1", "TE2", "TE3"} {
			if e.oracleAlive(ids[n]) {
				t.Fatalf("%s: %s survived the partition-emptying batch", name, n)
			}
		}
		// The emptied partition's label must accept new members again.
		te := g.AddNode("TE")
		e.InsertNode(te)
		g.AddEdge(ids["SE2"], te)
		e.InsertEdge(ids["SE2"], te)
		assertOracleAgrees(t, e, g, 0, -105)
		if d := e.Dist(ids["SE1"], te); d != 2 {
			t.Fatalf("%s: d(SE1, new TE) = %v, want 2", name, d)
		}
	}
}
