package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"uagpnm/internal/graph"
)

// This file implements the textual pattern format used by the CLI and
// the examples. The pattern of Fig. 1(b) reads:
//
//	# An IT project team
//	node pm PM
//	node se SE
//	node te TE
//	node s  S
//	edge pm se 3
//	edge pm s  4
//	edge se te 3
//	edge s  te *
//
// "node <name> <label>" declares a pattern node; "edge <from> <to> <bound>"
// declares an edge whose bound is a positive integer or "*".

// Parse reads a pattern in the textual format. Node names must be unique
// within the pattern; edges may reference only declared nodes.
func Parse(r io.Reader, labels *graph.Labels) (*Graph, error) {
	p := New(labels)
	byName := make(map[string]NodeID)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "node":
			if len(fields) != 3 {
				return nil, fmt.Errorf("pattern: line %d: want \"node <name> <label>\", got %q", line, text)
			}
			name := fields[1]
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("pattern: line %d: duplicate node %q", line, name)
			}
			byName[name] = p.AddNamedNode(name, fields[2])
		case "edge":
			if len(fields) != 4 {
				return nil, fmt.Errorf("pattern: line %d: want \"edge <from> <to> <bound>\", got %q", line, text)
			}
			from, ok := byName[fields[1]]
			if !ok {
				return nil, fmt.Errorf("pattern: line %d: unknown node %q", line, fields[1])
			}
			to, ok := byName[fields[2]]
			if !ok {
				return nil, fmt.Errorf("pattern: line %d: unknown node %q", line, fields[2])
			}
			b, err := ParseBound(fields[3])
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: %v", line, err)
			}
			if !p.AddEdge(from, to, b) {
				return nil, fmt.Errorf("pattern: line %d: edge %s->%s rejected (duplicate or self loop)",
					line, fields[1], fields[2])
			}
		default:
			return nil, fmt.Errorf("pattern: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pattern: reading: %v", err)
	}
	return p, nil
}

// ParseBound parses "3" or "*" into a Bound.
func ParseBound(s string) (Bound, error) {
	if s == "*" {
		return Star, nil
	}
	k, err := strconv.Atoi(s)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("bound must be a positive integer or \"*\", got %q", s)
	}
	return Bound(k), nil
}

// Format writes the pattern in the textual format, one directive per line.
func (p *Graph) Format(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pattern: %d nodes, %d edges\n", p.NumNodes(), p.NumEdges())
	var err error
	p.Nodes(func(id NodeID) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "node %s %s\n", p.names[id], p.LabelName(id))
		}
	})
	p.Edges(func(e Edge) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "edge %s %s %s\n", p.names[e.From], p.names[e.To], e.B)
		}
	})
	if err != nil {
		return fmt.Errorf("pattern: formatting: %v", err)
	}
	return bw.Flush()
}

// String renders the pattern in the textual format.
func (p *Graph) String() string {
	var b strings.Builder
	_ = p.Format(&b)
	return b.String()
}
