// Package pattern implements the pattern graph GP of the paper: a small
// directed graph whose nodes carry a single label fv(u) (e.g. a job
// title) and whose edges carry a bounded path length fe(u,u') — either a
// positive integer k, constraining matches to pairs within k hops in the
// data graph, or the symbol "*", meaning any finite path length
// (reachability).
//
// Pattern graphs are updated by the same four operations as data graphs
// (edge/node × insert/delete); like the data graph, node ids stay stable
// under deletion so that update logs and candidate sets remain valid.
package pattern

import (
	"fmt"
	"sort"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
)

// NodeID identifies a pattern node. Pattern graphs are small (the paper
// uses 6–10 nodes), but ids share the uint32 width of data-graph ids for
// uniformity.
type NodeID = nodeset.ID

// Bound is the bounded path length on a pattern edge: a positive hop
// count, or Star for "*" (no length constraint beyond reachability).
type Bound int32

// Star is the "*" bound: any finite path length matches.
const Star Bound = -1

// IsStar reports whether b is the "*" bound.
func (b Bound) IsStar() bool { return b < 0 }

// Valid reports whether b is Star or a positive hop count.
func (b Bound) Valid() bool { return b == Star || b >= 1 }

// String renders the bound as the paper writes it: "3" or "*".
func (b Bound) String() string {
	if b.IsStar() {
		return "*"
	}
	return fmt.Sprintf("%d", int32(b))
}

// Edge is a directed pattern edge with its bound.
type Edge struct {
	From, To NodeID
	B        Bound
}

// String renders the edge as "u-(3)->v".
func (e Edge) String() string { return fmt.Sprintf("%d-(%s)->%d", e.From, e.B, e.To) }

type halfEdge struct {
	to NodeID
	b  Bound
}

// Graph is a mutable pattern graph. Construct with New; the zero value is
// unusable. Not safe for concurrent mutation.
type Graph struct {
	labels *graph.Labels
	names  []string        // display name per node (defaults to label name)
	label  []graph.LabelID // fv(u)
	alive  []bool
	out    [][]halfEdge // sorted by target id
	in     [][]halfEdge
	nAlive int
	nEdges int
}

// New returns an empty pattern graph over the given label table (shared
// with the data graph so label ids align; a fresh table is created when
// labels is nil).
func New(labels *graph.Labels) *Graph {
	if labels == nil {
		labels = graph.NewLabels()
	}
	return &Graph{labels: labels}
}

// Labels exposes the pattern's label table.
func (p *Graph) Labels() *graph.Labels { return p.labels }

// NumIDs reports the id-space bound (tombstones included).
func (p *Graph) NumIDs() int { return len(p.label) }

// NumNodes reports the number of alive pattern nodes.
func (p *Graph) NumNodes() int { return p.nAlive }

// NumEdges reports the number of pattern edges.
func (p *Graph) NumEdges() int { return p.nEdges }

// Alive reports whether id names a live pattern node.
func (p *Graph) Alive(id NodeID) bool {
	return int(id) < len(p.alive) && p.alive[id]
}

// AddNode creates a pattern node labelled labelName and returns its id.
// The display name defaults to the label name; see AddNamedNode.
func (p *Graph) AddNode(labelName string) NodeID {
	return p.AddNamedNode(labelName, labelName)
}

// AddNamedNode creates a pattern node with an explicit display name
// (useful when two pattern nodes share one label, e.g. two SE roles).
func (p *Graph) AddNamedNode(name, labelName string) NodeID {
	id := NodeID(len(p.label))
	p.label = append(p.label, p.labels.Intern(labelName))
	p.names = append(p.names, name)
	p.alive = append(p.alive, true)
	p.out = append(p.out, nil)
	p.in = append(p.in, nil)
	p.nAlive++
	return id
}

// RemoveNode deletes id with its incident edges, returning those edges.
func (p *Graph) RemoveNode(id NodeID) (removed []Edge, ok bool) {
	if !p.Alive(id) {
		return nil, false
	}
	for _, he := range append([]halfEdge(nil), p.out[id]...) {
		p.RemoveEdge(id, he.to)
		removed = append(removed, Edge{id, he.to, he.b})
	}
	for _, he := range append([]halfEdge(nil), p.in[id]...) {
		b, _ := p.EdgeBound(he.to, id)
		p.RemoveEdge(he.to, id)
		removed = append(removed, Edge{he.to, id, b})
	}
	p.alive[id] = false
	p.nAlive--
	return removed, true
}

// AddEdge inserts u-(b)->v. It reports false when the edge exists, the
// bound is invalid, u == v, or either endpoint is dead.
func (p *Graph) AddEdge(u, v NodeID, b Bound) bool {
	if u == v || !b.Valid() || !p.Alive(u) || !p.Alive(v) {
		return false
	}
	if _, dup := p.EdgeBound(u, v); dup {
		return false
	}
	p.out[u] = insertHalf(p.out[u], halfEdge{v, b})
	p.in[v] = insertHalf(p.in[v], halfEdge{u, b})
	p.nEdges++
	return true
}

// RemoveEdge deletes u->v, returning its bound and whether it existed.
func (p *Graph) RemoveEdge(u, v NodeID) (Bound, bool) {
	b, ok := p.EdgeBound(u, v)
	if !ok {
		return 0, false
	}
	p.out[u] = removeHalf(p.out[u], v)
	p.in[v] = removeHalf(p.in[v], u)
	p.nEdges--
	return b, true
}

// EdgeBound returns the bound of edge u->v and whether the edge exists.
func (p *Graph) EdgeBound(u, v NodeID) (Bound, bool) {
	if int(u) >= len(p.out) {
		return 0, false
	}
	hs := p.out[u]
	i := sort.Search(len(hs), func(i int) bool { return hs[i].to >= v })
	if i < len(hs) && hs[i].to == v {
		return hs[i].b, true
	}
	return 0, false
}

// Label returns fv(id).
func (p *Graph) Label(id NodeID) graph.LabelID { return p.label[id] }

// Name returns the display name of id.
func (p *Graph) Name(id NodeID) string { return p.names[id] }

// LabelName returns the label string of id.
func (p *Graph) LabelName(id NodeID) string { return p.labels.Name(p.label[id]) }

// Out calls fn for each out-edge of u in ascending target order.
func (p *Graph) Out(u NodeID, fn func(v NodeID, b Bound)) {
	if int(u) >= len(p.out) {
		return
	}
	for _, he := range p.out[u] {
		fn(he.to, he.b)
	}
}

// In calls fn for each in-edge of u in ascending source order.
func (p *Graph) In(u NodeID, fn func(v NodeID, b Bound)) {
	if int(u) >= len(p.in) {
		return
	}
	for _, he := range p.in[u] {
		fn(he.to, he.b)
	}
}

// OutDegree reports the number of out-edges of u.
func (p *Graph) OutDegree(u NodeID) int {
	if int(u) >= len(p.out) {
		return 0
	}
	return len(p.out[u])
}

// Nodes calls fn for every alive pattern node in ascending id order.
func (p *Graph) Nodes(fn func(NodeID)) {
	for id := range p.alive {
		if p.alive[id] {
			fn(NodeID(id))
		}
	}
}

// Edges calls fn for every pattern edge in ascending (from, to) order.
func (p *Graph) Edges(fn func(Edge)) {
	for u := range p.out {
		if !p.alive[u] {
			continue
		}
		for _, he := range p.out[u] {
			fn(Edge{NodeID(u), he.to, he.b})
		}
	}
}

// MaxFiniteBound returns the largest integer bound on any edge (0 when
// there are none). The SLen engines cap their hop horizon at this value.
func (p *Graph) MaxFiniteBound() int {
	max := 0
	p.Edges(func(e Edge) {
		if !e.B.IsStar() && int(e.B) > max {
			max = int(e.B)
		}
	})
	return max
}

// HasStar reports whether any edge carries the "*" bound.
func (p *Graph) HasStar() bool {
	star := false
	p.Edges(func(e Edge) { star = star || e.B.IsStar() })
	return star
}

// Clone returns a deep copy sharing the label table.
func (p *Graph) Clone() *Graph {
	c := &Graph{
		labels: p.labels,
		names:  append([]string(nil), p.names...),
		label:  append([]graph.LabelID(nil), p.label...),
		alive:  append([]bool(nil), p.alive...),
		out:    make([][]halfEdge, len(p.out)),
		in:     make([][]halfEdge, len(p.in)),
		nAlive: p.nAlive,
		nEdges: p.nEdges,
	}
	for i := range p.out {
		c.out[i] = append([]halfEdge(nil), p.out[i]...)
		c.in[i] = append([]halfEdge(nil), p.in[i]...)
	}
	return c
}

// Validate checks structural sanity: bounds valid, adjacency mirrored,
// and no edges touching dead nodes. It returns the first problem found.
func (p *Graph) Validate() error {
	for u := range p.out {
		if !p.alive[u] {
			if len(p.out[u]) != 0 || len(p.in[u]) != 0 {
				return fmt.Errorf("pattern: dead node %d has edges", u)
			}
			continue
		}
		for _, he := range p.out[u] {
			if !he.b.Valid() {
				return fmt.Errorf("pattern: edge %d->%d has invalid bound %d", u, he.to, he.b)
			}
			if !p.Alive(he.to) {
				return fmt.Errorf("pattern: edge %d->%d targets dead node", u, he.to)
			}
			if b, ok := p.EdgeBound(NodeID(u), he.to); !ok || b != he.b {
				return fmt.Errorf("pattern: edge %d->%d not mirrored", u, he.to)
			}
		}
	}
	return nil
}

func insertHalf(hs []halfEdge, he halfEdge) []halfEdge {
	i := sort.Search(len(hs), func(i int) bool { return hs[i].to >= he.to })
	hs = append(hs, halfEdge{})
	copy(hs[i+1:], hs[i:])
	hs[i] = he
	return hs
}

func removeHalf(hs []halfEdge, to NodeID) []halfEdge {
	i := sort.Search(len(hs), func(i int) bool { return hs[i].to >= to })
	if i < len(hs) && hs[i].to == to {
		return append(hs[:i], hs[i+1:]...)
	}
	return hs
}
