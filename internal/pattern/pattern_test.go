package pattern

import (
	"strings"
	"testing"
)

func TestBound(t *testing.T) {
	if !Star.IsStar() || Bound(3).IsStar() {
		t.Fatal("IsStar wrong")
	}
	if !Star.Valid() || !Bound(1).Valid() || Bound(0).Valid() || Bound(-2).Valid() {
		t.Fatal("Valid wrong")
	}
	if Star.String() != "*" || Bound(4).String() != "4" {
		t.Fatal("String wrong")
	}
}

func TestAddRemoveEdge(t *testing.T) {
	p := New(nil)
	a, b := p.AddNode("PM"), p.AddNode("SE")
	if !p.AddEdge(a, b, 3) {
		t.Fatal("fresh edge should insert")
	}
	if p.AddEdge(a, b, 2) {
		t.Fatal("duplicate edge should be rejected")
	}
	if p.AddEdge(a, a, 1) {
		t.Fatal("self loop should be rejected")
	}
	if p.AddEdge(a, b, 0) {
		t.Fatal("invalid bound should be rejected")
	}
	if bound, ok := p.EdgeBound(a, b); !ok || bound != 3 {
		t.Fatalf("EdgeBound = %v,%v", bound, ok)
	}
	if bound, ok := p.RemoveEdge(a, b); !ok || bound != 3 {
		t.Fatalf("RemoveEdge = %v,%v", bound, ok)
	}
	if _, ok := p.RemoveEdge(a, b); ok {
		t.Fatal("double remove should fail")
	}
	if p.NumEdges() != 0 {
		t.Fatal("edge count wrong")
	}
}

func TestRemoveNode(t *testing.T) {
	p := New(nil)
	a, b, c := p.AddNode("A"), p.AddNode("B"), p.AddNode("C")
	p.AddEdge(a, b, 1)
	p.AddEdge(c, b, 2)
	removed, ok := p.RemoveNode(b)
	if !ok || len(removed) != 2 {
		t.Fatalf("RemoveNode: ok=%v removed=%v", ok, removed)
	}
	if p.Alive(b) || p.NumNodes() != 2 || p.NumEdges() != 0 {
		t.Fatal("state after RemoveNode wrong")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Bounds travel with the removed edges (needed for undo).
	for _, e := range removed {
		if e.From == c && e.B != 2 {
			t.Fatalf("removed edge lost its bound: %v", e)
		}
	}
}

func TestMaxFiniteBoundAndStar(t *testing.T) {
	p := New(nil)
	a, b, c := p.AddNode("A"), p.AddNode("B"), p.AddNode("C")
	p.AddEdge(a, b, 2)
	p.AddEdge(b, c, 5)
	if p.MaxFiniteBound() != 5 || p.HasStar() {
		t.Fatal("bound scan wrong")
	}
	p.AddEdge(a, c, Star)
	if p.MaxFiniteBound() != 5 || !p.HasStar() {
		t.Fatal("star scan wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(nil)
	a, b := p.AddNode("A"), p.AddNode("B")
	p.AddEdge(a, b, 2)
	c := p.Clone()
	c.RemoveEdge(a, b)
	c.AddNode("C")
	if _, ok := p.EdgeBound(a, b); !ok {
		t.Fatal("clone mutation leaked")
	}
	if p.NumIDs() != 2 {
		t.Fatal("clone node leaked")
	}
}

func TestOutInIteration(t *testing.T) {
	p := New(nil)
	a, b, c := p.AddNode("A"), p.AddNode("B"), p.AddNode("C")
	p.AddEdge(a, c, 3)
	p.AddEdge(a, b, 1)
	var seq []NodeID
	p.Out(a, func(v NodeID, bd Bound) { seq = append(seq, v) })
	if len(seq) != 2 || seq[0] != b || seq[1] != c {
		t.Fatalf("Out order = %v", seq)
	}
	cnt := 0
	p.In(c, func(v NodeID, bd Bound) {
		cnt++
		if v != a || bd != 3 {
			t.Fatalf("In saw %d bound %d", v, bd)
		}
	})
	if cnt != 1 {
		t.Fatal("In count wrong")
	}
	if p.OutDegree(a) != 2 || p.OutDegree(c) != 0 {
		t.Fatal("OutDegree wrong")
	}
}

const fig1Pattern = `
# Fig. 1(b): an IT project team
node pm PM
node se SE
node te TE
node s  S
edge pm se 3
edge pm s  4
edge se te 3
edge s  te *
`

func TestParseFormatRoundTrip(t *testing.T) {
	p, err := Parse(strings.NewReader(fig1Pattern), nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 4 || p.NumEdges() != 4 {
		t.Fatalf("parsed %d nodes %d edges", p.NumNodes(), p.NumEdges())
	}
	if !p.HasStar() || p.MaxFiniteBound() != 4 {
		t.Fatal("bounds parsed wrong")
	}
	text := p.String()
	p2, err := Parse(strings.NewReader(text), nil)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", text, err)
	}
	if p2.NumNodes() != 4 || p2.NumEdges() != 4 {
		t.Fatal("round trip lost structure")
	}
	// Same edge bounds after round trip.
	p.Edges(func(e Edge) {
		b2, ok := p2.EdgeBound(e.From, e.To)
		if !ok || b2 != e.B {
			t.Fatalf("edge %v lost in round trip", e)
		}
	})
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"node a\n",
		"node a A\nnode a B\n",
		"edge a b 1\n",
		"node a A\nedge a b 1\n",
		"node a A\nnode b B\nedge a b zero\n",
		"node a A\nnode b B\nedge a b 0\n",
		"node a A\nnode b B\nedge a b 1\nedge a b 2\n",
		"frob a b\n",
		"node a A\nedge a b\n",
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in), nil); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestParseBound(t *testing.T) {
	if b, err := ParseBound("*"); err != nil || b != Star {
		t.Fatal("ParseBound(*) wrong")
	}
	if b, err := ParseBound("7"); err != nil || b != 7 {
		t.Fatal("ParseBound(7) wrong")
	}
	for _, s := range []string{"0", "-1", "x", ""} {
		if _, err := ParseBound(s); err == nil {
			t.Errorf("ParseBound(%q): want error", s)
		}
	}
}

func TestNamedNodesShareLabel(t *testing.T) {
	p := New(nil)
	a := p.AddNamedNode("se1", "SE")
	b := p.AddNamedNode("se2", "SE")
	if p.Label(a) != p.Label(b) {
		t.Fatal("same label string should intern to same id")
	}
	if p.Name(a) == p.Name(b) {
		t.Fatal("names should differ")
	}
	if p.LabelName(a) != "SE" {
		t.Fatal("LabelName wrong")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p := New(nil)
	a, b := p.AddNode("A"), p.AddNode("B")
	p.AddEdge(a, b, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: mark b dead without removing edges.
	p.alive[b] = false
	if err := p.Validate(); err == nil {
		t.Fatal("Validate should flag edges touching dead nodes")
	}
}
