package pattern

import (
	"testing"

	"uagpnm/internal/graph"
)

func TestSignatureOf(t *testing.T) {
	labels := graph.NewLabels()
	p := New(labels)
	a := p.AddNode("A")
	b := p.AddNode("B")
	c := p.AddNode("A") // duplicate label
	p.AddEdge(a, b, 2)
	p.AddEdge(b, c, 3)
	p.AddEdge(c, a, 1)

	sig := SignatureOf(p)
	if len(sig.Labels) != 2 {
		t.Fatalf("labels = %v, want 2 distinct", sig.Labels)
	}
	for i := 1; i < len(sig.Labels); i++ {
		if sig.Labels[i-1] >= sig.Labels[i] {
			t.Fatalf("labels not strictly ascending: %v", sig.Labels)
		}
	}
	if sig.Radius != 3 {
		t.Fatalf("radius = %d, want 3 (largest finite bound)", sig.Radius)
	}
	if sig.Star {
		t.Fatal("no star bound in pattern, Star = true")
	}
	if !sig.HasLabel(labels.Intern("A")) || !sig.HasLabel(labels.Intern("B")) {
		t.Fatal("HasLabel misses a present label")
	}
	if sig.HasLabel(labels.Intern("Z")) {
		t.Fatal("HasLabel reports an absent label")
	}

	// Node removal drops its label from a fresh extraction.
	p.RemoveNode(b)
	sig = SignatureOf(p)
	if sig.HasLabel(labels.Intern("B")) {
		t.Fatal("signature still carries the removed node's label")
	}
	// b's removal also removed its incident edges; remaining bound is 1.
	if sig.Radius != 1 {
		t.Fatalf("radius after removal = %d, want 1", sig.Radius)
	}
}

func TestSignatureStarAndEffectiveRadius(t *testing.T) {
	labels := graph.NewLabels()
	p := New(labels)
	a := p.AddNode("A")
	b := p.AddNode("B")
	p.AddEdge(a, b, Star)
	p.AddEdge(b, a, 2)

	sig := SignatureOf(p)
	if !sig.Star || sig.Radius != 2 {
		t.Fatalf("sig = %+v, want Star with finite radius 2", sig)
	}

	if r, unbounded := sig.EffectiveRadius(5, false); unbounded || r != 5 {
		t.Fatalf("capped star: r=%d unbounded=%v, want horizon 5", r, unbounded)
	}
	if r, unbounded := sig.EffectiveRadius(1, false); unbounded || r != 2 {
		t.Fatalf("capped star under narrow horizon: r=%d unbounded=%v, want finite radius 2", r, unbounded)
	}
	if _, unbounded := sig.EffectiveRadius(0, true); !unbounded {
		t.Fatal("exact star: want unbounded")
	}

	plain := Signature{Radius: 3}
	if r, unbounded := plain.EffectiveRadius(9, false); unbounded || r != 3 {
		t.Fatalf("finite pattern ignores horizon: r=%d unbounded=%v", r, unbounded)
	}

	// Edgeless pattern: the match is a pure candidate set, radius 0.
	q := New(labels)
	q.AddNode("A")
	if sig := SignatureOf(q); sig.Radius != 0 || sig.Star {
		t.Fatalf("edgeless sig = %+v, want radius 0, no star", sig)
	}
}
