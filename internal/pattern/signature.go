package pattern

import (
	"uagpnm/internal/graph"
)

// Signature is the discrimination key of a pattern: the minimal facts a
// pattern-set index needs to decide whether a data-graph change batch
// can possibly touch the pattern's match (Beyhl & Giese's generalized
// discrimination networks reduce exactly to this for bounded simulation
// — route an update to a pattern only when it falls inside the
// pattern's label × distance envelope).
//
// The envelope is sound because of how simulation.Amend propagates a
// batch: the amendment's seed closure starts from the nodes whose SLen
// rows changed (the batch change log) and can only grow through a data
// node that (a) carries one of the pattern's labels and (b) lies within
// the pattern's largest edge bound of an already-reached node. If no
// node carrying a signature label exists within Radius hops of the
// change log, the closure never leaves the seeds, the amendment
// worklist stays empty, and the match is unchanged — so an index
// consulting only (Labels, Radius, Star) over-approximates the affected
// pattern set but never misses one (the conservative contract, pinned
// by the indexed ≡ unindexed differential suite in internal/hub).
type Signature struct {
	// Labels are the distinct labels of the pattern's alive nodes,
	// ascending. Only data nodes carrying one of them can ever appear in
	// (or cascade into) the pattern's match.
	Labels []graph.LabelID
	// Radius is the largest finite edge bound — the amendment closure's
	// per-hop reach (simulation.Amend's maxIn). 0 for edgeless patterns:
	// their matches are pure label candidate sets.
	Radius int
	// Star reports a "*" bound on some edge: the effective reach is then
	// the substrate horizon (capped oracles) or unbounded (exact ones),
	// which the index must substitute at decision time — the horizon can
	// widen after extraction.
	Star bool
}

// SignatureOf extracts p's discrimination signature. It reads the
// pattern once; call it again after ΔGP updates mutate the pattern
// (labels and bounds both move).
func SignatureOf(p *Graph) Signature {
	var sig Signature
	seen := make(map[graph.LabelID]bool)
	p.Nodes(func(u NodeID) {
		l := p.Label(u)
		if !seen[l] {
			seen[l] = true
			sig.Labels = append(sig.Labels, l)
		}
	})
	sortLabelIDs(sig.Labels)
	p.Edges(func(e Edge) {
		if e.B.IsStar() {
			sig.Star = true
		} else if int(e.B) > sig.Radius {
			sig.Radius = int(e.B)
		}
	})
	return sig
}

// EffectiveRadius resolves the signature's reach against a substrate:
// horizon is the oracle's hop cap, exact whether distances are
// uncapped. unbounded reports that no finite radius covers the pattern
// (a "*" bound on an exact substrate) — the index must treat it as
// touched by every non-empty batch.
func (s Signature) EffectiveRadius(horizon int, exact bool) (radius int, unbounded bool) {
	if !s.Star {
		return s.Radius, false
	}
	if exact {
		return 0, true
	}
	if horizon > s.Radius {
		return horizon, false
	}
	return s.Radius, false
}

// HasLabel reports whether l is one of the signature's labels.
func (s Signature) HasLabel(l graph.LabelID) bool {
	lo, hi := 0, len(s.Labels)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Labels[mid] < l {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.Labels) && s.Labels[lo] == l
}

func sortLabelIDs(ls []graph.LabelID) {
	// insertion sort: signatures are tiny (patterns have 6–10 nodes).
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j] < ls[j-1]; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
}
