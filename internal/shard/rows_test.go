package shard_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
)

// memSource is a hand-built shard.Source: explicit partition subgraphs
// plus a full-graph replica, so the bulk-row suite can drive a worker
// without a coordinator engine in the loop.
type memSource struct {
	parts []*graph.Graph
	g     *graph.Graph
}

func (s memSource) NumParts() int                     { return len(s.parts) }
func (s memSource) PartSnapshot(i int) shard.Snapshot { return shard.Snap(i, s.parts[i]) }
func (s memSource) GraphSnapshot() shard.Snapshot     { return shard.Snap(-1, s.g) }

// randomSub builds one partition subgraph: n nodes, m random edges,
// and one node deleted so every suite run covers dead sources.
func randomSub(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode("X")
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	g.RemoveNode(uint32(rng.Intn(n)))
	return g
}

// rowOf collects one full-horizon row through the Shard Ball surface.
func rowOf(t *testing.T, sh shard.Shard, part int, src uint32, maxD int, reverse bool) shard.Row {
	t.Helper()
	var r shard.Row
	if err := sh.Ball(part, src, maxD, reverse, func(v uint32, d shortest.Dist) bool {
		r.Nodes = append(r.Nodes, v)
		r.Dists = append(r.Dists, d)
		return true
	}); err != nil {
		t.Fatalf("Ball(%d, %d, rev=%v): %v", part, src, reverse, err)
	}
	return r
}

func rowsEqual(a, b shard.Row) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.Dists[i] != b.Dists[i] {
			return false
		}
	}
	return true
}

// TestBulkRowsMatchesSingletonFetches is the bulk-read differential:
// for random partition subgraphs (dead nodes included), the bulk Rows
// answer must equal row-by-row singleton fetches in both directions, on
// a fresh cache, a warm cache, and after a mutation invalidated the
// touched partition — with an in-process Local over the same subgraphs
// as the ground truth for both RPC clients.
func TestBulkRowsMatchesSingletonFetches(t *testing.T) {
	for trial := int64(0); trial < 3; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(40 + trial))
			n0 := 12 + rng.Intn(8)
			sub0 := randomSub(rng, n0, 3*n0)
			sub1 := randomSub(rng, 10, 24)
			// Replica: partition 0's subgraph verbatim (locals == globals),
			// so a partition-0 op needs no id translation.
			src := memSource{parts: []*graph.Graph{sub0, sub1}, g: sub0.Clone()}

			ts := httptest.NewServer(shard.NewServer().Handler())
			defer ts.Close()
			cfg := shard.Config{Horizon: 3, Workers: 2}
			owned := []int{0, 1}

			bulk := shard.Dial(ts.URL)   // reads through Rows
			single := shard.Dial(ts.URL) // reads through singleton Ball
			defer bulk.Close()
			defer single.Close()
			if err := bulk.Build(cfg, 0, owned, src); err != nil {
				t.Fatalf("Build: %v", err)
			}
			oracle := shard.NewLocal(func(p int) *graph.Graph { return src.parts[p] })
			if err := oracle.Build(cfg, 0, owned, src); err != nil {
				t.Fatalf("oracle Build: %v", err)
			}

			var reqs []shard.RowReq
			for p, sub := range src.parts {
				for local := 0; local < sub.NumIDs(); local++ {
					for _, rev := range []bool{false, true} {
						reqs = append(reqs, shard.RowReq{Part: p, Src: uint32(local), Reverse: rev})
					}
				}
			}
			rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })

			check := func(stage string) {
				t.Helper()
				got, err := bulk.Rows(reqs)
				if err != nil {
					t.Fatalf("%s: Rows: %v", stage, err)
				}
				want, err := oracle.Rows(reqs)
				if err != nil {
					t.Fatalf("%s: oracle Rows: %v", stage, err)
				}
				for i, rq := range reqs {
					if !rowsEqual(got[i], want[i]) {
						t.Fatalf("%s: bulk row (part=%d src=%d rev=%v) = %v, oracle %v",
							stage, rq.Part, rq.Src, rq.Reverse, got[i], want[i])
					}
					one := rowOf(t, single, rq.Part, rq.Src, cfg.Horizon, rq.Reverse)
					if !rowsEqual(one, want[i]) {
						t.Fatalf("%s: singleton row (part=%d src=%d rev=%v) = %v, oracle %v",
							stage, rq.Part, rq.Src, rq.Reverse, one, want[i])
					}
				}
			}
			check("cold")
			check("warm") // second pass is all cache hits; must not drift

			// Mutate partition 0 (a fresh intra edge) through both clients
			// at one epoch: the first delivery applies, the second hits the
			// worker's fence — and both drop their partition-0 rows, so the
			// recheck reads post-mutation state everywhere.
			var from, to uint32
			for {
				from, to = uint32(rng.Intn(n0)), uint32(rng.Intn(n0))
				if from != to && sub0.Alive(from) && sub0.Alive(to) && !sub0.HasEdge(from, to) {
					break
				}
			}
			op := shard.Op{Kind: shard.OpEdgeInsert, From: from, To: to,
				Part: 0, Shard: 0, LFrom: from, LTo: to}
			for _, cl := range []*shard.RPC{bulk, single} {
				if _, err := cl.ApplyOps(1, []shard.Op{op}, nil); err != nil {
					t.Fatalf("ApplyOps: %v", err)
				}
			}
			sub0.AddEdge(from, to) // mirror into the oracle's subgraph
			if _, err := oracle.ApplyOps(1, []shard.Op{op}, nil); err != nil {
				t.Fatalf("oracle ApplyOps: %v", err)
			}
			check("post-mutation")

			// Unowned partitions must refuse on both read paths, not
			// answer empty rows a cache could be poisoned with.
			if _, err := bulk.Rows([]shard.RowReq{{Part: 7, Src: 0}}); err == nil {
				t.Fatal("bulk Rows on an unowned partition must error")
			}
			if err := single.Ball(7, 0, cfg.Horizon, false, func(uint32, shortest.Dist) bool { return true }); err == nil {
				t.Fatal("singleton Ball on an unowned partition must error")
			}
		})
	}
}

// TestRowsSingleflightUnderConcurrency hammers one worker with
// concurrent overlapping bulk and singleton reads of the same keys.
// Run under -race (the tier-1 gate does): it proves the client cache,
// the in-flight table and the bulk resolution path hold up when many
// goroutines converge on hot rows.
func TestRowsSingleflightUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sub := randomSub(rng, 16, 48)
	src := memSource{parts: []*graph.Graph{sub}, g: sub.Clone()}
	ts := httptest.NewServer(shard.NewServer().Handler())
	defer ts.Close()
	cfg := shard.Config{Horizon: 3, Workers: 2}
	cl := shard.Dial(ts.URL)
	defer cl.Close()
	if err := cl.Build(cfg, 0, []int{0}, src); err != nil {
		t.Fatalf("Build: %v", err)
	}
	oracle := shard.NewLocal(func(int) *graph.Graph { return sub })
	if err := oracle.Build(cfg, 0, []int{0}, src); err != nil {
		t.Fatalf("oracle Build: %v", err)
	}

	var reqs []shard.RowReq
	for local := 0; local < sub.NumIDs(); local++ {
		reqs = append(reqs, shard.RowReq{Part: 0, Src: uint32(local)})
		reqs = append(reqs, shard.RowReq{Part: 0, Src: uint32(local), Reverse: true})
	}
	want, err := oracle.Rows(reqs)
	if err != nil {
		t.Fatalf("oracle Rows: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Even goroutines fetch the whole set in bulk (shuffled per
			// goroutine), odd ones walk it with singleton Balls — every
			// key is contended across both paths at once.
			local := append([]shard.RowReq(nil), reqs...)
			rand.New(rand.NewSource(int64(w))).Shuffle(len(local), func(i, j int) {
				local[i], local[j] = local[j], local[i]
			})
			if w%2 == 0 {
				got, err := cl.Rows(local)
				if err != nil {
					errs <- err
					return
				}
				for i, rq := range local {
					idx := int(rq.Src) * 2
					if rq.Reverse {
						idx++
					}
					if !rowsEqual(got[i], want[idx]) {
						errs <- fmt.Errorf("bulk row (src=%d rev=%v) diverged", rq.Src, rq.Reverse)
						return
					}
				}
				return
			}
			for _, rq := range local {
				var r shard.Row
				if err := cl.Ball(rq.Part, rq.Src, cfg.Horizon, rq.Reverse, func(v uint32, d shortest.Dist) bool {
					r.Nodes = append(r.Nodes, v)
					r.Dists = append(r.Dists, d)
					return true
				}); err != nil {
					errs <- err
					return
				}
				idx := int(rq.Src) * 2
				if rq.Reverse {
					idx++
				}
				if !rowsEqual(r, want[idx]) {
					errs <- fmt.Errorf("singleton row (src=%d rev=%v) diverged", rq.Src, rq.Reverse)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
