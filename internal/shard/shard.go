// Package shard defines the seam the §V partition engine is served
// through: a Shard owns the intra-partition SLen state (the
// per-partition distance engines — the superlinear part of the
// substrate) for a subset of the partitions, while the coordinator
// (internal/partition.Engine) keeps the partition bookkeeping, the
// bridge overlay, the stitched-row caches and the data graph itself.
//
// Two implementations exist:
//
//   - Local runs in the coordinator's process and reads the
//     coordinator's own partition subgraphs directly — the in-process
//     path, a pure extraction of what the monolithic engine did.
//   - RPC fronts a shard worker process (cmd/gpnm-shard) over
//     HTTP/JSON; Server is the worker side. The worker holds replicas
//     of its partitions' subgraphs (and of the data-graph adjacency,
//     so conservative affected-set balls can be computed remotely) and
//     keeps them in sync from the coordinator's op stream.
//
// Contract: the coordinator mutates its own structures first (data
// graph, partition subgraph mirrors, bridge bookkeeping) and then
// hands each mutation to the owning shard as an Op; the shard applies
// the op to any replica it keeps and synchronises its intra engines,
// returning the partition-local affected set. Reads (Dist, Ball) are
// safe for any number of concurrent goroutines between mutations —
// the read-epoch discipline documented on partition.Engine extends
// through this interface.
package shard

import (
	"errors"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
)

// ErrSubstrateLost marks the distance substrate as unrecoverable: a
// shard holding part of the intra SLen state failed (transport death,
// state divergence) and the coordinator could not repair the loss —
// no surviving or spare worker was left to absorb the dead shard's
// partitions, or the recovery budget was exhausted. The partition
// engine wraps the terminal failure in this sentinel and poisons
// itself; coordinators (hub, Service front ends) surface it with
// errors.Is and drain. Before that terminal point, losses are handled
// by failover: the coordinator's subgraph mirrors already hold
// everything a replacement needs, so lost partitions are rebuilt on
// survivors (Rebuild) or freshly claimed spares (Build) and the
// in-flight op stream is replayed under the Config.Epoch fence.
var ErrSubstrateLost = errors.New("substrate lost")

// Config carries the engine parameters every shard needs to build and
// maintain its intra engines.
type Config struct {
	Horizon        int `json:"horizon"` // SLen hop cap (0 = exact)
	DenseThreshold int `json:"dense_threshold"`
	ELLWidth       int `json:"ell_width"`
	Workers        int `json:"workers"` // per-shard worker pool bound

	// Epoch is the op-stream fence shipped with a (re)build: the state
	// the coordinator snapshots already reflects every op flush up to
	// and including this epoch, so a replayed ApplyOps with the same
	// epoch must return empty affected sets instead of re-applying —
	// that is how a spare promoted mid-batch, built from post-batch
	// mirrors, survives the batch's retry without double-application.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Edge is a directed edge in a (local- or global-id) node space.
type Edge struct {
	From uint32 `json:"f"`
	To   uint32 `json:"t"`
}

// Snapshot serialises one graph — a partition's induced subgraph or
// the whole data-graph adjacency — for remote shard builds. Node ids
// are implicit: every id < NumIDs exists, ids listed in Dead are
// tombstoned. Labels are not carried; intra SLen and conservative
// balls are label-blind.
type Snapshot struct {
	Part   int      `json:"part"` // partition index (-1 for the data graph)
	NumIDs int      `json:"num_ids"`
	Dead   []uint32 `json:"dead,omitempty"`
	Edges  []Edge   `json:"edges,omitempty"`
}

// Materialise rebuilds the snapshot as a fresh graph (label-less).
func (s Snapshot) Materialise() *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < s.NumIDs; i++ {
		g.AddNodeLabelIDs()
	}
	for _, d := range s.Dead {
		g.RemoveNode(d)
	}
	for _, e := range s.Edges {
		g.AddEdge(e.From, e.To)
	}
	return g
}

// Snap captures g as a Snapshot tagged with the given part index.
func Snap(part int, g *graph.Graph) Snapshot {
	s := Snapshot{Part: part, NumIDs: g.NumIDs()}
	for id := 0; id < s.NumIDs; id++ {
		if !g.Alive(uint32(id)) {
			s.Dead = append(s.Dead, uint32(id))
		}
	}
	g.Edges(func(e graph.Edge) {
		s.Edges = append(s.Edges, Edge{From: e.From, To: e.To})
	})
	return s
}

// Source lets a shard pull the state it must replicate at build time.
// The in-process shard reads the coordinator's structures directly and
// never asks; remote shards serialise what Source hands out.
type Source interface {
	// NumParts reports the current partition count.
	NumParts() int
	// PartSnapshot captures partition i's induced subgraph.
	PartSnapshot(i int) Snapshot
	// GraphSnapshot captures the full data-graph adjacency (for the
	// remote conservative-ball computation).
	GraphSnapshot() Snapshot
}

// OpKind enumerates the mutations a coordinator streams to its shards.
type OpKind int

// The four structural op kinds, mirroring the data-update kinds.
const (
	OpEdgeInsert OpKind = iota
	OpEdgeDelete
	OpNodeInsert
	OpNodeDelete
)

// Op is one structural mutation, already applied to the coordinator's
// own structures. Global ids (From/To/Node) drive data-graph replica
// maintenance on remote shards; Part/Shard plus the local-id fields
// drive the owning shard's intra-engine synchronisation. Part < 0
// marks a replica-only op (a cross-partition edge, which no intra
// engine sees).
type Op struct {
	Kind OpKind `json:"k"`

	// Global-id view (data-graph replica maintenance).
	From uint32 `json:"u,omitempty"`
	To   uint32 `json:"v,omitempty"`
	Node uint32 `json:"n,omitempty"`

	// Partition-local view (intra-engine maintenance).
	Part         int    `json:"p"` // owning partition (-1: replica-only)
	Shard        int    `json:"s"` // owning shard index (-1: replica-only)
	LFrom        uint32 `json:"lu,omitempty"`
	LTo          uint32 `json:"lv,omitempty"`
	Local        uint32 `json:"ln,omitempty"`
	RemovedLocal []Edge `json:"rm,omitempty"` // local incident edges of a node delete
}

// AffectedReq asks for one update's conservative affected-ball
// superset, evaluated against the shard's data-graph replica in its
// current state (phase 1 sends deletions pre-batch, phase 4 sends
// insertions post-batch).
type AffectedReq struct {
	Kind OpKind `json:"k"` // OpEdgeInsert/OpEdgeDelete/OpNodeDelete
	From uint32 `json:"u,omitempty"`
	To   uint32 `json:"v,omitempty"`
	Node uint32 `json:"n,omitempty"`
}

// RowReq names one full-horizon intra row: the (partition, local
// source, direction) triple the stitched read path keys everything by.
// The coordinator's row-demand planner batches these so a whole phase's
// row traffic crosses the wire as one bulk call per shard instead of
// one RPC per row.
type RowReq struct {
	Part    int    `json:"p"`
	Src     uint32 `json:"s"`
	Reverse bool   `json:"r,omitempty"`
}

// Row is one full-horizon intra row, aligned with its RowReq: the
// ball members in ascending local-id order with their distances.
type Row struct {
	Nodes []uint32        `json:"nodes"`
	Dists []shortest.Dist `json:"dists"`
}

// Shard is the per-partition half of the §V substrate.
//
// Error model: every method that can lose state or transport returns an
// error. A non-nil error means the shard's intra state is no longer
// trustworthy — the RPC implementation returns a *TransportError after
// its retries are exhausted — and the coordinator (internal/partition)
// quarantines the shard and runs failover: its partitions are rebuilt
// from the coordinator's subgraph mirrors on survivors (Rebuild) or
// spares (Build), with ErrSubstrateLost the terminal poison only when
// no capacity survives. In-process shards never return errors; their
// contract violations (unowned partitions, bad ops) remain panics,
// because they are programming bugs, not operational failures.
type Shard interface {
	// Remote reports whether ops must be streamed to this shard even
	// when it owns none of the touched partitions (replica
	// maintenance) and whether Affected is served off a remote
	// replica. In-process shards return false.
	Remote() bool

	// Ping is the liveness probe the failover controller uses to tell
	// a dead worker from a transient fault: it must answer quickly
	// (bounded, no retries) and return nil only when the shard can
	// serve. In-process shards always answer nil.
	Ping() error

	// Build (re)builds the intra engines of the owned partitions from
	// the coordinator state exposed by src, discarding all prior state
	// (a remote worker also resets its data-graph replica and adopts
	// cfg.Epoch as its op-stream fence). index is this shard's
	// position in the coordinator's shard table (echoed back in
	// Op.Shard).
	Build(cfg Config, index int, owned []int, src Source) error

	// Rebuild builds intra engines for additional partitions —
	// typically reassigned from a dead shard — on top of the shard's
	// existing state: replicas, previously owned partitions and the
	// op-stream fence all survive. The snapshots come from the
	// coordinator's mirrors at their current state.
	Rebuild(cfg Config, index int, added []int, src Source) error

	// EnsureHorizon widens every owned intra engine to cover bound k.
	EnsureHorizon(k int) error

	// Dist returns the intra-partition distance between two locals of
	// an owned partition.
	Dist(part int, x, y uint32) (shortest.Dist, error)

	// Ball visits the intra ball of src in ascending local-id order
	// (src included at 0), stopping early when fn returns false. Safe
	// for concurrent use between mutations.
	Ball(part int, src uint32, maxD int, reverse bool, fn func(local uint32, d shortest.Dist) bool) error

	// Rows answers many full-horizon intra rows in one call, aligned
	// with reqs. Every request must name a partition this shard owns.
	// The remote implementation fetches all cache-missing rows in one
	// /rows RPC and keeps them cached like singleton fetches, so the
	// coordinator's row-demand planner can warm a whole phase's reads
	// with one round trip per shard. Safe for concurrent use between
	// mutations, like Ball.
	Rows(reqs []RowReq) ([]Row, error)

	// ApplyOps applies one ordered batch of mutations (already applied
	// to the coordinator's structures) and returns, aligned by index,
	// the partition-local affected set of every op this shard owns
	// (nil for replica-only and foreign ops). epoch fences the stream:
	// the coordinator issues a strictly increasing epoch per flush, and
	// a shard that already applied it answers its recorded response
	// (or empty sets, after a fenced build) instead of re-applying —
	// which is what makes the failover retry of an in-flight batch
	// safe against survivors that had applied before the loss.
	//
	// warm piggybacks the coordinator's post-flush row demand on the
	// same round trip: the owned rows named in it are recomputed from
	// the post-apply state and (remotely) installed in the client's row
	// cache, so the overlay reconciliation that follows the flush reads
	// warm rows instead of paying one RPC per bridge node. Rows are
	// read-only, so the piggyback is idempotent under the epoch fence;
	// in-process shards ignore it (the coordinator reads them directly).
	ApplyOps(epoch uint64, ops []Op, warm []RowReq) ([][]uint32, error)

	// Affected computes the conservative affected-ball supersets of
	// the given updates against the shard's data-graph replica. Only
	// remote shards implement it meaningfully; in-process shards never
	// receive it (the coordinator computes balls off its own graph).
	Affected(reqs []AffectedReq) ([]nodeset.Set, error)

	// Close releases the shard (remote: closes idle connections; the
	// worker process itself stays up for the next coordinator).
	Close() error
}

// capHops converts a horizon into a usable hop bound.
func capHops(horizon int) int {
	if horizon == 0 {
		return int(shortest.Inf) - 1
	}
	return horizon
}

// EdgeAffected is the conservative ball superset used as the affected
// set of an edge update: everything that reaches u within H-1 hops plus
// everything within H-1 hops of v (plus the endpoints). For insertions
// these balls are identical before and after the update (a new path to
// u via (u,v) would cycle through u), so one formula serves preview and
// apply; for deletions they are evaluated in the pre-delete state,
// which covers every pair whose old shortest path used the edge. gb is
// caller-pooled scratch; the function only reads g.
func EdgeAffected(gb *shortest.GraphBall, g *graph.Graph, u, v uint32, horizon int) nodeset.Set {
	H := capHops(horizon)
	var b nodeset.Builder
	b.Add(u)
	b.Add(v)
	for _, x := range gb.Ball(g, u, H-1, true) {
		b.Add(x)
	}
	for _, y := range gb.Ball(g, v, H-1, false) {
		b.Add(y)
	}
	return b.Set()
}

// NodeAffected is the conservative ball superset for deleting node id
// with out-neighbours outs and in-neighbours ins, evaluated in the
// pre-delete state: both balls around id at H, plus the forward balls
// of its successors and the reverse balls of its predecessors at H-1.
func NodeAffected(gb *shortest.GraphBall, g *graph.Graph, id uint32, outs, ins []uint32, horizon int) nodeset.Set {
	H := capHops(horizon)
	var b nodeset.Builder
	b.Add(id)
	for _, y := range gb.Ball(g, id, H, false) {
		b.Add(y)
	}
	for _, x := range gb.Ball(g, id, H, true) {
		b.Add(x)
	}
	for _, v := range outs {
		for _, y := range gb.Ball(g, v, H-1, false) {
			b.Add(y)
		}
	}
	for _, u := range ins {
		for _, x := range gb.Ball(g, u, H-1, true) {
			b.Add(x)
		}
	}
	return b.Set()
}
