package shard_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/partition"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// randomInstance builds a random labelled graph and a random pattern.
func randomInstance(seed int64, n, m int) (*graph.Graph, *pattern.Graph) {
	labels := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	p := pattern.New(g.Labels())
	ids := make([]pattern.NodeID, 3+rng.Intn(3))
	for i := range ids {
		ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < len(ids)+1; i++ {
		p.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], pattern.Bound(1+rng.Intn(3)))
	}
	return g, p
}

// rpcFleet spins up n in-process shard workers over real HTTP
// (httptest) and returns clients for them.
func rpcFleet(t testing.TB, n int) []shard.Shard {
	t.Helper()
	shs := make([]shard.Shard, n)
	for i := range shs {
		srv := shard.NewServer()
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		shs[i] = shard.Dial(ts.URL)
	}
	return shs
}

// shardedEngines builds, over clones of g, every engine variant the
// suite compares: the single-shard engine (the monolith re-expressed),
// a 3-way in-process split, and a 2-worker RPC fleet. Each comes with
// its own graph clone so batches replay independently.
type engineUnderTest struct {
	name string
	g    *graph.Graph
	eng  *partition.Engine
}

func shardedEngines(t testing.TB, g *graph.Graph, horizon, workers int) []engineUnderTest {
	t.Helper()
	variants := []struct {
		name string
		opts func() []partition.Option
	}{
		{"mono", func() []partition.Option { return nil }},
		{"local3", func() []partition.Option { return []partition.Option{partition.WithLocalShards(3)} }},
		{"rpc2", func() []partition.Option { return []partition.Option{partition.WithShards(rpcFleet(t, 2)...)} }},
	}
	outs := make([]engineUnderTest, len(variants))
	for i, v := range variants {
		g2 := g.Clone()
		opts := append(v.opts(), partition.WithWorkers(workers))
		e := partition.NewEngine(g2, horizon, opts...)
		e.Build()
		outs[i] = engineUnderTest{name: v.name, g: g2, eng: e}
	}
	return outs
}

// TestShardedEngineDifferential is the sharding ground-truth suite: a
// randomized update-batch sequence driven through (1) a Scratch
// session, (2) the single-shard UA-GPNM engine, (3) a 3-way in-process
// shard split and (4) a 2-worker RPC shard fleet over real HTTP must
// leave identical SQuery results after every batch, at serial and wide
// worker bounds. Run under -race (the tier-1 gate does) to also prove
// the read-epoch discipline across the shard seam.
func TestShardedEngineDifferential(t *testing.T) {
	trials, rounds := 3, 4
	if testing.Short() {
		trials, rounds = 1, 3
	}
	for _, workers := range []int{1, 4} {
		for trial := 0; trial < trials; trial++ {
			seed := int64(61000 + trial)
			g, p := randomInstance(seed, 40, 110)

			ref := core.NewSession(g.Clone(), p.Clone(),
				core.Config{Method: core.Scratch, Horizon: 3})
			euts := shardedEngines(t, g, 3, workers)
			sessions := make([]*core.Session, len(euts))
			for i, eut := range euts {
				sessions[i] = core.NewSessionWith(eut.g, p.Clone(), eut.eng,
					core.Config{Method: core.UAGPNM, Horizon: 3, Workers: workers})
				if !sessions[i].Match.Equal(ref.Match) {
					t.Fatalf("workers=%d trial=%d %s: IQuery diverges from Scratch", workers, trial, eut.name)
				}
			}

			for round := 0; round < rounds; round++ {
				batch := updates.Generate(
					updates.Balanced(seed*13+int64(round), 2, 12), ref.G, ref.P)
				want := ref.SQuery(batch)
				for i, eut := range euts {
					got := sessions[i].SQuery(batch)
					if !got.Equal(want) {
						t.Fatalf("workers=%d trial=%d round=%d %s: diverges from Scratch\nbatch D=%v P=%v",
							workers, trial, round, eut.name, batch.D, batch.P)
					}
				}
			}
		}
	}
}

// TestShardedOracleAgreement spot-checks the distance oracle itself —
// Dist, ForwardBall, ReverseBall — across the three shard layouts after
// a mutation sequence, pinning that the seam preserves the substrate
// (not only the match results derived from it).
func TestShardedOracleAgreement(t *testing.T) {
	seed := int64(4711)
	g, _ := randomInstance(seed, 35, 100)
	euts := shardedEngines(t, g, 3, 2)
	rng := rand.New(rand.NewSource(seed))

	applyEverywhere := func(u updates.Update) {
		for _, eut := range euts {
			updates.ApplyData(u, eut.g, eut.eng)
		}
	}
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })
	for step := 0; step < 25; step++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if u != v && !euts[0].g.HasEdge(u, v) {
			applyEverywhere(updates.Update{Kind: updates.DataEdgeInsert, From: u, To: v})
		}
		if out := euts[0].g.Out(u); len(out) > 0 && step%3 == 0 {
			applyEverywhere(updates.Update{Kind: updates.DataEdgeDelete, From: u, To: out[rng.Intn(len(out))]})
		}
	}

	n := euts[0].g.NumIDs()
	for x := uint32(0); int(x) < n; x++ {
		for y := uint32(0); int(y) < n; y++ {
			d0 := euts[0].eng.Dist(x, y)
			for _, eut := range euts[1:] {
				if d := eut.eng.Dist(x, y); d != d0 {
					t.Fatalf("%s: Dist(%d,%d) = %v, mono says %v", eut.name, x, y, d, d0)
				}
			}
		}
		row0 := ballRow(euts[0].eng, x)
		for _, eut := range euts[1:] {
			if row := ballRow(eut.eng, x); row != row0 {
				t.Fatalf("%s: ball rows of %d diverge:\n  mono: %s\n  %s: %s",
					eut.name, x, row0, eut.name, row)
			}
		}
	}
}

func ballRow(e *partition.Engine, x uint32) string {
	out := ""
	e.ForwardBall(x, 3, func(v uint32, d shortest.Dist) bool {
		out += fmt.Sprintf("f%d:%d ", v, d)
		return true
	})
	e.ReverseBall(x, 3, func(v uint32, d shortest.Dist) bool {
		out += fmt.Sprintf("r%d:%d ", v, d)
		return true
	})
	return out
}

// TestRPCShardCloneFor pins the documented CloneFor fallback: cloning a
// remote-shard engine collapses onto a freshly built in-process shard
// with identical distances (Session.Fork on a sharded session depends
// on this).
func TestRPCShardCloneFor(t *testing.T) {
	g, _ := randomInstance(99, 30, 80)
	e := partition.NewEngine(g, 3, partition.WithShards(rpcFleet(t, 2)...))
	e.Build()
	g2 := g.Clone()
	c := e.CloneFor(g2).(*partition.Engine)
	if c.Remote() {
		t.Fatal("clone of a remote-shard engine should be in-process")
	}
	n := g.NumIDs()
	for x := uint32(0); int(x) < n; x++ {
		for y := uint32(0); int(y) < n; y++ {
			if a, b := e.Dist(x, y), c.Dist(x, y); a != b {
				t.Fatalf("clone Dist(%d,%d) = %v, original %v", x, y, b, a)
			}
		}
	}
	// And the clone maintains independently.
	var u, v uint32
	found := false
	g2.Nodes(func(a uint32) {
		if found {
			return
		}
		g2.Nodes(func(b uint32) {
			if !found && a != b && !g2.HasEdge(a, b) {
				u, v, found = a, b, true
			}
		})
	})
	if !found {
		t.Skip("graph saturated")
	}
	g2.AddEdge(u, v)
	c.InsertEdge(u, v)
	if got := c.Dist(u, v); got != 1 {
		t.Fatalf("clone Dist(%d,%d) after insert = %v, want 1", u, v, got)
	}
}
