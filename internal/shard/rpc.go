package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/shortest"
)

// TransportError is the error an RPC shard returns when the worker
// cannot be reached or answers with an error after retries. The
// coordinator treats it as a shard loss and runs failover (rebuild the
// lost partitions on survivors or spares); only when no capacity
// survives does it poison the substrate with ErrSubstrateLost.
// errors.Is(err, ErrSubstrateLost) and errors.As(err, &te) both work
// on what callers observe from a terminal loss.
type TransportError struct {
	Addr string
	Op   string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("shard %s: %s: %v", e.Addr, e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// RPC fronts one shard worker process (cmd/gpnm-shard) over HTTP/JSON.
//
// Reads cache aggressively: Ball and Dist are served from full-horizon
// intra rows fetched once per (partition, source, direction) and kept
// until the next mutation invalidates them. The coordinator's query
// patterns (overlay Dijkstras, stitched rows, the matching fixpoint)
// re-read the same rows many times per epoch, so the row cache turns
// per-query RPCs into per-row ones — and the bulk Rows path plus the
// /ops warm piggyback turn per-row RPCs into per-phase ones.
// Invalidation is partition-scoped: an intra row depends only on its
// partition's subgraph, so an op flush drops only the touched
// partitions' rows and everything else survives across batches.
// Concurrent misses on one key fetch once (singleflight); the cache is
// safe for the engine's concurrent read epochs.
type RPC struct {
	base string
	hc   *http.Client
	obs  *obs.Registry // per-endpoint latency/bytes/retry/failure telemetry

	mu     sync.Mutex
	rows   map[rowKey][]rowEntry
	flight map[rowKey]*rowCall
}

// rowCall is one in-flight row fetch: concurrent misses on the same
// key wait on done instead of fetching again.
type rowCall struct {
	done chan struct{}
	row  []rowEntry
	err  error
}

type rowKey struct {
	part    int
	src     uint32
	reverse bool
}

type rowEntry struct {
	node uint32
	d    shortest.Dist
}

// ParseAddrs splits a comma-separated -shards flag value into worker
// addresses, trimming whitespace and dropping empties — the one parser
// every binary taking the flag shares.
func ParseAddrs(spec string) []string {
	var addrs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Dial returns a client for the worker at addr ("host:port" or a full
// http:// URL). It performs no I/O; the first call does. Telemetry
// goes to obs.Default; use DialWith to isolate it.
func Dial(addr string) *RPC { return DialWith(addr, obs.Default) }

// DialWith is Dial with the telemetry registry chosen by the caller:
// every remote call records a per-endpoint latency histogram
// (gpnm_rpc_seconds), bytes in/out (gpnm_rpc_bytes_total) and
// retry/failure counters into reg.
func DialWith(addr string, reg *obs.Registry) *RPC {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if reg == nil {
		reg = obs.Default
	}
	return &RPC{
		base: base,
		// Per-request deadlines are set in post(); the transport is tuned
		// for the engine's bulk fan-out. The zero-value transport keeps
		// only 2 idle connections per host, so a parallel phase (affected
		// fans, row prefetch, concurrent stitched reads) would re-dial TCP
		// for every call beyond the pair; sizing the idle pool past the
		// worker-pool widths in use keeps the fan on warm connections.
		hc: &http.Client{Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxIdleConns:          256,
			MaxIdleConnsPerHost:   64,
			IdleConnTimeout:       90 * time.Second,
			TLSHandshakeTimeout:   10 * time.Second,
			ExpectContinueTimeout: time.Second,
		}},
		obs:    reg,
		rows:   make(map[rowKey][]rowEntry),
		flight: make(map[rowKey]*rowCall),
	}
}

// reqTimeout picks the deadline for one request. Reads and op streams
// are bounded snugly; /build runs a full remote intra-engine rebuild —
// exactly the superlinear work sharding exists to spread — so it gets
// room to finish on sharding-scale graphs instead of being declared
// dead (and pointlessly restarted) by a blanket client timeout.
func reqTimeout(path string) time.Duration {
	switch path {
	case "/build", "/horizon":
		return 4 * time.Hour
	default:
		return 5 * time.Minute
	}
}

// Addr returns the worker's base URL.
func (r *RPC) Addr() string { return r.base }

// Remote reports true: this shard needs the full op stream (replica
// maintenance) and serves Affected off its replica.
func (r *RPC) Remote() bool { return true }

// post sends one JSON request, retrying transient transport failures,
// and decodes the response into out. Worker-side errors (non-2xx) are
// not retried — they signal state divergence, not a flaky network.
// Retrying an /ops whose response was lost is safe: the stream is
// epoch-fenced, so a worker that already applied the epoch answers its
// recorded response instead of re-applying.
func (r *RPC) post(op, path string, in, out interface{}) (err error) {
	// Per-endpoint telemetry: one latency observation per call (retries
	// included — the coordinator waits for the whole thing), bytes as
	// they cross the wire, failure counted once per failed call.
	start := time.Now()
	defer func() {
		r.obs.Histogram("gpnm_rpc_seconds", "endpoint", path).Observe(time.Since(start))
		if err != nil {
			r.obs.Counter("gpnm_rpc_failures_total", "endpoint", path).Inc()
		}
	}()
	body, err := json.Marshal(in)
	if err != nil {
		return &TransportError{Addr: r.base, Op: op, Err: err}
	}
	var last error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			r.obs.Counter("gpnm_rpc_retries_total", "endpoint", path).Inc()
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), reqTimeout(path))
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return &TransportError{Addr: r.base, Op: op, Err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		r.obs.Counter("gpnm_rpc_bytes_total", "endpoint", path, "direction", "out").Add(uint64(len(body)))
		resp, err := r.hc.Do(req)
		if err != nil {
			cancel()
			last = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		r.obs.Counter("gpnm_rpc_bytes_total", "endpoint", path, "direction", "in").Add(uint64(len(data)))
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			return &TransportError{Addr: r.base, Op: op,
				Err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))}
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return &TransportError{Addr: r.base, Op: op, Err: err}
			}
		}
		return nil
	}
	return &TransportError{Addr: r.base, Op: op, Err: last}
}

func (r *RPC) dropRows() {
	r.mu.Lock()
	r.rows = make(map[rowKey][]rowEntry)
	r.mu.Unlock()
}

// Ping probes the worker's /healthz with a short bounded GET and no
// retries — the failover controller calls it to separate dead workers
// from transient faults, so it must answer fast either way.
func (r *RPC) Ping() (err error) {
	start := time.Now()
	defer func() {
		r.obs.Histogram("gpnm_rpc_seconds", "endpoint", "/healthz").Observe(time.Since(start))
		if err != nil {
			r.obs.Counter("gpnm_rpc_failures_total", "endpoint", "/healthz").Inc()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return &TransportError{Addr: r.base, Op: "ping", Err: err}
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return &TransportError{Addr: r.base, Op: "ping", Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &TransportError{Addr: r.base, Op: "ping",
			Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	return nil
}

// Build ships the coordinator's snapshots — the owned partitions'
// subgraphs plus the full data-graph adjacency — and blocks until the
// worker has built its intra engines.
func (r *RPC) Build(cfg Config, index int, owned []int, src Source) error {
	req := buildRequest{Config: cfg, Index: index, Graph: src.GraphSnapshot()}
	for _, p := range owned {
		req.Parts = append(req.Parts, src.PartSnapshot(p))
	}
	if err := r.post("build", "/build", req, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// Rebuild ships additional partitions' snapshots for the worker to
// build on top of its existing state — the failover path for survivors
// absorbing a dead shard's partitions. The worker keeps its replica,
// its other engines and its op-stream fence.
func (r *RPC) Rebuild(cfg Config, index int, added []int, src Source) error {
	req := rebuildRequest{Config: cfg, Index: index}
	for _, p := range added {
		req.Parts = append(req.Parts, src.PartSnapshot(p))
	}
	if err := r.post("rebuild", "/rebuild", req, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// EnsureHorizon widens the worker's engines to cover bound k.
func (r *RPC) EnsureHorizon(k int) error {
	if err := r.post("horizon", "/horizon", map[string]int{"k": k}, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// row returns the cached full-horizon intra row, fetching on a miss.
// Concurrent misses on one key fetch once: the first caller registers
// an in-flight rowCall and the rest wait on it, so a read fan that
// converges on one hot row costs one RPC, not one per goroutine.
// Singleton fetches count as gpnm_rpc_rows_missed_total — the planner's
// job is to keep this near zero.
func (r *RPC) row(part int, src uint32, reverse bool) ([]rowEntry, error) {
	key := rowKey{part, src, reverse}
	r.mu.Lock()
	if row, ok := r.rows[key]; ok {
		r.mu.Unlock()
		return row, nil
	}
	if c, ok := r.flight[key]; ok {
		r.mu.Unlock()
		<-c.done
		return c.row, c.err
	}
	c := &rowCall{done: make(chan struct{})}
	r.flight[key] = c
	r.mu.Unlock()

	r.obs.Counter("gpnm_rpc_rows_missed_total").Inc()
	var resp rowResponse
	err := r.post("row", "/row", map[string]interface{}{
		"part": part, "src": src, "reverse": reverse,
	}, &resp)
	var row []rowEntry
	if err == nil {
		row = make([]rowEntry, len(resp.Nodes))
		for i, n := range resp.Nodes {
			row[i] = rowEntry{n, resp.Dists[i]}
		}
	}
	r.mu.Lock()
	if err == nil {
		r.rows[key] = row
	}
	delete(r.flight, key)
	r.mu.Unlock()
	c.row, c.err = row, err
	close(c.done)
	return row, err
}

// entriesOf converts one wire row into cache form.
func entriesOf(nodes []uint32, dists []shortest.Dist) []rowEntry {
	row := make([]rowEntry, len(nodes))
	for i, n := range nodes {
		row[i] = rowEntry{n, dists[i]}
	}
	return row
}

// wireRow converts one cached row back into wire form for Rows callers.
func wireRow(row []rowEntry) Row {
	w := Row{Nodes: make([]uint32, len(row)), Dists: make([]shortest.Dist, len(row))}
	for i, en := range row {
		w.Nodes[i], w.Dists[i] = en.node, en.d
	}
	return w
}

// Rows answers many rows in one call, aligned with reqs: cached rows
// are served locally, rows someone else is already fetching are
// awaited (singleflight), and every remaining miss crosses the wire in
// ONE /rows POST. Fetched rows install in the cache exactly like
// singleton fetches, so a bulk prefetch warms every later Ball/Dist on
// the same keys.
func (r *RPC) Rows(reqs []RowReq) ([]Row, error) {
	out := make([]Row, len(reqs))
	type waiter struct {
		i int
		c *rowCall
	}
	var waits []waiter
	var fetch []RowReq
	var fetchKeys []rowKey
	var fetchIdx []int
	r.mu.Lock()
	for i, rq := range reqs {
		key := rowKey{rq.Part, rq.Src, rq.Reverse}
		if row, ok := r.rows[key]; ok {
			out[i] = wireRow(row)
			continue
		}
		if c, ok := r.flight[key]; ok {
			// In flight — ours (a duplicate earlier in reqs) or another
			// goroutine's; either way the fetch resolves it.
			waits = append(waits, waiter{i, c})
			continue
		}
		c := &rowCall{done: make(chan struct{})}
		r.flight[key] = c
		fetch = append(fetch, rq)
		fetchKeys = append(fetchKeys, key)
		fetchIdx = append(fetchIdx, i)
	}
	r.mu.Unlock()

	if len(fetch) > 0 {
		var resp rowsResponse
		err := r.post("rows", "/rows", map[string]interface{}{"reqs": fetch}, &resp)
		if err == nil && len(resp.Rows) != len(fetch) {
			err = &TransportError{Addr: r.base, Op: "rows",
				Err: fmt.Errorf("worker answered %d rows for %d requests", len(resp.Rows), len(fetch))}
		}
		rows := make([][]rowEntry, len(fetch))
		if err == nil {
			for k, wr := range resp.Rows {
				if !wr.Ok {
					err = &TransportError{Addr: r.base, Op: "rows",
						Err: fmt.Errorf("partition %d not owned by this worker", fetch[k].Part)}
					break
				}
				rows[k] = entriesOf(wr.Nodes, wr.Dists)
			}
		}
		r.mu.Lock()
		for k, key := range fetchKeys {
			c := r.flight[key]
			delete(r.flight, key)
			if err == nil {
				r.rows[key] = rows[k]
				c.row = rows[k]
			}
			c.err = err
			close(c.done)
		}
		r.mu.Unlock()
		if err != nil {
			return nil, err
		}
		r.obs.Counter("gpnm_rpc_rows_prefetched_total").Add(uint64(len(fetch)))
		for k, i := range fetchIdx {
			out[i] = wireRow(rows[k])
		}
	}
	for _, w := range waits {
		<-w.c.done
		if w.c.err != nil {
			return nil, w.c.err
		}
		out[w.i] = wireRow(w.c.row)
	}
	return out, nil
}

// Dist answers an intra distance off the cached forward row of x.
func (r *RPC) Dist(part int, x, y uint32) (shortest.Dist, error) {
	row, err := r.row(part, x, false)
	if err != nil {
		return shortest.Inf, err
	}
	i := sort.Search(len(row), func(i int) bool { return row[i].node >= y })
	if i < len(row) && row[i].node == y {
		return row[i].d, nil
	}
	return shortest.Inf, nil
}

// Ball visits the intra ball of src (ascending local id) from the
// cached full-horizon row.
func (r *RPC) Ball(part int, src uint32, maxD int, reverse bool, fn func(local uint32, d shortest.Dist) bool) error {
	if maxD < 0 {
		return nil
	}
	row, err := r.row(part, src, reverse)
	if err != nil {
		return err
	}
	for _, en := range row {
		if int(en.d) > maxD {
			continue
		}
		if !fn(en.node, en.d) {
			return nil
		}
	}
	return nil
}

// touchedParts collects the partitions whose subgraphs an op list
// mutates. Part < 0 ops (cross edges) touch no partition subgraph —
// they live only in the data-graph replica and the overlay — so they
// invalidate no intra rows.
func touchedParts(ops []Op) map[int]bool {
	touched := make(map[int]bool)
	for _, op := range ops {
		if op.Part >= 0 {
			touched[op.Part] = true
		}
	}
	return touched
}

// ApplyOps streams one ordered, epoch-fenced op batch to the worker
// and returns the per-op affected sets of the partitions this worker
// owns. A worker that already applied this epoch (the response was
// lost, or a failover retry re-sent the flush) answers its recorded
// sets instead of re-applying.
//
// Cache discipline: on success only the touched partitions' rows are
// dropped — an intra row depends on nothing but its partition's
// subgraph, so rows of untouched partitions stay valid across the
// flush. The coordinator's warm demand rides the same round trip: the
// worker recomputes those rows from its post-apply state and they are
// installed here, so the overlay reconciliation that follows the flush
// starts with a warm cache instead of a cold one. On failure the cache
// drops wholesale (the worker may have applied a prefix).
func (r *RPC) ApplyOps(epoch uint64, ops []Op, warm []RowReq) ([][]uint32, error) {
	touched := touchedParts(ops)
	// Send only the warm rows that will actually miss after the scoped
	// drop below: rows of touched partitions always, others only when
	// not already cached.
	var send []RowReq
	r.mu.Lock()
	for _, rq := range warm {
		if !touched[rq.Part] {
			if _, ok := r.rows[rowKey{rq.Part, rq.Src, rq.Reverse}]; ok {
				continue
			}
		}
		send = append(send, rq)
	}
	r.mu.Unlock()

	var resp opsResponse
	err := r.post("ops", "/ops", map[string]interface{}{"epoch": epoch, "ops": ops, "warm": send}, &resp)
	if err != nil {
		r.dropRows() // the worker may have applied a prefix
		return nil, err
	}
	r.mu.Lock()
	for key := range r.rows {
		if touched[key.part] {
			delete(r.rows, key)
		}
	}
	warmed := 0
	for k, wr := range resp.Rows {
		if k >= len(send) || !wr.Ok {
			continue // reassigned mid-flight; the next read routes afresh
		}
		r.rows[rowKey{send[k].Part, send[k].Src, send[k].Reverse}] = entriesOf(wr.Nodes, wr.Dists)
		warmed++
	}
	r.mu.Unlock()
	if warmed > 0 {
		r.obs.Counter("gpnm_rpc_rows_prefetched_total").Add(uint64(warmed))
	}
	if len(resp.Aff) != len(ops) {
		return nil, &TransportError{Addr: r.base, Op: "ops",
			Err: fmt.Errorf("worker answered %d affected sets for %d ops", len(resp.Aff), len(ops))}
	}
	return resp.Aff, nil
}

// Affected computes conservative balls against the worker's data-graph
// replica.
func (r *RPC) Affected(reqs []AffectedReq) ([]nodeset.Set, error) {
	var resp affectedResponse
	if err := r.post("affected", "/affected", map[string]interface{}{"reqs": reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Sets) != len(reqs) {
		return nil, &TransportError{Addr: r.base, Op: "affected",
			Err: fmt.Errorf("worker answered %d sets for %d requests", len(resp.Sets), len(reqs))}
	}
	out := make([]nodeset.Set, len(resp.Sets))
	for i, s := range resp.Sets {
		out[i] = nodeset.Set(s)
	}
	return out, nil
}

// Close drops cached rows and idle connections; the worker process
// stays up for the next coordinator.
func (r *RPC) Close() error {
	r.dropRows()
	r.hc.CloseIdleConnections()
	return nil
}

var _ Shard = (*RPC)(nil)
