package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/shortest"
)

// TransportError is the error an RPC shard returns when the worker
// cannot be reached or answers with an error after retries. The
// coordinator treats it as a shard loss and runs failover (rebuild the
// lost partitions on survivors or spares); only when no capacity
// survives does it poison the substrate with ErrSubstrateLost.
// errors.Is(err, ErrSubstrateLost) and errors.As(err, &te) both work
// on what callers observe from a terminal loss.
type TransportError struct {
	Addr string
	Op   string
	Err  error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("shard %s: %s: %v", e.Addr, e.Op, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// RPC fronts one shard worker process (cmd/gpnm-shard) over HTTP/JSON.
//
// Reads cache aggressively: Ball and Dist are served from full-horizon
// intra rows fetched once per (partition, source, direction) and kept
// until the next mutation — the coordinator's query patterns (overlay
// Dijkstras, stitched rows, the matching fixpoint) re-read the same
// rows many times per epoch, so the row cache turns per-query RPCs
// into per-row ones. The cache is safe for the engine's concurrent
// read epochs; every mutating call drops it wholesale.
type RPC struct {
	base string
	hc   *http.Client
	obs  *obs.Registry // per-endpoint latency/bytes/retry/failure telemetry

	mu   sync.Mutex
	rows map[rowKey][]rowEntry
}

type rowKey struct {
	part    int
	src     uint32
	reverse bool
}

type rowEntry struct {
	node uint32
	d    shortest.Dist
}

// ParseAddrs splits a comma-separated -shards flag value into worker
// addresses, trimming whitespace and dropping empties — the one parser
// every binary taking the flag shares.
func ParseAddrs(spec string) []string {
	var addrs []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

// Dial returns a client for the worker at addr ("host:port" or a full
// http:// URL). It performs no I/O; the first call does. Telemetry
// goes to obs.Default; use DialWith to isolate it.
func Dial(addr string) *RPC { return DialWith(addr, obs.Default) }

// DialWith is Dial with the telemetry registry chosen by the caller:
// every remote call records a per-endpoint latency histogram
// (gpnm_rpc_seconds), bytes in/out (gpnm_rpc_bytes_total) and
// retry/failure counters into reg.
func DialWith(addr string, reg *obs.Registry) *RPC {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	if reg == nil {
		reg = obs.Default
	}
	return &RPC{
		base: base,
		hc:   &http.Client{}, // per-request deadlines set in post()
		obs:  reg,
		rows: make(map[rowKey][]rowEntry),
	}
}

// reqTimeout picks the deadline for one request. Reads and op streams
// are bounded snugly; /build runs a full remote intra-engine rebuild —
// exactly the superlinear work sharding exists to spread — so it gets
// room to finish on sharding-scale graphs instead of being declared
// dead (and pointlessly restarted) by a blanket client timeout.
func reqTimeout(path string) time.Duration {
	switch path {
	case "/build", "/horizon":
		return 4 * time.Hour
	default:
		return 5 * time.Minute
	}
}

// Addr returns the worker's base URL.
func (r *RPC) Addr() string { return r.base }

// Remote reports true: this shard needs the full op stream (replica
// maintenance) and serves Affected off its replica.
func (r *RPC) Remote() bool { return true }

// post sends one JSON request, retrying transient transport failures,
// and decodes the response into out. Worker-side errors (non-2xx) are
// not retried — they signal state divergence, not a flaky network.
// Retrying an /ops whose response was lost is safe: the stream is
// epoch-fenced, so a worker that already applied the epoch answers its
// recorded response instead of re-applying.
func (r *RPC) post(op, path string, in, out interface{}) (err error) {
	// Per-endpoint telemetry: one latency observation per call (retries
	// included — the coordinator waits for the whole thing), bytes as
	// they cross the wire, failure counted once per failed call.
	start := time.Now()
	defer func() {
		r.obs.Histogram("gpnm_rpc_seconds", "endpoint", path).Observe(time.Since(start))
		if err != nil {
			r.obs.Counter("gpnm_rpc_failures_total", "endpoint", path).Inc()
		}
	}()
	body, err := json.Marshal(in)
	if err != nil {
		return &TransportError{Addr: r.base, Op: op, Err: err}
	}
	var last error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			r.obs.Counter("gpnm_rpc_retries_total", "endpoint", path).Inc()
			time.Sleep(time.Duration(attempt) * 100 * time.Millisecond)
		}
		ctx, cancel := context.WithTimeout(context.Background(), reqTimeout(path))
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
		if err != nil {
			cancel()
			return &TransportError{Addr: r.base, Op: op, Err: err}
		}
		req.Header.Set("Content-Type", "application/json")
		r.obs.Counter("gpnm_rpc_bytes_total", "endpoint", path, "direction", "out").Add(uint64(len(body)))
		resp, err := r.hc.Do(req)
		if err != nil {
			cancel()
			last = err
			continue
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		r.obs.Counter("gpnm_rpc_bytes_total", "endpoint", path, "direction", "in").Add(uint64(len(data)))
		if err != nil {
			last = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			return &TransportError{Addr: r.base, Op: op,
				Err: fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))}
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return &TransportError{Addr: r.base, Op: op, Err: err}
			}
		}
		return nil
	}
	return &TransportError{Addr: r.base, Op: op, Err: last}
}

func (r *RPC) dropRows() {
	r.mu.Lock()
	r.rows = make(map[rowKey][]rowEntry)
	r.mu.Unlock()
}

// Ping probes the worker's /healthz with a short bounded GET and no
// retries — the failover controller calls it to separate dead workers
// from transient faults, so it must answer fast either way.
func (r *RPC) Ping() (err error) {
	start := time.Now()
	defer func() {
		r.obs.Histogram("gpnm_rpc_seconds", "endpoint", "/healthz").Observe(time.Since(start))
		if err != nil {
			r.obs.Counter("gpnm_rpc_failures_total", "endpoint", "/healthz").Inc()
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/healthz", nil)
	if err != nil {
		return &TransportError{Addr: r.base, Op: "ping", Err: err}
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return &TransportError{Addr: r.base, Op: "ping", Err: err}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return &TransportError{Addr: r.base, Op: "ping",
			Err: fmt.Errorf("HTTP %d", resp.StatusCode)}
	}
	return nil
}

// Build ships the coordinator's snapshots — the owned partitions'
// subgraphs plus the full data-graph adjacency — and blocks until the
// worker has built its intra engines.
func (r *RPC) Build(cfg Config, index int, owned []int, src Source) error {
	req := buildRequest{Config: cfg, Index: index, Graph: src.GraphSnapshot()}
	for _, p := range owned {
		req.Parts = append(req.Parts, src.PartSnapshot(p))
	}
	if err := r.post("build", "/build", req, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// Rebuild ships additional partitions' snapshots for the worker to
// build on top of its existing state — the failover path for survivors
// absorbing a dead shard's partitions. The worker keeps its replica,
// its other engines and its op-stream fence.
func (r *RPC) Rebuild(cfg Config, index int, added []int, src Source) error {
	req := rebuildRequest{Config: cfg, Index: index}
	for _, p := range added {
		req.Parts = append(req.Parts, src.PartSnapshot(p))
	}
	if err := r.post("rebuild", "/rebuild", req, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// EnsureHorizon widens the worker's engines to cover bound k.
func (r *RPC) EnsureHorizon(k int) error {
	if err := r.post("horizon", "/horizon", map[string]int{"k": k}, nil); err != nil {
		return err
	}
	r.dropRows()
	return nil
}

// row returns the cached full-horizon intra row, fetching on a miss.
// Concurrent misses on one key may fetch twice; the rows are identical
// and the second install overwrites harmlessly.
func (r *RPC) row(part int, src uint32, reverse bool) ([]rowEntry, error) {
	key := rowKey{part, src, reverse}
	r.mu.Lock()
	row, ok := r.rows[key]
	r.mu.Unlock()
	if ok {
		return row, nil
	}
	var resp rowResponse
	if err := r.post("row", "/row", map[string]interface{}{
		"part": part, "src": src, "reverse": reverse,
	}, &resp); err != nil {
		return nil, err
	}
	row = make([]rowEntry, len(resp.Nodes))
	for i, n := range resp.Nodes {
		row[i] = rowEntry{n, resp.Dists[i]}
	}
	r.mu.Lock()
	r.rows[key] = row
	r.mu.Unlock()
	return row, nil
}

// Dist answers an intra distance off the cached forward row of x.
func (r *RPC) Dist(part int, x, y uint32) (shortest.Dist, error) {
	row, err := r.row(part, x, false)
	if err != nil {
		return shortest.Inf, err
	}
	i := sort.Search(len(row), func(i int) bool { return row[i].node >= y })
	if i < len(row) && row[i].node == y {
		return row[i].d, nil
	}
	return shortest.Inf, nil
}

// Ball visits the intra ball of src (ascending local id) from the
// cached full-horizon row.
func (r *RPC) Ball(part int, src uint32, maxD int, reverse bool, fn func(local uint32, d shortest.Dist) bool) error {
	if maxD < 0 {
		return nil
	}
	row, err := r.row(part, src, reverse)
	if err != nil {
		return err
	}
	for _, en := range row {
		if int(en.d) > maxD {
			continue
		}
		if !fn(en.node, en.d) {
			return nil
		}
	}
	return nil
}

// ApplyOps streams one ordered, epoch-fenced op batch to the worker
// and returns the per-op affected sets of the partitions this worker
// owns. A worker that already applied this epoch (the response was
// lost, or a failover retry re-sent the flush) answers its recorded
// sets instead of re-applying.
func (r *RPC) ApplyOps(epoch uint64, ops []Op) ([][]uint32, error) {
	var resp opsResponse
	err := r.post("ops", "/ops", map[string]interface{}{"epoch": epoch, "ops": ops}, &resp)
	r.dropRows() // the worker may have applied a prefix even on failure
	if err != nil {
		return nil, err
	}
	if len(resp.Aff) != len(ops) {
		return nil, &TransportError{Addr: r.base, Op: "ops",
			Err: fmt.Errorf("worker answered %d affected sets for %d ops", len(resp.Aff), len(ops))}
	}
	return resp.Aff, nil
}

// Affected computes conservative balls against the worker's data-graph
// replica.
func (r *RPC) Affected(reqs []AffectedReq) ([]nodeset.Set, error) {
	var resp affectedResponse
	if err := r.post("affected", "/affected", map[string]interface{}{"reqs": reqs}, &resp); err != nil {
		return nil, err
	}
	if len(resp.Sets) != len(reqs) {
		return nil, &TransportError{Addr: r.base, Op: "affected",
			Err: fmt.Errorf("worker answered %d sets for %d requests", len(resp.Sets), len(reqs))}
	}
	out := make([]nodeset.Set, len(resp.Sets))
	for i, s := range resp.Sets {
		out[i] = nodeset.Set(s)
	}
	return out, nil
}

// Close drops cached rows and idle connections; the worker process
// stays up for the next coordinator.
func (r *RPC) Close() error {
	r.dropRows()
	r.hc.CloseIdleConnections()
	return nil
}

var _ Shard = (*RPC)(nil)
