package shard

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/shortest"
	"uagpnm/internal/srvutil"
	"uagpnm/internal/workpool"
)

// Server is the worker side of the shard protocol: the state one
// cmd/gpnm-shard process holds for one coordinator, behind an HTTP/JSON
// handler the RPC client speaks to.
//
// The worker replicates two things from the coordinator's op stream:
// the induced subgraphs of the partitions it owns — whose intra SLen
// engines (the superlinear state sharding exists to spread) it serves
// through an embedded Local shard, so the engine-maintenance logic is
// written exactly once — and the full data-graph *adjacency* (linear,
// label-less), which lets the coordinator fan the batch's conservative
// affected-ball computation (ApplyDataBatch phases 1 and 4) across the
// shard fleet instead of running every ball itself.
//
// One worker serves one coordinator at a time: /build resets all state
// unconditionally, so a fresh coordinator simply claims the worker.
type Server struct {
	mu sync.RWMutex // build/ops exclusive; row/dist/affected shared

	cfg     Config
	index   int                  // this worker's position in the coordinator's shard table
	replica *graph.Graph         // full data-graph adjacency replica
	subs    map[int]*graph.Graph // owned partitions' subgraph replicas
	local   *Local               // the intra engines over subs

	// Op-stream fence: the highest epoch this worker's state reflects,
	// with the response it answered for it. A /build adopts the
	// coordinator's fence (the snapshots already contain those ops); a
	// re-sent /ops at or below the fenced epoch answers lastResp — or
	// empty sets for an older epoch, or one absorbed via a fenced build
	// — instead of re-applying. That idempotence is what makes the
	// coordinator's failover retry of an in-flight batch (and the
	// chunked op stream's post-repair re-flush) safe.
	lastEpoch uint64
	lastResp  *opsResponse

	gballPool sync.Pool

	// Worker-side telemetry: per-endpoint request counts and service
	// latency, plus the applied-op counter. Each gpnm-shard process owns
	// its own registry (the process-global default), served at /metrics,
	// so the coordinator's client-side RPC histograms can be compared
	// against the worker's server-side view to isolate transport cost.
	obs *obs.Registry
}

// NewServer returns an empty worker; /build initialises it.
func NewServer() *Server {
	s := &Server{subs: make(map[int]*graph.Graph), obs: obs.Default}
	s.local = NewLocal(s.subOf)
	s.gballPool.New = func() interface{} { return shortest.NewGraphBall() }
	return s
}

// Metrics reports the worker's telemetry registry (also served at
// GET /metrics on the worker's own port).
func (s *Server) Metrics() *obs.Registry { return s.obs }

// instrument wraps one endpoint handler with the worker-side request
// counter and service-latency histogram for that endpoint.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		s.obs.Counter("gpnm_worker_requests_total", "endpoint", endpoint).Inc()
		s.obs.Histogram("gpnm_worker_request_seconds", "endpoint", endpoint).Observe(time.Since(start))
	}
}

// subOf is the subgraph accessor the embedded Local shard reads through.
func (s *Server) subOf(part int) *graph.Graph { return s.subs[part] }

// Handler returns the worker's endpoint table:
//
//	GET  /healthz   liveness + owned-partition count + op-stream epoch
//	POST /build     reset + build from coordinator snapshots
//	POST /rebuild   build additional partitions on top of existing state
//	POST /horizon   widen every intra engine to a new hop cap
//	POST /row       one full-horizon intra row (part, src, reverse)
//	POST /rows      many full-horizon intra rows in one call (bulk)
//	POST /ops       apply one ordered, epoch-fenced op batch; answers
//	                piggybacked warm rows from the post-apply state
//	POST /affected  conservative balls against the data-graph replica
//	GET  /metrics   worker-side telemetry, Prometheus text exposition
//
// There is no point-distance endpoint: the client answers Dist (and
// every ball) from the cached full-horizon /row or /rows, which the
// engine's query patterns re-read many times per epoch anyway.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealth))
	mux.HandleFunc("POST /build", s.instrument("/build", s.handleBuild))
	mux.HandleFunc("POST /rebuild", s.instrument("/rebuild", s.handleRebuild))
	mux.HandleFunc("POST /horizon", s.instrument("/horizon", s.handleHorizon))
	mux.HandleFunc("POST /row", s.instrument("/row", s.handleRow))
	mux.HandleFunc("POST /rows", s.instrument("/rows", s.handleRows))
	mux.HandleFunc("POST /ops", s.instrument("/ops", s.handleOps))
	mux.HandleFunc("POST /affected", s.instrument("/affected", s.handleAffected))
	mux.Handle("GET /metrics", s.obs)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	built := s.replica != nil
	parts := len(s.subs)
	idx := s.index
	epoch := s.lastEpoch
	s.mu.RUnlock()
	srvutil.WriteJSON(w, http.StatusOK, map[string]interface{}{
		"ok": true, "built": built, "parts": parts, "index": idx, "epoch": epoch,
	})
}

// buildRequest carries the coordinator state a worker replicates.
type buildRequest struct {
	Config Config     `json:"config"`
	Index  int        `json:"index"`
	Graph  Snapshot   `json:"graph"`
	Parts  []Snapshot `json:"parts"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	var req buildRequest
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = req.Config
	s.index = req.Index
	s.replica = req.Graph.Materialise()
	s.subs = make(map[int]*graph.Graph, len(req.Parts))
	owned := make([]int, 0, len(req.Parts))
	for _, snap := range req.Parts {
		s.subs[snap.Part] = snap.Materialise()
		owned = append(owned, snap.Part)
	}
	s.local = NewLocal(s.subOf)
	_ = s.local.Build(req.Config, req.Index, owned, nil) // in-process: never errors
	// The snapshots reflect every flush up to the coordinator's fence:
	// a replayed /ops at that epoch must answer empty sets, not apply.
	s.lastEpoch, s.lastResp = req.Config.Epoch, nil
	srvutil.WriteJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "parts": len(s.subs)})
}

// rebuildRequest carries additional partitions for a built worker to
// absorb (the failover path); replica, fence and prior engines survive.
type rebuildRequest struct {
	Config Config     `json:"config"`
	Index  int        `json:"index"`
	Parts  []Snapshot `json:"parts"`
}

func (s *Server) handleRebuild(w http.ResponseWriter, r *http.Request) {
	var req rebuildRequest
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica == nil {
		srvutil.WriteError(w, http.StatusConflict, "worker not built")
		return
	}
	s.cfg = req.Config
	s.index = req.Index
	added := make([]int, 0, len(req.Parts))
	for _, snap := range req.Parts {
		s.subs[snap.Part] = snap.Materialise()
		added = append(added, snap.Part)
	}
	_ = s.local.Build(req.Config, req.Index, added, nil) // in-process: never errors
	srvutil.WriteJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "parts": len(s.subs)})
}

func (s *Server) handleHorizon(w http.ResponseWriter, r *http.Request) {
	var req struct {
		K int `json:"k"`
	}
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Horizon != 0 && req.K > s.cfg.Horizon {
		s.cfg.Horizon = req.K
		_ = s.local.EnsureHorizon(req.K) // in-process: never errors
	}
	srvutil.WriteJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// rowResponse is one full-horizon intra row.
type rowResponse struct {
	Nodes []uint32        `json:"nodes"`
	Dists []shortest.Dist `json:"dists"`
}

func (s *Server) handleRow(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Part    int    `json:"part"`
		Src     uint32 `json:"src"`
		Reverse bool   `json:"reverse"`
	}
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.local.Owns(req.Part) {
		srvutil.WriteError(w, http.StatusNotFound, "partition %d not owned by this worker", req.Part)
		return
	}
	var resp rowResponse
	_ = s.local.Ball(req.Part, req.Src, capHops(s.cfg.Horizon), req.Reverse,
		func(v uint32, d shortest.Dist) bool {
			resp.Nodes = append(resp.Nodes, v)
			resp.Dists = append(resp.Dists, d)
			return true
		})
	srvutil.WriteJSON(w, http.StatusOK, resp)
}

// bulkRow is one full-horizon intra row inside a bulk answer. Ok
// distinguishes "row computed" from "partition not owned here": the
// client must never install a not-owned answer as an (empty) row, or a
// routing race during failover would poison its cache.
type bulkRow struct {
	Ok    bool            `json:"ok"`
	Nodes []uint32        `json:"nodes,omitempty"`
	Dists []shortest.Dist `json:"dists,omitempty"`
}

// rowsResponse carries one bulkRow per request, aligned by index.
type rowsResponse struct {
	Rows []bulkRow `json:"rows"`
}

// bulkRows answers many row requests against the current engine state,
// fanned across the worker pool (rows of distinct sources share
// nothing). Callers hold at least the read lock.
func (s *Server) bulkRows(reqs []RowReq) []bulkRow {
	out := make([]bulkRow, len(reqs))
	maxD := capHops(s.cfg.Horizon)
	workpool.ForEach(s.cfg.Workers, len(reqs), func(i int) {
		rq := reqs[i]
		if !s.local.Owns(rq.Part) {
			return
		}
		r := &out[i]
		r.Ok = true
		_ = s.local.Ball(rq.Part, rq.Src, maxD, rq.Reverse,
			func(v uint32, d shortest.Dist) bool {
				r.Nodes = append(r.Nodes, v)
				r.Dists = append(r.Dists, d)
				return true
			})
	})
	s.obs.Counter("gpnm_worker_rows_total").Add(uint64(len(reqs)))
	return out
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Reqs []RowReq `json:"reqs"`
	}
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.replica == nil {
		srvutil.WriteError(w, http.StatusConflict, "worker not built")
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, rowsResponse{Rows: s.bulkRows(req.Reqs)})
}

// opsResponse carries, aligned by op index, the local affected set of
// every op this worker owns (null otherwise), plus the piggybacked warm
// rows (aligned with the request's warm list) computed from the
// post-apply state.
type opsResponse struct {
	Aff  [][]uint32 `json:"aff"`
	Rows []bulkRow  `json:"rows,omitempty"`
}

func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Epoch uint64   `json:"epoch"`
		Ops   []Op     `json:"ops"`
		Warm  []RowReq `json:"warm"`
	}
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.replica == nil {
		srvutil.WriteError(w, http.StatusConflict, "worker not built")
		return
	}
	// Warm rows are recomputed fresh on every delivery — including fence
	// replays — because they describe post-apply engine state, which is
	// identical whether the ops applied now or on the lost first try.
	// Only Aff is part of the fence record.
	respond := func(resp opsResponse) {
		if len(req.Warm) > 0 {
			resp.Rows = s.bulkRows(req.Warm)
		}
		srvutil.WriteJSON(w, http.StatusOK, resp)
	}
	// Epoch fence (0 = unfenced legacy stream). A flush at the fenced
	// epoch was already absorbed — through an earlier delivery whose
	// response was lost, or through a fenced build whose snapshots
	// contained it — so answer what we answered then (empty sets after
	// a build: the coordinator's failover path compensates by dirtying
	// every reassigned partition's bridge anchors conservatively).
	if req.Epoch != 0 {
		if req.Epoch == s.lastEpoch {
			if s.lastResp != nil && len(s.lastResp.Aff) == len(req.Ops) {
				respond(*s.lastResp)
				return
			}
			respond(opsResponse{Aff: make([][]uint32, len(req.Ops))})
			return
		}
		if req.Epoch < s.lastEpoch {
			// Below the fence entirely: this state already reflects the
			// epoch. With the chunked op stream a rebuilt worker's fence
			// (the highest sealed epoch) sits above every stalled chunk
			// being re-flushed after a mid-stream repair, and only the
			// latest response is recorded — answer empty sets and let
			// the coordinator's compensation dirty the rebuilt
			// partitions' bridge anchors conservatively.
			respond(opsResponse{Aff: make([][]uint32, len(req.Ops))})
			return
		}
	}
	resp := opsResponse{Aff: make([][]uint32, len(req.Ops))}
	for i, op := range req.Ops {
		aff, err := s.applyOp(op)
		if err != nil {
			srvutil.WriteError(w, http.StatusConflict, "op %d (%v): %v", i, op.Kind, err)
			return
		}
		resp.Aff[i] = aff
	}
	if req.Epoch != 0 {
		s.lastEpoch, s.lastResp = req.Epoch, &opsResponse{Aff: resp.Aff}
	}
	s.obs.Counter("gpnm_worker_ops_total").Add(uint64(len(req.Ops)))
	respond(resp)
}

// applyOp advances the data-graph replica by the op's global-id view
// and, when this worker owns the touched partition, mirrors the op
// into the partition subgraph and hands it to the embedded Local shard
// — the same graph-first-engine-second order the coordinator uses, and
// the same engine-maintenance code path (Local.ApplyOps).
func (s *Server) applyOp(op Op) ([]uint32, error) {
	mine := op.Shard == s.index && op.Part >= 0
	switch op.Kind {
	case OpEdgeInsert:
		if !s.replica.AddEdge(op.From, op.To) {
			return nil, fmt.Errorf("replica rejected edge insert %d->%d", op.From, op.To)
		}
		if !mine {
			return nil, nil
		}
		if !s.local.Owns(op.Part) {
			return nil, fmt.Errorf("partition %d not owned/built", op.Part)
		}
		s.subs[op.Part].AddEdge(op.LFrom, op.LTo)
	case OpEdgeDelete:
		if !s.replica.RemoveEdge(op.From, op.To) {
			return nil, fmt.Errorf("replica rejected edge delete %d->%d", op.From, op.To)
		}
		if !mine {
			return nil, nil
		}
		if !s.local.Owns(op.Part) {
			return nil, fmt.Errorf("partition %d not owned/built", op.Part)
		}
		s.subs[op.Part].RemoveEdge(op.LFrom, op.LTo)
	case OpNodeInsert:
		if id := s.replica.AddNodeLabelIDs(); id != op.Node {
			return nil, fmt.Errorf("replica assigned node id %d, coordinator expected %d", id, op.Node)
		}
		if !mine {
			return nil, nil
		}
		sub, ok := s.subs[op.Part]
		if !ok {
			// A node insert founded a new partition assigned to us;
			// Local.ApplyOps builds its engine from this fresh subgraph.
			sub = graph.New(nil)
			s.subs[op.Part] = sub
		}
		if local := sub.AddNodeLabelIDs(); local != op.Local {
			return nil, fmt.Errorf("partition %d assigned local id %d, coordinator expected %d", op.Part, local, op.Local)
		}
	case OpNodeDelete:
		if _, ok := s.replica.RemoveNode(op.Node); !ok {
			return nil, fmt.Errorf("replica rejected node delete %d", op.Node)
		}
		if !mine {
			return nil, nil
		}
		if !s.local.Owns(op.Part) {
			return nil, fmt.Errorf("partition %d not owned/built", op.Part)
		}
		// Local.ApplyOps replays op.RemovedLocal against the engine; the
		// mirror removal here yields the same edge set by construction.
		s.subs[op.Part].RemoveNode(op.Local)
	default:
		return nil, fmt.Errorf("unknown op kind %d", op.Kind)
	}
	return s.local.ApplyOp(op), nil
}

// affectedResponse carries one conservative ball per request.
type affectedResponse struct {
	Sets [][]uint32 `json:"sets"`
}

func (s *Server) handleAffected(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Reqs []AffectedReq `json:"reqs"`
	}
	if !srvutil.Decode(w, r, &req) {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.replica == nil {
		srvutil.WriteError(w, http.StatusConflict, "worker not built")
		return
	}
	resp := affectedResponse{Sets: make([][]uint32, len(req.Reqs))}
	//lint:allow lockguard read-locked CPU-only fan: no RPC or channel wait under the RLock; it orders /affected against /build swapping the replica
	workpool.ForEach(s.cfg.Workers, len(req.Reqs), func(i int) {
		gb := s.gballPool.Get().(*shortest.GraphBall)
		resp.Sets[i] = s.affected(gb, req.Reqs[i])
		s.gballPool.Put(gb)
	})
	srvutil.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) affected(gb *shortest.GraphBall, req AffectedReq) nodeset.Set {
	switch req.Kind {
	case OpEdgeInsert, OpEdgeDelete:
		return EdgeAffected(gb, s.replica, req.From, req.To, s.cfg.Horizon)
	case OpNodeDelete:
		return NodeAffected(gb, s.replica, req.Node,
			s.replica.Out(req.Node), s.replica.In(req.Node), s.cfg.Horizon)
	}
	return nil
}
