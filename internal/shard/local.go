package shard

import (
	"fmt"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/shortest"
	"uagpnm/internal/workpool"
)

// Local is the in-process Shard: it reads the coordinator's own
// partition subgraphs (shared pointers, never copies) and owns only the
// per-partition SLen engines. A coordinator with one Local shard is
// exactly the monolithic engine, re-expressed through the seam.
type Local struct {
	cfg Config
	sub func(part int) *graph.Graph // coordinator's subgraph accessor

	engs []*shortest.Engine // part index → intra engine (nil: not owned/built)
}

// NewLocal returns an in-process shard reading partition subgraphs
// through sub. The same accessor serves partitions created later.
func NewLocal(sub func(part int) *graph.Graph) *Local {
	return &Local{sub: sub}
}

// Remote reports false: ops reach a Local shard only when it owns the
// touched partition, and affected balls stay on the coordinator.
func (l *Local) Remote() bool { return false }

// Ping reports nil: an in-process shard lives exactly as long as the
// coordinator does.
func (l *Local) Ping() error { return nil }

func (l *Local) growTo(part int) {
	for len(l.engs) <= part {
		l.engs = append(l.engs, nil)
	}
}

// Owns reports whether the shard holds a built engine for part.
func (l *Local) Owns(part int) bool {
	return part >= 0 && part < len(l.engs) && l.engs[part] != nil
}

func (l *Local) eng(part int) *shortest.Engine {
	if part >= len(l.engs) || l.engs[part] == nil {
		//lint:allow panic ownership is fixed at Build time; the coordinator routing to a non-owned partition is a programming error
		panic(fmt.Sprintf("shard: partition %d not owned/built by this local shard", part))
	}
	return l.engs[part]
}

// newEngine builds one partition's intra engine with the given internal
// build fan-out.
//
// The engines default to the hybrid sparse backend even for small
// partitions when cfg.DenseThreshold is 0: stitched queries iterate
// intra rows constantly, and hybrid rows cost O(ball) per scan where
// dense rows cost O(|Pi|).
func (l *Local) newEngine(sub *graph.Graph, subWorkers int) *shortest.Engine {
	return shortest.NewEngine(sub, l.cfg.Horizon,
		shortest.WithDenseThreshold(l.cfg.DenseThreshold),
		shortest.WithELLWidth(l.cfg.ELLWidth),
		shortest.WithWorkers(subWorkers))
}

// Build (re)builds the owned partitions' engines, one partition per
// worker — partitions are disjoint, so the builds share nothing but
// the read-only label table. The pool is split across the two levels:
// with fewer partitions than workers, each engine's BFS build gets the
// leftover share, so a 2-partition graph on a 16-way pool still builds
// 16-wide instead of 2-wide.
func (l *Local) Build(cfg Config, index int, owned []int, src Source) error {
	l.cfg = cfg
	for _, p := range owned {
		l.growTo(p)
	}
	workers := cfg.Workers
	subShare := 1
	if len(owned) > 0 && workers > len(owned) {
		subShare = (workers + len(owned) - 1) / len(owned)
	}
	workpool.ForEach(workers, len(owned), func(i int) {
		p := owned[i]
		e := l.newEngine(l.sub(p), subShare)
		e.Build()
		l.engs[p] = e
	})
	return nil
}

// Rebuild builds engines for additional partitions on top of the
// existing ones. For an in-process shard this is exactly Build over the
// added set: Build only touches the partitions it is handed, and the
// "replica" is the coordinator's own graph.
func (l *Local) Rebuild(cfg Config, index int, added []int, src Source) error {
	return l.Build(cfg, index, added, src)
}

// EnsureHorizon widens every owned engine to cover bound k, one
// partition per worker.
func (l *Local) EnsureHorizon(k int) error {
	if l.cfg.Horizon == 0 || k <= l.cfg.Horizon {
		return nil
	}
	l.cfg.Horizon = k
	workpool.ForEach(l.cfg.Workers, len(l.engs), func(i int) {
		if l.engs[i] != nil {
			l.engs[i].EnsureHorizon(k)
		}
	})
	return nil
}

// Dist returns the intra distance between two locals of an owned
// partition.
func (l *Local) Dist(part int, x, y uint32) (shortest.Dist, error) {
	return l.eng(part).Dist(x, y), nil
}

// Ball visits the intra ball of src in ascending local-id order.
func (l *Local) Ball(part int, src uint32, maxD int, reverse bool, fn func(local uint32, d shortest.Dist) bool) error {
	e := l.eng(part)
	if reverse {
		e.ReverseBall(src, maxD, fn)
		return nil
	}
	e.ForwardBall(src, maxD, fn)
	return nil
}

// Rows answers many full-horizon intra rows in one call. In-process
// there is nothing to batch — each row is one engine scan — so this is
// the plain loop over Ball; it exists so the coordinator's row-demand
// planner runs identically against both shard kinds.
func (l *Local) Rows(reqs []RowReq) ([]Row, error) {
	maxD := capHops(l.cfg.Horizon)
	out := make([]Row, len(reqs))
	for i, rq := range reqs {
		r := &out[i]
		_ = l.Ball(rq.Part, rq.Src, maxD, rq.Reverse, func(v uint32, d shortest.Dist) bool {
			r.Nodes = append(r.Nodes, v)
			r.Dists = append(r.Dists, d)
			return true
		})
	}
	return out, nil
}

// ApplyOp synchronises the owning engine after one structural mutation
// (the shared subgraph already reflects it) and returns the local
// affected set — the allocation-free fast path the coordinator's
// in-process per-op loop uses directly. Replica-only ops (Part < 0)
// are skipped: the coordinator's graph is this shard's replica.
func (l *Local) ApplyOp(op Op) []uint32 {
	if op.Part < 0 {
		return nil
	}
	switch op.Kind {
	case OpEdgeInsert:
		return l.eng(op.Part).InsertEdge(op.LFrom, op.LTo)
	case OpEdgeDelete:
		return l.eng(op.Part).DeleteEdge(op.LFrom, op.LTo)
	case OpNodeInsert:
		l.growTo(op.Part)
		if l.engs[op.Part] == nil {
			// Fresh partition: one node, serial build.
			e := l.newEngine(l.sub(op.Part), 1)
			e.Build()
			l.engs[op.Part] = e
		} else {
			l.engs[op.Part].InsertNode(op.Local)
		}
		return []uint32{op.Local}
	case OpNodeDelete:
		removed := make([]graph.Edge, len(op.RemovedLocal))
		for j, e := range op.RemovedLocal {
			removed[j] = graph.Edge{From: e.From, To: e.To}
		}
		return l.eng(op.Part).DeleteNode(op.Local, removed)
	}
	return nil
}

// ApplyOps is the batch form of ApplyOp (the Shard interface surface).
// The epoch fence is meaningless in-process — the coordinator's own
// structures are the replica, and a Local shard can never half-apply a
// flush — so it is ignored, as is the warm row demand (there is no
// client row cache to warm; the coordinator reads the engines directly).
func (l *Local) ApplyOps(_ uint64, ops []Op, _ []RowReq) ([][]uint32, error) {
	aff := make([][]uint32, len(ops))
	for i, op := range ops {
		aff[i] = l.ApplyOp(op)
	}
	return aff, nil
}

// Affected is never routed to in-process shards: the coordinator holds
// the data graph and computes conservative balls directly.
func (l *Local) Affected(reqs []AffectedReq) ([]nodeset.Set, error) {
	//lint:allow panic never routed in-process: the coordinator holds the data graph and computes balls itself
	panic("shard: Affected on an in-process shard (coordinator computes balls locally)")
}

// Clone deep-copies the shard for an engine clone operating on cloned
// subgraphs (reachable through sub2).
func (l *Local) Clone(sub2 func(part int) *graph.Graph) *Local {
	c := &Local{cfg: l.cfg, sub: sub2, engs: make([]*shortest.Engine, len(l.engs))}
	for i, e := range l.engs {
		if e != nil {
			c.engs[i] = e.Clone(sub2(i))
		}
	}
	return c
}

// Close is a no-op for in-process shards.
func (l *Local) Close() error { return nil }

var _ Shard = (*Local)(nil)
