// Package shortest implements the SLen substrate of the paper: the
// all-pairs shortest-path-length structure that GPNM consults for every
// bounded-path test, together with its incremental maintenance under
// data-graph updates (§IV) and the per-update affected-node sets Aff_N
// that drive Type II and Type III elimination detection.
//
// Distances are maintained up to a configurable hop horizon H: entries
// longer than H are ∞. Every bound the matcher tests is ≤ H (the engine
// is built with H = the pattern's largest finite bound), so capped
// distances answer all bounded tests exactly; see Engine.Exact for the
// reachability ("*") caveat. H = 0 selects the exact, unbounded mode.
package shortest

import (
	"uagpnm/internal/sparse"
)

// Dist is a shortest-path length in hops; Inf means "no path within the
// engine's horizon".
type Dist = sparse.Dist

// Inf is the infinite distance.
const Inf = sparse.Inf

// Matrix is the storage abstraction behind SLen. Two implementations
// exist: Dense (flat |N|² array, for small graphs and the exact mode) and
// Hybrid (the paper's ELL+COO sparse format, for hop-capped large
// graphs). Rows are indexed by source node id, columns by target id.
// Implementations are not safe for concurrent mutation; the parallel
// builder computes rows concurrently and writes them from one goroutine.
type Matrix interface {
	// Get returns the entry at (r, c), Inf when absent.
	Get(r, c uint32) Dist
	// Set stores d at (r, c); Inf deletes.
	Set(r, c uint32, d Dist)
	// SetRow replaces row r; cols ascending, vals finite, both copied.
	SetRow(r uint32, cols []uint32, vals []Dist)
	// ClearRow removes every entry of row r.
	ClearRow(r uint32)
	// Row visits row r's finite entries in ascending column order;
	// fn returning false stops early.
	Row(r uint32, fn func(c uint32, d Dist) bool)
	// RowLen reports the number of finite entries in row r.
	RowLen(r uint32) int
	// Rows reports the current row-space bound.
	Rows() int
	// GrowTo extends the row space (never shrinks).
	GrowTo(rows int)
	// Clone returns an independent deep copy.
	Clone() Matrix
	// Nonzeros reports the number of stored finite entries.
	Nonzeros() int
}

// Dense is a flat row-major |N|×|N| matrix. Memory is Θ(N²); intended
// for small graphs (the exact mode and the paper's running examples).
type Dense struct {
	n int
	d []Dist
}

// NewDense returns an all-Inf n×n dense matrix.
func NewDense(n int) *Dense {
	m := &Dense{n: n, d: make([]Dist, n*n)}
	for i := range m.d {
		m.d[i] = Inf
	}
	return m
}

// Get returns the entry at (r, c), Inf when out of range.
func (m *Dense) Get(r, c uint32) Dist {
	if int(r) >= m.n || int(c) >= m.n {
		return Inf
	}
	return m.d[int(r)*m.n+int(c)]
}

// Set stores d at (r, c).
func (m *Dense) Set(r, c uint32, d Dist) {
	if int(r) >= m.n || int(c) >= m.n {
		panic("shortest: Dense.Set out of range; call GrowTo first")
	}
	m.d[int(r)*m.n+int(c)] = d
}

// SetRow replaces row r.
func (m *Dense) SetRow(r uint32, cols []uint32, vals []Dist) {
	m.ClearRow(r)
	base := int(r) * m.n
	for i, c := range cols {
		m.d[base+int(c)] = vals[i]
	}
}

// ClearRow sets row r to all-Inf.
func (m *Dense) ClearRow(r uint32) {
	base := int(r) * m.n
	for i := base; i < base+m.n; i++ {
		m.d[i] = Inf
	}
}

// Row visits finite entries of row r in ascending column order.
func (m *Dense) Row(r uint32, fn func(c uint32, d Dist) bool) {
	if int(r) >= m.n {
		return
	}
	base := int(r) * m.n
	for c := 0; c < m.n; c++ {
		if d := m.d[base+c]; d != Inf {
			if !fn(uint32(c), d) {
				return
			}
		}
	}
}

// RowLen counts finite entries of row r.
func (m *Dense) RowLen(r uint32) int {
	n := 0
	m.Row(r, func(uint32, Dist) bool { n++; return true })
	return n
}

// Rows reports the dimension.
func (m *Dense) Rows() int { return m.n }

// GrowTo reallocates to rows×rows, preserving content.
func (m *Dense) GrowTo(rows int) {
	if rows <= m.n {
		return
	}
	nd := make([]Dist, rows*rows)
	for i := range nd {
		nd[i] = Inf
	}
	for r := 0; r < m.n; r++ {
		copy(nd[r*rows:r*rows+m.n], m.d[r*m.n:(r+1)*m.n])
	}
	m.n = rows
	m.d = nd
}

// Clone returns a deep copy.
func (m *Dense) Clone() Matrix {
	return &Dense{n: m.n, d: append([]Dist(nil), m.d...)}
}

// Nonzeros counts finite entries.
func (m *Dense) Nonzeros() int {
	n := 0
	for _, d := range m.d {
		if d != Inf {
			n++
		}
	}
	return n
}

// Hybrid adapts the sparse ELL+COO matrix to the Matrix interface.
type Hybrid struct {
	*sparse.Matrix
}

// NewHybrid returns a rows-row hybrid matrix with the given ELL width.
func NewHybrid(rows, ellWidth int) *Hybrid {
	return &Hybrid{sparse.NewMatrix(rows, ellWidth)}
}

// Clone returns a deep copy.
func (m *Hybrid) Clone() Matrix { return &Hybrid{m.Matrix.Clone()} }
