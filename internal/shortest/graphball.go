package shortest

import "uagpnm/internal/graph"

// GraphBall runs a bounded BFS directly over the graph's adjacency and
// returns the ids within maxHops of src (src included), following
// out-edges, or in-edges when reverse is set. It answers "who is near
// this update site" against whatever state the graph is currently in —
// the cheap primitive behind conservative affected sets, costing
// O(ball·degree) with no dependence on any SLen substrate.
type GraphBall struct {
	sc *bfsScratch
}

// NewGraphBall returns a reusable traversal helper (not safe for
// concurrent use).
func NewGraphBall() *GraphBall { return &GraphBall{sc: newBFSScratch(0)} }

// Ball returns the node ids within maxHops of src in visit order (not
// sorted — affected-set builders normalise later anyway). The result
// aliases internal scratch and is valid until the next call.
func (b *GraphBall) Ball(g *graph.Graph, src uint32, maxHops int, reverse bool) []uint32 {
	if maxHops < 0 {
		return nil
	}
	cols, _ := b.sc.runOrdered(g, src, maxHops, reverse, skipEdge{}, false)
	return cols
}

// Row returns the (ascending id, distance) pairs within maxHops of src —
// an exact capped SLen row read straight off the graph. The results
// alias internal scratch and are valid until the next call.
func (b *GraphBall) Row(g *graph.Graph, src uint32, maxHops int, reverse bool) ([]uint32, []Dist) {
	if maxHops < 0 {
		return nil, nil
	}
	return b.sc.run(g, src, maxHops, reverse, skipEdge{})
}
