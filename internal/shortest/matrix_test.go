package shortest

import (
	"math/rand"
	"testing"
)

// TestMatrixConformance drives Dense and Hybrid through the same random
// operation sequence and asserts identical observable behaviour — the
// engines treat them interchangeably.
func TestMatrixConformance(t *testing.T) {
	const n = 24
	dense := Matrix(NewDense(n))
	hybrid := Matrix(NewHybrid(n, 3))
	rng := rand.New(rand.NewSource(6))
	for step := 0; step < 4000; step++ {
		r := uint32(rng.Intn(n))
		c := uint32(rng.Intn(n))
		switch rng.Intn(10) {
		case 0:
			dense.ClearRow(r)
			hybrid.ClearRow(r)
		case 1:
			k := rng.Intn(6)
			cols := make([]uint32, 0, k)
			seen := map[uint32]bool{}
			for len(cols) < k {
				x := uint32(rng.Intn(n))
				if !seen[x] {
					seen[x] = true
					cols = append(cols, x)
				}
			}
			for i := 1; i < len(cols); i++ {
				for j := i; j > 0 && cols[j-1] > cols[j]; j-- {
					cols[j-1], cols[j] = cols[j], cols[j-1]
				}
			}
			vals := make([]Dist, len(cols))
			for i := range vals {
				vals[i] = Dist(rng.Intn(9))
			}
			dense.SetRow(r, cols, vals)
			hybrid.SetRow(r, cols, vals)
		case 2:
			dense.Set(r, c, Inf)
			hybrid.Set(r, c, Inf)
		default:
			d := Dist(rng.Intn(9))
			dense.Set(r, c, d)
			hybrid.Set(r, c, d)
		}
	}
	if dense.Nonzeros() != hybrid.Nonzeros() {
		t.Fatalf("nonzeros: dense %d, hybrid %d", dense.Nonzeros(), hybrid.Nonzeros())
	}
	for r := uint32(0); r < n; r++ {
		if dense.RowLen(r) != hybrid.RowLen(r) {
			t.Fatalf("RowLen(%d): dense %d, hybrid %d", r, dense.RowLen(r), hybrid.RowLen(r))
		}
		for c := uint32(0); c < n; c++ {
			if a, b := dense.Get(r, c), hybrid.Get(r, c); a != b {
				t.Fatalf("Get(%d,%d): dense %v, hybrid %v", r, c, a, b)
			}
		}
		var dc, hc []uint32
		dense.Row(r, func(c uint32, _ Dist) bool { dc = append(dc, c); return true })
		hybrid.Row(r, func(c uint32, _ Dist) bool { hc = append(hc, c); return true })
		if len(dc) != len(hc) {
			t.Fatalf("Row(%d) lengths differ: %v vs %v", r, dc, hc)
		}
		for i := range dc {
			if dc[i] != hc[i] {
				t.Fatalf("Row(%d) order differs at %d: %v vs %v", r, i, dc, hc)
			}
		}
	}
}

func TestDenseGrowTo(t *testing.T) {
	m := NewDense(2)
	m.Set(0, 1, 3)
	m.Set(1, 0, 4)
	m.GrowTo(5)
	if m.Rows() != 5 {
		t.Fatalf("Rows = %d, want 5", m.Rows())
	}
	if m.Get(0, 1) != 3 || m.Get(1, 0) != 4 {
		t.Fatal("grow lost data")
	}
	if m.Get(4, 4) != Inf {
		t.Fatal("new cells must be Inf")
	}
	m.Set(4, 0, 1)
	if m.Get(4, 0) != 1 {
		t.Fatal("write to grown area failed")
	}
	m.GrowTo(3)
	if m.Rows() != 5 {
		t.Fatal("GrowTo must never shrink")
	}
}

func TestDenseCloneIndependence(t *testing.T) {
	m := NewDense(3)
	m.Set(1, 2, 7)
	c := m.Clone()
	c.Set(1, 2, 1)
	if m.Get(1, 2) != 7 {
		t.Fatal("clone mutation leaked")
	}
}

func TestGraphBall(t *testing.T) {
	g, ids := paperGraph()
	gb := NewGraphBall()
	ball := gb.Ball(g, ids["PM1"], 1, false)
	set := map[uint32]bool{}
	for _, id := range ball {
		set[id] = true
	}
	if len(ball) != 3 || !set[ids["PM1"]] || !set[ids["SE2"]] || !set[ids["DB1"]] {
		t.Fatalf("Ball(PM1,1) = %v", ball)
	}
	if got := gb.Ball(g, ids["PM1"], -1, false); got != nil {
		t.Fatalf("negative radius must be empty, got %v", got)
	}
	cols, dists := gb.Row(g, ids["PM1"], 2, false)
	if len(cols) != len(dists) || len(cols) < 4 {
		t.Fatalf("Row sizes: %d cols, %d dists", len(cols), len(dists))
	}
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Fatal("Row must be ascending")
		}
	}
}
