package shortest

import (
	"fmt"
	"runtime"
	"sync"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
)

// Engine maintains SLen — the shortest-path-length matrix between each
// pair of nodes in GD (paper Table II) — plus its mirror over the
// reversed graph, so both forward balls ("everything within k hops of u")
// and reverse balls ("everything that reaches v within k hops") are one
// row scan. The matcher, the affected-set computation (DER-II/III) and
// the partition engine are all built on these two queries.
//
// Mutation contract: the engine does not mutate the graph. Callers apply
// the structural change to the graph first and then invoke the matching
// engine method (InsertEdge after graph.AddEdge, DeleteEdge after
// graph.RemoveEdge, and so on). Preview* methods never mutate anything
// and may be called in any graph state that still contains the edge/node
// being previewed.
type Engine struct {
	g       *graph.Graph
	horizon int // 0 = exact/unbounded
	fwd     Matrix
	rev     Matrix
	scratch *bfsScratch

	denseThreshold int
	ellWidth       int
	workers        int // Build fan-out; 0 = GOMAXPROCS, 1 = serial

	// row snapshot buffers for diffing during recompute
	oldCols  []uint32
	oldDists []Dist
}

// Option configures an Engine.
type Option func(*Engine)

// WithDenseThreshold sets the node count up to which the dense matrix
// backend is selected (default 2048).
func WithDenseThreshold(n int) Option { return func(e *Engine) { e.denseThreshold = n } }

// WithELLWidth sets the hybrid backend's ELL row width (default 16).
func WithELLWidth(k int) Option { return func(e *Engine) { e.ellWidth = k } }

// WithWorkers bounds the goroutines used by Build's parallel BFS
// (0 = GOMAXPROCS, 1 = fully serial). Incremental maintenance is
// single-goroutine regardless.
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// NewEngine creates an SLen engine over g with the given hop horizon
// (0 = exact). Call Build before querying.
func NewEngine(g *graph.Graph, horizon int, opts ...Option) *Engine {
	e := &Engine{g: g, horizon: horizon, denseThreshold: 2048, ellWidth: 16}
	for _, o := range opts {
		o(e)
	}
	n := g.NumIDs()
	e.fwd = e.newMatrix(n)
	e.rev = e.newMatrix(n)
	e.scratch = newBFSScratch(n)
	return e
}

func (e *Engine) newMatrix(n int) Matrix {
	if n <= e.denseThreshold {
		return NewDense(n)
	}
	return NewHybrid(n, e.ellWidth)
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Horizon reports the hop cap (0 = exact mode).
func (e *Engine) Horizon() int { return e.horizon }

// Exact reports whether distances beyond any bound are represented
// (true only in unbounded mode). Capped engines answer every test with
// bound ≤ Horizon exactly; reachability ("*") tests degrade to
// "within Horizon hops".
func (e *Engine) Exact() bool { return e.horizon == 0 }

// Build computes both matrices from scratch with parallel BFS.
func (e *Engine) Build() {
	n := e.g.NumIDs()
	e.fwd.GrowTo(n)
	e.rev.GrowTo(n)
	for r := uint32(0); int(r) < n; r++ {
		e.fwd.ClearRow(r)
		e.rev.ClearRow(r)
	}
	e.buildInto(e.fwd, false)
	e.buildInto(e.rev, true)
}

type builtRow struct {
	src   uint32
	cols  []uint32
	dists []Dist
}

func (e *Engine) buildInto(m Matrix, reverse bool) {
	n := e.g.NumIDs()
	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	srcs := make(chan uint32, workers*2)
	rows := make(chan builtRow, workers*2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newBFSScratch(n)
			for src := range srcs {
				cols, dists := sc.run(e.g, src, e.horizon, reverse, skipEdge{})
				rows <- builtRow{
					src:   src,
					cols:  append([]uint32(nil), cols...),
					dists: append([]Dist(nil), dists...),
				}
			}
		}()
	}
	go func() {
		for src := uint32(0); int(src) < n; src++ {
			if e.g.Alive(src) {
				srcs <- src
			}
		}
		close(srcs)
		wg.Wait()
		close(rows)
	}()
	for row := range rows {
		m.SetRow(row.src, row.cols, row.dists)
	}
}

// Dist returns the shortest path length from u to v (Inf beyond the
// horizon or when no path exists).
func (e *Engine) Dist(u, v uint32) Dist {
	if u == v && e.g.Alive(u) {
		return 0
	}
	return e.fwd.Get(u, v)
}

// Reachable reports whether v is reachable from u — within the horizon
// for capped engines (see Exact).
func (e *Engine) Reachable(u, v uint32) bool { return e.Dist(u, v) != Inf }

// WithinHops reports whether d(u,v) ≤ k. k must be ≤ Horizon for capped
// engines; larger k panic to surface miscalibrated callers.
func (e *Engine) WithinHops(u, v uint32, k int) bool {
	if e.horizon != 0 && k > e.horizon {
		panic(fmt.Sprintf("shortest: WithinHops(%d) beyond horizon %d", k, e.horizon))
	}
	d := e.Dist(u, v)
	return d != Inf && int(d) <= k
}

// ForwardBall visits every v with d(u,v) ≤ k (including u itself at 0)
// in ascending id order.
func (e *Engine) ForwardBall(u uint32, k int, fn func(v uint32, d Dist) bool) {
	e.fwd.Row(u, func(c uint32, d Dist) bool {
		if int(d) > k {
			return true
		}
		return fn(c, d)
	})
}

// ReverseBall visits every x with d(x,v) ≤ k (including v itself at 0)
// in ascending id order.
func (e *Engine) ReverseBall(v uint32, k int, fn func(x uint32, d Dist) bool) {
	e.rev.Row(v, func(c uint32, d Dist) bool {
		if int(d) > k {
			return true
		}
		return fn(c, d)
	})
}

// Matrix exposes the forward SLen matrix (read-only use).
func (e *Engine) Matrix() Matrix { return e.fwd }

// effectiveHorizon returns the cap as an int usable in comparisons
// (a huge value in exact mode).
func (e *Engine) effectiveHorizon() int {
	if e.horizon == 0 {
		return int(Inf) - 1
	}
	return e.horizon
}

// InsertEdge updates SLen after edge (u,v) was added to the graph, using
// the exact single-edge closed form
//
//	d'(x,y) = min(d(x,y), d(x,u) + 1 + d(v,y)),
//
// and returns the affected nodes: every endpoint of a pair whose distance
// changed (the paper's Aff_N).
func (e *Engine) InsertEdge(u, v uint32) nodeset.Set {
	return e.insertEdge(u, v, true)
}

// PreviewInsertEdge computes Aff_N for inserting (u,v) without mutating
// SLen. The graph may or may not contain the edge yet.
func (e *Engine) PreviewInsertEdge(u, v uint32) nodeset.Set {
	return e.insertEdge(u, v, false)
}

func (e *Engine) insertEdge(u, v uint32, write bool) nodeset.Set {
	H := e.effectiveHorizon()
	var aff nodeset.Builder
	// X: sources reaching u within H-1; Y: targets within H-1 of v.
	type hop struct {
		id uint32
		d  Dist
	}
	var xs, ys []hop
	e.rev.Row(u, func(x uint32, d Dist) bool {
		if int(d) <= H-1 {
			xs = append(xs, hop{x, d})
		}
		return true
	})
	e.fwd.Row(v, func(y uint32, d Dist) bool {
		if int(d) <= H-1 {
			ys = append(ys, hop{y, d})
		}
		return true
	})
	for _, x := range xs {
		for _, y := range ys {
			if x.id == y.id {
				continue
			}
			nd := int(x.d) + 1 + int(y.d)
			if nd > H {
				continue
			}
			old := e.fwd.Get(x.id, y.id)
			if Dist(nd) < old {
				if write {
					e.fwd.Set(x.id, y.id, Dist(nd))
					e.rev.Set(y.id, x.id, Dist(nd))
				}
				aff.Add(x.id)
				aff.Add(y.id)
			}
		}
	}
	return aff.Set()
}

// DeleteEdge updates SLen after edge (u,v) was removed from the graph by
// re-running bounded BFS from every source that could have routed through
// (u,v), and returns the affected nodes.
func (e *Engine) DeleteEdge(u, v uint32) nodeset.Set {
	return e.applyDeletions([]graph.Edge{{From: u, To: v}})
}

// PreviewDeleteEdge computes Aff_N for deleting (u,v) without mutating
// SLen. The graph must still contain the edge.
func (e *Engine) PreviewDeleteEdge(u, v uint32) nodeset.Set {
	sources := e.deletionSources([]graph.Edge{{From: u, To: v}})
	var aff nodeset.Builder
	for _, x := range sources {
		cols, dists := e.scratch.run(e.g, x, e.horizon, false, skipEdge{from: u, to: v, active: true})
		e.diffRow(x, cols, dists, &aff, false)
	}
	return aff.Set()
}

// InsertNode registers a freshly added (isolated) node. Its edges are
// reported through InsertEdge as they are added.
func (e *Engine) InsertNode(id uint32) nodeset.Set {
	e.fwd.GrowTo(int(id) + 1)
	e.rev.GrowTo(int(id) + 1)
	e.fwd.Set(id, id, 0)
	e.rev.Set(id, id, 0)
	return nodeset.New(id)
}

// DeleteNode updates SLen after node id and its incident edges (removed,
// as returned by graph.RemoveNode) were deleted, and returns the affected
// nodes (id included).
func (e *Engine) DeleteNode(id uint32, removed []graph.Edge) nodeset.Set {
	aff := e.applyDeletions(removed)
	// The node's own rows must empty entirely (BFS from the now-dead
	// source already cleared the forward row if id was a deletion source;
	// make both directions unconditional).
	var extra nodeset.Builder
	extra.Add(id)
	e.fwd.Row(id, func(c uint32, d Dist) bool { extra.Add(c); return true })
	e.rev.Row(id, func(c uint32, d Dist) bool { extra.Add(c); return true })
	clearMirror := func(m, mirror Matrix) {
		var cols []uint32
		m.Row(id, func(c uint32, d Dist) bool { cols = append(cols, c); return true })
		m.ClearRow(id)
		for _, c := range cols {
			mirror.Set(c, id, Inf)
		}
	}
	clearMirror(e.fwd, e.rev)
	clearMirror(e.rev, e.fwd)
	return aff.Union(extra.Set())
}

// PreviewDeleteNode computes Aff_N for deleting node id (with all its
// incident edges) without mutating anything. The graph must still
// contain the node.
func (e *Engine) PreviewDeleteNode(id uint32) nodeset.Set {
	var incident []graph.Edge
	for _, v := range e.g.Out(id) {
		incident = append(incident, graph.Edge{From: id, To: v})
	}
	for _, u := range e.g.In(id) {
		incident = append(incident, graph.Edge{From: u, To: id})
	}
	sources := e.deletionSources(incident)
	var aff nodeset.Builder
	aff.Add(id)
	e.fwd.Row(id, func(c uint32, d Dist) bool { aff.Add(c); return true })
	e.rev.Row(id, func(c uint32, d Dist) bool { aff.Add(c); return true })
	for _, x := range sources {
		if x == id {
			continue
		}
		cols, dists := e.scratch.run(e.g, x, e.horizon, false, skipEdge{}.withNode(id))
		e.diffRow(x, cols, dists, &aff, false)
	}
	return aff.Set()
}

// deletionSources gathers every source whose row may change when the
// given edges disappear: anything that reaches some edge's tail within
// horizon-1 hops (per the current matrices), the tails themselves
// included.
func (e *Engine) deletionSources(edges []graph.Edge) []uint32 {
	H := e.effectiveHorizon()
	seen := nodeset.NewBits(e.g.NumIDs())
	var srcs []uint32
	for _, ed := range edges {
		if seen.Add(ed.From) {
			srcs = append(srcs, ed.From)
		}
		e.rev.Row(ed.From, func(x uint32, d Dist) bool {
			if int(d) <= H-1 && seen.Add(x) {
				srcs = append(srcs, x)
			}
			return true
		})
	}
	return srcs
}

// applyDeletions recomputes the rows of every candidate source after the
// graph already dropped the given edges, mirroring changes into the
// reverse matrix, and returns the affected set.
func (e *Engine) applyDeletions(edges []graph.Edge) nodeset.Set {
	sources := e.deletionSources(edges)
	var aff nodeset.Builder
	for _, x := range sources {
		cols, dists := e.scratch.run(e.g, x, e.horizon, false, skipEdge{})
		e.diffRow(x, cols, dists, &aff, true)
	}
	return aff.Set()
}

// diffRow compares the freshly computed row of x against the stored one,
// recording affected endpoints, and (when write is set) installs the new
// row in fwd and mirrors deltas into rev.
func (e *Engine) diffRow(x uint32, cols []uint32, dists []Dist, aff *nodeset.Builder, write bool) {
	// Snapshot the old row (SetRow would clear it before we finish diffing).
	e.oldCols = e.oldCols[:0]
	e.oldDists = e.oldDists[:0]
	e.fwd.Row(x, func(c uint32, d Dist) bool {
		e.oldCols = append(e.oldCols, c)
		e.oldDists = append(e.oldDists, d)
		return true
	})
	i, j := 0, 0
	changed := false
	for i < len(e.oldCols) || j < len(cols) {
		switch {
		case j == len(cols) || (i < len(e.oldCols) && e.oldCols[i] < cols[j]):
			// entry disappeared
			c := e.oldCols[i]
			aff.Add(x)
			aff.Add(c)
			changed = true
			if write {
				e.rev.Set(c, x, Inf)
			}
			i++
		case i == len(e.oldCols) || cols[j] < e.oldCols[i]:
			// entry appeared (possible when a deletion batch is applied
			// after insertions in the same reconciliation)
			c := cols[j]
			aff.Add(x)
			aff.Add(c)
			changed = true
			if write {
				e.rev.Set(c, x, dists[j])
			}
			j++
		default:
			if e.oldDists[i] != dists[j] {
				aff.Add(x)
				aff.Add(cols[j])
				changed = true
				if write {
					e.rev.Set(cols[j], x, dists[j])
				}
			}
			i++
			j++
		}
	}
	if write && changed {
		e.fwd.SetRow(x, cols, dists)
	}
}

// Clone returns an engine over g2 (a clone of the engine's graph) with
// copied matrices, so benchmark iterations can mutate independently.
func (e *Engine) Clone(g2 *graph.Graph) *Engine {
	return &Engine{
		g:              g2,
		horizon:        e.horizon,
		fwd:            e.fwd.Clone(),
		rev:            e.rev.Clone(),
		scratch:        newBFSScratch(g2.NumIDs()),
		denseThreshold: e.denseThreshold,
		ellWidth:       e.ellWidth,
		workers:        e.workers,
	}
}

// EnsureHorizon widens a capped engine to cover bound k, rebuilding when
// the current horizon is insufficient. Exact engines are always fine.
func (e *Engine) EnsureHorizon(k int) {
	if e.horizon == 0 || k <= e.horizon {
		return
	}
	e.horizon = k
	e.Build()
}

// withNode makes a skipEdge that instead suppresses an entire node.
func (s skipEdge) withNode(id uint32) skipEdge {
	s.skipNode = id
	s.skipNodeActive = true
	return s
}
