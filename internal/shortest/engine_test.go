package shortest

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
)

// paperGraph builds the data graph of the paper's Fig. 1(a)/Fig. 2(a),
// reconstructed from its SLen matrix (Table III): edges are exactly the
// pairs at distance 1. Node order matches the table:
// PM1 PM2 SE1 SE2 S1 TE1 TE2 DB1 → ids 0..7.
func paperGraph() (*graph.Graph, map[string]uint32) {
	g := graph.New(nil)
	names := []string{"PM1", "PM2", "SE1", "SE2", "S1", "TE1", "TE2", "DB1"}
	labels := []string{"PM", "PM", "SE", "SE", "S", "TE", "TE", "DB"}
	ids := make(map[string]uint32, len(names))
	for i, n := range names {
		ids[n] = g.AddNode(labels[i])
	}
	edges := [][2]string{
		{"PM1", "SE2"}, {"PM1", "DB1"},
		{"PM2", "SE1"},
		{"SE1", "PM2"}, {"SE1", "SE2"}, {"SE1", "S1"},
		{"SE2", "TE1"}, {"SE2", "DB1"},
		{"S1", "DB1"},
		{"TE1", "SE2"},
		{"TE2", "S1"},
		{"DB1", "SE1"},
	}
	for _, e := range edges {
		if !g.AddEdge(ids[e[0]], ids[e[1]]) {
			panic("paperGraph: bad edge " + e[0] + "->" + e[1])
		}
	}
	return g, ids
}

const inf = -1 // ∞ in the golden tables below

// tableIII is SLen of the paper's Table III, row/col order
// PM1 PM2 SE1 SE2 S1 TE1 TE2 DB1.
var tableIII = [8][8]int{
	{0, 3, 2, 1, 3, 2, inf, 1},
	{inf, 0, 1, 2, 2, 3, inf, 3},
	{inf, 1, 0, 1, 1, 2, inf, 2},
	{inf, 3, 2, 0, 3, 1, inf, 1},
	{inf, 3, 2, 3, 0, 4, inf, 1},
	{inf, 4, 3, 1, 4, 0, inf, 2},
	{inf, 4, 3, 4, 1, 5, 0, 2},
	{inf, 2, 1, 2, 2, 3, inf, 0},
}

// tableV is SLen after UD1 = insert e(SE1, TE2) (paper Table V).
var tableV = [8][8]int{
	{0, 3, 2, 1, 3, 2, 3, 1},
	{inf, 0, 1, 2, 2, 3, 2, 3},
	{inf, 1, 0, 1, 1, 2, 1, 2},
	{inf, 3, 2, 0, 3, 1, 3, 1},
	{inf, 3, 2, 3, 0, 4, 3, 1},
	{inf, 4, 3, 1, 4, 0, 4, 2},
	{inf, 4, 3, 4, 1, 5, 0, 2},
	{inf, 2, 1, 2, 2, 3, 2, 0},
}

// tableVI is SLen after UD2 = insert e(DB1, S1) on the original graph
// (paper Table VI).
var tableVI = [8][8]int{
	{0, 3, 2, 1, 2, 2, inf, 1},
	{inf, 0, 1, 2, 2, 3, inf, 3},
	{inf, 1, 0, 1, 1, 2, inf, 2},
	{inf, 3, 2, 0, 2, 1, inf, 1},
	{inf, 3, 2, 3, 0, 4, inf, 1},
	{inf, 4, 3, 1, 3, 0, inf, 2},
	{inf, 4, 3, 4, 1, 5, 0, 2},
	{inf, 2, 1, 2, 1, 3, inf, 0},
}

func checkAgainstTable(t *testing.T, e *Engine, want [8][8]int, what string) {
	t.Helper()
	for r := uint32(0); r < 8; r++ {
		for c := uint32(0); c < 8; c++ {
			wantD := Inf
			if want[r][c] != inf {
				wantD = Dist(want[r][c])
			}
			if got := e.Dist(r, c); got != wantD {
				t.Errorf("%s: d(%d,%d) = %v, want %v", what, r, c, got, wantD)
			}
		}
	}
}

func TestPaperTableIII(t *testing.T) {
	g, _ := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	checkAgainstTable(t, e, tableIII, "Table III")
}

func TestPaperTableVAndAffected(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	g.AddEdge(ids["SE1"], ids["TE2"])
	aff := e.InsertEdge(ids["SE1"], ids["TE2"])
	checkAgainstTable(t, e, tableV, "Table V")
	// Paper Table VII: Aff_N(UD1) = all eight nodes.
	if want := nodeset.New(0, 1, 2, 3, 4, 5, 6, 7); !aff.Equal(want) {
		t.Errorf("Aff_N(UD1) = %v, want %v", aff, want)
	}
}

func TestPaperTableVIAndAffected(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	g.AddEdge(ids["DB1"], ids["S1"])
	aff := e.InsertEdge(ids["DB1"], ids["S1"])
	checkAgainstTable(t, e, tableVI, "Table VI")
	// Paper Table VII: Aff_N(UD2) = {PM1, SE2, S1, TE1, DB1}.
	want := nodeset.New(ids["PM1"], ids["SE2"], ids["S1"], ids["TE1"], ids["DB1"])
	if !aff.Equal(want) {
		t.Errorf("Aff_N(UD2) = %v, want %v", aff, want)
	}
}

func TestPreviewMatchesApplyInsert(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	prev := e.PreviewInsertEdge(ids["SE1"], ids["TE2"])
	checkAgainstTable(t, e, tableIII, "preview must not mutate")
	g.AddEdge(ids["SE1"], ids["TE2"])
	applied := e.InsertEdge(ids["SE1"], ids["TE2"])
	if !prev.Equal(applied) {
		t.Errorf("preview = %v, applied = %v", prev, applied)
	}
}

func TestDeleteUndoesInsert(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	g.AddEdge(ids["SE1"], ids["TE2"])
	e.InsertEdge(ids["SE1"], ids["TE2"])
	prev := e.PreviewDeleteEdge(ids["SE1"], ids["TE2"])
	g.RemoveEdge(ids["SE1"], ids["TE2"])
	aff := e.DeleteEdge(ids["SE1"], ids["TE2"])
	checkAgainstTable(t, e, tableIII, "after delete of inserted edge")
	if !prev.Equal(aff) {
		t.Errorf("preview delete = %v, applied = %v", prev, aff)
	}
}

func TestWithinHopsAndBalls(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	if !e.WithinHops(ids["PM1"], ids["TE1"], 2) {
		t.Error("PM1 should reach TE1 within 2")
	}
	if e.WithinHops(ids["PM1"], ids["TE1"], 1) {
		t.Error("PM1 should not reach TE1 within 1")
	}
	if e.Reachable(ids["PM1"], ids["TE2"]) {
		t.Error("TE2 unreachable from PM1 in the original graph")
	}
	var ball []uint32
	e.ForwardBall(ids["PM1"], 1, func(v uint32, d Dist) bool {
		ball = append(ball, v)
		return true
	})
	want := nodeset.New(ids["PM1"], ids["SE2"], ids["DB1"])
	if !nodeset.New(ball...).Equal(want) {
		t.Errorf("ForwardBall(PM1,1) = %v, want %v", ball, want)
	}
	var rball []uint32
	e.ReverseBall(ids["SE2"], 1, func(v uint32, d Dist) bool {
		rball = append(rball, v)
		return true
	})
	wantR := nodeset.New(ids["SE2"], ids["PM1"], ids["SE1"], ids["TE1"])
	if !nodeset.New(rball...).Equal(wantR) {
		t.Errorf("ReverseBall(SE2,1) = %v, want %v", rball, wantR)
	}
}

func TestCappedEngineAgreesWithinHorizon(t *testing.T) {
	g, _ := paperGraph()
	exact := NewEngine(g, 0)
	exact.Build()
	for _, h := range []int{1, 2, 3, 4} {
		capped := NewEngine(g, h)
		capped.Build()
		for u := uint32(0); u < 8; u++ {
			for v := uint32(0); v < 8; v++ {
				want := exact.Dist(u, v)
				if want != Inf && int(want) > h {
					want = Inf
				}
				if got := capped.Dist(u, v); got != want {
					t.Fatalf("h=%d d(%d,%d) = %v, want %v", h, u, v, got, want)
				}
			}
		}
	}
}

func TestWithinHopsPanicsBeyondHorizon(t *testing.T) {
	g, _ := paperGraph()
	e := NewEngine(g, 2)
	e.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bound beyond horizon")
		}
	}()
	e.WithinHops(0, 1, 3)
}

func TestEnsureHorizon(t *testing.T) {
	g, _ := paperGraph()
	e := NewEngine(g, 2)
	e.Build()
	e.EnsureHorizon(4)
	if e.Horizon() != 4 {
		t.Fatalf("horizon = %d, want 4", e.Horizon())
	}
	if !e.WithinHops(0, 5, 2) { // PM1→TE1 = 2, still exact
		t.Fatal("distances lost on horizon widen")
	}
	if e.Dist(4, 5) != 4 { // S1→TE1 = 4, newly visible
		t.Fatalf("d(S1,TE1) = %v, want 4", e.Dist(4, 5))
	}
	e.EnsureHorizon(3) // narrowing is a no-op
	if e.Horizon() != 4 {
		t.Fatal("EnsureHorizon must never narrow")
	}
}

// randomGraph makes a random simple digraph with n nodes and ~m edges.
func randomGraph(rng *rand.Rand, n, m int) *graph.Graph {
	g := graph.New(nil)
	labels := []string{"A", "B", "C", "D"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return g
}

// assertEnginesEqual compares every pair's distance between the
// incrementally maintained engine and a freshly built one, in both
// directions (validating the mirror matrix too).
func assertEnginesEqual(t *testing.T, inc *Engine, g *graph.Graph, horizon int, step int) {
	t.Helper()
	fresh := NewEngine(g, horizon, WithDenseThreshold(inc.denseThreshold), WithELLWidth(inc.ellWidth))
	fresh.Build()
	n := g.NumIDs()
	for u := uint32(0); int(u) < n; u++ {
		for v := uint32(0); int(v) < n; v++ {
			if got, want := inc.Dist(u, v), fresh.Dist(u, v); got != want {
				t.Fatalf("step %d: d(%d,%d) = %v, want %v", step, u, v, got, want)
			}
			if got, want := inc.rev.Get(u, v), fresh.rev.Get(u, v); got != want {
				t.Fatalf("step %d: rev(%d,%d) = %v, want %v", step, u, v, got, want)
			}
		}
	}
}

// TestIncrementalMatchesScratch is the package's central differential
// test: a random stream of edge/node insertions and deletions maintained
// incrementally must equal a from-scratch rebuild at every checkpoint,
// across dense/hybrid backends and capped/exact horizons.
func TestIncrementalMatchesScratch(t *testing.T) {
	configs := []struct {
		name    string
		horizon int
		dense   int // dense threshold: big = force dense, 0 = force hybrid
	}{
		{"exact-dense", 0, 1 << 20},
		{"exact-hybrid", 0, 0},
		{"capped3-dense", 3, 1 << 20},
		{"capped3-hybrid", 3, 0},
		{"capped2-hybrid", 2, 0},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			g := randomGraph(rng, 30, 70)
			e := NewEngine(g, cfg.horizon, WithDenseThreshold(cfg.dense), WithELLWidth(4))
			e.Build()
			var live []uint32
			reap := func() {
				live = live[:0]
				g.Nodes(func(id uint32) { live = append(live, id) })
			}
			reap()
			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // insert edge
					u := live[rng.Intn(len(live))]
					v := live[rng.Intn(len(live))]
					if g.AddEdge(u, v) {
						e.InsertEdge(u, v)
					}
				case op < 7: // delete edge
					u := live[rng.Intn(len(live))]
					out := g.Out(u)
					if len(out) > 0 {
						v := out[rng.Intn(len(out))]
						g.RemoveEdge(u, v)
						e.DeleteEdge(u, v)
					}
				case op < 8: // insert node (+ a couple of edges)
					id := g.AddNode("A")
					e.InsertNode(id)
					reap()
					for k := 0; k < 2; k++ {
						v := live[rng.Intn(len(live))]
						if g.AddEdge(id, v) {
							e.InsertEdge(id, v)
						}
						w := live[rng.Intn(len(live))]
						if g.AddEdge(w, id) {
							e.InsertEdge(w, id)
						}
					}
				case op < 9 && len(live) > 5: // delete node
					id := live[rng.Intn(len(live))]
					removed, _ := g.RemoveNode(id)
					e.DeleteNode(id, removed)
					reap()
				default: // no-op step to vary the schedule
				}
				if step%15 == 14 {
					assertEnginesEqual(t, e, g, cfg.horizon, step)
				}
			}
			assertEnginesEqual(t, e, g, cfg.horizon, -1)
		})
	}
}

// TestPreviewsNeverMutate drives random previews and asserts distances
// are untouched, and that preview sets match subsequent apply sets.
func TestPreviewsNeverMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomGraph(rng, 25, 60)
	e := NewEngine(g, 3, WithDenseThreshold(0), WithELLWidth(4))
	e.Build()
	snapshot := func() map[[2]uint32]Dist {
		m := make(map[[2]uint32]Dist)
		n := g.NumIDs()
		for u := uint32(0); int(u) < n; u++ {
			e.fwd.Row(u, func(c uint32, d Dist) bool { m[[2]uint32{u, c}] = d; return true })
		}
		return m
	}
	before := snapshot()
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })

	// Previews of inserts, deletes and node deletions.
	for i := 0; i < 20; i++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		e.PreviewInsertEdge(u, v)
		if out := g.Out(u); len(out) > 0 {
			e.PreviewDeleteEdge(u, out[rng.Intn(len(out))])
		}
		e.PreviewDeleteNode(u)
	}
	after := snapshot()
	if len(before) != len(after) {
		t.Fatalf("previews changed entry count %d → %d", len(before), len(after))
	}
	for k, d := range before {
		if after[k] != d {
			t.Fatalf("previews mutated entry %v: %v → %v", k, d, after[k])
		}
	}

	// Preview-then-apply equality for deletions.
	for i := 0; i < 10; i++ {
		u := live[rng.Intn(len(live))]
		out := g.Out(u)
		if len(out) == 0 {
			continue
		}
		v := out[rng.Intn(len(out))]
		prev := e.PreviewDeleteEdge(u, v)
		g.RemoveEdge(u, v)
		got := e.DeleteEdge(u, v)
		if !prev.Equal(got) {
			t.Fatalf("delete preview %v != applied %v", prev, got)
		}
	}
}

func TestPreviewDeleteNodeMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 20, 50)
		e := NewEngine(g, 3, WithDenseThreshold(1<<20))
		e.Build()
		var live []uint32
		g.Nodes(func(id uint32) { live = append(live, id) })
		id := live[rng.Intn(len(live))]
		prev := e.PreviewDeleteNode(id)
		removed, _ := g.RemoveNode(id)
		got := e.DeleteNode(id, removed)
		if !prev.Equal(got) {
			t.Fatalf("trial %d node %d: preview %v != applied %v", trial, id, prev, got)
		}
	}
}

func TestInsertNodeThenEdges(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	id := g.AddNode("QA")
	e.InsertNode(id)
	if e.Dist(id, id) != 0 {
		t.Fatal("fresh node must be at distance 0 from itself")
	}
	g.AddEdge(ids["PM1"], id)
	e.InsertEdge(ids["PM1"], id)
	g.AddEdge(id, ids["TE2"])
	e.InsertEdge(id, ids["TE2"])
	if e.Dist(ids["PM1"], id) != 1 || e.Dist(ids["PM1"], ids["TE2"]) != 2 {
		t.Fatalf("paths through new node wrong: %v, %v",
			e.Dist(ids["PM1"], id), e.Dist(ids["PM1"], ids["TE2"]))
	}
	assertEnginesEqual(t, e, g, 0, -2)
}

func TestCloneIndependence(t *testing.T) {
	g, ids := paperGraph()
	e := NewEngine(g, 0)
	e.Build()
	g2 := g.Clone()
	e2 := e.Clone(g2)
	g2.AddEdge(ids["SE1"], ids["TE2"])
	e2.InsertEdge(ids["SE1"], ids["TE2"])
	checkAgainstTable(t, e, tableIII, "original after clone mutation")
	checkAgainstTable(t, e2, tableV, "clone after mutation")
}

func BenchmarkBuildExact(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 500, 2500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(g, 0)
		e.Build()
	}
}

func BenchmarkInsertEdgeCapped(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomGraph(rng, 2000, 8000)
	e := NewEngine(g, 3, WithDenseThreshold(0), WithELLWidth(8))
	e.Build()
	var live []uint32
	g.Nodes(func(id uint32) { live = append(live, id) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if g.AddEdge(u, v) {
			e.InsertEdge(u, v)
			g.RemoveEdge(u, v)
			e.DeleteEdge(u, v)
		}
	}
}
