package shortest

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
)

// Oracle is the read side of an SLen substrate: everything the matcher
// and the elimination detectors need to test bounded path lengths.
type Oracle interface {
	// Dist returns d(u,v) in hops (Inf beyond the horizon / no path).
	Dist(u, v uint32) Dist
	// WithinHops reports d(u,v) ≤ k; k must be ≤ Horizon when capped.
	WithinHops(u, v uint32, k int) bool
	// Reachable reports d(u,v) < Inf (within the horizon when capped).
	Reachable(u, v uint32) bool
	// ForwardBall visits {v : d(u,v) ≤ k} ascending, u included at 0.
	ForwardBall(u uint32, k int, fn func(v uint32, d Dist) bool)
	// ReverseBall visits {x : d(x,v) ≤ k} ascending, v included at 0.
	ReverseBall(v uint32, k int, fn func(x uint32, d Dist) bool)
	// Horizon reports the hop cap (0 = exact).
	Horizon() int
	// Exact reports whether distances beyond any bound are represented.
	Exact() bool
}

// DistanceEngine is a maintainable SLen substrate: an Oracle plus the
// incremental update operations and the affected-set previews the
// elimination machinery (DER-II/III) is built on. Two implementations
// exist: the global Engine in this package and the label-partitioned
// engine in internal/partition (§V of the paper). UA-GPNM runs on the
// partitioned one; every other solver runs on the global one.
type DistanceEngine interface {
	Oracle
	// Build (re)computes the substrate from the graph.
	Build()
	// Graph returns the underlying data graph.
	Graph() *graph.Graph
	// InsertEdge/DeleteEdge/InsertNode/DeleteNode synchronise the
	// substrate after the corresponding graph mutation and return the
	// affected nodes (a superset of every endpoint of a changed pair).
	InsertEdge(u, v uint32) nodeset.Set
	DeleteEdge(u, v uint32) nodeset.Set
	InsertNode(id uint32) nodeset.Set
	DeleteNode(id uint32, removed []graph.Edge) nodeset.Set
	// Preview* return the affected set without mutating anything.
	PreviewInsertEdge(u, v uint32) nodeset.Set
	PreviewDeleteEdge(u, v uint32) nodeset.Set
	PreviewDeleteNode(id uint32) nodeset.Set
	// EnsureHorizon widens a capped substrate to cover bound k.
	EnsureHorizon(k int)
	// CloneFor returns an independent copy operating on g2, a clone of
	// the engine's graph.
	CloneFor(g2 *graph.Graph) DistanceEngine
}

// CloneFor implements DistanceEngine for the global engine.
func (e *Engine) CloneFor(g2 *graph.Graph) DistanceEngine { return e.Clone(g2) }

// compile-time interface check
var _ DistanceEngine = (*Engine)(nil)
