package shortest

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
)

// bfsScratch holds the reusable state of one bounded BFS traversal.
// Distances for all node ids live in dist; touched remembers which
// entries must be reset, so repeated traversals cost O(visited), not
// O(|N|).
type bfsScratch struct {
	dist    []Dist
	touched []uint32
	queue   []uint32
	distRow []Dist // backs the dists slice returned by run
}

func newBFSScratch(n int) *bfsScratch {
	s := &bfsScratch{dist: make([]Dist, n)}
	for i := range s.dist {
		s.dist[i] = Inf
	}
	return s
}

func (s *bfsScratch) grow(n int) {
	for len(s.dist) < n {
		s.dist = append(s.dist, Inf)
	}
}

func (s *bfsScratch) reset() {
	for _, id := range s.touched {
		s.dist[id] = Inf
	}
	s.touched = s.touched[:0]
	s.queue = s.queue[:0]
}

// skipEdge names an edge — and optionally an entire node — a BFS must
// pretend is absent. Used to preview edge and node deletions without
// mutating the graph.
type skipEdge struct {
	from, to       uint32
	active         bool
	skipNode       uint32
	skipNodeActive bool
}

// run performs a BFS from src over g, following out-edges (reverse ==
// false) or in-edges (reverse == true), up to maxHops hops (0 =
// unbounded). It returns the visited nodes' (ascending column, distance)
// pairs, src itself included at distance 0. The returned slices alias
// scratch state and are valid until the next run.
func (s *bfsScratch) run(g *graph.Graph, src uint32, maxHops int, reverse bool, skip skipEdge) (cols []uint32, dists []Dist) {
	return s.runOrdered(g, src, maxHops, reverse, skip, true)
}

// runOrdered is run with the ascending-column sort made optional: callers
// that only need the visited set (affected-ball collection) skip it.
func (s *bfsScratch) runOrdered(g *graph.Graph, src uint32, maxHops int, reverse bool, skip skipEdge, sorted bool) (cols []uint32, dists []Dist) {
	s.reset()
	s.grow(g.NumIDs())
	if !g.Alive(src) || (skip.skipNodeActive && skip.skipNode == src) {
		return nil, nil
	}
	s.dist[src] = 0
	s.touched = append(s.touched, src)
	s.queue = append(s.queue, src)
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		if maxHops > 0 && int(du) >= maxHops {
			continue
		}
		var next []uint32
		if reverse {
			next = g.In(u)
		} else {
			next = g.Out(u)
		}
		for _, v := range next {
			if skip.skipNodeActive && skip.skipNode == v {
				continue
			}
			if skip.active {
				if !reverse && skip.from == u && skip.to == v {
					continue
				}
				if reverse && skip.from == v && skip.to == u {
					continue
				}
			}
			if s.dist[v] != Inf {
				continue
			}
			s.dist[v] = du + 1
			s.touched = append(s.touched, v)
			s.queue = append(s.queue, v)
		}
	}
	// Produce an ascending-column row. touched is in visit order; sort it
	// unless the caller only needs the set.
	if sorted {
		nodeset.SortIDs(s.touched)
	}
	cols = s.touched
	if cap(s.distRow) < len(cols) {
		s.distRow = make([]Dist, len(cols))
	}
	dists = s.distRow[:len(cols)]
	for i, c := range cols {
		dists[i] = s.dist[c]
	}
	return cols, dists
}
