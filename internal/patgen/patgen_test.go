package patgen

import (
	"testing"

	"uagpnm/internal/datasets"
	"uagpnm/internal/pattern"
)

func TestGenerateShape(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{Nodes: 200, Edges: 800, Labels: 6, Homophily: 0.8, Seed: 1})
	for size := 6; size <= 10; size++ {
		p := Generate(Config{Nodes: size, Edges: size, Seed: int64(size), Labels: LabelsOf(g)}, g.Labels())
		if p.NumNodes() != size {
			t.Fatalf("nodes = %d, want %d", p.NumNodes(), size)
		}
		if p.NumEdges() != size {
			t.Fatalf("edges = %d, want %d", p.NumEdges(), size)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if b := p.MaxFiniteBound(); b < 1 || b > 3 {
			t.Fatalf("max bound = %d, want within 1..3", b)
		}
	}
}

func TestGenerateWeakConnectivity(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{Nodes: 100, Edges: 400, Labels: 4, Homophily: 0.8, Seed: 2})
	p := Generate(Config{Nodes: 8, Edges: 8, Seed: 3, Labels: LabelsOf(g)}, g.Labels())
	// Union-find over undirected view.
	parent := map[pattern.NodeID]pattern.NodeID{}
	var find func(x pattern.NodeID) pattern.NodeID
	find = func(x pattern.NodeID) pattern.NodeID {
		if parent[x] == x {
			return x
		}
		parent[x] = find(parent[x])
		return parent[x]
	}
	p.Nodes(func(u pattern.NodeID) { parent[u] = u })
	p.Edges(func(e pattern.Edge) {
		parent[find(e.From)] = find(e.To)
	})
	roots := map[pattern.NodeID]bool{}
	p.Nodes(func(u pattern.NodeID) { roots[find(u)] = true })
	if len(roots) != 1 {
		t.Fatalf("pattern has %d weak components, want 1", len(roots))
	}
}

func TestGenerateDeterminism(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{Nodes: 100, Edges: 300, Labels: 4, Homophily: 0.8, Seed: 2})
	a := Generate(Config{Nodes: 7, Edges: 7, Seed: 9, Labels: LabelsOf(g)}, g.Labels())
	b := Generate(Config{Nodes: 7, Edges: 7, Seed: 9, Labels: LabelsOf(g)}, g.Labels())
	if a.String() != b.String() {
		t.Fatal("same seed must give same pattern")
	}
}

func TestGenerateBoundsRange(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{Nodes: 50, Edges: 150, Labels: 3, Homophily: 0.8, Seed: 4})
	p := Generate(Config{Nodes: 10, Edges: 14, BoundMin: 2, BoundMax: 2, Seed: 5, Labels: LabelsOf(g)}, g.Labels())
	p.Edges(func(e pattern.Edge) {
		if e.B != 2 {
			t.Fatalf("bound %v outside [2,2]", e.B)
		}
	})
}

func TestGenerateDegenerate(t *testing.T) {
	p := Generate(Config{Nodes: 0, Edges: 0, Seed: 1}, nil)
	if p.NumNodes() != 1 {
		t.Fatalf("degenerate config should yield 1 node, got %d", p.NumNodes())
	}
	p2 := Generate(Config{Nodes: 3, Edges: 100, Seed: 1}, nil)
	// At most n(n-1) simple edges exist.
	if p2.NumEdges() > 6 {
		t.Fatalf("edges = %d beyond the simple-graph bound", p2.NumEdges())
	}
}

func TestLabelsOf(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{Nodes: 30, Edges: 60, Labels: 3, Homophily: 0.5, Seed: 6})
	labs := LabelsOf(g)
	if len(labs) != 3 || labs[0] != "role00" {
		t.Fatalf("LabelsOf = %v", labs)
	}
}
