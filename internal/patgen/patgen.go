// Package patgen generates random pattern graphs — the stand-in for the
// paper's socnetv generator (§VII-A), with the same three knobs: number
// of nodes, number of edges, and the bounded path length range on edges
// (1–3 in the paper). Patterns are weakly connected (a random spanning
// arborescence plus extra edges) and their labels are drawn from the
// target data graph's label universe so that matches exist.
package patgen

import (
	"fmt"
	"math/rand"

	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
)

// Config parameterises pattern generation.
type Config struct {
	Nodes    int
	Edges    int
	BoundMin int // default 1
	BoundMax int // default 3
	Seed     int64
	// Labels is the universe to draw node labels from. Required.
	Labels []string
}

// Generate builds a random pattern over the given label table (pass the
// data graph's table so label ids align).
func Generate(cfg Config, labels *graph.Labels) *pattern.Graph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.BoundMin < 1 {
		cfg.BoundMin = 1
	}
	if cfg.BoundMax < cfg.BoundMin {
		cfg.BoundMax = 3
		if cfg.BoundMax < cfg.BoundMin {
			cfg.BoundMax = cfg.BoundMin
		}
	}
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	p := pattern.New(labels)
	ids := make([]pattern.NodeID, cfg.Nodes)
	for i := range ids {
		label := "node"
		if len(cfg.Labels) > 0 {
			label = cfg.Labels[rng.Intn(len(cfg.Labels))]
		}
		// Display names must be unique within a pattern (two nodes may
		// share one label), so nodes are named u0, u1, …
		ids[i] = p.AddNamedNode(fmt.Sprintf("u%d", i), label)
	}
	bound := func() pattern.Bound {
		return pattern.Bound(cfg.BoundMin + rng.Intn(cfg.BoundMax-cfg.BoundMin+1))
	}
	// Spanning arborescence for weak connectivity: each node i > 0 links
	// with a random earlier node, direction randomised.
	for i := 1; i < cfg.Nodes && p.NumEdges() < cfg.Edges; i++ {
		j := rng.Intn(i)
		if rng.Intn(2) == 0 {
			p.AddEdge(ids[j], ids[i], bound())
		} else {
			p.AddEdge(ids[i], ids[j], bound())
		}
	}
	// Extra random edges up to the requested count.
	for tries := 0; p.NumEdges() < cfg.Edges && tries < cfg.Edges*20; tries++ {
		u := ids[rng.Intn(len(ids))]
		v := ids[rng.Intn(len(ids))]
		p.AddEdge(u, v, bound())
	}
	return p
}

// LabelsOf extracts every label name of a data graph, for Config.Labels.
func LabelsOf(g *graph.Graph) []string {
	out := make([]string, g.Labels().Count())
	for i := range out {
		out[i] = g.Labels().Name(graph.LabelID(i))
	}
	return out
}
