package nodeset

import "math/bits"

// Bits is a dense bitset over node ids [0, n). The zero value is unusable;
// construct with NewBits. Bits is the membership structure used inside the
// simulation fixpoints, where ids are dense and membership flips are hot.
type Bits struct {
	words []uint64
	n     int // population count, maintained incrementally
}

// NewBits returns an empty bitset able to hold ids in [0, capacity).
func NewBits(capacity int) *Bits {
	if capacity < 0 {
		capacity = 0
	}
	return &Bits{words: make([]uint64, (capacity+63)/64)}
}

// Capacity reports the id bound the bitset was created with (rounded up
// to a multiple of 64).
func (b *Bits) Capacity() int { return len(b.words) * 64 }

// Len reports the number of set bits.
func (b *Bits) Len() int { return b.n }

// Empty reports whether no bit is set.
func (b *Bits) Empty() bool { return b.n == 0 }

// Contains reports whether id is set. Ids beyond capacity are absent.
func (b *Bits) Contains(id ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(id&63)) != 0
}

// Add sets id and reports whether the bit was newly set.
// Ids beyond capacity grow the bitset.
func (b *Bits) Add(id ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, w+1)
		copy(grown, b.words)
		b.words = grown
	}
	mask := uint64(1) << (id & 63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	b.n++
	return true
}

// Remove clears id and reports whether the bit was previously set.
func (b *Bits) Remove(id ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	mask := uint64(1) << (id & 63)
	if b.words[w]&mask == 0 {
		return false
	}
	b.words[w] &^= mask
	b.n--
	return true
}

// Clear removes every id, retaining capacity.
func (b *Bits) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.n = 0
}

// Clone returns an independent copy.
func (b *Bits) Clone() *Bits {
	c := &Bits{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// AddSet sets every id of s.
func (b *Bits) AddSet(s Set) {
	for _, id := range s {
		b.Add(id)
	}
}

// DiffSet materialises the ids set in b but absent from o as a sorted
// Set. A nil o (or receiver) counts as empty, so DiffSet doubles as Set
// against a missing baseline — the match-delta extraction's primitive.
func (b *Bits) DiffSet(o *Bits) Set {
	if b == nil || b.n == 0 {
		return nil
	}
	var out Set
	for wi, w := range b.words {
		if o != nil && wi < len(o.words) {
			w &^= o.words[wi]
		}
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, ID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Set materialises the bitset as a sorted Set.
func (b *Bits) Set() Set {
	if b.n == 0 {
		return nil
	}
	out := make(Set, 0, b.n)
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, ID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Range calls fn for every set id in ascending order; fn returning false
// stops the iteration early.
func (b *Bits) Range(fn func(ID) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(ID(wi*64 + bit)) {
				return
			}
			w &= w - 1
		}
	}
}
