package nodeset

// SortIDs sorts ids ascending in place. It is a specialised
// insertion/quick sort: the reflection-based sort.Slice shows up heavily
// in profiles because id sorting sits on every hot path (BFS row
// assembly, set normalisation, ball emission).
func SortIDs(s []ID) {
	if len(s) < 2 {
		return
	}
	quickSortIDs(s, 0)
}

const insertionCutoff = 24

func quickSortIDs(s []ID, depth int) {
	for len(s) > insertionCutoff {
		if depth > 64 {
			heapSortIDs(s)
			return
		}
		depth++
		p := partitionIDs(s)
		if p < len(s)-p {
			quickSortIDs(s[:p], depth)
			s = s[p:]
		} else {
			quickSortIDs(s[p:], depth)
			s = s[:p]
		}
	}
	insertionSortIDs(s)
}

func insertionSortIDs(s []ID) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i
		for j > 0 && s[j-1] > v {
			s[j] = s[j-1]
			j--
		}
		s[j] = v
	}
}

// partitionIDs partitions around a median-of-three pivot and returns the
// first index of the right half.
func partitionIDs(s []ID) int {
	m := len(s) / 2
	hi := len(s) - 1
	// median of three to s[0]
	if s[m] < s[0] {
		s[m], s[0] = s[0], s[m]
	}
	if s[hi] < s[0] {
		s[hi], s[0] = s[0], s[hi]
	}
	if s[hi] < s[m] {
		s[hi], s[m] = s[m], s[hi]
	}
	pivot := s[m]
	i, j := 0, hi
	for {
		for s[i] < pivot {
			i++
		}
		for s[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		s[i], s[j] = s[j], s[i]
		i++
		j--
	}
}

func heapSortIDs(s []ID) {
	n := len(s)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownIDs(s, i, n)
	}
	for i := n - 1; i > 0; i-- {
		s[0], s[i] = s[i], s[0]
		siftDownIDs(s, 0, i)
	}
}

func siftDownIDs(s []ID, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && s[child+1] > s[child] {
			child++
		}
		if s[root] >= s[child] {
			return
		}
		s[root], s[child] = s[child], s[root]
		root = child
	}
}
