// Package nodeset provides compact set algebra over node identifiers.
//
// Two representations are offered and used throughout the repository:
//
//   - Set: an immutable-by-convention sorted slice of node ids. Sets are
//     the currency of the elimination machinery (Can_N, Aff_N in the
//     paper): the EH-Tree is built from coverage (superset) tests between
//     them, which run in linear time on the sorted representation.
//   - Bits: a dense bitset keyed by node id, used inside the matching
//     fixpoints where O(1) membership updates dominate.
//
// Node ids are uint32 throughout the repository; graphs at the scale this
// library targets (≤ tens of millions of nodes) fit comfortably.
package nodeset

import (
	"fmt"
	"sort"
	"strings"
)

// ID is a node identifier. The zero value is a valid id.
type ID = uint32

// Set is a sorted, duplicate-free slice of node ids.
//
// The zero value is the empty set. Operations never mutate their
// receivers unless documented otherwise; they return new sets (or the
// receiver when the result is identical, as an allocation optimisation).
type Set []ID

// New builds a Set from arbitrary ids, sorting and de-duplicating.
func New(ids ...ID) Set {
	if len(ids) == 0 {
		return nil
	}
	s := make(Set, len(ids))
	copy(s, ids)
	SortIDs(s)
	return s.dedupInPlace()
}

// FromSorted adopts ids as a Set. ids must already be sorted ascending
// and duplicate-free; this is not checked. Use New when in doubt.
func FromSorted(ids []ID) Set { return Set(ids) }

func (s Set) dedupInPlace() Set {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// Len reports the number of ids in the set.
func (s Set) Len() int { return len(s) }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return len(s) == 0 }

// Contains reports whether id is a member, by binary search.
func (s Set) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Clone returns an independent copy of the set.
func (s Set) Clone() Set {
	if s == nil {
		return nil
	}
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// Equal reports whether s and t hold exactly the same ids.
func (s Set) Equal(t Set) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Covers reports whether s ⊇ t. This is the elimination test of the
// paper: update A eliminates update B when A's node set covers B's.
// Runs in O(len(s)+len(t)).
func (s Set) Covers(t Set) bool {
	if len(t) > len(s) {
		return false
	}
	i := 0
	for _, v := range t {
		for i < len(s) && s[i] < v {
			i++
		}
		if i == len(s) || s[i] != v {
			return false
		}
		i++
	}
	return true
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	if len(s) == 0 {
		return t.Clone()
	}
	if len(t) == 0 {
		return s.Clone()
	}
	out := make(Set, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Diff returns s \ t.
func (s Set) Diff(t Set) Set {
	var out Set
	j := 0
	for _, v := range s {
		for j < len(t) && t[j] < v {
			j++
		}
		if j == len(t) || t[j] != v {
			out = append(out, v)
		}
	}
	return out
}

// String renders the set as "{1, 2, 3}" for diagnostics and tests.
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, v := range s {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte('}')
	return b.String()
}

// Builder accumulates ids (in any order, with duplicates) and produces a
// Set. It exists so hot loops can append cheaply and normalise once.
type Builder struct {
	ids []ID
}

// Add appends id to the builder.
func (b *Builder) Add(id ID) { b.ids = append(b.ids, id) }

// AddAll appends every id of s to the builder.
func (b *Builder) AddAll(s Set) { b.ids = append(b.ids, s...) }

// Len reports how many ids (with duplicates) have been added.
func (b *Builder) Len() int { return len(b.ids) }

// Set normalises the accumulated ids into a Set. The builder may be
// reused afterwards; the returned Set is independent.
func (b *Builder) Set() Set {
	s := New(b.ids...)
	return s
}

// Reset empties the builder, retaining capacity.
func (b *Builder) Reset() { b.ids = b.ids[:0] }
