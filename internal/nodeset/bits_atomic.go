package nodeset

import (
	"math/bits"
	"sync/atomic"
)

// Atomic access to a Bits for the parallel removal fixpoint
// (internal/simulation): during a concurrent phase every cross-goroutine
// word access must go through these — distinct ids share words, so even
// a "single-owner" bit flip is a read-modify-write race against its
// word-mates without the atomics. The incremental population count
// cannot be maintained under concurrent removal; the atomic mutators
// skip it, and the phase must call Recount on every touched set after
// its workers have joined, before Len/Empty/Set are trusted again.

// AtomicContains reports whether id is set, reading the word atomically.
// Ids beyond capacity are absent. Safe to call concurrently with
// AtomicRemove on the same set.
func (b *Bits) AtomicContains(id ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	return atomic.LoadUint64(&b.words[w])&(1<<(id&63)) != 0
}

// AtomicRemove clears id with an atomic read-modify-write and reports
// whether the bit was previously set. It does NOT maintain Len — call
// Recount once the concurrent phase has joined.
func (b *Bits) AtomicRemove(id ID) bool {
	w := int(id >> 6)
	if w >= len(b.words) {
		return false
	}
	mask := uint64(1) << (id & 63)
	return atomic.AndUint64(&b.words[w], ^mask)&mask != 0
}

// Recount recomputes the population count from the words, restoring the
// Len invariant after a phase of atomic mutations.
func (b *Bits) Recount() {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	b.n = n
}
