package nodeset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	s := New(5, 1, 3, 1, 5, 2)
	want := Set{1, 2, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("New = %v, want %v", s, want)
	}
}

func TestNewEmpty(t *testing.T) {
	if s := New(); !s.Empty() || s.Len() != 0 {
		t.Fatalf("New() should be empty, got %v", s)
	}
}

func TestContains(t *testing.T) {
	s := New(2, 4, 6, 8)
	for _, id := range []ID{2, 4, 6, 8} {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false, want true", id)
		}
	}
	for _, id := range []ID{0, 1, 3, 5, 7, 9} {
		if s.Contains(id) {
			t.Errorf("Contains(%d) = true, want false", id)
		}
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		s, t Set
		want bool
	}{
		{New(1, 2, 3), New(1, 3), true},
		{New(1, 2, 3), New(1, 2, 3), true},
		{New(1, 2, 3), New(), true},
		{New(), New(), true},
		{New(1, 3), New(1, 2, 3), false},
		{New(1, 2, 3), New(4), false},
		{New(), New(1), false},
	}
	for _, c := range cases {
		if got := c.s.Covers(c.t); got != c.want {
			t.Errorf("%v.Covers(%v) = %v, want %v", c.s, c.t, got, c.want)
		}
	}
}

func TestUnionIntersectDiff(t *testing.T) {
	a := New(1, 2, 3, 5)
	b := New(2, 4, 5, 6)
	if got, want := a.Union(b), New(1, 2, 3, 4, 5, 6); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := a.Intersect(b), New(2, 5); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Diff(b), New(1, 3); !got.Equal(want) {
		t.Errorf("Diff = %v, want %v", got, want)
	}
}

func TestUnionWithEmpty(t *testing.T) {
	a := New(1, 2)
	if got := a.Union(nil); !got.Equal(a) {
		t.Errorf("a ∪ ∅ = %v, want %v", got, a)
	}
	if got := Set(nil).Union(a); !got.Equal(a) {
		t.Errorf("∅ ∪ a = %v, want %v", got, a)
	}
}

func TestString(t *testing.T) {
	if got, want := New(3, 1).String(), "{1, 3}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := New().String(), "{}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestBuilder(t *testing.T) {
	var b Builder
	for _, id := range []ID{9, 1, 9, 4} {
		b.Add(id)
	}
	b.AddAll(New(2, 4))
	if got, want := b.Set(), New(1, 2, 4, 9); !got.Equal(want) {
		t.Errorf("Builder.Set = %v, want %v", got, want)
	}
	b.Reset()
	if got := b.Set(); !got.Empty() {
		t.Errorf("after Reset, Set = %v, want empty", got)
	}
}

// Property: Covers agrees with a naive map-based superset test.
func TestCoversMatchesNaive(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		s, u := New(xs...), New(ys...)
		m := map[ID]bool{}
		for _, v := range s {
			m[v] = true
		}
		naive := true
		for _, v := range u {
			if !m[v] {
				naive = false
				break
			}
		}
		return s.Covers(u) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: union/intersection/diff relate by |A∪B| = |A|+|B|-|A∩B| and
// A = (A∩B) ∪ (A\B).
func TestSetAlgebraProperties(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := New(xs...), New(ys...)
		u, i, d := a.Union(b), a.Intersect(b), a.Diff(b)
		if u.Len() != a.Len()+b.Len()-i.Len() {
			return false
		}
		return i.Union(d).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a set always covers itself and its intersection with anything.
func TestCoversReflexive(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a, b := New(xs...), New(ys...)
		return a.Covers(a) && a.Covers(a.Intersect(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsBasics(t *testing.T) {
	b := NewBits(128)
	if !b.Add(5) || !b.Add(64) || !b.Add(127) {
		t.Fatal("Add of fresh ids should return true")
	}
	if b.Add(5) {
		t.Fatal("Add of existing id should return false")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	if !b.Contains(64) || b.Contains(63) {
		t.Fatal("Contains mismatch")
	}
	if !b.Remove(64) || b.Remove(64) {
		t.Fatal("Remove semantics wrong")
	}
	if got, want := b.Set(), New(5, 127); !got.Equal(want) {
		t.Fatalf("Set = %v, want %v", got, want)
	}
}

func TestBitsGrow(t *testing.T) {
	b := NewBits(1)
	b.Add(1000)
	if !b.Contains(1000) {
		t.Fatal("bitset should grow on Add beyond capacity")
	}
	if b.Contains(2000) {
		t.Fatal("Contains beyond capacity should be false")
	}
}

func TestBitsClearClone(t *testing.T) {
	b := NewBits(64)
	b.AddSet(New(1, 2, 3))
	c := b.Clone()
	b.Clear()
	if b.Len() != 0 {
		t.Fatal("Clear should empty the set")
	}
	if got, want := c.Set(), New(1, 2, 3); !got.Equal(want) {
		t.Fatalf("clone affected by Clear: %v", got)
	}
}

func TestBitsRangeOrderAndEarlyStop(t *testing.T) {
	b := NewBits(256)
	ids := New(3, 70, 140, 200)
	b.AddSet(ids)
	var seen []ID
	b.Range(func(id ID) bool {
		seen = append(seen, id)
		return true
	})
	if !New(seen...).Equal(ids) || !sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] }) {
		t.Fatalf("Range visited %v, want sorted %v", seen, ids)
	}
	n := 0
	b.Range(func(ID) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

// Property: Bits round-trips Sets.
func TestBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var b Builder
		for i := 0; i < rng.Intn(200); i++ {
			b.Add(ID(rng.Intn(500)))
		}
		s := b.Set()
		bits := NewBits(500)
		bits.AddSet(s)
		if !bits.Set().Equal(s) {
			t.Fatalf("round trip failed for %v", s)
		}
		if bits.Len() != s.Len() {
			t.Fatalf("Len mismatch: %d vs %d", bits.Len(), s.Len())
		}
	}
}

func BenchmarkCovers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var big Builder
	for i := 0; i < 10000; i++ {
		big.Add(ID(rng.Intn(1 << 20)))
	}
	s := big.Set()
	sub := s[:len(s)/2].Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Covers(sub) {
			b.Fatal("expected coverage")
		}
	}
}
