package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/obs"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/srvutil"
	"uagpnm/internal/updates"
	"uagpnm/internal/version"
)

// ServerConfig parameterises the HTTP front end.
type ServerConfig struct {
	// PollTimeout caps the delta long-poll wait (and the ?timeout=
	// override); 0 means 30s.
	PollTimeout time.Duration
	// OnSubstrateLoss, when set, is called exactly once the first time
	// the hub reports a lost substrate. cmd/gpnm-serve uses it to start
	// a graceful drain: in-flight long-polls have already been woken by
	// the hub, handlers answer 503 substrate_lost, and the process can
	// exit for its supervisor to restart into a clean build.
	OnSubstrateLoss func(error)
}

// Server exposes one standing-query hub over the versioned HTTP/JSON
// protocol. Every handler is a thin adapter: wire parsing and rendering
// here, all matching semantics in the hub (safe for concurrent
// handlers by construction).
type Server struct {
	hub         *hub.Hub
	pollTimeout time.Duration
	onLoss      func(error)
	lossOnce    sync.Once
	start       time.Time // process-facing uptime origin for /v1/healthz
}

// NewServer wraps h with the HTTP front end.
func NewServer(h *hub.Hub, cfg ServerConfig) *Server {
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 30 * time.Second
	}
	return &Server{hub: h, pollTimeout: cfg.PollTimeout, onLoss: cfg.OnSubstrateLoss, start: time.Now()}
}

// Routes wires the endpoint table:
//
//	GET    /v1/healthz                liveness + hub stats (200 {"recovering":true} during a
//	                                  shard failover, 503 once the substrate is terminally lost)
//	POST   /v1/patterns               register a pattern (DSL or typed graph), returns id + initial result
//	GET    /v1/patterns/{id}          current (BGS-projected) result of one standing query
//	GET    /v1/patterns/{id}/snapshot typed pattern + raw simulation images + seq (the client SDK's Snapshot)
//	DELETE /v1/patterns/{id}          unregister
//	GET    /v1/patterns/{id}/deltas   long-poll changes since ?since=SEQ
//	GET    /v1/patterns/{id}/stats    per-pattern pass stats of the last amendment
//	POST   /v1/apply                  apply one typed update batch
//	GET    /v1/metrics                hub telemetry, Prometheus text exposition
//	GET    /v1/trace                  last-N per-batch phase traces (?n= caps, default all retained)
//
// The pre-versioning routes (/healthz, /patterns..., /apply with
// update scripts) stay mounted as thin aliases for one release; new
// clients should speak /v1 only.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc("GET "+prefix+"/healthz", s.handleHealth)
		mux.HandleFunc("POST "+prefix+"/patterns", s.handleRegister)
		mux.HandleFunc("GET "+prefix+"/patterns/{id}", s.handleResult)
		mux.HandleFunc("DELETE "+prefix+"/patterns/{id}", s.handleUnregister)
		mux.HandleFunc("GET "+prefix+"/patterns/{id}/deltas", s.handleDeltas)
	}
	mux.HandleFunc("GET /v1/patterns/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/patterns/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/apply", s.handleApply)
	mux.HandleFunc("POST /apply", s.handleApplyLegacy)
	// The metrics exposition is the registry itself; /metrics is the
	// conventional scrape alias of the versioned route.
	mux.Handle("GET /v1/metrics", s.hub.Metrics())
	mux.Handle("GET /metrics", s.hub.Metrics())
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return mux
}

// writeError renders the uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...interface{}) {
	srvutil.WriteJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// decode parses the JSON request body, answering malformed input with
// the full error envelope (srvutil.Decode predates the code field and
// would drop it — every non-2xx from this package must carry one).
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "bad JSON body: %v", err)
		return false
	}
	return true
}

// hubError maps a hub error onto status + code, noting substrate loss.
func (s *Server) hubError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, hub.ErrUnknownPattern):
		writeError(w, http.StatusNotFound, CodeUnknownPattern, "%v", err)
	case errors.Is(err, shard.ErrSubstrateLost):
		s.noteLoss(err)
		writeError(w, http.StatusServiceUnavailable, CodeSubstrateLost, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, CodeBadBatch, "%v", err)
	}
}

// noteLoss fires the substrate-loss callback exactly once.
func (s *Server) noteLoss(err error) {
	s.lossOnce.Do(func() {
		if s.onLoss != nil {
			s.onLoss(err)
		}
	})
}

func patternID(r *http.Request) (hub.PatternID, error) {
	raw := r.PathValue("id")
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad pattern id %q", raw)
	}
	return hub.PatternID(id), nil
}

// guardRecovering answers mutating requests with 503
// substrate_recovering while a shard failover is repairing the
// substrate inside an in-flight batch. Without the guard such requests
// would just queue on the hub's lock behind the repair; failing fast
// with Retry-After keeps handler goroutines free and tells clients the
// process is degraded, not dead. Read endpoints are not guarded — they
// block briefly and then serve correct post-recovery state.
func (s *Server) guardRecovering(w http.ResponseWriter) bool {
	recovering, _ := s.hub.Status()
	if !recovering {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, CodeSubstrateRecovering,
		"substrate recovering from a shard loss; retry shortly")
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	// Degraded-not-dead fast path: during a failover the hub's lock is
	// held by the recovering batch, so the detailed stats below would
	// block. Answer 200 immediately — a load balancer must keep routing
	// to a process that is about to finish repairing itself.
	if recovering, recovered := s.hub.Status(); recovering {
		srvutil.WriteJSON(w, http.StatusOK, HealthBody{
			OK: true, Recovering: true, Recovered: recovered,
		})
		return
	}
	body := HealthBody{
		OK:            true,
		Seq:           s.hub.Seq(),
		Patterns:      len(s.hub.Patterns()),
		Version:       version.Version,
		Commit:        version.CommitOrEmbedded(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	_, body.Recovered = s.hub.Status()
	if last := s.hub.LastBatch(); last.Seq > 0 {
		lb := EncodeBatchStats(last)
		body.LastBatch = &lb
	}
	st := s.hub.GraphStats() // synchronised: /apply may be mutating the graph
	body.Nodes, body.Edges, body.Labels = st.Nodes, st.Edges, st.Labels
	status := http.StatusOK
	if err := s.hub.Err(); err != nil {
		// A poisoned hub must fail its health checks so load balancers
		// stop routing to it while the drain completes.
		s.noteLoss(err)
		body.OK, body.Lost = false, err.Error()
		status = http.StatusServiceUnavailable
	}
	srvutil.WriteJSON(w, status, body)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.guardRecovering(w) {
		return
	}
	var req RegisterRequest
	if !decode(w, r, &req) {
		return
	}
	var id hub.PatternID
	var err error
	switch {
	case req.Pattern != "" && req.Graph != nil:
		writeError(w, http.StatusBadRequest, CodeBadRequest, "set either \"pattern\" or \"graph\", not both")
		return
	case req.Graph != nil:
		// Typed path: materialise against the hub's label table under
		// its lock (label interning must not race a concurrent batch).
		id, err = s.hub.RegisterFunc(func(labels *graph.Labels) (*pattern.Graph, error) {
			return req.Graph.Materialise(labels)
		})
	default:
		id, err = s.hub.RegisterScript(strings.NewReader(req.Pattern))
	}
	if err != nil {
		if errors.Is(err, shard.ErrSubstrateLost) {
			s.hubError(w, err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeBadPattern, "%v", err)
		return
	}
	body, err := s.renderResult(id)
	if err != nil {
		s.hubError(w, err)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, body)
}

// renderResult renders one standing query's current state. One
// consistent snapshot: pattern, match and seq must describe the same
// epoch even when a batch lands mid-render.
func (s *Server) renderResult(id hub.PatternID) (*ResultBody, error) {
	p, m, seq, err := s.hub.Snapshot(id)
	if err != nil {
		return nil, err
	}
	body := &ResultBody{ID: uint64(id), Seq: seq, Total: m.Total(), Nodes: []ResultNode{}}
	p.Nodes(func(u pattern.NodeID) {
		body.Nodes = append(body.Nodes, ResultNode{
			Node:    u,
			Name:    p.Name(u),
			Label:   p.LabelName(u),
			Matches: setSlice(m.Nodes(u)),
		})
	})
	return body, nil
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, err := patternID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	body, err := s.renderResult(id)
	if err != nil {
		s.hubError(w, err)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, body)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id, err := patternID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	p, m, seq, err := s.hub.Snapshot(id)
	if err != nil {
		s.hubError(w, err)
		return
	}
	body := SnapshotBody{
		ID: uint64(id), Seq: seq, Total: m.Total(),
		Pattern: EncodePattern(p), Nodes: []SnapshotNode{},
	}
	p.Nodes(func(u pattern.NodeID) {
		body.Nodes = append(body.Nodes, SnapshotNode{Node: u, Sim: setSlice(m.SimulationSet(u))})
	})
	srvutil.WriteJSON(w, http.StatusOK, body)
}

func (s *Server) handleUnregister(w http.ResponseWriter, r *http.Request) {
	if s.guardRecovering(w) {
		return
	}
	id, err := patternID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	if err := s.hub.UnregisterErr(id); err != nil {
		s.hubError(w, err)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, UnregisterResponse{OK: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	id, err := patternID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	st, err := s.hub.PatternStatsErr(id)
	if err != nil {
		s.hubError(w, err)
		return
	}
	srvutil.WriteJSON(w, http.StatusOK, EncodeQueryStats(id, st))
}

// handleTrace serves the retained per-batch phase traces, oldest first;
// ?n= keeps only the most recent n.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	traces := s.hub.Metrics().Traces()
	if traces == nil {
		traces = []obs.Trace{} // non-null JSON array, like every list in this package
	}
	if raw := r.URL.Query().Get("n"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad n %q", raw)
			return
		}
		if n < len(traces) {
			traces = traces[len(traces)-n:]
		}
	}
	srvutil.WriteJSON(w, http.StatusOK, TracesResponse{Traces: traces})
}

// applyBatch runs one assembled batch and renders the response — the
// shared tail of the typed and legacy apply handlers.
func (s *Server) applyBatch(w http.ResponseWriter, batch hub.Batch) {
	deltas, stats, err := s.hub.ApplyBatch(batch)
	if err != nil {
		s.hubError(w, err)
		return
	}
	// Report THIS batch's seq and cost: a concurrent /apply may already
	// have advanced Seq()/LastBatch() past them.
	resp := ApplyResponse{
		Seq:            stats.Seq,
		Deltas:         []DeltaBody{},
		Stats:          EncodeBatchStats(stats),
		SLenSyncMillis: millis(stats.SLenSync),
	}
	for _, d := range deltas {
		resp.Deltas = append(resp.Deltas, EncodeDelta(d))
	}
	srvutil.WriteJSON(w, http.StatusOK, resp)
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	if s.guardRecovering(w) {
		return
	}
	var req ApplyRequest
	if !decode(w, r, &req) {
		return
	}
	var batch hub.Batch
	var err error
	if batch.D, err = DecodeUpdates(req.Updates); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadBatch, "updates: %v", err)
		return
	}
	for _, u := range batch.D {
		if !u.Kind.IsData() {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "pattern update %v under \"updates\"; put it under \"patterns\"", u)
			return
		}
	}
	for rawID, ws := range req.Patterns {
		id, err := strconv.ParseUint(rawID, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad pattern id %q", rawID)
			return
		}
		us, err := DecodeUpdates(ws)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "pattern %s: %v", rawID, err)
			return
		}
		for _, u := range us {
			if u.Kind.IsData() {
				writeError(w, http.StatusBadRequest, CodeBadBatch, "pattern %s: data update %v; put it under \"updates\"", rawID, u)
				return
			}
		}
		if batch.P == nil {
			batch.P = make(map[hub.PatternID][]updates.Update)
		}
		batch.P[hub.PatternID(id)] = us
	}
	s.applyBatch(w, batch)
}

// handleApplyLegacy serves the pre-versioning script-based /apply.
func (s *Server) handleApplyLegacy(w http.ResponseWriter, r *http.Request) {
	if s.guardRecovering(w) {
		return
	}
	var req LegacyApplyRequest
	if !decode(w, r, &req) {
		return
	}
	var batch hub.Batch
	if req.Data != "" {
		b, err := updates.ParseScript(strings.NewReader(req.Data))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "data script: %v", err)
			return
		}
		if len(b.P) > 0 {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "data script contains pattern updates; put them under \"patterns\"")
			return
		}
		batch.D = b.D
	}
	for rawID, script := range req.Patterns {
		id, err := strconv.ParseUint(rawID, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad pattern id %q", rawID)
			return
		}
		b, err := updates.ParseScript(strings.NewReader(script))
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "pattern %s script: %v", rawID, err)
			return
		}
		if len(b.D) > 0 {
			writeError(w, http.StatusBadRequest, CodeBadBatch, "pattern %s script contains data updates; put them under \"data\"", rawID)
			return
		}
		if batch.P == nil {
			batch.P = make(map[hub.PatternID][]updates.Update)
		}
		batch.P[hub.PatternID(id)] = b.P
	}
	s.applyBatch(w, batch)
}

func (s *Server) handleDeltas(w http.ResponseWriter, r *http.Request) {
	id, err := patternID(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "%v", err)
		return
	}
	since := uint64(0)
	if raw := r.URL.Query().Get("since"); raw != "" {
		since, err = strconv.ParseUint(raw, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad since %q", raw)
			return
		}
	}
	timeout := s.pollTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, CodeBadRequest, "bad timeout %q", raw)
			return
		}
		if d < timeout {
			timeout = d
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	ds, resync, err := s.hub.WaitDeltas(ctx, id, since)
	switch {
	case errors.Is(err, hub.ErrUnknownPattern):
		writeError(w, http.StatusNotFound, CodeUnknownPattern, "unknown pattern %d", id)
		return
	case err != nil && errors.Is(err, shard.ErrSubstrateLost):
		// The hub woke this poll because the substrate died: answer with
		// the machine-readable loss so subscribers stop polling, and let
		// the drain (OnSubstrateLoss) reclaim the connection.
		s.hubError(w, err)
		return
	case err != nil:
		// Timeout or client cancellation: an empty poll, not a failure.
		srvutil.WriteJSON(w, http.StatusOK, DeltasResponse{Seq: since, Deltas: []DeltaBody{}})
		return
	}
	resp := DeltasResponse{Seq: since, Resync: resync, Deltas: []DeltaBody{}}
	for _, d := range ds {
		resp.Deltas = append(resp.Deltas, EncodeDelta(d))
		if d.Seq > resp.Seq {
			resp.Seq = d.Seq
		}
	}
	srvutil.WriteJSON(w, http.StatusOK, resp)
}
