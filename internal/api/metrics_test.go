package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uagpnm/internal/hub"
	"uagpnm/internal/obs"
	"uagpnm/internal/updates"
)

// metricsServer builds a test server whose hub reports into a private
// registry, so assertions see only this test's telemetry.
func metricsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	h := testHub(t, hub.Config{Metrics: reg})
	ts := httptest.NewServer(NewServer(h, ServerConfig{PollTimeout: 2 * time.Second}).Routes())
	t.Cleanup(ts.Close)
	return ts, reg
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

// TestMetricsEndpoint: /v1/metrics (and the /metrics alias) serve the
// hub's registry in Prometheus text format, with the batch counters
// advancing as batches apply.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := metricsServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	if _, err := c.Register(ctx, pmsePattern()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b := hub.Batch{D: []updates.Update{{Kind: updates.DataEdgeInsert, From: 2, To: 1}}}
		if i == 1 {
			b.D[0].Kind = updates.DataEdgeDelete
		}
		if _, _, err := c.ApplyBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
	}

	resp, body := getBody(t, ts.URL+"/v1/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("GET /v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE gpnm_hub_batches_total counter\n",
		"gpnm_hub_batches_total 2\n",
		"# TYPE gpnm_batch_phase_seconds histogram\n",
		`gpnm_batch_phase_seconds_count{phase="slen_sync"} 2` + "\n",
		`gpnm_batch_phase_seconds_count{phase="wake_plan"} 2` + "\n",
		`gpnm_batch_phase_seconds_count{phase="amend_fan"} 2` + "\n",
		"gpnm_hub_seq 2\n",
		"gpnm_hub_patterns 1\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/v1/metrics missing %q", want)
		}
	}

	if _, alias := getBody(t, ts.URL+"/metrics"); alias != body {
		t.Error("/metrics alias disagrees with /v1/metrics")
	}
}

// TestTraceEndpoint: /v1/trace returns the per-batch phase traces with
// the hub spans present, newest last, and honours ?n=.
func TestTraceEndpoint(t *testing.T) {
	ts, _ := metricsServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	// Before any batch: an empty (non-null) list.
	_, body := getBody(t, ts.URL+"/v1/trace")
	var tr TracesResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil || tr.Traces == nil || len(tr.Traces) != 0 {
		t.Fatalf("empty trace body = %q (err %v)", body, err)
	}

	if _, err := c.Register(ctx, pmsePattern()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		kind := updates.DataEdgeInsert
		if i%2 == 1 {
			kind = updates.DataEdgeDelete
		}
		if _, _, err := c.ApplyBatch(ctx, hub.Batch{D: []updates.Update{{Kind: kind, From: 2, To: 1}}}); err != nil {
			t.Fatal(err)
		}
	}

	traces, err := c.Traces(ctx, 0)
	if err != nil || len(traces) != 3 {
		t.Fatalf("Traces = %d traces (err %v), want 3", len(traces), err)
	}
	last := traces[2]
	if last.Seq != 3 || last.DataUpdates != 1 || last.Patterns != 1 {
		t.Fatalf("last trace = %+v", last)
	}
	for _, span := range []string{"slen_sync", "wake_plan", "amend_fan"} {
		found := false
		for _, sp := range last.Spans {
			if sp.Name == span {
				found = true
			}
		}
		if !found {
			t.Errorf("trace seq 3 missing span %q (spans %v)", span, last.Spans)
		}
	}

	if traces, err = c.Traces(ctx, 2); err != nil || len(traces) != 2 || traces[0].Seq != 2 {
		t.Fatalf("Traces(n=2) = %+v (err %v), want seqs 2,3", traces, err)
	}
	lastTr, ok, err := c.LastTrace(ctx)
	if err != nil || !ok || lastTr.Seq != 3 {
		t.Fatalf("LastTrace = %+v ok=%v err=%v", lastTr, ok, err)
	}

	if resp, _ := getBody(t, ts.URL+"/v1/trace?n=-1"); resp.StatusCode != 400 {
		t.Fatalf("GET /v1/trace?n=-1: status %d, want 400", resp.StatusCode)
	}
}

// TestPatternStatsEndpoint: /v1/patterns/{id}/stats reports the
// registration's per-query cost counters through the SDK.
func TestPatternStatsEndpoint(t *testing.T) {
	ts, _ := metricsServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	id, err := c.Register(ctx, pmsePattern())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1}}}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if st.DataUpdates != 1 {
		t.Fatalf("stats.DataUpdates = %d, want 1 (stats %+v)", st.DataUpdates, st)
	}

	if _, err := c.Stats(ctx, id+99); err == nil {
		t.Fatal("Stats on unknown pattern did not error")
	}
}

// TestHealthzTelemetry: /v1/healthz carries the build identity, uptime,
// and (after the first batch) the last batch's phase timings.
func TestHealthzTelemetry(t *testing.T) {
	ts, _ := metricsServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	_, body := getBody(t, ts.URL+"/v1/healthz")
	var hb HealthBody
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if !hb.OK || hb.Version == "" {
		t.Fatalf("healthz before batches = %+v, want ok with a version", hb)
	}
	if hb.LastBatch != nil {
		t.Fatalf("healthz.last_batch before any batch = %+v, want absent", hb.LastBatch)
	}

	if _, err := c.Register(ctx, pmsePattern()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1}}}); err != nil {
		t.Fatal(err)
	}

	_, body = getBody(t, ts.URL+"/v1/healthz")
	hb = HealthBody{}
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.UptimeSeconds <= 0 {
		t.Fatalf("healthz.uptime_seconds = %g, want > 0", hb.UptimeSeconds)
	}
	if hb.LastBatch == nil || hb.LastBatch.Seq != 1 || hb.LastBatch.DataUpdates != 1 {
		t.Fatalf("healthz.last_batch = %+v, want seq 1 with 1 data update", hb.LastBatch)
	}
}
