// Package api is the versioned HTTP/JSON serving surface of the
// standing-query hub: one set of wire types and error codes shared by
// the server (mounted by cmd/gpnm-serve) and the client (behind
// uagpnm.Dial), so the two sides can never drift apart the way the
// old hand-rolled handler structs could.
//
// Routes live under /v1/ (see Server.Routes for the endpoint table);
// the pre-versioning unversioned routes are kept as thin aliases of
// the same handlers for one release. Errors are rendered as
//
//	{"error": "<human message>", "code": "<machine code>"}
//
// — the "error" field is what the legacy routes always served, the
// "code" field is the v1 addition the client maps back onto sentinel
// errors (ErrUnknownPattern, ErrSubstrateLost) with errors.Is.
package api

import (
	"errors"
	"fmt"
	"time"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/pattern"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// Machine-readable error codes carried in ErrorBody.Code.
const (
	// CodeBadRequest: malformed JSON, ids, query parameters.
	CodeBadRequest = "bad_request"
	// CodeBadPattern: a pattern that does not parse or is empty.
	CodeBadPattern = "bad_pattern"
	// CodeBadBatch: a structurally invalid update batch (wrong-side
	// updates, mispredicted node-insert ids, bad scripts).
	CodeBadBatch = "bad_batch"
	// CodeUnknownPattern: the pattern id is not (or no longer) registered.
	CodeUnknownPattern = "unknown_pattern"
	// CodeSubstrateLost: the hub lost part of its distance substrate
	// (a shard worker died) beyond repair; the process is draining and
	// every further request will fail the same way.
	CodeSubstrateLost = "substrate_lost"
	// CodeSubstrateRecovering: a shard worker died and the hub is
	// rebuilding its partitions on surviving or spare workers inside
	// the in-flight batch. Degraded, not dead: the request was refused
	// only to avoid queueing behind the repair — retry shortly
	// (Retry-After is set) and it will be served normally.
	CodeSubstrateRecovering = "substrate_recovering"
)

// ErrorBody is the uniform error envelope of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// ErrSubstrateRecovering is the client-side sentinel for
// CodeSubstrateRecovering: the hub is repairing a lost shard worker
// inside an in-flight batch and refused a mutating request so it would
// not queue behind the repair. Transient by construction — retry after
// a short delay (the response carries Retry-After) and the request
// will be served normally. Detect with errors.Is; re-exported as
// uagpnm.ErrSubstrateRecovering.
var ErrSubstrateRecovering = errors.New("substrate recovering")

// HealthBody answers GET /v1/healthz.
type HealthBody struct {
	OK   bool   `json:"ok"`
	Lost string `json:"lost,omitempty"` // substrate-loss message when poisoned
	// Recovering marks the degraded-not-dead state: a shard failover is
	// in flight and the detailed stats below are omitted (they would
	// block on the batch absorbing the loss). Recovered counts the
	// shard losses absorbed over the process lifetime.
	Recovering bool   `json:"recovering,omitempty"`
	Recovered  uint64 `json:"recovered,omitempty"`
	Seq        uint64 `json:"seq"`
	Patterns   int    `json:"patterns"`
	Nodes      int    `json:"nodes"`
	Edges      int    `json:"edges"`
	Labels     int    `json:"labels"`
	// Version/Commit identify the serving build (ldflags-stamped, or the
	// module's VCS stamp); UptimeSeconds the time since the front end
	// started. Omitted on the recovering fast path.
	Version       string  `json:"version,omitempty"`
	Commit        string  `json:"commit,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds,omitempty"`
	// LastBatch carries the phase timings of the most recent ApplyBatch
	// (absent before the first batch), so a scrape of /v1/healthz alone
	// answers "what did the last batch cost".
	LastBatch *BatchStatsBody `json:"last_batch,omitempty"`
}

// RegisterRequest registers a standing pattern: either the textual DSL
// ("node <name> <label>" / "edge <from> <to> <bound>" lines) in
// Pattern, or the typed Graph body (which survives duplicate display
// names and non-dense id spaces the DSL cannot express). Exactly one
// must be set.
type RegisterRequest struct {
	Pattern string       `json:"pattern,omitempty"`
	Graph   *PatternBody `json:"graph,omitempty"`
}

// PatternBody is the typed wire form of a pattern graph. Node ids are
// explicit so an evolved pattern (with tombstoned ids after ΔGP node
// deletes) round-trips with the id space intact — deltas and results
// are keyed by these ids.
type PatternBody struct {
	NumIDs int           `json:"num_ids"`
	Nodes  []PatternNode `json:"nodes"`
	Edges  []PatternEdge `json:"edges,omitempty"`
}

// PatternNode is one alive pattern node.
type PatternNode struct {
	ID    uint32 `json:"id"`
	Name  string `json:"name"`
	Label string `json:"label"`
}

// PatternEdge is one pattern edge; Bound is a positive integer or "*".
type PatternEdge struct {
	From  uint32 `json:"from"`
	To    uint32 `json:"to"`
	Bound string `json:"bound"`
}

// EncodePattern captures p as its typed wire form.
func EncodePattern(p *pattern.Graph) PatternBody {
	b := PatternBody{NumIDs: p.NumIDs(), Nodes: []PatternNode{}}
	p.Nodes(func(u pattern.NodeID) {
		b.Nodes = append(b.Nodes, PatternNode{ID: u, Name: p.Name(u), Label: p.LabelName(u)})
	})
	p.Edges(func(e pattern.Edge) {
		b.Edges = append(b.Edges, PatternEdge{From: e.From, To: e.To, Bound: e.B.String()})
	})
	return b
}

// Materialise rebuilds the pattern against the given label table,
// reproducing the exact id space: ids absent from Nodes but below
// NumIDs are created and tombstoned so edge/delta ids keep meaning.
func (b PatternBody) Materialise(labels *graph.Labels) (*pattern.Graph, error) {
	if b.NumIDs < 0 || b.NumIDs > 1<<20 {
		return nil, fmt.Errorf("pattern body: implausible num_ids %d", b.NumIDs)
	}
	byID := make(map[uint32]PatternNode, len(b.Nodes))
	for _, n := range b.Nodes {
		if int(n.ID) >= b.NumIDs {
			return nil, fmt.Errorf("pattern body: node id %d beyond num_ids %d", n.ID, b.NumIDs)
		}
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("pattern body: duplicate node id %d", n.ID)
		}
		byID[n.ID] = n
	}
	// Tombstoned ids get a placeholder carrying an existing label (the
	// first node's), so materialising never interns labels the pattern
	// does not use. A fully-tombstoned pattern (every node deleted by
	// ΔGP — legal, and what the hub then holds) has no label to borrow;
	// its placeholders intern one sentinel name so Snapshot round-trips
	// it instead of erroring (registering such a body is still rejected,
	// by the hub's empty-pattern check).
	fillLabel := "__dead"
	if len(b.Nodes) > 0 {
		fillLabel = b.Nodes[0].Label
	}
	p := pattern.New(labels)
	var dead []uint32
	for id := uint32(0); int(id) < b.NumIDs; id++ {
		n, ok := byID[id]
		if !ok {
			n = PatternNode{ID: id, Name: fmt.Sprintf("__dead_%d", id), Label: fillLabel}
			dead = append(dead, id)
		}
		if got := p.AddNamedNode(n.Name, n.Label); got != id {
			return nil, fmt.Errorf("pattern body: id assignment diverged at %d", id)
		}
	}
	for _, d := range dead {
		p.RemoveNode(d)
	}
	for _, e := range b.Edges {
		bound, err := pattern.ParseBound(e.Bound)
		if err != nil {
			return nil, fmt.Errorf("pattern body: edge %d->%d: %v", e.From, e.To, err)
		}
		if !p.Alive(e.From) || !p.Alive(e.To) {
			return nil, fmt.Errorf("pattern body: edge %d->%d references a missing node", e.From, e.To)
		}
		if !p.AddEdge(e.From, e.To, bound) {
			return nil, fmt.Errorf("pattern body: edge %d->%d rejected (duplicate or self loop)", e.From, e.To)
		}
	}
	return p, nil
}

// Update is the typed wire form of one update, mirroring the script
// mnemonics: op is "+e"/"-e"/"+n"/"-n" (data side) or
// "+pe"/"-pe"/"+pn"/"-pn" (pattern side).
type Update struct {
	Op     string   `json:"op"`
	From   uint32   `json:"from,omitempty"`
	To     uint32   `json:"to,omitempty"`
	Node   uint32   `json:"node,omitempty"`
	Labels []string `json:"labels,omitempty"`
	Bound  string   `json:"bound,omitempty"` // "+pe" only: positive integer or "*"
}

// kindOps maps updates.Kind to the wire op mnemonic.
var kindOps = map[updates.Kind]string{
	updates.DataEdgeInsert:    "+e",
	updates.DataEdgeDelete:    "-e",
	updates.DataNodeInsert:    "+n",
	updates.DataNodeDelete:    "-n",
	updates.PatternEdgeInsert: "+pe",
	updates.PatternEdgeDelete: "-pe",
	updates.PatternNodeInsert: "+pn",
	updates.PatternNodeDelete: "-pn",
}

// EncodeUpdate converts one update to its wire form.
func EncodeUpdate(u updates.Update) Update {
	w := Update{Op: kindOps[u.Kind]}
	switch u.Kind {
	case updates.DataEdgeInsert, updates.DataEdgeDelete, updates.PatternEdgeDelete:
		w.From, w.To = u.From, u.To
	case updates.PatternEdgeInsert:
		w.From, w.To, w.Bound = u.From, u.To, u.Bound.String()
	case updates.DataNodeInsert, updates.PatternNodeInsert:
		w.Node, w.Labels = u.Node, u.Labels
	case updates.DataNodeDelete, updates.PatternNodeDelete:
		w.Node = u.Node
	}
	return w
}

// EncodeUpdates converts a whole sequence.
func EncodeUpdates(us []updates.Update) []Update {
	if len(us) == 0 {
		return nil
	}
	out := make([]Update, len(us))
	for i, u := range us {
		out[i] = EncodeUpdate(u)
	}
	return out
}

// Decode converts the wire form back to an update.
func (w Update) Decode() (updates.Update, error) {
	switch w.Op {
	case "+e":
		return updates.Update{Kind: updates.DataEdgeInsert, From: w.From, To: w.To}, nil
	case "-e":
		return updates.Update{Kind: updates.DataEdgeDelete, From: w.From, To: w.To}, nil
	case "+n":
		if len(w.Labels) == 0 {
			return updates.Update{}, fmt.Errorf("update %q: node insert needs labels", w.Op)
		}
		return updates.Update{Kind: updates.DataNodeInsert, Node: w.Node, Labels: w.Labels}, nil
	case "-n":
		return updates.Update{Kind: updates.DataNodeDelete, Node: w.Node}, nil
	case "+pe":
		b, err := pattern.ParseBound(w.Bound)
		if err != nil {
			return updates.Update{}, fmt.Errorf("update %q: %v", w.Op, err)
		}
		return updates.Update{Kind: updates.PatternEdgeInsert, From: w.From, To: w.To, Bound: b}, nil
	case "-pe":
		return updates.Update{Kind: updates.PatternEdgeDelete, From: w.From, To: w.To}, nil
	case "+pn":
		if len(w.Labels) != 1 {
			return updates.Update{}, fmt.Errorf("update %q: pattern node insert needs exactly one label", w.Op)
		}
		return updates.Update{Kind: updates.PatternNodeInsert, Node: w.Node, Labels: w.Labels}, nil
	case "-pn":
		return updates.Update{Kind: updates.PatternNodeDelete, Node: w.Node}, nil
	}
	return updates.Update{}, fmt.Errorf("unknown update op %q", w.Op)
}

// DecodeUpdates converts a whole wire sequence.
func DecodeUpdates(ws []Update) ([]updates.Update, error) {
	if len(ws) == 0 {
		return nil, nil
	}
	out := make([]updates.Update, len(ws))
	for i, w := range ws {
		u, err := w.Decode()
		if err != nil {
			return nil, fmt.Errorf("update %d: %v", i, err)
		}
		out[i] = u
	}
	return out, nil
}

// ApplyRequest is POST /v1/apply: one epoch's worth of typed updates —
// a shared data-side sequence plus per-pattern ΔGP sequences keyed by
// decimal pattern id (JSON object keys are strings).
type ApplyRequest struct {
	Updates  []Update            `json:"updates,omitempty"`
	Patterns map[string][]Update `json:"patterns,omitempty"`
}

// LegacyApplyRequest is the pre-versioning POST /apply shape: update
// scripts instead of typed updates.
type LegacyApplyRequest struct {
	Data     string            `json:"data"`
	Patterns map[string]string `json:"patterns"`
}

// BatchStatsBody mirrors hub.BatchStats over the wire.
type BatchStatsBody struct {
	Seq            uint64  `json:"seq"`
	DataUpdates    int     `json:"data_updates"`
	Patterns       int     `json:"patterns"`
	SLenSyncMillis float64 `json:"slen_sync_millis"`
	SLenSyncs      int     `json:"slen_syncs"`
	FanOutMillis   float64 `json:"fan_out_millis"`
	DurationMillis float64 `json:"duration_millis"`
	// Recovered counts the shard losses this batch absorbed through
	// failover (0 on every healthy batch).
	Recovered int `json:"recovered,omitempty"`
	// Woken/Skipped partition the registrations by the pattern-set
	// index's wake decision (Woken + Skipped == Patterns);
	// IndexBypassed flags batches whose decision did not come from the
	// index (disabled, or touch-region cap overflow).
	Woken         int  `json:"woken"`
	Skipped       int  `json:"skipped"`
	IndexBypassed bool `json:"index_bypassed,omitempty"`
	// Sharded read-plane traffic of this batch (all zero in-process):
	// RPCs issued, rows bulk-installed, rows fetched one at a time.
	RPCCalls       uint64 `json:"rpc_calls,omitempty"`
	RowsPrefetched uint64 `json:"rows_prefetched,omitempty"`
	RowsMissed     uint64 `json:"rows_missed,omitempty"`
	// AmendWorkers is the per-pass amendment fan width the batch ran
	// with (1 = sequential drain); Overlapped flags batches whose phase 1
	// ran overlapped with the previous batch's fan (pipelined mode).
	AmendWorkers int  `json:"amend_workers,omitempty"`
	Overlapped   bool `json:"overlapped,omitempty"`
}

func millis(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// EncodeBatchStats converts hub batch stats to the wire form.
func EncodeBatchStats(st hub.BatchStats) BatchStatsBody {
	return BatchStatsBody{
		Seq:            st.Seq,
		DataUpdates:    st.DataUpdates,
		Patterns:       st.Patterns,
		SLenSyncMillis: millis(st.SLenSync),
		SLenSyncs:      st.SLenSyncs,
		FanOutMillis:   millis(st.FanOut),
		DurationMillis: millis(st.Duration),
		Recovered:      st.Recovered,
		Woken:          st.Woken,
		Skipped:        st.Skipped,
		IndexBypassed:  st.IndexBypassed,
		RPCCalls:       st.RPCCalls,
		RowsPrefetched: st.RowsPrefetched,
		RowsMissed:     st.RowsMissed,
		AmendWorkers:   st.AmendWorkers,
		Overlapped:     st.Overlapped,
	}
}

// Decode converts the wire stats back to hub.BatchStats.
func (b BatchStatsBody) Decode() hub.BatchStats {
	return hub.BatchStats{
		Seq:            b.Seq,
		DataUpdates:    b.DataUpdates,
		Patterns:       b.Patterns,
		SLenSync:       time.Duration(b.SLenSyncMillis * float64(time.Millisecond)),
		SLenSyncs:      b.SLenSyncs,
		FanOut:         time.Duration(b.FanOutMillis * float64(time.Millisecond)),
		Duration:       time.Duration(b.DurationMillis * float64(time.Millisecond)),
		Recovered:      b.Recovered,
		Woken:          b.Woken,
		Skipped:        b.Skipped,
		IndexBypassed:  b.IndexBypassed,
		RPCCalls:       b.RPCCalls,
		RowsPrefetched: b.RowsPrefetched,
		RowsMissed:     b.RowsMissed,
		AmendWorkers:   b.AmendWorkers,
		Overlapped:     b.Overlapped,
	}
}

// ApplyResponse answers POST /v1/apply (and the legacy /apply, whose
// clients read only seq/deltas/slen_sync_millis).
type ApplyResponse struct {
	Seq    uint64         `json:"seq"`
	Deltas []DeltaBody    `json:"deltas"`
	Stats  BatchStatsBody `json:"stats"`
	// SLenSyncMillis duplicates Stats.SLenSyncMillis for the legacy
	// clients that predate the stats block.
	SLenSyncMillis float64 `json:"slen_sync_millis"`
}

// DeltaBody is one pattern's result change after one batch.
type DeltaBody struct {
	Pattern uint64      `json:"pattern"`
	Seq     uint64      `json:"seq"`
	Nodes   []DeltaNode `json:"nodes"`
}

// DeltaNode is one pattern node's Added/Removed sets.
type DeltaNode struct {
	Node    uint32   `json:"node"`
	Added   []uint32 `json:"added"`
	Removed []uint32 `json:"removed"`
}

// setSlice renders a node set as a non-null JSON array.
func setSlice(s nodeset.Set) []uint32 {
	if len(s) == 0 {
		return []uint32{}
	}
	return s
}

// EncodeDelta converts one hub delta to the wire form.
func EncodeDelta(d hub.Delta) DeltaBody {
	body := DeltaBody{Pattern: uint64(d.Pattern), Seq: d.Seq, Nodes: []DeltaNode{}}
	for _, nd := range d.Nodes {
		body.Nodes = append(body.Nodes, DeltaNode{
			Node:    nd.Node,
			Added:   setSlice(nd.Added),
			Removed: setSlice(nd.Removed),
		})
	}
	return body
}

// Decode converts the wire delta back to a hub delta.
func (b DeltaBody) Decode() hub.Delta {
	d := hub.Delta{Pattern: hub.PatternID(b.Pattern), Seq: b.Seq}
	for _, nd := range b.Nodes {
		d.Nodes = append(d.Nodes, simulation.NodeDelta{
			Node:    nd.Node,
			Added:   nodeset.Set(nd.Added),
			Removed: nodeset.Set(nd.Removed),
		})
	}
	return d
}

// ResultBody answers the register and result endpoints: one standing
// query's current (BGS-projected) result.
type ResultBody struct {
	ID    uint64       `json:"id"`
	Seq   uint64       `json:"seq"`
	Total bool         `json:"total"`
	Nodes []ResultNode `json:"nodes"`
}

// ResultNode is one pattern node's projected matches.
type ResultNode struct {
	Node    uint32   `json:"node"`
	Name    string   `json:"name"`
	Label   string   `json:"label"`
	Matches []uint32 `json:"matches"`
}

// SnapshotBody answers GET /v1/patterns/{id}/snapshot: a mutually
// consistent (pattern, raw simulation images, seq) view from which the
// client reconstructs a full local Match — Sim carries SimulationSet
// (pre-BGS projection), so non-total matches survive the round trip.
type SnapshotBody struct {
	ID      uint64         `json:"id"`
	Seq     uint64         `json:"seq"`
	Total   bool           `json:"total"`
	Pattern PatternBody    `json:"pattern"`
	Nodes   []SnapshotNode `json:"nodes"`
}

// SnapshotNode is one pattern node's raw simulation image.
type SnapshotNode struct {
	Node uint32   `json:"node"`
	Sim  []uint32 `json:"sim"`
}

// DeltasResponse answers the delta long-poll.
type DeltasResponse struct {
	Seq    uint64      `json:"seq"`    // highest seq in Deltas, or the polled-from seq
	Resync bool        `json:"resync"` // subscriber fell behind the history: refetch the result
	Deltas []DeltaBody `json:"deltas"`
}

// UnregisterResponse answers DELETE /v1/patterns/{id}.
type UnregisterResponse struct {
	OK bool `json:"ok"`
}

// TracesResponse answers GET /v1/trace: the retained per-batch phase
// traces, oldest first. obs.Trace is its own wire form — json-tagged
// plain data, built by the batch's single writer — so the response
// carries it directly instead of a parallel body type.
type TracesResponse struct {
	Traces []obs.Trace `json:"traces"`
}

// QueryStatsBody answers GET /v1/patterns/{id}/stats: the per-pattern
// pass statistics of one standing query's last amendment (all zero
// before the first batch after registration).
type QueryStatsBody struct {
	ID             uint64  `json:"id"`
	DurationMillis float64 `json:"duration_millis"`
	Passes         int     `json:"passes"`
	DataUpdates    int     `json:"data_updates"`
	PatternUpdates int     `json:"pattern_updates"`
	TreeSize       int     `json:"tree_size"`
	TreeRoots      int     `json:"tree_roots"`
	Eliminated     int     `json:"eliminated"`
	SeedNodes      int     `json:"seed_nodes"`
	SLenSyncMillis float64 `json:"slen_sync_millis"`
	SLenSyncs      int     `json:"slen_syncs"`
}

// EncodeQueryStats converts one pattern's pass stats to the wire form.
func EncodeQueryStats(id hub.PatternID, st core.QueryStats) QueryStatsBody {
	return QueryStatsBody{
		ID:             uint64(id),
		DurationMillis: millis(st.Duration),
		Passes:         st.Passes,
		DataUpdates:    st.DataUpdates,
		PatternUpdates: st.PatternUpdates,
		TreeSize:       st.TreeSize,
		TreeRoots:      st.TreeRoots,
		Eliminated:     st.Eliminated,
		SeedNodes:      st.SeedNodes,
		SLenSyncMillis: millis(st.SLenSync),
		SLenSyncs:      st.SLenSyncs,
	}
}

// Decode converts the wire stats back to core.QueryStats.
func (b QueryStatsBody) Decode() core.QueryStats {
	return core.QueryStats{
		Duration:       time.Duration(b.DurationMillis * float64(time.Millisecond)),
		Passes:         b.Passes,
		DataUpdates:    b.DataUpdates,
		PatternUpdates: b.PatternUpdates,
		TreeSize:       b.TreeSize,
		TreeRoots:      b.TreeRoots,
		Eliminated:     b.Eliminated,
		SeedNodes:      b.SeedNodes,
		SLenSync:       time.Duration(b.SLenSyncMillis * float64(time.Millisecond)),
		SLenSyncs:      b.SLenSyncs,
	}
}
