package api

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"uagpnm/internal/datasets"
	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// TestDifferentialRemoteEqualsLocal drives identical batch streams
// through an in-process hub and through Dial → /v1 → a second hub over
// the same initial graph, asserting batch-for-batch equality of
// deltas, snapshots and results. This is the wire-fidelity pin: any
// codec asymmetry (update encoding, pattern round-trip, delta
// rendering, simulation-set reconstruction) breaks it.
func TestDifferentialRemoteEqualsLocal(t *testing.T) {
	g := datasets.GenerateSocial(datasets.SocialConfig{
		Name: "api-diff", Nodes: 120, Edges: 420, Labels: 6,
		Homophily: 0.8, PrefAtt: 0.5, Seed: 7,
	})

	newHub := func(g *graph.Graph) *hub.Hub {
		h, err := hub.New(g, hub.Config{Horizon: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	local := newHub(g.Clone())
	remoteHub := newHub(g.Clone())
	ts := httptest.NewServer(NewServer(remoteHub, ServerConfig{PollTimeout: 2 * time.Second}).Routes())
	t.Cleanup(ts.Close)
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx := context.Background()

	// Driver state: the batch generator needs the evolving graph and
	// pattern, which the hubs own privately — mirror them.
	gw := g.Clone()
	const nPatterns = 3
	localIDs := make([]hub.PatternID, nPatterns)
	remoteIDs := make([]hub.PatternID, nPatterns)
	mirror := make([]*pattern.Graph, nPatterns)
	for i := 0; i < nPatterns; i++ {
		p := patgen.Generate(patgen.Config{
			Nodes: 4, Edges: 4, BoundMin: 1, BoundMax: 3, Seed: int64(100 + i),
			Labels: patgen.LabelsOf(gw),
		}, gw.Labels())
		var err error
		if localIDs[i], err = local.Register(p.Clone()); err != nil {
			t.Fatal(err)
		}
		if remoteIDs[i], err = c.Register(ctx, p); err != nil {
			t.Fatal(err)
		}
		mirror[i] = p.Clone()
	}

	for round := 0; round < 6; round++ {
		// Generate ΔGD against the driver graph and ΔGP against pattern
		// round%n's driver mirror; both hubs get identical batches.
		b := updates.Generate(updates.Balanced(int64(round*31+5), 2, 24), gw, mirror[round%nPatterns])
		pi := round % nPatterns
		lb := hub.Batch{D: b.D, P: map[hub.PatternID][]updates.Update{localIDs[pi]: b.P}}
		rb := hub.Batch{D: b.D, P: map[hub.PatternID][]updates.Update{remoteIDs[pi]: b.P}}

		ldeltas, lstats, lerr := local.ApplyBatch(lb)
		rdeltas, rstats, rerr := c.ApplyBatch(ctx, rb)
		if lerr != nil || rerr != nil {
			t.Fatalf("round %d: local err %v, remote err %v", round, lerr, rerr)
		}
		if lstats.Seq != rstats.Seq || lstats.DataUpdates != rstats.DataUpdates {
			t.Fatalf("round %d: stats diverged: %+v vs %+v", round, lstats, rstats)
		}
		if len(ldeltas) != len(rdeltas) {
			t.Fatalf("round %d: %d local deltas vs %d remote", round, len(ldeltas), len(rdeltas))
		}
		for i := range ldeltas {
			ld, rd := ldeltas[i], rdeltas[i]
			if ld.Seq != rd.Seq || len(ld.Nodes) != len(rd.Nodes) {
				t.Fatalf("round %d delta %d: %+v vs %+v", round, i, ld, rd)
			}
			for j := range ld.Nodes {
				if ld.Nodes[j].Node != rd.Nodes[j].Node ||
					!ld.Nodes[j].Added.Equal(rd.Nodes[j].Added) ||
					!ld.Nodes[j].Removed.Equal(rd.Nodes[j].Removed) {
					t.Fatalf("round %d delta %d node %d: local (+%v -%v) vs remote (+%v -%v)",
						round, i, j,
						ld.Nodes[j].Added, ld.Nodes[j].Removed,
						rd.Nodes[j].Added, rd.Nodes[j].Removed)
				}
			}
		}

		// Advance the driver mirrors the same way the hubs did.
		updates.ApplyDataStructural(b.D, gw)
		updates.ApplyPatternBatch(b.P, mirror[pi])

		// Snapshot equality per pattern: raw simulation images, totality
		// and every projected result set.
		for i := range localIDs {
			lp, lm, lseq, lerr := local.Snapshot(localIDs[i])
			if lerr != nil {
				t.Fatalf("round %d: local snapshot missing", round)
			}
			rp, rm, rseq, err := c.Snapshot(ctx, remoteIDs[i])
			if err != nil {
				t.Fatal(err)
			}
			if lseq != rseq || lp.NumIDs() != rp.NumIDs() || lp.NumEdges() != rp.NumEdges() {
				t.Fatalf("round %d pattern %d: shape diverged (seq %d/%d)", round, i, lseq, rseq)
			}
			if lm.Total() != rm.Total() {
				t.Fatalf("round %d pattern %d: totality diverged", round, i)
			}
			lp.Nodes(func(u uint32) {
				if !lm.SimulationSet(u).Equal(rm.SimulationSet(u)) {
					t.Fatalf("round %d pattern %d node %d: sim %v vs %v",
						round, i, u, lm.SimulationSet(u), rm.SimulationSet(u))
				}
				ls, _ := local.ResultErr(localIDs[i], u)
				rs, err := c.Result(ctx, remoteIDs[i], u)
				if err != nil || !ls.Equal(rs) {
					t.Fatalf("round %d pattern %d node %d: result %v vs %v (err %v)",
						round, i, u, ls, rs, err)
				}
			})
		}
	}
}
