package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// testHub builds the quickstart-sized hub: 0:PM, 1:SE, 2:PM with 0→1.
func testHub(t *testing.T, cfg hub.Config) *hub.Hub {
	t.Helper()
	g := graph.New(nil)
	g.AddNode("PM")
	g.AddNode("SE")
	g.AddNode("PM")
	g.AddEdge(0, 1)
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	h, err := hub.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	h := testHub(t, hub.Config{})
	ts := httptest.NewServer(NewServer(h, ServerConfig{PollTimeout: 2 * time.Second}).Routes())
	t.Cleanup(ts.Close)
	return ts
}

func testClient(t *testing.T, ts *httptest.Server) *Client {
	t.Helper()
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// pmsePattern is the PM-within-2-of-SE pattern of the smoke tests.
func pmsePattern() *pattern.Graph {
	p := pattern.New(graph.NewLabels())
	pm := p.AddNamedNode("pm", "PM")
	se := p.AddNamedNode("se", "SE")
	p.AddEdge(pm, se, 2)
	return p
}

func mustJSON(t *testing.T, resp *http.Response, wantStatus int, into interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d (want %d): %s (%s)", resp.StatusCode, wantStatus, e.Error, e.Code)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	}
}

func post(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClientServiceRoundTrip drives the full Service surface through
// Dial → client → /v1 handlers → hub.
func TestClientServiceRoundTrip(t *testing.T) {
	ts := testServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	id, err := c.Register(ctx, pmsePattern())
	if err != nil {
		t.Fatal(err)
	}

	// Initial state: only PM 0 matches (PM 2 has no SE in range).
	if got, err := c.Result(ctx, id, 0); err != nil || !got.Equal([]uint32{0}) {
		t.Fatalf("initial result = %v (err %v), want {0}", got, err)
	}
	p, m, seq, err := c.Snapshot(ctx, id)
	if err != nil || seq != 0 {
		t.Fatalf("snapshot err %v seq %d", err, seq)
	}
	if p.NumNodes() != 2 || p.Name(0) != "pm" || p.LabelName(1) != "SE" {
		t.Fatalf("snapshot pattern = %v", p)
	}
	if !m.Total() || !m.Nodes(0).Equal([]uint32{0}) {
		t.Fatalf("snapshot match total=%v nodes=%v", m.Total(), m.Nodes(0))
	}

	// Typed apply: connect the second PM; expect an added match.
	deltas, stats, err := c.ApplyBatch(ctx, hub.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Seq != 1 || stats.DataUpdates != 1 || stats.Patterns != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(deltas) != 1 || deltas[0].Pattern != id || len(deltas[0].Nodes) != 1 ||
		!deltas[0].Nodes[0].Added.Equal([]uint32{2}) {
		t.Fatalf("deltas = %+v", deltas)
	}

	// Long-poll from 0: the retained delta comes straight back.
	ds, resync, err := c.WaitDeltas(ctx, id, 0)
	if err != nil || resync || len(ds) != 1 || ds[0].Seq != 1 {
		t.Fatalf("WaitDeltas = %v resync=%v err=%v", ds, resync, err)
	}

	// Long-poll past the tip: a concurrent apply must wake it.
	type pollOut struct {
		ds  []hub.Delta
		err error
	}
	ch := make(chan pollOut, 1)
	go func() {
		ds, _, err := c.WaitDeltas(ctx, id, 1)
		ch <- pollOut{ds, err}
	}()
	time.Sleep(50 * time.Millisecond)
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.err != nil || len(got.ds) != 1 || !got.ds[0].Nodes[0].Removed.Equal([]uint32{2}) {
		t.Fatalf("woken poll = %+v (err %v)", got.ds, got.err)
	}

	// Pattern-side updates travel typed too.
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{P: map[hub.PatternID][]updates.Update{
		id: {{Kind: updates.PatternEdgeDelete, From: 0, To: 1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if p, _, _, err := c.Snapshot(ctx, id); err != nil || p.NumEdges() != 0 {
		t.Fatalf("pattern after ΔGP: %d edges (err %v)", p.NumEdges(), err)
	}

	// Unregister; everything afterwards maps to ErrUnknownPattern.
	if err := c.Unregister(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister(ctx, id); !errors.Is(err, hub.ErrUnknownPattern) {
		t.Fatalf("second unregister = %v, want ErrUnknownPattern", err)
	}
	if _, err := c.Result(ctx, id, 0); !errors.Is(err, hub.ErrUnknownPattern) {
		t.Fatalf("result after unregister = %v, want ErrUnknownPattern", err)
	}
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{P: map[hub.PatternID][]updates.Update{
		id: {{Kind: updates.PatternEdgeDelete, From: 0, To: 1}},
	}}); !errors.Is(err, hub.ErrUnknownPattern) {
		t.Fatalf("apply after unregister = %v, want ErrUnknownPattern", err)
	}
}

// TestClientWaitDeltasTimeoutAndResync pins the ctx-expiry and resync
// paths of the long-poll loop.
func TestClientWaitDeltasTimeoutAndResync(t *testing.T) {
	h := testHub(t, hub.Config{History: 1})
	ts := httptest.NewServer(NewServer(h, ServerConfig{PollTimeout: 250 * time.Millisecond}).Routes())
	t.Cleanup(ts.Close)
	c := testClient(t, ts)
	ctx := context.Background()

	id, err := c.Register(ctx, pmsePattern())
	if err != nil {
		t.Fatal(err)
	}

	// No deltas yet: a bounded wait must come back with ctx's error.
	short, cancel := context.WithTimeout(ctx, 300*time.Millisecond)
	defer cancel()
	if _, _, err := c.WaitDeltas(short, id, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("empty poll err = %v, want deadline", err)
	}

	// Two delta-producing batches overflow the history of 1: a
	// subscriber at 0 must be told to resync.
	for _, b := range []hub.Batch{
		{D: []updates.Update{{Kind: updates.DataEdgeInsert, From: 2, To: 1}}},
		{D: []updates.Update{{Kind: updates.DataEdgeDelete, From: 2, To: 1}}},
	} {
		if _, _, err := c.ApplyBatch(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	ds, resync, err := c.WaitDeltas(ctx, id, 0)
	if err != nil || !resync || len(ds) != 0 {
		t.Fatalf("overflowed poll = (%v, %v, %v), want resync", ds, resync, err)
	}
}

// TestRegisterWireForms covers the three register bodies: DSL, typed
// graph, and the both-set rejection.
func TestRegisterWireForms(t *testing.T) {
	ts := testServer(t)

	var reg ResultBody
	mustJSON(t, post(t, ts.URL+"/v1/patterns", RegisterRequest{
		Pattern: "node pm PM\nnode se SE\nedge pm se 2\n",
	}), http.StatusOK, &reg)
	if reg.ID == 0 || !reg.Total || len(reg.Nodes) != 2 || reg.Nodes[0].Matches[0] != 0 {
		t.Fatalf("DSL register = %+v", reg)
	}

	body := EncodePattern(pmsePattern())
	var reg2 ResultBody
	mustJSON(t, post(t, ts.URL+"/v1/patterns", RegisterRequest{Graph: &body}), http.StatusOK, &reg2)
	if reg2.ID <= reg.ID || !reg2.Total {
		t.Fatalf("typed register = %+v", reg2)
	}

	resp := post(t, ts.URL+"/v1/patterns", RegisterRequest{Pattern: "node a A\n", Graph: &body})
	var e ErrorBody
	mustJSON(t, resp, http.StatusBadRequest, &e)
	if e.Code != CodeBadRequest {
		t.Fatalf("both-set register code = %q", e.Code)
	}
}

// TestPatternBodyRoundTrip pins the typed pattern codec on the shapes
// the DSL cannot carry: duplicate display names and tombstoned ids.
func TestPatternBodyRoundTrip(t *testing.T) {
	p := pattern.New(graph.NewLabels())
	a := p.AddNode("SE") // name "SE"
	b := p.AddNode("SE") // duplicate name "SE"
	c := p.AddNode("TE")
	p.AddEdge(a, b, 2)
	p.AddEdge(b, c, pattern.Star)
	p.RemoveNode(c) // tombstone id 2

	got, err := EncodePattern(p).Materialise(graph.NewLabels())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumIDs() != 3 || got.NumNodes() != 2 || got.Alive(2) {
		t.Fatalf("round trip ids: NumIDs=%d NumNodes=%d alive2=%v", got.NumIDs(), got.NumNodes(), got.Alive(2))
	}
	if bd, ok := got.EdgeBound(a, b); !ok || bd != 2 {
		t.Fatalf("edge a->b bound = %v, %v", bd, ok)
	}
	if got.LabelName(a) != "SE" || got.LabelName(b) != "SE" {
		t.Fatalf("labels = %q, %q", got.LabelName(a), got.LabelName(b))
	}
}

// TestSnapshotFullyTombstonedPattern: ΔGP may legally delete every
// pattern node; the remote Snapshot must round-trip that state exactly
// as the local hub serves it, not reject the wire body.
func TestSnapshotFullyTombstonedPattern(t *testing.T) {
	ts := testServer(t)
	c := testClient(t, ts)
	ctx := context.Background()

	id, err := c.Register(ctx, pmsePattern())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplyBatch(ctx, hub.Batch{P: map[hub.PatternID][]updates.Update{
		id: {
			{Kind: updates.PatternNodeDelete, Node: 0},
			{Kind: updates.PatternNodeDelete, Node: 1},
		},
	}}); err != nil {
		t.Fatal(err)
	}
	p, m, seq, err := c.Snapshot(ctx, id)
	if err != nil {
		t.Fatalf("snapshot of emptied pattern: %v", err)
	}
	if seq != 1 || p.NumNodes() != 0 || p.NumIDs() != 2 {
		t.Fatalf("emptied snapshot: seq=%d nodes=%d ids=%d", seq, p.NumNodes(), p.NumIDs())
	}
	_ = m // no alive nodes: nothing to compare beyond shape
}

// TestUpdateWireCodec round-trips every update kind.
func TestUpdateWireCodec(t *testing.T) {
	us := []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 1, To: 2},
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
		{Kind: updates.DataNodeInsert, Node: 7, Labels: []string{"A", "B"}},
		{Kind: updates.DataNodeDelete, Node: 7},
		{Kind: updates.PatternEdgeInsert, From: 0, To: 1, Bound: 3},
		{Kind: updates.PatternEdgeInsert, From: 1, To: 0, Bound: pattern.Star},
		{Kind: updates.PatternEdgeDelete, From: 0, To: 1},
		{Kind: updates.PatternNodeInsert, Node: 2, Labels: []string{"C"}},
		{Kind: updates.PatternNodeDelete, Node: 2},
	}
	enc := EncodeUpdates(us)
	raw, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var dec []Update
	if err := json.Unmarshal(raw, &dec); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdates(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(us) {
		t.Fatalf("len %d != %d", len(got), len(us))
	}
	for i := range us {
		if got[i].Kind != us[i].Kind || got[i].From != us[i].From || got[i].To != us[i].To ||
			got[i].Node != us[i].Node || got[i].Bound != us[i].Bound || len(got[i].Labels) != len(us[i].Labels) {
			t.Fatalf("update %d: %+v != %+v", i, got[i], us[i])
		}
	}
	if _, err := (Update{Op: "??"}).Decode(); err == nil {
		t.Fatal("unknown op must error")
	}
}

// TestLegacyAliases drives the pre-versioning routes end to end — the
// old cmd/gpnm-serve suite, kept green against the aliases.
func TestLegacyAliases(t *testing.T) {
	ts := testServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health HealthBody
	mustJSON(t, resp, http.StatusOK, &health)
	if !health.OK || health.Nodes != 3 {
		t.Fatalf("health = %+v", health)
	}

	var reg ResultBody
	mustJSON(t, post(t, ts.URL+"/patterns", RegisterRequest{
		Pattern: "node pm PM\nnode se SE\nedge pm se 2\n",
	}), http.StatusOK, &reg)
	if reg.ID == 0 || !reg.Total || len(reg.Nodes) != 2 {
		t.Fatalf("register = %+v", reg)
	}
	if reg.Nodes[0].Name != "pm" || len(reg.Nodes[0].Matches) != 1 || reg.Nodes[0].Matches[0] != 0 {
		t.Fatalf("initial pm result = %+v", reg.Nodes[0])
	}

	// Script-based apply, the legacy codec.
	var applied ApplyResponse
	mustJSON(t, post(t, ts.URL+"/apply", LegacyApplyRequest{Data: "+e 2 1\n"}), http.StatusOK, &applied)
	if applied.Seq != 1 || len(applied.Deltas) != 1 {
		t.Fatalf("apply = %+v", applied)
	}
	d := applied.Deltas[0]
	if d.Pattern != reg.ID || len(d.Nodes) != 1 || len(d.Nodes[0].Added) != 1 || d.Nodes[0].Added[0] != 2 {
		t.Fatalf("delta = %+v", d)
	}

	var res ResultBody
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &res)
	if len(res.Nodes[0].Matches) != 2 {
		t.Fatalf("result after apply = %+v", res.Nodes[0])
	}

	var polled DeltasResponse
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d/deltas?since=0&timeout=1s", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	mustJSON(t, resp, http.StatusOK, &polled)
	if polled.Seq != 1 || len(polled.Deltas) != 1 {
		t.Fatalf("poll = %+v", polled)
	}

	// Disconnect the second PM again, then relax the pattern edge
	// through a legacy pattern-side script: the relaxation re-admits it.
	mustJSON(t, post(t, ts.URL+"/apply", LegacyApplyRequest{Data: "-e 2 1\n"}), http.StatusOK, &applied)
	mustJSON(t, post(t, ts.URL+"/apply", LegacyApplyRequest{
		Patterns: map[string]string{fmt.Sprint(reg.ID): "-pe 0 1\n"},
	}), http.StatusOK, &applied)
	if len(applied.Deltas[0].Nodes) == 0 {
		t.Fatalf("pattern relaxation produced no delta: %+v", applied)
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var okBody UnregisterResponse
	mustJSON(t, resp, http.StatusOK, &okBody)
	resp, err = http.Get(fmt.Sprintf("%s/patterns/%d", ts.URL, reg.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fetch after unregister: status %d", resp.StatusCode)
	}
}

// TestValidationCodes pins status + machine-readable code per failure,
// on both the v1 and legacy route families.
func TestValidationCodes(t *testing.T) {
	ts := testServer(t)

	for _, tc := range []struct {
		name   string
		do     func() *http.Response
		status int
		code   string
	}{
		{"bad pattern DSL", func() *http.Response {
			return post(t, ts.URL+"/v1/patterns", RegisterRequest{Pattern: "nope"})
		}, http.StatusBadRequest, CodeBadPattern},
		{"empty pattern", func() *http.Response {
			return post(t, ts.URL+"/v1/patterns", RegisterRequest{Pattern: "# nothing\n"})
		}, http.StatusBadRequest, CodeBadPattern},
		{"pattern update on data side (typed)", func() *http.Response {
			return post(t, ts.URL+"/v1/apply", ApplyRequest{Updates: []Update{{Op: "+pe", From: 0, To: 1, Bound: "2"}}})
		}, http.StatusBadRequest, CodeBadBatch},
		{"pattern update on data side (legacy script)", func() *http.Response {
			return post(t, ts.URL+"/apply", LegacyApplyRequest{Data: "+pe 0 1 2\n"})
		}, http.StatusBadRequest, CodeBadBatch},
		{"unknown update op", func() *http.Response {
			return post(t, ts.URL+"/v1/apply", ApplyRequest{Updates: []Update{{Op: "+x"}}})
		}, http.StatusBadRequest, CodeBadBatch},
		{"unknown pattern in apply", func() *http.Response {
			return post(t, ts.URL+"/v1/apply", ApplyRequest{Patterns: map[string][]Update{"99": {{Op: "-pe", From: 0, To: 1}}}})
		}, http.StatusNotFound, CodeUnknownPattern},
		{"unknown pattern result", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/patterns/99")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound, CodeUnknownPattern},
		{"unknown pattern snapshot", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/patterns/99/snapshot")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusNotFound, CodeUnknownPattern},
		{"bad id", func() *http.Response {
			resp, err := http.Get(ts.URL + "/v1/patterns/xyz")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest, CodeBadRequest},
		{"bad id legacy", func() *http.Response {
			resp, err := http.Get(ts.URL + "/patterns/xyz")
			if err != nil {
				t.Fatal(err)
			}
			return resp
		}, http.StatusBadRequest, CodeBadRequest},
	} {
		resp := tc.do()
		var e ErrorBody
		mustJSON(t, resp, tc.status, &e)
		if e.Code != tc.code {
			t.Fatalf("%s: code %q, want %q", tc.name, e.Code, tc.code)
		}
		if e.Error == "" {
			t.Fatalf("%s: empty error message", tc.name)
		}
	}
}

// TestErrorCodeSentinels pins the wire-code → sentinel mapping the
// client SDK's errors.Is contract depends on.
func TestErrorCodeSentinels(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{CodeUnknownPattern, hub.ErrUnknownPattern},
		{CodeSubstrateLost, shard.ErrSubstrateLost},
		{CodeSubstrateRecovering, ErrSubstrateRecovering},
	}
	for _, tc := range cases {
		err := &Error{Status: 503, Code: tc.code, Message: "x"}
		if !errors.Is(err, tc.want) {
			t.Fatalf("code %q does not unwrap to its sentinel", tc.code)
		}
	}
	if err := (&Error{Status: 400, Code: CodeBadBatch, Message: "x"}); errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatal("bad_batch must not unwrap to a substrate sentinel")
	}
}
