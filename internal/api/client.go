package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/simulation"
)

// Error is a non-2xx answer from the server, decoded from the uniform
// error envelope. Unwrap maps the machine-readable code back onto the
// sentinel errors, so errors.Is(err, hub.ErrUnknownPattern) and
// errors.Is(err, shard.ErrSubstrateLost) work on the remote client
// exactly as they do on the in-process hub.
type Error struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's Retry-After hint parsed from the
	// response (0 = retry immediately); negative when the header was
	// absent. The recovering refusal carries it — the hub is repairing
	// a lost shard and expects to serve again shortly.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %s (HTTP %d, %s)", e.Message, e.Status, e.Code)
	}
	return fmt.Sprintf("api: %s (HTTP %d)", e.Message, e.Status)
}

// Unwrap surfaces the sentinel matching the wire code.
func (e *Error) Unwrap() error {
	switch e.Code {
	case CodeUnknownPattern:
		return hub.ErrUnknownPattern
	case CodeSubstrateLost:
		return shard.ErrSubstrateLost
	case CodeSubstrateRecovering:
		return ErrSubstrateRecovering
	}
	return nil
}

// Client speaks the /v1 protocol to a remote hub. It mirrors the hub's
// Service surface with the same internal types, so the public wrapper
// (uagpnm.Dial) is a pure re-export. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// pollChunk bounds the server-side wait of one long-poll round;
	// WaitDeltas loops rounds until its context expires.
	pollChunk time.Duration
}

// Dial returns a client for the hub server at addr ("host:port" or a
// full http:// URL) after verifying it answers /v1/healthz. A server
// that reports a lost substrate fails the dial — it is draining and
// will never answer a query again.
func Dial(ctx context.Context, addr string) (*Client, error) {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	c := &Client{base: base, hc: &http.Client{}, pollChunk: 30 * time.Second}
	pingCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	var health HealthBody
	if err := c.do(pingCtx, http.MethodGet, "/v1/healthz", nil, &health); err != nil {
		return nil, fmt.Errorf("dial %s: %w", addr, err)
	}
	return c, nil
}

// Addr returns the server's base URL.
func (c *Client) Addr() string { return c.base }

// maxRecoveringRetries bounds how many substrate_recovering refusals
// one call waits out before surfacing the error. A shard repair takes
// about one mirror-replay, so a handful of honored Retry-After waits
// covers it; a hub still recovering after that is the caller's problem.
const maxRecoveringRetries = 3

// do runs the JSON round trip, honoring the server's Retry-After on
// substrate_recovering refusals: the hub refuses those before touching
// anything (the repair guards the mutation path), so unlike transport
// errors a recovering 503 is provably side-effect free and safe to
// retry. Bounded by maxRecoveringRetries; opted out of by a context
// deadline too close to survive the advertised wait — a caller that
// wants to fail fast mid-repair sets a deadline, one that wants to
// ride it out doesn't. All other failures keep the one-attempt
// contract: non-2xx answers decode into *Error (codes mapped to
// sentinels) and transport failures return as-is, because an apply
// whose response was lost may have committed and must not be re-sent.
func (c *Client) do(ctx context.Context, method, path string, in, out interface{}) error {
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, in, out)
		if err == nil || attempt >= maxRecoveringRetries {
			return err
		}
		ae, ok := err.(*Error)
		if !ok || ae.Code != CodeSubstrateRecovering {
			return err
		}
		wait := ae.RetryAfter
		if wait < 0 {
			wait = time.Second // header absent: the repair's typical scale
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= wait {
			return err // the deadline opts out: it cannot survive the wait
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return err
		}
	}
}

// doOnce is one JSON request/response round trip, no retry policy.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out interface{}) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("api: %s %s: reading response: %w", method, path, err)
	}
	if resp.StatusCode/100 != 2 {
		retryAfter := time.Duration(-1)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		var eb ErrorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return &Error{Status: resp.StatusCode, Code: eb.Code, Message: eb.Error, RetryAfter: retryAfter}
		}
		return &Error{Status: resp.StatusCode, Message: strings.TrimSpace(string(data)), RetryAfter: retryAfter}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("api: %s %s: decoding response: %w", method, path, err)
		}
	}
	return nil
}

// Register registers p as a standing query on the remote hub and
// returns its id. The pattern travels in the typed wire form, so
// duplicate display names and tombstoned ids survive; the caller keeps
// ownership of p (unlike the in-process hub, which takes it over).
func (c *Client) Register(ctx context.Context, p *pattern.Graph) (hub.PatternID, error) {
	var res ResultBody
	body := EncodePattern(p)
	if err := c.do(ctx, http.MethodPost, "/v1/patterns", RegisterRequest{Graph: &body}, &res); err != nil {
		return 0, err
	}
	return hub.PatternID(res.ID), nil
}

// Unregister removes a standing query.
func (c *Client) Unregister(ctx context.Context, id hub.PatternID) error {
	return c.do(ctx, http.MethodDelete, c.patternPath(id, ""), nil, &UnregisterResponse{})
}

func (c *Client) patternPath(id hub.PatternID, suffix string) string {
	return "/v1/patterns/" + strconv.FormatUint(uint64(id), 10) + suffix
}

// ApplyBatch applies one typed update batch and returns the per-pattern
// deltas plus the batch's shared-work stats, exactly as the in-process
// hub would. Do not blind-retry on transport errors: the batch may have
// applied before the response was lost, and re-applying it would
// double-mutate the graph.
func (c *Client) ApplyBatch(ctx context.Context, b hub.Batch) ([]hub.Delta, hub.BatchStats, error) {
	req := ApplyRequest{Updates: EncodeUpdates(b.D)}
	if len(b.P) > 0 {
		req.Patterns = make(map[string][]Update, len(b.P))
		for id, us := range b.P {
			req.Patterns[strconv.FormatUint(uint64(id), 10)] = EncodeUpdates(us)
		}
	}
	var resp ApplyResponse
	if err := c.do(ctx, http.MethodPost, "/v1/apply", req, &resp); err != nil {
		return nil, hub.BatchStats{}, err
	}
	deltas := make([]hub.Delta, len(resp.Deltas))
	for i, d := range resp.Deltas {
		deltas[i] = d.Decode()
	}
	return deltas, resp.Stats.Decode(), nil
}

// Result returns the (BGS-projected) node matching result for pattern
// node u of standing query id. Each call fetches the query's full
// result body; callers reading many nodes of one pattern should take
// one Snapshot and index the match locally instead of looping Result.
func (c *Client) Result(ctx context.Context, id hub.PatternID, u pattern.NodeID) (nodeset.Set, error) {
	var res ResultBody
	if err := c.do(ctx, http.MethodGet, c.patternPath(id, ""), nil, &res); err != nil {
		return nil, err
	}
	for _, n := range res.Nodes {
		if n.Node == u {
			return nodeset.Set(n.Matches), nil
		}
	}
	return nil, nil // unknown/dead pattern node: empty, like Match.Nodes
}

// Snapshot returns a mutually consistent (pattern, match, seq) view of
// one standing query, reconstructed from one wire round trip. The
// pattern is materialised against a fresh label table (label names are
// preserved; ids are client-local) and the match carries the raw
// simulation images, so Total/Nodes behave exactly as on the hub.
func (c *Client) Snapshot(ctx context.Context, id hub.PatternID) (*pattern.Graph, *simulation.Match, uint64, error) {
	var snap SnapshotBody
	if err := c.do(ctx, http.MethodGet, c.patternPath(id, "/snapshot"), nil, &snap); err != nil {
		return nil, nil, 0, err
	}
	p, err := snap.Pattern.Materialise(graph.NewLabels())
	if err != nil {
		return nil, nil, 0, fmt.Errorf("api: snapshot pattern: %w", err)
	}
	sims := make(map[pattern.NodeID]nodeset.Set, len(snap.Nodes))
	for _, n := range snap.Nodes {
		sims[n.Node] = nodeset.Set(n.Sim)
	}
	m := simulation.MatchFromSets(p, func(u pattern.NodeID) nodeset.Set { return sims[u] })
	return p, m, snap.Seq, nil
}

// WaitDeltas long-polls standing query id for deltas with Seq > since,
// blocking until at least one exists, ctx expires (returning ctx's
// error), or the query is unregistered (ErrUnknownPattern). resync
// reports that the subscriber is further behind than the server's
// bounded history reaches and must refetch the full result. The wait is
// implemented as repeated bounded server polls, so it survives
// intermediaries that cap request durations.
func (c *Client) WaitDeltas(ctx context.Context, id hub.PatternID, since uint64) ([]hub.Delta, bool, error) {
	for {
		chunk := c.pollChunk
		if dl, ok := ctx.Deadline(); ok {
			if rem := time.Until(dl); rem < chunk {
				chunk = rem
			}
		}
		if chunk <= 0 {
			return nil, false, ctx.Err()
		}
		// Clamp after rounding: a sub-0.5ms remainder would round to the
		// "0s" the server rejects, masking a plain deadline as a 400.
		chunk = chunk.Round(time.Millisecond)
		if chunk < time.Millisecond {
			chunk = time.Millisecond
		}
		path := c.patternPath(id, "/deltas") +
			"?since=" + strconv.FormatUint(since, 10) +
			"&timeout=" + chunk.String()
		var resp DeltasResponse
		if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
			return nil, false, err
		}
		if resp.Resync {
			return nil, true, nil
		}
		if len(resp.Deltas) > 0 {
			deltas := make([]hub.Delta, len(resp.Deltas))
			for i, d := range resp.Deltas {
				deltas[i] = d.Decode()
			}
			return deltas, false, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
	}
}

// Stats returns the per-pattern pass statistics of standing query id's
// last amendment (all zero before the first batch after registration).
func (c *Client) Stats(ctx context.Context, id hub.PatternID) (core.QueryStats, error) {
	var body QueryStatsBody
	if err := c.do(ctx, http.MethodGet, c.patternPath(id, "/stats"), nil, &body); err != nil {
		return core.QueryStats{}, err
	}
	return body.Decode(), nil
}

// Traces returns the server's retained per-batch phase traces, oldest
// first; n > 0 caps the result to the most recent n.
func (c *Client) Traces(ctx context.Context, n int) ([]obs.Trace, error) {
	path := "/v1/trace"
	if n > 0 {
		path += "?n=" + strconv.Itoa(n)
	}
	var resp TracesResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// LastTrace returns the phase trace of the server's most recent batch
// (ok=false before the first batch).
func (c *Client) LastTrace(ctx context.Context) (obs.Trace, bool, error) {
	traces, err := c.Traces(ctx, 1)
	if err != nil || len(traces) == 0 {
		return obs.Trace{}, false, err
	}
	return traces[len(traces)-1], true, nil
}

// Close releases idle connections; the server is unaffected.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}
