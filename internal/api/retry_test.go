package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uagpnm/internal/hub"
)

// recoveringStub simulates a hub mid-shard-repair: /v1/apply answers
// the recovering refusal (503 + Retry-After, refused before any
// mutation — exactly what internal/api.Server emits while
// hub.Status() reports recovering) for the first `refusals` calls,
// then succeeds. The real recovery window is exercised end to end by
// the failover suites; this stub pins the client's side of the
// contract deterministically.
func recoveringStub(t *testing.T, refusals int32, retryAfter string) (*httptest.Server, *int32) {
	t.Helper()
	var applies int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(HealthBody{OK: true})
	})
	mux.HandleFunc("/v1/apply", func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&applies, 1) <= refusals {
			w.Header().Set("Retry-After", retryAfter)
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorBody{
				Error: "substrate recovering: shard repair in flight",
				Code:  CodeSubstrateRecovering,
			})
			return
		}
		json.NewEncoder(w).Encode(ApplyResponse{Seq: 1})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &applies
}

// TestClientRetriesWhileRecovering: a batch applied against a
// recovering hub must wait out the server's Retry-After and succeed
// once the repair lands, instead of surfacing ErrSubstrateRecovering
// on the first refusal (the pre-fix behaviour dropped the header on
// the floor).
func TestClientRetriesWhileRecovering(t *testing.T) {
	ts, applies := recoveringStub(t, 2, "0")
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.ApplyBatch(context.Background(), hub.Batch{}); err != nil {
		t.Fatalf("apply against a recovering hub: %v, want success after retries", err)
	}
	if got := atomic.LoadInt32(applies); got != 3 {
		t.Fatalf("server saw %d applies, want 3 (2 refusals + 1 success)", got)
	}
}

// TestClientRetryBounded: a hub that never finishes recovering must
// not be retried forever — after maxRecoveringRetries honored waits
// the refusal surfaces, still mapped to the sentinel.
func TestClientRetryBounded(t *testing.T) {
	ts, applies := recoveringStub(t, 1<<30, "0")
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = c.ApplyBatch(context.Background(), hub.Batch{})
	if !errors.Is(err, ErrSubstrateRecovering) {
		t.Fatalf("err = %v, want ErrSubstrateRecovering", err)
	}
	var ae *Error
	if !errors.As(err, &ae) || ae.RetryAfter != 0 {
		t.Fatalf("err = %#v, want *Error carrying RetryAfter=0s", err)
	}
	if got := atomic.LoadInt32(applies); got != maxRecoveringRetries+1 {
		t.Fatalf("server saw %d applies, want %d", got, maxRecoveringRetries+1)
	}
}

// TestClientRetryDeadlineOptOut: a context deadline shorter than the
// advertised Retry-After opts out of waiting — the refusal surfaces
// immediately, without burning the deadline sleeping on a wait it
// cannot survive.
func TestClientRetryDeadlineOptOut(t *testing.T) {
	ts, applies := recoveringStub(t, 1<<30, "5")
	c, err := Dial(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = c.ApplyBatch(ctx, hub.Batch{})
	if !errors.Is(err, ErrSubstrateRecovering) {
		t.Fatalf("err = %v, want ErrSubstrateRecovering", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("opt-out took %v, want immediate surface (no 5s sleep)", elapsed)
	}
	if got := atomic.LoadInt32(applies); got != 1 {
		t.Fatalf("server saw %d applies, want exactly 1 (no retry under a tight deadline)", got)
	}
}
