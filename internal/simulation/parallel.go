package simulation

import (
	"sync"
	"sync/atomic"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
	"uagpnm/internal/workpool"
)

// This file parallelizes Amend. Both phases admit it because the result
// is order-independent: the Phase A closure is a reachability fixpoint
// (the same set whatever order frontier nodes expand in), and the
// Phase B removal fixpoint converges to the unique maximum simulation
// from any drain order (the same argument that makes Run ≡ Amend).
// What parallelism must preserve is the cascade invariant: whenever a
// pair is removed, every pair it might have been supporting gets
// rechecked *after* the removal is visible. The striped drain below
// keeps it by making each removal and its cascade pushes a single
// owner-ordered sequence — a recheck either lands in the owner's queue
// behind the removal (channel send → receive is a happens-before edge)
// or dedups against an entry the owner pops later, which is also after.
//
// Phase A stripes the frontier across workpool workers (each expands
// reverse balls against the frozen closure of the round) and merges the
// candidates into a sharded closure — one nodeset.Bits per stripe, each
// merged only by its owning worker, so the merge needs no locks.
//
// Phase B stripes the worklist by data node: worker w owns every pair
// (u,v) with stripeOf(v) == w, so removals of a given bit happen on one
// goroutine only, while reads (support probes, cascade filters) come
// from anywhere — hence the atomic Bits accessors. Cross-stripe
// rechecks travel through bounded channels; a worker blocked on a full
// inbox drains its own in the same select, so full-cycle deadlock
// cannot form. Termination is a global quiescence count: every queued
// or in-flight pair holds one token, and the worker that releases the
// last one closes the done channel.

// AmendN is Amend fanned across up to workers goroutines. workers ≤ 1
// is exactly Amend — the bit-for-bit sequential path the differential
// suite pins the parallel result against.
func AmendN(old *Match, newP *pattern.Graph, g *graph.Graph, o shortest.Oracle, seeds nodeset.Set, workers int) *Match {
	if workers <= 1 {
		return Amend(old, newP, g, o, seeds)
	}
	rebuild, dirtyAll := amendDelta(old.p, newP)
	wanted := labelInterest(newP)
	maxIn := maxInBound(newP, o)

	// Phase A: close seeds under support cascades, round by round. Each
	// round expands the current frontier in parallel against the frozen
	// closure, then merges the collected candidates stripe by stripe;
	// the newly added ones form the next frontier.
	n := g.NumIDs()
	closure := newShardedBits(n, workers)
	var frontier []uint32
	for _, x := range seeds {
		if g.Alive(x) && closure.add(x) {
			frontier = append(frontier, x)
		}
	}
	for u := range rebuild {
		oldSet := old.setOrNil(u)
		for _, v := range g.NodesWithLabel(newP.Label(u)) {
			if (oldSet == nil || !oldSet.Contains(v)) && closure.add(v) {
				frontier = append(frontier, v)
			}
		}
	}
	for maxIn > 0 && len(frontier) > 0 {
		found := make([][]uint32, len(frontier))
		workpool.ForEach(workers, len(frontier), func(i int) {
			var cand []uint32
			o.ReverseBall(frontier[i], maxIn, func(x uint32, _ shortest.Dist) bool {
				if closure.contains(x) {
					return true
				}
				for _, l := range g.NodeLabels(x) {
					if len(wanted[l]) > 0 {
						cand = append(cand, x)
						break
					}
				}
				return true
			})
			found[i] = cand
		})
		next := make([][]uint32, workers)
		workpool.Run(workers, func(s int) {
			var mine []uint32
			for _, cs := range found {
				for _, x := range cs {
					if closure.stripeOf(x) == s && closure.stripes[s].Add(x) {
						mine = append(mine, x)
					}
				}
			}
			next[s] = mine
		})
		frontier = frontier[:0]
		for _, m := range next {
			frontier = append(frontier, m...)
		}
	}

	// Optimistic candidate sets, one independent build per pattern node.
	amended := &Match{p: newP, sets: make([]*nodeset.Bits, newP.NumIDs())}
	var nodes []pattern.NodeID
	newP.Nodes(func(u pattern.NodeID) { nodes = append(nodes, u) })
	workpool.ForEach(workers, len(nodes), func(i int) {
		u := nodes[i]
		bits := nodeset.NewBits(n)
		if rebuild[u] {
			for _, v := range g.NodesWithLabel(newP.Label(u)) {
				bits.Add(v)
			}
		} else {
			if oldSet := old.setOrNil(u); oldSet != nil {
				oldSet.Range(func(v uint32) bool {
					if g.Alive(v) {
						bits.Add(v)
					}
					return true
				})
			}
			for _, v := range g.NodesWithLabel(newP.Label(u)) {
				if closure.contains(v) {
					bits.Add(v)
				}
			}
		}
		amended.sets[u] = bits
	})

	// Phase B: the striped removal fixpoint, seeded with the dirty pairs.
	d := newPDrain(amended, g, o, workers)
	newP.Nodes(func(u pattern.NodeID) {
		set := amended.sets[u]
		if dirtyAll[u] {
			set.Range(func(v uint32) bool {
				d.seed(u, v)
				return true
			})
			return
		}
		set.Range(func(v uint32) bool {
			if closure.contains(v) {
				d.seed(u, v)
			}
			return true
		})
	})
	d.run()
	return amended
}

// shardedBits is a closure split across word-granular stripes so each
// merge worker owns disjoint state. Reads may come from any goroutine
// between merge rounds (the rounds are fork-join fenced).
type shardedBits struct {
	stripes []*nodeset.Bits
}

func newShardedBits(capacity, stripes int) *shardedBits {
	s := &shardedBits{stripes: make([]*nodeset.Bits, stripes)}
	for i := range s.stripes {
		s.stripes[i] = nodeset.NewBits(capacity)
	}
	return s
}

func (s *shardedBits) stripeOf(x uint32) int { return int(x>>6) % len(s.stripes) }

func (s *shardedBits) contains(x uint32) bool { return s.stripes[s.stripeOf(x)].Contains(x) }

func (s *shardedBits) add(x uint32) bool { return s.stripes[s.stripeOf(x)].Add(x) }

// pdrain runs the removal fixpoint across stripe-owned worklists.
type pdrain struct {
	m       *Match
	g       *graph.Graph
	o       shortest.Oracle
	workers int

	queues []pqueue
	inbox  []chan pairItem

	// inflight counts pairs that are queued on some stripe or in
	// transit between stripes; the drain is quiescent exactly when it
	// reaches zero. A worker's cascade pushes increment before its own
	// pair's token releases, so the count cannot dip to zero while work
	// remains.
	inflight  atomic.Int64
	done      chan struct{}
	doneOnce  sync.Once
	abort     chan struct{}
	abortOnce sync.Once
}

// pqueue is one stripe's FIFO with per-pair dedup, owned by one worker.
type pqueue struct {
	queue  []pairItem
	head   int
	queued map[pairItem]bool
}

func (q *pqueue) pop() (pairItem, bool) {
	if q.head >= len(q.queue) {
		return pairItem{}, false
	}
	it := q.queue[q.head]
	q.head++
	if q.head == len(q.queue) {
		q.queue = q.queue[:0]
		q.head = 0
	}
	delete(q.queued, it)
	return it, true
}

const pdrainInboxCap = 256

func newPDrain(m *Match, g *graph.Graph, o shortest.Oracle, workers int) *pdrain {
	d := &pdrain{
		m: m, g: g, o: o, workers: workers,
		queues: make([]pqueue, workers),
		inbox:  make([]chan pairItem, workers),
		done:   make(chan struct{}),
		abort:  make(chan struct{}),
	}
	for i := range d.queues {
		d.queues[i].queued = make(map[pairItem]bool)
	}
	for i := range d.inbox {
		d.inbox[i] = make(chan pairItem, pdrainInboxCap)
	}
	return d
}

func (d *pdrain) stripeOf(v uint32) int { return int(v) % d.workers }

// seed enqueues one pair before the workers start (single-goroutine).
func (d *pdrain) seed(u pattern.NodeID, v uint32) {
	q := &d.queues[d.stripeOf(v)]
	it := pairItem{u, v}
	if q.queued[it] {
		return
	}
	q.queued[it] = true
	q.queue = append(q.queue, it)
	d.inflight.Add(1)
}

// run drains to quiescence and restores every set's population count.
func (d *pdrain) run() {
	if d.inflight.Load() > 0 {
		workpool.Run(d.workers, d.worker)
	}
	for _, set := range d.m.sets {
		if set != nil {
			set.Recount()
		}
	}
}

func (d *pdrain) worker(w int) {
	defer func() {
		if r := recover(); r != nil {
			// Unblock peers parked in selects so the fork-join completes,
			// then let workpool.Run re-raise on the caller (a shard fault
			// unwinding here is what the hub's read failover retries).
			d.abortOnce.Do(func() { close(d.abort) })
			//lint:allow panic re-raise after unblocking peers; workpool.Run re-raises on the fork-join caller
			panic(r)
		}
	}()
	q := &d.queues[w]
	for {
		select {
		case <-d.abort:
			return
		default:
		}
		// Absorb delivered rechecks before popping, keeping senders
		// unblocked and the dedup map fresh.
	drained:
		for {
			select {
			case it := <-d.inbox[w]:
				d.receive(q, it)
			default:
				break drained
			}
		}
		it, ok := q.pop()
		if !ok {
			select {
			case it := <-d.inbox[w]:
				d.receive(q, it)
			case <-d.done:
				return
			case <-d.abort:
				return
			}
			continue
		}
		d.process(w, q, it)
	}
}

// receive accepts a cross-stripe recheck: a duplicate of a queued pair
// releases the sender's token, anything else joins the queue carrying it.
func (d *pdrain) receive(q *pqueue, it pairItem) {
	if q.queued[it] {
		d.release()
		return
	}
	q.queued[it] = true
	q.queue = append(q.queue, it)
}

// process is one sequential-drain step against the shared atomic sets.
func (d *pdrain) process(w int, q *pqueue, it pairItem) {
	defer d.release()
	u, v := it.u, it.v
	set := d.m.sets[u]
	if set == nil || !set.AtomicContains(v) {
		return
	}
	if d.pairSatisfied(u, v) {
		return
	}
	set.AtomicRemove(v)
	d.m.p.In(u, func(uPrev pattern.NodeID, b pattern.Bound) {
		k := effectiveBound(b, d.o)
		prevSet := d.m.sets[uPrev]
		if prevSet == nil {
			return
		}
		d.o.ReverseBall(v, k, func(x uint32, _ shortest.Dist) bool {
			if prevSet.AtomicContains(x) {
				d.push(w, q, uPrev, x)
			}
			return true
		})
	})
}

func (d *pdrain) pairSatisfied(u pattern.NodeID, v uint32) bool {
	satisfied := true
	d.m.p.Out(u, func(uNext pattern.NodeID, b pattern.Bound) {
		if !satisfied {
			return
		}
		cand := d.m.sets[uNext]
		found := false
		d.o.ForwardBall(v, effectiveBound(b, d.o), func(x uint32, _ shortest.Dist) bool {
			if cand.AtomicContains(x) {
				found = true
				return false
			}
			return true
		})
		if !found {
			satisfied = false
		}
	})
	return satisfied
}

// push routes a recheck to its owner: locally with dedup, or through the
// owner's bounded inbox. While waiting for inbox space the sender keeps
// draining its own inbox in the same select, so a ring of full inboxes
// always has a matching send/receive pair and cannot deadlock.
func (d *pdrain) push(w int, q *pqueue, u pattern.NodeID, v uint32) {
	it := pairItem{u, v}
	t := d.stripeOf(v)
	if t == w {
		if q.queued[it] {
			return
		}
		q.queued[it] = true
		q.queue = append(q.queue, it)
		d.inflight.Add(1)
		return
	}
	d.inflight.Add(1)
	for {
		select {
		case d.inbox[t] <- it:
			return
		case in := <-d.inbox[w]:
			d.receive(q, in)
		case <-d.abort:
			return
		}
	}
}

// release returns one quiescence token; the last one ends the drain.
func (d *pdrain) release() {
	if d.inflight.Add(-1) == 0 {
		d.doneOnce.Do(func() { close(d.done) })
	}
}
