// Package simulation implements Bounded Graph Simulation matching — the
// GPNM semantics of the paper (§III): the maximum relation M ⊆ VP×VD in
// which every matched data node carries its pattern node's label and has,
// for each pattern edge (u,u') with bound k, a matched successor within k
// hops ("*" = any finite length). The GPNM result Npi is M's image per
// pattern node; BGS requires every pattern node matched, so if any image
// is empty the reported result is empty everywhere.
//
// Two entry points exist: Run computes M by fixpoint from scratch, and
// Amend repairs an existing M after a batch of pattern/data updates,
// given the set of data nodes whose shortest-path rows changed. Amend is
// the engine room of every incremental solver (INC-, EH- and UA-GPNM);
// its contract — Amend(…) equals Run(…) on the updated graphs — is
// enforced by differential tests.
package simulation

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
)

// Match is the maximum bounded simulation of a pattern in a data graph.
type Match struct {
	p    *pattern.Graph
	sets []*nodeset.Bits // indexed by pattern node id; nil for dead ids
}

// Pattern returns the pattern this match was computed for.
func (m *Match) Pattern() *pattern.Graph { return m.p }

// SimulationSet returns the raw simulation image of pattern node u (the
// maximal relation's column), without the all-nonempty BGS projection.
func (m *Match) SimulationSet(u pattern.NodeID) nodeset.Set {
	if int(u) >= len(m.sets) || m.sets[u] == nil {
		return nil
	}
	return m.sets[u].Set()
}

// Total reports whether every alive pattern node has at least one match —
// the BGS condition for GP ⪯ GD.
func (m *Match) Total() bool {
	total := true
	m.p.Nodes(func(u pattern.NodeID) {
		if m.sets[u] == nil || m.sets[u].Empty() {
			total = false
		}
	})
	return total
}

// Nodes returns the GPNM result Npi for pattern node u: the simulation
// image when the match is total, ∅ otherwise (paper §III-B).
func (m *Match) Nodes(u pattern.NodeID) nodeset.Set {
	if !m.Total() {
		return nil
	}
	return m.SimulationSet(u)
}

// Equal reports whether two matches assign identical simulation sets to
// every alive pattern node (patterns must agree structurally).
func (m *Match) Equal(o *Match) bool {
	equal := true
	m.p.Nodes(func(u pattern.NodeID) {
		a, b := m.SimulationSet(u), o.SimulationSet(u)
		if !a.Equal(b) {
			equal = false
		}
	})
	return equal
}

// MatchFromSets reconstructs a match over p from raw per-node
// simulation images (SimulationSet values, pre-BGS projection) — the
// wire-decoding path of the remote client (internal/api). sets is
// consulted once per alive pattern node; the returned match owns
// private bitsets, so the slices handed back by sets are not retained.
func MatchFromSets(p *pattern.Graph, sets func(u pattern.NodeID) nodeset.Set) *Match {
	m := &Match{p: p, sets: make([]*nodeset.Bits, p.NumIDs())}
	p.Nodes(func(u pattern.NodeID) {
		b := nodeset.NewBits(0)
		for _, id := range sets(u) {
			b.Add(id)
		}
		m.sets[u] = b
	})
	return m
}

// Clone returns an independent deep copy bound to the given pattern
// (pass the same pattern, or its clone).
func (m *Match) Clone(p *pattern.Graph) *Match {
	c := &Match{p: p, sets: make([]*nodeset.Bits, len(m.sets))}
	for i, b := range m.sets {
		if b != nil {
			c.sets[i] = b.Clone()
		}
	}
	return c
}

// effectiveBound converts a pattern bound to a hop count usable with the
// oracle: "*" becomes the horizon for capped oracles (documented
// approximation) or an unbounded sentinel for exact ones.
func effectiveBound(b pattern.Bound, o shortest.Oracle) int {
	if !b.IsStar() {
		return int(b)
	}
	if o.Exact() {
		return int(shortest.Inf) - 1
	}
	return o.Horizon()
}

// hasSupport reports whether v has a successor in cand within k hops.
func hasSupport(o shortest.Oracle, v uint32, k int, cand *nodeset.Bits) bool {
	found := false
	o.ForwardBall(v, k, func(w uint32, _ shortest.Dist) bool {
		if cand.Contains(w) {
			found = true
			return false
		}
		return true
	})
	return found
}

// Run computes the maximum bounded simulation of p in g from scratch.
func Run(p *pattern.Graph, g *graph.Graph, o shortest.Oracle) *Match {
	m := &Match{p: p, sets: make([]*nodeset.Bits, p.NumIDs())}
	n := g.NumIDs()
	p.Nodes(func(u pattern.NodeID) {
		bits := nodeset.NewBits(n)
		for _, v := range g.NodesWithLabel(p.Label(u)) {
			bits.Add(v)
		}
		m.sets[u] = bits
	})
	m.refineAll(g, o)
	return m
}

// refineAll runs the removal fixpoint over every pair until stable.
func (m *Match) refineAll(g *graph.Graph, o shortest.Oracle) {
	w := newWorklist()
	m.p.Nodes(func(u pattern.NodeID) {
		m.sets[u].Range(func(v uint32) bool {
			w.push(u, v)
			return true
		})
	})
	m.drain(w, g, o)
}

// drain pops pairs, removes failing ones, and cascades rechecks along
// reverse pattern edges using reverse distance balls.
func (m *Match) drain(w *worklist, g *graph.Graph, o shortest.Oracle) {
	for {
		u, v, ok := w.pop()
		if !ok {
			return
		}
		set := m.sets[u]
		if set == nil || !set.Contains(v) {
			continue
		}
		if m.pairSatisfied(u, v, o) {
			continue
		}
		set.Remove(v)
		// v's removal may strip the support of predecessors within their
		// bounds: recheck every candidate of an in-neighbour pattern node
		// that could reach v.
		m.p.In(u, func(uPrev pattern.NodeID, b pattern.Bound) {
			k := effectiveBound(b, o)
			prevSet := m.sets[uPrev]
			if prevSet == nil {
				return
			}
			o.ReverseBall(v, k, func(x uint32, _ shortest.Dist) bool {
				if prevSet.Contains(x) {
					w.push(uPrev, x)
				}
				return true
			})
		})
	}
}

// pairSatisfied verifies every out-edge constraint of u for data node v.
func (m *Match) pairSatisfied(u pattern.NodeID, v uint32, o shortest.Oracle) bool {
	satisfied := true
	m.p.Out(u, func(uNext pattern.NodeID, b pattern.Bound) {
		if !satisfied {
			return
		}
		if !hasSupport(o, v, effectiveBound(b, o), m.sets[uNext]) {
			satisfied = false
		}
	})
	return satisfied
}

// worklist is a FIFO of (pattern node, data node) pairs with per-pair
// dedup while enqueued.
type worklist struct {
	queue  []pairItem
	head   int
	queued map[pairItem]bool
}

type pairItem struct {
	u pattern.NodeID
	v uint32
}

func newWorklist() *worklist {
	return &worklist{queued: make(map[pairItem]bool)}
}

func (w *worklist) push(u pattern.NodeID, v uint32) {
	it := pairItem{u, v}
	if w.queued[it] {
		return
	}
	w.queued[it] = true
	w.queue = append(w.queue, it)
}

func (w *worklist) pop() (pattern.NodeID, uint32, bool) {
	if w.head >= len(w.queue) {
		return 0, 0, false
	}
	it := w.queue[w.head]
	w.head++
	if w.head == len(w.queue) {
		w.queue = w.queue[:0]
		w.head = 0
	}
	delete(w.queued, it)
	return it.u, it.v, true
}
