package simulation

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
)

// PatternDelta classifies the difference between the pattern a match was
// computed for and the pattern it must be amended to. Pattern node ids
// are stable across updates, so the diff is positional.
type PatternDelta struct {
	AddedNodes   []pattern.NodeID
	RemovedNodes []pattern.NodeID
	// Relaxed lists pattern nodes whose constraints weakened (an out-edge
	// removed or its bound increased): data nodes previously excluded may
	// now match, so the node needs a full candidate rebuild.
	Relaxed []pattern.NodeID
	// Restricted lists pattern nodes whose constraints tightened (an
	// out-edge added or its bound decreased): current matches need
	// rechecking, but no new node can appear on this account.
	Restricted []pattern.NodeID
}

// DiffPatterns computes the delta from oldP to newP.
func DiffPatterns(oldP, newP *pattern.Graph) PatternDelta {
	var d PatternDelta
	maxIDs := oldP.NumIDs()
	if newP.NumIDs() > maxIDs {
		maxIDs = newP.NumIDs()
	}
	for id := 0; id < maxIDs; id++ {
		u := pattern.NodeID(id)
		switch {
		case !oldP.Alive(u) && newP.Alive(u):
			d.AddedNodes = append(d.AddedNodes, u)
		case oldP.Alive(u) && !newP.Alive(u):
			d.RemovedNodes = append(d.RemovedNodes, u)
		}
	}
	relaxed := map[pattern.NodeID]bool{}
	restricted := map[pattern.NodeID]bool{}
	oldP.Edges(func(e pattern.Edge) {
		if !newP.Alive(e.From) {
			return // the whole source died; nothing to amend for it
		}
		nb, ok := newP.EdgeBound(e.From, e.To)
		switch {
		case !ok || !newP.Alive(e.To):
			relaxed[e.From] = true // out-edge gone
		case nb != e.B:
			if boundLooser(nb, e.B) {
				relaxed[e.From] = true
			} else {
				restricted[e.From] = true
			}
		}
	})
	newP.Edges(func(e pattern.Edge) {
		if !oldP.Alive(e.From) {
			return // new node: handled via AddedNodes
		}
		if _, ok := oldP.EdgeBound(e.From, e.To); !ok || !oldP.Alive(e.To) {
			restricted[e.From] = true // out-edge appeared
		}
	})
	for u := range relaxed {
		d.Relaxed = append(d.Relaxed, u)
	}
	for u := range restricted {
		d.Restricted = append(d.Restricted, u)
	}
	return d
}

// boundLooser reports whether bound a admits more pairs than bound b.
func boundLooser(a, b pattern.Bound) bool {
	if a.IsStar() {
		return !b.IsStar()
	}
	if b.IsStar() {
		return false
	}
	return a > b
}

// amendDelta classifies the pattern diff into the node sets Amend's
// phases consume: rebuild (added or relaxed — full candidate rebuild)
// and dirtyAll (rebuild plus restricted — every candidate re-enqueued).
func amendDelta(oldP, newP *pattern.Graph) (rebuild, dirtyAll map[pattern.NodeID]bool) {
	delta := DiffPatterns(oldP, newP)
	rebuild = make(map[pattern.NodeID]bool)
	for _, u := range delta.AddedNodes {
		rebuild[u] = true
	}
	for _, u := range delta.Relaxed {
		rebuild[u] = true
	}
	dirtyAll = make(map[pattern.NodeID]bool, len(rebuild))
	for u := range rebuild {
		dirtyAll[u] = true
	}
	for _, u := range delta.Restricted {
		dirtyAll[u] = true
	}
	return rebuild, dirtyAll
}

// labelInterest maps each label to the pattern nodes carrying it — the
// cascade's filter for which data nodes can matter at all.
func labelInterest(newP *pattern.Graph) map[graph.LabelID][]pattern.NodeID {
	wanted := make(map[graph.LabelID][]pattern.NodeID)
	newP.Nodes(func(u pattern.NodeID) {
		l := newP.Label(u)
		wanted[l] = append(wanted[l], u)
	})
	return wanted
}

// maxInBound is the widest effective in-bound of any pattern edge — the
// cascade radius of Phase A.
func maxInBound(newP *pattern.Graph, o shortest.Oracle) int {
	maxIn := 0
	newP.Nodes(func(u pattern.NodeID) {
		newP.In(u, func(_ pattern.NodeID, b pattern.Bound) {
			if k := effectiveBound(b, o); k > maxIn {
				maxIn = k
			}
		})
	})
	return maxIn
}

// Amend repairs old — a match of oldP computed before a batch of updates
// — into the match of newP over the updated graph g and oracle o. seeds
// must contain every data node whose shortest-path row or column changed
// during the batch (the union of the engine's affected sets); new data
// nodes count as changed.
//
// The two phases implement DESIGN.md §2.5:
//
//   - Phase A closes the seed set under support cascades (a node within a
//     pattern bound of a potential newcomer may itself become admissible)
//     and builds optimistic candidate sets: old matches plus seeded label
//     candidates, with fully rebuilt sets for relaxed or new pattern
//     nodes.
//   - Phase B runs the removal fixpoint over the optimistic sets,
//     starting from the dirty pairs only; unchanged old pairs are
//     rechecked exactly when one of their supporters falls.
//
// The result equals Run(newP, g, o).
func Amend(old *Match, newP *pattern.Graph, g *graph.Graph, o shortest.Oracle, seeds nodeset.Set) *Match {
	rebuild, dirtyAll := amendDelta(old.p, newP)

	// Phase A: close seeds under support cascades. A node x becomes a
	// potential newcomer when it lies within some in-bound of an existing
	// potential newcomer y and carries a matching label. Newcomers from
	// rebuilt pattern nodes participate too (only those not already
	// matched — established matches cascade nothing new).
	n := g.NumIDs()
	closure := nodeset.NewBits(n)
	frontier := make([]uint32, 0, seeds.Len())
	for _, x := range seeds {
		if g.Alive(x) && closure.Add(x) {
			frontier = append(frontier, x)
		}
	}
	for u := range rebuild {
		oldSet := old.setOrNil(u)
		for _, v := range g.NodesWithLabel(newP.Label(u)) {
			if (oldSet == nil || !oldSet.Contains(v)) && closure.Add(v) {
				frontier = append(frontier, v)
			}
		}
	}
	// Label filter for cascade targets: a node is interesting only if some
	// pattern node carries its label.
	wanted := labelInterest(newP)
	maxIn := maxInBound(newP, o)
	for len(frontier) > 0 {
		y := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if maxIn == 0 {
			continue
		}
		o.ReverseBall(y, maxIn, func(x uint32, _ shortest.Dist) bool {
			if closure.Contains(x) {
				return true
			}
			interesting := false
			for _, l := range g.NodeLabels(x) {
				if len(wanted[l]) > 0 {
					interesting = true
					break
				}
			}
			if interesting && closure.Add(x) {
				frontier = append(frontier, x)
			}
			return true
		})
	}

	// Optimistic candidate sets.
	amended := &Match{p: newP, sets: make([]*nodeset.Bits, newP.NumIDs())}
	newP.Nodes(func(u pattern.NodeID) {
		bits := nodeset.NewBits(n)
		if rebuild[u] {
			for _, v := range g.NodesWithLabel(newP.Label(u)) {
				bits.Add(v)
			}
		} else {
			if oldSet := old.setOrNil(u); oldSet != nil {
				oldSet.Range(func(v uint32) bool {
					if g.Alive(v) {
						bits.Add(v)
					}
					return true
				})
			}
			for _, v := range g.NodesWithLabel(newP.Label(u)) {
				if closure.Contains(v) {
					bits.Add(v)
				}
			}
		}
		amended.sets[u] = bits
	})

	// Phase B: seed the worklist with the dirty pairs.
	w := newWorklist()
	newP.Nodes(func(u pattern.NodeID) {
		set := amended.sets[u]
		if dirtyAll[u] {
			set.Range(func(v uint32) bool {
				w.push(u, v)
				return true
			})
			return
		}
		set.Range(func(v uint32) bool {
			if closure.Contains(v) {
				w.push(u, v)
			}
			return true
		})
	})
	amended.drain(w, g, o)
	return amended
}

func (m *Match) setOrNil(u pattern.NodeID) *nodeset.Bits {
	if int(u) >= len(m.sets) {
		return nil
	}
	return m.sets[u]
}
