package simulation

import (
	"fmt"
	"strings"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
)

// NodeDelta is the change of one pattern node's GPNM result between two
// subsequent queries: the data nodes that entered (Added) and left
// (Removed) the node matching result Npi.
type NodeDelta struct {
	Node    pattern.NodeID
	Added   nodeset.Set
	Removed nodeset.Set
}

// String renders the delta compactly, e.g. "u2 +{3 7} -{1}".
func (d NodeDelta) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "u%d", d.Node)
	if len(d.Added) > 0 {
		fmt.Fprintf(&sb, " +%v", d.Added)
	}
	if len(d.Removed) > 0 {
		fmt.Fprintf(&sb, " -%v", d.Removed)
	}
	return sb.String()
}

// Delta extracts the subscriber-visible change between two matches of
// the same evolving query: per pattern node, the ids added to and
// removed from the GPNM result Npi (the BGS-projected view — a match
// with any empty image projects to ∅ everywhere, §III-B, so a query
// crossing the total/non-total boundary reports the whole result as
// added or removed). Pattern node ids are stable across updates, so
// nodes present in only one of the two patterns contribute pure
// additions or removals. The returned sets are freshly allocated and
// never alias either match.
func Delta(old, cur *Match) []NodeDelta {
	maxIDs := 0
	if old != nil {
		maxIDs = len(old.sets)
	}
	if cur != nil && len(cur.sets) > maxIDs {
		maxIDs = len(cur.sets)
	}
	oldTotal := old != nil && old.Total()
	curTotal := cur != nil && cur.Total()
	var out []NodeDelta
	for id := 0; id < maxIDs; id++ {
		u := pattern.NodeID(id)
		var ob, cb *nodeset.Bits
		if oldTotal {
			ob = old.setOrNil(u)
		}
		if curTotal {
			cb = cur.setOrNil(u)
		}
		added := cb.DiffSet(ob)
		removed := ob.DiffSet(cb)
		if len(added) > 0 || len(removed) > 0 {
			out = append(out, NodeDelta{Node: u, Added: added, Removed: removed})
		}
	}
	return out
}
