package simulation

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/paperex"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// TestPaperTableI reproduces the node matching results of Example 1
// (paper Table I, with Example 5's correction that both PMs match: PM2
// satisfies PM→SE(3) via SE1 at distance 1 and PM→S(4) via S1 at 2).
func TestPaperTableI(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	if !m.Total() {
		t.Fatal("the paper's example must be a total match")
	}
	want := map[string]nodeset.Set{
		"PM": nodeset.New(ids["PM1"], ids["PM2"]),
		"SE": nodeset.New(ids["SE1"], ids["SE2"]),
		"S":  nodeset.New(ids["S1"]),
		"TE": nodeset.New(ids["TE1"], ids["TE2"]),
	}
	for name, wantSet := range want {
		if got := m.Nodes(pids[name]); !got.Equal(wantSet) {
			t.Errorf("N(%s) = %v, want %v", name, got, wantSet)
		}
	}
}

// TestPaperExample2EndState replays all four updates of Fig. 2 and
// checks the match against a scratch recomputation — the updates-aware
// result the paper's UA-GPNM must deliver.
func TestPaperExample2EndState(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	iquery := Run(p, g, e)

	// UD1, UD2 applied to the data graph.
	var seeds nodeset.Builder
	g.AddEdge(ids["SE1"], ids["TE2"])
	seeds.AddAll(e.InsertEdge(ids["SE1"], ids["TE2"]))
	g.AddEdge(ids["DB1"], ids["S1"])
	seeds.AddAll(e.InsertEdge(ids["DB1"], ids["S1"]))

	// UP1, UP2 applied to a clone of the pattern.
	newP := p.Clone()
	newP.AddEdge(pids["PM"], pids["TE"], paperex.UP1Bound)
	newP.AddEdge(pids["S"], pids["TE"], paperex.UP2Bound)

	amended := Amend(iquery, newP, g, e, seeds.Set())
	scratch := Run(newP, g, e)
	if !amended.Equal(scratch) {
		t.Fatal("amended result differs from scratch recomputation")
	}
	// The paper's cross-elimination analysis: UP1 changes nothing because
	// UD1 connects every PM to a TE within 2 — the PM set survives intact.
	if got, want := amended.Nodes(pids["PM"]), nodeset.New(ids["PM1"], ids["PM2"]); !got.Equal(want) {
		t.Errorf("N(PM) after updates = %v, want %v", got, want)
	}
	// UP2 (S→TE within 4) holds: S1 reaches TE2 at distance... via new
	// edges. S keeps matching.
	if got := amended.Nodes(pids["S"]); got.Empty() {
		t.Error("N(S) should stay nonempty after the updates")
	}
}

func TestEmptyMatchProjection(t *testing.T) {
	g := graph.New(nil)
	g.AddNode("A")
	p := pattern.New(g.Labels())
	pa := p.AddNode("A")
	pb := p.AddNode("B") // no B nodes exist in GD
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	if m.Total() {
		t.Fatal("match must not be total when a pattern node has no candidates")
	}
	if m.Nodes(pa) != nil || m.Nodes(pb) != nil {
		t.Fatal("projection must be empty when the match is not total")
	}
	if m.SimulationSet(pa).Empty() {
		t.Fatal("the raw simulation set of A should still hold the A node")
	}
}

func TestConstraintCascade(t *testing.T) {
	// Chain pattern A→B(1)→C(1); data: a1→b1→c1 and a2→b2 (no c).
	g := graph.New(nil)
	a1, b1, c1 := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	a2, b2 := g.AddNode("A"), g.AddNode("B")
	g.AddEdge(a1, b1)
	g.AddEdge(b1, c1)
	g.AddEdge(a2, b2)
	p := pattern.New(g.Labels())
	pa, pb, pc := p.AddNode("A"), p.AddNode("B"), p.AddNode("C")
	p.AddEdge(pa, pb, 1)
	p.AddEdge(pb, pc, 1)
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	// b2 has no C within 1 → removed; a2 loses its only B → removed.
	if got, want := m.Nodes(pa), nodeset.New(a1); !got.Equal(want) {
		t.Fatalf("N(A) = %v, want %v", got, want)
	}
	if got, want := m.Nodes(pb), nodeset.New(b1); !got.Equal(want) {
		t.Fatalf("N(B) = %v, want %v", got, want)
	}
	_ = pc
}

func TestStarBoundUsesReachability(t *testing.T) {
	g := graph.New(nil)
	a, b := g.AddNode("A"), g.AddNode("B")
	mid := g.AddNode("X")
	far := g.AddNode("B")
	g.AddEdge(a, mid)
	g.AddEdge(mid, b)
	_ = far // unreachable B
	p := pattern.New(g.Labels())
	pa, pb := p.AddNode("A"), p.AddNode("B")
	p.AddEdge(pa, pb, pattern.Star)
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	if got, want := m.Nodes(pa), nodeset.New(a); !got.Equal(want) {
		t.Fatalf("N(A) = %v, want %v", got, want)
	}
	if got, want := m.Nodes(pb), nodeset.New(b, far); !got.Equal(want) {
		// far matches B trivially: B has no out-constraints.
		t.Fatalf("N(B) = %v, want %v", got, want)
	}
}

// randomLabeled builds a random graph over the given label set.
func randomLabeled(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return g
}

// randomPattern builds a weakly-connected-ish random pattern.
func randomPattern(rng *rand.Rand, labelTable *graph.Labels, nodes, edges int, labels []string, maxBound int) *pattern.Graph {
	p := pattern.New(labelTable)
	ids := make([]pattern.NodeID, nodes)
	for i := range ids {
		ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < edges; i++ {
		u := ids[rng.Intn(len(ids))]
		v := ids[rng.Intn(len(ids))]
		p.AddEdge(u, v, pattern.Bound(1+rng.Intn(maxBound)))
	}
	return p
}

// TestAmendMatchesScratch is the repository's central differential test:
// for random graphs, patterns and update batches, the incremental
// amendment must equal a scratch recomputation on the updated state.
func TestAmendMatchesScratch(t *testing.T) {
	labels := []string{"A", "B", "C", "D"}
	for _, cfg := range []struct {
		name    string
		horizon int
	}{
		{"exact", 0},
		{"capped3", 3},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < 30; trial++ {
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				g := randomLabeled(rng, 25+rng.Intn(20), 60+rng.Intn(60), labels)
				p := randomPattern(rng, g.Labels(), 3+rng.Intn(4), 4+rng.Intn(4), labels, 3)
				e := shortest.NewEngine(g, cfg.horizon)
				e.Build()
				iquery := Run(p, g, e)

				batch := updates.Generate(updates.Balanced(int64(trial), 4, 12), g, p)
				seeds := updates.ApplyDataBatch(batch.D, g, e)
				newP := p.Clone()
				updates.ApplyPatternBatch(batch.P, newP)
				if h := newP.MaxFiniteBound(); h > 0 {
					e.EnsureHorizon(h)
				}

				amended := Amend(iquery, newP, g, e, seeds)
				scratch := Run(newP, g, e)
				if !amended.Equal(scratch) {
					logDiff(t, amended, scratch, newP)
					t.Fatalf("trial %d (%s): amend != scratch (batch %v | %v)",
						trial, cfg.name, batch.P, batch.D)
				}
			}
		})
	}
}

// TestAmendChain applies several batches in sequence, amending each time,
// to ensure errors do not accumulate.
func TestAmendChain(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(77))
	g := randomLabeled(rng, 30, 90, labels)
	p := randomPattern(rng, g.Labels(), 4, 5, labels, 3)
	e := shortest.NewEngine(g, 3)
	e.Build()
	cur := Run(p, g, e)
	curP := p
	for round := 0; round < 10; round++ {
		batch := updates.Generate(updates.Balanced(int64(round*31), 3, 8), g, curP)
		seeds := updates.ApplyDataBatch(batch.D, g, e)
		newP := curP.Clone()
		updates.ApplyPatternBatch(batch.P, newP)
		if h := newP.MaxFiniteBound(); h > 0 {
			e.EnsureHorizon(h)
		}
		cur = Amend(cur, newP, g, e, seeds)
		curP = newP
		scratch := Run(curP, g, e)
		if !cur.Equal(scratch) {
			t.Fatalf("round %d: chained amend diverged", round)
		}
	}
}

// TestAmendDataOnly exercises the pattern-unchanged path.
func TestAmendDataOnly(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, _ := paperex.PatternFig1(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	iquery := Run(p, g, e)
	g.AddEdge(ids["SE1"], ids["TE2"])
	seeds := e.InsertEdge(ids["SE1"], ids["TE2"])
	amended := Amend(iquery, p, g, e, seeds)
	scratch := Run(p, g, e)
	if !amended.Equal(scratch) {
		t.Fatal("data-only amend != scratch")
	}
}

// TestAmendPatternOnly exercises pure pattern updates (empty seeds).
func TestAmendPatternOnly(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	iquery := Run(p, g, e)
	// Tighten: SE must reach TE within 1 (restriction).
	newP := p.Clone()
	newP.RemoveEdge(pids["SE"], pids["TE"])
	newP.AddEdge(pids["SE"], pids["TE"], 1)
	amended := Amend(iquery, newP, g, e, nil)
	if !amended.Equal(Run(newP, g, e)) {
		t.Fatal("restriction amend != scratch")
	}
	// Relax: drop PM→S entirely.
	p2 := newP.Clone()
	p2.RemoveEdge(pids["PM"], pids["S"])
	amended2 := Amend(amended, p2, g, e, nil)
	if !amended2.Equal(Run(p2, g, e)) {
		t.Fatal("relaxation amend != scratch")
	}
}

func TestDiffPatterns(t *testing.T) {
	p := pattern.New(nil)
	a, b, c := p.AddNode("A"), p.AddNode("B"), p.AddNode("C")
	p.AddEdge(a, b, 2)
	p.AddEdge(b, c, 1)
	q := p.Clone()
	q.RemoveEdge(a, b)  // relax a
	q.AddEdge(a, c, 1)  // restrict a
	q.RemoveEdge(b, c)  // relax b...
	q.AddEdge(b, c, 3)  // ...bound increased 1→3: relax b
	d := q.AddNode("D") // added node
	q.AddEdge(c, d, 1)  // restrict c
	delta := DiffPatterns(p, q)
	if len(delta.AddedNodes) != 1 || delta.AddedNodes[0] != d {
		t.Fatalf("AddedNodes = %v", delta.AddedNodes)
	}
	relax := nodeset.New(uint32(a), uint32(b))
	var gotRelax nodeset.Builder
	for _, u := range delta.Relaxed {
		gotRelax.Add(uint32(u))
	}
	if !gotRelax.Set().Equal(relax) {
		t.Fatalf("Relaxed = %v, want %v", delta.Relaxed, relax)
	}
	var gotRestrict nodeset.Builder
	for _, u := range delta.Restricted {
		gotRestrict.Add(uint32(u))
	}
	if !gotRestrict.Set().Equal(nodeset.New(uint32(a), uint32(c))) {
		t.Fatalf("Restricted = %v", delta.Restricted)
	}
}

func TestBoundLooser(t *testing.T) {
	cases := []struct {
		a, b pattern.Bound
		want bool
	}{
		{3, 2, true}, {2, 3, false}, {2, 2, false},
		{pattern.Star, 5, true}, {5, pattern.Star, false},
		{pattern.Star, pattern.Star, false},
	}
	for _, c := range cases {
		if got := boundLooser(c.a, c.b); got != c.want {
			t.Errorf("boundLooser(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestMatchCloneIndependence(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	c := m.Clone(p)
	c.sets[pids["PM"]].Clear()
	if m.SimulationSet(pids["PM"]).Empty() {
		t.Fatal("clone mutation leaked")
	}
}

func logDiff(t *testing.T, got, want *Match, p *pattern.Graph) {
	t.Helper()
	p.Nodes(func(u pattern.NodeID) {
		a, b := got.SimulationSet(u), want.SimulationSet(u)
		if !a.Equal(b) {
			t.Logf("pattern node %d (%s): got %v, want %v", u, p.Name(u), a, b)
		}
	})
}

func BenchmarkRunScratch(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	labels := []string{"A", "B", "C", "D", "E"}
	g := randomLabeled(rng, 2000, 8000, labels)
	p := randomPattern(rng, g.Labels(), 6, 6, labels, 3)
	e := shortest.NewEngine(g, 3)
	e.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(p, g, e)
	}
}

func BenchmarkAmendSmallBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	labels := []string{"A", "B", "C", "D", "E"}
	g := randomLabeled(rng, 2000, 8000, labels)
	p := randomPattern(rng, g.Labels(), 6, 6, labels, 3)
	e := shortest.NewEngine(g, 3)
	e.Build()
	iquery := Run(p, g, e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g2 := g.Clone()
		e2 := e.Clone(g2)
		batch := updates.Generate(updates.Balanced(int64(i), 2, 10), g2, p)
		b.StartTimer()
		seeds := updates.ApplyDataBatch(batch.D, g2, e2)
		newP := p.Clone()
		updates.ApplyPatternBatch(batch.P, newP)
		Amend(iquery, newP, g2, e2, seeds)
	}
}
