package simulation

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// TestParallelAmendMatchesSequential is the pinning test of the striped
// drain: for random graphs, patterns and update batches, AmendN at every
// worker count must equal the sequential Amend AND a scratch Run on the
// updated state, bit for bit.
func TestParallelAmendMatchesSequential(t *testing.T) {
	labels := []string{"A", "B", "C", "D"}
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			for _, horizon := range []int{0, 3} {
				for trial := 0; trial < 15; trial++ {
					rng := rand.New(rand.NewSource(int64(4000 + 100*horizon + trial)))
					g := randomLabeled(rng, 25+rng.Intn(20), 60+rng.Intn(60), labels)
					p := randomPattern(rng, g.Labels(), 3+rng.Intn(4), 4+rng.Intn(4), labels, 3)
					e := shortest.NewEngine(g, horizon)
					e.Build()
					iquery := Run(p, g, e)

					batch := updates.Generate(updates.Balanced(int64(trial), 4, 12), g, p)
					seeds := updates.ApplyDataBatch(batch.D, g, e)
					newP := p.Clone()
					updates.ApplyPatternBatch(batch.P, newP)
					if h := newP.MaxFiniteBound(); h > 0 {
						e.EnsureHorizon(h)
					}

					par := AmendN(iquery, newP, g, e, seeds, workers)
					seq := Amend(iquery, newP, g, e, seeds)
					if !par.Equal(seq) {
						logDiff(t, par, seq, newP)
						t.Fatalf("trial %d (horizon %d): AmendN(%d) != Amend (batch %v | %v)",
							trial, horizon, workers, batch.P, batch.D)
					}
					if scratch := Run(newP, g, e); !par.Equal(scratch) {
						logDiff(t, par, scratch, newP)
						t.Fatalf("trial %d (horizon %d): AmendN(%d) != Run", trial, horizon, workers)
					}
					// The Len invariant must be restored after the atomic phase.
					checkLenInvariant(t, par)
				}
			}
		})
	}
}

// TestParallelAmendChain amends the parallel result repeatedly — each
// round's AmendN output is the next round's input — so a divergence that
// only manifests when the parallel path consumes its own output (e.g. a
// stale population count) accumulates and trips the scratch comparison.
func TestParallelAmendChain(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(177))
	g := randomLabeled(rng, 30, 80, labels)
	p := randomPattern(rng, g.Labels(), 4, 5, labels, 3)
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := Run(p, g, e)
	for round := 0; round < 8; round++ {
		batch := updates.Generate(updates.Balanced(int64(200+round), 3, 8), g, p)
		seeds := updates.ApplyDataBatch(batch.D, g, e)
		newP := p.Clone()
		updates.ApplyPatternBatch(batch.P, newP)
		m = AmendN(m, newP, g, e, seeds, 4)
		p = newP
		if scratch := Run(p, g, e); !m.Equal(scratch) {
			logDiff(t, m, scratch, p)
			t.Fatalf("round %d: chained AmendN diverged from scratch", round)
		}
		// Len must stay coherent with membership round over round —
		// the chained input feeds Phase A's set iteration.
		checkLenInvariant(t, m)
	}
}

// checkLenInvariant verifies every set's incremental population count
// against an actual membership walk (Recount must have run).
func checkLenInvariant(t *testing.T, m *Match) {
	t.Helper()
	for u, b := range m.sets {
		if b == nil {
			continue
		}
		cnt := 0
		b.Range(func(uint32) bool { cnt++; return true })
		if cnt != b.Len() {
			t.Fatalf("pattern node %d: Len() %d != %d members", u, b.Len(), cnt)
		}
	}
}

// TestParallelAmendStress widens the workload (bigger graphs, denser
// batches, workers beyond GOMAXPROCS) to shake out scheduling-dependent
// races; skipped under -short.
func TestParallelAmendStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress variant skipped in -short mode")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
		runtime.GOMAXPROCS(4)
	}
	labels := []string{"A", "B", "C", "D", "E"}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		g := randomLabeled(rng, 120+rng.Intn(60), 400+rng.Intn(200), labels)
		p := randomPattern(rng, g.Labels(), 4+rng.Intn(4), 6+rng.Intn(5), labels, 3)
		e := shortest.NewEngine(g, 0)
		e.Build()
		iquery := Run(p, g, e)

		batch := updates.Generate(updates.Balanced(int64(50+trial), 10, 30), g, p)
		seeds := updates.ApplyDataBatch(batch.D, g, e)
		newP := p.Clone()
		updates.ApplyPatternBatch(batch.P, newP)
		if h := newP.MaxFiniteBound(); h > 0 {
			e.EnsureHorizon(h)
		}
		par := AmendN(iquery, newP, g, e, seeds, 8)
		if seq := Amend(iquery, newP, g, e, seeds); !par.Equal(seq) {
			logDiff(t, par, seq, newP)
			t.Fatalf("trial %d: stress AmendN(8) != Amend", trial)
		}
	}
}
