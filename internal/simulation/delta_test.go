package simulation

import (
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
)

func buildDeltaFixture() (*graph.Graph, *pattern.Graph, shortest.DistanceEngine) {
	g := graph.New(nil)
	g.AddNode("A") // 0
	g.AddNode("B") // 1
	g.AddNode("A") // 2
	g.AddEdge(0, 1)
	p := pattern.New(g.Labels())
	u0 := p.AddNode("A")
	u1 := p.AddNode("B")
	p.AddEdge(u0, u1, 1)
	e := shortest.NewEngine(g, 3)
	e.Build()
	return g, p, e
}

func TestDeltaAddedRemoved(t *testing.T) {
	g, p, e := buildDeltaFixture()
	before := Run(p, g, e)

	g.AddEdge(2, 1)
	aff := e.InsertEdge(2, 1)
	after := Amend(before, p, g, e, aff)

	ds := Delta(before, after)
	if len(ds) != 1 || ds[0].Node != 0 ||
		!ds[0].Added.Equal(nodeset.New(2)) || len(ds[0].Removed) != 0 {
		t.Fatalf("Delta = %v, want [u0 +{2}]", ds)
	}
	if s := ds[0].String(); s != "u0 +{2}" {
		t.Fatalf("String() = %q", s)
	}

	// Reverse direction: deleting the edge removes the match again.
	g.RemoveEdge(2, 1)
	aff = e.DeleteEdge(2, 1)
	reverted := Amend(after, p, g, e, aff)
	ds = Delta(after, reverted)
	if len(ds) != 1 || !ds[0].Removed.Equal(nodeset.New(2)) || len(ds[0].Added) != 0 {
		t.Fatalf("Delta = %v, want [u0 -{2}]", ds)
	}

	// No change at all → empty delta.
	if ds := Delta(after, after); len(ds) != 0 {
		t.Fatalf("self delta = %v, want empty", ds)
	}
}

// TestDeltaProjection: crossing the total/non-total boundary reports the
// whole visible result as removed (and back as added), per §III-B's BGS
// projection.
func TestDeltaProjection(t *testing.T) {
	g, p, e := buildDeltaFixture()
	total := Run(p, g, e)

	// Deleting the only edge empties u0's image: the match is no longer
	// total, so the projected result collapses to ∅ everywhere.
	g.RemoveEdge(0, 1)
	aff := e.DeleteEdge(0, 1)
	empty := Amend(total, p, g, e, aff)
	ds := Delta(total, empty)
	if len(ds) != 2 {
		t.Fatalf("Delta across totality = %v, want removals for u0 and u1", ds)
	}
	if !ds[0].Removed.Equal(nodeset.New(0)) || !ds[1].Removed.Equal(nodeset.New(1)) {
		t.Fatalf("Delta = %v, want u0 -{0}, u1 -{1}", ds)
	}
	back := Delta(empty, total)
	if len(back) != 2 || !back[0].Added.Equal(nodeset.New(0)) || !back[1].Added.Equal(nodeset.New(1)) {
		t.Fatalf("reverse Delta = %v, want additions", back)
	}
}

func TestBitsDiffSet(t *testing.T) {
	a := nodeset.NewBits(128)
	b := nodeset.NewBits(128)
	for _, id := range []uint32{1, 64, 65, 100} {
		a.Add(id)
	}
	for _, id := range []uint32{64, 100, 127} {
		b.Add(id)
	}
	if got := a.DiffSet(b); !got.Equal(nodeset.New(1, 65)) {
		t.Fatalf("a\\b = %v", got)
	}
	if got := b.DiffSet(a); !got.Equal(nodeset.New(127)) {
		t.Fatalf("b\\a = %v", got)
	}
	if got := a.DiffSet(nil); !got.Equal(nodeset.New(1, 64, 65, 100)) {
		t.Fatalf("a\\nil = %v", got)
	}
	var nilBits *nodeset.Bits
	if got := nilBits.DiffSet(a); got != nil {
		t.Fatalf("nil\\a = %v", got)
	}
	// Capacity mismatch: ids beyond o's words are kept.
	small := nodeset.NewBits(8)
	small.Add(1)
	if got := a.DiffSet(small); !got.Equal(nodeset.New(64, 65, 100)) {
		t.Fatalf("a\\small = %v", got)
	}
}
