package datasets

import (
	"testing"

	"uagpnm/internal/graph"
)

func TestGenerateSocialShape(t *testing.T) {
	cfg := SocialConfig{Name: "t", Nodes: 500, Edges: 2000, Labels: 6, Homophily: 0.8, PrefAtt: 0.6, Seed: 1}
	g := GenerateSocial(cfg)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d, want 500", g.NumNodes())
	}
	if g.NumEdges() < 1900 {
		t.Fatalf("edges = %d, want ≈2000", g.NumEdges())
	}
	if g.Labels().Count() != 6 {
		t.Fatalf("labels = %d, want 6", g.Labels().Count())
	}
	// Every node carries exactly one role label.
	g.Nodes(func(id uint32) {
		if len(g.NodeLabels(id)) != 1 {
			t.Fatalf("node %d has %d labels", id, len(g.NodeLabels(id)))
		}
	})
}

func TestGenerateSocialHomophily(t *testing.T) {
	cfg := SocialConfig{Nodes: 1000, Edges: 5000, Labels: 8, Homophily: 0.9, PrefAtt: 0.5, Seed: 2}
	g := GenerateSocial(cfg)
	intra := 0
	g.Edges(func(e graph.Edge) {
		if g.NodeLabels(e.From)[0] == g.NodeLabels(e.To)[0] {
			intra++
		}
	})
	frac := float64(intra) / float64(g.NumEdges())
	if frac < 0.75 {
		t.Fatalf("intra-label edge fraction = %.2f, want ≥ 0.75 with homophily 0.9", frac)
	}
	// The hostile setting must produce clearly less homophily.
	g2 := GenerateSocial(SocialConfig{Nodes: 1000, Edges: 5000, Labels: 8, Homophily: 0.0, PrefAtt: 0.5, Seed: 2})
	intra2 := 0
	g2.Edges(func(e graph.Edge) {
		if g2.NodeLabels(e.From)[0] == g2.NodeLabels(e.To)[0] {
			intra2++
		}
	})
	if intra2 >= intra {
		t.Fatalf("homophily knob has no effect: %d vs %d", intra2, intra)
	}
}

func TestGenerateSocialHeavyTail(t *testing.T) {
	cfg := SocialConfig{Nodes: 2000, Edges: 10000, Labels: 10, Homophily: 0.8, PrefAtt: 0.7, Seed: 3}
	g := GenerateSocial(cfg)
	s := g.ComputeStats()
	// Preferential attachment should produce hubs well above the mean.
	if float64(s.MaxOutDeg) < 4*s.AvgOutDeg {
		t.Fatalf("max out-degree %d vs avg %.1f: no heavy tail", s.MaxOutDeg, s.AvgOutDeg)
	}
}

func TestGenerateSocialDeterminism(t *testing.T) {
	cfg := SocialConfig{Nodes: 300, Edges: 900, Labels: 5, Homophily: 0.8, PrefAtt: 0.5, Seed: 7}
	g1 := GenerateSocial(cfg)
	g2 := GenerateSocial(cfg)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("same seed must give same graph")
	}
	same := true
	g1.Edges(func(e graph.Edge) {
		if !g2.HasEdge(e.From, e.To) {
			same = false
		}
	})
	if !same {
		t.Fatal("edge sets differ across identical seeds")
	}
}

func TestSimAndMiniSpecs(t *testing.T) {
	for _, specs := range [][]Spec{Sim(), Mini()} {
		if len(specs) != 5 {
			t.Fatalf("want 5 datasets, got %d", len(specs))
		}
		// Scale ordering of Table X preserved: nodes ascending after the
		// first (email stays small but dense), edges reflect the paper.
		for i := 2; i < len(specs); i++ {
			if specs[i].Nodes <= specs[i-1].Nodes {
				t.Errorf("node ordering broken at %s", specs[i].Name)
			}
		}
		names := map[string]bool{}
		for _, s := range specs {
			names[s.Name] = true
		}
		for _, want := range []string{"email-EU-core", "DBLP", "Amazon", "Youtube", "LiveJournal"} {
			if !names[want] {
				t.Errorf("missing dataset %s", want)
			}
		}
	}
}

func TestByName(t *testing.T) {
	specs := Mini()
	if s, ok := ByName(specs, "DBLP"); !ok || s.Name != "DBLP" {
		t.Fatal("ByName(DBLP) failed")
	}
	if _, ok := ByName(specs, "nope"); ok {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestLabelName(t *testing.T) {
	if LabelName(3) != "role03" {
		t.Fatalf("LabelName(3) = %q", LabelName(3))
	}
}
