// Package datasets provides the evaluation substrate of §VII-A: the five
// social graphs of Table X. The module is offline, so the SNAP files are
// replaced by synthetic replicas that preserve the properties the
// algorithms are sensitive to (DESIGN.md §4): the relative scale
// ordering, heavy-tailed degree distributions (preferential attachment),
// and label homophily — nodes of the same role connecting densely, the
// premise of the paper's label-based partition. Real SNAP edge lists
// load through graph.ReadEdgeList and drop in unchanged.
package datasets

import (
	"fmt"
	"math/rand"

	"uagpnm/internal/graph"
)

// SocialConfig parameterises the synthetic social-graph generator.
type SocialConfig struct {
	Name      string
	Nodes     int
	Edges     int
	Labels    int     // distinct role labels (≥ 1)
	Homophily float64 // fraction of edges kept inside one label class
	PrefAtt   float64 // probability an endpoint is drawn preferentially
	Seed      int64
}

// LabelName returns the i-th role label ("role00", "role01", …).
func LabelName(i int) string { return fmt.Sprintf("role%02d", i) }

// GenerateSocial builds a directed social graph per cfg: nodes receive
// one of cfg.Labels role labels (mildly skewed class sizes), and edges
// are sampled with preferential attachment on both endpoints, with
// probability cfg.Homophily forced to stay inside the source's label
// class. Self-loops and duplicates are rejected; the generator retries,
// so the edge count is met except on pathologically dense configs.
func GenerateSocial(cfg SocialConfig) *graph.Graph {
	if cfg.Labels < 1 {
		cfg.Labels = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := graph.New(nil)

	// Skewed label assignment: class i gets weight 1/(1+i/4), giving a
	// realistic mix of large and small roles.
	weights := make([]float64, cfg.Labels)
	total := 0.0
	for i := range weights {
		weights[i] = 1.0 / (1.0 + float64(i)/4.0)
		total += weights[i]
	}
	byLabel := make([][]uint32, cfg.Labels)
	labelIdx := make([]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		r := rng.Float64() * total
		l := 0
		for ; l < cfg.Labels-1; l++ {
			if r < weights[l] {
				break
			}
			r -= weights[l]
		}
		id := g.AddNode(LabelName(l))
		byLabel[l] = append(byLabel[l], id)
		labelIdx[id] = l
	}

	// Preferential pools: every edge endpoint is appended, so sampling a
	// pool element is degree-proportional (the classic PA shortcut).
	srcPool := make([]uint32, 0, cfg.Edges)
	dstPool := make([]uint32, 0, cfg.Edges)
	labelOf := func(id uint32) int { return labelIdx[id] }
	pickUniform := func() uint32 { return uint32(rng.Intn(cfg.Nodes)) }
	pickSrc := func() uint32 {
		if len(srcPool) > 0 && rng.Float64() < cfg.PrefAtt {
			return srcPool[rng.Intn(len(srcPool))]
		}
		return pickUniform()
	}
	pickDst := func(srcLabel int) uint32 {
		if rng.Float64() < cfg.Homophily {
			members := byLabel[srcLabel]
			if len(members) > 1 {
				return members[rng.Intn(len(members))]
			}
		}
		if len(dstPool) > 0 && rng.Float64() < cfg.PrefAtt {
			return dstPool[rng.Intn(len(dstPool))]
		}
		return pickUniform()
	}
	added := 0
	for attempts := 0; added < cfg.Edges && attempts < cfg.Edges*30; attempts++ {
		u := pickSrc()
		v := pickDst(labelOf(u))
		if g.AddEdge(u, v) {
			srcPool = append(srcPool, u)
			dstPool = append(dstPool, v)
			added++
		}
	}
	return g
}

// Spec names one evaluation dataset and its generator configuration.
type Spec struct {
	SocialConfig
	// PaperNodes/PaperEdges document the original SNAP scale this spec
	// stands in for (Table X).
	PaperNodes, PaperEdges int
}

// Sim returns the five stand-in datasets at reproduction scale
// (DESIGN.md §4's table): email-EU-core at its original size, the other
// four scaled down 1/20–1/125 with the paper's ordering preserved.
func Sim() []Spec {
	return []Spec{
		{SocialConfig{Name: "email-EU-core", Nodes: 1005, Edges: 25571, Labels: 10, Homophily: 0.90, PrefAtt: 0.6, Seed: 11}, 1005, 25571},
		{SocialConfig{Name: "DBLP", Nodes: 15854, Edges: 52493, Labels: 24, Homophily: 0.95, PrefAtt: 0.6, Seed: 12}, 317080, 1049866},
		{SocialConfig{Name: "Amazon", Nodes: 16743, Edges: 46293, Labels: 24, Homophily: 0.95, PrefAtt: 0.6, Seed: 13}, 334863, 925872},
		{SocialConfig{Name: "Youtube", Nodes: 22698, Edges: 59752, Labels: 28, Homophily: 0.94, PrefAtt: 0.7, Seed: 14}, 1134890, 2987624},
		{SocialConfig{Name: "LiveJournal", Nodes: 31984, Edges: 138725, Labels: 30, Homophily: 0.95, PrefAtt: 0.7, Seed: 15}, 3997962, 34681189},
	}
}

// Mini returns reduced datasets for quick runs (`go test -bench`),
// preserving the Sim ordering at roughly quarter scale.
func Mini() []Spec {
	return []Spec{
		{SocialConfig{Name: "email-EU-core", Nodes: 500, Edges: 6000, Labels: 8, Homophily: 0.90, PrefAtt: 0.6, Seed: 11}, 1005, 25571},
		{SocialConfig{Name: "DBLP", Nodes: 2000, Edges: 6600, Labels: 12, Homophily: 0.95, PrefAtt: 0.6, Seed: 12}, 317080, 1049866},
		{SocialConfig{Name: "Amazon", Nodes: 2100, Edges: 5800, Labels: 12, Homophily: 0.95, PrefAtt: 0.6, Seed: 13}, 334863, 925872},
		{SocialConfig{Name: "Youtube", Nodes: 2800, Edges: 7400, Labels: 14, Homophily: 0.94, PrefAtt: 0.7, Seed: 14}, 1134890, 2987624},
		{SocialConfig{Name: "LiveJournal", Nodes: 4000, Edges: 17000, Labels: 15, Homophily: 0.95, PrefAtt: 0.7, Seed: 15}, 3997962, 34681189},
	}
}

// ByName returns the spec with the given name from specs, or false.
func ByName(specs []Spec, name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
