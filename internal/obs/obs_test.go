package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers one counter family from many
// goroutines — some sharing a handle, some re-looking it up — and
// checks the totals. Run under -race this is the registry's
// thread-safety proof.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	const goroutines, perG = 16, 1000
	shared := r.Counter("shared_total")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				shared.Inc()
				r.Counter("looked_up_total", "worker", fmt.Sprint(i%4)).Inc()
				r.Gauge("gauge").Add(1)
			}
		}(i)
	}
	wg.Wait()
	if got := shared.Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	var lookedUp uint64
	for w := 0; w < 4; w++ {
		lookedUp += r.Counter("looked_up_total", "worker", fmt.Sprint(w)).Value()
	}
	if lookedUp != goroutines*perG {
		t.Fatalf("looked-up counters sum to %d, want %d", lookedUp, goroutines*perG)
	}
	if got := r.Gauge("gauge").Value(); got != goroutines*perG {
		t.Fatalf("gauge = %d, want %d", got, goroutines*perG)
	}
}

// TestConcurrentHistogram checks that the CAS-looped float sum and the
// per-bucket counts stay exact under contention.
func TestConcurrentHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "endpoint", "/ops")
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.ObserveSeconds(0.001) // lands exactly on a bucket bound
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	want := float64(goroutines*perG) * 0.001
	if got := h.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

// TestHistogramBuckets pins the bucket placement rule: an observation
// lands in the first bucket whose bound is >= the value, with +Inf
// catching everything beyond the last bound.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram()
	h.ObserveSeconds(0.00005) // below first bound → bucket 0 (le 0.0001)
	h.ObserveSeconds(0.0001)  // exactly the first bound → bucket 0
	h.ObserveSeconds(0.003)   // between 0.0025 and 0.005 → le 0.005
	h.ObserveSeconds(99)      // beyond 10s → +Inf
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("bucket le=0.0001 = %d, want 2", got)
	}
	i := 0
	for DefBuckets[i] != 0.005 {
		i++
	}
	if got := h.counts[i].Load(); got != 1 {
		t.Fatalf("bucket le=0.005 = %d, want 1", got)
	}
	if got := h.counts[len(DefBuckets)].Load(); got != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", got)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

// TestKindMismatchPanics: re-registering a name as another kind is a
// programming error and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("histogram lookup of a counter name did not panic")
		}
	}()
	r.Histogram("x_total")
}

// TestHistogramSums reads back a single-label family the way the bench
// harness reads the per-phase breakdown.
func TestHistogramSums(t *testing.T) {
	r := NewRegistry()
	r.Histogram("gpnm_batch_phase_seconds", "phase", "pre_balls").ObserveSeconds(0.25)
	r.Histogram("gpnm_batch_phase_seconds", "phase", "pre_balls").ObserveSeconds(0.25)
	r.Histogram("gpnm_batch_phase_seconds", "phase", "slen_sync").ObserveSeconds(1)
	r.Histogram("other_seconds", "phase", "pre_balls").ObserveSeconds(9)
	sums := r.HistogramSums("gpnm_batch_phase_seconds")
	if len(sums) != 2 || sums["pre_balls"] != 0.5 || sums["slen_sync"] != 1 {
		t.Fatalf("HistogramSums = %v, want pre_balls=0.5 slen_sync=1", sums)
	}
}

// TestTraceRingBound: the ring keeps the most recent traceRingCap
// traces, oldest first.
func TestTraceRingBound(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= traceRingCap+10; i++ {
		r.RecordTrace(Trace{Seq: uint64(i)})
	}
	traces := r.Traces()
	if len(traces) != traceRingCap {
		t.Fatalf("ring holds %d traces, want %d", len(traces), traceRingCap)
	}
	if traces[0].Seq != 11 || traces[len(traces)-1].Seq != traceRingCap+10 {
		t.Fatalf("ring spans seqs %d..%d, want 11..%d",
			traces[0].Seq, traces[len(traces)-1].Seq, traceRingCap+10)
	}
	last, ok := r.LastTrace()
	if !ok || last.Seq != traceRingCap+10 {
		t.Fatalf("LastTrace = %v %v", last, ok)
	}
}

func TestTraceSpanSeconds(t *testing.T) {
	tr := Trace{}
	tr.AddSpan("recovery", 100*time.Millisecond)
	tr.AddSpan("slen_sync", 50*time.Millisecond)
	tr.AddSpan("recovery", 200*time.Millisecond)
	if got := tr.SpanSeconds("recovery"); math.Abs(got-0.3) > 1e-9 {
		t.Fatalf("SpanSeconds(recovery) = %g, want 0.3", got)
	}
	if got := tr.SpanSeconds("absent"); got != 0 {
		t.Fatalf("SpanSeconds(absent) = %g, want 0", got)
	}
}

// TestPrometheusExposition pins the text format: TYPE headers once per
// family, sorted samples, cumulative buckets with +Inf, _sum/_count,
// and escaped label values.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("gpnm_rpc_retries_total", "endpoint", "/ops").Add(3)
	r.Gauge("gpnm_hub_seq").Set(42)
	r.Histogram("gpnm_rpc_seconds", "endpoint", "/ops").ObserveSeconds(0.003)
	r.Histogram("gpnm_rpc_seconds", "endpoint", "/ops").ObserveSeconds(0.02)
	r.Counter("escaped_total", "v", "a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE gpnm_rpc_retries_total counter\n",
		`gpnm_rpc_retries_total{endpoint="/ops"} 3` + "\n",
		"# TYPE gpnm_hub_seq gauge\n",
		"gpnm_hub_seq 42\n",
		"# TYPE gpnm_rpc_seconds histogram\n",
		`gpnm_rpc_seconds_bucket{endpoint="/ops",le="0.0025"} 0` + "\n",
		`gpnm_rpc_seconds_bucket{endpoint="/ops",le="0.005"} 1` + "\n",
		`gpnm_rpc_seconds_bucket{endpoint="/ops",le="0.025"} 2` + "\n",
		`gpnm_rpc_seconds_bucket{endpoint="/ops",le="+Inf"} 2` + "\n",
		`gpnm_rpc_seconds_sum{endpoint="/ops"} 0.023` + "\n",
		`gpnm_rpc_seconds_count{endpoint="/ops"} 2` + "\n",
		`escaped_total{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n--- got ---\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# TYPE gpnm_rpc_seconds "); got != 1 {
		t.Errorf("TYPE header for gpnm_rpc_seconds appears %d times, want 1", got)
	}
}

// TestServeHTTP: a registry mounts directly as a metrics endpoint with
// the 0.0.4 content type.
func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}
