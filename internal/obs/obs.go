// Package obs is the repository's zero-dependency telemetry plane: a
// race-clean metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms) plus a bounded ring of per-batch phase traces,
// reported into by every layer of the stack — the §V partition engine's
// batch phases and failover controller, the shard RPC client, the
// worker-side shard server, and the standing-query hub — and read out
// by the HTTP front end (GET /v1/metrics, GET /v1/trace), the shard
// worker (GET /metrics) and the bench harness.
//
// Design constraints, in order: no dependencies beyond the standard
// library (the exposition format is hand-rolled Prometheus text), safe
// for unsynchronised concurrent use on every hot-path method (writes
// are single atomic ops once a handle exists), and allocation-free
// after the first get-or-create of a handle — instrumented code keeps
// handles or re-looks them up under a mutex that is uncontended off
// the hot path.
//
// Metric identity is (name, label pairs). Handles are get-or-create:
// two callers asking for the same identity share one metric. A name
// re-registered as a different kind panics — that is a programming
// error, not an operational condition.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-global registry: one process is one telemetry
// domain (a gpnm-serve coordinator, a gpnm-shard worker, a CLI run), so
// instrumented packages report here unless a caller wires its own
// registry through (the bench harness does, to attribute the hub side's
// phases separately from its in-process comparison sessions).
var Default = NewRegistry()

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (may go down).
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the histogram's fixed latency bucket bounds in
// seconds: 100µs .. 10s, roughly logarithmic. One fixed layout keeps
// every histogram two cache lines of atomics and the exposition
// deterministic; the RPC and batch-phase latencies this package exists
// to measure all land comfortably inside the range.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram: atomic per-bucket
// counts plus an atomic float sum, observed in seconds.
type Histogram struct {
	counts []atomic.Uint64 // len(DefBuckets)+1; last is +Inf
	sum    atomic.Uint64   // math.Float64bits of the running sum (seconds)
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, len(DefBuckets)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveSeconds(d.Seconds()) }

// ObserveSeconds records one observation in seconds.
func (h *Histogram) ObserveSeconds(s float64) {
	i := sort.SearchFloat64s(DefBuckets, s) // first bound >= s
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+s)) {
			return
		}
	}
}

// Count reads the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reads the sum of all observations in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Span is one timed phase inside a Trace.
type Span struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Trace is the phase breakdown of one hub batch: every instrumented
// span the batch crossed, in completion order — the engine's
// ApplyDataBatch phases (pre_balls, oplog_flush, overlay_sync,
// post_balls, row_prefetch), any recovery spans a shard loss inserted,
// and the hub's own phases (slen_sync, wake_plan, amend_fan). A Trace
// is built single-threaded by the batch's single writer and becomes
// immutable once recorded into a registry's ring.
type Trace struct {
	Seq   uint64    `json:"seq"`
	Start time.Time `json:"start"`
	// Batch shape: updates in, registrations standing, and the wake
	// decision's outcome (Woken + Skipped == Patterns).
	DataUpdates int `json:"data_updates"`
	Patterns    int `json:"patterns"`
	Woken       int `json:"woken"`
	Skipped     int `json:"skipped"`
	// Recovered counts shard losses absorbed by failover inside this
	// batch; its cost shows up as recovery* spans.
	Recovered int    `json:"recovered,omitempty"`
	Spans     []Span `json:"spans"`
}

// AddSpan appends one completed span. Not safe for concurrent use: a
// trace has exactly one writer (the batch goroutine).
func (t *Trace) AddSpan(name string, d time.Duration) {
	t.Spans = append(t.Spans, Span{Name: name, Seconds: d.Seconds()})
}

// SpanSeconds sums the trace's spans with the given name (0 when absent).
func (t *Trace) SpanSeconds(name string) float64 {
	var s float64
	for _, sp := range t.Spans {
		if sp.Name == name {
			s += sp.Seconds
		}
	}
	return s
}

// traceRingCap bounds the per-registry trace ring: enough history for
// GET /v1/trace and the bench harness, small enough to never matter.
const traceRingCap = 64

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered (name, labels) identity.
type metric struct {
	name   string
	labels []string // alternating key, value
	kind   kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a process's (or component's) metrics and its trace
// ring. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric

	traceMu sync.Mutex
	traces  []Trace // ring: oldest first, bounded by traceRingCap
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// key builds the identity key. Label pairs are used in given order —
// call sites are the only writers of a family and use one order.
func key(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	return name + "\x00" + strings.Join(labels, "\x00")
}

func (r *Registry) get(name string, k kind, labels []string) *metric {
	if len(labels)%2 != 0 {
		panic("obs: odd label pairs for " + name)
	}
	id := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.metrics[id]
	if !ok {
		m = &metric{name: name, labels: append([]string(nil), labels...), kind: k}
		switch k {
		case kindCounter:
			m.c = &Counter{}
		case kindGauge:
			m.g = &Gauge{}
		case kindHistogram:
			m.h = newHistogram()
		}
		r.metrics[id] = m
	}
	if m.kind != k {
		panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", name, m.kind, k))
	}
	return m
}

// Counter returns (creating on first use) the counter with the given
// name and alternating label key/value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.get(name, kindCounter, labels).c
}

// Gauge returns (creating on first use) the gauge with the given name
// and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.get(name, kindGauge, labels).g
}

// Histogram returns (creating on first use) the fixed-bucket latency
// histogram with the given name and label pairs.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.get(name, kindHistogram, labels).h
}

// HistogramSums reports, for a histogram family with exactly one label
// key, the per-label-value sum of observations in seconds — the bench
// harness reads the per-phase breakdown of gpnm_batch_phase_seconds
// through this instead of keeping ad-hoc timers.
func (r *Registry) HistogramSums(name string) map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, m := range r.metrics {
		if m.name == name && m.kind == kindHistogram && len(m.labels) == 2 {
			out[m.labels[1]] = m.h.Sum()
		}
	}
	return out
}

// HistogramCounts is HistogramSums' companion for observation counts:
// per-label-value Count() of a single-label histogram family. The bench
// harness and the RPC-count regression tests read per-endpoint call
// counts out of gpnm_rpc_seconds through this.
func (r *Registry) HistogramCounts(name string) map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64)
	for _, m := range r.metrics {
		if m.name == name && m.kind == kindHistogram && len(m.labels) == 2 {
			out[m.labels[1]] = m.h.Count()
		}
	}
	return out
}

// RecordTrace appends one completed batch trace to the bounded ring.
func (r *Registry) RecordTrace(t Trace) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	r.traces = append(r.traces, t)
	if over := len(r.traces) - traceRingCap; over > 0 {
		r.traces = append(r.traces[:0], r.traces[over:]...)
	}
}

// Traces returns the retained batch traces, oldest first.
func (r *Registry) Traces() []Trace {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	return append([]Trace(nil), r.traces...)
}

// LastTrace returns the most recent batch trace (ok=false before the
// first recorded batch).
func (r *Registry) LastTrace() (Trace, bool) {
	r.traceMu.Lock()
	defer r.traceMu.Unlock()
	if len(r.traces) == 0 {
		return Trace{}, false
	}
	return r.traces[len(r.traces)-1], true
}

// escapeLabel escapes a label value for the text exposition.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// labelString renders {k="v",...}, with extra pairs appended (the
// histogram "le" bound).
func labelString(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `%s="%s"`, all[i], escapeLabel(all[i+1]))
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a float the way Prometheus text exposition
// expects (shortest round-trip representation).
func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered: one
// "# TYPE" header per family, samples sorted by identity.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ids := make([]string, 0, len(r.metrics))
	for id := range r.metrics {
		ids = append(ids, id)
	}
	snapshot := make(map[string]*metric, len(r.metrics))
	for id, m := range r.metrics {
		snapshot[id] = m
	}
	r.mu.Unlock()
	sort.Strings(ids)

	lastFamily := ""
	for _, id := range ids {
		m := snapshot[id]
		if m.name != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
			lastFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels), m.c.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, labelString(m.labels), m.g.Value()); err != nil {
				return err
			}
		case kindHistogram:
			var cum uint64
			for i, bound := range DefBuckets {
				cum += m.h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.name, labelString(m.labels, "le", formatFloat(bound)), cum); err != nil {
					return err
				}
			}
			cum += m.h.counts[len(DefBuckets)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, labelString(m.labels, "le", "+Inf"), cum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
				m.name, labelString(m.labels), formatFloat(m.h.Sum())); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
				m.name, labelString(m.labels), cum); err != nil {
				return err
			}
		}
	}
	return nil
}

// ServeHTTP makes a registry mountable as the /metrics (or
// /v1/metrics) endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
