// Package workpool is the one worker-pool discipline every parallel
// phase in the repository runs on: dynamic claiming over an atomic
// counter, no goroutines in serial mode. The partition engine, the
// standing-query hub's per-pattern fan-out and the shard layer all
// share it, so "workers=1" means bit-for-bit serial execution
// everywhere at once.
package workpool

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0,n) across at most workers
// goroutines, returning when all calls have finished. workers ≤ 1 (or
// n ≤ 1) degenerates to a plain serial loop with no goroutine or
// channel overhead, so serial mode stays bit-for-bit the
// single-threaded code path.
//
// Work is handed out through an atomic counter rather than pre-sliced
// ranges: per-item cost varies wildly in this repository (partition
// sizes are heavy-tailed, Dijkstra frontiers differ per source), and
// dynamic claiming keeps the stragglers from serialising the tail.
// fn must be safe to call concurrently for distinct i.
//
// A panic in fn is re-raised on the calling goroutine after every
// worker has drained (the first panic wins; remaining work is
// abandoned), matching the serial path — so callers see fork-join
// semantics, not a raw runtime crash from an anonymous goroutine.
// The shard layer depends on this: a remote shard's TransportError
// must unwind through the engine into whoever coordinates the session,
// whatever the worker bound was.
// Run launches exactly workers goroutines, each running fn(w) once with
// its own identity w ∈ [0,workers), and returns when all have finished.
// It is the fork-join primitive for phases where workers own state by
// identity (striped queues, sharded merges) rather than claiming items
// dynamically. workers ≤ 1 degenerates to a plain call fn(0), so serial
// mode stays bit-for-bit the single-threaded code path.
//
// A panic in fn is re-raised on the calling goroutine after every worker
// has returned (the first panic wins), matching ForEach. Unlike ForEach
// there is no remaining work to abandon — a caller whose workers block
// on each other must arrange its own unblocking (e.g. an abort channel
// closed from the panicking worker's defer) so the join completes.
func Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked bool
	var panicVal interface{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked, panicVal = true, r })
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}

func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked bool
	var panicVal interface{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked, panicVal = true, r })
					next.Store(int64(n)) // abandon the remaining work
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
}
