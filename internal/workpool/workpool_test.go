package workpool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		const n = 100
		var hits [n]atomic.Int32
		ForEach(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

// TestForEachPropagatesPanic pins the fork-join contract the shard
// layer depends on: a panic in fn (a remote shard's TransportError in
// production) must re-raise on the calling goroutine — under any
// worker bound — instead of crashing the process from an anonymous
// goroutine.
func TestForEachPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(workers, 50, func(i int) {
				if i == 17 {
					panic("boom")
				}
			})
		}()
	}
}
