// Package version carries the build identity every binary reports: the
// -version flag on the five cmds and the version/commit fields of
// GET /v1/healthz. The variables are plain strings so release builds
// stamp them through the linker:
//
//	go build -ldflags "-X uagpnm/internal/version.Version=v1.2.3 \
//	                   -X uagpnm/internal/version.Commit=$(git rev-parse --short HEAD)" ./...
//
// Unstamped builds fall back to the module build info Go embeds in
// every binary (vcs.revision when built inside a checkout), so even a
// bare `go build` reports something traceable.
package version

import (
	"fmt"
	"runtime/debug"
)

var (
	// Version is the release version ("dev" unless stamped via -ldflags).
	Version = "dev"
	// Commit is the VCS commit ("" unless stamped; falls back to the
	// embedded build info at read time).
	Commit = ""
)

// CommitOrEmbedded returns the stamped commit, or the vcs.revision the
// toolchain embedded, or "unknown".
func CommitOrEmbedded() string {
	if Commit != "" {
		return Commit
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				if len(s.Value) > 12 {
					return s.Value[:12]
				}
				return s.Value
			}
		}
	}
	return "unknown"
}

// String renders the one-line identity the -version flag prints.
func String(binary string) string {
	return fmt.Sprintf("%s %s (commit %s)", binary, Version, CommitOrEmbedded())
}
