package updates

import (
	"strings"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
)

func smallGraph() *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < 6; i++ {
		g.AddNode([]string{"A", "B"}[i%2])
	}
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	return g
}

func smallPattern(g *graph.Graph) *pattern.Graph {
	p := pattern.New(g.Labels())
	a := p.AddNode("A")
	b := p.AddNode("B")
	p.AddEdge(a, b, 2)
	return p
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		DataEdgeInsert: "ΔG+DE", DataEdgeDelete: "ΔG-DE",
		DataNodeInsert: "ΔG+DN", DataNodeDelete: "ΔG-DN",
		PatternEdgeInsert: "ΔG+PE", PatternEdgeDelete: "ΔG-PE",
		PatternNodeInsert: "ΔG+PN", PatternNodeDelete: "ΔG-PN",
		Kind(99): "?",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if !DataNodeDelete.IsData() || PatternEdgeInsert.IsData() {
		t.Error("IsData wrong")
	}
}

func TestApplyDataRoundTrip(t *testing.T) {
	g := smallGraph()
	e := shortest.NewEngine(g, 0)
	e.Build()
	// Insert, then delete: state must return.
	aff := ApplyData(Update{Kind: DataEdgeInsert, From: 4, To: 0}, g, e)
	if aff.Empty() {
		t.Fatal("insertion of a connecting edge must affect nodes")
	}
	if ApplyData(Update{Kind: DataEdgeInsert, From: 4, To: 0}, g, e) != nil {
		t.Fatal("duplicate insert must be a no-op")
	}
	ApplyData(Update{Kind: DataEdgeDelete, From: 4, To: 0}, g, e)
	if g.HasEdge(4, 0) {
		t.Fatal("edge not removed")
	}
	if ApplyData(Update{Kind: DataEdgeDelete, From: 4, To: 0}, g, e) != nil {
		t.Fatal("double delete must be a no-op")
	}
	// Node insert with predicted id.
	id := uint32(g.NumIDs())
	aff = ApplyData(Update{Kind: DataNodeInsert, Node: id, Labels: []string{"A"}}, g, e)
	if !aff.Contains(id) || !g.Alive(id) {
		t.Fatal("node insert failed")
	}
	ApplyData(Update{Kind: DataNodeDelete, Node: id}, g, e)
	if g.Alive(id) {
		t.Fatal("node delete failed")
	}
}

func TestApplyDataPanicsOnWrongSide(t *testing.T) {
	g := smallGraph()
	e := shortest.NewEngine(g, 0)
	e.Build()
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	ApplyData(Update{Kind: PatternEdgeInsert}, g, e)
}

func TestApplyPattern(t *testing.T) {
	g := smallGraph()
	p := smallPattern(g)
	if !ApplyPattern(Update{Kind: PatternEdgeDelete, From: 0, To: 1}, p) {
		t.Fatal("pattern edge delete failed")
	}
	if ApplyPattern(Update{Kind: PatternEdgeDelete, From: 0, To: 1}, p) {
		t.Fatal("double delete must report false")
	}
	if !ApplyPattern(Update{Kind: PatternEdgeInsert, From: 0, To: 1, Bound: 3}, p) {
		t.Fatal("pattern edge insert failed")
	}
	id := pattern.NodeID(p.NumIDs())
	if !ApplyPattern(Update{Kind: PatternNodeInsert, Node: id, Labels: []string{"B"}}, p) {
		t.Fatal("pattern node insert failed")
	}
	if !ApplyPattern(Update{Kind: PatternNodeDelete, Node: id}, p) {
		t.Fatal("pattern node delete failed")
	}
}

func TestGenerateConsistency(t *testing.T) {
	g := smallGraph()
	p := smallPattern(g)
	for seed := int64(0); seed < 20; seed++ {
		b := Generate(Balanced(seed, 4, 12), g, p)
		// Replay on clones: every structural apply must be coherent (the
		// engine-free path tests the predictions).
		g2 := g.Clone()
		ApplyDataStructural(b.D, g2)
		p2 := p.Clone()
		ApplyPatternBatch(b.P, p2)
		if err := p2.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateBalancedCounts(t *testing.T) {
	cfg := Balanced(1, 8, 16)
	total := cfg.PatternEdgeInserts + cfg.PatternEdgeDeletes + cfg.PatternNodeInserts + cfg.PatternNodeDeletes
	if total != 8 {
		t.Fatalf("pattern updates = %d, want 8", total)
	}
	dTotal := cfg.DataEdgeInserts + cfg.DataEdgeDeletes + cfg.DataNodeInserts + cfg.DataNodeDeletes
	if dTotal != 16 {
		t.Fatalf("data updates = %d, want 16", dTotal)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	g := smallGraph()
	p := smallPattern(g)
	a := Generate(Balanced(5, 3, 9), g, p)
	b := Generate(Balanced(5, 3, 9), g, p)
	if len(a.D) != len(b.D) || len(a.P) != len(b.P) {
		t.Fatal("same seed, different batch sizes")
	}
	for i := range a.D {
		if a.D[i].String() != b.D[i].String() {
			t.Fatal("same seed, different data updates")
		}
	}
}

func TestMaxPatternBound(t *testing.T) {
	b := Batch{P: []Update{
		{Kind: PatternEdgeInsert, Bound: 2},
		{Kind: PatternEdgeInsert, Bound: pattern.Star},
		{Kind: PatternEdgeInsert, Bound: 5},
		{Kind: PatternEdgeDelete},
	}}
	if b.MaxPatternBound() != 5 {
		t.Fatalf("MaxPatternBound = %d, want 5", b.MaxPatternBound())
	}
	if b.Size() != 4 {
		t.Fatalf("Size = %d", b.Size())
	}
}

func TestParseScript(t *testing.T) {
	in := `
# a comment
+e 1 2
-e 2 3
+n 6 A,B
-n 4
+pe 0 1 3
+pe 1 0 *
-pe 0 1
+pn 2 B
-pn 1
`
	b, err := ParseScript(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.D) != 4 || len(b.P) != 5 {
		t.Fatalf("parsed %d data, %d pattern updates", len(b.D), len(b.P))
	}
	if b.D[2].Kind != DataNodeInsert || len(b.D[2].Labels) != 2 {
		t.Fatalf("node insert parsed wrong: %+v", b.D[2])
	}
	if b.P[1].Bound != pattern.Star {
		t.Fatalf("star bound parsed wrong: %+v", b.P[1])
	}
}

func TestParseScriptErrors(t *testing.T) {
	bad := []string{
		"frob 1 2\n", "+e 1\n", "+e x 2\n", "+pe 0 1 0\n", "+pe 0 1 -2\n",
		"+n zz A\n", "-n\n", "-pe 1\n", "+pn 1\n", "-pn x\n",
	}
	for _, in := range bad {
		if _, err := ParseScript(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestUpdateString(t *testing.T) {
	cases := []struct {
		u    Update
		want string
	}{
		{Update{Kind: DataEdgeInsert, From: 1, To: 2}, "ΔG+DE(1->2)"},
		{Update{Kind: PatternEdgeInsert, From: 0, To: 1, Bound: pattern.Star}, "ΔG+PE(0-(*)->1)"},
		{Update{Kind: DataNodeDelete, Node: 7}, "ΔG-DN(7)"},
		{Update{Kind: DataNodeInsert, Node: 3, Labels: []string{"A"}}, "ΔG+DN(3 [A])"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}
