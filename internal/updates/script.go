package updates

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"uagpnm/internal/pattern"
)

// ParseScript reads a textual update batch — the CLI's input format.
// One update per line; '#' comments and blanks skipped:
//
//	+e <from> <to>        insert data edge
//	-e <from> <to>        delete data edge
//	+n <id> <label,...>   insert data node (id must be the next free id)
//	-n <id>               delete data node
//	+pe <from> <to> <k|*> insert pattern edge
//	-pe <from> <to>       delete pattern edge
//	+pn <id> <label>      insert pattern node
//	-pn <id>              delete pattern node
//
// Ids are numeric (data-graph and pattern-graph node ids respectively).
func ParseScript(r io.Reader) (Batch, error) {
	var b Batch
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		u, err := parseScriptLine(fields)
		if err != nil {
			return Batch{}, fmt.Errorf("updates: line %d: %v", line, err)
		}
		if u.Kind.IsData() {
			b.D = append(b.D, u)
		} else {
			b.P = append(b.P, u)
		}
	}
	if err := sc.Err(); err != nil {
		return Batch{}, fmt.Errorf("updates: reading script: %v", err)
	}
	return b, nil
}

func parseScriptLine(fields []string) (Update, error) {
	need := func(n int) error {
		if len(fields) != n {
			return fmt.Errorf("directive %q wants %d fields, got %d", fields[0], n, len(fields))
		}
		return nil
	}
	id := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 10, 32)
		return uint32(v), err
	}
	switch fields[0] {
	case "+e", "-e":
		if err := need(3); err != nil {
			return Update{}, err
		}
		from, err1 := id(fields[1])
		to, err2 := id(fields[2])
		if err1 != nil || err2 != nil {
			return Update{}, fmt.Errorf("bad node id in %v", fields)
		}
		k := DataEdgeInsert
		if fields[0] == "-e" {
			k = DataEdgeDelete
		}
		return Update{Kind: k, From: from, To: to}, nil
	case "+n":
		if err := need(3); err != nil {
			return Update{}, err
		}
		node, err := id(fields[1])
		if err != nil {
			return Update{}, err
		}
		return Update{Kind: DataNodeInsert, Node: node, Labels: strings.Split(fields[2], ",")}, nil
	case "-n":
		if err := need(2); err != nil {
			return Update{}, err
		}
		node, err := id(fields[1])
		if err != nil {
			return Update{}, err
		}
		return Update{Kind: DataNodeDelete, Node: node}, nil
	case "+pe":
		if err := need(4); err != nil {
			return Update{}, err
		}
		from, err1 := id(fields[1])
		to, err2 := id(fields[2])
		if err1 != nil || err2 != nil {
			return Update{}, fmt.Errorf("bad pattern node id in %v", fields)
		}
		var bound int64 = -1
		if fields[3] != "*" {
			var err error
			bound, err = strconv.ParseInt(fields[3], 10, 32)
			if err != nil || bound < 1 {
				return Update{}, fmt.Errorf("bad bound %q", fields[3])
			}
		}
		return Update{Kind: PatternEdgeInsert, From: from, To: to, Bound: pattern.Bound(bound)}, nil
	case "-pe":
		if err := need(3); err != nil {
			return Update{}, err
		}
		from, err1 := id(fields[1])
		to, err2 := id(fields[2])
		if err1 != nil || err2 != nil {
			return Update{}, fmt.Errorf("bad pattern node id in %v", fields)
		}
		return Update{Kind: PatternEdgeDelete, From: from, To: to}, nil
	case "+pn":
		if err := need(3); err != nil {
			return Update{}, err
		}
		node, err := id(fields[1])
		if err != nil {
			return Update{}, err
		}
		return Update{Kind: PatternNodeInsert, Node: node, Labels: []string{fields[2]}}, nil
	case "-pn":
		if err := need(2); err != nil {
			return Update{}, err
		}
		node, err := id(fields[1])
		if err != nil {
			return Update{}, err
		}
		return Update{Kind: PatternNodeDelete, Node: node}, nil
	default:
		return Update{}, fmt.Errorf("unknown directive %q", fields[0])
	}
}
