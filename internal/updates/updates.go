// Package updates models the update streams of the paper: ΔGD (edge and
// node insertions/deletions on the data graph — ΔG±DE, ΔG±DN) and ΔGP
// (the same four kinds on the pattern graph — ΔG±PE, ΔG±PN), together
// with appliers that keep the SLen substrate synchronised and random
// batch generators implementing the experiment protocol of §VII-A.
package updates

import (
	"fmt"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
)

// Kind enumerates the eight update kinds.
type Kind int

// The four data-graph kinds and four pattern-graph kinds.
const (
	DataEdgeInsert Kind = iota
	DataEdgeDelete
	DataNodeInsert
	DataNodeDelete
	PatternEdgeInsert
	PatternEdgeDelete
	PatternNodeInsert
	PatternNodeDelete
)

// String names the kind as the paper does.
func (k Kind) String() string {
	switch k {
	case DataEdgeInsert:
		return "ΔG+DE"
	case DataEdgeDelete:
		return "ΔG-DE"
	case DataNodeInsert:
		return "ΔG+DN"
	case DataNodeDelete:
		return "ΔG-DN"
	case PatternEdgeInsert:
		return "ΔG+PE"
	case PatternEdgeDelete:
		return "ΔG-PE"
	case PatternNodeInsert:
		return "ΔG+PN"
	case PatternNodeDelete:
		return "ΔG-PN"
	}
	return "?"
}

// IsData reports whether the kind touches the data graph.
func (k Kind) IsData() bool { return k <= DataNodeDelete }

// Update is one update UDi or UPi. Fields by kind:
//
//   - *EdgeInsert / *EdgeDelete: From, To (and Bound for PatternEdgeInsert)
//   - DataNodeInsert: Node (the id the node will receive) and Labels
//   - PatternNodeInsert: Node (predicted id) and Labels[0] as the label
//   - *NodeDelete: Node
//
// Node-insert updates pre-assign the id the graph will hand out (ids are
// sequential), so later updates in one batch can reference new nodes and
// batches stay replayable on clones.
type Update struct {
	Kind   Kind
	From   uint32
	To     uint32
	Bound  pattern.Bound
	Node   uint32
	Labels []string
}

// String renders the update compactly, e.g. "ΔG+DE(3->7)".
func (u Update) String() string {
	switch u.Kind {
	case DataEdgeInsert, DataEdgeDelete, PatternEdgeDelete:
		return fmt.Sprintf("%v(%d->%d)", u.Kind, u.From, u.To)
	case PatternEdgeInsert:
		return fmt.Sprintf("%v(%d-(%s)->%d)", u.Kind, u.From, u.Bound, u.To)
	case DataNodeInsert, PatternNodeInsert:
		return fmt.Sprintf("%v(%d %v)", u.Kind, u.Node, u.Labels)
	default:
		return fmt.Sprintf("%v(%d)", u.Kind, u.Node)
	}
}

// Batch is one query's worth of updates: the pattern sequence ΔGP and the
// data sequence ΔGD, each in application order.
type Batch struct {
	P []Update // pattern updates, UPi
	D []Update // data updates, UDi
}

// Size reports the total number of updates |ΔG|.
func (b Batch) Size() int { return len(b.P) + len(b.D) }

// ApplyData applies one data update to g and synchronises the engine,
// returning the engine's affected set (the paper's Aff_N(UDi)). No-op
// updates (duplicate edge, missing target) return nil.
func ApplyData(u Update, g *graph.Graph, e shortest.DistanceEngine) nodeset.Set {
	switch u.Kind {
	case DataEdgeInsert:
		if !g.AddEdge(u.From, u.To) {
			return nil
		}
		return e.InsertEdge(u.From, u.To)
	case DataEdgeDelete:
		if !g.RemoveEdge(u.From, u.To) {
			return nil
		}
		return e.DeleteEdge(u.From, u.To)
	case DataNodeInsert:
		id := g.AddNode(u.Labels...)
		if id != u.Node {
			panic(fmt.Sprintf("updates: node insert got id %d, batch predicted %d", id, u.Node))
		}
		return e.InsertNode(id)
	case DataNodeDelete:
		removed, ok := g.RemoveNode(u.Node)
		if !ok {
			return nil
		}
		return e.DeleteNode(u.Node, removed)
	default:
		panic("updates: ApplyData on pattern update " + u.String())
	}
}

// PreviewData returns the affected set of a data update without applying
// it (the DER-II primitive). The graph must be in the pre-update state.
func PreviewData(u Update, g *graph.Graph, e shortest.DistanceEngine) nodeset.Set {
	switch u.Kind {
	case DataEdgeInsert:
		if g.HasEdge(u.From, u.To) {
			return nil
		}
		return e.PreviewInsertEdge(u.From, u.To)
	case DataEdgeDelete:
		if !g.HasEdge(u.From, u.To) {
			return nil
		}
		return e.PreviewDeleteEdge(u.From, u.To)
	case DataNodeInsert:
		return nodeset.New(u.Node)
	case DataNodeDelete:
		if !g.Alive(u.Node) {
			return nil
		}
		return e.PreviewDeleteNode(u.Node)
	default:
		panic("updates: PreviewData on pattern update " + u.String())
	}
}

// ApplyPattern applies one pattern update to p, reporting whether it
// changed anything.
func ApplyPattern(u Update, p *pattern.Graph) bool {
	switch u.Kind {
	case PatternEdgeInsert:
		return p.AddEdge(u.From, u.To, u.Bound)
	case PatternEdgeDelete:
		_, ok := p.RemoveEdge(u.From, u.To)
		return ok
	case PatternNodeInsert:
		label := ""
		if len(u.Labels) > 0 {
			label = u.Labels[0]
		}
		id := p.AddNode(label)
		if id != u.Node {
			panic(fmt.Sprintf("updates: pattern node insert got id %d, batch predicted %d", id, u.Node))
		}
		return true
	case PatternNodeDelete:
		_, ok := p.RemoveNode(u.Node)
		return ok
	default:
		panic("updates: ApplyPattern on data update " + u.String())
	}
}

// ApplyDataBatch applies every data update in order and returns the
// union of affected sets — the batch change log the amendment seeds on.
func ApplyDataBatch(ds []Update, g *graph.Graph, e shortest.DistanceEngine) nodeset.Set {
	var log nodeset.Builder
	for _, u := range ds {
		log.AddAll(ApplyData(u, g, e))
	}
	return log.Set()
}

// ApplyPatternBatch applies every pattern update in order.
func ApplyPatternBatch(ps []Update, p *pattern.Graph) {
	for _, u := range ps {
		ApplyPattern(u, p)
	}
}

// ApplyDataStructural applies data updates to the graph only, leaving
// any SLen substrate untouched — the from-scratch solver's path, which
// rebuilds its substrate wholesale afterwards.
func ApplyDataStructural(ds []Update, g *graph.Graph) {
	for _, u := range ds {
		switch u.Kind {
		case DataEdgeInsert:
			g.AddEdge(u.From, u.To)
		case DataEdgeDelete:
			g.RemoveEdge(u.From, u.To)
		case DataNodeInsert:
			if id := g.AddNode(u.Labels...); id != u.Node {
				panic(fmt.Sprintf("updates: node insert got id %d, batch predicted %d", id, u.Node))
			}
		case DataNodeDelete:
			g.RemoveNode(u.Node)
		default:
			panic("updates: ApplyDataStructural on pattern update " + u.String())
		}
	}
}

// MaxPatternBound returns the largest finite bound any pattern-edge
// insertion in the batch carries (solvers widen the engine horizon to
// cover it before processing).
func (b Batch) MaxPatternBound() int {
	max := 0
	for _, u := range b.P {
		if u.Kind == PatternEdgeInsert && !u.Bound.IsStar() && int(u.Bound) > max {
			max = int(u.Bound)
		}
	}
	return max
}
