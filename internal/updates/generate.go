package updates

import (
	"math/rand"

	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
)

// GenConfig controls random batch generation (experiment protocol
// §VII-A: balanced insertions and deletions on both graphs, bounds drawn
// from a small range).
type GenConfig struct {
	Seed int64

	DataEdgeInserts int
	DataEdgeDeletes int
	DataNodeInserts int
	DataNodeDeletes int

	PatternEdgeInserts int
	PatternEdgeDeletes int
	PatternNodeInserts int
	PatternNodeDeletes int

	// BoundMin/BoundMax bracket the bounds of inserted pattern edges
	// (defaults 1..3, the paper's setting).
	BoundMin, BoundMax int

	// NewNodeLabels supplies labels for inserted data nodes; when empty,
	// labels are sampled from the graph's existing label table.
	NewNodeLabels []string
}

// Balanced returns a GenConfig with pTotal pattern updates and dTotal
// data updates split evenly across the four kinds on each side, matching
// the paper's ΔG scale notation (p, d).
func Balanced(seed int64, pTotal, dTotal int) GenConfig {
	cfg := GenConfig{Seed: seed, BoundMin: 1, BoundMax: 3}
	cfg.PatternEdgeInserts = (pTotal + 3) / 4
	cfg.PatternEdgeDeletes = (pTotal + 2) / 4
	cfg.PatternNodeInserts = (pTotal + 1) / 4
	cfg.PatternNodeDeletes = pTotal / 4
	cfg.DataEdgeInserts = (dTotal + 3) / 4
	cfg.DataEdgeDeletes = (dTotal + 2) / 4
	cfg.DataNodeInserts = (dTotal + 1) / 4
	cfg.DataNodeDeletes = dTotal / 4
	return cfg
}

// Generate builds a random batch consistent with g and p. Neither input
// is mutated: generation runs against working clones so that, e.g., an
// edge deletion may target an edge inserted earlier in the same batch,
// and node references stay valid in application order.
func Generate(cfg GenConfig, g *graph.Graph, p *pattern.Graph) Batch {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.BoundMin < 1 {
		cfg.BoundMin = 1
	}
	if cfg.BoundMax < cfg.BoundMin {
		cfg.BoundMax = cfg.BoundMin
	}
	gw := g.Clone()
	pw := p.Clone()
	var b Batch

	labelUniverse := cfg.NewNodeLabels
	if len(labelUniverse) == 0 {
		for i := 0; i < g.Labels().Count(); i++ {
			labelUniverse = append(labelUniverse, g.Labels().Name(graph.LabelID(i)))
		}
	}
	if len(labelUniverse) == 0 {
		labelUniverse = []string{"node"}
	}

	// Interleave kinds in a shuffled order so the stream mixes
	// insertions and deletions the way real update logs do.
	type genStep struct{ kind Kind }
	var steps []genStep
	addSteps := func(k Kind, n int) {
		for i := 0; i < n; i++ {
			steps = append(steps, genStep{k})
		}
	}
	addSteps(DataEdgeInsert, cfg.DataEdgeInserts)
	addSteps(DataEdgeDelete, cfg.DataEdgeDeletes)
	addSteps(DataNodeInsert, cfg.DataNodeInserts)
	addSteps(DataNodeDelete, cfg.DataNodeDeletes)
	addSteps(PatternEdgeInsert, cfg.PatternEdgeInserts)
	addSteps(PatternEdgeDelete, cfg.PatternEdgeDeletes)
	addSteps(PatternNodeInsert, cfg.PatternNodeInserts)
	addSteps(PatternNodeDelete, cfg.PatternNodeDeletes)
	rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })

	for _, st := range steps {
		var u Update
		ok := false
		switch st.kind {
		case DataEdgeInsert:
			u, ok = genDataEdgeInsert(rng, gw)
		case DataEdgeDelete:
			u, ok = genDataEdgeDelete(rng, gw)
		case DataNodeInsert:
			label := labelUniverse[rng.Intn(len(labelUniverse))]
			id := gw.AddNode(label)
			u, ok = Update{Kind: DataNodeInsert, Node: id, Labels: []string{label}}, true
		case DataNodeDelete:
			u, ok = genDataNodeDelete(rng, gw)
		case PatternEdgeInsert:
			u, ok = genPatternEdgeInsert(rng, pw, cfg)
		case PatternEdgeDelete:
			u, ok = genPatternEdgeDelete(rng, pw)
		case PatternNodeInsert:
			label := labelUniverse[rng.Intn(len(labelUniverse))]
			id := pw.AddNode(label)
			u, ok = Update{Kind: PatternNodeInsert, Node: id, Labels: []string{label}}, true
		case PatternNodeDelete:
			u, ok = genPatternNodeDelete(rng, pw)
		}
		if !ok {
			continue
		}
		if u.Kind.IsData() {
			b.D = append(b.D, u)
		} else {
			b.P = append(b.P, u)
		}
	}
	return b
}

func liveNodes(g *graph.Graph) []uint32 {
	out := make([]uint32, 0, g.NumNodes())
	g.Nodes(func(id uint32) { out = append(out, id) })
	return out
}

func genDataEdgeInsert(rng *rand.Rand, g *graph.Graph) (Update, bool) {
	live := liveNodes(g)
	if len(live) < 2 {
		return Update{}, false
	}
	for try := 0; try < 64; try++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		if g.AddEdge(u, v) {
			return Update{Kind: DataEdgeInsert, From: u, To: v}, true
		}
	}
	return Update{}, false
}

func genDataEdgeDelete(rng *rand.Rand, g *graph.Graph) (Update, bool) {
	live := liveNodes(g)
	for try := 0; try < 64; try++ {
		u := live[rng.Intn(len(live))]
		out := g.Out(u)
		if len(out) == 0 {
			continue
		}
		v := out[rng.Intn(len(out))]
		g.RemoveEdge(u, v)
		return Update{Kind: DataEdgeDelete, From: u, To: v}, true
	}
	return Update{}, false
}

func genDataNodeDelete(rng *rand.Rand, g *graph.Graph) (Update, bool) {
	live := liveNodes(g)
	if len(live) < 3 {
		return Update{}, false
	}
	id := live[rng.Intn(len(live))]
	g.RemoveNode(id)
	return Update{Kind: DataNodeDelete, Node: id}, true
}

func genPatternEdgeInsert(rng *rand.Rand, p *pattern.Graph, cfg GenConfig) (Update, bool) {
	var live []pattern.NodeID
	p.Nodes(func(u pattern.NodeID) { live = append(live, u) })
	if len(live) < 2 {
		return Update{}, false
	}
	for try := 0; try < 64; try++ {
		u := live[rng.Intn(len(live))]
		v := live[rng.Intn(len(live))]
		b := pattern.Bound(cfg.BoundMin + rng.Intn(cfg.BoundMax-cfg.BoundMin+1))
		if p.AddEdge(u, v, b) {
			return Update{Kind: PatternEdgeInsert, From: u, To: v, Bound: b}, true
		}
	}
	return Update{}, false
}

func genPatternEdgeDelete(rng *rand.Rand, p *pattern.Graph) (Update, bool) {
	var edges []pattern.Edge
	p.Edges(func(e pattern.Edge) { edges = append(edges, e) })
	if len(edges) == 0 {
		return Update{}, false
	}
	e := edges[rng.Intn(len(edges))]
	p.RemoveEdge(e.From, e.To)
	return Update{Kind: PatternEdgeDelete, From: e.From, To: e.To}, true
}

func genPatternNodeDelete(rng *rand.Rand, p *pattern.Graph) (Update, bool) {
	var live []pattern.NodeID
	p.Nodes(func(u pattern.NodeID) { live = append(live, u) })
	if len(live) < 3 {
		return Update{}, false // keep the pattern meaningfully sized
	}
	id := live[rng.Intn(len(live))]
	p.RemoveNode(id)
	return Update{Kind: PatternNodeDelete, Node: id}, true
}
