// Package sparse implements the "Hybrid format" distance matrix the
// paper adopts for SLen (§IV-B Remark, citing Bell & Garland, SC'09):
// an ELL block holding up to K entries per row in fixed-width contiguous
// arrays, plus a COO-style overflow for rows denser than K. In social
// graphs most rows hold far fewer finite entries than there are nodes
// (many nodes have no in- or out-paths within the hop horizon), so the
// hybrid layout stores 2·|ND|·K cells instead of |ND|².
//
// The matrix is mutable: the incremental SLen maintenance both patches
// single cells (edge insertions) and replaces whole rows (bounded
// re-BFS after deletions).
package sparse

import "math"

// Dist is a shortest-path length in hops. Inf means "no path within the
// engine's hop horizon" (rendered ∞ in the paper's tables).
type Dist = uint16

// Inf is the infinite distance.
const Inf Dist = math.MaxUint16

// Col identifies a matrix column (a node id).
type Col = uint32

// noCol pads unused ELL slots.
const noCol Col = math.MaxUint32

type entry struct {
	c Col
	d Dist
}

// Matrix is a row-sparse distance matrix in hybrid ELL+COO layout.
// Construct with NewMatrix; the zero value is unusable.
type Matrix struct {
	rows int
	k    int    // ELL width
	cols []Col  // rows×k, ascending within a row, noCol-padded
	vals []Dist // rows×k
	ovf  [][]entry
	nnz  int
}

// NewMatrix returns a rows×(unbounded) matrix whose ELL block holds
// ellWidth entries per row. ellWidth < 1 is raised to 1.
func NewMatrix(rows, ellWidth int) *Matrix {
	if ellWidth < 1 {
		ellWidth = 1
	}
	m := &Matrix{rows: rows, k: ellWidth}
	m.cols = make([]Col, rows*ellWidth)
	m.vals = make([]Dist, rows*ellWidth)
	for i := range m.cols {
		m.cols[i] = noCol
	}
	m.ovf = make([][]entry, rows)
	return m
}

// Rows reports the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// ELLWidth reports the configured ELL width K.
func (m *Matrix) ELLWidth() int { return m.k }

// Nonzeros reports the number of stored (finite) entries.
func (m *Matrix) Nonzeros() int { return m.nnz }

// Get returns the entry at (r, c), or Inf when absent/out of range.
func (m *Matrix) Get(r Col, c Col) Dist {
	if int(r) >= m.rows {
		return Inf
	}
	base := int(r) * m.k
	row := m.cols[base : base+m.k]
	// ELL rows are short; linear scan beats binary search in practice.
	for i, rc := range row {
		if rc == c {
			return m.vals[base+i]
		}
		if rc > c { // sorted, padded with noCol at the end
			break
		}
	}
	for _, e := range m.ovf[r] {
		if e.c == c {
			return e.d
		}
		if e.c > c {
			break
		}
	}
	return Inf
}

// Set stores d at (r, c); d == Inf deletes the entry. Rows beyond the
// current bound are an error kept silent by design: callers grow first
// via GrowTo (enforced by a panic to surface programming errors).
func (m *Matrix) Set(r Col, c Col, d Dist) {
	if int(r) >= m.rows {
		panic("sparse: Set beyond rows; call GrowTo first")
	}
	base := int(r) * m.k
	row := m.cols[base : base+m.k]
	// Try ELL block first.
	for i, rc := range row {
		if rc == c {
			if d == Inf {
				m.removeELL(r, i)
			} else {
				m.vals[base+i] = d
			}
			return
		}
		if rc > c {
			if d == Inf {
				m.removeOvf(r, c)
				return
			}
			// Insert into ELL at i; last ELL entry (if any) spills to overflow.
			last := row[m.k-1]
			lastV := m.vals[base+m.k-1]
			copy(m.cols[base+i+1:base+m.k], m.cols[base+i:base+m.k-1])
			copy(m.vals[base+i+1:base+m.k], m.vals[base+i:base+m.k-1])
			m.cols[base+i] = c
			m.vals[base+i] = d
			m.nnz++
			if last != noCol {
				m.insertOvf(r, entry{last, lastV})
				m.nnz-- // insertOvf counted it again
			}
			return
		}
	}
	// Column is beyond every ELL entry: pad slot or overflow.
	if d == Inf {
		m.removeOvf(r, c)
		return
	}
	if row[m.k-1] == noCol {
		// Find first pad slot.
		for i, rc := range row {
			if rc == noCol {
				m.cols[base+i] = c
				m.vals[base+i] = d
				m.nnz++
				return
			}
		}
	}
	m.insertOvf(r, entry{c, d})
}

func (m *Matrix) removeELL(r Col, i int) {
	base := int(r) * m.k
	copy(m.cols[base+i:base+m.k-1], m.cols[base+i+1:base+m.k])
	copy(m.vals[base+i:base+m.k-1], m.vals[base+i+1:base+m.k])
	m.cols[base+m.k-1] = noCol
	m.nnz--
	// Promote the smallest overflow entry into the freed ELL slot to keep
	// "ELL before overflow" ordering.
	if ov := m.ovf[r]; len(ov) > 0 {
		m.cols[base+m.k-1] = ov[0].c
		m.vals[base+m.k-1] = ov[0].d
		m.ovf[r] = ov[1:]
	}
}

func (m *Matrix) removeOvf(r Col, c Col) {
	ov := m.ovf[r]
	for i, e := range ov {
		if e.c == c {
			m.ovf[r] = append(ov[:i], ov[i+1:]...)
			m.nnz--
			return
		}
		if e.c > c {
			return
		}
	}
}

func (m *Matrix) insertOvf(r Col, e entry) {
	ov := m.ovf[r]
	i := 0
	for i < len(ov) && ov[i].c < e.c {
		i++
	}
	if i < len(ov) && ov[i].c == e.c {
		ov[i].d = e.d
		return
	}
	ov = append(ov, entry{})
	copy(ov[i+1:], ov[i:])
	ov[i] = e
	m.ovf[r] = ov
	m.nnz++
}

// SetRow replaces row r with the given parallel column/value slices.
// cols must be ascending and duplicate-free; vals must be finite.
// The slices are copied.
func (m *Matrix) SetRow(r Col, cols []Col, vals []Dist) {
	if int(r) >= m.rows {
		panic("sparse: SetRow beyond rows; call GrowTo first")
	}
	m.ClearRow(r)
	base := int(r) * m.k
	n := len(cols)
	inELL := n
	if inELL > m.k {
		inELL = m.k
	}
	copy(m.cols[base:base+inELL], cols[:inELL])
	copy(m.vals[base:base+inELL], vals[:inELL])
	if n > m.k {
		ov := make([]entry, n-m.k)
		for i := m.k; i < n; i++ {
			ov[i-m.k] = entry{cols[i], vals[i]}
		}
		m.ovf[r] = ov
	}
	m.nnz += n
}

// ClearRow removes every entry of row r.
func (m *Matrix) ClearRow(r Col) {
	if int(r) >= m.rows {
		return
	}
	base := int(r) * m.k
	for i := 0; i < m.k; i++ {
		if m.cols[base+i] == noCol {
			break
		}
		m.cols[base+i] = noCol
		m.nnz--
	}
	m.nnz -= len(m.ovf[r])
	m.ovf[r] = nil
}

// Row calls fn for every finite entry of row r in ascending column order;
// fn returning false stops early.
func (m *Matrix) Row(r Col, fn func(c Col, d Dist) bool) {
	if int(r) >= m.rows {
		return
	}
	base := int(r) * m.k
	for i := 0; i < m.k; i++ {
		c := m.cols[base+i]
		if c == noCol {
			break
		}
		if !fn(c, m.vals[base+i]) {
			return
		}
	}
	for _, e := range m.ovf[r] {
		if !fn(e.c, e.d) {
			return
		}
	}
}

// RowLen reports the number of finite entries in row r.
func (m *Matrix) RowLen(r Col) int {
	if int(r) >= m.rows {
		return 0
	}
	n := 0
	base := int(r) * m.k
	for i := 0; i < m.k; i++ {
		if m.cols[base+i] == noCol {
			break
		}
		n++
	}
	return n + len(m.ovf[r])
}

// GrowTo extends the matrix to at least rows rows (no-op if smaller).
func (m *Matrix) GrowTo(rows int) {
	if rows <= m.rows {
		return
	}
	extra := (rows - m.rows) * m.k
	for i := 0; i < extra; i++ {
		m.cols = append(m.cols, noCol)
		m.vals = append(m.vals, 0)
	}
	for len(m.ovf) < rows {
		m.ovf = append(m.ovf, nil)
	}
	m.rows = rows
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{
		rows: m.rows,
		k:    m.k,
		cols: append([]Col(nil), m.cols...),
		vals: append([]Dist(nil), m.vals...),
		ovf:  make([][]entry, len(m.ovf)),
		nnz:  m.nnz,
	}
	for i, ov := range m.ovf {
		if len(ov) > 0 {
			c.ovf[i] = append([]entry(nil), ov...)
		}
	}
	return c
}

// OverflowEntries reports how many entries live outside the ELL block —
// the tuning signal for ELL width selection.
func (m *Matrix) OverflowEntries() int {
	n := 0
	for _, ov := range m.ovf {
		n += len(ov)
	}
	return n
}
