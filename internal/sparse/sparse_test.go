package sparse

import (
	"math/rand"
	"testing"
)

func TestSetGetBasic(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(0, 5, 7)
	m.Set(0, 2, 1)
	m.Set(1, 0, 3)
	if got := m.Get(0, 5); got != 7 {
		t.Fatalf("Get(0,5) = %d, want 7", got)
	}
	if got := m.Get(0, 2); got != 1 {
		t.Fatalf("Get(0,2) = %d, want 1", got)
	}
	if got := m.Get(0, 3); got != Inf {
		t.Fatalf("Get(0,3) = %d, want Inf", got)
	}
	if got := m.Get(9, 0); got != Inf {
		t.Fatalf("out-of-range Get = %d, want Inf", got)
	}
	if m.Nonzeros() != 3 {
		t.Fatalf("Nonzeros = %d, want 3", m.Nonzeros())
	}
}

func TestOverflowSpill(t *testing.T) {
	m := NewMatrix(1, 2)
	// Fill beyond ELL width 2: entries 10,20,30,5 (inserting 5 pushes into ELL
	// and spills the ELL tail to overflow).
	m.Set(0, 10, 1)
	m.Set(0, 20, 2)
	m.Set(0, 30, 3)
	m.Set(0, 5, 4)
	want := map[Col]Dist{5: 4, 10: 1, 20: 2, 30: 3}
	for c, d := range want {
		if got := m.Get(0, c); got != d {
			t.Fatalf("Get(0,%d) = %d, want %d", c, got, d)
		}
	}
	if m.OverflowEntries() != 2 {
		t.Fatalf("OverflowEntries = %d, want 2", m.OverflowEntries())
	}
	// Row iteration must be ascending across ELL + overflow.
	var cols []Col
	m.Row(0, func(c Col, d Dist) bool {
		cols = append(cols, c)
		return true
	})
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Fatalf("Row not ascending: %v", cols)
		}
	}
	if len(cols) != 4 || m.RowLen(0) != 4 {
		t.Fatalf("row has %d cols, RowLen %d, want 4", len(cols), m.RowLen(0))
	}
}

func TestSetInfDeletes(t *testing.T) {
	m := NewMatrix(1, 2)
	for _, c := range []Col{1, 2, 3, 4} {
		m.Set(0, c, Dist(c))
	}
	m.Set(0, 2, Inf) // ELL deletion promotes overflow
	if m.Get(0, 2) != Inf {
		t.Fatal("deletion failed")
	}
	if m.Nonzeros() != 3 || m.RowLen(0) != 3 {
		t.Fatalf("nnz=%d rowlen=%d, want 3", m.Nonzeros(), m.RowLen(0))
	}
	m.Set(0, 4, Inf) // may live in ELL after promotion or in overflow
	if m.Get(0, 4) != Inf || m.Nonzeros() != 2 {
		t.Fatal("second deletion failed")
	}
	m.Set(0, 99, Inf) // deleting absent entry is a no-op
	if m.Nonzeros() != 2 {
		t.Fatal("deleting absent entry changed nnz")
	}
}

func TestUpdateInPlace(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 7, 3)
	m.Set(0, 9, 5) // overflow
	m.Set(0, 7, 4) // ELL update
	m.Set(0, 9, 6) // overflow update
	if m.Get(0, 7) != 4 || m.Get(0, 9) != 6 {
		t.Fatal("in-place update failed")
	}
	if m.Nonzeros() != 2 {
		t.Fatalf("nnz = %d, want 2", m.Nonzeros())
	}
}

func TestSetRowAndClearRow(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 9)
	m.SetRow(0, []Col{2, 4, 6, 8}, []Dist{1, 2, 3, 4})
	if m.Get(0, 1) != Inf {
		t.Fatal("SetRow should replace the old row")
	}
	if m.RowLen(0) != 4 || m.Nonzeros() != 4 {
		t.Fatalf("RowLen=%d nnz=%d, want 4,4", m.RowLen(0), m.Nonzeros())
	}
	m.ClearRow(0)
	if m.RowLen(0) != 0 || m.Nonzeros() != 0 {
		t.Fatal("ClearRow incomplete")
	}
	m.ClearRow(5) // out of range: no-op
}

func TestGrowTo(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 3, 1)
	m.GrowTo(4)
	if m.Rows() != 4 {
		t.Fatalf("Rows = %d, want 4", m.Rows())
	}
	m.Set(3, 1, 2)
	if m.Get(3, 1) != 2 || m.Get(0, 3) != 1 {
		t.Fatal("grow corrupted data")
	}
	m.GrowTo(2) // shrink requests are ignored
	if m.Rows() != 4 {
		t.Fatal("GrowTo should never shrink")
	}
}

func TestClone(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	c := m.Clone()
	c.Set(0, 1, 9)
	c.Set(0, 3, 3)
	if m.Get(0, 1) != 1 || m.Get(0, 3) != Inf {
		t.Fatal("clone mutation leaked")
	}
	if c.Get(0, 1) != 9 || c.Get(0, 2) != 2 {
		t.Fatal("clone content wrong")
	}
}

func TestRowEarlyStop(t *testing.T) {
	m := NewMatrix(1, 1)
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	m.Set(0, 3, 3)
	n := 0
	m.Row(0, func(Col, Dist) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

// Differential test against a map-of-maps reference model under random
// operations, covering ELL/overflow movement, deletions and row ops.
func TestDifferentialAgainstMap(t *testing.T) {
	for _, ellWidth := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(ellWidth)))
		const rows, colSpace = 8, 32
		m := NewMatrix(rows, ellWidth)
		ref := make(map[Col]map[Col]Dist)
		for i := 0; i < 5000; i++ {
			r := Col(rng.Intn(rows))
			c := Col(rng.Intn(colSpace))
			switch rng.Intn(10) {
			case 0: // clear row
				m.ClearRow(r)
				delete(ref, r)
			case 1: // set row
				nc := rng.Intn(6)
				cols := make([]Col, 0, nc)
				seen := map[Col]bool{}
				for len(cols) < nc {
					x := Col(rng.Intn(colSpace))
					if !seen[x] {
						seen[x] = true
						cols = append(cols, x)
					}
				}
				sortCols(cols)
				vals := make([]Dist, len(cols))
				rr := make(map[Col]Dist)
				for j := range cols {
					vals[j] = Dist(rng.Intn(100))
					rr[cols[j]] = vals[j]
				}
				m.SetRow(r, cols, vals)
				ref[r] = rr
			case 2, 3: // delete
				m.Set(r, c, Inf)
				if ref[r] != nil {
					delete(ref[r], c)
				}
			default: // set
				d := Dist(rng.Intn(100))
				m.Set(r, c, d)
				if ref[r] == nil {
					ref[r] = make(map[Col]Dist)
				}
				ref[r][c] = d
			}
		}
		// Full comparison.
		nnz := 0
		for r := Col(0); int(r) < rows; r++ {
			for c := Col(0); c < colSpace; c++ {
				want := Inf
				if ref[r] != nil {
					if d, ok := ref[r][c]; ok {
						want = d
					}
				}
				if got := m.Get(r, c); got != want {
					t.Fatalf("ellWidth=%d: Get(%d,%d) = %d, want %d", ellWidth, r, c, got, want)
				}
			}
			nnz += len(ref[r])
			if m.RowLen(r) != len(ref[r]) {
				t.Fatalf("ellWidth=%d: RowLen(%d) = %d, want %d", ellWidth, r, m.RowLen(r), len(ref[r]))
			}
		}
		if m.Nonzeros() != nnz {
			t.Fatalf("ellWidth=%d: Nonzeros = %d, want %d", ellWidth, m.Nonzeros(), nnz)
		}
	}
}

func sortCols(cols []Col) {
	for i := 1; i < len(cols); i++ {
		for j := i; j > 0 && cols[j-1] > cols[j]; j-- {
			cols[j-1], cols[j] = cols[j], cols[j-1]
		}
	}
}

func BenchmarkGetELLHit(b *testing.B) {
	m := NewMatrix(1024, 8)
	rng := rand.New(rand.NewSource(1))
	for r := 0; r < 1024; r++ {
		for j := 0; j < 8; j++ {
			m.Set(Col(r), Col(rng.Intn(64)), Dist(rng.Intn(6)))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get(Col(i&1023), Col(i&63))
	}
}
