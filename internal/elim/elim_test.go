package elim

import (
	"testing"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/paperex"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// setupExample2 assembles the full Example 2 state: data graph, the
// Fig. 2(c) pattern, exact SLen engine, IQuery match, and the four
// updates UP1, UP2, UD1, UD2.
func setupExample2(t *testing.T) (*simulation.Match, *shortest.Engine, []updates.Update, []updates.Update, map[string]uint32, map[string]uint32) {
	t.Helper()
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := simulation.Run(p, g, e)
	ups := []updates.Update{
		{Kind: updates.PatternEdgeInsert, From: pids["PM"], To: pids["TE"], Bound: paperex.UP1Bound},
		{Kind: updates.PatternEdgeInsert, From: pids["S"], To: pids["TE"], Bound: paperex.UP2Bound},
	}
	uds := []updates.Update{
		{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["TE2"]},
		{Kind: updates.DataEdgeInsert, From: ids["DB1"], To: ids["S1"]},
	}
	pidsU := map[string]uint32{}
	for k, v := range pids {
		pidsU[k] = uint32(v)
	}
	return m, e, ups, uds, ids, pidsU
}

// TestPaperTableIV reproduces Table IV: Can_RN(UP1) = {PM2, TE2} and
// Can_RN(UP2) = {TE2} (Example 7).
func TestPaperTableIV(t *testing.T) {
	m, e, ups, _, ids, _ := setupExample2(t)
	g, p := e.Graph(), m.Pattern()
	infos := CanSets(ups, m, p, g, e)
	if want := nodeset.New(ids["PM2"], ids["TE2"]); !infos[0].Set.Equal(want) {
		t.Errorf("Can_RN(UP1) = %v, want %v", infos[0].Set, want)
	}
	if want := nodeset.New(ids["TE2"]); !infos[1].Set.Equal(want) {
		t.Errorf("Can_RN(UP2) = %v, want %v", infos[1].Set, want)
	}
	// Type I elimination of Example 7: UP1 ⊒ UP2.
	if !infos[0].Set.Covers(infos[1].Set) {
		t.Error("Can_RN(UP1) must cover Can_RN(UP2)")
	}
}

// TestPaperTableVII reproduces Table VII via DER-II previews:
// Aff_N(UD1) = all eight nodes, Aff_N(UD2) = {PM1, SE2, S1, TE1, DB1}.
func TestPaperTableVII(t *testing.T) {
	m, e, _, uds, ids, _ := setupExample2(t)
	infos := AffSetsPreview(uds, e.Graph(), e)
	if want := nodeset.New(0, 1, 2, 3, 4, 5, 6, 7); !infos[0].Set.Equal(want) {
		t.Errorf("Aff_N(UD1) = %v, want %v", infos[0].Set, want)
	}
	want2 := nodeset.New(ids["PM1"], ids["SE2"], ids["S1"], ids["TE1"], ids["DB1"])
	if !infos[1].Set.Equal(want2) {
		t.Errorf("Aff_N(UD2) = %v, want %v", infos[1].Set, want2)
	}
	// Type II elimination of Example 8: UD1 ⊒ UD2.
	if !infos[0].Set.Covers(infos[1].Set) {
		t.Error("Aff_N(UD1) must cover Aff_N(UD2)")
	}
	_ = m
}

// TestPaperExample9CrossElimination: UD1 ⇔ UP1 — after inserting
// e(SE1,TE2), AFF(PM2,TE2) = (∞,2) satisfies UP1's bound 2, so the pair
// of updates cancels.
func TestPaperExample9CrossElimination(t *testing.T) {
	m, e, ups, uds, ids, _ := setupExample2(t)
	g := e.Graph()
	canInfos := CanSets(ups, m, m.Pattern(), g, e)
	affInfos := AffSetsPreview(uds, g, e)
	// Apply UD1 so the oracle reflects SLen_new.
	g.AddEdge(ids["SE1"], ids["TE2"])
	e.InsertEdge(ids["SE1"], ids["TE2"])
	if !CrossEliminates(canInfos[0], affInfos[0], m, e) {
		t.Error("UD1 must eliminate UP1 (Example 9)")
	}
	// UD2 does not cover Can_RN(UP1) (its Aff misses PM2), so no cross
	// elimination.
	if CrossEliminates(canInfos[0], affInfos[1], m, e) {
		t.Error("UD2 must not eliminate UP1")
	}
}

func TestCrossEliminatesKindGate(t *testing.T) {
	m, e, ups, _, ids, _ := setupExample2(t)
	canInfos := CanSets(ups, m, m.Pattern(), e.Graph(), e)
	del := Info{U: updates.Update{Kind: updates.DataEdgeDelete, From: ids["SE1"], To: ids["S1"]},
		Set: nodeset.New(0, 1, 2, 3, 4, 5, 6, 7)}
	if CrossEliminates(canInfos[0], del, m, e) {
		t.Error("a data deletion must not cross-eliminate a pattern insertion")
	}
	patInfo := Info{U: updates.Update{Kind: updates.PatternEdgeDelete}}
	if CrossEliminates(patInfo, del, m, e) {
		t.Error("only pattern edge insertions participate in DER-III")
	}
}

// TestCanSetRelaxation: deleting PM→S(4) can only re-admit PM-labelled
// nodes that currently fail it; in the running example every PM already
// matches, so the set is empty. Tightening the graph first creates a
// genuine candidate.
func TestCanSetRelaxation(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := simulation.Run(p, g, e)
	del := updates.Update{Kind: updates.PatternEdgeDelete, From: pids["PM"], To: pids["S"]}
	infos := CanSets([]updates.Update{del}, m, p, g, e)
	if !infos[0].Set.Empty() {
		t.Errorf("Can_AN = %v, want empty (all PMs match)", infos[0].Set)
	}
	// Cut S1 off from PM2's reach: remove SE1→S1 so PM2's path to S1
	// lengthens beyond 4 — PM2 leaves the match, then deleting PM→S(4)
	// would re-admit it.
	g.RemoveEdge(ids["SE1"], ids["S1"])
	e.DeleteEdge(ids["SE1"], ids["S1"])
	m2 := simulation.Run(p, g, e)
	if m2.SimulationSet(pids["PM"]).Contains(ids["PM2"]) {
		t.Skip("graph edit did not exclude PM2; fixture drifted")
	}
	infos2 := CanSets([]updates.Update{del}, m2, p, g, e)
	if !infos2[0].Set.Contains(ids["PM2"]) {
		t.Errorf("Can_AN = %v, want PM2 as re-admission candidate", infos2[0].Set)
	}
}

func TestCanSetNodeDelete(t *testing.T) {
	m, e, _, _, ids, pids := setupExample2(t)
	del := updates.Update{Kind: updates.PatternNodeDelete, Node: pids["TE"]}
	infos := CanSets([]updates.Update{del}, m, m.Pattern(), e.Graph(), e)
	// Deleting the TE pattern node wipes its matches.
	for _, n := range []string{"TE1", "TE2"} {
		if !infos[0].Set.Contains(ids[n]) {
			t.Errorf("Can(UP delete TE) missing %s: %v", n, infos[0].Set)
		}
	}
}

func TestCanSetNodeInsert(t *testing.T) {
	m, e, _, _, _, _ := setupExample2(t)
	ins := updates.Update{Kind: updates.PatternNodeInsert, Node: 4, Labels: []string{"SE"}}
	infos := CanSets([]updates.Update{ins}, m, m.Pattern(), e.Graph(), e)
	se, _ := e.Graph().Labels().Lookup("SE")
	want := nodeset.FromSorted(e.Graph().NodesWithLabel(se))
	if !infos[0].Set.Equal(want) {
		t.Errorf("Can(insert SE node) = %v, want %v", infos[0].Set, want)
	}
	// Unknown label yields an empty set.
	ins2 := updates.Update{Kind: updates.PatternNodeInsert, Node: 5, Labels: []string{"CEO"}}
	infos2 := CanSets([]updates.Update{ins2}, m, m.Pattern(), e.Graph(), e)
	if !infos2[0].Set.Empty() {
		t.Errorf("Can(insert CEO node) = %v, want empty", infos2[0].Set)
	}
}

// TestRemovalCascade builds a chain pattern where removing one candidate
// drags a dependent along (the Example 7 "check connected nodes" step).
func TestRemovalCascade(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, _ := paperex.PatternFig2(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := simulation.Run(p, g, e)
	// Insert SE→S with bound 1: SE1 keeps S1 at distance 1, SE2's
	// shortest path to S1 is 3 → SE2 is a candidate; PM2 depends on SE1
	// (distance 1) and SE2, PM1 depends on SE2 (distance 1) and SE1 (2
	// ≤ 3): removing SE2 leaves both PMs supported by SE1, so the
	// cascade stops at SE2.
	pids := map[string]uint32{}
	p.Nodes(func(u uint32) { pids[p.Name(u)] = u })
	up := updates.Update{Kind: updates.PatternEdgeInsert, From: pids["SE"], To: pids["S"], Bound: 1}
	infos := CanSets([]updates.Update{up}, m, p, g, e)
	if !infos[0].Set.Contains(3) { // SE2 has id 3
		t.Fatalf("Can_RN = %v, want SE2 (id 3) present", infos[0].Set)
	}
}

func TestAffSetsFromApplication(t *testing.T) {
	_, _, _, uds, _, _ := setupExample2(t)
	sets := []nodeset.Set{nodeset.New(1, 2), nodeset.New(3)}
	infos := AffSetsFromApplication(uds, sets)
	if len(infos) != 2 || !infos[0].Set.Equal(sets[0]) || infos[1].Seq != 1 {
		t.Fatalf("AffSetsFromApplication wrong: %+v", infos)
	}
}
