// Package elim implements §IV of the paper: detection of the three
// elimination relationship types between updates.
//
//   - Type I (DER-I, Algorithm 1): candidate-node sets Can_N(UPi) for
//     pattern updates; UPa ⊒ UPb when Can_N(UPa) ⊇ Can_N(UPb).
//   - Type II (DER-II, Algorithm 2): affected-node sets Aff_N(UDi) for
//     data updates; UDa ⊒ UDb when Aff_N(UDa) ⊇ Aff_N(UDb). The sets come
//     either from engine previews (each update against the original SLen,
//     order-independent per Theorems 1–2 — how the EH-GPNM baseline works)
//     or from the sequential application change log (how UA-GPNM fuses
//     detection with SLen maintenance, mirroring Algorithm 2's in-place
//     SLen_new update).
//   - Type III (DER-III, Algorithm 3): a data-edge insertion UDi
//     eliminates a pattern-edge insertion UPi when Aff_N(UDi) covers
//     Can_N(UPi) and every candidate pair satisfies the inserted bound
//     under the updated SLen — the pair of updates cancels out.
//
// The sets feed the EH-Tree (internal/ehtree) and the golden tests
// against the paper's Tables IV and VII.
package elim

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// Info pairs one update with its elimination node set: Can_N for pattern
// updates (DER-I), Aff_N for data updates (DER-II).
type Info struct {
	Seq int // position within its batch side (ΔGP or ΔGD)
	U   updates.Update
	Set nodeset.Set
}

// clampBound converts a pattern bound to hops the oracle can answer,
// clamping to the horizon for capped oracles (callers arrange
// EnsureHorizon beforehand, so clamping is a no-op in the solvers).
func clampBound(b pattern.Bound, o shortest.Oracle) int {
	k := int(b)
	if b.IsStar() {
		if o.Exact() {
			return int(shortest.Inf) - 1
		}
		return o.Horizon()
	}
	if !o.Exact() && k > o.Horizon() {
		k = o.Horizon()
	}
	return k
}

// hasSupportIn reports whether v reaches some node of set within k hops.
func hasSupportIn(o shortest.Oracle, v uint32, k int, set nodeset.Set) bool {
	found := false
	o.ForwardBall(v, k, func(w uint32, _ shortest.Dist) bool {
		if set.Contains(w) {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasReverseSupportIn reports whether some node of set reaches v within k.
func hasReverseSupportIn(o shortest.Oracle, v uint32, k int, set nodeset.Set) bool {
	found := false
	o.ReverseBall(v, k, func(w uint32, _ shortest.Dist) bool {
		if set.Contains(w) {
			found = true
			return false
		}
		return true
	})
	return found
}

// CanSets runs DER-I: it computes Can_N(UPi) for every pattern update,
// evaluated against the original match m (the IQuery result), pattern p
// and SLen oracle o — all in their pre-update state.
func CanSets(ps []updates.Update, m *simulation.Match, p *pattern.Graph, g *graph.Graph, o shortest.Oracle) []Info {
	infos := make([]Info, len(ps))
	for i, u := range ps {
		infos[i] = Info{Seq: i, U: u, Set: canSet(u, m, p, g, o)}
	}
	return infos
}

func canSet(u updates.Update, m *simulation.Match, p *pattern.Graph, g *graph.Graph, o shortest.Oracle) nodeset.Set {
	switch u.Kind {
	case updates.PatternEdgeInsert:
		if !p.Alive(u.From) || !p.Alive(u.To) {
			return nil // endpoints created within this batch: no basis to detect on
		}
		return canRNInsert(u, m, p, o)
	case updates.PatternEdgeDelete:
		if !p.Alive(u.From) || !p.Alive(u.To) {
			return nil
		}
		b, ok := p.EdgeBound(u.From, u.To)
		if !ok {
			return nil
		}
		return canANForRelaxation(u.From, u.To, b, m, p, g, o)
	case updates.PatternNodeInsert:
		if len(u.Labels) == 0 {
			return nil
		}
		if l, ok := g.Labels().Lookup(u.Labels[0]); ok {
			return nodeset.FromSorted(g.NodesWithLabel(l)).Clone()
		}
		return nil
	case updates.PatternNodeDelete:
		if !p.Alive(u.Node) {
			return nil
		}
		set := m.SimulationSet(u.Node).Clone()
		p.In(u.Node, func(src pattern.NodeID, b pattern.Bound) {
			set = set.Union(canANForRelaxation(src, u.Node, b, m, p, g, o))
		})
		return set
	default:
		panic("elim: canSet on data update " + u.String())
	}
}

// canRNInsert computes Can_RN for an inserted pattern edge (u,u',k):
// matches of u with no match of u' within k, matches of u' unreachable
// within k from any match of u (Example 7's semantics, reproducing
// Table IV), closed under the removal cascade ("check if the nodes
// connected to the candidates can be set as candidate nodes").
func canRNInsert(up updates.Update, m *simulation.Match, p *pattern.Graph, o shortest.Oracle) nodeset.Set {
	k := clampBound(up.Bound, o)
	srcMatches := m.SimulationSet(up.From)
	dstMatches := m.SimulationSet(up.To)
	var initial []removal
	for _, v := range srcMatches {
		if !hasSupportIn(o, v, k, dstMatches) {
			initial = append(initial, removal{up.From, v})
		}
	}
	for _, v := range dstMatches {
		if !hasReverseSupportIn(o, v, k, srcMatches) {
			initial = append(initial, removal{up.To, v})
		}
	}
	return removalClosure(initial, m, p, o)
}

// canANForRelaxation computes Can_AN when the constraint (src,dst,b)
// disappears: label candidates of src not currently matched that fail
// exactly this constraint (they have no matched dst within b) — the nodes
// with "the possibility to be added" once the edge goes.
func canANForRelaxation(src, dst pattern.NodeID, b pattern.Bound, m *simulation.Match, p *pattern.Graph, g *graph.Graph, o shortest.Oracle) nodeset.Set {
	k := clampBound(b, o)
	matched := m.SimulationSet(src)
	dstMatches := m.SimulationSet(dst)
	var out nodeset.Builder
	for _, v := range g.NodesWithLabel(p.Label(src)) {
		if matched.Contains(v) {
			continue
		}
		if !hasSupportIn(o, v, k, dstMatches) {
			out.Add(v)
		}
	}
	return out.Set()
}

// removal is a hypothetical match removal used by the cascade closure.
type removal struct {
	u pattern.NodeID
	v uint32
}

// removalClosure simulates removing the initial (pattern node, data node)
// pairs from the match and cascading the consequences under the original
// pattern: a predecessor match falls when its last support within the
// bound disappears. It returns the set of data nodes touched.
func removalClosure(initial []removal, m *simulation.Match, p *pattern.Graph, o shortest.Oracle) nodeset.Set {
	if len(initial) == 0 {
		return nil
	}
	// Working copy of the match as bitsets.
	work := make(map[pattern.NodeID]*nodeset.Bits)
	p.Nodes(func(u pattern.NodeID) {
		bits := nodeset.NewBits(0)
		bits.AddSet(m.SimulationSet(u))
		work[u] = bits
	})
	var touched nodeset.Builder
	queue := append([]removal(nil), initial...)
	for len(queue) > 0 {
		r := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		set := work[r.u]
		if set == nil || !set.Remove(r.v) {
			continue
		}
		touched.Add(r.v)
		// Predecessors that relied on r.v may fall next.
		p.In(r.u, func(prev pattern.NodeID, b pattern.Bound) {
			k := clampBound(b, o)
			prevSet := work[prev]
			if prevSet == nil {
				return
			}
			o.ReverseBall(r.v, k, func(x uint32, _ shortest.Dist) bool {
				if !prevSet.Contains(x) {
					return true
				}
				// Does x still have support for (prev, r.u)?
				still := false
				o.ForwardBall(x, k, func(w uint32, _ shortest.Dist) bool {
					if set.Contains(w) {
						still = true
						return false
					}
					return true
				})
				if !still {
					queue = append(queue, removal{prev, x})
				}
				return true
			})
		})
	}
	return touched.Set()
}

// AffSetsPreview runs DER-II the way the EH-GPNM baseline does: each data
// update previewed in isolation against the original SLen (no mutation).
func AffSetsPreview(ds []updates.Update, g *graph.Graph, e shortest.DistanceEngine) []Info {
	infos := make([]Info, len(ds))
	for i, u := range ds {
		infos[i] = Info{Seq: i, U: u, Set: updates.PreviewData(u, g, e)}
	}
	return infos
}

// AffSetsFromApplication wraps per-update affected sets recorded while a
// batch was applied (UA-GPNM's fused detection, Algorithm 2's in-place
// SLen_new maintenance).
func AffSetsFromApplication(ds []updates.Update, affected []nodeset.Set) []Info {
	infos := make([]Info, len(ds))
	for i, u := range ds {
		infos[i] = Info{Seq: i, U: u, Set: affected[i]}
	}
	return infos
}

// CrossEliminates runs the DER-III check: data update ud eliminates
// pattern update up iff ud's affected nodes cover up's candidates and
// every candidate pair satisfies the inserted bound under the updated
// SLen oracle o (pass the post-update engine). Only a data-side
// insertion can rescue a pattern-side tightening, so other kind pairs
// report false; an empty candidate set is trivially eliminated.
func CrossEliminates(up, ud Info, m *simulation.Match, o shortest.Oracle) bool {
	if up.U.Kind != updates.PatternEdgeInsert {
		return false
	}
	if ud.U.Kind != updates.DataEdgeInsert && ud.U.Kind != updates.DataNodeInsert {
		return false
	}
	if !m.Pattern().Alive(up.U.From) || !m.Pattern().Alive(up.U.To) {
		return false // endpoints created within this batch: nothing to cancel
	}
	if !ud.Set.Covers(up.Set) {
		return false
	}
	k := clampBound(up.U.Bound, o)
	srcMatches := m.SimulationSet(up.U.From)
	dstMatches := m.SimulationSet(up.U.To)
	for _, v := range srcMatches {
		if !hasSupportIn(o, v, k, dstMatches) {
			return false
		}
	}
	for _, v := range dstMatches {
		if !hasReverseSupportIn(o, v, k, srcMatches) {
			return false
		}
	}
	return true
}
