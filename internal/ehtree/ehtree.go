// Package ehtree implements the Elimination Hierarchy Tree of §IV-C: an
// index over the updates of one query batch recording which update
// eliminates which. Each tree node is one update together with its
// candidate/affected node set; a node hangs below any update whose set
// covers its own (same-graph elimination, Types I and II) or — for a
// pattern update below a data update — below an update that cancels it
// (cross-graph elimination, Type III).
//
// Coverage is not total, so the structure is a forest; the paper's
// strategy (a) — "the update with the maximum number of affected or
// candidate nodes is set as the root" — generalises to inserting updates
// in descending set-size order, each attached under the first node
// (depth-first) that covers it. The roots are the uneliminated updates:
// the only ones a solver must run an incremental pass for.
package ehtree

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"uagpnm/internal/elim"
)

// Node is one update in the tree.
type Node struct {
	Info     elim.Info
	Cross    bool // attached by a Type III (cross-graph) elimination
	Parent   *Node
	Children []*Node
}

// Tree is the elimination hierarchy forest for one batch.
type Tree struct {
	Roots []*Node
	size  int
}

// CrossFunc reports whether data update ud eliminates pattern update up
// (Type III). It is supplied by the solver, which owns the match and the
// updated SLen oracle (see elim.CrossEliminates).
type CrossFunc func(up, ud elim.Info) bool

// Build constructs the EH-Tree for one batch: dataInfos carry Aff_N sets
// (DER-II), patternInfos carry Can_N sets (DER-I), and cross implements
// DER-III (nil disables cross-graph elimination — the EH-GPNM baseline).
func Build(dataInfos, patternInfos []elim.Info, cross CrossFunc) *Tree {
	type entry struct {
		info   elim.Info
		isData bool
	}
	entries := make([]entry, 0, len(dataInfos)+len(patternInfos))
	for _, in := range dataInfos {
		entries = append(entries, entry{in, true})
	}
	for _, in := range patternInfos {
		entries = append(entries, entry{in, false})
	}
	// Descending set size; data before pattern at ties (strategy (a) plus
	// the paper's convention of rooting cross-eliminations at the data
	// update); stable on sequence for determinism.
	sort.SliceStable(entries, func(i, j int) bool {
		si, sj := entries[i].info.Set.Len(), entries[j].info.Set.Len()
		if si != sj {
			return si > sj
		}
		if entries[i].isData != entries[j].isData {
			return entries[i].isData
		}
		return false
	})
	t := &Tree{}
	for _, en := range entries {
		t.insert(en.info, en.isData, cross)
	}
	return t
}

// insert attaches one update below the first covering node, or as a new
// root. Same-graph coverage (Types I/II) is preferred over cross-graph
// attachment (Type III), matching the paper's Example 10 where UP2 hangs
// below UP1 even though UD1 would also cancel it.
func (t *Tree) insert(info elim.Info, isData bool, cross CrossFunc) {
	node := &Node{Info: info}
	t.size++
	sameGraph := func(n *Node) bool {
		return n.Info.U.Kind.IsData() == isData && n.Info.Set.Covers(node.Info.Set)
	}
	crossGraph := func(n *Node) bool {
		return cross != nil && !isData && n.Info.U.Kind.IsData() && cross(node.Info, n.Info)
	}
	if parent := t.find(sameGraph); parent != nil {
		node.Parent = parent
		parent.Children = append(parent.Children, node)
		return
	}
	if parent := t.find(crossGraph); parent != nil {
		node.Parent = parent
		node.Cross = true
		parent.Children = append(parent.Children, node)
		return
	}
	t.Roots = append(t.Roots, node)
}

// find returns the most specific node satisfying the predicate — the
// covering node with the smallest set, so nested coverage forms chains
// (UD1 ⊒ UD2 ⊒ UD3 indexes as a three-level path, not a star) — or nil.
func (t *Tree) find(pred func(*Node) bool) *Node {
	var best *Node
	t.Walk(func(n *Node, _ int) {
		if pred(n) && (best == nil || n.Info.Set.Len() < best.Info.Set.Len()) {
			best = n
		}
	})
	return best
}

// Size reports the number of updates indexed.
func (t *Tree) Size() int { return t.size }

// RootInfos returns the uneliminated updates — the per-root node sets a
// solver seeds its incremental passes with.
func (t *Tree) RootInfos() []elim.Info {
	out := make([]elim.Info, len(t.Roots))
	for i, r := range t.Roots {
		out[i] = r.Info
	}
	return out
}

// EliminatedCount reports how many updates were eliminated (non-roots) —
// the |Ue| of the paper's complexity analysis.
func (t *Tree) EliminatedCount() int { return t.size - len(t.Roots) }

// Walk visits every node depth-first, roots in insertion order.
func (t *Tree) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// Depth reports the longest root-to-leaf chain (0 for an empty tree).
func (t *Tree) Depth() int {
	max := 0
	t.Walk(func(_ *Node, d int) {
		if d+1 > max {
			max = d + 1
		}
	})
	return max
}

// String renders the forest with one node per line, indented by depth.
func (t *Tree) String() string {
	var b strings.Builder
	t.Walk(func(n *Node, d int) {
		fmt.Fprintf(&b, "%s%s |set|=%d", strings.Repeat("  ", d), n.Info.U, n.Info.Set.Len())
		if n.Cross {
			b.WriteString(" (cross)")
		}
		b.WriteByte('\n')
	})
	return b.String()
}

// WriteDot emits the forest in Graphviz DOT format.
func (t *Tree) WriteDot(w io.Writer) error {
	var b strings.Builder
	b.WriteString("digraph ehtree {\n  rankdir=TB;\n  node [shape=box];\n")
	id := 0
	names := map[*Node]int{}
	t.Walk(func(n *Node, _ int) {
		names[n] = id
		fmt.Fprintf(&b, "  n%d [label=\"%s\\n|set|=%d\"];\n", id, n.Info.U, n.Info.Set.Len())
		id++
	})
	t.Walk(func(n *Node, _ int) {
		if n.Parent != nil {
			style := ""
			if n.Cross {
				style = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", names[n.Parent], names[n], style)
		}
	})
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
