package ehtree

import (
	"strings"
	"testing"

	"uagpnm/internal/elim"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/paperex"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// TestPaperFig3EHTree reproduces the EH-Tree of Example 10:
//
//	UD1
//	├── UD2      (Type II: Aff(UD1) ⊇ Aff(UD2))
//	└── UP1      (Type III: UD1 ⇔ UP1)
//	    └── UP2  (Type I: Can(UP1) ⊇ Can(UP2))
func TestPaperFig3EHTree(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	e := shortest.NewEngine(g, 0)
	e.Build()
	m := simulation.Run(p, g, e)

	ups := []updates.Update{
		{Kind: updates.PatternEdgeInsert, From: pids["PM"], To: pids["TE"], Bound: paperex.UP1Bound},
		{Kind: updates.PatternEdgeInsert, From: pids["S"], To: pids["TE"], Bound: paperex.UP2Bound},
	}
	uds := []updates.Update{
		{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["TE2"]},
		{Kind: updates.DataEdgeInsert, From: ids["DB1"], To: ids["S1"]},
	}
	canInfos := elim.CanSets(ups, m, p, g, e)
	affInfos := elim.AffSetsPreview(uds, g, e)

	// Apply the data updates so DER-III sees SLen_new.
	g.AddEdge(ids["SE1"], ids["TE2"])
	e.InsertEdge(ids["SE1"], ids["TE2"])
	g.AddEdge(ids["DB1"], ids["S1"])
	e.InsertEdge(ids["DB1"], ids["S1"])

	tree := Build(affInfos, canInfos, func(up, ud elim.Info) bool {
		return elim.CrossEliminates(up, ud, m, e)
	})
	if tree.Size() != 4 {
		t.Fatalf("Size = %d, want 4", tree.Size())
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1 (UD1); tree:\n%s", len(tree.Roots), tree)
	}
	root := tree.Roots[0]
	if root.Info.U.Kind != updates.DataEdgeInsert || root.Info.U.To != ids["TE2"] {
		t.Fatalf("root = %v, want UD1", root.Info.U)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root children = %d, want 2 (UD2, UP1); tree:\n%s", len(root.Children), tree)
	}
	var ud2, up1 *Node
	for _, c := range root.Children {
		if c.Info.U.Kind.IsData() {
			ud2 = c
		} else {
			up1 = c
		}
	}
	if ud2 == nil || ud2.Info.U.To != ids["S1"] || ud2.Cross {
		t.Fatalf("UD2 misplaced: %+v", ud2)
	}
	if up1 == nil || up1.Info.U.Bound != paperex.UP1Bound || !up1.Cross {
		t.Fatalf("UP1 misplaced: %+v", up1)
	}
	if len(up1.Children) != 1 || up1.Children[0].Info.U.Bound != paperex.UP2Bound || up1.Children[0].Cross {
		t.Fatalf("UP2 must hang below UP1 (Type I); tree:\n%s", tree)
	}
	if tree.EliminatedCount() != 3 {
		t.Fatalf("EliminatedCount = %d, want 3", tree.EliminatedCount())
	}
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", tree.Depth())
	}
	roots := tree.RootInfos()
	if len(roots) != 1 || !roots[0].Set.Equal(nodeset.New(0, 1, 2, 3, 4, 5, 6, 7)) {
		t.Fatalf("RootInfos = %+v", roots)
	}
}

func info(kind updates.Kind, seq int, set ...uint32) elim.Info {
	return elim.Info{Seq: seq, U: updates.Update{Kind: kind, From: uint32(seq)}, Set: nodeset.New(set...)}
}

func TestForestWhenNoCoverage(t *testing.T) {
	a := info(updates.DataEdgeInsert, 0, 1, 2)
	b := info(updates.DataEdgeInsert, 1, 3, 4)
	tree := Build([]elim.Info{a, b}, nil, nil)
	if len(tree.Roots) != 2 {
		t.Fatalf("disjoint sets must form a forest, got %d roots", len(tree.Roots))
	}
	if tree.EliminatedCount() != 0 {
		t.Fatal("nothing should be eliminated")
	}
}

func TestLargestBecomesRoot(t *testing.T) {
	small := info(updates.DataEdgeDelete, 0, 1)
	big := info(updates.DataEdgeInsert, 1, 1, 2, 3)
	mid := info(updates.DataEdgeInsert, 2, 1, 2)
	tree := Build([]elim.Info{small, big, mid}, nil, nil)
	if len(tree.Roots) != 1 || tree.Roots[0].Info.Set.Len() != 3 {
		t.Fatalf("largest set must root the tree:\n%s", tree)
	}
	// mid under big, small under mid (nested coverage → chain).
	if tree.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3:\n%s", tree.Depth(), tree)
	}
}

func TestSameGraphOnlyCoverage(t *testing.T) {
	ud := info(updates.DataEdgeInsert, 0, 1, 2, 3)
	up := elim.Info{Seq: 0, U: updates.Update{Kind: updates.PatternEdgeInsert}, Set: nodeset.New(1, 2)}
	// No cross function: the pattern update cannot attach below the data
	// update even though the set is covered.
	tree := Build([]elim.Info{ud}, []elim.Info{up}, nil)
	if len(tree.Roots) != 2 {
		t.Fatalf("without DER-III the UP must stay a root:\n%s", tree)
	}
}

func TestWalkAndString(t *testing.T) {
	a := info(updates.DataEdgeInsert, 0, 1, 2, 3)
	b := info(updates.DataEdgeDelete, 1, 1, 2)
	tree := Build([]elim.Info{a, b}, nil, nil)
	var depths []int
	tree.Walk(func(_ *Node, d int) { depths = append(depths, d) })
	if len(depths) != 2 || depths[0] != 0 || depths[1] != 1 {
		t.Fatalf("Walk depths = %v", depths)
	}
	s := tree.String()
	if !strings.Contains(s, "ΔG+DE") || !strings.Contains(s, "  ΔG-DE") {
		t.Fatalf("String:\n%s", s)
	}
}

func TestWriteDot(t *testing.T) {
	a := info(updates.DataEdgeInsert, 0, 1, 2, 3)
	b := info(updates.DataEdgeDelete, 1, 1)
	tree := Build([]elim.Info{a, b}, nil, nil)
	var sb strings.Builder
	if err := tree.WriteDot(&sb); err != nil {
		t.Fatal(err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph ehtree", "n0 ->", "shape=box"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// TestRootSetsCoverAll: the union of root sets must equal the union of
// all sets — the property the single-pass amendment relies on.
func TestRootSetsCoverAll(t *testing.T) {
	infos := []elim.Info{
		info(updates.DataEdgeInsert, 0, 1, 2, 3, 4),
		info(updates.DataEdgeInsert, 1, 2, 3),
		info(updates.DataEdgeDelete, 2, 5, 6),
		info(updates.DataEdgeDelete, 3, 6),
		info(updates.DataNodeInsert, 4, 9),
	}
	tree := Build(infos, nil, nil)
	var all, roots nodeset.Builder
	for _, in := range infos {
		all.AddAll(in.Set)
	}
	for _, in := range tree.RootInfos() {
		roots.AddAll(in.Set)
	}
	if !roots.Set().Equal(all.Set()) {
		t.Fatalf("root union %v != all union %v", roots.Set(), all.Set())
	}
}

func TestEmptyTree(t *testing.T) {
	tree := Build(nil, nil, nil)
	if tree.Size() != 0 || tree.Depth() != 0 || len(tree.RootInfos()) != 0 {
		t.Fatal("empty tree invariants broken")
	}
}
