// Pattern-set discrimination index: the structure that prunes a batch's
// phase-3 fan from O(registered patterns) to O(affected patterns).
//
// Every registration contributes its pattern.Signature — label set,
// finite bound radius, star flag — keyed by label. When a batch lands,
// one shared reverse BFS from the change log (bounded by the largest
// radius any registration needs) computes, per indexed label, the
// minimum hop distance at which that label occurs near the change;
// a pattern is woken iff one of its labels occurs within its own
// effective radius. This is Beyhl & Giese's generalized-discrimination
// idea collapsed to bounded simulation: updates are routed through a
// label × distance envelope instead of broadcast to every pattern.
//
// Soundness (the conservative contract — over-approximation allowed,
// under-approximation never): simulation.Amend changes a match only by
// (a) pushing a dirty pair, which requires a candidate-set member —
// a node carrying a pattern label — inside the seed closure, or
// (b) dropping a dead old-match node, whose labels are by construction
// pattern labels. The seed closure starts at the change log and grows
// one ReverseBall(maxIn) hop at a time, but only through nodes that
// carry some pattern label — so the FIRST step beyond the seeds
// already needs a pattern-labeled node within maxIn (= the signature's
// effective radius) of the change log. If the per-label BFS finds no
// signature label within that radius, the closure equals the bare
// seeds, no candidate intersects it, zero pairs are pushed, and the
// amendment is the identity — skipping it is exact, not approximate.
// Deleted (and freshly inserted) nodes are invisible to a post-batch
// BFS, so their labels are injected at distance zero (churn labels).
// The indexed ≡ unindexed ≡ Scratch differential suite and the
// FuzzIndexWake oracle pin all of this.
package hub

import (
	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
)

// indexEntry is one registration's envelope under one of its labels.
type indexEntry struct {
	radius int32
	star   bool
}

// patternIndex is the discrimination structure. All access happens
// under the hub's lock; batches consult it single-threaded before the
// phase-3 fan.
type patternIndex struct {
	// byLabel buckets registrations under each label they carry:
	// label → pattern → envelope.
	byLabel map[graph.LabelID]map[PatternID]indexEntry
	// radii is a histogram of finite signature radii over registrations
	// (registration count per radius) — maxFiniteRadius bounds the
	// shared BFS without rescanning the pattern set.
	radii map[int]int
	// stars counts registrations with a "*" bound: their reach is the
	// substrate horizon (capped) or unbounded (exact), resolved at
	// batch time because the horizon can widen after registration.
	stars int
}

func newPatternIndex() *patternIndex {
	return &patternIndex{
		byLabel: make(map[graph.LabelID]map[PatternID]indexEntry),
		radii:   make(map[int]int),
	}
}

func (x *patternIndex) add(id PatternID, sig pattern.Signature) {
	e := indexEntry{radius: int32(sig.Radius), star: sig.Star}
	for _, l := range sig.Labels {
		bucket := x.byLabel[l]
		if bucket == nil {
			bucket = make(map[PatternID]indexEntry)
			x.byLabel[l] = bucket
		}
		bucket[id] = e
	}
	x.radii[sig.Radius]++
	if sig.Star {
		x.stars++
	}
}

func (x *patternIndex) remove(id PatternID, sig pattern.Signature) {
	for _, l := range sig.Labels {
		if bucket := x.byLabel[l]; bucket != nil {
			delete(bucket, id)
			if len(bucket) == 0 {
				delete(x.byLabel, l)
			}
		}
	}
	if x.radii[sig.Radius]--; x.radii[sig.Radius] == 0 {
		delete(x.radii, sig.Radius)
	}
	if sig.Star {
		x.stars--
	}
}

// update swaps a registration's signature after ΔGP mutated its
// pattern (labels and bounds both move).
func (x *patternIndex) update(id PatternID, old, sig pattern.Signature) {
	x.remove(id, old)
	x.add(id, sig)
}

// maxFiniteRadius is the largest finite radius any registration claims.
func (x *patternIndex) maxFiniteRadius() int {
	max := 0
	for r := range x.radii {
		if r > max {
			max = r
		}
	}
	return max
}

// planWake decides, for one validated batch, which of regs must enter
// the phase-3 fan. Call with h.mu held, after phase 2 (the change log
// and the post-batch graph exist, the horizon is final). churnLabels
// are the labels of nodes the batch inserted or deleted, collected
// pre-batch — deleted nodes are unreachable by a post-batch BFS, so
// their labels count as touched at distance zero.
//
// bypassed reports that the decision did not come from the index
// (index disabled, or the touch region overflowed Config.IndexRegionCap
// and every pattern was woken wholesale) — logged in BatchStats so an
// adaptive policy can learn when discrimination stops paying
// (Kanezashi et al.).
func (h *Hub) planWake(regs []*registration, b Batch, changeLog []uint32, churnLabels []graph.LabelID) (woken []bool, bypassed bool) {
	woken = make([]bool, len(regs))
	pos := make(map[PatternID]int, len(regs))
	for i, r := range regs {
		pos[r.id] = i
	}
	// ΔGP targets always wake: pattern mutation rebuilds candidates
	// regardless of the data-side touch set (validation already
	// guaranteed every id is registered).
	for pid, ups := range b.P {
		if len(ups) > 0 {
			woken[pos[pid]] = true
		}
	}
	if h.cfg.DisableIndex {
		for i := range woken {
			woken[i] = true
		}
		return woken, true
	}
	if len(changeLog) == 0 && len(churnLabels) == 0 {
		return woken, false // data side was a no-op: only ΔGP targets run
	}

	exact := h.eng.Exact()
	horizon := h.eng.Horizon()
	if exact && h.idx.stars > 0 {
		// A "*" bound over exact distances has no finite envelope: any
		// change anywhere can extend a path. Wake those unconditionally.
		for i, r := range regs {
			if r.sig.Star {
				woken[i] = true
			}
		}
	}
	maxR := h.idx.maxFiniteRadius()
	if !exact && h.idx.stars > 0 && horizon > maxR {
		maxR = horizon
	}

	// One shared multi-source reverse BFS from the change log over the
	// post-batch graph, depth maxR: dist[l] is the minimum hop count at
	// which indexed label l occurs among nodes that can reach a changed
	// node. Reverse adjacency because Amend's closure grows through
	// ReverseBall — predecessors of the change, not successors. Dead
	// nodes are skipped exactly as post-batch distances skip them.
	dist := make(map[graph.LabelID]int)
	record := func(v uint32, d int) {
		for _, l := range h.g.NodeLabels(v) {
			if _, indexed := h.idx.byLabel[l]; !indexed {
				continue
			}
			if old, ok := dist[l]; !ok || d < old {
				dist[l] = d
			}
		}
	}
	visited := make([]bool, h.g.NumIDs())
	frontier := make([]uint32, 0, len(changeLog))
	for _, v := range changeLog {
		if int(v) < len(visited) && h.g.Alive(v) && !visited[v] {
			visited[v] = true
			frontier = append(frontier, v)
			record(v, 0)
		}
	}
	region := len(frontier)
	for d := 1; d <= maxR && len(frontier) > 0; d++ {
		var next []uint32
		for _, v := range frontier {
			for _, x := range h.g.In(v) {
				if !visited[x] {
					visited[x] = true
					region++
					record(x, d)
					next = append(next, x)
				}
			}
		}
		if limit := h.cfg.IndexRegionCap; limit > 0 && region > limit {
			// The touch region engulfs the graph — discrimination can't
			// pay for its own BFS. Wake everyone and say so.
			for i := range woken {
				woken[i] = true
			}
			return woken, true
		}
		frontier = next
	}
	for _, l := range churnLabels {
		if _, indexed := h.idx.byLabel[l]; indexed {
			dist[l] = 0
		}
	}

	// Route each touched label to the registrations bucketed under it.
	for l, d := range dist {
		for pid, e := range h.idx.byLabel[l] {
			i, ok := pos[pid]
			if !ok || woken[i] {
				continue
			}
			r := int(e.radius)
			if e.star {
				if exact {
					woken[i] = true // belt and braces; handled above
					continue
				}
				if horizon > r {
					r = horizon
				}
			}
			if d <= r {
				woken[i] = true
			}
		}
	}
	return woken, false
}
