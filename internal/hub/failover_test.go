package hub

// Hub-level failover pins: a shard worker killed mid-batch is absorbed
// invisibly — the batch completes, BatchStats.Recovered records it, a
// long-poll parked across the loss stays parked through the recovery
// window and wakes with the batch's delta (no resync, no error), and
// the hub keeps serving. The terminal poison contract lives in
// loss_test.go; this file covers the recovered path above it.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"uagpnm/internal/obs"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// killableHubWorker mirrors the partition suite's killable worker: one
// shard worker whose handler can be armed to die (503 on everything,
// /healthz included) at the first request matching a path.
type killableHubWorker struct {
	ts    *httptest.Server
	dead  atomic.Bool
	armed atomic.Value // string ("" = disarmed)
}

func newKillableHubWorker(t testing.TB) *killableHubWorker {
	t.Helper()
	k := &killableHubWorker{}
	k.armed.Store("")
	inner := shard.NewServer().Handler()
	k.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k.dead.Load() {
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		if p, _ := k.armed.Load().(string); p != "" && strings.HasPrefix(r.URL.Path, p) {
			k.dead.Store(true)
			http.Error(w, "killed", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(k.ts.Close)
	return k
}

// TestHubFailoverLongPollSurvives kills one of two workers inside
// ApplyBatch and asserts the full recovered contract: no error, the
// delta is produced, Recovered is counted, the parked long-poll wakes
// with the delta rather than a loss or resync, and every later call
// behaves as if nothing happened.
func TestHubFailoverLongPollSurvives(t *testing.T) {
	healthy := newKillableHubWorker(t)
	victim := newKillableHubWorker(t)
	g := lineGraph()
	h, err := New(g, Config{Horizon: 3, Workers: 2,
		Shards: []string{healthy.ts.URL, victim.ts.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	id := mustRegister(t, h, abPattern(h.Graph()))

	// Park a subscriber past the tip; the recovered batch must wake it
	// with the delta, never with a loss.
	type pollOut struct {
		ds     []Delta
		resync bool
		err    error
	}
	polled := make(chan pollOut, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ds, resync, err := h.WaitDeltas(ctx, id, h.Seq())
		polled <- pollOut{ds, resync, err}
	}()
	time.Sleep(50 * time.Millisecond)

	victim.armed.Store("/ops") // die on the batch's op flush

	deltas, stats, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}})
	if err != nil {
		t.Fatalf("ApplyBatch across a worker kill must recover, got %v", err)
	}
	if !victim.dead.Load() {
		t.Fatal("trigger never fired: the batch did not reach the victim's op flush")
	}
	if stats.Recovered != 1 {
		t.Fatalf("BatchStats.Recovered = %d, want 1", stats.Recovered)
	}
	if len(deltas) != 1 || len(deltas[0].Nodes) == 0 {
		t.Fatalf("recovered batch lost its delta: %+v", deltas)
	}

	got := <-polled
	if got.err != nil || got.resync {
		t.Fatalf("parked poll woke with (err=%v, resync=%v), want the delta", got.err, got.resync)
	}
	if len(got.ds) != 1 || got.ds[0].Seq != stats.Seq {
		t.Fatalf("parked poll deltas = %+v, want the recovered batch's", got.ds)
	}

	// The hub is healthy, not poisoned: reads, status and further
	// batches all behave normally on the surviving worker.
	if h.Err() != nil {
		t.Fatalf("hub poisoned despite recovery: %v", h.Err())
	}
	if recovering, recovered := h.Status(); recovering || recovered != 1 {
		t.Fatalf("Status() = (%v, %d), want (false, 1)", recovering, recovered)
	}
	if _, err := h.ResultErr(id, 0); err != nil {
		t.Fatalf("post-recovery ResultErr: %v", err)
	}
	if _, st2, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
	}}); err != nil || st2.Recovered != 0 {
		t.Fatalf("post-recovery batch = (err=%v, recovered=%d), want clean", err, st2.Recovered)
	}
}

// TestHubFailoverMatchesUnshardedResult replays the same batches on a
// recovered sharded hub and a plain in-process hub and pins equal
// results — recovery must be invisible in the data, not only in the
// error surface.
func TestHubFailoverMatchesUnshardedResult(t *testing.T) {
	healthy := newKillableHubWorker(t)
	victim := newKillableHubWorker(t)
	gs := lineGraph()
	sharded, err := New(gs, Config{Horizon: 3, Workers: 2,
		Shards: []string{healthy.ts.URL, victim.ts.URL}})
	if err != nil {
		t.Fatalf("New sharded: %v", err)
	}
	defer sharded.Close()
	plain := mustHub(t, lineGraph(), Config{Horizon: 3, Workers: 2})

	idS := mustRegister(t, sharded, abPattern(sharded.Graph()))
	idP := mustRegister(t, plain, abPattern(plain.Graph()))

	batches := [][]updates.Update{
		{{Kind: updates.DataEdgeInsert, From: 2, To: 1}},
		{{Kind: updates.DataEdgeDelete, From: 0, To: 1}},
		{{Kind: updates.DataEdgeInsert, From: 0, To: 1}, {Kind: updates.DataEdgeDelete, From: 2, To: 1}},
	}
	victim.armed.Store("/ops") // dies inside the first batch
	for i, ds := range batches {
		if _, _, err := sharded.ApplyBatch(Batch{D: ds}); err != nil {
			t.Fatalf("sharded batch %d: %v", i, err)
		}
		if _, _, err := plain.ApplyBatch(Batch{D: ds}); err != nil {
			t.Fatalf("plain batch %d: %v", i, err)
		}
		ms, ok := sharded.Match(idS)
		if !ok {
			t.Fatalf("sharded Match after batch %d refused", i)
		}
		mp, _ := plain.Match(idP)
		if !ms.Equal(mp) {
			t.Fatalf("batch %d: recovered sharded hub diverges from in-process hub", i)
		}
	}
	if _, recovered := sharded.Status(); recovered != 1 {
		t.Fatalf("sharded hub recovered = %d, want 1", recovered)
	}
}

// TestHubFailoverOnRegisterRead pins the read-path discovery: a worker
// that died BETWEEN batches is first noticed by the next read fan — the
// initial query of a Register — which must repair and retry instead of
// poisoning (this exact path escaped the mutation-phase protection in
// an early cut of the failover work).
func TestHubFailoverOnRegisterRead(t *testing.T) {
	healthy := newKillableHubWorker(t)
	victim := newKillableHubWorker(t)
	g := lineGraph()
	// Node 3: an isolated B. It is no bridge and no update ever touches
	// it, so neither the build's bridge-row plan nor any batch's warm
	// piggyback fetches its rows — the one guaranteed-cold row on the
	// victim's partition, which the Register below must then fetch from
	// the corpse (a register served purely from warm caches never
	// notices one — correctly so).
	g.AddNode("B")  // 3
	g.AddEdge(1, 2) // the B node reaches an A, so a B→A pattern matches it
	h, err := New(g, Config{Horizon: 3, Workers: 2,
		Shards: []string{healthy.ts.URL, victim.ts.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataNodeInsert, Node: 4, Labels: []string{"B"}},
	}}); err != nil {
		t.Fatalf("healthy batch: %v", err)
	}

	victim.dead.Store(true) // dies idle, with no batch in flight

	// A B-within-1-of-A pattern needs every B node's forward row —
	// including isolated node 3's, intra state of the victim's partition
	// that no plan ever warmed — so the initial query must fetch from
	// the corpse and recover.
	ba := pattern.New(h.Graph().Labels())
	b0 := ba.AddNode("B")
	a0 := ba.AddNode("A")
	ba.AddEdge(b0, a0, 1)
	id, err := h.Register(ba)
	if err != nil {
		t.Fatalf("Register across a dead worker must recover, got %v", err)
	}
	if _, recovered := h.Status(); recovered != 1 {
		t.Fatalf("Status() recovered = %d, want 1", recovered)
	}
	res, err := h.ResultErr(id, b0)
	if err != nil || len(res) != 1 || res[0] != 1 {
		t.Fatalf("post-recovery initial result = (%v, %v), want [1]", res, err)
	}
	// And the hub still processes batches on the survivor: wiring the
	// new B node to an A makes it match too.
	deltas, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 3, To: 0},
	}})
	if err != nil || st.Recovered != 0 {
		t.Fatalf("post-recovery batch = (err=%v, recovered=%d), want clean", err, st.Recovered)
	}
	if len(deltas) != 1 || len(deltas[0].Nodes) == 0 {
		t.Fatalf("post-recovery batch delta = %+v, want node 3 added", deltas)
	}
}

// TestHubHealthSweepRepairsIdleLoss pins the proactive sweep contract:
// a worker that dies while the hub is idle — discovered by the sweep's
// own /healthz probe, i.e. killed mid-sweep — is repaired off the
// critical path, so the NEXT batch runs clean (Recovered stays 0) and
// still produces correct results. Without the sweep this exact loss is
// TestHubFailoverOnRegisterRead's scenario: paid for inside the next
// read fan.
func TestHubHealthSweepRepairsIdleLoss(t *testing.T) {
	healthy := newKillableHubWorker(t)
	victim := newKillableHubWorker(t)
	g := lineGraph()
	reg := obs.NewRegistry()
	h, err := New(g, Config{Horizon: 3, Workers: 2, Metrics: reg,
		Shards: []string{healthy.ts.URL, victim.ts.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	id := mustRegister(t, h, abPattern(h.Graph()))
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); err != nil {
		t.Fatalf("healthy batch: %v", err)
	}

	// A healthy sweep is a no-op: probes fan, nothing repairs.
	h.healthSweep()
	if n := reg.Counter("gpnm_sweep_repaired_total").Value(); n != 0 {
		t.Fatalf("healthy sweep repaired %d workers", n)
	}

	// The victim dies ON the sweep's own probe — killed mid-sweep, with
	// no batch in flight anywhere near it.
	victim.armed.Store("/healthz")
	h.healthSweep()
	if !victim.dead.Load() {
		t.Fatal("sweep probe never reached the armed victim")
	}
	if n := reg.Counter("gpnm_sweep_repaired_total").Value(); n != 1 {
		t.Fatalf("gpnm_sweep_repaired_total = %d, want 1", n)
	}
	if recovering, recovered := h.Status(); recovering || recovered != 1 {
		t.Fatalf("Status() = (%v, %d), want (false, 1)", recovering, recovered)
	}
	if h.Err() != nil {
		t.Fatalf("hub poisoned by sweep repair: %v", h.Err())
	}

	// The payoff: the next batch meets an already-repaired fleet — no
	// recovery on its critical path — and the data is right.
	deltas, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
	}})
	if err != nil || st.Recovered != 0 {
		t.Fatalf("post-sweep batch = (err=%v, recovered=%d), want clean", err, st.Recovered)
	}
	if len(deltas) != 1 || len(deltas[0].Nodes) == 0 {
		t.Fatalf("post-sweep batch lost its delta: %+v", deltas)
	}
	m, _ := h.Match(id)
	if m.Nodes(0).Contains(2) {
		t.Fatal("post-sweep state wrong: deleted edge still matching")
	}
	// A second sweep over the repaired fleet finds nothing new.
	h.healthSweep()
	if n := reg.Counter("gpnm_sweep_repaired_total").Value(); n != 1 {
		t.Fatalf("repaired fleet re-repaired: counter = %d", n)
	}
}

// TestHubHealthSweepBackground drives the production path: the ticker
// goroutine discovers an idle loss within a few intervals, and stop()
// is idempotent and halts further sweeps.
func TestHubHealthSweepBackground(t *testing.T) {
	healthy := newKillableHubWorker(t)
	victim := newKillableHubWorker(t)
	reg := obs.NewRegistry()
	h, err := New(lineGraph(), Config{Horizon: 3, Workers: 2, Metrics: reg,
		Shards: []string{healthy.ts.URL, victim.ts.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	mustRegister(t, h, abPattern(h.Graph()))

	stop := h.StartHealthSweep(10 * time.Millisecond)
	defer stop()
	victim.dead.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, recovered := h.Status(); recovered == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background sweep never repaired the idle loss")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent
	swept := reg.Counter("gpnm_sweep_total").Value()
	time.Sleep(50 * time.Millisecond)
	if after := reg.Counter("gpnm_sweep_total").Value(); after != swept {
		t.Fatalf("sweeps continued after stop: %d -> %d", swept, after)
	}
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); err != nil {
		t.Fatalf("post-sweep batch: %v", err)
	}
}

// TestUnregisterPairConsistentOnPoison pins the repaired Unregister /
// UnregisterErr contract: on a healthy hub both remove; on a poisoned
// hub both refuse (bool false / ErrSubstrateLost) — previously
// Unregister silently kept working after a loss while UnregisterErr
// refused, which made the Service surface self-inconsistent.
func TestUnregisterPairConsistentOnPoison(t *testing.T) {
	ws := startWorker(t)
	g := lineGraph()
	h, err := New(g, Config{Horizon: 3, Workers: 2, Shards: []string{ws.URL}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	idA := mustRegister(t, h, abPattern(h.Graph()))
	idB := mustRegister(t, h, abPattern(h.Graph()))

	// Healthy: both forms remove.
	if !h.Unregister(idA) {
		t.Fatal("healthy Unregister must report true")
	}
	// Poison the hub: its only worker dies, leaving no failover target.
	ws.Close()
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("batch against dead solo worker = %v, want ErrSubstrateLost", err)
	}

	if h.Unregister(idB) {
		t.Fatal("poisoned Unregister must refuse (report false)")
	}
	if err := h.UnregisterErr(idB); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("poisoned UnregisterErr = %v, want ErrSubstrateLost", err)
	}
	// The registration was not silently dropped on the way down.
	if _, ok := h.regs[idB]; !ok {
		t.Fatal("poisoned Unregister must leave the registration in place")
	}
}
