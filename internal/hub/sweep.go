package hub

import (
	"sync"
	"time"

	"uagpnm/internal/partition"
	"uagpnm/internal/workpool"
)

// The proactive shard health sweep: discover dead workers between
// batches instead of paying for the discovery inside one.
//
// Without it, a worker that dies while the hub is idle is found by the
// NEXT batch's first RPC against it — that batch eats the transport
// timeout plus the whole quarantine/promote/rebuild sequence on its
// critical path. The sweep moves both off it: a background ticker
// probes the fleet while the hub is quiet and runs the identical
// repair, so the next batch arrives to an already-healthy assignment.
//
// Locking: only the snapshot and the repair take the hub lock; the
// probes themselves — the slow part, one Ping timeout in the worst
// case — fan in parallel OUTSIDE it, against clients captured by the
// snapshot. A batch that lands mid-probe proceeds normally; if it
// repairs the fleet first, the sweep's stale probes are recognised and
// skipped by Engine.SweepRepair (the snapshot carries the exact client
// probed, not just the slot index).

// StartHealthSweep launches a background sweep of the shard fleet every
// interval and returns its stop function (idempotent; it does not wait
// for an in-flight sweep to finish, but the hub lock makes any such
// sweep harmless). On an unsharded hub the sweeps are no-ops. A sweep
// that exhausts the failover budget poisons the hub exactly like a
// mid-batch loss — the next ApplyBatch surfaces it — and further sweeps
// stop probing.
func (h *Hub) StartHealthSweep(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				h.healthSweep()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// healthSweep runs one probe-and-repair pass. Exposed to tests via the
// stop-less direct call; production drives it from StartHealthSweep.
func (h *Hub) healthSweep() {
	pe, ok := h.eng.(*partition.Engine)
	if !ok {
		return
	}
	h.obs.Counter("gpnm_sweep_total").Inc()

	h.mu.Lock()
	probes := pe.ShardProbes()
	h.mu.Unlock()
	if len(probes) == 0 {
		return
	}

	errs := make([]error, len(probes))
	workpool.ForEach(len(probes), len(probes), func(i int) {
		errs[i] = probes[i].Shard.Ping()
	})
	dead := 0
	for _, err := range errs {
		if err != nil {
			dead++
		}
	}
	if dead == 0 {
		return
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, pingErr := range errs {
		if pingErr == nil {
			continue
		}
		// One repair usually heals the whole fleet (recovery probes every
		// slot itself); later probes of this pass then skip as stale.
		var loss error
		func() {
			defer partition.RecoverSubstrateLoss(&loss)
			if pe.SweepRepair(probes[i], pingErr) {
				h.obs.Counter("gpnm_sweep_repaired_total").Inc()
			}
		}()
		if loss != nil {
			// Poisoned: the sticky loss is recorded engine-side and every
			// subsequent call surfaces it. Nothing more to sweep.
			return
		}
	}
}
