package hub

import (
	"sync"
	"time"

	"uagpnm/internal/nodeset"
	"uagpnm/internal/partition"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// The pipelined ApplyBatch queue: phase overlap between consecutive
// batches under the hub's single-writer discipline.
//
// A batch's wall time is dominated by two fans — the substrate
// synchronisation (phase 2) and the per-pattern amendment (phase 3/4) —
// but its FIRST phase, the pre-state conservative balls of the
// deletions, depends only on the data graph, which freezes the moment
// the PREVIOUS batch's structural application ends. So when batch k+1
// is already queued while batch k is still amending patterns, k+1's
// pre-balls can be computed concurrently, off the critical path, and
// adopted by ApplyDataBatchPre when k+1's turn comes.
//
// What keeps it exact:
//
//   - Previews read the graph under h.gmu.RLock, paired with the write
//     lock phase 2 takes around its mutation — a preview never observes
//     a half-applied batch.
//   - Every preview records h.writeGen, which advances after every
//     graph mutation and horizon widening. At apply time the preview is
//     adopted only if the generation still matches; anything — an
//     interleaved non-pipelined batch, a Register that widened the
//     horizon, the queued batch's own incoming pattern bounds — bumps
//     the generation and the preview is recomputed the lock-step way.
//     Discarding is always correct: the preview is an optimisation of
//     phase 1, never a semantic change.
//   - The balls themselves are computed by the same functions phase 1
//     uses (shard.EdgeAffected / shard.NodeAffected over the
//     coordinator's graph — the remote /affected fan runs exactly these
//     against identical replicas), with the same existence guards, so
//     an adopted preview is bit-for-bit what phase 1 would produce.
//
// Tickets apply strictly in submission order; Submit never blocks on
// the apply itself, Wait does.

// Ticket is one queued batch's handle: Wait blocks until the batch has
// been applied and returns exactly what ApplyBatch would have.
type Ticket struct {
	b      Batch
	phase2 chan struct{} // closed when the batch's graph mutation is done (or abandoned)
	done   chan struct{} // closed when the batch is fully applied

	ds  []Delta
	st  BatchStats
	err error
}

// Wait blocks until the ticket's batch has been applied.
func (t *Ticket) Wait() ([]Delta, BatchStats, error) {
	<-t.done
	//lint:allow defensivecopy the slice is applyBatch's return value produced for this ticket's caller, not retained hub state; Wait just relays it
	return t.ds, t.st, t.err
}

// overlap is one computed preview: the deletions' pre-state balls,
// versioned by the write generation they were taken at.
type overlap struct {
	pre  []nodeset.Set // aligned with the batch's D; deletion kinds only
	gen  uint64
	wall time.Duration
}

// Pipeline orders batches for one hub and overlaps each batch's preview
// with its predecessor's tail phases. Safe for concurrent use; batches
// apply in Submit order.
type Pipeline struct {
	h    *Hub
	mu   sync.Mutex
	tail *Ticket // most recently submitted (nil before the first)
}

// NewPipeline returns a pipeline over h. A hub built with
// Config.Pipeline already routes ApplyBatch through its own; extra
// pipelines compose with it safely (tickets of different pipelines
// serialise on the hub lock like any two ApplyBatch callers — only the
// preview overlap is per-pipeline).
func NewPipeline(h *Hub) *Pipeline { return &Pipeline{h: h} }

// Submit enqueues b behind every previously submitted batch and returns
// immediately. While the predecessor is amending patterns, b's
// pre-state deletion balls are computed concurrently; b then applies
// with them (if still current) as soon as the predecessor finishes.
func (pl *Pipeline) Submit(b Batch) *Ticket {
	t := &Ticket{b: b, phase2: make(chan struct{}), done: make(chan struct{})}
	pl.mu.Lock()
	prev := pl.tail
	pl.tail = t
	pl.mu.Unlock()

	go func() {
		defer close(t.done)
		var ov *overlap
		if prev != nil {
			// The graph reaches this batch's pre-state when the
			// predecessor's mutation completes; preview in the window
			// where its amendment fan still runs. done covers the paths
			// that never reach phase 2 (validation errors).
			select {
			case <-prev.phase2:
			case <-prev.done:
			}
			ov = pl.h.previewBatch(t.b)
			<-prev.done
		}
		signal := sync.OnceFunc(func() { close(t.phase2) })
		t.ds, t.st, t.err = pl.h.applyBatch(t.b, ov, signal)
		signal() // release the successor even if phase 2 was never reached
	}()
	return t
}

// previewBatch computes b's overlap preview against the current graph
// state: the pre-state conservative balls of its data deletions, with
// the same existence guards phase 1 applies. Returns nil when there is
// nothing to hoist (no deletions, or a non-partition substrate, whose
// phase 1+2 are fused per update). Runs WITHOUT the hub lock — that is
// the point — holding gmu.RLock against the phase-2 writer.
func (h *Hub) previewBatch(b Batch) *overlap {
	if _, ok := h.eng.(*partition.Engine); !ok || len(b.D) == 0 {
		return nil
	}
	hasDel := false
	for _, u := range b.D {
		if u.Kind == updates.DataEdgeDelete || u.Kind == updates.DataNodeDelete {
			hasDel = true
			break
		}
	}
	if !hasDel {
		return nil
	}
	start := time.Now()
	h.gmu.RLock()
	defer h.gmu.RUnlock()
	gen := h.writeGen.Load()
	horizon := int(h.horizonNow.Load())
	gb := shortest.NewGraphBall()
	pre := make([]nodeset.Set, len(b.D))
	for i, u := range b.D {
		switch u.Kind {
		case updates.DataEdgeDelete:
			if h.g.HasEdge(u.From, u.To) {
				pre[i] = shard.EdgeAffected(gb, h.g, u.From, u.To, horizon)
			}
		case updates.DataNodeDelete:
			if h.g.Alive(u.Node) {
				pre[i] = shard.NodeAffected(gb, h.g, u.Node, h.g.Out(u.Node), h.g.In(u.Node), horizon)
			}
		}
	}
	return &overlap{pre: pre, gen: gen, wall: time.Since(start)}
}
