package hub

import (
	"testing"

	"uagpnm/internal/updates"
)

// FuzzIndexWake fuzzes the signature extractor + wake planner against
// the conservative-contract oracle on randomized pattern/batch pairs:
//
//	affected(pattern, batch) ⇒ the indexed touch-set contains pattern
//
// observed as "a registration whose delta is non-empty must have been
// woken this batch" (wokenSeq == batch seq — a skipped registration
// never enters the fan, so a non-empty delta from one would be
// impossible; the oracle catches the under-approximation before it
// could even manifest as a wrong result). Alongside, every pattern's
// match must equal the unindexed hub's after every batch — so
// over-aggressive skipping that silently freezes a match is caught
// even when it happens to produce an empty delta.
//
// The corpus seeds run as regular tests in every `go test`; `go test
// -fuzz=FuzzIndexWake ./internal/hub` explores further.
func FuzzIndexWake(f *testing.F) {
	f.Add(int64(1), int64(100))
	f.Add(int64(42), int64(4242))
	f.Add(int64(92000), int64(17))
	f.Add(int64(-7), int64(0))
	f.Fuzz(func(t *testing.T, seed, batchSeed int64) {
		const k = 5
		// Shared label alphabet and dense-ish graph: the adversarial
		// regime for the index, where most batches touch most patterns
		// and any dropped wake shows up immediately.
		g, ps := randomInstance(seed%1_000_000, 30, 70, k)

		indexed := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 2})
		plain := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 2, DisableIndex: true})
		idsI := make([]PatternID, k)
		idsP := make([]PatternID, k)
		for i, p := range ps {
			idsI[i] = mustRegister(t, indexed, p.Clone())
			idsP[i] = mustRegister(t, plain, p.Clone())
		}

		for round := 0; round < 3; round++ {
			rs := batchSeed*31 + int64(round)
			// Data updates against the current graph state; every other
			// round also evolves pattern 0 (ΔGP rebuilds its signature).
			data := updates.Generate(updates.Balanced(rs, 0, 8), indexed.Graph(), ps[0])
			perPattern := map[PatternID][]updates.Update{}
			perPatternP := map[PatternID][]updates.Update{}
			if round%2 == 1 {
				pg, ok := indexed.PatternGraph(idsI[0])
				if !ok {
					t.Fatal("pattern 0 vanished")
				}
				pb := updates.Generate(updates.Balanced(rs*7, 2, 0), indexed.Graph(), pg)
				perPattern[idsI[0]] = pb.P
				perPatternP[idsP[0]] = pb.P
			}

			dsI, stI, err := indexed.ApplyBatch(Batch{D: data.D, P: perPattern})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := plain.ApplyBatch(Batch{D: data.D, P: perPatternP}); err != nil {
				t.Fatal(err)
			}
			if stI.Woken+stI.Skipped != stI.Patterns {
				t.Fatalf("stats don't partition: %+v", stI)
			}

			indexed.mu.Lock()
			for i, d := range dsI {
				r := indexed.regs[idsI[i]]
				if len(d.Nodes) > 0 && r.wokenSeq != stI.Seq {
					indexed.mu.Unlock()
					t.Fatalf("round %d pattern %d: non-empty delta from a skipped registration (wokenSeq=%d, seq=%d)\nD=%v",
						round, i, r.wokenSeq, stI.Seq, data.D)
				}
			}
			indexed.mu.Unlock()

			for i := range ps {
				gotI, okI := indexed.Match(idsI[i])
				gotP, okP := plain.Match(idsP[i])
				if !okI || !okP {
					t.Fatal("registration vanished")
				}
				if !gotI.Equal(gotP) {
					t.Fatalf("round %d pattern %d: indexed match diverges from unindexed\nD=%v P=%v",
						round, i, data.D, perPattern[idsI[i]])
				}
			}
		}
	})
}
