package hub

import (
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// TestHubPipelinedDifferential drives the pipelined hub with a whole
// update script submitted back-to-back — every batch enqueued before
// the first finishes, so the preview of batch k+1 genuinely runs inside
// batch k's amendment window — and requires the final per-pattern
// results to equal both a lock-step hub and independent Scratch
// sessions fed the identical script. Run under -race: the suite is
// what proves the gmu/writeGen protocol (previews reading the graph
// against the phase-2 writer).
func TestHubPipelinedDifferential(t *testing.T) {
	const k, rounds = 4, 6
	for _, workers := range []int{1, 4} {
		seed := int64(61000 + workers)
		g, ps := randomInstance(seed, 45, 120, k)

		// Pre-generate the whole script against an evolving clone so
		// every batch can be submitted before any of them applies.
		gen := core.NewSession(g.Clone(), ps[0].Clone(),
			core.Config{Method: core.Scratch, Horizon: 3})
		script := make([][]updates.Update, rounds)
		for r := range script {
			b := updates.Generate(updates.Balanced(seed*31+int64(r), 0, 12), gen.G, ps[0])
			script[r] = b.D
			gen.SQuery(updates.Batch{D: b.D})
		}

		hp := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers, Pipeline: true})
		hl := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers})
		idsP := make([]PatternID, k)
		idsL := make([]PatternID, k)
		sessions := make([]*core.Session, k)
		for i, p := range ps {
			idsP[i] = mustRegister(t, hp, p.Clone())
			idsL[i] = mustRegister(t, hl, p.Clone())
			sessions[i] = core.NewSession(g.Clone(), p.Clone(),
				core.Config{Method: core.Scratch, Horizon: 3})
		}

		// The whole script in flight at once: this is the overlap the
		// ApplyBatch wrapper (Submit+Wait per call) never exhibits.
		tickets := make([]*Ticket, rounds)
		for r, d := range script {
			tickets[r] = hp.pipe.Submit(Batch{D: d})
		}
		overlapped := 0
		for r, tk := range tickets {
			_, st, err := tk.Wait()
			if err != nil {
				t.Fatalf("workers=%d round=%d: pipelined batch failed: %v", workers, r, err)
			}
			if st.Overlapped {
				overlapped++
			}
			if r == 0 && st.Overlapped {
				t.Fatalf("workers=%d: first batch cannot be overlapped", workers)
			}
		}
		if overlapped == 0 {
			t.Fatalf("workers=%d: no batch adopted its preview across %d back-to-back rounds", workers, rounds)
		}
		for _, d := range script {
			if _, _, err := hl.ApplyBatch(Batch{D: d}); err != nil {
				t.Fatal(err)
			}
		}
		for i := range ps {
			var want *simulation.Match
			for _, d := range script {
				want = sessions[i].SQuery(updates.Batch{D: d})
			}
			gotP, ok := hp.Match(idsP[i])
			if !ok {
				t.Fatalf("pattern %d vanished from pipelined hub", i)
			}
			gotL, _ := hl.Match(idsL[i])
			if !gotP.Equal(want) {
				t.Fatalf("workers=%d pattern=%d: pipelined hub diverges from Scratch", workers, i)
			}
			if !gotP.Equal(gotL) {
				t.Fatalf("workers=%d pattern=%d: pipelined hub diverges from lock-step hub", workers, i)
			}
		}
		if hp.Seq() != uint64(rounds) {
			t.Fatalf("workers=%d: pipelined hub Seq = %d, want %d", workers, hp.Seq(), rounds)
		}
	}
}

// TestHubPipelineErrorRelease proves a rejected batch cannot wedge the
// queue: its ticket reports the validation error, and the batches
// submitted behind it (whose previews were waiting on its phase-2
// signal that never fires) still apply.
func TestHubPipelineErrorRelease(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 2, Pipeline: true})
	id := mustRegister(t, h, abPattern(g))

	good1 := h.pipe.Submit(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1}}})
	bad := h.pipe.Submit(Batch{D: []updates.Update{
		{Kind: updates.PatternEdgeDelete, From: 0, To: 1}}})
	good2 := h.pipe.Submit(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1}}})

	if _, _, err := good1.Wait(); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	if _, _, err := bad.Wait(); err == nil {
		t.Fatal("pattern update on the data side must error through the pipeline")
	}
	if _, _, err := good2.Wait(); err != nil {
		t.Fatalf("batch behind the rejected one: %v", err)
	}
	// Net effect: insert then delete of 2→1; node 2 must not match u0.
	got, _ := h.Match(id)
	if got.Nodes(0).Contains(2) {
		t.Fatal("state after pipeline error does not reflect the applied batches")
	}
	if h.Seq() != 2 {
		t.Fatalf("Seq = %d, want 2 (rejected batch must not advance the epoch)", h.Seq())
	}
	if err := h.Err(); err != nil {
		t.Fatalf("hub poisoned by validation error: %v", err)
	}
}
