package hub

import (
	"fmt"
	"math/rand"
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// clusteredInstance builds a data graph of `clusters` label-disjoint
// communities (no cross-cluster edges, per-cluster label namespaces
// "c<i>_r<j>") and k patterns, pattern i drawn over cluster i%clusters.
// This is the low-selectivity regime the discrimination index exists
// for: a batch confined to one cluster can only touch the patterns of
// that cluster.
func clusteredInstance(seed int64, clusters, nodesPer, edgesPer, roles, k int) (*graph.Graph, []*pattern.Graph) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	label := func(c, r int) string { return fmt.Sprintf("c%d_r%d", c, r) }
	for c := 0; c < clusters; c++ {
		for i := 0; i < nodesPer; i++ {
			g.AddNode(label(c, rng.Intn(roles)))
		}
		lo := uint32(c * nodesPer)
		for i := 0; i < edgesPer; i++ {
			g.AddEdge(lo+uint32(rng.Intn(nodesPer)), lo+uint32(rng.Intn(nodesPer)))
		}
	}
	ps := make([]*pattern.Graph, k)
	for pi := range ps {
		c := pi % clusters
		p := pattern.New(g.Labels())
		ids := make([]pattern.NodeID, 3+rng.Intn(2))
		for i := range ids {
			ids[i] = p.AddNode(label(c, rng.Intn(roles)))
		}
		for i := 0; i < len(ids)+1; i++ {
			p.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], pattern.Bound(1+rng.Intn(3)))
		}
		ps[pi] = p
	}
	return g, ps
}

// clusterEdgeBatch generates data edge updates confined to one cluster,
// against the current state of g (flip: delete present edges, insert
// absent ones).
func clusterEdgeBatch(rng *rand.Rand, g *graph.Graph, cluster, nodesPer, n int) []updates.Update {
	lo := uint32(cluster * nodesPer)
	ups := make([]updates.Update, 0, n)
	for i := 0; i < n; i++ {
		u := lo + uint32(rng.Intn(nodesPer))
		v := lo + uint32(rng.Intn(nodesPer))
		kind := updates.DataEdgeInsert
		if g.HasEdge(u, v) {
			kind = updates.DataEdgeDelete
		}
		ups = append(ups, updates.Update{Kind: kind, From: u, To: v})
	}
	return ups
}

// TestHubIndexedDifferential is the tentpole's correctness suite: an
// indexed hub, an unindexed hub (DisableIndex — the pre-index
// behaviour) and k independent Scratch sessions must agree on every
// pattern's match after every batch, serial and wide, while the
// indexed hub demonstrably skips most of the fan. Run under -race
// (the tier-1 gate does).
func TestHubIndexedDifferential(t *testing.T) {
	const (
		clusters = 4
		nodesPer = 14
		k        = 8
	)
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	for _, workers := range []int{1, 4} {
		seed := int64(467200 + workers)
		g, ps := clusteredInstance(seed, clusters, nodesPer, 40, 3, k)

		indexed := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers})
		plain := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers, DisableIndex: true})
		idsI := make([]PatternID, k)
		idsP := make([]PatternID, k)
		sessions := make([]*core.Session, k)
		for i, p := range ps {
			idsI[i] = mustRegister(t, indexed, p.Clone())
			idsP[i] = mustRegister(t, plain, p.Clone())
			sessions[i] = core.NewSession(g.Clone(), p.Clone(),
				core.Config{Method: core.Scratch, Horizon: 3})
		}

		rng := rand.New(rand.NewSource(seed * 31))
		totalWoken, totalSkipped := 0, 0
		for round := 0; round < rounds; round++ {
			cluster := round % clusters
			data := clusterEdgeBatch(rng, indexed.Graph(), cluster, nodesPer, 6)

			dsI, stI, err := indexed.ApplyBatch(Batch{D: data})
			if err != nil {
				t.Fatal(err)
			}
			dsP, stP, err := plain.ApplyBatch(Batch{D: data})
			if err != nil {
				t.Fatal(err)
			}

			if stI.Woken+stI.Skipped != stI.Patterns {
				t.Fatalf("woken %d + skipped %d != patterns %d", stI.Woken, stI.Skipped, stI.Patterns)
			}
			if stI.IndexBypassed {
				t.Fatal("indexed hub reports IndexBypassed")
			}
			if !stP.IndexBypassed || stP.Woken != k {
				t.Fatalf("unindexed hub stats = %+v, want full wake + bypass flag", stP)
			}
			totalWoken += stI.Woken
			totalSkipped += stI.Skipped

			for i := range ps {
				ref := sessions[i].SQuery(updates.Batch{D: data})
				gotI, ok := indexed.Match(idsI[i])
				if !ok {
					t.Fatalf("pattern %d vanished from indexed hub", idsI[i])
				}
				gotP, _ := plain.Match(idsP[i])
				if !gotI.Equal(ref) {
					t.Fatalf("workers=%d round=%d pattern=%d: indexed hub diverges from Scratch\nD=%v",
						workers, round, i, data)
				}
				if !gotP.Equal(ref) {
					t.Fatalf("workers=%d round=%d pattern=%d: unindexed hub diverges from Scratch",
						workers, round, i)
				}
				// The deltas must agree too, not just the end states:
				// a skipped registration's empty delta is only right if
				// the unindexed pass also found nothing.
				if (len(dsI[i].Nodes) == 0) != (len(dsP[i].Nodes) == 0) {
					t.Fatalf("workers=%d round=%d pattern=%d: delta emptiness diverges (indexed %d nodes, unindexed %d)",
						workers, round, i, len(dsI[i].Nodes), len(dsP[i].Nodes))
				}
			}
		}
		// Selectivity: each batch touches one of `clusters` disjoint
		// communities, so on the order of k/clusters patterns should
		// wake per batch. Assert the index skipped more than it woke —
		// loose enough to survive seed changes, tight enough to catch
		// an index that wakes everyone.
		if totalSkipped <= totalWoken {
			t.Fatalf("index never pays: woken %d, skipped %d over %d batches",
				totalWoken, totalSkipped, rounds)
		}
	}
}

// TestHubIndexNodeChurn pins the churn-label path: node inserts and
// deletes are invisible to a post-batch reverse BFS (the node is new,
// or dead), so the index injects their labels at distance zero. A
// deletion of a matched node must wake exactly the patterns carrying
// its labels — and the result must match the unindexed hub's.
func TestHubIndexNodeChurn(t *testing.T) {
	for _, workers := range []int{1, 4} {
		const clusters, nodesPer, k = 3, 10, 6
		seed := int64(88100 + workers)
		g, ps := clusteredInstance(seed, clusters, nodesPer, 26, 2, k)

		indexed := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers})
		plain := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers, DisableIndex: true})
		idsI := make([]PatternID, k)
		idsP := make([]PatternID, k)
		for i, p := range ps {
			idsI[i] = mustRegister(t, indexed, p.Clone())
			idsP[i] = mustRegister(t, plain, p.Clone())
		}

		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 4; round++ {
			cluster := round % clusters
			lo := uint32(cluster * nodesPer)
			// One node delete in the cluster, one insert carrying the
			// cluster's labels, plus an insert-then-delete pair (the node
			// never exists outside the batch — only its insert update
			// knows its labels).
			next := uint32(indexed.Graph().NumIDs())
			data := []updates.Update{
				{Kind: updates.DataNodeDelete, Node: lo + uint32(rng.Intn(nodesPer))},
				{Kind: updates.DataNodeInsert, Node: next, Labels: []string{fmt.Sprintf("c%d_r0", cluster)}},
				{Kind: updates.DataEdgeInsert, From: next, To: lo + uint32(rng.Intn(nodesPer))},
				{Kind: updates.DataNodeInsert, Node: next + 1, Labels: []string{fmt.Sprintf("c%d_r1", cluster)}},
				{Kind: updates.DataNodeDelete, Node: next + 1},
			}
			if _, _, err := indexed.ApplyBatch(Batch{D: data}); err != nil {
				t.Fatal(err)
			}
			if _, _, err := plain.ApplyBatch(Batch{D: data}); err != nil {
				t.Fatal(err)
			}
			for i := range ps {
				gotI, _ := indexed.Match(idsI[i])
				gotP, _ := plain.Match(idsP[i])
				if gotI == nil || gotP == nil || !gotI.Equal(gotP) {
					t.Fatalf("workers=%d round=%d pattern=%d: node churn diverges indexed vs unindexed",
						workers, round, i)
				}
			}
		}
	}
}

// TestHubIndexQuietBatch: a batch whose data side is a pure no-op
// (inserting an edge that already exists) and that carries no ΔGP must
// wake nobody.
func TestHubIndexQuietBatch(t *testing.T) {
	g, ps := clusteredInstance(5150, 2, 8, 20, 2, 4)
	// Find an existing edge to re-insert.
	var from, to uint32
	found := false
	for u := 0; u < g.NumIDs() && !found; u++ {
		if outs := g.Out(uint32(u)); len(outs) > 0 {
			from, to, found = uint32(u), outs[0], true
		}
	}
	if !found {
		t.Fatal("instance has no edges")
	}
	h := mustHub(t, g.Clone(), Config{Horizon: 3})
	for _, p := range ps {
		mustRegister(t, h, p.Clone())
	}
	ds, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: from, To: to},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Woken != 0 || st.Skipped != 4 || st.IndexBypassed {
		t.Fatalf("no-op batch stats = %+v, want 0 woken / 4 skipped", st)
	}
	for _, d := range ds {
		if len(d.Nodes) != 0 {
			t.Fatalf("no-op batch produced a non-empty delta: %+v", d)
		}
		if d.Seq != st.Seq {
			t.Fatalf("skipped delta seq = %d, want %d", d.Seq, st.Seq)
		}
	}
}

// TestHubIndexRegionCap: a cap smaller than the touch region must make
// the hub wake everyone and flag the bypass — degraded to the
// pre-index behaviour, never to a wrong skip.
func TestHubIndexRegionCap(t *testing.T) {
	g, ps := clusteredInstance(6160, 2, 10, 30, 2, 4)
	h := mustHub(t, g.Clone(), Config{Horizon: 3, IndexRegionCap: 1})
	plain := mustHub(t, g.Clone(), Config{Horizon: 3, DisableIndex: true})
	var idsI, idsP []PatternID
	for _, p := range ps {
		idsI = append(idsI, mustRegister(t, h, p.Clone()))
		idsP = append(idsP, mustRegister(t, plain, p.Clone()))
	}
	rng := rand.New(rand.NewSource(6161))
	data := clusterEdgeBatch(rng, h.Graph(), 0, 10, 5)
	_, st, err := h.ApplyBatch(Batch{D: data})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IndexBypassed || st.Woken != len(ps) || st.Skipped != 0 {
		t.Fatalf("capped stats = %+v, want full wake + bypass", st)
	}
	if _, _, err := plain.ApplyBatch(Batch{D: data}); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		gotI, _ := h.Match(idsI[i])
		gotP, _ := plain.Match(idsP[i])
		if !gotI.Equal(gotP) {
			t.Fatalf("pattern %d: capped hub diverges from unindexed", i)
		}
	}
}

// TestHubIndexPatternUpdateRefreshesSignature: ΔGP can move a pattern
// onto entirely different labels; the index must route future batches
// by the new signature, not the stale one.
func TestHubIndexPatternUpdateRefreshesSignature(t *testing.T) {
	g := graph.New(nil)
	// Two disconnected 3-chains with disjoint labels.
	a0 := g.AddNode("A")
	a1 := g.AddNode("A")
	a2 := g.AddNode("A")
	b0 := g.AddNode("B")
	b1 := g.AddNode("B")
	g.AddEdge(a0, a1)
	g.AddEdge(a1, a2)
	g.AddEdge(b0, b1)

	p := pattern.New(g.Labels())
	u := p.AddNode("A")
	v := p.AddNode("A")
	p.AddEdge(u, v, 1)

	h := mustHub(t, g.Clone(), Config{Horizon: 2})
	id := mustRegister(t, h, p)

	// Rewire the pattern onto label B: delete both A nodes, add two B
	// nodes (ids continue at 2,3), connect them.
	pups := []updates.Update{
		{Kind: updates.PatternNodeDelete, Node: uint32(u)},
		{Kind: updates.PatternNodeDelete, Node: uint32(v)},
		{Kind: updates.PatternNodeInsert, Node: 2, Labels: []string{"B"}},
		{Kind: updates.PatternNodeInsert, Node: 3, Labels: []string{"B"}},
		{Kind: updates.PatternEdgeInsert, From: 2, To: 3, Bound: 1},
	}
	if _, st, err := h.ApplyBatch(Batch{P: map[PatternID][]updates.Update{id: pups}}); err != nil {
		t.Fatal(err)
	} else if st.Woken != 1 {
		t.Fatalf("ΔGP batch woke %d, want 1", st.Woken)
	}

	// A-side churn must now be skipped…
	if _, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: a2, To: a0},
	}}); err != nil {
		t.Fatal(err)
	} else if st.Woken != 0 {
		t.Fatalf("A-side batch woke %d after pattern moved to B, want 0", st.Woken)
	}

	// …and B-side churn must wake the pattern and change its result.
	b2 := uint32(h.Graph().NumIDs())
	ds, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataNodeInsert, Node: b2, Labels: []string{"B"}},
		{Kind: updates.DataEdgeInsert, From: b1, To: b2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Woken != 1 {
		t.Fatalf("B-side batch woke %d, want 1", st.Woken)
	}
	if len(ds[0].Nodes) == 0 {
		t.Fatal("B-side growth produced no delta for the rewired pattern")
	}
}

// TestUnregisterReleasesDeltaLog is the retention regression test
// (heap-size-insensitive): after Unregister the registration's delta
// log and match are dropped eagerly, so a long-lived reference to the
// registration — a driver handle, an in-flight poll — cannot pin
// History × |delta| node sets until GC happens to notice.
func TestUnregisterReleasesDeltaLog(t *testing.T) {
	// Deterministic churn: pattern A -1-> B over a 2-node graph whose
	// only edge toggles every batch, so every batch flips the match and
	// logs a delta.
	g := graph.New(nil)
	a := g.AddNode("A")
	b := g.AddNode("B")
	p := pattern.New(g.Labels())
	p.AddEdge(p.AddNode("A"), p.AddNode("B"), 1)

	h := mustHub(t, g.Clone(), Config{Horizon: 2, History: 64})
	id := mustRegister(t, h, p)

	for round := 0; round < 6; round++ {
		kind := updates.DataEdgeInsert
		if round%2 == 1 {
			kind = updates.DataEdgeDelete
		}
		if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
			{Kind: kind, From: a, To: b},
		}}); err != nil {
			t.Fatal(err)
		}
	}

	h.mu.Lock()
	r := h.regs[id]
	logged := len(r.deltas)
	h.mu.Unlock()
	if logged == 0 {
		t.Fatal("update script produced no logged deltas; the test exercises nothing")
	}

	if !h.Unregister(id) {
		t.Fatal("Unregister refused a registered id")
	}
	if len(r.deltas) != 0 {
		t.Fatalf("delta log still holds %d entries after Unregister", len(r.deltas))
	}
	if r.match != nil {
		t.Fatal("match still retained after Unregister")
	}
	// The index forgot the pattern too: a batch on its labels reports
	// zero registrations, rather than routing to a ghost.
	if _, st, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: a, To: b},
	}}); err != nil {
		t.Fatal(err)
	} else if st.Patterns != 0 || st.Woken != 0 {
		t.Fatalf("post-unregister stats = %+v, want empty hub", st)
	}
}
