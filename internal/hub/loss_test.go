package hub

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/partition"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// startWorker stands up an in-process gpnm-shard worker over HTTP.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(shard.NewServer().Handler())
}

// TestEngineShardLossReturnsError is the partition-boundary pin: a
// worker killed between batches makes ApplyDataBatch return an error
// wrapping shard.ErrSubstrateLost (with the TransportError still
// extractable) — never a panic — and the engine stays poisoned.
func TestEngineShardLossReturnsError(t *testing.T) {
	ws := startWorker(t)
	g := graph.New(nil)
	g.AddNode("A") // 0
	g.AddNode("B") // 1
	g.AddNode("A") // 2
	g.AddEdge(0, 1)

	e := partition.NewEngine(g, 3, partition.WithWorkers(2), partition.WithShards(shard.Dial(ws.URL)))
	e.Build()
	t.Cleanup(func() { _ = e.Close() })

	// Healthy batch first: the seam works end to end.
	if _, _, err := e.ApplyDataBatch([]updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}, g); err != nil {
		t.Fatalf("healthy batch errored: %v", err)
	}

	ws.Close() // the worker dies with its intra state

	_, _, err := e.ApplyDataBatch([]updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
	}, g)
	if err == nil {
		t.Fatal("batch against a dead worker must error")
	}
	if !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("err = %v, want ErrSubstrateLost wrap", err)
	}
	var te *shard.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want wrapped *shard.TransportError", err)
	}
	if e.Err() == nil {
		t.Fatal("engine must stay poisoned after a loss")
	}
	// Sticky: the next batch fails immediately without touching the
	// (already diverged) substrate.
	if _, _, err := e.ApplyDataBatch([]updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}, g); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("poisoned engine err = %v, want ErrSubstrateLost", err)
	}
}

// TestHubShardLossMidBatch kills the worker under a live hub and
// asserts the full Service-facing error path: ApplyBatch returns
// ErrSubstrateLost (no panic escapes internal/shard / internal/partition),
// the hub poisons itself, parked long-polls are woken with the loss,
// and every further method fails fast with the same error.
func TestHubShardLossMidBatch(t *testing.T) {
	ws := startWorker(t)
	g := graph.New(nil)
	g.AddNode("A") // 0
	g.AddNode("B") // 1
	g.AddNode("A") // 2
	g.AddEdge(0, 1)

	h, err := New(g, Config{Horizon: 3, Workers: 2, Shards: []string{ws.URL}})
	if err != nil {
		t.Fatalf("New with live worker: %v", err)
	}
	id := mustRegister(t, h, abPattern(h.Graph()))

	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); err != nil {
		t.Fatalf("healthy batch errored: %v", err)
	}

	// Park a long-poller past the tip; the loss must wake it.
	type pollOut struct {
		err    error
		resync bool
	}
	polled := make(chan pollOut, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, resync, err := h.WaitDeltas(ctx, id, h.Seq())
		polled <- pollOut{err, resync}
	}()
	time.Sleep(50 * time.Millisecond)

	ws.Close() // kill the worker mid-session

	_, _, err = h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: 2, To: 1},
	}})
	if err == nil {
		t.Fatal("ApplyBatch against a dead worker must return an error, not panic")
	}
	if !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("ApplyBatch err = %v, want ErrSubstrateLost wrap", err)
	}

	got := <-polled
	if !errors.Is(got.err, shard.ErrSubstrateLost) || got.resync {
		t.Fatalf("parked poll woke with (%v, resync=%v), want ErrSubstrateLost", got.err, got.resync)
	}

	// Poisoned: every entry point reports the loss.
	if h.Err() == nil {
		t.Fatal("hub must stay poisoned")
	}
	if _, _, err := h.ApplyBatch(Batch{}); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss ApplyBatch err = %v", err)
	}
	if _, err := h.Register(abPattern(h.Graph())); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss Register err = %v", err)
	}
	if err := h.UnregisterErr(id); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss UnregisterErr err = %v", err)
	}
	// Read paths refuse too: the fan-out may have amended some
	// registrations and not others, so post-loss results are tainted.
	if _, err := h.ResultErr(id, 0); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss ResultErr err = %v", err)
	}
	if _, _, _, err := h.Snapshot(id); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss Snapshot err = %v", err)
	}
	if _, ok := h.Match(id); ok {
		t.Fatal("post-loss Match must refuse")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, _, err := h.WaitDeltas(ctx, id, h.Seq()); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("post-loss WaitDeltas err = %v", err)
	}
}

// TestHubBuildAgainstDeadWorker: constructing a hub whose worker never
// answers fails with an error, not a panic.
func TestHubBuildAgainstDeadWorker(t *testing.T) {
	ws := startWorker(t)
	ws.Close()
	g := graph.New(nil)
	g.AddNode("A")
	if _, err := New(g, Config{Horizon: 3, Workers: 1, Shards: []string{ws.URL}}); !errors.Is(err, shard.ErrSubstrateLost) {
		t.Fatalf("New against dead worker = %v, want ErrSubstrateLost", err)
	}
}
