package hub

import (
	"math/rand"
	"net/http/httptest"
	"runtime"
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// randomInstance builds a random labelled graph and k random patterns.
func randomInstance(seed int64, n, m, k int) (*graph.Graph, []*pattern.Graph) {
	labels := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	ps := make([]*pattern.Graph, k)
	for pi := range ps {
		p := pattern.New(g.Labels())
		ids := make([]pattern.NodeID, 3+rng.Intn(3))
		for i := range ids {
			ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < len(ids)+1; i++ {
			p.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], pattern.Bound(1+rng.Intn(3)))
		}
		ps[pi] = p
	}
	return g, ps
}

// TestHubDifferentialScratch is the hub's ground-truth suite: a hub
// with k random patterns must produce, after every batch of a random
// update script — shared data updates plus diverging per-pattern
// pattern updates — exactly the per-pattern results of k independent
// Scratch sessions. Runs the fan-out serial and wide; execute under
// -race (the tier-1 gate does) to also prove the epoch discipline.
func TestHubDifferentialScratch(t *testing.T) {
	trials, rounds := 4, 4
	if testing.Short() {
		trials, rounds = 2, 3
	}
	const k = 4
	for _, workers := range []int{1, 4} {
		for trial := 0; trial < trials; trial++ {
			seed := int64(92000 + trial)
			g, ps := randomInstance(seed, 45, 120, k)

			h := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers})
			ids := make([]PatternID, k)
			sessions := make([]*core.Session, k)
			for i, p := range ps {
				ids[i] = mustRegister(t, h, p.Clone())
				sessions[i] = core.NewSession(g.Clone(), p.Clone(),
					core.Config{Method: core.Scratch, Horizon: 3})
			}

			for round := 0; round < rounds; round++ {
				// Shared ΔGD against the current (hub) graph state; the
				// sessions' clones evolve in lockstep.
				data := updates.Generate(
					updates.Balanced(seed*17+int64(round), 0, 10), h.Graph(), ps[0])
				// Diverging ΔGP per pattern, from each session's current
				// pattern state.
				perPattern := make(map[PatternID][]updates.Update, k)
				for i := range ps {
					pb := updates.Generate(
						updates.Balanced(seed*23+int64(round*k+i), 2, 0),
						sessions[i].G, sessions[i].P)
					perPattern[ids[i]] = pb.P
				}

				if _, _, err := h.ApplyBatch(Batch{D: data.D, P: perPattern}); err != nil {
					t.Fatal(err)
				}
				for i := range ps {
					ref := sessions[i].SQuery(updates.Batch{D: data.D, P: perPattern[ids[i]]})
					got, ok := h.Match(ids[i])
					if !ok {
						t.Fatalf("pattern %d vanished", ids[i])
					}
					if !got.Equal(ref) {
						t.Fatalf("workers=%d trial=%d round=%d pattern=%d: hub diverges from Scratch\nbatch D=%v P=%v",
							workers, trial, round, i, data.D, perPattern[ids[i]])
					}
				}
			}
		}
	}
}

// TestHubDifferentialStress is the race-hunting variant: forced
// GOMAXPROCS, wide fan-out, more patterns and heavier batches. Skipped
// with -short; run under -race.
func TestHubDifferentialStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress variant skipped in -short mode")
	}
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const k = 6
	g, ps := randomInstance(31337, 80, 260, k)
	h := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 8})
	ids := make([]PatternID, k)
	sessions := make([]*core.Session, k)
	for i, p := range ps {
		ids[i] = mustRegister(t, h, p.Clone())
		sessions[i] = core.NewSession(g.Clone(), p.Clone(),
			core.Config{Method: core.Scratch, Horizon: 3})
	}
	for round := 0; round < 5; round++ {
		data := updates.Generate(updates.Balanced(int64(4400+round), 0, 24), h.Graph(), ps[0])
		perPattern := make(map[PatternID][]updates.Update, k)
		for i := range ps {
			pb := updates.Generate(updates.Balanced(int64(5500+round*k+i), 3, 0),
				sessions[i].G, sessions[i].P)
			perPattern[ids[i]] = pb.P
		}
		if _, _, err := h.ApplyBatch(Batch{D: data.D, P: perPattern}); err != nil {
			t.Fatal(err)
		}
		for i := range ps {
			ref := sessions[i].SQuery(updates.Batch{D: data.D, P: perPattern[ids[i]]})
			if got, _ := h.Match(ids[i]); !got.Equal(ref) {
				t.Fatalf("round %d pattern %d: hub(workers=8) diverged from Scratch", round, i)
			}
		}
	}
	// Sanity on the suite itself: the script must actually have driven
	// changes through the standing queries.
	changed := 0
	for _, id := range ids {
		if st, ok := h.PatternStats(id); ok && st.Passes > 0 {
			changed++
		}
	}
	if changed != k {
		t.Fatalf("only %d/%d patterns processed batches", changed, k)
	}
}

// TestHubShardedDifferential runs the hub on a substrate whose
// partitions are served by two RPC shard workers (real HTTP via
// httptest) and compares every pattern's result after every batch
// against Scratch sessions — the sharded deployment must be invisible
// to the hub's phase discipline. Run under -race: phase 3's concurrent
// per-pattern readers all funnel through the RPC row cache.
func TestHubShardedDifferential(t *testing.T) {
	const k = 3
	addrs := make([]string, 2)
	for i := range addrs {
		ts := httptest.NewServer(shard.NewServer().Handler())
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	for _, workers := range []int{1, 4} {
		g, ps := randomInstance(int64(73000+workers), 40, 110, k)
		h := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: workers, Shards: addrs})
		ids := make([]PatternID, k)
		sessions := make([]*core.Session, k)
		for i, p := range ps {
			ids[i] = mustRegister(t, h, p.Clone())
			sessions[i] = core.NewSession(g.Clone(), p.Clone(),
				core.Config{Method: core.Scratch, Horizon: 3})
		}
		for round := 0; round < 3; round++ {
			data := updates.Generate(
				updates.Balanced(int64(7400+workers*100+round), 0, 10), h.Graph(), ps[0])
			perPattern := make(map[PatternID][]updates.Update, k)
			for i := range ps {
				pb := updates.Generate(
					updates.Balanced(int64(7500+workers*100+round*k+i), 2, 0),
					sessions[i].G, sessions[i].P)
				perPattern[ids[i]] = pb.P
			}
			if _, _, err := h.ApplyBatch(Batch{D: data.D, P: perPattern}); err != nil {
				t.Fatal(err)
			}
			for i := range ps {
				ref := sessions[i].SQuery(updates.Batch{D: data.D, P: perPattern[ids[i]]})
				if got, _ := h.Match(ids[i]); !got.Equal(ref) {
					t.Fatalf("workers=%d round=%d pattern=%d: sharded hub diverges from Scratch",
						workers, round, i)
				}
			}
		}
	}
}

// TestHubMatchesSessionPipeline cross-checks the hub against the
// UA-GPNM session pipeline (not just Scratch): same substrate, same
// per-pattern algorithm, one shared sync.
func TestHubMatchesSessionPipeline(t *testing.T) {
	const k = 3
	g, ps := randomInstance(777, 50, 150, k)
	h := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 4})
	ids := make([]PatternID, k)
	sessions := make([]*core.Session, k)
	for i, p := range ps {
		ids[i] = mustRegister(t, h, p.Clone())
		sessions[i] = core.NewSession(g.Clone(), p.Clone(),
			core.Config{Method: core.UAGPNM, Horizon: 3, Workers: 1})
	}
	for round := 0; round < 4; round++ {
		data := updates.Generate(updates.Balanced(int64(9900+round), 0, 12), h.Graph(), ps[0])
		if _, _, err := h.ApplyBatch(Batch{D: data.D}); err != nil {
			t.Fatal(err)
		}
		for i := range ps {
			ref := sessions[i].SQuery(updates.Batch{D: data.D})
			if got, _ := h.Match(ids[i]); !got.Equal(ref) {
				t.Fatalf("round %d pattern %d: hub diverged from UA-GPNM session", round, i)
			}
		}
	}
	// The amortisation claim in numbers: the hub synced the substrate
	// once per batch, the k sessions k times.
	hubSyncs := h.LastBatch().SLenSyncs
	sessSyncs := 0
	for _, s := range sessions {
		sessSyncs += s.Stats.SLenSyncs
	}
	if hubSyncs == 0 || sessSyncs != k*hubSyncs {
		t.Fatalf("SLen sync accounting: hub=%d sessions=%d, want sessions = %d×hub",
			hubSyncs, sessSyncs, k)
	}
}
