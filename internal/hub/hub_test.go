package hub

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"uagpnm/internal/core"
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/pattern"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// lineGraph builds a0(A) -> b1(B), a2(A) isolated — the smallest
// instance where an edge insert flips a node into a result.
func lineGraph() *graph.Graph {
	g := graph.New(nil)
	g.AddNode("A") // 0
	g.AddNode("B") // 1
	g.AddNode("A") // 2
	g.AddEdge(0, 1)
	return g
}

func abPattern(g *graph.Graph) *pattern.Graph {
	p := pattern.New(g.Labels())
	u0 := p.AddNode("A")
	u1 := p.AddNode("B")
	p.AddEdge(u0, u1, 1)
	return p
}

// mustHub / mustRegister unwrap the error returns (in-process hubs
// never lose a substrate; any error here is a test bug).
func mustHub(t testing.TB, g *graph.Graph, cfg Config) *Hub {
	t.Helper()
	h, err := New(g, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func mustRegister(t testing.TB, h *Hub, p *pattern.Graph) PatternID {
	t.Helper()
	id, err := h.Register(p)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	return id
}

func TestHubRegisterAndApply(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})

	id := mustRegister(t, h, abPattern(g))
	if got := h.Result(id, 0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("IQuery u0 = %v, want {0}", got)
	}
	if got := h.Result(id, 1); !got.Equal(nodeset.New(1)) {
		t.Fatalf("IQuery u1 = %v, want {1}", got)
	}

	// Insert a2 -> b1: node 2 becomes a match of u0.
	deltas, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 1 || deltas[0].Pattern != id || deltas[0].Seq != 1 {
		t.Fatalf("deltas = %+v, want one delta for pattern %d at seq 1", deltas, id)
	}
	want := []simulation.NodeDelta{{Node: 0, Added: nodeset.New(2)}}
	if len(deltas[0].Nodes) != 1 ||
		deltas[0].Nodes[0].Node != want[0].Node ||
		!deltas[0].Nodes[0].Added.Equal(want[0].Added) ||
		len(deltas[0].Nodes[0].Removed) != 0 {
		t.Fatalf("delta nodes = %v, want %v", deltas[0].Nodes, want)
	}
	if got := h.Result(id, 0); !got.Equal(nodeset.New(0, 2)) {
		t.Fatalf("after batch u0 = %v, want {0 2}", got)
	}
	if h.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1", h.Seq())
	}
	if st := h.LastBatch(); st.SLenSyncs != 1 || st.Patterns != 1 {
		t.Fatalf("LastBatch = %+v, want SLenSyncs=1 Patterns=1", st)
	}

	if !h.Unregister(id) || h.Unregister(id) {
		t.Fatal("Unregister should succeed once")
	}
	if got := h.Patterns(); len(got) != 0 {
		t.Fatalf("Patterns after unregister = %v", got)
	}
}

func TestHubApplyBatchValidation(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})
	id := mustRegister(t, h, abPattern(g))

	if _, _, err := h.ApplyBatch(Batch{P: map[PatternID][]updates.Update{
		id + 99: {{Kind: updates.PatternEdgeDelete, From: 0, To: 1}},
	}}); !errors.Is(err, ErrUnknownPattern) {
		t.Fatalf("unknown pattern: err = %v", err)
	}
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.PatternEdgeDelete, From: 0, To: 1},
	}}); err == nil {
		t.Fatal("pattern update on the data side must error")
	}
	if _, _, err := h.ApplyBatch(Batch{P: map[PatternID][]updates.Update{
		id: {{Kind: updates.DataEdgeInsert, From: 2, To: 1}},
	}}); err == nil {
		t.Fatal("data update on the pattern side must error")
	}
	// Mispredicted node-insert ids must be rejected up front, not panic
	// mid-batch (node ids are assigned sequentially: the only valid
	// insert id is the next free one).
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataNodeInsert, Node: 99, Labels: []string{"A"}},
	}}); err == nil {
		t.Fatal("mispredicted data node insert id must error")
	}
	if _, _, err := h.ApplyBatch(Batch{P: map[PatternID][]updates.Update{
		id: {{Kind: updates.PatternNodeInsert, Node: 99, Labels: []string{"A"}}},
	}}); err == nil {
		t.Fatal("mispredicted pattern node insert id must error")
	}
	// Correctly predicted ids pass: next data id is 3, next pattern id 2.
	if _, _, err := h.ApplyBatch(Batch{
		D: []updates.Update{{Kind: updates.DataNodeInsert, Node: 3, Labels: []string{"A"}}},
		P: map[PatternID][]updates.Update{
			id: {{Kind: updates.PatternNodeInsert, Node: 2, Labels: []string{"B"}}},
		},
	}); err != nil {
		t.Fatalf("valid node inserts rejected: %v", err)
	}

	// Nothing above but the last batch may have advanced the epoch.
	if h.Seq() != 1 {
		t.Fatalf("Seq = %d, want 1 (only the valid batch applied)", h.Seq())
	}
}

// TestHubNewLabelInserts drives concurrent per-pattern node inserts
// carrying labels the shared table has never seen — the interning path
// that must not race across phase-3 workers. Run under -race; the
// instance is sized (and GOMAXPROCS forced) so several pool workers
// genuinely process patterns, which is what makes the detector see the
// cross-goroutine interning when the pre-intern guard is absent.
func TestHubNewLabelInserts(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	const k = 16
	g, ps := randomInstance(64123, 260, 800, k)
	h := mustHub(t, g, Config{Horizon: 3, Workers: 4})
	ids := make([]PatternID, k)
	for i, p := range ps {
		ids[i] = mustRegister(t, h, p)
	}
	perPattern := make(map[PatternID][]updates.Update, k)
	for i, id := range ids {
		nodes := uint32(0)
		if p, _, _, err := h.Snapshot(id); err == nil {
			nodes = uint32(p.NumIDs())
		}
		perPattern[id] = []updates.Update{{
			Kind: updates.PatternNodeInsert, Node: nodes,
			Labels: []string{"FRESH_" + string(rune('A'+i))},
		}}
	}
	if _, _, err := h.ApplyBatch(Batch{P: perPattern}); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		// ps[i] is the pre-batch pattern object (phase 3 swapped the
		// registration to a clone); the hub's copy has one extra node.
		p, _, _, err := h.Snapshot(id)
		if err != nil || p.NumNodes() != ps[i].NumNodes()+1 {
			t.Fatalf("pattern %d: node insert not applied (nodes=%d)", i, p.NumNodes())
		}
		// A pattern node with an unmatched fresh label breaks totality:
		// the projected result collapses to ∅.
		if got := h.Result(id, 0); got.Len() != 0 {
			t.Fatalf("pattern %d result = %v, want ∅ (new label unmatched)", i, got)
		}
	}
}

func TestHubRegisterScript(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})

	if _, err := h.RegisterScript(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("bad DSL must error")
	}
	if _, err := h.RegisterScript(strings.NewReader("# empty\n")); err == nil {
		t.Fatal("empty pattern must error")
	}
	id, err := h.RegisterScript(strings.NewReader("node x A\nnode y B\nedge x y 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Result(id, 0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("RegisterScript result = %v, want {0}", got)
	}
	if st := h.GraphStats(); st.Nodes != 3 || st.Edges != 1 {
		t.Fatalf("GraphStats = %+v", st)
	}
	p, m, seq, err := h.Snapshot(id)
	if err != nil || seq != 0 || p.NumNodes() != 2 || !m.Total() {
		t.Fatalf("Snapshot = (%v, %v, %d, %v)", p, m, seq, err)
	}
}

// TestHubDeltaHistoryIsolation: mutating a delta returned by ApplyBatch
// must not corrupt what WaitDeltas serves later (and vice versa).
func TestHubDeltaHistoryIsolation(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})
	id := mustRegister(t, h, abPattern(g))
	deltas, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	deltas[0].Nodes[0].Added[0] = 777 // scribble over the caller's copy

	ds, _, err := h.WaitDeltas(context.Background(), id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ds[0].Nodes[0].Added.Equal(nodeset.New(2)) {
		t.Fatalf("history served mutated delta: %v", ds[0].Nodes)
	}
	ds[0].Nodes[0].Added[0] = 888 // and the polled copy is isolated too
	ds2, _, _ := h.WaitDeltas(context.Background(), id, 0)
	if !ds2[0].Nodes[0].Added.Equal(nodeset.New(2)) {
		t.Fatalf("second poll saw first poller's mutation: %v", ds2[0].Nodes)
	}
}

// TestHubPerPatternUpdates drives two patterns whose ΔGP diverge: one
// relaxes, one is untouched; only the relaxed one may change.
func TestHubPerPatternUpdates(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 2})
	idA := mustRegister(t, h, abPattern(g))
	idB := mustRegister(t, h, abPattern(g))

	// Deleting the pattern edge of A relaxes u0: every A-labelled node
	// matches.
	deltas, _, err := h.ApplyBatch(Batch{P: map[PatternID][]updates.Update{
		idA: {{Kind: updates.PatternEdgeDelete, From: 0, To: 1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	byID := map[PatternID]Delta{}
	for _, d := range deltas {
		byID[d.Pattern] = d
	}
	if d := byID[idA]; len(d.Nodes) != 1 || !d.Nodes[0].Added.Equal(nodeset.New(2)) {
		t.Fatalf("pattern A delta = %v, want u0 +{2}", d.Nodes)
	}
	if d := byID[idB]; len(d.Nodes) != 0 {
		t.Fatalf("pattern B delta = %v, want no change", d.Nodes)
	}
	if got := h.Result(idB, 0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("pattern B u0 = %v, want {0}", got)
	}
}

func TestHubWaitDeltas(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})
	id := mustRegister(t, h, abPattern(g))

	// Timeout path: no deltas arrive.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, _, err := h.WaitDeltas(ctx, id, 0)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout err = %v", err)
	}

	// Delivery path: a concurrent poller sees the batch's delta.
	type polled struct {
		ds  []Delta
		err error
	}
	ch := make(chan polled, 1)
	go func() {
		ds, _, err := h.WaitDeltas(context.Background(), id, 0)
		ch <- polled{ds, err}
	}()
	// Give the poller a moment to park, then publish a change.
	time.Sleep(10 * time.Millisecond)
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.err != nil || len(got.ds) != 1 || got.ds[0].Seq != 1 {
		t.Fatalf("poll got %+v, want the seq-1 delta", got)
	}

	// No-change batches are not subscriber events: a poller past seq 1
	// keeps waiting through an idempotent batch.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	done := make(chan polled, 1)
	go func() {
		ds, _, err := h.WaitDeltas(ctx2, id, 1)
		done <- polled{ds, err}
	}()
	time.Sleep(10 * time.Millisecond)
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1}, // duplicate: no-op
	}}); err != nil {
		t.Fatal(err)
	}
	if got := <-done; !errors.Is(got.err, context.DeadlineExceeded) {
		t.Fatalf("no-op batch woke the poller: %+v", got)
	}

	// Unregister path: a parked poller observes ErrUnknownPattern.
	gone := make(chan error, 1)
	go func() {
		_, _, err := h.WaitDeltas(context.Background(), id, h.Seq())
		gone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.Unregister(id)
	if err := <-gone; !errors.Is(err, ErrUnknownPattern) {
		t.Fatalf("unregister err = %v", err)
	}
}

func TestHubWaitDeltasResync(t *testing.T) {
	g := graph.New(nil)
	for i := 0; i < 8; i++ {
		g.AddNode("A")
	}
	g.AddNode("B") // 8
	p := pattern.New(g.Labels())
	u0 := p.AddNode("A")
	u1 := p.AddNode("B")
	p.AddEdge(u0, u1, 1)

	h := mustHub(t, g, Config{Horizon: 3, Workers: 1, History: 1})
	id := mustRegister(t, h, p)
	// Three changing batches; history keeps only the last.
	for i := uint32(0); i < 3; i++ {
		if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
			{Kind: updates.DataEdgeInsert, From: i, To: 8},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	_, resync, err := h.WaitDeltas(context.Background(), id, 0)
	if err != nil || !resync {
		t.Fatalf("since=0 with truncated history: resync=%v err=%v, want resync", resync, err)
	}
	ds, resync, err := h.WaitDeltas(context.Background(), id, 2)
	if err != nil || resync || len(ds) != 1 || ds[0].Seq != 3 {
		t.Fatalf("since=2: ds=%v resync=%v err=%v, want the seq-3 delta", ds, resync, err)
	}
}

// TestHubDeltaConsistency replays random batches and checks the delta
// algebra: previous projected result + Added - Removed = next projected
// result, per pattern node.
func TestHubDeltaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"A", "B", "C", "D"}
	g := graph.New(nil)
	for i := 0; i < 40; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 100; i++ {
		g.AddEdge(uint32(rng.Intn(40)), uint32(rng.Intn(40)))
	}
	p := pattern.New(g.Labels())
	ids := make([]pattern.NodeID, 4)
	for i := range ids {
		ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 5; i++ {
		p.AddEdge(ids[rng.Intn(4)], ids[rng.Intn(4)], pattern.Bound(1+rng.Intn(3)))
	}

	h := mustHub(t, g, Config{Horizon: 3, Workers: 2})
	id := mustRegister(t, h, p.Clone())
	prev, _ := h.Match(id)
	for round := 0; round < 6; round++ {
		batch := updates.Generate(updates.Balanced(int64(round)*7+1, 0, 8), h.Graph(), p)
		deltas, _, err := h.ApplyBatch(Batch{D: batch.D})
		if err != nil {
			t.Fatal(err)
		}
		cur, _ := h.Match(id)
		want := simulation.Delta(prev, cur)
		got := deltas[0].Nodes
		if len(got) != len(want) {
			t.Fatalf("round %d: delta %v, want %v", round, got, want)
		}
		for i := range got {
			if got[i].Node != want[i].Node ||
				!got[i].Added.Equal(want[i].Added) ||
				!got[i].Removed.Equal(want[i].Removed) {
				t.Fatalf("round %d: delta %v, want %v", round, got, want)
			}
		}
		prev = cur
	}
}

// TestHubDefensiveCopies mutates everything the hub hands out and
// asserts hub state survives — the match-state aliasing regression the
// Session contract also covers.
func TestHubDefensiveCopies(t *testing.T) {
	g := lineGraph()
	h := mustHub(t, g, Config{Horizon: 3, Workers: 1})
	id := mustRegister(t, h, abPattern(g))

	res := h.Result(id, 0)
	for i := range res {
		res[i] = 999 // scribble over the returned set
	}
	if got := h.Result(id, 0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("Result aliased hub state: %v", got)
	}

	m, _ := h.Match(id)
	s := m.SimulationSet(0)
	for i := range s {
		s[i] = 999
	}
	m2, _ := h.Match(id)
	if got := m2.SimulationSet(0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("Match aliased hub state: %v", got)
	}

	// The snapshot stays frozen while the hub moves on.
	if _, _, err := h.ApplyBatch(Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: 2, To: 1},
	}}); err != nil {
		t.Fatal(err)
	}
	if got := m2.SimulationSet(0); !got.Equal(nodeset.New(0)) {
		t.Fatalf("snapshot moved with the hub: %v", got)
	}
	if got := h.Result(id, 0); !got.Equal(nodeset.New(0, 2)) {
		t.Fatalf("hub result = %v, want {0 2}", got)
	}
}

// TestHubScratchSubstrate exercises the global-SLen substrate path
// (Method != UAGPNM) against the partitioned default.
func TestHubGlobalSubstrate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"A", "B", "C"}
	g := graph.New(nil)
	for i := 0; i < 30; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < 70; i++ {
		g.AddEdge(uint32(rng.Intn(30)), uint32(rng.Intn(30)))
	}
	p := pattern.New(g.Labels())
	u0 := p.AddNode("A")
	u1 := p.AddNode("B")
	p.AddEdge(u0, u1, 2)

	hPart := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 2})
	hGlob := mustHub(t, g.Clone(), Config{Method: core.INCGPNM, Horizon: 3, Workers: 2})
	idP := mustRegister(t, hPart, p.Clone())
	idG := mustRegister(t, hGlob, p.Clone())
	for round := 0; round < 4; round++ {
		batch := updates.Generate(updates.Balanced(int64(round)*13+5, 0, 10), hPart.Graph(), p)
		if _, _, err := hPart.ApplyBatch(Batch{D: batch.D}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := hGlob.ApplyBatch(Batch{D: batch.D}); err != nil {
			t.Fatal(err)
		}
		mp, _ := hPart.Match(idP)
		mg, _ := hGlob.Match(idG)
		if !mp.Equal(mg) {
			t.Fatalf("round %d: partitioned and global substrates diverge", round)
		}
	}
}
