// Package hub implements the multi-pattern standing-query hub: one data
// graph and one SLen substrate serving many registered patterns at once.
//
// The paper's cost analysis says SLen maintenance dominates GPNM — and
// SLen depends only on the data graph, never on the pattern. A server
// holding n standing patterns over one evolving graph therefore wastes
// (n-1)/n of its maintenance budget if every pattern runs its own
// Session: each would redo the identical substrate synchronisation per
// batch. The hub amortises it. ApplyBatch advances the shared substrate
// exactly once per batch — one structural application, one overlay (or
// matrix) reconciliation, one change log — and only the per-pattern
// work (DER detection, EH-Tree construction, the single amendment pass)
// is repeated, fanned across the partition worker pool.
//
// Epoch-snapshot discipline: a batch is processed in three phases under
// the hub's lock. Phase 1 runs per-pattern DER-I against the frozen
// pre-batch engine state (concurrent readers). Phase 2 is the single
// writer: it widens the horizon for incoming pattern bounds, applies
// ΔGD and synchronises the substrate. Phase 3 fans per-pattern DER-III,
// EH-Tree and the amendment pass across the pool, every worker reading
// the frozen post-batch state. This is exactly the read-epoch contract
// documented on partition.Engine; each pattern's pipeline is the fused
// UA-GPNM pipeline of core.Session.SQuery, so a hub pattern's result
// after every batch equals an independent session's (the differential
// suite enforces it against Scratch sessions).
//
// Subscribers see changes, not result dumps: every batch yields a
// per-pattern Delta (Added/Removed per pattern node, BGS-projected),
// sequence-numbered for at-least-once delivery, with a bounded history
// for long-polling (WaitDeltas) and a resync signal when a subscriber
// falls further behind than the history reaches.
package hub

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"sync"
	"sync/atomic"

	"uagpnm/internal/core"
	"uagpnm/internal/elim"
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/partition"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// PatternID identifies a registered standing pattern.
type PatternID uint64

// Config parameterises a Hub.
type Config struct {
	// Method selects the shared substrate: UAGPNM (the default — the
	// zero value, Scratch, is reinterpreted as UAGPNM since a hub is
	// incremental by construction) runs the label-partitioned engine of
	// §V; any other method runs the global SLen matrix engine. The
	// per-pattern pipeline is the fused UA-GPNM pipeline either way;
	// Method only picks the substrate it runs on.
	Method core.Method
	// Horizon caps SLen at this many hops (0 = exact distances). It is
	// widened automatically to cover every registered pattern's largest
	// finite bound.
	Horizon int
	// DenseThreshold and ELLWidth tune the substrate backends (zero
	// values take the engine defaults).
	DenseThreshold int
	ELLWidth       int
	// Workers bounds both the substrate's internal pool and the hub's
	// per-pattern fan-out (0 = all cores, 1 = fully serial).
	Workers int
	// Shards, when non-empty, serves the UA-GPNM substrate's
	// per-partition intra state from remote shard workers (cmd/gpnm-shard
	// at these host:port addresses). The hub's phase discipline is
	// unchanged: the single writer streams each batch's ops to the
	// workers once, and the per-pattern readers of phase 3 query the
	// frozen post-batch shard state through the coordinator's caches.
	Shards []string
	// SpareShards are standby gpnm-shard workers the substrate promotes
	// when a serving worker is lost: the dead shard's partitions are
	// rebuilt on the spare from the coordinator's mirrors before the
	// in-flight batch retries. Without spares, survivors absorb the
	// lost partitions instead.
	SpareShards []string
	// FailoverRetries bounds how many distinct shard losses each
	// failover boundary may absorb before the hub poisons itself with
	// shard.ErrSubstrateLost. A boundary is one protected engine
	// operation — a batch's substrate phases, a detection or amendment
	// fan, a register's initial query — so one ApplyBatch crosses a few
	// and can in principle absorb a loss at each (partition engine
	// semantics; see partition.WithFailoverRetries). 0 = the default of
	// 1 per boundary; negative = disable failover entirely (every loss
	// poisons, the pre-failover model).
	FailoverRetries int
	// OpChunk sets the sharded substrate's op-stream chunk size: each
	// batch's ordered ops flush to the workers in epoch-fenced chunks of
	// this many ops, in the background, while the single writer is still
	// staging the rest (0 = the engine default; negative = no streaming,
	// one end-of-phase flush — the lock-step shape). Only meaningful
	// with Shards. See partition.WithOpChunk.
	OpChunk int
	// Pipeline opts the hub into the pipelined ApplyBatch queue: calls
	// route through an internal Pipeline, so when batches arrive faster
	// than they apply (concurrent front-end posts, a driver using
	// Submit), batch k+1's pre-state deletion balls are computed while
	// batch k's amendment fan is still running, and phase 1 of k+1
	// adopts them (BatchStats.Overlapped). Results are identical either
	// way — a preview that cannot be proven current is discarded. The
	// lock-step shape (off) applies each batch's phases strictly in
	// sequence.
	Pipeline bool
	// History bounds the per-pattern delta log retained for long-polling
	// (default 256 non-empty deltas). Subscribers further behind than
	// the log reaches receive a resync signal instead of deltas.
	History int
	// DisableIndex turns the pattern-set discrimination index off:
	// every batch fans detection + amendment over every registration
	// (the pre-index behaviour). The differential suites and the
	// -index benchmark use it as the reference side; production hubs
	// keep the index on.
	DisableIndex bool
	// IndexRegionCap bounds the per-batch touch-region BFS (nodes
	// visited). A change log whose reverse ball engulfs the graph makes
	// discrimination pointless — past the cap the index is bypassed for
	// that batch (every pattern woken, BatchStats.IndexBypassed set).
	// 0 = no cap.
	IndexRegionCap int
	// Metrics, when non-nil, receives the hub's telemetry — batch phase
	// histograms (shared with the substrate's, under one
	// gpnm_batch_phase_seconds family), wake counters, per-batch traces,
	// and the sharded substrate's RPC histograms — instead of the
	// process-global obs.Default. Servers leave it nil; the bench
	// harness passes a private registry per run.
	Metrics *obs.Registry
}

// Batch is one epoch's worth of updates for the whole hub: a shared
// data-side sequence ΔGD and, optionally, per-pattern ΔGP sequences.
type Batch struct {
	D []updates.Update               // data updates, applied once for all patterns
	P map[PatternID][]updates.Update // pattern updates, per standing query
}

// Delta is the subscriber-visible change of one pattern's result after
// one batch: Added/Removed per pattern node (BGS-projected; empty Nodes
// means the batch left this pattern's result untouched), tagged with the
// hub sequence number of the batch that produced it.
type Delta struct {
	Pattern PatternID
	Seq     uint64
	Nodes   []simulation.NodeDelta
}

// BatchStats records the shared work of the last ApplyBatch.
type BatchStats struct {
	Seq         uint64
	DataUpdates int
	Patterns    int
	// SLenSync is the wall time of the one shared substrate
	// synchronisation; SLenSyncs the data updates synchronised. n
	// independent sessions would pay both n times for the same batch.
	SLenSync  time.Duration
	SLenSyncs int
	// FanOut is the wall time of the per-pattern detection + amendment
	// fan-out (phase 3); Duration the whole ApplyBatch.
	FanOut   time.Duration
	Duration time.Duration
	// Recovered counts the shard losses this batch absorbed through
	// failover: the dead workers' partitions were rebuilt from the
	// coordinator's mirrors and the batch completed normally. It is the
	// only subscriber-visible trace of a recovered loss.
	Recovered int
	// Woken counts the registrations phase 3 actually fanned over;
	// Skipped those the pattern-set index proved untouchable by this
	// batch (their matches are unchanged by construction, so they got
	// an empty delta without entering the fan). Woken + Skipped ==
	// Patterns.
	Woken   int
	Skipped int
	// IndexBypassed records that this batch's wake decision did not
	// come from the discrimination index — it was disabled, or the
	// touch region overflowed Config.IndexRegionCap — so Woken ==
	// Patterns says nothing about selectivity. Logged per batch so an
	// adaptive policy can learn when discrimination stops paying.
	IndexBypassed bool
	// RPCCalls / RowsPrefetched / RowsMissed summarise this batch's use
	// of the sharded read plane (deltas of the registry's cumulative
	// counters across ApplyBatch): coordinator→worker RPCs issued, rows
	// installed client-side by the bulk paths (/rows + the /ops warm
	// piggyback), and rows that fell through to singleton /row fetches.
	// All zero when the substrate is in-process.
	RPCCalls       uint64
	RowsPrefetched uint64
	RowsMissed     uint64
	// AmendWorkers is the per-pass amendment fan width this batch ran
	// with (the pool divided across the woken registrations; 1 = the
	// sequential drain). Logged so an adaptive phase-shape policy can
	// correlate the decision with the observed amend_fan latency.
	AmendWorkers int
	// Overlapped records that phase 1 of this batch ran ahead of time,
	// overlapped with the previous batch's amendment fan by the
	// pipelined ApplyBatch queue (see Pipeline).
	Overlapped bool
}

// ErrUnknownPattern reports an id that is not (or no longer) registered.
var ErrUnknownPattern = errors.New("hub: unknown pattern")

// registration is one standing query: its evolving pattern, its current
// match, the stats of its last per-pattern pass and its delta log.
type registration struct {
	id    PatternID
	p     *pattern.Graph
	match *simulation.Match
	stats core.QueryStats
	// sig is the pattern's discrimination signature, kept in lockstep
	// with p (re-extracted whenever ΔGP mutates the pattern).
	sig pattern.Signature
	// wokenSeq is the last batch sequence whose phase-3 fan included
	// this registration — the observable trace of the index's wake
	// decision, which the fuzz oracle checks against actual deltas.
	wokenSeq uint64

	deltas       []Delta // most recent non-empty deltas, ascending Seq
	trimmedBelow uint64  // deltas with Seq ≤ this were dropped from the log
}

// Hub owns one data graph and one distance engine and hosts many
// registered patterns as standing queries. All methods are safe for
// concurrent use (an HTTP front end calls them from many handlers); the
// hub serialises writers internally and ApplyBatch is the only method
// that advances the epoch.
type Hub struct {
	mu   sync.Mutex
	cond *sync.Cond

	// The pipelined-preview plane (see pipeline.go). gmu guards the data
	// graph between the single writer (phase 2, write-locked) and the
	// lock-free preview readers that compute the NEXT batch's pre-state
	// balls while this batch's amendment fan still runs. writeGen
	// versions everything a preview depends on — it advances after every
	// graph mutation and every horizon widening, and a preview whose
	// recorded generation no longer matches at apply time is discarded.
	// horizonNow mirrors the engine's current horizon for lock-free
	// preview reads (the engine's own field is unsynchronised).
	gmu        sync.RWMutex
	writeGen   atomic.Uint64
	horizonNow atomic.Int64
	pipe       *Pipeline

	g     *graph.Graph
	eng   shortest.DistanceEngine
	cfg   Config
	regs  map[PatternID]*registration
	order []PatternID // registration order, for deterministic iteration
	idx   *patternIndex
	next  PatternID
	seq   uint64
	last  BatchStats
	obs   *obs.Registry

	// lost poisons the hub after an unrecoverable substrate loss (the
	// engine's failover found no surviving or spare worker, or its
	// budget was spent): a batch that died mid-flight may have advanced
	// the substrate for some patterns and not others, so no further
	// answer can be trusted. Every method that touches results returns
	// this error once set; parked long-polls are woken with it so front
	// ends can drain cleanly. Recoverable losses never reach this field
	// — they surface only as BatchStats.Recovered.
	lost error
}

// New builds the shared substrate over g and returns an empty hub. The
// hub owns g afterwards. With Config.Shards set, building the remote
// intra engines can fail (a worker is unreachable); the error wraps
// shard.ErrSubstrateLost.
func New(g *graph.Graph, cfg Config) (h *Hub, err error) {
	if cfg.Method == core.Scratch {
		cfg.Method = core.UAGPNM
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	h = &Hub{g: g, cfg: cfg, regs: make(map[PatternID]*registration), idx: newPatternIndex(), next: 1}
	h.obs = cfg.Metrics
	if h.obs == nil {
		h.obs = obs.Default
	}
	h.cond = sync.NewCond(&h.mu)
	h.eng = core.NewEngineFor(g, core.Config{
		Method:          cfg.Method,
		Horizon:         cfg.Horizon,
		DenseThreshold:  cfg.DenseThreshold,
		ELLWidth:        cfg.ELLWidth,
		Workers:         cfg.Workers,
		ShardAddrs:      cfg.Shards,
		SpareShardAddrs: cfg.SpareShards,
		FailoverRetries: cfg.FailoverRetries,
		OpChunk:         cfg.OpChunk,
		Metrics:         cfg.Metrics,
	})
	h.horizonNow.Store(int64(cfg.Horizon))
	if cfg.Pipeline {
		h.pipe = NewPipeline(h)
	}
	defer partition.RecoverSubstrateLoss(&err)
	h.eng.Build()
	return h, nil
}

// ensureHorizonLocked widens the substrate horizon through the engine
// while keeping the hub's lock-free mirror (horizonNow) and the preview
// generation in lockstep: widening changes every conservative ball's
// radius, so any in-flight preview must be invalidated. Called with
// h.mu held.
func (h *Hub) ensureHorizonLocked(k int) {
	cur := h.horizonNow.Load()
	if cur != 0 && int64(k) > cur {
		h.horizonNow.Store(int64(k))
		defer h.writeGen.Add(1)
	}
	h.eng.EnsureHorizon(k)
}

// fail records the first substrate loss, wakes every parked long-poll,
// and leaves the hub permanently poisoned. Called with h.mu held.
func (h *Hub) fail(err error) {
	if h.lost == nil {
		h.lost = err
		h.cond.Broadcast()
	}
}

// fanWorkers bounds the per-pattern fan-out.
func (h *Hub) fanWorkers() int {
	if h.cfg.Workers > 0 {
		return h.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Register adds p as a standing query, answers its initial query
// (IQuery) against the current graph state, and returns its id. The hub
// owns p afterwards (pass a Clone to keep an independent copy). The
// substrate horizon is widened to cover p's largest finite bound.
//
// p must share the data graph's label table, and building it intern-ed
// any new labels into that shared table — an unsynchronised write when
// the hub is already processing batches. Construct patterns before
// concurrent hub use, or parse them under the hub's lock with
// RegisterScript.
//
// It errors when the substrate is (or becomes) lost: the initial query
// widens the horizon and reads the engine, both of which can hit a dead
// remote shard.
func (h *Hub) Register(p *pattern.Graph) (id PatternID, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return 0, h.lost
	}
	defer h.failOnLoss(&err)
	defer partition.RecoverSubstrateLoss(&err)
	return h.registerLocked(p), nil
}

// failOnLoss poisons the hub when a recovered error is a substrate
// loss. Deferred AFTER RecoverSubstrateLoss so it observes the
// converted error (defers run last-in-first-out). Called with h.mu held.
func (h *Hub) failOnLoss(err *error) {
	if *err != nil && errors.Is(*err, shard.ErrSubstrateLost) {
		h.fail(*err)
	}
}

// RegisterScript parses the textual pattern format ("node <name>
// <label>" / "edge <from> <to> <bound>" lines) against the hub graph's
// label table and registers the result — parsing happens under the
// hub's lock, so label interning can never race a concurrent batch
// (the HTTP front end's register path). Empty patterns are rejected.
func (h *Hub) RegisterScript(r io.Reader) (PatternID, error) {
	return h.RegisterFunc(func(labels *graph.Labels) (*pattern.Graph, error) {
		return pattern.Parse(r, labels)
	})
}

// RegisterFunc builds a pattern against the hub graph's label table —
// under the hub's lock, so label interning can never race a concurrent
// batch — and registers the result. The API front end's typed register
// path (internal/api) materialises its wire pattern through this; the
// DSL path is RegisterScript. Empty patterns are rejected.
func (h *Hub) RegisterFunc(build func(labels *graph.Labels) (*pattern.Graph, error)) (id PatternID, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return 0, h.lost
	}
	defer h.failOnLoss(&err)
	defer partition.RecoverSubstrateLoss(&err)
	p, err := build(h.g.Labels())
	if err != nil {
		return 0, err
	}
	if p.NumNodes() == 0 {
		return 0, errors.New("hub: empty pattern")
	}
	return h.registerLocked(p), nil
}

// readFailover runs a read-only engine fan under the substrate's
// failover protection when the substrate supports it: a shard worker
// lost between batches surfaces on the next read, and this is what
// turns that into a rebuild-and-retry instead of a poison. Safe here
// because every caller holds h.mu, so the fan is the engine's only
// reader (the read-epoch contract), and every fn overwrites its
// outputs wholesale (idempotent retry).
func (h *Hub) readFailover(fn func()) {
	if pe, ok := h.eng.(*partition.Engine); ok {
		pe.WithReadFailover(fn)
		return
	}
	fn()
}

func (h *Hub) registerLocked(p *pattern.Graph) PatternID {
	if b := p.MaxFiniteBound(); b > 0 {
		h.ensureHorizonLocked(b)
	}
	id := h.next
	h.next++
	// The initial simulation queries the balls of every label candidate
	// of the pattern; on a sharded substrate, plan that row demand into
	// one bulk RPC per worker up front so the fixpoint below runs
	// against a warm row cache instead of a per-row round trip per miss.
	if pe, ok := h.eng.(*partition.Engine); ok && pe.Remote() {
		var cand nodeset.Builder
		p.Nodes(func(u pattern.NodeID) {
			for _, v := range h.g.NodesWithLabel(p.Label(u)) {
				cand.Add(v)
			}
		})
		pe.PrefetchBallRows(cand.Set()) // self-repairing; terminal loss unwinds to Register's recover
	}
	var m *simulation.Match
	h.readFailover(func() { m = simulation.Run(p, h.g, h.eng) })
	r := &registration{
		id:           id,
		p:            p,
		match:        m,
		sig:          pattern.SignatureOf(p),
		trimmedBelow: h.seq, // nothing to long-poll before registration
	}
	h.regs[id] = r
	h.order = append(h.order, id)
	h.idx.add(id, r.sig)
	return id
}

// Unregister removes a standing query, waking any long-pollers on it
// (they observe ErrUnknownPattern). It reports whether id was
// registered. On a poisoned hub it refuses and reports false, matching
// UnregisterErr: once the substrate is terminally lost every mutation —
// even one a loss cannot corrupt, like forgetting a query — surfaces
// the loss, because the process is draining for a supervisor restart
// and partial bookkeeping on the way down only confuses the postmortem.
// (Before the failover work the pair disagreed: Unregister silently
// worked on a poisoned hub while UnregisterErr refused. Refusing is
// the intended behaviour; use Err to distinguish "unknown id" from
// "hub poisoned" when the bool is false.)
func (h *Hub) Unregister(id PatternID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return false
	}
	return h.unregisterLocked(id)
}

// UnregisterErr is Unregister under the Service error contract:
// ErrUnknownPattern for an unregistered id, and the sticky substrate
// loss on a poisoned hub (every Service call must surface it; see
// Unregister for why removal itself also refuses post-loss).
func (h *Hub) UnregisterErr(id PatternID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return h.lost
	}
	if !h.unregisterLocked(id) {
		return ErrUnknownPattern
	}
	return nil
}

func (h *Hub) unregisterLocked(id PatternID) bool {
	r, ok := h.regs[id]
	if !ok {
		return false
	}
	delete(h.regs, id)
	h.idx.remove(id, r.sig)
	for i, o := range h.order {
		if o == id {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	// Drop the registration's bulky state eagerly. The *registration
	// can outlive removal — an ApplyBatch return value, a driver-held
	// handle, a parked long-poll mid-wake all still reference it — and
	// with a large History the delta log alone pins History × |delta|
	// node sets until the last reference dies. Post-removal readers
	// re-lookup h.regs and observe ErrUnknownPattern, never these
	// fields.
	r.deltas = nil
	r.match = nil
	h.cond.Broadcast()
	return true
}

// Patterns returns the registered ids in registration order.
func (h *Hub) Patterns() []PatternID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PatternID(nil), h.order...)
}

// Seq returns the hub's batch sequence number (0 before any batch).
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Graph returns the hub's (evolving) data graph. Treat it as read-only
// while the hub is live — every structural change must flow through
// ApplyBatch or the substrate diverges — and do not read it
// concurrently with ApplyBatch (use GraphStats for a synchronised
// summary).
func (h *Hub) Graph() *graph.Graph { return h.g }

// GraphStats summarises the data graph under the hub's lock — the
// race-free way for a front end to report graph size while batches are
// being applied.
func (h *Hub) GraphStats() graph.Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.g.ComputeStats()
}

// Close releases the hub's substrate shards (remote shard clients drop
// their caches and idle connections; in-process substrates are a
// no-op). Call once the hub is done serving; it does not wait for or
// interrupt in-flight batches.
func (h *Hub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if pe, ok := h.eng.(*partition.Engine); ok {
		return pe.Close()
	}
	return nil
}

// Err reports the hub's sticky substrate-loss error (nil while
// healthy). Front ends surface it from health endpoints so load
// balancers stop routing to a poisoned process.
func (h *Hub) Err() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lost
}

// Status reports the substrate's failover state without taking the
// hub's lock: recovering is true while a shard loss is being repaired
// inside an in-flight batch (degraded, not dead — health endpoints
// answer 200 from this instead of blocking on the batch), recovered
// counts the losses absorbed over the hub's lifetime. Both are zero
// for non-sharded substrates.
func (h *Hub) Status() (recovering bool, recovered uint64) {
	// h.eng is assigned once in New and never replaced, so the
	// lock-free read is safe; the engine's own counters are atomics.
	if pe, ok := h.eng.(*partition.Engine); ok {
		return pe.Recovering(), pe.Recovered()
	}
	return false, 0
}

// LastBatch reports the shared work of the most recent ApplyBatch.
func (h *Hub) LastBatch() BatchStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Match returns a defensive deep copy of pattern id's current match
// (nil, false when id is unknown — or when the hub is poisoned, since
// a loss mid-fan-out can leave some registrations amended and others
// not; check Err to distinguish). Like Session.SQuery's return, the
// copy is the caller's to keep and stays frozen as batches proceed.
func (h *Hub) Match(id PatternID) (*simulation.Match, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.regs[id]
	if !ok || h.lost != nil {
		return nil, false
	}
	return r.match.Clone(r.p), true
}

// Result returns the GPNM node matching result Npi for pattern node u
// of standing query id — freshly materialised, never aliasing hub state.
// Nil both for unknown ids and on a poisoned hub; see ResultErr.
func (h *Hub) Result(id PatternID, u pattern.NodeID) nodeset.Set {
	s, _ := h.ResultErr(id, u)
	return s
}

// ResultErr is Result with the failure modes distinguished:
// ErrUnknownPattern for an unregistered id, the sticky substrate loss
// on a poisoned hub — a loss mid-fan-out can leave some registrations
// amended and others not, so post-loss reads must not be served.
func (h *Hub) ResultErr(id PatternID, u pattern.NodeID) (nodeset.Set, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return nil, h.lost
	}
	r, ok := h.regs[id]
	if !ok {
		return nil, ErrUnknownPattern
	}
	return r.match.Nodes(u), nil
}

// PatternGraph returns a defensive clone of standing query id's current
// pattern graph (nil, false when id is unknown, or on a poisoned hub —
// check Err) — front ends use it to render results with node names
// after ΔGP batches evolved the pattern.
func (h *Hub) PatternGraph(id PatternID) (*pattern.Graph, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.regs[id]
	if !ok || h.lost != nil {
		return nil, false
	}
	return r.p.Clone(), true
}

// Snapshot returns a mutually consistent view of one standing query —
// pattern, match (both defensive clones) and the hub sequence they
// correspond to — taken under one lock acquisition, so a batch landing
// between calls can never pair a stale match with a newer pattern or
// sequence number. It errors with ErrUnknownPattern for an
// unregistered id, and with the sticky substrate loss on a poisoned
// hub (post-loss state may be half-amended and must not be served).
func (h *Hub) Snapshot(id PatternID) (p *pattern.Graph, m *simulation.Match, seq uint64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return nil, nil, 0, h.lost
	}
	r, ok := h.regs[id]
	if !ok {
		return nil, nil, 0, ErrUnknownPattern
	}
	p = r.p.Clone()
	return p, r.match.Clone(p), h.seq, nil
}

// PatternStats reports the per-pattern pass statistics of id's last
// amendment (zero before the first batch after registration).
func (h *Hub) PatternStats(id PatternID) (core.QueryStats, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.regs[id]
	if !ok {
		return core.QueryStats{}, false
	}
	return r.stats, true
}

// PatternStatsErr is PatternStats under the Service error contract:
// ErrUnknownPattern for an unregistered id, the sticky substrate loss
// on a poisoned hub. The API front end's /stats endpoint reads through
// this so the two failure modes map to distinct wire errors.
func (h *Hub) PatternStatsErr(id PatternID) (core.QueryStats, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return core.QueryStats{}, h.lost
	}
	r, ok := h.regs[id]
	if !ok {
		return core.QueryStats{}, ErrUnknownPattern
	}
	return r.stats, nil
}

// Metrics returns the hub's telemetry registry (Config.Metrics, or the
// process-global default). The API front end serves it at /v1/metrics;
// it also holds the per-batch phase traces behind /v1/trace.
func (h *Hub) Metrics() *obs.Registry { return h.obs }

// rpcPlane is one snapshot of the registry's cumulative sharded-read
// counters; ApplyBatch takes one before and one after to report the
// batch's own RPC traffic in BatchStats.
type rpcPlane struct {
	calls, prefetched, missed uint64
}

func (h *Hub) rpcPlaneSnapshot() rpcPlane {
	var p rpcPlane
	for _, n := range h.obs.HistogramCounts("gpnm_rpc_seconds") {
		p.calls += n
	}
	p.prefetched = h.obs.Counter("gpnm_rpc_rows_prefetched_total").Value()
	p.missed = h.obs.Counter("gpnm_rpc_rows_missed_total").Value()
	return p
}

// span records one hub-side batch phase into the same histogram family
// the substrate's phases land in, and into the batch's trace.
func (h *Hub) span(tr *obs.Trace, name string, start time.Time) {
	d := time.Since(start)
	h.obs.Histogram("gpnm_batch_phase_seconds", "phase", name).Observe(d)
	tr.AddSpan(name, d)
}

// ApplyBatch processes one update batch for every standing query and
// returns one Delta per registered pattern, in registration order
// (possibly with empty Nodes), together with this batch's shared-work
// stats (returned rather than re-read so concurrent callers never see
// another batch's numbers). The shared SLen synchronisation and
// change-log construction run once; only per-pattern detection and
// amendment fan out. It errors without touching anything when the
// batch references an unknown pattern, puts an update on the wrong
// side, or carries a node insert with a mispredicted id.
//
// Losing a substrate shard mid-batch is first handled by failover: the
// substrate quarantines the dead worker, rebuilds its partitions from
// the coordinator's mirrors on survivors or spares, and retries the
// in-flight work — invisible here except for BatchStats.Recovered.
// Parked WaitDeltas long-polls simply stay parked through the recovery
// window (the batch is still in flight) and wake with the batch's
// deltas as usual. Only when recovery is exhausted — no surviving
// capacity, or the failover budget spent — does ApplyBatch return an
// error wrapping shard.ErrSubstrateLost and poison the hub: the shared
// substrate may then be half-advanced relative to some patterns'
// matches, so every further call fails with the same error and parked
// long-polls are woken with it. Front ends drain and restart into a
// fresh build.
func (h *Hub) ApplyBatch(b Batch) ([]Delta, BatchStats, error) {
	if h.pipe != nil {
		// Pipelined hubs route every batch through the queue so that
		// concurrently posted batches overlap (each caller still blocks
		// for its own batch's result, preserving the synchronous
		// contract).
		return h.pipe.Submit(b).Wait()
	}
	return h.applyBatch(b, nil, func() {})
}

// applyBatch is ApplyBatch's body. ov, when non-nil, carries the next
// batch's overlap preview (adopted only if its generation still
// matches); phase2Done is invoked once the graph mutation of phase 2 is
// complete — the pipeline's signal that the NEXT batch's preview may
// start reading the graph. It is NOT invoked on paths that never reach
// phase 2 (validation errors); the pipeline releases those waiters
// itself after applyBatch returns.
func (h *Hub) applyBatch(b Batch, ov *overlap, phase2Done func()) (ds []Delta, st BatchStats, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lost != nil {
		return nil, BatchStats{}, h.lost
	}
	defer h.failOnLoss(&err)
	defer partition.RecoverSubstrateLoss(&err)
	start := time.Now()
	_, recovered0 := h.Status()
	rpc0 := h.rpcPlaneSnapshot()
	h.obs.Counter("gpnm_hub_batches_total").Inc()

	// One trace per batch: hub phases append to it directly, and the
	// partition substrate's ApplyDataBatch phases flow into it through
	// the trace sink. Safe because ApplyBatch is the single writer (h.mu
	// held) and the sink is detached before returning.
	tr := &obs.Trace{Start: start}
	if pe, ok := h.eng.(*partition.Engine); ok {
		pe.SetTraceSink(tr)
		defer pe.SetTraceSink(nil)
	}

	// Validate fully before touching anything: the appliers panic on
	// malformed batches (wrong-side updates, mispredicted node-insert
	// ids), and a panic mid-batch — worse, inside a pooled worker —
	// would leave the hub's substrate half-advanced. Node ids are
	// assigned sequentially and never reused, so an insert's id must be
	// the graph's next id offset by the inserts before it in the batch.
	nextData := uint32(h.g.NumIDs())
	for _, u := range b.D {
		if !u.Kind.IsData() {
			return nil, BatchStats{}, fmt.Errorf("hub: pattern update %v on the data side", u)
		}
		if u.Kind == updates.DataNodeInsert {
			if u.Node != nextData {
				return nil, BatchStats{}, fmt.Errorf("hub: data node insert id %d, next assignable id is %d", u.Node, nextData)
			}
			nextData++
		}
	}
	maxBound := 0
	for pid, ups := range b.P {
		r, ok := h.regs[pid]
		if !ok {
			return nil, BatchStats{}, fmt.Errorf("%w: %d", ErrUnknownPattern, pid)
		}
		nextPat := pattern.NodeID(r.p.NumIDs())
		for _, u := range ups {
			if u.Kind.IsData() {
				return nil, BatchStats{}, fmt.Errorf("hub: data update %v on the pattern side", u)
			}
			if u.Kind == updates.PatternNodeInsert {
				if pattern.NodeID(u.Node) != nextPat {
					return nil, BatchStats{}, fmt.Errorf("hub: pattern %d node insert id %d, next assignable id is %d", pid, u.Node, nextPat)
				}
				nextPat++
			}
			if u.Kind == updates.PatternEdgeInsert && !u.Bound.IsStar() && int(u.Bound) > maxBound {
				maxBound = int(u.Bound)
			}
		}
	}
	// Pre-intern every label the batch can introduce, while still
	// single-threaded: phase 3 applies ΔGP on worker goroutines, and
	// pattern.AddNode interns into the label table shared by the data
	// graph and every pattern — concurrent interning of an unseen label
	// would be an unsynchronised map write. After this loop the workers'
	// Intern calls all take the read-only fast path.
	for _, ups := range b.P {
		for _, u := range ups {
			if u.Kind == updates.PatternNodeInsert {
				for _, l := range u.Labels {
					h.g.Labels().Intern(l)
				}
			}
		}
	}

	regs := make([]*registration, len(h.order))
	for i, id := range h.order {
		regs[i] = h.regs[id]
	}

	// Labels the batch's node churn touches, collected while the graph
	// is still pre-batch: a deleted node's labels are unreadable after
	// phase 2, yet its disappearance can shrink a match (the amendment
	// drops dead nodes from old sets without any worklist traffic). The
	// discrimination index treats them as touched at distance zero.
	// Insert labels ride along for the insert-then-delete-in-one-batch
	// case, where the node never exists outside the batch.
	var churnLabels []graph.LabelID
	if len(b.D) > 0 {
		seen := make(map[graph.LabelID]bool)
		addLabel := func(l graph.LabelID) {
			if !seen[l] {
				seen[l] = true
				churnLabels = append(churnLabels, l)
			}
		}
		for _, u := range b.D {
			switch u.Kind {
			case updates.DataNodeInsert:
				for _, name := range u.Labels {
					addLabel(h.g.Labels().Intern(name))
				}
			case updates.DataNodeDelete:
				if h.g.Alive(u.Node) {
					for _, l := range h.g.NodeLabels(u.Node) {
						addLabel(l)
					}
				}
			}
		}
	}

	// Single writer: widen the horizon before any concurrent phase asks
	// about incoming bounds (EnsureHorizon rebuilds substrate state; the
	// widening also invalidates any in-flight pipeline preview, whose
	// balls were taken at the old radius).
	if maxBound > 0 {
		h.ensureHorizonLocked(maxBound)
	}

	// Phase 1 — DER-I per pattern against the frozen pre-batch epoch.
	// Skipped outright for data-only batches (the common case): nil
	// canInfos entries are what RunUAPass expects then. The fan covers
	// only the patterns with ΔGP updates and runs under read failover:
	// each worker overwrites canInfos[i] wholesale, so a repaired retry
	// recomputes cleanly.
	workers := h.fanWorkers()
	canInfos := make([][]elim.Info, len(regs))
	if len(b.P) > 0 {
		der1Start := time.Now()
		var withUps []int
		for i, r := range regs {
			if len(b.P[r.id]) > 0 {
				withUps = append(withUps, i)
			}
		}
		h.readFailover(func() {
			partition.ForEach(workers, len(withUps), func(k int) {
				i := withUps[k]
				r := regs[i]
				canInfos[i] = elim.CanSets(b.P[r.id], r.match, r.p, h.g, h.eng)
			})
		})
		h.span(tr, "der1_fan", der1Start)
	}

	// Phase 2 — the single writer advances the epoch: one structural
	// application, one substrate reconciliation, one change log —
	// regardless of how many patterns are standing.
	// Adopt the overlap preview only when provably current: its
	// generation must match — no graph mutation and no horizon widening
	// (our own maxBound widening above included) since the balls were
	// taken. A stale preview is silently dropped and phase 1 runs
	// normally; results are identical either way.
	overlapped := ov != nil && len(ov.pre) == len(b.D) && ov.gen == h.writeGen.Load()
	if overlapped {
		h.obs.Histogram("gpnm_batch_phase_seconds", "phase", "pre_overlap").Observe(ov.wall)
		tr.AddSpan("pre_overlap", ov.wall)
		h.obs.Counter("gpnm_hub_overlapped_total").Inc()
	}

	slenStart := time.Now()
	var affSets []nodeset.Set
	var changeLog nodeset.Set
	// The write lock pairs with the preview readers of pipeline.go: a
	// straggling preview finishes against the pre-batch state before the
	// mutation starts (and is then discarded by the generation bump); a
	// late one blocks here and reads the post-batch state. The bump
	// happens after the unlock so no preview can record the new
	// generation against pre-mutation reads.
	h.gmu.Lock()
	if pe, ok := h.eng.(*partition.Engine); ok {
		var pre []nodeset.Set
		if overlapped {
			pre = ov.pre
		}
		affSets, changeLog, err = pe.ApplyDataBatchPre(b.D, h.g, pre)
		if err != nil {
			h.gmu.Unlock()
			h.writeGen.Add(1)
			phase2Done()
			return nil, BatchStats{}, err
		}
	} else {
		affSets = make([]nodeset.Set, len(b.D))
		var log nodeset.Builder
		for i, u := range b.D {
			affSets[i] = updates.ApplyData(u, h.g, h.eng)
			log.AddAll(affSets[i])
		}
		changeLog = log.Set()
	}
	h.gmu.Unlock()
	h.writeGen.Add(1)
	// The graph now holds the post-batch state every later phase reads:
	// the next batch's preview may start.
	phase2Done()
	slen := time.Since(slenStart)
	h.span(tr, "slen_sync", slenStart)

	// Wake planning — the discrimination index routes the batch's touch
	// set (change log + churn labels) through the label × radius
	// envelopes and prunes the phase-3 fan to the affected subset.
	// Conservative by construction: a skipped registration's amendment
	// would provably be the identity (see index.go), so its match,
	// pattern and stats stay put and it gets an empty delta — exactly
	// what running the pass would have produced, minus the work.
	seq := h.seq + 1
	wakeStart := time.Now()
	woken, bypassed := h.planWake(regs, b, changeLog, churnLabels)
	h.span(tr, "wake_plan", wakeStart)
	wokenIdx := make([]int, 0, len(regs))
	deltas := make([]Delta, len(regs))
	for i, r := range regs {
		deltas[i] = Delta{Pattern: r.id, Seq: seq}
		if woken[i] {
			wokenIdx = append(wokenIdx, i)
		}
	}

	// Phase 3 — per-pattern DER-III + EH-Tree + one amendment pass,
	// fanned across the worker pool over the woken registrations only;
	// every worker reads the frozen post-batch epoch. Workers write
	// into outs/deltas rather than the registrations, and the commit
	// happens only after the whole fan has joined: that makes the fan
	// idempotent, so a shard worker lost mid-amendment is repaired by
	// read failover and the fan simply re-runs against the same
	// pre-commit state.
	// Row-demand plan for the fan: the amendment passes below read the
	// balls of the batch's affected nodes, and their removal cascades
	// recheck the woken patterns' label candidates. On a sharded
	// substrate, fetch those source rows in one bulk RPC per worker now
	// (timed as row_plan) so the fan's stitched ball builds resolve from
	// the warm client row cache. The candidate demand is mostly cached
	// already — the bulk client refetches only rows the batch's
	// partition-scoped invalidation dropped — and whatever the cascade
	// reaches beyond the plan still misses to singleton /row fetches.
	if len(wokenIdx) > 0 {
		if pe, ok := h.eng.(*partition.Engine); ok && pe.Remote() {
			var demand nodeset.Builder
			for _, s := range affSets {
				demand.AddAll(s)
			}
			for _, k := range wokenIdx {
				p := regs[k].p
				p.Nodes(func(u pattern.NodeID) {
					for _, v := range h.g.NodesWithLabel(p.Label(u)) {
						demand.Add(v)
					}
				})
			}
			pe.PrefetchBallRows(demand.Set()) // spans itself as row_plan via the trace sink
		}
	}

	fanStart := time.Now()
	type patternPass struct {
		p     *pattern.Graph
		match *simulation.Match
		stats core.QueryStats
	}
	outs := make([]patternPass, len(regs))
	// The Aff infos are batch-constant (ehtree.Build copies what it
	// keeps), so every pattern's pass shares one slice.
	affInfos := elim.AffSetsFromApplication(b.D, affSets)
	// Phase-shape decision: the pool splits between the per-pattern fan
	// and each pass's internal amendment parallelism. A wide wake (many
	// patterns) saturates the outer fan, so passes drain sequentially;
	// a narrow wake hands the idle workers to the passes themselves.
	// The chosen width is logged per batch (BatchStats.AmendWorkers,
	// gpnm_hub_amend_workers) so a future adaptive policy has the data.
	amendWorkers := 1
	if len(wokenIdx) > 0 {
		if amendWorkers = workers / len(wokenIdx); amendWorkers < 1 {
			amendWorkers = 1
		}
	}
	h.readFailover(func() {
		partition.ForEach(workers, len(wokenIdx), func(k int) {
			i := wokenIdx[k]
			r := regs[i]
			ups := b.P[r.id]
			passStart := time.Now()

			newP := r.p
			if len(ups) > 0 {
				newP = r.p.Clone()
				updates.ApplyPatternBatch(ups, newP)
			}

			pass := core.RunUAPass(r.match, newP, h.g, h.eng, affInfos, canInfos[i], changeLog, amendWorkers)

			deltas[i] = Delta{Pattern: r.id, Seq: seq, Nodes: simulation.Delta(r.match, pass.Match)}
			outs[i] = patternPass{p: newP, match: pass.Match, stats: core.QueryStats{
				Duration:       time.Since(passStart),
				Passes:         1,
				DataUpdates:    len(b.D),
				PatternUpdates: len(ups),
				TreeSize:       pass.TreeSize,
				TreeRoots:      pass.TreeRoots,
				Eliminated:     pass.Eliminated,
				SeedNodes:      pass.SeedNodes,
			}}
		})
	})
	h.span(tr, "amend_fan", fanStart)
	for _, i := range wokenIdx {
		r := regs[i]
		r.p, r.match, r.stats = outs[i].p, outs[i].match, outs[i].stats
		r.wokenSeq = seq
		if len(b.P[r.id]) > 0 {
			// ΔGP moved the pattern's labels and bounds: keep the
			// discrimination signature in lockstep.
			sig := pattern.SignatureOf(r.p)
			h.idx.update(r.id, r.sig, sig)
			r.sig = sig
		}
	}

	h.seq = seq
	for i, r := range regs {
		r.appendDelta(deltas[i], h.cfg.History)
	}
	_, recovered1 := h.Status()
	rpc1 := h.rpcPlaneSnapshot()
	h.last = BatchStats{
		Seq:            seq,
		DataUpdates:    len(b.D),
		Patterns:       len(regs),
		SLenSync:       slen,
		SLenSyncs:      len(b.D),
		FanOut:         time.Since(fanStart),
		Duration:       time.Since(start),
		Recovered:      int(recovered1 - recovered0),
		Woken:          len(wokenIdx),
		Skipped:        len(regs) - len(wokenIdx),
		IndexBypassed:  bypassed,
		RPCCalls:       rpc1.calls - rpc0.calls,
		RowsPrefetched: rpc1.prefetched - rpc0.prefetched,
		RowsMissed:     rpc1.missed - rpc0.missed,
		AmendWorkers:   amendWorkers,
		Overlapped:     overlapped,
	}
	h.obs.Counter("gpnm_hub_woken_total").Add(uint64(h.last.Woken))
	h.obs.Counter("gpnm_hub_skipped_total").Add(uint64(h.last.Skipped))
	if bypassed {
		h.obs.Counter("gpnm_hub_index_bypassed_total").Inc()
	}
	h.obs.Gauge("gpnm_hub_seq").Set(int64(seq))
	h.obs.Gauge("gpnm_hub_patterns").Set(int64(len(regs)))
	h.obs.Gauge("gpnm_hub_amend_workers").Set(int64(amendWorkers))
	tr.Seq = seq
	tr.DataUpdates = len(b.D)
	tr.Patterns = len(regs)
	tr.Woken = h.last.Woken
	tr.Skipped = h.last.Skipped
	tr.Recovered = h.last.Recovered
	h.obs.RecordTrace(*tr)
	h.cond.Broadcast()
	return deltas, h.last, nil
}

// cloneDelta deep-copies a delta's node sets. Deltas cross the hub
// boundary twice — returned from ApplyBatch and served from the poll
// history — and the defensive-copy contract holds on both: neither copy
// shares backing storage with the other or with hub state.
func cloneDelta(d Delta) Delta {
	if len(d.Nodes) == 0 {
		return d
	}
	nodes := make([]simulation.NodeDelta, len(d.Nodes))
	for i, nd := range d.Nodes {
		nodes[i] = simulation.NodeDelta{
			Node:    nd.Node,
			Added:   nd.Added.Clone(),
			Removed: nd.Removed.Clone(),
		}
	}
	d.Nodes = nodes
	return d
}

// appendDelta records a non-empty delta in the bounded log (as a private
// copy — the original is returned to ApplyBatch's caller).
func (r *registration) appendDelta(d Delta, history int) {
	if len(d.Nodes) == 0 {
		return // no-change batches are not subscriber events
	}
	r.deltas = append(r.deltas, cloneDelta(d))
	if over := len(r.deltas) - history; over > 0 {
		r.trimmedBelow = r.deltas[over-1].Seq
		r.deltas = append(r.deltas[:0], r.deltas[over:]...)
	}
}

// WaitDeltas long-polls pattern id: it blocks until at least one delta
// with Seq > since exists, then returns every retained one in ascending
// Seq order. resync reports that the subscriber is further behind than
// the bounded history reaches (or predates registration) and must fetch
// the full result instead. It unblocks with ctx's error on timeout or
// cancellation, and with ErrUnknownPattern when the query is (or
// becomes) unregistered.
func (h *Hub) WaitDeltas(ctx context.Context, id PatternID, since uint64) (ds []Delta, resync bool, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		h.mu.Lock()
		h.cond.Broadcast()
		h.mu.Unlock()
	})
	defer stop()
	for {
		if h.lost != nil {
			// Substrate loss closes every long-poll: there will never be
			// another delta, and the front end needs its handlers back to
			// drain.
			return nil, false, h.lost
		}
		r, ok := h.regs[id]
		if !ok {
			return nil, false, ErrUnknownPattern
		}
		if since < r.trimmedBelow {
			return nil, true, nil
		}
		i := sort.Search(len(r.deltas), func(i int) bool { return r.deltas[i].Seq > since })
		if i < len(r.deltas) {
			out := make([]Delta, len(r.deltas)-i)
			for j, d := range r.deltas[i:] {
				out[j] = cloneDelta(d)
			}
			return out, false, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		h.cond.Wait()
	}
}
