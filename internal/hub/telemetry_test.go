package hub

import (
	"net/http/httptest"
	"testing"

	"uagpnm/internal/obs"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// TestHubTelemetryDifferential is the observability pin: two hubs over
// the same instance — one in-process, one sharded across two real HTTP
// workers — each reporting into a private registry, must stay
// result-identical batch for batch (instrumentation changes nothing),
// while the registries show the telemetry actually advancing: hub batch
// counters and phase histograms on both sides, RPC latency histograms
// only on the sharded side, and a populated trace ring.
func TestHubTelemetryDifferential(t *testing.T) {
	const k, rounds = 3, 4
	addrs := make([]string, 2)
	for i := range addrs {
		ts := httptest.NewServer(shard.NewServer().Handler())
		t.Cleanup(ts.Close)
		addrs[i] = ts.URL
	}
	workerOpsBefore := obs.Default.Counter("gpnm_worker_requests_total", "endpoint", "/ops").Value()

	g, ps := randomInstance(86000, 40, 110, k)
	regSharded, regLocal := obs.NewRegistry(), obs.NewRegistry()
	hs := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 4, Shards: addrs, Metrics: regSharded})
	hl := mustHub(t, g.Clone(), Config{Horizon: 3, Workers: 4, Metrics: regLocal})
	idsS, idsL := make([]PatternID, k), make([]PatternID, k)
	for i, p := range ps {
		idsS[i] = mustRegister(t, hs, p.Clone())
		idsL[i] = mustRegister(t, hl, p.Clone())
	}

	for round := 0; round < rounds; round++ {
		data := updates.Generate(
			updates.Balanced(int64(8600+round), 0, 10), hl.Graph(), ps[0])
		if _, _, err := hs.ApplyBatch(Batch{D: data.D}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := hl.ApplyBatch(Batch{D: data.D}); err != nil {
			t.Fatal(err)
		}
		for i := range ps {
			got, ok1 := hs.Match(idsS[i])
			ref, ok2 := hl.Match(idsL[i])
			if !ok1 || !ok2 || !got.Equal(ref) {
				t.Fatalf("round %d pattern %d: sharded hub (metrics on) diverges from in-process hub", round, i)
			}
		}
	}

	for name, reg := range map[string]*obs.Registry{"sharded": regSharded, "local": regLocal} {
		if got := reg.Counter("gpnm_hub_batches_total").Value(); got != rounds {
			t.Errorf("%s: gpnm_hub_batches_total = %d, want %d", name, got, rounds)
		}
		phases := reg.HistogramSums("gpnm_batch_phase_seconds")
		for _, phase := range []string{"slen_sync", "wake_plan", "amend_fan"} {
			if _, ok := phases[phase]; !ok {
				t.Errorf("%s: gpnm_batch_phase_seconds missing phase %q (have %v)", name, phase, phases)
			}
		}
		traces := reg.Traces()
		if len(traces) != rounds {
			t.Fatalf("%s: trace ring holds %d traces, want %d", name, len(traces), rounds)
		}
		last := traces[rounds-1]
		if last.Seq != rounds || last.DataUpdates != 10 || last.Patterns != k || len(last.Spans) == 0 {
			t.Errorf("%s: last trace = %+v", name, last)
		}
		if last.Woken+last.Skipped != last.Patterns {
			t.Errorf("%s: wake accounting woken=%d skipped=%d patterns=%d",
				name, last.Woken, last.Skipped, last.Patterns)
		}
	}

	// Only the sharded side crosses RPC: its registry carries per-endpoint
	// latency observations, the in-process one none. The sharded engine is
	// the §V partition engine, so its trace also carries the engine phases.
	if got := regSharded.Histogram("gpnm_rpc_seconds", "endpoint", "/ops").Count(); got == 0 {
		t.Error("sharded: gpnm_rpc_seconds{endpoint=\"/ops\"} never observed")
	}
	if got := regLocal.Histogram("gpnm_rpc_seconds", "endpoint", "/ops").Count(); got != 0 {
		t.Errorf("local: gpnm_rpc_seconds observed %d times, want 0", got)
	}
	if last, ok := regSharded.LastTrace(); !ok || last.SpanSeconds("oplog_flush") == 0 && last.SpanSeconds("pre_balls") == 0 {
		t.Errorf("sharded: last trace carries no engine phase spans: %+v", last)
	}
	// The workers saw the op streams too (worker-side view of the same
	// RPCs, reported into the process-global registry).
	if after := obs.Default.Counter("gpnm_worker_requests_total", "endpoint", "/ops").Value(); after <= workerOpsBefore {
		t.Errorf("worker-side gpnm_worker_requests_total{/ops} did not advance (%d -> %d)", workerOpsBefore, after)
	}
}
