package hub

// Regression pins for the batched shard read plane: a sharded hub batch
// must plan its row demand into at most ONE bulk /rows call per worker
// (the per-row fallback staying a miss path, never the plan), and the
// bulk plane must actually carry traffic — otherwise a refactor could
// silently fall back to thousands of singleton /row round trips per
// batch and no functional test would notice.

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/obs"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// randomHubInstance builds a labelled random graph and one pattern over
// its label table, sized so batches produce real amend-fan traffic.
func randomHubInstance(seed int64, n, m int) (*graph.Graph, *pattern.Graph) {
	labels := []string{"A", "B", "C", "D"}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	p := pattern.New(g.Labels())
	a := p.AddNode("A")
	b := p.AddNode("B")
	c := p.AddNode("C")
	p.AddEdge(a, b, 2)
	p.AddEdge(b, c, 1)
	return g, p
}

func TestBulkRowsCallsPerBatchBounded(t *testing.T) {
	const shards = 2
	addrs := make([]string, shards)
	for i := range addrs {
		addrs[i] = startWorker(t).URL
	}
	g, p := randomHubInstance(11, 160, 520)

	reg := obs.NewRegistry()
	h, err := New(g.Clone(), Config{Horizon: 3, Workers: 2, Shards: addrs, Metrics: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer h.Close()
	if _, err := h.Register(p.Clone()); err != nil {
		t.Fatalf("Register: %v", err)
	}

	// Pre-generate batches against an evolving clone so node-insert ids
	// line up when the hub replays them.
	gw := g.Clone()
	batches := make([]updates.Batch, 3)
	for i := range batches {
		batches[i] = updates.Generate(updates.Balanced(int64(100+i), 0, 40), gw, p)
		updates.ApplyDataStructural(batches[i].D, gw)
	}

	rowsCalls := func() uint64 { return reg.HistogramCounts("gpnm_rpc_seconds")["/rows"] }
	var prefetched, rpcs uint64
	for i, b := range batches {
		before := rowsCalls()
		_, st, err := h.ApplyBatch(Batch{D: b.D})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if got := rowsCalls() - before; got > shards {
			t.Fatalf("batch %d issued %d /rows calls, want ≤ %d (one bulk plan per shard)", i, got, shards)
		}
		prefetched += st.RowsPrefetched
		rpcs += st.RPCCalls
	}
	// The plane must be on, not vacuously bounded: across the run the
	// bulk paths (/rows + the /ops warm piggyback) installed rows, and
	// BatchStats carried the RPC traffic.
	if prefetched == 0 {
		t.Fatal("no rows were bulk-prefetched across the run — the planned read plane is off")
	}
	if rpcs == 0 {
		t.Fatal("BatchStats.RPCCalls stayed 0 on a sharded hub")
	}
	// The merged op-flush plan (bridge rows of touched partitions +
	// source rows of op endpoints) overlaps whenever an endpoint IS a
	// bridge node; those copies must be dropped before the wire, and the
	// scorecard counter must show it happened on a batch of this shape.
	if deduped := reg.Counter("gpnm_rpc_rows_deduped_total").Value(); deduped == 0 {
		t.Fatal("gpnm_rpc_rows_deduped_total = 0: bulk plans shipped duplicate row requests")
	}
}
