package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList hammers the SNAP edge-list parser with arbitrary
// input: it must never panic, must reject malformed lines with an
// error (not a corrupt graph), and on success must return a graph
// whose edges round-trip through WriteEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0\t1\n1\t2\n")
	f.Add("# comment only\n")
	f.Add("")
	f.Add("0\t0\n")                      // self-loop: skipped, not an error
	f.Add("0\t1\n0\t1\n")                // duplicate edge
	f.Add("9999999999999999999999\t1\n") // overflowing id
	f.Add("-3\t4\n")                     // negative id
	f.Add("0\n")                         // truncated edge line
	f.Add("a\tb\n")                      // non-numeric ids
	f.Add("# FromNodeId\tToNodeId\n0 1") // header + space-separated, no newline
	f.Add("0\t1\r\n2\t3\r\n")            // CRLF
	f.Add("0\t1\t7\n")                   // trailing extra field (tolerated)
	f.Add("\x00\t\x01\n")                // binary garbage
	f.Add("0\t1\n\n\n2\t1\n# t\n3\t1\n") // blank lines and comments interleaved

	f.Fuzz(func(t *testing.T, input string) {
		g, idMap, err := ReadEdgeList(strings.NewReader(input), nil, "node")
		if err != nil {
			return // rejected input: nothing else to hold
		}
		if g == nil {
			t.Fatal("nil graph without error")
		}
		// Every file id maps to a live node.
		for fileID, id := range idMap {
			if !g.Alive(id) {
				t.Fatalf("file id %d mapped to dead node %d", fileID, id)
			}
		}
		if g.NumNodes() != len(idMap) {
			t.Fatalf("%d nodes for %d mapped file ids", g.NumNodes(), len(idMap))
		}
		// Accepted graphs are simple: no self-loops survive the parse.
		g.Edges(func(e Edge) {
			if e.From == e.To {
				t.Fatalf("self-loop %d survived parsing", e.From)
			}
		})
		// Round-trip: what we write must parse back to the same shape.
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("writing parsed graph: %v", err)
		}
		g2, _, err := ReadEdgeList(&buf, nil, "node")
		if err != nil {
			t.Fatalf("reparsing written graph: %v", err)
		}
		if g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip edges %d, want %d", g2.NumEdges(), g.NumEdges())
		}
	})
}

// FuzzApplyLabels fuzzes the label-file parser against a small fixed
// graph: no panics, errors on unknown nodes or empty label sets, and on
// success every named node holds at least one label.
func FuzzApplyLabels(f *testing.F) {
	f.Add("0\tPM\n1\tSE,DB\n")
	f.Add("0 PM\n")
	f.Add("5\tPM\n") // unknown node
	f.Add("0\t,\n")  // labels dissolve to empty
	f.Add("x\tPM\n") // non-numeric id
	f.Add("0\n")     // missing label field
	f.Add("# c\n\n2\tTE\n")
	f.Add("0\tA,A,A\n") // duplicate labels
	f.Add("4294967295\tA\n")
	f.Add("-1\tA\n")

	f.Fuzz(func(t *testing.T, input string) {
		g := New(nil)
		for i := 0; i < 3; i++ {
			g.AddNode("node")
		}
		if err := g.ApplyLabels(strings.NewReader(input)); err != nil {
			return
		}
		g.Nodes(func(id NodeID) {
			if len(g.NodeLabels(id)) == 0 {
				t.Fatalf("node %d left without labels", id)
			}
		})
	})
}
