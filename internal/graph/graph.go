// Package graph implements the dynamic directed data graph GD of the
// paper: a directed simple graph whose nodes carry one or more labels
// (fa(u), e.g. job titles) and which supports the four update kinds the
// GPNM problem is defined over — edge insertion/deletion and node
// insertion/deletion — while keeping node identifiers stable.
//
// Identifier stability matters: the SLen matrices, candidate sets and
// affected sets built by the higher layers are all keyed by node id and
// must survive updates. Deleting a node therefore tombstones its id;
// fresh nodes always receive fresh ids.
package graph

import (
	"fmt"
	"sort"

	"uagpnm/internal/nodeset"
)

// NodeID identifies a node. Ids are dense, assigned in insertion order,
// and never reused.
type NodeID = nodeset.ID

// LabelID identifies an interned label string within one Labels table.
type LabelID uint32

// Labels interns label strings to dense LabelIDs so graphs and patterns
// sharing one table can compare labels by integer.
type Labels struct {
	byName map[string]LabelID
	names  []string
}

// NewLabels returns an empty label table.
func NewLabels() *Labels {
	return &Labels{byName: make(map[string]LabelID)}
}

// Intern returns the id for name, assigning a fresh one if unseen.
func (l *Labels) Intern(name string) LabelID {
	if id, ok := l.byName[name]; ok {
		return id
	}
	id := LabelID(len(l.names))
	l.byName[name] = id
	l.names = append(l.names, name)
	return id
}

// Lookup returns the id for name and whether it is interned.
func (l *Labels) Lookup(name string) (LabelID, bool) {
	id, ok := l.byName[name]
	return id, ok
}

// Name returns the string for id. It panics on an out-of-range id, which
// indicates a label-table mix-up (a programming error, not bad input).
func (l *Labels) Name(id LabelID) string { return l.names[id] }

// Count reports how many labels are interned.
func (l *Labels) Count() int { return len(l.names) }

// Graph is a mutable directed simple graph with labelled nodes.
// The zero value is not usable; construct with New.
//
// Graph is not safe for concurrent mutation; concurrent reads are safe.
type Graph struct {
	labels *Labels

	out    [][]NodeID  // sorted successor lists
	in     [][]NodeID  // sorted predecessor lists
	nlab   [][]LabelID // sorted label sets per node (fa)
	alive  []bool
	nAlive int
	nEdges int

	// byLabel indexes alive nodes per label; it backs the label candidate
	// sets of the matcher and the label-based partition. Lists are kept
	// sorted.
	byLabel map[LabelID][]NodeID
}

// New returns an empty graph using the given label table (a fresh table
// is created when labels is nil).
func New(labels *Labels) *Graph {
	if labels == nil {
		labels = NewLabels()
	}
	return &Graph{labels: labels, byLabel: make(map[LabelID][]NodeID)}
}

// Labels exposes the graph's label table.
func (g *Graph) Labels() *Labels { return g.labels }

// NumIDs reports the id space bound: every node id ever assigned is < NumIDs.
// Tombstoned ids count. Matrices indexed by node id size themselves by this.
func (g *Graph) NumIDs() int { return len(g.out) }

// NumNodes reports the number of alive nodes.
func (g *Graph) NumNodes() int { return g.nAlive }

// NumEdges reports the number of edges between alive nodes.
func (g *Graph) NumEdges() int { return g.nEdges }

// Alive reports whether id names a live (non-deleted, in-range) node.
func (g *Graph) Alive(id NodeID) bool {
	return int(id) < len(g.alive) && g.alive[id]
}

// AddNode creates a node carrying the given label names and returns its id.
func (g *Graph) AddNode(labelNames ...string) NodeID {
	ids := make([]LabelID, 0, len(labelNames))
	for _, n := range labelNames {
		ids = append(ids, g.labels.Intern(n))
	}
	return g.AddNodeLabelIDs(ids...)
}

// AddNodeLabelIDs creates a node carrying the given pre-interned labels.
func (g *Graph) AddNodeLabelIDs(labs ...LabelID) NodeID {
	id := NodeID(len(g.out))
	sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
	labs = dedupLabels(labs)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	g.nlab = append(g.nlab, labs)
	g.alive = append(g.alive, true)
	g.nAlive++
	for _, l := range labs {
		g.byLabel[l] = insertSorted(g.byLabel[l], id)
	}
	return id
}

func dedupLabels(labs []LabelID) []LabelID {
	if len(labs) < 2 {
		return labs
	}
	w := 1
	for i := 1; i < len(labs); i++ {
		if labs[i] != labs[w-1] {
			labs[w] = labs[i]
			w++
		}
	}
	return labs[:w]
}

// RemoveNode deletes id and all its incident edges. It returns the edges
// that were removed alongside the node (useful for undo and for affected-
// set computation) and false if id was not alive.
func (g *Graph) RemoveNode(id NodeID) (removed []Edge, ok bool) {
	if !g.Alive(id) {
		return nil, false
	}
	for _, v := range append([]NodeID(nil), g.out[id]...) {
		g.RemoveEdge(id, v)
		removed = append(removed, Edge{id, v})
	}
	for _, u := range append([]NodeID(nil), g.in[id]...) {
		g.RemoveEdge(u, id)
		removed = append(removed, Edge{u, id})
	}
	for _, l := range g.nlab[id] {
		g.byLabel[l] = removeSorted(g.byLabel[l], id)
	}
	g.alive[id] = false
	g.nAlive--
	return removed, true
}

// Edge is a directed edge (From → To).
type Edge struct {
	From, To NodeID
}

// String renders the edge as "u->v".
func (e Edge) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }

// AddEdge inserts the edge u→v. It reports false (and does nothing) when
// the edge already exists, u == v, or either endpoint is dead.
func (g *Graph) AddEdge(u, v NodeID) bool {
	if u == v || !g.Alive(u) || !g.Alive(v) || g.HasEdge(u, v) {
		return false
	}
	g.out[u] = insertSorted(g.out[u], v)
	g.in[v] = insertSorted(g.in[v], u)
	g.nEdges++
	return true
}

// RemoveEdge deletes the edge u→v, reporting whether it existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !g.Alive(u) || !g.Alive(v) || !g.HasEdge(u, v) {
		return false
	}
	g.out[u] = removeSorted(g.out[u], v)
	g.in[v] = removeSorted(g.in[v], u)
	g.nEdges--
	return true
}

// HasEdge reports whether the edge u→v exists between alive nodes.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= len(g.out) {
		return false
	}
	return containsSorted(g.out[u], v)
}

// Out returns the successor list of u (sorted; callers must not mutate).
func (g *Graph) Out(u NodeID) []NodeID {
	if int(u) >= len(g.out) {
		return nil
	}
	return g.out[u]
}

// In returns the predecessor list of u (sorted; callers must not mutate).
func (g *Graph) In(u NodeID) []NodeID {
	if int(u) >= len(g.in) {
		return nil
	}
	return g.in[u]
}

// OutDegree reports len(Out(u)); InDegree reports len(In(u)).
func (g *Graph) OutDegree(u NodeID) int { return len(g.Out(u)) }

// InDegree reports the number of predecessors of u.
func (g *Graph) InDegree(u NodeID) int { return len(g.In(u)) }

// NodeLabels returns the sorted label ids of u (callers must not mutate).
func (g *Graph) NodeLabels(u NodeID) []LabelID {
	if int(u) >= len(g.nlab) {
		return nil
	}
	return g.nlab[u]
}

// HasLabel reports whether node u carries label l.
func (g *Graph) HasLabel(u NodeID, l LabelID) bool {
	labs := g.NodeLabels(u)
	i := sort.Search(len(labs), func(i int) bool { return labs[i] >= l })
	return i < len(labs) && labs[i] == l
}

// NodesWithLabel returns the sorted ids of alive nodes carrying l
// (callers must not mutate).
func (g *Graph) NodesWithLabel(l LabelID) []NodeID { return g.byLabel[l] }

// Nodes calls fn for every alive node in ascending id order.
func (g *Graph) Nodes(fn func(NodeID)) {
	for id := range g.alive {
		if g.alive[id] {
			fn(NodeID(id))
		}
	}
}

// Edges calls fn for every edge in ascending (from, to) order.
func (g *Graph) Edges(fn func(Edge)) {
	for u := range g.out {
		if !g.alive[u] {
			continue
		}
		for _, v := range g.out[u] {
			fn(Edge{NodeID(u), v})
		}
	}
}

// Clone returns a deep copy sharing the label table (label tables are
// append-only, so sharing is safe).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		labels:  g.labels,
		out:     make([][]NodeID, len(g.out)),
		in:      make([][]NodeID, len(g.in)),
		nlab:    make([][]LabelID, len(g.nlab)),
		alive:   append([]bool(nil), g.alive...),
		nAlive:  g.nAlive,
		nEdges:  g.nEdges,
		byLabel: make(map[LabelID][]NodeID, len(g.byLabel)),
	}
	for i := range g.out {
		c.out[i] = append([]NodeID(nil), g.out[i]...)
		c.in[i] = append([]NodeID(nil), g.in[i]...)
		c.nlab[i] = append([]LabelID(nil), g.nlab[i]...)
	}
	for l, ns := range g.byLabel {
		c.byLabel[l] = append([]NodeID(nil), ns...)
	}
	return c
}

// Stats summarises graph shape for reports and experiment logs.
type Stats struct {
	Nodes, Edges         int
	Labels               int
	MaxOutDeg, MaxInDeg  int
	AvgOutDeg            float64
	NodesWithoutOutEdges int
	NodesWithoutInEdges  int
}

// ComputeStats walks the graph once and summarises it.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.nAlive, Edges: g.nEdges, Labels: g.labels.Count()}
	for id := range g.alive {
		if !g.alive[id] {
			continue
		}
		od, id2 := len(g.out[id]), len(g.in[id])
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if id2 > s.MaxInDeg {
			s.MaxInDeg = id2
		}
		if od == 0 {
			s.NodesWithoutOutEdges++
		}
		if id2 == 0 {
			s.NodesWithoutInEdges++
		}
	}
	if s.Nodes > 0 {
		s.AvgOutDeg = float64(s.Edges) / float64(s.Nodes)
	}
	return s
}

func insertSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeSorted(s []NodeID, v NodeID) []NodeID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return append(s[:i], s[i+1:]...)
	}
	return s
}

func containsSorted(s []NodeID, v NodeID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}
