package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the on-disk interchange formats:
//
//   - SNAP edge lists ("FromNodeId\tToNodeId" per line, '#' comments), the
//     format of the five datasets in the paper's Table X, so the real
//     graphs can be dropped in when available; and
//   - a label file ("nodeID<TAB>label[,label...]" per line) since SNAP
//     files carry no labels.

// ReadEdgeList parses a SNAP-style edge list. Node ids in the file are
// arbitrary non-negative integers; they are remapped densely in order of
// first appearance. Every node is created with defaultLabel unless a
// label file is applied afterwards (see ApplyLabels). The returned map
// translates file ids to graph ids.
func ReadEdgeList(r io.Reader, labels *Labels, defaultLabel string) (*Graph, map[int64]NodeID, error) {
	g := New(labels)
	idMap := make(map[int64]NodeID)
	get := func(fileID int64) NodeID {
		if id, ok := idMap[fileID]; ok {
			return id
		}
		id := g.AddNode(defaultLabel)
		idMap[fileID] = id
		return id
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: edge list line %d: want 2 fields, got %q", line, text)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: edge list line %d: %v", line, err)
		}
		if from == to {
			continue // SNAP graphs occasionally carry self-loops; GD is simple
		}
		g.AddEdge(get(from), get(to))
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: reading edge list: %v", err)
	}
	return g, idMap, nil
}

// WriteEdgeList emits the graph in SNAP format, with a comment header.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# Directed graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())
	fmt.Fprintf(bw, "# FromNodeId\tToNodeId\n")
	var err error
	g.Edges(func(e Edge) {
		if err == nil {
			_, err = fmt.Fprintf(bw, "%d\t%d\n", e.From, e.To)
		}
	})
	if err != nil {
		return fmt.Errorf("graph: writing edge list: %v", err)
	}
	return bw.Flush()
}

// ApplyLabels parses a label file and replaces the labels of the named
// nodes. Lines are "nodeID<TAB or space>label[,label...]"; '#' comments
// and blank lines are skipped. Unknown node ids are an error.
func (g *Graph) ApplyLabels(r io.Reader) error {
	_, err := g.applyLabelLines(r, func(fileID uint64) (NodeID, bool, error) {
		if fileID > uint64(^uint32(0)) {
			return 0, false, fmt.Errorf("node id %d out of range", fileID)
		}
		id := NodeID(fileID)
		if !g.Alive(id) {
			return 0, false, fmt.Errorf("node %d not in graph", id)
		}
		return id, true, nil
	})
	return err
}

// ApplyLabelsMapped parses a label file whose node ids are the original
// file ids of an edge list, translating them through the idMap returned
// by ReadEdgeList. Ids absent from the map (isolated nodes an edge list
// cannot carry) are skipped, and their count returned, rather than
// failing the whole load.
func (g *Graph) ApplyLabelsMapped(r io.Reader, idMap map[int64]NodeID) (skipped int, err error) {
	return g.applyLabelLines(r, func(fileID uint64) (NodeID, bool, error) {
		id, ok := idMap[int64(fileID)]
		return id, ok, nil
	})
}

// applyLabelLines is the shared label-file scanner behind ApplyLabels
// and ApplyLabelsMapped; resolve turns a parsed file id into a graph
// node (ok=false counts the line as skipped, an error aborts the load).
func (g *Graph) applyLabelLines(r io.Reader, resolve func(fileID uint64) (NodeID, bool, error)) (skipped int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return skipped, fmt.Errorf("graph: label file line %d: want \"node labels\", got %q", line, text)
		}
		fileID, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return skipped, fmt.Errorf("graph: label file line %d: %v", line, err)
		}
		id, ok, err := resolve(fileID)
		if err != nil {
			return skipped, fmt.Errorf("graph: label file line %d: %v", line, err)
		}
		if !ok {
			skipped++
			continue
		}
		var labs []LabelID
		for _, name := range strings.Split(fields[1], ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				labs = append(labs, g.labels.Intern(name))
			}
		}
		if len(labs) == 0 {
			return skipped, fmt.Errorf("graph: label file line %d: node %d has no labels", line, fileID)
		}
		g.SetNodeLabels(id, labs...)
	}
	if err := sc.Err(); err != nil {
		return skipped, fmt.Errorf("graph: reading label file: %v", err)
	}
	return skipped, nil
}

// WriteLabels emits the label file for the graph.
func (g *Graph) WriteLabels(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodeID\tlabel[,label...]\n")
	var err error
	g.Nodes(func(id NodeID) {
		if err != nil {
			return
		}
		names := make([]string, 0, len(g.nlab[id]))
		for _, l := range g.nlab[id] {
			names = append(names, g.labels.Name(l))
		}
		_, err = fmt.Fprintf(bw, "%d\t%s\n", id, strings.Join(names, ","))
	})
	if err != nil {
		return fmt.Errorf("graph: writing labels: %v", err)
	}
	return bw.Flush()
}

// SetNodeLabels replaces the label set of node id, keeping the per-label
// index consistent. It reports false when id is not alive.
func (g *Graph) SetNodeLabels(id NodeID, labs ...LabelID) bool {
	if !g.Alive(id) {
		return false
	}
	for _, l := range g.nlab[id] {
		g.byLabel[l] = removeSorted(g.byLabel[l], id)
	}
	sort.Slice(labs, func(i, j int) bool { return labs[i] < labs[j] })
	labs = dedupLabels(labs)
	g.nlab[id] = labs
	for _, l := range labs {
		g.byLabel[l] = insertSorted(g.byLabel[l], id)
	}
	return true
}
