package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestAddNodeAssignsDenseIDs(t *testing.T) {
	g := New(nil)
	a := g.AddNode("PM")
	b := g.AddNode("SE")
	if a != 0 || b != 1 {
		t.Fatalf("ids = %d,%d; want 0,1", a, b)
	}
	if g.NumNodes() != 2 || g.NumIDs() != 2 {
		t.Fatalf("NumNodes=%d NumIDs=%d, want 2,2", g.NumNodes(), g.NumIDs())
	}
}

func TestAddEdgeRules(t *testing.T) {
	g := New(nil)
	a, b := g.AddNode("A"), g.AddNode("B")
	if !g.AddEdge(a, b) {
		t.Fatal("fresh edge should insert")
	}
	if g.AddEdge(a, b) {
		t.Fatal("duplicate edge should be rejected")
	}
	if g.AddEdge(a, a) {
		t.Fatal("self loop should be rejected")
	}
	if g.AddEdge(a, 99) {
		t.Fatal("edge to unknown node should be rejected")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(a, b) || g.HasEdge(b, a) {
		t.Fatal("HasEdge direction wrong")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(nil)
	a, b := g.AddNode("A"), g.AddNode("B")
	g.AddEdge(a, b)
	if !g.RemoveEdge(a, b) {
		t.Fatal("existing edge should remove")
	}
	if g.RemoveEdge(a, b) {
		t.Fatal("missing edge should report false")
	}
	if g.NumEdges() != 0 || g.HasEdge(a, b) {
		t.Fatal("edge not fully removed")
	}
}

func TestRemoveNodeCascades(t *testing.T) {
	g := New(nil)
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddEdge(a, b)
	g.AddEdge(b, c)
	g.AddEdge(c, b)
	removed, ok := g.RemoveNode(b)
	if !ok {
		t.Fatal("RemoveNode should succeed")
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d incident edges, want 3: %v", len(removed), removed)
	}
	if g.Alive(b) || g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatal("node removal left stale state")
	}
	if len(g.Out(a)) != 0 || len(g.In(c)) != 0 {
		t.Fatal("adjacency not cleaned")
	}
	if _, ok := g.RemoveNode(b); ok {
		t.Fatal("double remove should report false")
	}
	// ids are not reused
	d := g.AddNode("D")
	if d != 3 {
		t.Fatalf("new node id = %d, want 3 (no reuse)", d)
	}
}

func TestLabelIndex(t *testing.T) {
	g := New(nil)
	pm := g.Labels().Intern("PM")
	a := g.AddNode("PM")
	b := g.AddNode("PM", "SE")
	_ = g.AddNode("SE")
	got := g.NodesWithLabel(pm)
	if len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("NodesWithLabel(PM) = %v, want [%d %d]", got, a, b)
	}
	g.RemoveNode(a)
	got = g.NodesWithLabel(pm)
	if len(got) != 1 || got[0] != b {
		t.Fatalf("after removal NodesWithLabel(PM) = %v, want [%d]", got, b)
	}
	if !g.HasLabel(b, pm) {
		t.Fatal("HasLabel(b, PM) = false")
	}
	se, _ := g.Labels().Lookup("SE")
	if g.HasLabel(a, se) {
		t.Fatal("HasLabel on dead node's absent label should be false")
	}
}

func TestSetNodeLabels(t *testing.T) {
	g := New(nil)
	a := g.AddNode("X")
	x, _ := g.Labels().Lookup("X")
	y := g.Labels().Intern("Y")
	if !g.SetNodeLabels(a, y, y) {
		t.Fatal("SetNodeLabels should succeed")
	}
	if g.HasLabel(a, x) || !g.HasLabel(a, y) {
		t.Fatal("labels not replaced")
	}
	if len(g.NodeLabels(a)) != 1 {
		t.Fatal("duplicate labels not collapsed")
	}
	if len(g.NodesWithLabel(x)) != 0 || len(g.NodesWithLabel(y)) != 1 {
		t.Fatal("label index not updated")
	}
	if g.SetNodeLabels(99, y) {
		t.Fatal("SetNodeLabels on unknown node should fail")
	}
}

func TestDedupAtAddNode(t *testing.T) {
	g := New(nil)
	a := g.AddNode("Z", "Z", "A")
	labs := g.NodeLabels(a)
	if len(labs) != 2 {
		t.Fatalf("labels = %v, want deduped 2", labs)
	}
	if !sort.SliceIsSorted(labs, func(i, j int) bool { return labs[i] < labs[j] }) {
		t.Fatal("labels not sorted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(nil)
	a, b := g.AddNode("A"), g.AddNode("B")
	g.AddEdge(a, b)
	c := g.Clone()
	c.RemoveEdge(a, b)
	c.AddNode("C")
	if !g.HasEdge(a, b) {
		t.Fatal("clone mutation leaked into original (edges)")
	}
	if g.NumIDs() != 2 {
		t.Fatal("clone mutation leaked into original (nodes)")
	}
	if c.NumEdges() != 0 || c.NumNodes() != 3 {
		t.Fatal("clone state wrong")
	}
}

func TestNodesAndEdgesIteration(t *testing.T) {
	g := New(nil)
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("C")
	g.AddEdge(b, a)
	g.AddEdge(a, c)
	g.RemoveNode(b)
	var nodes []NodeID
	g.Nodes(func(id NodeID) { nodes = append(nodes, id) })
	if len(nodes) != 2 || nodes[0] != a || nodes[1] != c {
		t.Fatalf("Nodes = %v", nodes)
	}
	var edges []Edge
	g.Edges(func(e Edge) { edges = append(edges, e) })
	if len(edges) != 1 || edges[0] != (Edge{a, c}) {
		t.Fatalf("Edges = %v", edges)
	}
}

func TestComputeStats(t *testing.T) {
	g := New(nil)
	a, b, c := g.AddNode("A"), g.AddNode("B"), g.AddNode("A")
	g.AddEdge(a, b)
	g.AddEdge(a, c)
	s := g.ComputeStats()
	if s.Nodes != 3 || s.Edges != 2 || s.Labels != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDeg != 2 || s.MaxInDeg != 1 {
		t.Fatalf("degree stats = %+v", s)
	}
	if s.NodesWithoutOutEdges != 2 || s.NodesWithoutInEdges != 1 {
		t.Fatalf("no-degree stats = %+v", s)
	}
	if s.AvgOutDeg < 0.66 || s.AvgOutDeg > 0.67 {
		t.Fatalf("AvgOutDeg = %v", s.AvgOutDeg)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(nil)
	ids := make([]NodeID, 5)
	for i := range ids {
		ids[i] = g.AddNode("person")
	}
	g.AddEdge(ids[0], ids[1])
	g.AddEdge(ids[1], ids[2])
	g.AddEdge(ids[3], ids[4])
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	g2, _, err := ReadEdgeList(&buf, nil, "person")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("round trip edges = %d, want 3", g2.NumEdges())
	}
}

func TestReadEdgeListSkipsCommentsAndLoops(t *testing.T) {
	in := "# header\n\n1\t2\n2\t2\n2\t3\n"
	g, idMap, err := ReadEdgeList(strings.NewReader(in), nil, "x")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d, want 3,2 (self loop skipped)", g.NumNodes(), g.NumEdges())
	}
	if _, ok := idMap[3]; !ok {
		t.Fatal("file id 3 not mapped")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, _, err := ReadEdgeList(strings.NewReader(in), nil, "x"); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	g := New(nil)
	a := g.AddNode("PM")
	b := g.AddNode("SE", "TE")
	var buf bytes.Buffer
	if err := g.WriteLabels(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := New(nil)
	if g2.AddNode("tmp") != a || g2.AddNode("tmp") != b {
		t.Fatal("setup mismatch")
	}
	if err := g2.ApplyLabels(&buf); err != nil {
		t.Fatal(err)
	}
	pm, _ := g2.Labels().Lookup("PM")
	te, _ := g2.Labels().Lookup("TE")
	if !g2.HasLabel(a, pm) || !g2.HasLabel(b, te) {
		t.Fatal("labels not applied")
	}
}

func TestApplyLabelsErrors(t *testing.T) {
	g := New(nil)
	g.AddNode("x")
	for _, in := range []string{"0\n", "zz y\n", "7 L\n", "0 ,\n"} {
		if err := g.ApplyLabels(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: want error", in)
		}
	}
}

// Property-style test: a random mutation sequence keeps invariants:
// counters match reality, adjacency stays sorted and mirror-consistent,
// and the label index matches node labels.
func TestRandomMutationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New(nil)
	labels := []string{"A", "B", "C"}
	var liveIDs []NodeID
	reap := func() {
		liveIDs = liveIDs[:0]
		g.Nodes(func(id NodeID) { liveIDs = append(liveIDs, id) })
	}
	for step := 0; step < 2000; step++ {
		switch op := rng.Intn(10); {
		case op < 3 || len(liveIDs) < 2:
			g.AddNode(labels[rng.Intn(len(labels))])
			reap()
		case op < 7:
			u := liveIDs[rng.Intn(len(liveIDs))]
			v := liveIDs[rng.Intn(len(liveIDs))]
			g.AddEdge(u, v)
		case op < 9:
			u := liveIDs[rng.Intn(len(liveIDs))]
			out := g.Out(u)
			if len(out) > 0 {
				g.RemoveEdge(u, out[rng.Intn(len(out))])
			}
		default:
			g.RemoveNode(liveIDs[rng.Intn(len(liveIDs))])
			reap()
		}
	}
	// Verify invariants.
	edgeCount, nodeCount := 0, 0
	for u := range g.out {
		if !g.alive[u] {
			if len(g.out[u]) != 0 || len(g.in[u]) != 0 {
				t.Fatal("dead node has adjacency")
			}
			continue
		}
		nodeCount++
		if !sort.SliceIsSorted(g.out[u], func(i, j int) bool { return g.out[u][i] < g.out[u][j] }) {
			t.Fatal("out adjacency unsorted")
		}
		for _, v := range g.out[u] {
			edgeCount++
			if !containsSorted(g.in[v], NodeID(u)) {
				t.Fatalf("edge %d->%d missing from in-list", u, v)
			}
		}
	}
	if nodeCount != g.NumNodes() || edgeCount != g.NumEdges() {
		t.Fatalf("counters diverged: nodes %d/%d edges %d/%d",
			nodeCount, g.NumNodes(), edgeCount, g.NumEdges())
	}
	for l, ns := range g.byLabel {
		for _, id := range ns {
			if !g.Alive(id) || !g.HasLabel(id, l) {
				t.Fatalf("label index stale: node %d label %d", id, l)
			}
		}
	}
}

func BenchmarkAddEdge(b *testing.B) {
	g := New(nil)
	n := 1000
	for i := 0; i < n; i++ {
		g.AddNode("x")
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
	}
}
