// Package core implements the paper's query-processing algorithms behind
// one Session abstraction:
//
//   - Scratch     — recompute SLen and the match from nothing (the naive
//     baseline every GPNM paper measures against);
//   - INC-GPNM    — the incremental baseline [13]: one SLen sync plus one
//     amendment pass per update, data and pattern alike;
//   - EH-GPNM     — the TKDE baseline [14]: Type II elimination over the
//     data updates only (per-update previews, an EH-Tree over ΔGD), one
//     amendment pass per data root, and still one pass per pattern
//     update;
//   - UA-GPNM-NoPar — this paper's algorithm without §V's partition:
//     fused DER-I/II/III detection, a full EH-Tree over both update
//     streams, and a single amendment pass seeded by the root sets and
//     the batch change log;
//   - UA-GPNM     — the same pipeline on the label-partitioned SLen
//     engine (Algorithm 6).
//
// A Session owns a data graph, a pattern, a distance engine and the
// current match. NewSession answers the initial query (IQuery); each
// SQuery call processes one update batch and delivers the subsequent
// query's result, maintaining all state incrementally. Every method
// produces the same matches — only the work differs — which the package
// tests enforce against Scratch.
package core

import (
	"fmt"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/obs"
	"uagpnm/internal/partition"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// Method selects a query-processing algorithm.
type Method int

// The five methods of the paper's evaluation (§VII-A).
const (
	Scratch Method = iota
	INCGPNM
	EHGPNM
	UAGPNMNoPar
	UAGPNM
)

// String names the method as the paper does.
func (m Method) String() string {
	switch m {
	case Scratch:
		return "Scratch"
	case INCGPNM:
		return "INC-GPNM"
	case EHGPNM:
		return "EH-GPNM"
	case UAGPNMNoPar:
		return "UA-GPNM-NoPar"
	case UAGPNM:
		return "UA-GPNM"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Methods lists every method in evaluation order.
var Methods = []Method{Scratch, INCGPNM, EHGPNM, UAGPNMNoPar, UAGPNM}

// Config parameterises a Session.
type Config struct {
	Method Method
	// Horizon caps SLen at this many hops (0 = exact distances). It is
	// raised automatically to the pattern's largest finite bound.
	Horizon int
	// DenseThreshold and ELLWidth tune the SLen backends (zero values
	// take the engine defaults).
	DenseThreshold int
	ELLWidth       int
	// Workers bounds the engine's internal worker pool. For UA-GPNM it
	// fans per-partition builds, overlay Dijkstras, batch affected-set
	// balls and row prefetch across up to Workers goroutines; for the
	// global-SLen methods it bounds the parallel matrix build. 0 selects
	// GOMAXPROCS for UA-GPNM and the build default otherwise; 1 runs
	// fully serial (the baseline configuration UA-GPNM-NoPar and the
	// other baselines are measured in).
	Workers int
	// ShardAddrs, when non-empty, serves the UA-GPNM partition engine's
	// per-partition intra state from remote shard workers (cmd/gpnm-shard
	// processes at these host:port addresses) instead of in-process: the
	// coordinator keeps the bridge overlay, stitching and caches, and
	// fans intra builds, row queries and batch affected-ball phases
	// across the workers. Ignored by the global-SLen methods.
	ShardAddrs []string
	// SpareShardAddrs are standby workers held for failover: when a
	// serving shard is lost, the next live spare is promoted into its
	// slot and rebuilt from the coordinator's mirrors before the
	// in-flight batch retries. Only meaningful with ShardAddrs.
	SpareShardAddrs []string
	// FailoverRetries bounds how many distinct shard losses each
	// failover boundary (one protected engine operation) may absorb
	// before the engine poisons itself (0 = the engine default of 1;
	// negative = disable failover, the every-loss-poisons pre-failover
	// model). See partition.WithFailoverRetries.
	FailoverRetries int
	// OpChunk sets the sharded substrate's op-stream chunk size: a
	// batch's structural ops flush to the shard fleet in epoch-fenced
	// chunks of this many ops while staging continues (0 = the engine
	// default; negative = no streaming, one end-of-phase flush). Only
	// meaningful with ShardAddrs. See partition.WithOpChunk.
	OpChunk int
	// Metrics, when non-nil, receives the UA-GPNM substrate's telemetry
	// (batch phase histograms, recovery counters, RPC latency/bytes for
	// sharded engines) instead of the process-global obs.Default. The
	// bench harness uses a private registry per run to read an isolated
	// per-phase breakdown; servers leave it nil.
	Metrics *obs.Registry
}

// QueryStats records the work of the last SQuery.
type QueryStats struct {
	Duration       time.Duration
	Passes         int // amendment passes run
	DataUpdates    int
	PatternUpdates int
	TreeSize       int // updates indexed in the EH-Tree (0 for Scratch/INC)
	TreeRoots      int // uneliminated updates
	Eliminated     int // |Ue| of the paper's complexity analysis
	SeedNodes      int // seed set size of the final amendment
	// SLenSync is the wall time of the SLen substrate synchronisation
	// (structural application + overlay/matrix maintenance + change-log
	// assembly); SLenSyncs counts the data updates synchronised into the
	// substrate. Together they expose the maintenance cost the
	// standing-query hub amortises across patterns (internal/hub): n
	// independent sessions pay n×SLenSyncs for the same batch, a hub
	// pays it once.
	SLenSync  time.Duration
	SLenSyncs int
}

// Session is one evolving GPNM query: graph, pattern, SLen engine and
// the current match, processed by a fixed Method.
type Session struct {
	Method Method
	G      *graph.Graph
	P      *pattern.Graph
	Engine shortest.DistanceEngine
	Match  *simulation.Match
	Stats  QueryStats

	cfg Config
}

// NewSession builds the engine, answers the initial query (IQuery) and
// returns the ready session. The graph and pattern are owned by the
// session afterwards (Fork for independent copies).
func NewSession(g *graph.Graph, p *pattern.Graph, cfg Config) *Session {
	if cfg.Horizon != 0 {
		if b := p.MaxFiniteBound(); b > cfg.Horizon {
			cfg.Horizon = b
		}
	}
	s := &Session{Method: cfg.Method, G: g, P: p, cfg: cfg}
	s.Engine = s.newEngine(g)
	s.Engine.Build()
	s.readFailover(func() { s.Match = simulation.Run(p, g, s.Engine) })
	return s
}

// readFailover runs a read-only engine fan under the sharded
// substrate's failover protection (a no-op passthrough for in-process
// engines): a shard worker lost between batches surfaces on the next
// read, and this turns it into a rebuild-and-retry instead of a fatal
// loss. Sessions are single-goroutine, so the exclusive-reader
// contract of partition.Engine.WithReadFailover holds trivially; every
// fn passed here overwrites its outputs wholesale.
func (s *Session) readFailover(fn func()) {
	if pe, ok := s.Engine.(*partition.Engine); ok {
		pe.WithReadFailover(fn)
		return
	}
	fn()
}

// NewSessionWith wraps a pre-built engine (Build()-consistent with g)
// into a session and answers IQuery — the experiment harness uses it to
// amortise engine construction across many sessions via CloneFor.
func NewSessionWith(g *graph.Graph, p *pattern.Graph, eng shortest.DistanceEngine, cfg Config) *Session {
	if cfg.Horizon != 0 {
		if b := p.MaxFiniteBound(); b > cfg.Horizon {
			cfg.Horizon = b
		}
		eng.EnsureHorizon(cfg.Horizon)
	}
	s := &Session{Method: cfg.Method, G: g, P: p, Engine: eng, cfg: cfg}
	s.readFailover(func() { s.Match = simulation.Run(p, g, eng) })
	return s
}

func (s *Session) newEngine(g *graph.Graph) shortest.DistanceEngine {
	return NewEngineFor(g, s.cfg)
}

// NewEngineFor builds the SLen substrate cfg.Method selects over g —
// the label-partitioned engine (§V) for UAGPNM, the global matrix
// engine for every other method — without answering any query. Sessions
// use it internally; the standing-query hub (internal/hub) uses it to
// build the one substrate its registered patterns share.
func NewEngineFor(g *graph.Graph, cfg Config) shortest.DistanceEngine {
	if cfg.Method == UAGPNM {
		var opts []partition.Option
		if cfg.DenseThreshold > 0 {
			opts = append(opts, partition.WithDenseThreshold(cfg.DenseThreshold))
		}
		if cfg.ELLWidth > 0 {
			opts = append(opts, partition.WithELLWidth(cfg.ELLWidth))
		}
		if cfg.Workers > 0 {
			opts = append(opts, partition.WithWorkers(cfg.Workers))
		}
		if cfg.Metrics != nil {
			opts = append(opts, partition.WithMetrics(cfg.Metrics))
		}
		if len(cfg.ShardAddrs) > 0 {
			reg := cfg.Metrics
			if reg == nil {
				reg = obs.Default
			}
			shs := make([]shard.Shard, len(cfg.ShardAddrs))
			for i, addr := range cfg.ShardAddrs {
				shs[i] = shard.DialWith(addr, reg)
			}
			opts = append(opts, partition.WithShards(shs...))
			if len(cfg.SpareShardAddrs) > 0 {
				spares := make([]shard.Shard, len(cfg.SpareShardAddrs))
				for i, addr := range cfg.SpareShardAddrs {
					spares[i] = shard.DialWith(addr, reg)
				}
				opts = append(opts, partition.WithSpares(spares...))
			}
			if cfg.FailoverRetries != 0 {
				opts = append(opts, partition.WithFailoverRetries(cfg.FailoverRetries))
			}
			if cfg.OpChunk != 0 {
				opts = append(opts, partition.WithOpChunk(cfg.OpChunk))
			}
		}
		return partition.NewEngine(g, cfg.Horizon, opts...)
	}
	var opts []shortest.Option
	if cfg.DenseThreshold > 0 {
		opts = append(opts, shortest.WithDenseThreshold(cfg.DenseThreshold))
	}
	if cfg.ELLWidth > 0 {
		opts = append(opts, shortest.WithELLWidth(cfg.ELLWidth))
	}
	if cfg.Workers > 0 {
		opts = append(opts, shortest.WithWorkers(cfg.Workers))
	}
	return shortest.NewEngine(g, cfg.Horizon, opts...)
}

// Fork returns an independent copy of the session (deep-copied graph,
// pattern, engine and match) so benchmark iterations can each process
// their own batch from the same initial state.
func (s *Session) Fork() *Session {
	g2 := s.G.Clone()
	p2 := s.P.Clone()
	return &Session{
		Method: s.Method,
		G:      g2,
		P:      p2,
		Engine: s.Engine.CloneFor(g2),
		Match:  s.Match.Clone(p2),
		cfg:    s.cfg,
	}
}

// Result returns the GPNM node matching result for pattern node u
// (empty unless every pattern node is matched — BGS semantics).
func (s *Session) Result(u pattern.NodeID) nodeset.Set { return s.Match.Nodes(u) }

// Close releases the session's substrate shards (remote shard clients
// drop their caches and idle connections; in-process substrates are a
// no-op). The session must not be queried afterwards.
func (s *Session) Close() error {
	if pe, ok := s.Engine.(*partition.Engine); ok {
		return pe.Close()
	}
	return nil
}

// SQuery processes one update batch with the session's method and
// returns the subsequent query's match. Batches must have been generated
// against (or be consistent with) the session's current graph/pattern
// state.
//
// The returned match is the session's live state (this is the internal
// API; the bench harness calls it in tight loops). Callers that hand
// results across a trust boundary take a copy — the public
// uagpnm.Session.SQuery returns a defensive clone, per its documented
// immutability contract. Sets materialised from a match (Nodes,
// SimulationSet) are fresh on every call either way.
func (s *Session) SQuery(b updates.Batch) *simulation.Match {
	start := time.Now()
	s.Stats = QueryStats{DataUpdates: len(b.D), PatternUpdates: len(b.P)}
	switch s.Method {
	case Scratch:
		s.runScratch(b)
	case INCGPNM:
		s.runINC(b)
	case EHGPNM:
		s.runEH(b)
	case UAGPNMNoPar, UAGPNM:
		s.runUA(b)
	default:
		panic("core: unknown method")
	}
	s.Stats.Duration = time.Since(start)
	return s.Match
}

// ensureHorizonFor widens the engine to cover the updated pattern.
func (s *Session) ensureHorizonFor(p *pattern.Graph) {
	if b := p.MaxFiniteBound(); b > 0 {
		s.Engine.EnsureHorizon(b)
	}
}
