package core

import (
	"runtime"
	"time"

	"uagpnm/internal/ehtree"
	"uagpnm/internal/elim"
	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/partition"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shortest"
	"uagpnm/internal/simulation"
	"uagpnm/internal/updates"
)

// runScratch answers the subsequent query by full recomputation: apply
// the updates structurally, rebuild SLen, rerun the matching fixpoint.
func (s *Session) runScratch(b updates.Batch) {
	updates.ApplyDataStructural(b.D, s.G)
	newP := s.P.Clone()
	updates.ApplyPatternBatch(b.P, newP)
	s.P = newP
	if s.cfg.Horizon != 0 {
		if bnd := newP.MaxFiniteBound(); bnd > s.cfg.Horizon {
			s.Engine.EnsureHorizon(bnd)
		}
	}
	slenStart := time.Now()
	s.Engine.Build()
	s.Stats.SLenSync = time.Since(slenStart)
	s.Stats.SLenSyncs = len(b.D)
	s.Match = simulation.Run(s.P, s.G, s.Engine)
	s.Stats.Passes = 1
}

// runINC is the INC-GPNM baseline [13]: every update — data or pattern —
// gets its own SLen synchronisation and amendment pass.
func (s *Session) runINC(b updates.Batch) {
	for _, u := range b.D {
		slenStart := time.Now()
		aff := updates.ApplyData(u, s.G, s.Engine)
		s.Stats.SLenSync += time.Since(slenStart)
		s.Stats.SLenSyncs++
		s.Match = simulation.Amend(s.Match, s.P, s.G, s.Engine, aff)
		s.Stats.Passes++
	}
	for _, u := range b.P {
		newP := s.P.Clone()
		updates.ApplyPattern(u, newP)
		s.ensureHorizonFor(newP)
		s.Match = simulation.Amend(s.Match, newP, s.G, s.Engine, nil)
		s.P = newP
		s.Stats.Passes++
	}
}

// runEH is the EH-GPNM baseline [14]: Type II elimination over the data
// updates only. SLen maintenance is fused with Aff_N collection (one
// synchronisation sweep in update order, as in Algorithm 2), the EH-Tree
// over ΔGD groups the updates, and one amendment pass runs per root —
// the first pass additionally carries the batch change log, which makes
// it exact; later root passes re-verify their root's region (the
// redundancy that separates EH-GPNM from UA-GPNM). Pattern updates still
// get one pass each.
func (s *Session) runEH(b updates.Batch) {
	slenStart := time.Now()
	affSets := make([]nodeset.Set, len(b.D))
	var log nodeset.Builder
	for i, u := range b.D {
		affSets[i] = updates.ApplyData(u, s.G, s.Engine)
		log.AddAll(affSets[i])
	}
	changeLog := log.Set()
	s.Stats.SLenSync = time.Since(slenStart)
	s.Stats.SLenSyncs = len(b.D)
	affInfos := elim.AffSetsFromApplication(b.D, affSets)
	tree := ehtree.Build(affInfos, nil, nil)
	s.Stats.TreeSize = tree.Size()
	s.Stats.TreeRoots = len(tree.Roots)
	s.Stats.Eliminated = tree.EliminatedCount()

	first := true
	for _, root := range tree.RootInfos() {
		seeds := root.Set
		if first {
			seeds = seeds.Union(changeLog)
			first = false
		}
		s.Match = simulation.Amend(s.Match, s.P, s.G, s.Engine, seeds)
		s.Stats.Passes++
	}
	if first && len(b.D) > 0 {
		// No roots (all previews empty) but updates applied: one pass on
		// the change log keeps the result exact.
		s.Match = simulation.Amend(s.Match, s.P, s.G, s.Engine, changeLog)
		s.Stats.Passes++
	}
	for _, u := range b.P {
		newP := s.P.Clone()
		updates.ApplyPattern(u, newP)
		s.ensureHorizonFor(newP)
		s.Match = simulation.Amend(s.Match, newP, s.G, s.Engine, nil)
		s.P = newP
		s.Stats.Passes++
	}
}

// runUA is Algorithm 6 — UA-GPNM (and its no-partition ablation): DER-I
// candidate sets before the batch, DER-II affected sets fused with the
// SLen synchronisation, DER-III against the updated SLen, the full
// EH-Tree over both streams, and a single amendment pass seeded by the
// uneliminated (root) sets plus the batch change log. With Method ==
// UAGPNM the session's engine is the label-partitioned one (§V).
func (s *Session) runUA(b updates.Batch) {
	// DER-I on the pre-update state. Like every read fan below, it runs
	// under the substrate's read failover when sharded: a worker lost
	// between batches surfaces here first, and gets rebuilt-and-retried
	// instead of killing the session.
	var canInfos []elim.Info
	s.readFailover(func() { canInfos = elim.CanSets(b.P, s.Match, s.P, s.G, s.Engine) })

	// Apply ΔGD, fusing DER-II with SLen maintenance (Algorithm 2's
	// in-place SLen_new update). The partitioned engine reconciles its
	// bridge overlay once for the whole batch (§VI's batching).
	slenStart := time.Now()
	var affSets []nodeset.Set
	var changeLog nodeset.Set
	if pe, ok := s.Engine.(*partition.Engine); ok {
		var err error
		affSets, changeLog, err = pe.ApplyDataBatch(b.D, s.G)
		if err != nil {
			// A Session has no error surface (it is the single-query,
			// in-process API); substrate loss is fatal to it. The hub and
			// the Service layer recover this into an error return.
			panic(err)
		}
	} else {
		affSets = make([]nodeset.Set, len(b.D))
		var log nodeset.Builder
		for i, u := range b.D {
			affSets[i] = updates.ApplyData(u, s.G, s.Engine)
			log.AddAll(affSets[i])
		}
		changeLog = log.Set()
	}
	s.Stats.SLenSync = time.Since(slenStart)
	s.Stats.SLenSyncs = len(b.D)
	affInfos := elim.AffSetsFromApplication(b.D, affSets)

	// Apply ΔGP to a pattern clone; widen the horizon before DER-III asks
	// about new bounds.
	newP := s.P.Clone()
	updates.ApplyPatternBatch(b.P, newP)
	s.ensureHorizonFor(newP)

	// DER-III + EH-Tree + the single amendment pass (Fig. 3, §IV-C).
	// Read-only against (s.Match, frozen post-batch engine), so the
	// failover retry recomputes cleanly; session state commits below.
	var pass UAPassResult
	s.readFailover(func() { pass = RunUAPass(s.Match, newP, s.G, s.Engine, affInfos, canInfos, changeLog, s.amendWorkers()) })
	s.Stats.TreeSize = pass.TreeSize
	s.Stats.TreeRoots = pass.TreeRoots
	s.Stats.Eliminated = pass.Eliminated
	s.Stats.SeedNodes = pass.SeedNodes
	s.Match = pass.Match
	s.P = newP
	s.Stats.Passes = 1
}

// amendWorkers is the fan width of the session's own amendment pass.
// A single session's pass is the pool's only consumer while it runs, so
// it gets the whole configured bound; 0 resolves like the engine pool
// (GOMAXPROCS), 1 — the UA-GPNM-NoPar configuration — stays the
// bit-for-bit sequential drain.
func (s *Session) amendWorkers() int {
	if s.cfg.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.cfg.Workers
}

// UAPassResult is the outcome of one pattern's RunUAPass.
type UAPassResult struct {
	Match      *simulation.Match
	TreeSize   int
	TreeRoots  int
	Eliminated int
	SeedNodes  int
}

// RunUAPass is the per-pattern tail of Algorithm 6, shared by runUA and
// the standing-query hub (internal/hub): DER-III cross elimination over
// the already-computed Can/Aff sets, the EH-Tree over both streams, and
// one amendment pass seeded by the uneliminated root sets plus the
// batch change log. oldMatch and canInfos are pre-batch state; newP,
// the engine and affInfos/changeLog are post-batch. It only reads its
// inputs (the engine within the read-epoch contract), so many patterns
// can run their passes concurrently over one shared substrate.
// amendWorkers fans the amendment pass itself (Phase A closure rounds
// and the striped removal fixpoint) across up to that many goroutines;
// ≤ 1 is the bit-for-bit sequential drain. Callers splitting a worker
// pool across concurrent passes divide the pool here.
func RunUAPass(oldMatch *simulation.Match, newP *pattern.Graph, g *graph.Graph,
	eng shortest.DistanceEngine, affInfos, canInfos []elim.Info, changeLog nodeset.Set,
	amendWorkers int) UAPassResult {
	tree := ehtree.Build(affInfos, canInfos, func(up, ud elim.Info) bool {
		return elim.CrossEliminates(up, ud, oldMatch, eng)
	})
	// One amendment pass for the uneliminated updates: the union of the
	// root sets equals the union over all updates (children are covered),
	// and the change log guarantees every combined effect is seeded.
	seeds := changeLog
	for _, root := range tree.RootInfos() {
		seeds = seeds.Union(root.Set)
	}
	return UAPassResult{
		Match:      simulation.AmendN(oldMatch, newP, g, eng, seeds, amendWorkers),
		TreeSize:   tree.Size(),
		TreeRoots:  len(tree.Roots),
		Eliminated: tree.EliminatedCount(),
		SeedNodes:  seeds.Len(),
	}
}
