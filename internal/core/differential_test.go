package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"uagpnm/internal/updates"
)

// differentialSessions builds one session per configuration under test:
// the five methods at the given worker bound, plus UA-GPNM pinned
// serial and pinned to a wide pool, so the parallel partition engine is
// differentially checked against both Scratch and its own serial twin.
func differentialSessions(t *testing.T, seed int64, horizon int) []*Session {
	t.Helper()
	labels := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(seed))
	g := randomLabeled(rng, 50, 140, labels)
	p := randomPattern(rng, g.Labels(), 5, 6, labels)

	var ss []*Session
	for _, m := range Methods {
		ss = append(ss, NewSession(g.Clone(), p.Clone(), Config{Method: m, Horizon: horizon}))
	}
	for _, workers := range []int{1, 4, 8} {
		ss = append(ss, NewSession(g.Clone(), p.Clone(),
			Config{Method: UAGPNM, Horizon: horizon, Workers: workers}))
	}
	return ss
}

// TestDifferentialRandomScripts is the randomized differential harness
// of the parallel engine work: every method — the parallel UA-GPNM
// configurations included — processes the same random update scripts
// (data and pattern updates mixed, via updates.Generate) and must
// produce matches identical to Scratch after every batch.
func TestDifferentialRandomScripts(t *testing.T) {
	trials, rounds := 5, 4
	if testing.Short() {
		trials, rounds = 2, 3
	}
	for _, horizon := range []int{0, 3} {
		for trial := 0; trial < trials; trial++ {
			seed := int64(31000 + trial)
			ss := differentialSessions(t, seed, horizon)
			scratch := ss[0]
			for round := 0; round < rounds; round++ {
				batch := updates.Generate(updates.Balanced(seed*100+int64(round), 3, 14),
					scratch.G, scratch.P)
				ref := scratch.SQuery(batch)
				for i, s := range ss[1:] {
					name := s.Method.String()
					if i >= len(Methods)-1 {
						name = fmt.Sprintf("%s(workers=%d)", s.Method, s.cfg.Workers)
					}
					if got := s.SQuery(batch); !got.Equal(ref) {
						t.Fatalf("h=%d trial %d round %d: %s differs from Scratch (batch %v | %v)",
							horizon, trial, round, name, batch.P, batch.D)
					}
				}
			}
		}
	}
}

// TestDifferentialStressParallel is the race-hunting variant: forced
// GOMAXPROCS > 1, a wide worker pool and a heavier update stream.
// Skipped with -short; run it under -race.
func TestDifferentialStressParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("stress variant skipped in -short mode")
	}
	prev := runtime.GOMAXPROCS(0)
	if prev < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(prev)
	}
	labels := []string{"A", "B", "C", "D", "E", "F"}
	rng := rand.New(rand.NewSource(777))
	g := randomLabeled(rng, 90, 280, labels)
	p := randomPattern(rng, g.Labels(), 6, 7, labels)

	scratch := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch, Horizon: 3})
	par := NewSession(g.Clone(), p.Clone(), Config{Method: UAGPNM, Horizon: 3, Workers: 8})
	for round := 0; round < 6; round++ {
		batch := updates.Generate(updates.Balanced(int64(880+round), 4, 30), scratch.G, scratch.P)
		ref := scratch.SQuery(batch)
		if got := par.SQuery(batch); !got.Equal(ref) {
			t.Fatalf("round %d: UA-GPNM(workers=8) diverged from Scratch", round)
		}
	}
}
