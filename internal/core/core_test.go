package core

import (
	"math/rand"
	"testing"

	"uagpnm/internal/graph"
	"uagpnm/internal/nodeset"
	"uagpnm/internal/paperex"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// TestPaperTableIThroughSession reproduces Table I via the Session API.
func TestPaperTableIThroughSession(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	for _, m := range Methods {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		want := map[string]nodeset.Set{
			"PM": nodeset.New(ids["PM1"], ids["PM2"]),
			"SE": nodeset.New(ids["SE1"], ids["SE2"]),
			"S":  nodeset.New(ids["S1"]),
			"TE": nodeset.New(ids["TE1"], ids["TE2"]),
		}
		for name, wantSet := range want {
			if got := s.Result(pids[name]); !got.Equal(wantSet) {
				t.Errorf("%v: N(%s) = %v, want %v", m, name, got, wantSet)
			}
		}
	}
}

// TestPaperExample2AllMethods runs the full Fig. 2 scenario through every
// method; all five must agree, and UA-GPNM must build the Fig. 3 tree.
func TestPaperExample2AllMethods(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	batch := updates.Batch{
		P: []updates.Update{
			{Kind: updates.PatternEdgeInsert, From: pids["PM"], To: pids["TE"], Bound: paperex.UP1Bound},
			{Kind: updates.PatternEdgeInsert, From: pids["S"], To: pids["TE"], Bound: paperex.UP2Bound},
		},
		D: []updates.Update{
			{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["TE2"]},
			{Kind: updates.DataEdgeInsert, From: ids["DB1"], To: ids["S1"]},
		},
	}
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch})
	refMatch := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		got := s.SQuery(batch)
		if !got.Equal(refMatch) {
			t.Errorf("%v: result differs from scratch", m)
		}
		if m == UAGPNM || m == UAGPNMNoPar {
			if s.Stats.TreeSize != 4 || s.Stats.TreeRoots != 1 || s.Stats.Eliminated != 3 {
				t.Errorf("%v: tree stats = %+v, want size 4, roots 1, eliminated 3 (Fig. 3)", m, s.Stats)
			}
			if s.Stats.Passes != 1 {
				t.Errorf("%v: passes = %d, want 1", m, s.Stats.Passes)
			}
		}
		// The cross-elimination scenario keeps both PMs matched.
		pmSet := s.Result(pids["PM"])
		if want := nodeset.New(ids["PM1"], ids["PM2"]); !pmSet.Equal(want) {
			t.Errorf("%v: N(PM) = %v, want %v", m, pmSet, want)
		}
	}
}

func randomLabeled(rng *rand.Rand, n, m int, labels []string) *graph.Graph {
	g := graph.New(nil)
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	return g
}

func randomPattern(rng *rand.Rand, lt *graph.Labels, nodes, edges int, labels []string) *pattern.Graph {
	p := pattern.New(lt)
	ids := make([]pattern.NodeID, nodes)
	for i := range ids {
		ids[i] = p.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < edges; i++ {
		p.AddEdge(ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))], pattern.Bound(1+rng.Intn(3)))
	}
	return p
}

// TestAllMethodsAgree is the solver-level differential test: on random
// instances and batches, every method's SQuery must match Scratch —
// across several successive batches to catch state drift.
func TestAllMethodsAgree(t *testing.T) {
	labels := []string{"A", "B", "C", "D"}
	for _, horizon := range []int{0, 3} {
		horizon := horizon
		for trial := 0; trial < 6; trial++ {
			rng := rand.New(rand.NewSource(int64(500 + trial)))
			g := randomLabeled(rng, 30, 80, labels)
			p := randomPattern(rng, g.Labels(), 4, 5, labels)

			sessions := make([]*Session, len(Methods))
			for i, m := range Methods {
				sessions[i] = NewSession(g.Clone(), p.Clone(), Config{Method: m, Horizon: horizon})
			}
			for round := 0; round < 3; round++ {
				batch := updates.Generate(updates.Balanced(int64(trial*100+round), 3, 10), sessions[0].G, sessions[0].P)
				ref := sessions[0].SQuery(batch)
				for i, s := range sessions[1:] {
					got := s.SQuery(batch)
					if !got.Equal(ref) {
						t.Fatalf("h=%d trial %d round %d: %v differs from Scratch (batch %v | %v)",
							horizon, trial, round, Methods[i+1], batch.P, batch.D)
					}
				}
			}
		}
	}
}

// TestPassAccounting checks the cost model that separates the methods:
// INC pays one pass per update; EH pays per data root + per pattern
// update; UA pays exactly one.
func TestPassAccounting(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(42))
	g := randomLabeled(rng, 40, 120, labels)
	p := randomPattern(rng, g.Labels(), 5, 6, labels)
	batch := updates.Generate(updates.Balanced(7, 4, 12), g, p)

	inc := NewSession(g.Clone(), p.Clone(), Config{Method: INCGPNM, Horizon: 3})
	inc.SQuery(batch)
	if want := len(batch.D) + len(batch.P); inc.Stats.Passes != want {
		t.Errorf("INC passes = %d, want %d", inc.Stats.Passes, want)
	}

	eh := NewSession(g.Clone(), p.Clone(), Config{Method: EHGPNM, Horizon: 3})
	eh.SQuery(batch)
	if eh.Stats.TreeSize != len(batch.D) {
		t.Errorf("EH tree size = %d, want %d", eh.Stats.TreeSize, len(batch.D))
	}
	if want := eh.Stats.TreeRoots + len(batch.P); eh.Stats.Passes != want {
		t.Errorf("EH passes = %d, want roots+patterns = %d", eh.Stats.Passes, want)
	}
	if eh.Stats.TreeRoots > len(batch.D) {
		t.Error("EH roots exceed data updates")
	}

	ua := NewSession(g.Clone(), p.Clone(), Config{Method: UAGPNM, Horizon: 3})
	ua.SQuery(batch)
	if ua.Stats.Passes != 1 {
		t.Errorf("UA passes = %d, want 1", ua.Stats.Passes)
	}
	if ua.Stats.TreeSize != batch.Size() {
		t.Errorf("UA tree size = %d, want %d", ua.Stats.TreeSize, batch.Size())
	}
	if ua.Stats.SeedNodes == 0 && batch.Size() > 0 {
		t.Log("note: empty seed set (all updates were no-ops)")
	}
	if ua.Stats.Duration <= 0 {
		t.Error("duration not recorded")
	}
}

// TestForkIndependence ensures forked sessions do not share state.
func TestForkIndependence(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	s := NewSession(g, p, Config{Method: UAGPNM})
	f := s.Fork()
	batch := updates.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeInsert, From: ids["SE1"], To: ids["TE2"]},
	}}
	f.SQuery(batch)
	if s.G.HasEdge(ids["SE1"], ids["TE2"]) {
		t.Fatal("fork mutation leaked into original graph")
	}
	if got, want := s.Result(pids["PM"]), nodeset.New(ids["PM1"], ids["PM2"]); !got.Equal(want) {
		t.Fatalf("original session result drifted: %v", got)
	}
}

// TestSuccessiveBatchesMaintainState: a session must stay consistent over
// a long run of batches (the streaming scenario of the examples).
func TestSuccessiveBatchesMaintainState(t *testing.T) {
	labels := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(314))
	g := randomLabeled(rng, 25, 70, labels)
	p := randomPattern(rng, g.Labels(), 4, 5, labels)
	ua := NewSession(g.Clone(), p.Clone(), Config{Method: UAGPNM, Horizon: 3})
	scr := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch, Horizon: 3})
	for round := 0; round < 8; round++ {
		batch := updates.Generate(updates.Balanced(int64(round), 2, 6), ua.G, ua.P)
		got := ua.SQuery(batch)
		want := scr.SQuery(batch)
		if !got.Equal(want) {
			t.Fatalf("round %d: UA diverged from scratch", round)
		}
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		Scratch: "Scratch", INCGPNM: "INC-GPNM", EHGPNM: "EH-GPNM",
		UAGPNMNoPar: "UA-GPNM-NoPar", UAGPNM: "UA-GPNM", Method(99): "Method(99)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(m), got, want)
		}
	}
}
