package core

import (
	"math/rand"
	"testing"

	"uagpnm/internal/paperex"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// TestEmptyBatch: SQuery on an empty batch must be a cheap no-op that
// preserves the result, on every method.
func TestEmptyBatch(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	for _, m := range Methods {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		before := s.Result(pids["PM"]).Clone()
		s.SQuery(updates.Batch{})
		if !s.Result(pids["PM"]).Equal(before) {
			t.Errorf("%v: empty batch changed the result", m)
		}
	}
}

// TestPatternOnlyBatch exercises the ΔGD == ∅ path.
func TestPatternOnlyBatch(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	batch := updates.Batch{P: []updates.Update{
		{Kind: updates.PatternEdgeInsert, From: pids["PM"], To: pids["TE"], Bound: 2},
	}}
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch})
	want := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		if got := s.SQuery(batch); !got.Equal(want) {
			t.Errorf("%v: pattern-only batch differs from scratch", m)
		}
	}
}

// TestDataOnlyBatch exercises the ΔGP == ∅ path.
func TestDataOnlyBatch(t *testing.T) {
	g, ids := paperex.DataGraph()
	p, _ := paperex.PatternFig2(g.Labels())
	batch := updates.Batch{D: []updates.Update{
		{Kind: updates.DataEdgeDelete, From: ids["SE1"], To: ids["S1"]},
		{Kind: updates.DataEdgeInsert, From: ids["TE1"], To: ids["S1"]},
	}}
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch})
	want := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		if got := s.SQuery(batch); !got.Equal(want) {
			t.Errorf("%v: data-only batch differs from scratch", m)
		}
	}
}

// TestHorizonWideningMidStream: a pattern update whose bound exceeds the
// engine's horizon must trigger a rebuild at the wider cap, on every
// method, without breaking equality with Scratch.
func TestHorizonWideningMidStream(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	// Initial horizon covers the pattern's max bound (4).
	batch := updates.Batch{P: []updates.Update{
		{Kind: updates.PatternEdgeInsert, From: pids["TE"], To: pids["S"], Bound: 6},
	}}
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch, Horizon: 4})
	want := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m, Horizon: 4})
		got := s.SQuery(batch)
		if !got.Equal(want) {
			t.Errorf("%v: horizon-widening batch differs from scratch", m)
		}
		if s.Engine.Horizon() < 6 {
			t.Errorf("%v: horizon = %d, want ≥ 6", m, s.Engine.Horizon())
		}
	}
}

// TestEmptyingPattern: deleting pattern nodes down to one must keep the
// methods agreeing (including the all-label-candidates rebuild paths).
func TestEmptyingPattern(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig1(g.Labels())
	batch := updates.Batch{P: []updates.Update{
		{Kind: updates.PatternNodeDelete, Node: pids["TE"]},
		{Kind: updates.PatternNodeDelete, Node: pids["S"]},
	}}
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch})
	want := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		if got := s.SQuery(batch); !got.Equal(want) {
			t.Errorf("%v: pattern-shrinking batch differs from scratch", m)
		}
	}
}

// TestUnmatchablePatternNode: inserting a pattern node with a label no
// data node carries empties the projected result (BGS totality) — and a
// later deletion restores it. All methods must track both transitions.
func TestUnmatchablePatternNode(t *testing.T) {
	g, _ := paperex.DataGraph()
	p, pids := paperex.PatternFig2(g.Labels())
	newID := pattern.NodeID(p.NumIDs())
	add := updates.Batch{P: []updates.Update{
		{Kind: updates.PatternNodeInsert, Node: newID, Labels: []string{"CEO"}},
	}}
	remove := updates.Batch{P: []updates.Update{
		{Kind: updates.PatternNodeDelete, Node: newID},
	}}
	for _, m := range Methods {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m})
		s.SQuery(add)
		if got := s.Result(pids["PM"]); !got.Empty() {
			t.Errorf("%v: result should project to empty with an unmatchable node, got %v", m, got)
		}
		if s.Match.Total() {
			t.Errorf("%v: match must not be total", m)
		}
		s.SQuery(remove)
		if got := s.Result(pids["PM"]); got.Len() != 2 {
			t.Errorf("%v: result not restored after deletion, got %v", m, got)
		}
	}
}

// TestLargeBatchStress: one big mixed batch on a mid-sized random graph,
// all methods vs scratch (slower — kept to a single instance).
func TestLargeBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	rng := rand.New(rand.NewSource(404))
	labels := []string{"A", "B", "C", "D", "E"}
	g := randomLabeled(rng, 300, 1500, labels)
	p := randomPattern(rng, g.Labels(), 8, 9, labels)
	batch := updates.Generate(updates.Balanced(5, 8, 120), g, p)
	ref := NewSession(g.Clone(), p.Clone(), Config{Method: Scratch, Horizon: 3})
	want := ref.SQuery(batch)
	for _, m := range Methods[1:] {
		s := NewSession(g.Clone(), p.Clone(), Config{Method: m, Horizon: 3})
		if got := s.SQuery(batch); !got.Equal(want) {
			t.Errorf("%v: large batch differs from scratch", m)
		}
	}
}
