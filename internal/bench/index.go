package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// IndexConfig parameterises the pattern-set index measurement: the
// low-selectivity standing-query regime the discrimination index
// exists for. The data graph is Clusters label-disjoint communities
// (no cross-cluster edges, per-cluster label namespaces); each of the
// Patterns standing queries is drawn over one cluster's labels; each
// batch's updates are confined to a single round-robin cluster. A
// batch can therefore only affect ~Patterns/Clusters registrations —
// the indexed hub should wake about that many while the unindexed hub
// fans over all of them.
type IndexConfig struct {
	Clusters     int // label-disjoint communities (default 32)
	ClusterNodes int // nodes per cluster (default 100)
	ClusterEdges int // intra-cluster edges (default 300)
	Roles        int // distinct labels per cluster (default 6)

	Patterns     int // standing queries (default 10000)
	PatternNodes int // nodes per pattern (default 5)
	PatternEdges int // edges per pattern (default 5)

	Batches int // update batches (default 6)
	Updates int // edge updates per batch, one cluster each (default 30)
	Horizon int // SLen hop cap (default 3)
	Workers int // worker bound for hub fan-out and engines (0 = all cores)
	Seed    int64

	// Verify compares every pattern's final match on the indexed hub
	// against the unindexed hub after the replay (the per-batch
	// equivalence is the hub differential suite's job; this guards the
	// measurement itself).
	Verify bool
}

// IndexSide aggregates one hub's cost over the run.
type IndexSide struct {
	RegisterSeconds float64 `json:"register_seconds"` // build + N× Register (IQuery)
	FanOutSeconds   float64 `json:"fan_out_seconds"`  // phase-3 fan wall time
	TotalSeconds    float64 `json:"total_seconds"`    // whole ApplyBatch wall time
	// Woken/Skipped are summed over batches: Woken counts per-pattern
	// passes actually run, Skipped the passes the index proved
	// unnecessary. The unindexed side wakes everything by definition.
	Woken   int `json:"woken"`
	Skipped int `json:"skipped"`
}

// IndexResult is the measured comparison — BENCH_index.json.
type IndexResult struct {
	Config    IndexConfig `json:"config"`
	Env       RunEnv      `json:"env"`
	Indexed   IndexSide   `json:"indexed"`
	Unindexed IndexSide   `json:"unindexed"`
	// FanReduction = unindexed woken / indexed woken — the headline:
	// how many per-pattern passes the index pruned away. With C
	// clusters and round-robin batches the ideal value is ≈ C.
	FanReduction float64 `json:"fan_reduction"`
	// FanTimeRatio = indexed fan-out seconds / unindexed fan-out
	// seconds (smaller is better).
	FanTimeRatio float64 `json:"fan_time_ratio"`
	Verified     bool    `json:"verified"`
}

// clusteredGraph builds the label-disjoint community graph.
func clusteredGraph(cfg IndexConfig, rng *rand.Rand) *graph.Graph {
	g := graph.New(nil)
	for c := 0; c < cfg.Clusters; c++ {
		for i := 0; i < cfg.ClusterNodes; i++ {
			g.AddNode(fmt.Sprintf("c%d_r%d", c, rng.Intn(cfg.Roles)))
		}
		lo := uint32(c * cfg.ClusterNodes)
		for i := 0; i < cfg.ClusterEdges; i++ {
			g.AddEdge(lo+uint32(rng.Intn(cfg.ClusterNodes)), lo+uint32(rng.Intn(cfg.ClusterNodes)))
		}
	}
	return g
}

// RunIndex executes the comparison: an indexed hub and an unindexed
// (DisableIndex) hub replay identical batches from identical state.
func RunIndex(cfg IndexConfig) IndexResult {
	if cfg.Clusters == 0 {
		cfg.Clusters = 32
	}
	if cfg.ClusterNodes == 0 {
		cfg.ClusterNodes = 100
	}
	if cfg.ClusterEdges == 0 {
		cfg.ClusterEdges = 300
	}
	if cfg.Roles == 0 {
		cfg.Roles = 6
	}
	if cfg.Patterns == 0 {
		cfg.Patterns = 10000
	}
	if cfg.PatternNodes == 0 {
		cfg.PatternNodes = 5
	}
	if cfg.PatternEdges == 0 {
		cfg.PatternEdges = 5
	}
	if cfg.Batches == 0 {
		cfg.Batches = 6
	}
	if cfg.Updates == 0 {
		cfg.Updates = 30
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := clusteredGraph(cfg, rng)

	// Pattern i draws from cluster i%Clusters's label namespace.
	patterns := make([]*pattern.Graph, cfg.Patterns)
	for i := range patterns {
		c := i % cfg.Clusters
		labels := make([]string, cfg.Roles)
		for r := range labels {
			labels[r] = fmt.Sprintf("c%d_r%d", c, r)
		}
		patterns[i] = patgen.Generate(patgen.Config{
			Nodes: cfg.PatternNodes, Edges: cfg.PatternEdges,
			BoundMin: 1, BoundMax: cfg.Horizon,
			Seed:   cfg.Seed + int64(100+i),
			Labels: labels,
		}, g.Labels())
	}

	// Pre-generate the batches against an evolving clone so both sides
	// replay identical updates: batch b flips Updates random edges
	// inside cluster b%Clusters (delete present, insert absent).
	batches := make([][]updates.Update, cfg.Batches)
	{
		gw := g.Clone()
		for b := range batches {
			lo := uint32((b % cfg.Clusters) * cfg.ClusterNodes)
			ups := make([]updates.Update, 0, cfg.Updates)
			for i := 0; i < cfg.Updates; i++ {
				u := lo + uint32(rng.Intn(cfg.ClusterNodes))
				v := lo + uint32(rng.Intn(cfg.ClusterNodes))
				kind := updates.DataEdgeInsert
				if gw.HasEdge(u, v) {
					kind = updates.DataEdgeDelete
				}
				ups = append(ups, updates.Update{Kind: kind, From: u, To: v})
			}
			updates.ApplyDataStructural(ups, gw)
			batches[b] = ups
		}
	}

	res := IndexResult{Config: cfg, Env: CaptureEnv(cfg.Workers, 0), Verified: cfg.Verify}

	side := func(disable bool, out *IndexSide) (*hub.Hub, []hub.PatternID) {
		start := time.Now()
		h, err := hub.New(g.Clone(), hub.Config{
			Horizon: cfg.Horizon, Workers: cfg.Workers, DisableIndex: disable,
		})
		if err != nil {
			panic("bench: hub build failed: " + err.Error())
		}
		ids := make([]hub.PatternID, len(patterns))
		for i, p := range patterns {
			id, err := h.Register(p.Clone())
			if err != nil {
				panic("bench: hub register failed: " + err.Error())
			}
			ids[i] = id
		}
		out.RegisterSeconds = time.Since(start).Seconds()
		for _, ups := range batches {
			_, st, err := h.ApplyBatch(hub.Batch{D: ups})
			if err != nil {
				panic("bench: hub batch rejected: " + err.Error())
			}
			out.FanOutSeconds += st.FanOut.Seconds()
			out.TotalSeconds += st.Duration.Seconds()
			out.Woken += st.Woken
			out.Skipped += st.Skipped
		}
		return h, ids
	}

	indexed, idsI := side(false, &res.Indexed)
	defer indexed.Close()
	unindexed, idsU := side(true, &res.Unindexed)
	defer unindexed.Close()

	if cfg.Verify {
		for i := range patterns {
			mi, okI := indexed.Match(idsI[i])
			mu, okU := unindexed.Match(idsU[i])
			if !okI || !okU || !mi.Equal(mu) {
				panic(fmt.Sprintf("bench: pattern %d diverged between indexed and unindexed hub", i))
			}
		}
	}

	res.FanReduction = ratio(float64(res.Unindexed.Woken), float64(res.Indexed.Woken))
	res.FanTimeRatio = ratio(res.Indexed.FanOutSeconds, res.Unindexed.FanOutSeconds)
	return res
}

// String renders the comparison as a table.
func (r IndexResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern-set index — %d patterns over %d label-disjoint clusters, %d batches × %d single-cluster updates (workers=%d)\n",
		r.Config.Patterns, r.Config.Clusters, r.Config.Batches, r.Config.Updates, r.Config.Workers)
	fmt.Fprintf(&sb, "%-16s  %12s  %12s  %12s  %10s  %10s\n",
		"", "register (s)", "fan-out (s)", "total (s)", "woken", "skipped")
	row := func(name string, s IndexSide) {
		fmt.Fprintf(&sb, "%-16s  %12.4f  %12.4f  %12.4f  %10d  %10d\n",
			name, s.RegisterSeconds, s.FanOutSeconds, s.TotalSeconds, s.Woken, s.Skipped)
	}
	row("indexed hub", r.Indexed)
	row("unindexed hub", r.Unindexed)
	fmt.Fprintf(&sb, "fan-out reduction: %.1fx fewer per-pattern passes (%d vs %d), fan time ratio %.3f",
		r.FanReduction, r.Indexed.Woken, r.Unindexed.Woken, r.FanTimeRatio)
	if r.Verified {
		sb.WriteString("  [results verified equal]")
	}
	sb.WriteString("\n")
	return sb.String()
}

// JSON renders the comparison for machine consumption (BENCH files).
func (r IndexResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
