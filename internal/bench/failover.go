package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"uagpnm/internal/datasets"
	"uagpnm/internal/hub"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/shard"
	"uagpnm/internal/updates"
)

// FailoverConfig parameterises the shard-failover measurement: a hub
// whose partition substrate runs on two self-spawned HTTP shard
// workers, with one worker killed abruptly mid-run. Measured are the
// steady-state batch rate before the kill, the wall time of the one
// batch that absorbs the loss (detection + rebuild of the lost
// partitions from the coordinator's mirrors + fenced replay), and the
// batch rate afterwards on the survivor alone.
type FailoverConfig struct {
	Nodes    int // data graph size (default 3000)
	Edges    int // data graph edges (default 12000)
	Labels   int // distinct role labels (default 16)
	Patterns int // standing queries (default 8)

	PatternNodes int // nodes per pattern (default 6)
	PatternEdges int // edges per pattern (default 6)

	BatchesBefore int // steady-state batches before the kill (default 4)
	BatchesAfter  int // survivor-only batches after the kill (default 4)
	Updates       int // data updates per batch (default 150)
	Horizon       int // SLen hop cap (default 3)
	Workers       int // worker bound (0 = all cores)
	Seed          int64

	// Verify differentially replays the whole run — kill included — on
	// an in-process hub and compares every pattern's final match
	// (enabled by default in the CLI).
	Verify bool
}

// FailoverResult is the measured failover profile.
type FailoverResult struct {
	Config FailoverConfig `json:"config"`
	Env    RunEnv         `json:"env"`

	BuildSeconds float64 `json:"build_seconds"` // sharded hub build + registrations

	// Steady state before the kill (2 workers serving).
	BeforeBatchSeconds  float64 `json:"before_batch_seconds"` // mean per batch
	BeforeBatchesPerSec float64 `json:"before_batches_per_sec"`

	// The kill batch: one worker is dead when the batch arrives; the
	// batch completes through failover. RecoverySeconds is its whole
	// wall time — detection (transport retries + probe), rebuilding the
	// lost partitions on the survivor, the fenced replay and the
	// batch's own work; OverheadRatio normalises it by the pre-kill
	// mean so the figure transfers across hosts.
	RecoverySeconds       float64 `json:"recovery_seconds"`
	RecoveryOverheadRatio float64 `json:"recovery_overhead_ratio"`
	Recovered             int     `json:"recovered"` // losses absorbed by the kill batch

	// Steady state after the kill (survivor only).
	AfterBatchSeconds  float64 `json:"after_batch_seconds"` // mean per batch
	AfterBatchesPerSec float64 `json:"after_batches_per_sec"`

	Verified bool `json:"verified"`
}

// failoverWorker is one self-spawned shard worker whose listener and
// connections can be torn down abruptly (http.Server.Close — the
// in-process stand-in for kill -9).
type failoverWorker struct {
	addr string
	srv  *http.Server
}

func spawnFailoverWorker() (*failoverWorker, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	w := &failoverWorker{addr: ln.Addr().String(),
		srv: &http.Server{Handler: shard.NewServer().Handler()}}
	go func() { _ = w.srv.Serve(ln) }()
	return w, nil
}

func (w *failoverWorker) kill() { _ = w.srv.Close() }

// RunFailover executes the measurement.
func RunFailover(cfg FailoverConfig) FailoverResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3000
	}
	if cfg.Edges == 0 {
		cfg.Edges = 12000
	}
	if cfg.Labels == 0 {
		cfg.Labels = 16
	}
	if cfg.Patterns == 0 {
		cfg.Patterns = 8
	}
	if cfg.PatternNodes == 0 {
		cfg.PatternNodes = 6
	}
	if cfg.PatternEdges == 0 {
		cfg.PatternEdges = 6
	}
	if cfg.BatchesBefore == 0 {
		cfg.BatchesBefore = 4
	}
	if cfg.BatchesAfter == 0 {
		cfg.BatchesAfter = 4
	}
	if cfg.Updates == 0 {
		cfg.Updates = 150
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}

	g := datasets.GenerateSocial(datasets.SocialConfig{
		Name: "failover", Nodes: cfg.Nodes, Edges: cfg.Edges,
		Labels: cfg.Labels, Homophily: 0.8, PrefAtt: 0.6, Seed: cfg.Seed,
	})
	patterns := make([]*pattern.Graph, cfg.Patterns)
	for i := range patterns {
		patterns[i] = patgen.Generate(patgen.Config{
			Nodes: cfg.PatternNodes, Edges: cfg.PatternEdges,
			BoundMin: 1, BoundMax: cfg.Horizon,
			Seed:   cfg.Seed + int64(100+i),
			Labels: patgen.LabelsOf(g),
		}, g.Labels())
	}

	// Pre-generate every batch (before + kill + after) against an
	// evolving clone so the sharded run and the verification replay see
	// identical updates.
	total := cfg.BatchesBefore + 1 + cfg.BatchesAfter
	batches := make([]updates.Batch, total)
	{
		gw := g.Clone()
		for i := range batches {
			batches[i] = updates.Generate(
				updates.Balanced(cfg.Seed+int64(10+i), 0, cfg.Updates), gw, patterns[0])
			updates.ApplyDataStructural(batches[i].D, gw)
		}
	}

	res := FailoverResult{Config: cfg, Env: CaptureEnv(cfg.Workers, 2), Verified: cfg.Verify}

	w1, err := spawnFailoverWorker()
	if err != nil {
		panic("bench: spawning shard worker: " + err.Error())
	}
	defer w1.kill()
	w2, err := spawnFailoverWorker()
	if err != nil {
		panic("bench: spawning shard worker: " + err.Error())
	}
	defer w2.kill()

	start := time.Now()
	h, err := hub.New(g.Clone(), hub.Config{Horizon: cfg.Horizon, Workers: cfg.Workers,
		Shards: []string{w1.addr, w2.addr}})
	if err != nil {
		panic("bench: sharded hub build failed: " + err.Error())
	}
	defer h.Close()
	ids := make([]hub.PatternID, cfg.Patterns)
	for i, ph := range patterns {
		id, rerr := h.Register(ph.Clone())
		if rerr != nil {
			panic("bench: hub register failed: " + rerr.Error())
		}
		ids[i] = id
	}
	res.BuildSeconds = time.Since(start).Seconds()

	apply := func(b updates.Batch) hub.BatchStats {
		_, st, aerr := h.ApplyBatch(hub.Batch{D: b.D})
		if aerr != nil {
			panic("bench: hub batch rejected: " + aerr.Error())
		}
		return st
	}

	// Steady state, both workers serving.
	start = time.Now()
	for _, b := range batches[:cfg.BatchesBefore] {
		apply(b)
	}
	res.BeforeBatchSeconds = time.Since(start).Seconds() / float64(cfg.BatchesBefore)
	res.BeforeBatchesPerSec = ratio(1, res.BeforeBatchSeconds)

	// kill -9 equivalent: listener and live connections torn down with
	// no drain, between batches — the next batch discovers the corpse.
	w2.kill()
	start = time.Now()
	st := apply(batches[cfg.BatchesBefore])
	res.RecoverySeconds = time.Since(start).Seconds()
	res.RecoveryOverheadRatio = ratio(res.RecoverySeconds, res.BeforeBatchSeconds)
	res.Recovered = st.Recovered
	if res.Recovered == 0 {
		panic("bench: the kill batch recorded no recovery — the scenario did not exercise failover")
	}

	// Steady state on the survivor alone.
	start = time.Now()
	for _, b := range batches[cfg.BatchesBefore+1:] {
		apply(b)
	}
	res.AfterBatchSeconds = time.Since(start).Seconds() / float64(cfg.BatchesAfter)
	res.AfterBatchesPerSec = ratio(1, res.AfterBatchSeconds)

	// Differential verification: the whole stream replayed in-process
	// must leave every pattern's match identical — recovery has to be
	// invisible in the data.
	if cfg.Verify {
		ref, rerr := hub.New(g.Clone(), hub.Config{Horizon: cfg.Horizon, Workers: cfg.Workers})
		if rerr != nil {
			panic("bench: reference hub build failed: " + rerr.Error())
		}
		defer ref.Close()
		refIDs := make([]hub.PatternID, cfg.Patterns)
		for i, ph := range patterns {
			refIDs[i], _ = ref.Register(ph.Clone())
		}
		for _, b := range batches {
			if _, _, aerr := ref.ApplyBatch(hub.Batch{D: b.D}); aerr != nil {
				panic("bench: reference batch rejected: " + aerr.Error())
			}
		}
		for i := range ids {
			ms, ok := h.Match(ids[i])
			mr, _ := ref.Match(refIDs[i])
			if !ok || !ms.Equal(mr) {
				panic(fmt.Sprintf("bench: pattern %d diverged across the failover", i))
			}
		}
	}
	return res
}

// String renders the profile as a table.
func (r FailoverResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "shard failover — %d patterns, %d nodes, %d edges, %d+1+%d batches × %d updates (workers=%d, 2 shard workers, one killed)\n",
		r.Config.Patterns, r.Config.Nodes, r.Config.Edges,
		r.Config.BatchesBefore, r.Config.BatchesAfter, r.Config.Updates, r.Config.Workers)
	fmt.Fprintf(&sb, "%-34s  %12s  %14s\n", "", "s/batch", "batches/sec")
	fmt.Fprintf(&sb, "%-34s  %12.4f  %14.2f\n", "before kill (2 workers)", r.BeforeBatchSeconds, r.BeforeBatchesPerSec)
	fmt.Fprintf(&sb, "%-34s  %12.4f  %14s\n", "kill batch (detect+rebuild+replay)", r.RecoverySeconds, "-")
	fmt.Fprintf(&sb, "%-34s  %12.4f  %14.2f\n", "after kill (survivor only)", r.AfterBatchSeconds, r.AfterBatchesPerSec)
	fmt.Fprintf(&sb, "recovery overhead: %.1f× a steady-state batch; losses absorbed: %d",
		r.RecoveryOverheadRatio, r.Recovered)
	if r.Verified {
		sb.WriteString("  [results verified equal across the kill]")
	}
	sb.WriteString("\n")
	return sb.String()
}

// JSON renders the profile for machine consumption (BENCH files).
func (r FailoverResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
