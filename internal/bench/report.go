package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"

	"uagpnm/internal/core"
)

// RunEnv records the hardware and concurrency context a BENCH_*.json
// file was recorded under. The container this repository grows in is
// single-core; without these fields a baseline recorded there is
// indistinguishable from a 32-way run, and parallel speedups (or their
// absence) cannot be interpreted.
type RunEnv struct {
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Workers is the configured engine/fan-out worker bound
	// (0 = all cores).
	Workers int `json:"workers"`
	// Shards counts the remote gpnm-shard workers serving the
	// partition substrate (0 = fully in-process).
	Shards int `json:"shards"`
	// DegradedEnv flags a recording made under GOMAXPROCS == 1: no
	// parallel speedup can manifest there, so scaling parity in such a
	// file reads as "no speedup" when it is actually "no cores". Any
	// consumer comparing worker counts must discard degraded files.
	DegradedEnv bool `json:"degraded_env,omitempty"`
}

// CaptureEnv snapshots the current process environment.
func CaptureEnv(workers, shards int) RunEnv {
	return RunEnv{
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Workers:     workers,
		Shards:      shards,
		DegradedEnv: runtime.GOMAXPROCS(0) == 1,
	}
}

// This file renders the paper's evaluation artifacts from a Results:
//
//	TableXI   — average query processing time per dataset per method
//	TableXII  — UA-GPNM's reduction vs INC-GPNM, EH-GPNM, UA-GPNM-NoPar
//	            per dataset
//	TableXIII — average query time per ΔG scale per method
//	TableXIV  — UA-GPNM's reduction per ΔG scale
//	Figure    — one of Figs. 5–9: per pattern size, the four methods'
//	            series over the five ΔG scales for one dataset
//
// Absolute numbers differ from the paper (Go vs C++, synthetic stand-in
// graphs at reduced scale); the artifact under reproduction is the shape
// — ordering and relative gaps (see EXPERIMENTS.md).

// fmtSecs renders a duration in adaptive units.
func fmtSecs(s float64) string {
	switch {
	case s == 0:
		return "-"
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.0fµs", s*1e6)
	}
}

func fmtPct(less float64) string { return fmt.Sprintf("%.2f%% less", less*100) }

// reduction returns how much faster "mine" is than "other" as a fraction
// of other (the paper's "x% less" figures).
func reduction(mine, other float64) float64 {
	if other == 0 {
		return 0
	}
	return (other - mine) / other
}

func (r *Results) datasetNames() []string {
	var names []string
	seen := map[string]bool{}
	for _, s := range r.Protocol.Datasets {
		if !seen[s.Name] {
			seen[s.Name] = true
			names = append(names, s.Name)
		}
	}
	return names
}

// TableXI renders the average query processing time per dataset
// (paper Table XI).
func (r *Results) TableXI() string {
	var b strings.Builder
	b.WriteString("Table XI: average query processing time per dataset\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "Dataset")
	order := []core.Method{core.UAGPNM, core.UAGPNMNoPar, core.EHGPNM, core.INCGPNM}
	methods := r.methodsInOrder(order)
	for _, m := range methods {
		fmt.Fprintf(w, "\t%s", m)
	}
	fmt.Fprintln(w)
	totals := make([]float64, len(methods))
	for _, name := range r.datasetNames() {
		fmt.Fprint(w, name)
		for i, m := range methods {
			avg := r.MethodAverage(name, m)
			totals[i] += avg
			fmt.Fprintf(w, "\t%s", fmtSecs(avg))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "Average")
	n := len(r.datasetNames())
	for i := range methods {
		avg := 0.0
		if n > 0 {
			avg = totals[i] / float64(n)
		}
		fmt.Fprintf(w, "\t%s", fmtSecs(avg))
	}
	fmt.Fprintln(w)
	w.Flush()
	return b.String()
}

func (r *Results) methodsInOrder(order []core.Method) []core.Method {
	have := map[core.Method]bool{}
	for _, m := range r.Protocol.Methods {
		have[m] = true
	}
	var out []core.Method
	for _, m := range order {
		if have[m] {
			out = append(out, m)
		}
	}
	return out
}

// TableXII renders UA-GPNM's reduction per dataset (paper Table XII).
func (r *Results) TableXII() string {
	var b strings.Builder
	b.WriteString("Table XII: UA-GPNM query time reduction per dataset\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Dataset\tvs INC-GPNM\tvs EH-GPNM\tvs UA-GPNM-NoPar")
	baselines := []core.Method{core.INCGPNM, core.EHGPNM, core.UAGPNMNoPar}
	sums := make([]float64, len(baselines))
	names := r.datasetNames()
	for _, name := range names {
		ua := r.MethodAverage(name, core.UAGPNM)
		fmt.Fprint(w, name)
		for i, base := range baselines {
			red := reduction(ua, r.MethodAverage(name, base))
			sums[i] += red
			fmt.Fprintf(w, "\t%s", fmtPct(red))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "Average")
	for i := range baselines {
		avg := 0.0
		if len(names) > 0 {
			avg = sums[i] / float64(len(names))
		}
		fmt.Fprintf(w, "\t%s", fmtPct(avg))
	}
	fmt.Fprintln(w)
	w.Flush()
	return b.String()
}

// TableXIII renders the average query time per ΔG scale (paper Table XIII).
func (r *Results) TableXIII() string {
	var b strings.Builder
	b.WriteString("Table XIII: average query processing time per ΔG scale\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	order := []core.Method{core.UAGPNM, core.UAGPNMNoPar, core.EHGPNM, core.INCGPNM}
	methods := r.methodsInOrder(order)
	fmt.Fprint(w, "Scale of ΔG")
	for _, m := range methods {
		fmt.Fprintf(w, "\t%s", m)
	}
	fmt.Fprintln(w)
	for _, sc := range r.Protocol.Scales {
		fmt.Fprintf(w, "(%d, %d)", sc[0], sc[1])
		for _, m := range methods {
			fmt.Fprintf(w, "\t%s", fmtSecs(r.ScaleAverage(sc, m)))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// TableXIV renders UA-GPNM's reduction per ΔG scale (paper Table XIV).
func (r *Results) TableXIV() string {
	var b strings.Builder
	b.WriteString("Table XIV: UA-GPNM query time reduction per ΔG scale\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Scale of ΔG\tvs INC-GPNM\tvs EH-GPNM\tvs UA-GPNM-NoPar")
	for _, sc := range r.Protocol.Scales {
		ua := r.ScaleAverage(sc, core.UAGPNM)
		fmt.Fprintf(w, "(%d, %d)", sc[0], sc[1])
		for _, base := range []core.Method{core.INCGPNM, core.EHGPNM, core.UAGPNMNoPar} {
			fmt.Fprintf(w, "\t%s", fmtPct(reduction(ua, r.ScaleAverage(sc, base))))
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// FigureNumber maps a dataset name to its figure number in the paper
// (Figs. 5–9 in Table X order), or 0.
func FigureNumber(dataset string) int {
	switch dataset {
	case "email-EU-core":
		return 5
	case "DBLP":
		return 6
	case "Amazon":
		return 7
	case "Youtube":
		return 8
	case "LiveJournal":
		return 9
	}
	return 0
}

// Figure renders the series of one of Figs. 5–9: for each pattern size,
// the average query time of every method across the ΔG scales.
func (r *Results) Figure(dataset string) string {
	var b strings.Builder
	if n := FigureNumber(dataset); n > 0 {
		fmt.Fprintf(&b, "Fig. %d: average query processing time in %s\n", n, dataset)
	} else {
		fmt.Fprintf(&b, "Figure: average query processing time in %s\n", dataset)
	}
	order := []core.Method{core.UAGPNM, core.UAGPNMNoPar, core.EHGPNM, core.INCGPNM}
	methods := r.methodsInOrder(order)
	for _, size := range r.Protocol.PatternSizes {
		fmt.Fprintf(&b, "\nThe size of pattern graph = (%d, %d)\n", size[0], size[1])
		w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(w, "Method")
		for _, sc := range r.Protocol.Scales {
			fmt.Fprintf(w, "\t(%d, %d)", sc[0], sc[1])
		}
		fmt.Fprintln(w)
		for _, m := range methods {
			fmt.Fprint(w, m)
			for _, sc := range r.Protocol.Scales {
				fmt.Fprintf(w, "\t%s", fmtSecs(r.CellAverage(dataset, size, sc, m)))
			}
			fmt.Fprintln(w)
		}
		w.Flush()
	}
	return b.String()
}

// CSV dumps every cell for external plotting, sorted deterministically.
// cellLess is the canonical cell ordering shared by CSV and JSON dumps:
// dataset, then pattern size, then ΔG scale, then method.
func cellLess(a, c Cell) bool {
	if a.Dataset != c.Dataset {
		return a.Dataset < c.Dataset
	}
	if a.PatternSize != c.PatternSize {
		return a.PatternSize[0] < c.PatternSize[0] ||
			(a.PatternSize[0] == c.PatternSize[0] && a.PatternSize[1] < c.PatternSize[1])
	}
	if a.Scale != c.Scale {
		return a.Scale[1] < c.Scale[1] || (a.Scale[1] == c.Scale[1] && a.Scale[0] < c.Scale[0])
	}
	return a.Method < c.Method
}

func (r *Results) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,pattern_nodes,pattern_edges,scale_p,scale_d,method,runs,avg_seconds,avg_roots,avg_eliminated,avg_seeds\n")
	cells := append([]Cell(nil), r.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cellLess(cells[i], cells[j]) })
	for _, c := range cells {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%s,%d,%.9f,%.2f,%.2f,%.1f\n",
			c.Dataset, c.PatternSize[0], c.PatternSize[1], c.Scale[0], c.Scale[1],
			c.Method, c.Runs, c.AvgSeconds(), c.AvgRoots, c.AvgEliminated, c.AvgSeeds)
	}
	return b.String()
}

// jsonCell mirrors Cell with stable, snake_case field names for the
// machine-readable dump (BENCH files, CI baselines).
type jsonCell struct {
	Dataset      string  `json:"dataset"`
	PatternNodes int     `json:"pattern_nodes"`
	PatternEdges int     `json:"pattern_edges"`
	ScaleP       int     `json:"scale_p"`
	ScaleD       int     `json:"scale_d"`
	Method       string  `json:"method"`
	Runs         int     `json:"runs"`
	AvgSeconds   float64 `json:"avg_seconds"`
	AvgRoots     float64 `json:"avg_roots"`
	AvgElim      float64 `json:"avg_eliminated"`
	AvgSeeds     float64 `json:"avg_seeds"`
}

// JSON dumps every cell plus the per-method averages, sorted like CSV.
func (r *Results) JSON() ([]byte, error) {
	cells := append([]Cell(nil), r.Cells...)
	sort.Slice(cells, func(i, j int) bool { return cellLess(cells[i], cells[j]) })
	out := struct {
		Env            RunEnv             `json:"env"`
		Workers        int                `json:"workers"`
		Horizon        int                `json:"horizon"`
		Reps           int                `json:"reps"`
		MethodAverages map[string]float64 `json:"method_averages_seconds"`
		Cells          []jsonCell         `json:"cells"`
	}{
		Env:            CaptureEnv(r.Protocol.Workers, 0),
		Workers:        r.Protocol.Workers,
		Horizon:        r.Protocol.Horizon,
		Reps:           r.Protocol.Reps,
		MethodAverages: make(map[string]float64, len(r.Protocol.Methods)),
	}
	for _, m := range r.Protocol.Methods {
		out.MethodAverages[m.String()] = r.MethodAverage("", m)
	}
	for _, c := range cells {
		out.Cells = append(out.Cells, jsonCell{
			Dataset: c.Dataset, PatternNodes: c.PatternSize[0], PatternEdges: c.PatternSize[1],
			ScaleP: c.Scale[0], ScaleD: c.Scale[1], Method: c.Method.String(), Runs: c.Runs,
			AvgSeconds: c.AvgSeconds(), AvgRoots: c.AvgRoots, AvgElim: c.AvgEliminated, AvgSeeds: c.AvgSeeds,
		})
	}
	return json.MarshalIndent(out, "", "  ")
}
