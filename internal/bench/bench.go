// Package bench implements the experiment harness of §VII: the full
// protocol (five datasets × five pattern sizes × five ΔG scales ×
// repetitions × four methods) and the report generators for every table
// and figure of the paper's evaluation — Tables XI–XIV and the series
// behind Figs. 5–9. cmd/gpnm-bench is the CLI front end; bench_test.go
// at the module root exposes the same cells as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"

	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
	"uagpnm/internal/graph"
	"uagpnm/internal/partition"
	"uagpnm/internal/patgen"
	"uagpnm/internal/shortest"
	"uagpnm/internal/updates"
)

// Protocol is one experiment configuration.
type Protocol struct {
	Datasets     []datasets.Spec
	PatternSizes [][2]int // (nodes, edges) per §VII-A: (6,6)…(10,10)
	Scales       [][2]int // (pattern updates, data updates): (6,200)…(10,1000)
	Reps         int      // independent runs per cell (paper: 125)
	Horizon      int      // SLen hop cap (3: the generator's max bound)
	Methods      []core.Method
	Workers      int       // engine worker pool bound (0 = default, 1 = serial)
	Progress     io.Writer // optional run log; nil silences it
}

// PaperPatternSizes are the five pattern sizes of Figs. 5–9.
var PaperPatternSizes = [][2]int{{6, 6}, {7, 7}, {8, 8}, {9, 9}, {10, 10}}

// PaperScales are the five ΔG scales of Figs. 5–9.
var PaperScales = [][2]int{{6, 200}, {7, 400}, {8, 600}, {9, 800}, {10, 1000}}

// MiniScales shrink the data-update counts for quick runs, preserving
// the growth shape.
var MiniScales = [][2]int{{6, 40}, {7, 80}, {8, 120}, {9, 160}, {10, 200}}

// ComparedMethods are the four methods of the paper's evaluation.
var ComparedMethods = []core.Method{core.INCGPNM, core.EHGPNM, core.UAGPNMNoPar, core.UAGPNM}

// Default returns the full (mini=false) or reduced (mini=true) protocol.
func Default(mini bool) Protocol {
	p := Protocol{
		PatternSizes: PaperPatternSizes,
		Scales:       PaperScales,
		Reps:         3,
		Horizon:      3,
		Methods:      ComparedMethods,
	}
	if mini {
		p.Datasets = datasets.Mini()
		p.Scales = MiniScales
		p.Reps = 2
	} else {
		p.Datasets = datasets.Sim()
	}
	return p
}

// Cell is one measured cell: a (dataset, pattern size, ΔG scale, method)
// combination averaged over the repetitions.
type Cell struct {
	Dataset       string
	PatternSize   [2]int
	Scale         [2]int
	Method        core.Method
	Runs          int
	TotalSeconds  float64
	AvgRoots      float64
	AvgEliminated float64
	AvgSeeds      float64
}

// AvgSeconds is the mean SQuery time of the cell.
func (c Cell) AvgSeconds() float64 {
	if c.Runs == 0 {
		return 0
	}
	return c.TotalSeconds / float64(c.Runs)
}

// Results collects every measured cell of one protocol run.
type Results struct {
	Protocol Protocol
	Cells    []Cell
}

// Run executes the protocol and returns the measurements.
func (pr Protocol) Run() *Results {
	res := &Results{Protocol: pr}
	logf := func(format string, args ...interface{}) {
		if pr.Progress != nil {
			fmt.Fprintf(pr.Progress, format, args...)
		}
	}
	for di, spec := range pr.Datasets {
		logf("dataset %s: generating %d nodes / %d edges\n", spec.Name, spec.Nodes, spec.Edges)
		g := datasets.GenerateSocial(spec.SocialConfig)
		baseEngines := pr.buildBaseEngines(g)
		logf("dataset %s: engines built\n", spec.Name)
		for si, size := range pr.PatternSizes {
			for rep := 0; rep < pr.Reps; rep++ {
				seedBase := int64(di*100003 + si*1009 + rep*31)
				p := patgen.Generate(patgen.Config{
					Nodes: size[0], Edges: size[1],
					BoundMin: 1, BoundMax: pr.Horizon,
					Seed:   seedBase,
					Labels: patgen.LabelsOf(g),
				}, g.Labels())
				base := make(map[core.Method]*core.Session, len(pr.Methods))
				for _, m := range pr.Methods {
					g2 := g.Clone()
					eng := baseEngines[engineKind(m)].CloneFor(g2)
					base[m] = core.NewSessionWith(g2, p.Clone(), eng,
						core.Config{Method: m, Horizon: pr.Horizon, Workers: pr.Workers})
				}
				for sci, scale := range pr.Scales {
					batch := updates.Generate(
						updates.Balanced(seedBase*7919+int64(sci), scale[0], scale[1]), g, p)
					for _, m := range pr.Methods {
						s := base[m].Fork()
						s.SQuery(batch)
						res.record(spec.Name, size, scale, m, s.Stats)
					}
				}
				logf("dataset %s: pattern (%d,%d) rep %d done\n", spec.Name, size[0], size[1], rep)
			}
		}
	}
	return res
}

// engineKind groups methods by the engine they run on.
func engineKind(m core.Method) int {
	if m == core.UAGPNM {
		return 1
	}
	return 0
}

func (pr Protocol) buildBaseEngines(g *graph.Graph) map[int]shortest.DistanceEngine {
	out := make(map[int]shortest.DistanceEngine, 2)
	needGlobal, needPart := false, false
	for _, m := range pr.Methods {
		if engineKind(m) == 1 {
			needPart = true
		} else {
			needGlobal = true
		}
	}
	if needGlobal {
		var opts []shortest.Option
		if pr.Workers > 0 {
			opts = append(opts, shortest.WithWorkers(pr.Workers))
		}
		e := shortest.NewEngine(g, pr.Horizon, opts...)
		e.Build()
		out[0] = e
	}
	if needPart {
		var opts []partition.Option
		if pr.Workers > 0 {
			opts = append(opts, partition.WithWorkers(pr.Workers))
		}
		e := partition.NewEngine(g, pr.Horizon, opts...)
		e.Build()
		out[1] = e
	}
	return out
}

func (r *Results) record(dataset string, size, scale [2]int, m core.Method, st core.QueryStats) {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Dataset == dataset && c.PatternSize == size && c.Scale == scale && c.Method == m {
			c.Runs++
			c.TotalSeconds += st.Duration.Seconds()
			c.AvgRoots += roll(c.AvgRoots, float64(st.TreeRoots), c.Runs)
			c.AvgEliminated += roll(c.AvgEliminated, float64(st.Eliminated), c.Runs)
			c.AvgSeeds += roll(c.AvgSeeds, float64(st.SeedNodes), c.Runs)
			return
		}
	}
	r.Cells = append(r.Cells, Cell{
		Dataset: dataset, PatternSize: size, Scale: scale, Method: m,
		Runs: 1, TotalSeconds: st.Duration.Seconds(),
		AvgRoots:      float64(st.TreeRoots),
		AvgEliminated: float64(st.Eliminated),
		AvgSeeds:      float64(st.SeedNodes),
	})
}

// roll computes the increment that turns a running mean over n-1 samples
// into the mean over n samples including x.
func roll(mean, x float64, n int) float64 { return (x - mean) / float64(n) }

// average computes the mean AvgSeconds over the cells selected by keep.
func (r *Results) average(keep func(Cell) bool) (float64, int) {
	sum, n := 0.0, 0
	for _, c := range r.Cells {
		if keep(c) {
			sum += c.TotalSeconds
			n += c.Runs
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// MethodAverage returns the mean query time of a method on one dataset
// ("" = all datasets) — the numbers behind Tables XI and XIII.
func (r *Results) MethodAverage(dataset string, m core.Method) float64 {
	avg, _ := r.average(func(c Cell) bool {
		return (dataset == "" || c.Dataset == dataset) && c.Method == m
	})
	return avg
}

// ScaleAverage returns the mean query time of a method at one ΔG scale.
func (r *Results) ScaleAverage(scale [2]int, m core.Method) float64 {
	avg, _ := r.average(func(c Cell) bool {
		return c.Scale == scale && c.Method == m
	})
	return avg
}

// CellAverage returns the mean query time of one figure point.
func (r *Results) CellAverage(dataset string, size, scale [2]int, m core.Method) float64 {
	avg, _ := r.average(func(c Cell) bool {
		return c.Dataset == dataset && c.PatternSize == size && c.Scale == scale && c.Method == m
	})
	return avg
}
