package bench

import (
	"strings"
	"testing"

	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
)

// tinyProtocol keeps unit tests fast: one small dataset, one size, two
// scales, one rep.
func tinyProtocol() Protocol {
	return Protocol{
		Datasets: []datasets.Spec{
			{SocialConfig: datasets.SocialConfig{Name: "email-EU-core", Nodes: 150, Edges: 700, Labels: 5, Homophily: 0.8, PrefAtt: 0.5, Seed: 1}},
		},
		PatternSizes: [][2]int{{6, 6}},
		Scales:       [][2]int{{3, 8}, {4, 16}},
		Reps:         1,
		Horizon:      3,
		Methods:      ComparedMethods,
	}
}

func TestProtocolRunProducesAllCells(t *testing.T) {
	res := tinyProtocol().Run()
	want := 1 * 1 * 2 * len(ComparedMethods)
	if len(res.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		if c.Runs != 1 {
			t.Errorf("cell %+v: runs = %d, want 1", c, c.Runs)
		}
		if c.TotalSeconds <= 0 {
			t.Errorf("cell %+v: no time recorded", c)
		}
	}
}

func TestReportsRender(t *testing.T) {
	res := tinyProtocol().Run()
	xi := res.TableXI()
	for _, want := range []string{"Table XI", "email-EU-core", "UA-GPNM", "INC-GPNM", "Average"} {
		if !strings.Contains(xi, want) {
			t.Errorf("Table XI missing %q:\n%s", want, xi)
		}
	}
	xii := res.TableXII()
	if !strings.Contains(xii, "vs INC-GPNM") || !strings.Contains(xii, "% less") {
		t.Errorf("Table XII malformed:\n%s", xii)
	}
	xiii := res.TableXIII()
	if !strings.Contains(xiii, "(3, 8)") || !strings.Contains(xiii, "(4, 16)") {
		t.Errorf("Table XIII malformed:\n%s", xiii)
	}
	xiv := res.TableXIV()
	if !strings.Contains(xiv, "Table XIV") {
		t.Errorf("Table XIV malformed:\n%s", xiv)
	}
	fig := res.Figure("email-EU-core")
	for _, want := range []string{"Fig. 5", "pattern graph = (6, 6)", "UA-GPNM"} {
		if !strings.Contains(fig, want) {
			t.Errorf("figure missing %q:\n%s", want, fig)
		}
	}
	csv := res.CSV()
	if !strings.Contains(csv, "dataset,pattern_nodes") || strings.Count(csv, "\n") != len(res.Cells)+1 {
		t.Errorf("CSV malformed:\n%s", csv)
	}
}

// TestRunAsyncTiny pins the async scenario's shape at toy scale: the
// sweep produces lock-step and pipelined cells, the pipelined replay
// adopts previews (every batch but the first has a predecessor to
// overlap with), the differential verify passes (RunAsync panics on
// divergence), and the report renders its headline.
func TestRunAsyncTiny(t *testing.T) {
	res := RunAsync(AsyncConfig{
		Nodes: 300, Edges: 1200, Labels: 6, Patterns: 4,
		Batches: 3, Updates: 15, Verify: true,
	})
	if len(res.Cells) != 2 && len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 2 (single-core) or 4", len(res.Cells))
	}
	overlapped := 0
	for _, c := range res.Cells {
		if c.WallSeconds <= 0 {
			t.Errorf("cell %s/%d: no time recorded", c.Mode, c.Workers)
		}
		switch c.Mode {
		case "pipelined":
			overlapped += c.OverlappedBatches
		case "lockstep":
			if c.OverlappedBatches != 0 {
				t.Errorf("lock-step cell claims %d overlapped batches", c.OverlappedBatches)
			}
		default:
			t.Errorf("unknown cell mode %q", c.Mode)
		}
	}
	if overlapped == 0 {
		t.Fatal("no pipelined cell adopted a preview")
	}
	if !res.Verified {
		t.Fatal("verify flag dropped")
	}
	out := res.String()
	if !strings.Contains(out, "pipeline speedup") || !strings.Contains(out, "pipelined") {
		t.Errorf("report malformed:\n%s", out)
	}
}

func TestFigureNumber(t *testing.T) {
	cases := map[string]int{
		"email-EU-core": 5, "DBLP": 6, "Amazon": 7, "Youtube": 8, "LiveJournal": 9, "x": 0,
	}
	for name, want := range cases {
		if got := FigureNumber(name); got != want {
			t.Errorf("FigureNumber(%s) = %d, want %d", name, got, want)
		}
	}
}

func TestReduction(t *testing.T) {
	if r := reduction(50, 100); r != 0.5 {
		t.Fatalf("reduction = %v, want 0.5", r)
	}
	if r := reduction(1, 0); r != 0 {
		t.Fatalf("reduction vs zero = %v, want 0", r)
	}
}

func TestFmtSecs(t *testing.T) {
	cases := map[float64]string{
		0: "-", 2.5: "2.50s", 0.0042: "4.20ms", 0.0000015: "2µs",
	}
	for in, want := range cases {
		if got := fmtSecs(in); got != want {
			t.Errorf("fmtSecs(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDefaultProtocols(t *testing.T) {
	full := Default(false)
	mini := Default(true)
	if len(full.Datasets) != 5 || len(mini.Datasets) != 5 {
		t.Fatal("both protocols must carry five datasets")
	}
	if full.Scales[4][1] != 1000 || mini.Scales[4][1] != 200 {
		t.Fatalf("scales wrong: full %v mini %v", full.Scales, mini.Scales)
	}
	if len(full.PatternSizes) != 5 {
		t.Fatal("pattern sizes wrong")
	}
}

// TestMethodOrderingShape checks the paper's headline shape on a tiny
// instance: UA-GPNM must not be slower than INC-GPNM on average (the
// full-scale shape is recorded in EXPERIMENTS.md; at tiny scale we only
// assert the weak ordering to keep the test robust to noise).
func TestMethodOrderingShape(t *testing.T) {
	p := tinyProtocol()
	p.Reps = 3
	res := p.Run()
	ua := res.MethodAverage("", core.UAGPNM)
	inc := res.MethodAverage("", core.INCGPNM)
	if ua <= 0 || inc <= 0 {
		t.Fatal("missing measurements")
	}
	if ua > inc*1.5 {
		t.Errorf("UA-GPNM (%v) much slower than INC-GPNM (%v): shape inverted", ua, inc)
	}
}
