package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
	"uagpnm/internal/hub"
	"uagpnm/internal/obs"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// MultiPatternConfig parameterises the standing-query amortisation
// measurement: N patterns over one evolving graph, served once by a
// single hub (one shared SLen substrate) and once by N independent
// UA-GPNM sessions, replaying identical update batches.
type MultiPatternConfig struct {
	Nodes    int // data graph size (default 3000)
	Edges    int // data graph edges (default 12000)
	Labels   int // distinct role labels (default 16)
	Patterns int // standing queries (default 8)

	PatternNodes int // nodes per pattern (default 6)
	PatternEdges int // edges per pattern (default 6)

	Batches int // update batches (default 4)
	Updates int // data updates per batch (default 150)
	Horizon int // SLen hop cap (default 3)
	Workers int // worker bound for hub fan-out and engines (0 = all cores)
	Seed    int64

	// Shards, when non-empty, serves the hub side's partition substrate
	// from gpnm-shard workers at these addresses (the sessions side
	// stays in-process) — run next to the in-process baseline, the
	// delta is the RPC overhead of the sharded deployment.
	Shards []string

	// Verify differentially checks, after every batch, that each hub
	// pattern's match equals the corresponding session's (enabled by
	// default in the CLI; costs one comparison per pattern per batch).
	Verify bool
}

// MultiPatternSide aggregates one competitor's cost over the run.
type MultiPatternSide struct {
	BuildSeconds float64 `json:"build_seconds"`     // substrate construction + IQuery
	SLenSeconds  float64 `json:"slen_sync_seconds"` // substrate synchronisation only
	SLenSyncs    int     `json:"slen_syncs"`        // data updates synchronised into substrates
	TotalSeconds float64 `json:"total_seconds"`     // whole SQuery / ApplyBatch wall time
	// Phases is the per-phase wall-time breakdown (seconds summed over
	// the run's batches), read from the telemetry registry's
	// gpnm_batch_phase_seconds histograms rather than ad-hoc timers —
	// substrate phases (pre_balls, oplog_flush, overlay_sync,
	// post_balls, row_plan, row_prefetch), hub phases (slen_sync,
	// wake_plan, amend_fan), and any recovery spans. Hub side only.
	Phases map[string]float64 `json:"phase_seconds,omitempty"`
	// RPCCalls is the per-endpoint count of coordinator→worker RPCs over
	// the whole run (gpnm_rpc_seconds observation counts) — the
	// scorecard for the batched read plane: /row is the per-row miss
	// path the planner exists to starve, /rows the bulk path that
	// replaces it. Sharded hub runs only.
	RPCCalls map[string]uint64 `json:"rpc_calls,omitempty"`
	// RowsPlanned / RowsPrefetched / RowsMissed summarise the row plane:
	// rows the demand planner derived, rows installed client-side by the
	// bulk paths (/rows + the /ops warm piggyback), and rows that still
	// fell through to singleton /row fetches. Sharded hub runs only.
	RowsPlanned    uint64 `json:"rows_planned,omitempty"`
	RowsPrefetched uint64 `json:"rows_prefetched,omitempty"`
	RowsMissed     uint64 `json:"rows_missed,omitempty"`
}

// MultiPatternResult is the measured comparison.
type MultiPatternResult struct {
	Config   MultiPatternConfig `json:"config"`
	Env      RunEnv             `json:"env"`
	Hub      MultiPatternSide   `json:"hub"`
	Sessions MultiPatternSide   `json:"sessions"`
	// SLenSyncRatio = hub syncs / session syncs — deterministically
	// 1/Patterns, the amortisation in work terms.
	SLenSyncRatio float64 `json:"slen_sync_ratio"`
	// SLenTimeRatio = hub sync seconds / session sync seconds.
	SLenTimeRatio float64 `json:"slen_time_ratio"`
	Verified      bool    `json:"verified"`
}

// RunMultiPattern executes the comparison: both sides replay the same
// pre-generated batches from the same initial state.
func RunMultiPattern(cfg MultiPatternConfig) MultiPatternResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3000
	}
	if cfg.Edges == 0 {
		cfg.Edges = 12000
	}
	if cfg.Labels == 0 {
		cfg.Labels = 16
	}
	if cfg.Patterns == 0 {
		cfg.Patterns = 8
	}
	if cfg.PatternNodes == 0 {
		cfg.PatternNodes = 6
	}
	if cfg.PatternEdges == 0 {
		cfg.PatternEdges = 6
	}
	if cfg.Batches == 0 {
		cfg.Batches = 4
	}
	if cfg.Updates == 0 {
		cfg.Updates = 150
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}

	g := datasets.GenerateSocial(datasets.SocialConfig{
		Name: "multipattern", Nodes: cfg.Nodes, Edges: cfg.Edges,
		Labels: cfg.Labels, Homophily: 0.8, PrefAtt: 0.6, Seed: cfg.Seed,
	})
	patterns := make([]*pattern.Graph, cfg.Patterns)
	for i := range patterns {
		patterns[i] = patgen.Generate(patgen.Config{
			Nodes: cfg.PatternNodes, Edges: cfg.PatternEdges,
			BoundMin: 1, BoundMax: cfg.Horizon,
			Seed:   cfg.Seed + int64(100+i),
			Labels: patgen.LabelsOf(g),
		}, g.Labels())
	}

	// Pre-generate the data batch stream against an evolving clone so
	// both sides replay identical updates.
	batches := make([]updates.Batch, cfg.Batches)
	{
		gw := g.Clone()
		for i := range batches {
			batches[i] = updates.Generate(
				updates.Balanced(cfg.Seed+int64(10+i), 0, cfg.Updates), gw, patterns[0])
			updates.ApplyDataStructural(batches[i].D, gw)
		}
	}

	res := MultiPatternResult{Config: cfg, Env: CaptureEnv(cfg.Workers, len(cfg.Shards)), Verified: cfg.Verify}

	// One hub, N standing queries, one substrate (optionally sharded
	// across remote workers). The hub gets a private telemetry registry
	// so the per-phase breakdown below attributes this run's hub side
	// only — not the comparison sessions, not any other run in-process.
	reg := obs.NewRegistry()
	start := time.Now()
	h, err := hub.New(g.Clone(), hub.Config{Horizon: cfg.Horizon, Workers: cfg.Workers, Shards: cfg.Shards, Metrics: reg})
	if err != nil {
		panic("bench: hub build failed: " + err.Error())
	}
	defer h.Close()
	ids := make([]hub.PatternID, cfg.Patterns)
	for i, ph := range patterns {
		id, err := h.Register(ph.Clone())
		if err != nil {
			panic("bench: hub register failed: " + err.Error())
		}
		ids[i] = id
	}
	res.Hub.BuildSeconds = time.Since(start).Seconds()
	for _, b := range batches {
		_, st, err := h.ApplyBatch(hub.Batch{D: b.D})
		if err != nil {
			panic("bench: hub batch rejected: " + err.Error())
		}
		res.Hub.SLenSeconds += st.SLenSync.Seconds()
		res.Hub.SLenSyncs += st.SLenSyncs
		res.Hub.TotalSeconds += st.Duration.Seconds()
	}
	res.Hub.Phases = reg.HistogramSums("gpnm_batch_phase_seconds")
	if len(cfg.Shards) > 0 {
		res.Hub.RPCCalls = reg.HistogramCounts("gpnm_rpc_seconds")
		res.Hub.RowsPlanned = reg.Counter("gpnm_rows_planned_total").Value()
		res.Hub.RowsPrefetched = reg.Counter("gpnm_rpc_rows_prefetched_total").Value()
		res.Hub.RowsMissed = reg.Counter("gpnm_rpc_rows_missed_total").Value()
	}

	// N independent UA-GPNM sessions, N substrates.
	start = time.Now()
	sessions := make([]*core.Session, cfg.Patterns)
	for i, ph := range patterns {
		sessions[i] = core.NewSession(g.Clone(), ph.Clone(),
			core.Config{Method: core.UAGPNM, Horizon: cfg.Horizon, Workers: cfg.Workers})
	}
	res.Sessions.BuildSeconds = time.Since(start).Seconds()
	for _, b := range batches {
		for _, s := range sessions {
			s.SQuery(b)
			res.Sessions.SLenSeconds += s.Stats.SLenSync.Seconds()
			res.Sessions.SLenSyncs += s.Stats.SLenSyncs
			res.Sessions.TotalSeconds += s.Stats.Duration.Seconds()
		}
	}
	// The hub has processed every batch by now, so equality holds against
	// each session's final state (per-batch equality is the hub
	// differential suite's job; here it guards the measurement itself).
	if cfg.Verify {
		for i, s := range sessions {
			if m, ok := h.Match(ids[i]); !ok || !m.Equal(s.Match) {
				panic(fmt.Sprintf("bench: hub pattern %d diverged from its session after the run", i))
			}
		}
	}

	res.SLenSyncRatio = ratio(float64(res.Hub.SLenSyncs), float64(res.Sessions.SLenSyncs))
	res.SLenTimeRatio = ratio(res.Hub.SLenSeconds, res.Sessions.SLenSeconds)
	return res
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// String renders the comparison as a table.
func (r MultiPatternResult) String() string {
	var sb strings.Builder
	sharded := ""
	if n := len(r.Config.Shards); n > 0 {
		sharded = fmt.Sprintf(", hub substrate sharded across %d worker(s)", n)
	}
	fmt.Fprintf(&sb, "standing-query amortisation — %d patterns, %d nodes, %d edges, %d batches × %d updates (workers=%d%s)\n",
		r.Config.Patterns, r.Config.Nodes, r.Config.Edges, r.Config.Batches, r.Config.Updates, r.Config.Workers, sharded)
	fmt.Fprintf(&sb, "%-22s  %12s  %12s  %10s  %12s\n", "", "build (s)", "slen (s)", "syncs", "total (s)")
	row := func(name string, s MultiPatternSide) {
		fmt.Fprintf(&sb, "%-22s  %12.4f  %12.4f  %10d  %12.4f\n",
			name, s.BuildSeconds, s.SLenSeconds, s.SLenSyncs, s.TotalSeconds)
	}
	row("hub (1 substrate)", r.Hub)
	row(fmt.Sprintf("%d sessions", r.Config.Patterns), r.Sessions)
	if len(r.Hub.Phases) > 0 {
		names := make([]string, 0, len(r.Hub.Phases))
		for name := range r.Hub.Phases {
			names = append(names, name)
		}
		sort.Strings(names)
		sb.WriteString("hub phase breakdown (s):")
		for _, name := range names {
			fmt.Fprintf(&sb, "  %s=%.4f", name, r.Hub.Phases[name])
		}
		sb.WriteString("\n")
	}
	if len(r.Hub.RPCCalls) > 0 {
		names := make([]string, 0, len(r.Hub.RPCCalls))
		for name := range r.Hub.RPCCalls {
			names = append(names, name)
		}
		sort.Strings(names)
		sb.WriteString("hub RPC calls:")
		for _, name := range names {
			fmt.Fprintf(&sb, "  %s=%d", name, r.Hub.RPCCalls[name])
		}
		fmt.Fprintf(&sb, "  (rows planned=%d prefetched=%d missed=%d)\n",
			r.Hub.RowsPlanned, r.Hub.RowsPrefetched, r.Hub.RowsMissed)
	}
	fmt.Fprintf(&sb, "SLen work ratio (hub/sessions): %.3f by syncs, %.3f by time",
		r.SLenSyncRatio, r.SLenTimeRatio)
	if r.Verified {
		sb.WriteString("  [results verified equal]")
	}
	sb.WriteString("\n")
	return sb.String()
}

// JSON renders the comparison for machine consumption (BENCH files).
func (r MultiPatternResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
