package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"uagpnm/internal/core"
	"uagpnm/internal/datasets"
	"uagpnm/internal/partition"
	"uagpnm/internal/patgen"
	"uagpnm/internal/updates"
)

// ScalingConfig parameterises the worker-scaling measurement: one
// multi-partition workload run through UA-GPNM at several worker-pool
// bounds, so the partition engine's parallel speedup is visible as a
// single table.
type ScalingConfig struct {
	Nodes   int   // data graph size (default 4000)
	Edges   int   // data graph edges (default 16000)
	Labels  int   // distinct role labels = partitions (default 24)
	Batches int   // update batches per measurement (default 4)
	Updates int   // data updates per batch (default 200)
	Horizon int   // SLen hop cap (default 3)
	Workers []int // pool bounds to compare (default 1, 2, 4, all cores)
	Seed    int64
}

// ScalingPoint is one measured worker count.
type ScalingPoint struct {
	Workers      int
	BuildSeconds float64 // NewSession: partition + overlay construction
	QuerySeconds float64 // all SQuery batches
}

// ScalingResult is the full worker sweep over one workload.
type ScalingResult struct {
	Config ScalingConfig
	Parts  int // partitions in the workload's label partition
	Points []ScalingPoint
}

// RunScaling measures UA-GPNM wall-clock at each worker bound on the
// same generated workload. Every run replays identical batches from an
// identical initial state, so the only variable is the pool size.
func RunScaling(cfg ScalingConfig) ScalingResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 4000
	}
	if cfg.Edges == 0 {
		cfg.Edges = 16000
	}
	if cfg.Labels == 0 {
		cfg.Labels = 24
	}
	if cfg.Batches == 0 {
		cfg.Batches = 4
	}
	if cfg.Updates == 0 {
		cfg.Updates = 200
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}
	if len(cfg.Workers) == 0 {
		cfg.Workers = []int{1, 2, 4, 0}
	}

	g := datasets.GenerateSocial(datasets.SocialConfig{
		Name: "scaling", Nodes: cfg.Nodes, Edges: cfg.Edges,
		Labels: cfg.Labels, Homophily: 0.8, PrefAtt: 0.6, Seed: cfg.Seed,
	})
	p := patgen.Generate(patgen.Config{
		Nodes: 8, Edges: 8, BoundMin: 1, BoundMax: cfg.Horizon,
		Seed: cfg.Seed + 1, Labels: patgen.LabelsOf(g),
	}, g.Labels())

	// Pre-generate the batch stream against an evolving clone so every
	// worker configuration replays the same updates.
	batches := make([]updates.Batch, cfg.Batches)
	{
		gw, pw := g.Clone(), p.Clone()
		for i := range batches {
			batches[i] = updates.Generate(updates.Balanced(cfg.Seed+int64(10+i), 0, cfg.Updates), gw, pw)
			updates.ApplyDataStructural(batches[i].D, gw)
		}
	}

	res := ScalingResult{Config: cfg}
	for _, w := range cfg.Workers {
		start := time.Now()
		s := core.NewSession(g.Clone(), p.Clone(),
			core.Config{Method: core.UAGPNM, Horizon: cfg.Horizon, Workers: w})
		build := time.Since(start)
		start = time.Now()
		for _, b := range batches {
			s.SQuery(b)
		}
		query := time.Since(start)
		if pe, ok := s.Engine.(*partition.Engine); ok {
			res.Parts = pe.Partitioning().ComputeStats().Parts
		}
		res.Points = append(res.Points, ScalingPoint{
			Workers:      w,
			BuildSeconds: build.Seconds(),
			QuerySeconds: query.Seconds(),
		})
	}
	return res
}

// String renders the sweep as a table with speedups relative to the
// first (serial) point.
func (r ScalingResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "UA-GPNM worker scaling — %d nodes, %d edges, %d partitions, %d batches × %d updates\n",
		r.Config.Nodes, r.Config.Edges, r.Parts, r.Config.Batches, r.Config.Updates)
	fmt.Fprintf(&sb, "%-8s  %12s  %12s  %8s  %8s\n", "workers", "build (s)", "query (s)", "build×", "query×")
	var b0, q0 float64
	for i, pt := range r.Points {
		if i == 0 {
			b0, q0 = pt.BuildSeconds, pt.QuerySeconds
		}
		name := fmt.Sprint(pt.Workers)
		if pt.Workers == 0 {
			name = "auto"
		}
		fmt.Fprintf(&sb, "%-8s  %12.4f  %12.4f  %7.2fx  %7.2fx\n",
			name, pt.BuildSeconds, pt.QuerySeconds,
			safeDiv(b0, pt.BuildSeconds), safeDiv(q0, pt.QuerySeconds))
	}
	return sb.String()
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// JSON renders the sweep for machine consumption (BENCH files).
func (r ScalingResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
