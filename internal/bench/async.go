package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"uagpnm/internal/graph"
	"uagpnm/internal/hub"
	"uagpnm/internal/obs"
	"uagpnm/internal/patgen"
	"uagpnm/internal/pattern"
	"uagpnm/internal/updates"
)

// AsyncConfig parameterises the asynchronous-substrate measurement:
// the same standing-query replay driven two ways — lock-step (each
// ApplyBatch returns before the next begins, the only mode previous
// revisions had) and pipelined (the whole script queued up front, so
// each batch's pre-state deletion balls are computed while its
// predecessor is still amending patterns) — across a serial and a wide
// amendment pool. The deltas of interest: pipelined wall time vs
// lock-step wall time under back-to-back load, and the amend_fan phase
// shrinking as workers grow.
type AsyncConfig struct {
	Nodes    int // data graph nodes (default 3000)
	Edges    int // data graph edges (default 12000)
	Labels   int // distinct labels (default 12)
	Patterns int // standing queries per hub (default 24)

	Batches int // update batches per replay (default 8)
	Updates int // data updates per batch (default 60)
	Horizon int // SLen hop cap (default 3)
	// Workers is the wide end of the amendment-pool sweep; every cell
	// runs at 1 and at Workers (0 = all cores).
	Workers int
	Seed    int64

	// Verify cross-checks every pattern's final match across all four
	// cells — the pipelined replay must be bit-for-bit the lock-step
	// one.
	Verify bool
}

// AsyncCell is one (mode, workers) replay.
type AsyncCell struct {
	Mode    string `json:"mode"` // "lockstep" | "pipelined"
	Workers int    `json:"workers"`

	WallSeconds float64 `json:"wall_seconds"` // whole replay, submit of first to return of last
	// Phases are the hub's gpnm_batch_phase_seconds sums for the
	// replay: amend_fan is the per-pattern fan the worker sweep
	// shrinks, pre_overlap (pipelined cells only) is phase-1 work that
	// ran off the critical path, slen_sync the structural application.
	Phases map[string]float64 `json:"phases"`
	// OverlappedBatches counts batches that adopted their preview
	// (always 0 for lock-step cells; at most Batches-1 for pipelined —
	// the first batch has no predecessor to overlap with).
	OverlappedBatches int `json:"overlapped_batches"`
}

// AsyncResult is the measured comparison — BENCH_async.json.
type AsyncResult struct {
	Config AsyncConfig `json:"config"`
	Env    RunEnv      `json:"env"`
	Cells  []AsyncCell `json:"cells"`
	// PipelineSpeedup = lock-step wall / pipelined wall at the wide
	// worker bound (>1 = the overlap paid off). On a degraded
	// single-core environment (env.degraded_env) parity is the
	// expected outcome: there is no second core for the preview or the
	// fan to run on.
	PipelineSpeedup float64 `json:"pipeline_speedup"`
	// AmendSpeedup = lock-step amend_fan seconds at workers=1 / at the
	// wide bound — the parallel-amendment headline, same caveat.
	AmendSpeedup float64 `json:"amend_speedup"`
	Verified     bool    `json:"verified"`
}

// RunAsync executes the four replays from identical state.
func RunAsync(cfg AsyncConfig) AsyncResult {
	if cfg.Nodes == 0 {
		cfg.Nodes = 3000
	}
	if cfg.Edges == 0 {
		cfg.Edges = 12000
	}
	if cfg.Labels == 0 {
		cfg.Labels = 12
	}
	if cfg.Patterns == 0 {
		cfg.Patterns = 24
	}
	if cfg.Batches == 0 {
		cfg.Batches = 8
	}
	if cfg.Updates == 0 {
		cfg.Updates = 60
	}
	if cfg.Horizon == 0 {
		cfg.Horizon = 3
	}
	wide := cfg.Workers
	if wide <= 0 {
		wide = runtime.NumCPU()
	}
	cfg.Workers = wide

	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := make([]string, cfg.Labels)
	for i := range labels {
		labels[i] = fmt.Sprintf("l%d", i)
	}
	g := graph.New(nil)
	for i := 0; i < cfg.Nodes; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < cfg.Edges; i++ {
		g.AddEdge(uint32(rng.Intn(cfg.Nodes)), uint32(rng.Intn(cfg.Nodes)))
	}
	patterns := make([]*pattern.Graph, cfg.Patterns)
	for i := range patterns {
		patterns[i] = patgen.Generate(patgen.Config{
			Nodes: 5, Edges: 5, BoundMin: 1, BoundMax: cfg.Horizon,
			Seed: cfg.Seed + int64(500+i), Labels: labels,
		}, g.Labels())
	}

	// Pre-generate the script against an evolving clone so every replay
	// sees identical batches (and the pipelined cells can queue them all
	// up front — the whole point of the scenario). Balanced scripts mix
	// genuine deletions of existing edges with inserts: deletions are
	// what the pipelined preview hoists, so an insert-only script would
	// measure nothing.
	batches := make([][]updates.Update, cfg.Batches)
	{
		gw := g.Clone()
		for b := range batches {
			ups := updates.Generate(updates.Balanced(cfg.Seed*977+int64(b), 0, cfg.Updates),
				gw, patterns[0]).D
			updates.ApplyDataStructural(ups, gw)
			batches[b] = ups
		}
	}

	res := AsyncResult{Config: cfg, Env: CaptureEnv(cfg.Workers, 0), Verified: cfg.Verify}

	type replayOut struct {
		h   *hub.Hub
		ids []hub.PatternID
	}
	replay := func(pipelined bool, workers int) (AsyncCell, replayOut) {
		mode := "lockstep"
		if pipelined {
			mode = "pipelined"
		}
		cell := AsyncCell{Mode: mode, Workers: workers}
		reg := obs.NewRegistry()
		h, err := hub.New(g.Clone(), hub.Config{
			Horizon: cfg.Horizon, Workers: workers, Metrics: reg,
		})
		if err != nil {
			panic("bench: hub build failed: " + err.Error())
		}
		ids := make([]hub.PatternID, len(patterns))
		for i, p := range patterns {
			id, err := h.Register(p.Clone())
			if err != nil {
				panic("bench: hub register failed: " + err.Error())
			}
			ids[i] = id
		}
		start := time.Now()
		if pipelined {
			pl := hub.NewPipeline(h)
			tickets := make([]*hub.Ticket, len(batches))
			for b, ups := range batches {
				tickets[b] = pl.Submit(hub.Batch{D: ups})
			}
			for b, tk := range tickets {
				_, st, err := tk.Wait()
				if err != nil {
					panic(fmt.Sprintf("bench: pipelined batch %d rejected: %v", b, err))
				}
				if st.Overlapped {
					cell.OverlappedBatches++
				}
			}
		} else {
			for b, ups := range batches {
				if _, _, err := h.ApplyBatch(hub.Batch{D: ups}); err != nil {
					panic(fmt.Sprintf("bench: batch %d rejected: %v", b, err))
				}
			}
		}
		cell.WallSeconds = time.Since(start).Seconds()
		cell.Phases = reg.HistogramSums("gpnm_batch_phase_seconds")
		return cell, replayOut{h: h, ids: ids}
	}

	var outs []replayOut
	for _, workers := range []int{1, wide} {
		for _, pipelined := range []bool{false, true} {
			cell, out := replay(pipelined, workers)
			res.Cells = append(res.Cells, cell)
			outs = append(outs, out)
		}
		if wide == 1 {
			break // degraded single-core environment: one sweep point
		}
	}
	defer func() {
		for _, o := range outs {
			o.h.Close()
		}
	}()

	if cfg.Verify {
		ref := outs[0]
		for oi, o := range outs[1:] {
			for i := range patterns {
				mr, okR := ref.h.Match(ref.ids[i])
				mo, okO := o.h.Match(o.ids[i])
				if !okR || !okO || !mr.Equal(mo) {
					panic(fmt.Sprintf("bench: pattern %d diverged between cell 0 and cell %d", i, oi+1))
				}
			}
		}
	}

	cellAt := func(mode string, workers int) *AsyncCell {
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Mode == mode && c.Workers == workers {
				return c
			}
		}
		return nil
	}
	if ls, pp := cellAt("lockstep", wide), cellAt("pipelined", wide); ls != nil && pp != nil {
		res.PipelineSpeedup = ratio(ls.WallSeconds, pp.WallSeconds)
	}
	if s1, sw := cellAt("lockstep", 1), cellAt("lockstep", wide); s1 != nil && sw != nil {
		res.AmendSpeedup = ratio(s1.Phases["amend_fan"], sw.Phases["amend_fan"])
	}
	return res
}

// String renders the comparison as a table.
func (r AsyncResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "asynchronous pipeline — %d patterns, %d batches × %d updates, graph %d/%d (wide workers=%d)\n",
		r.Config.Patterns, r.Config.Batches, r.Config.Updates, r.Config.Nodes, r.Config.Edges, r.Config.Workers)
	fmt.Fprintf(&sb, "%-10s  %8s  %10s  %12s  %12s  %12s  %11s\n",
		"mode", "workers", "wall (s)", "amend (s)", "slen (s)", "overlap (s)", "overlapped")
	for _, c := range r.Cells {
		fmt.Fprintf(&sb, "%-10s  %8d  %10.4f  %12.4f  %12.4f  %12.4f  %11d\n",
			c.Mode, c.Workers, c.WallSeconds, c.Phases["amend_fan"], c.Phases["slen_sync"],
			c.Phases["pre_overlap"], c.OverlappedBatches)
	}
	fmt.Fprintf(&sb, "pipeline speedup %.3fx, amend fan speedup %.3fx",
		r.PipelineSpeedup, r.AmendSpeedup)
	if r.Env.DegradedEnv {
		sb.WriteString("  [degraded single-core env: parity expected]")
	}
	if r.Verified {
		sb.WriteString("  [results verified equal]")
	}
	sb.WriteString("\n")
	return sb.String()
}

// JSON renders the comparison for machine consumption (BENCH files).
func (r AsyncResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
